# Tier-1 verification in one command: `make ci` chains the build, the
# full test suite, the format check, the one-bug bench smoke, the
# serve-daemon smoke, the fleet-determinism gate and the
# persisted-trajectory validation.

.PHONY: all build test fmt ci fleet fleet-determinism bench-smoke bench-vm \
	bench-fleet bench-long-trace bench-serve bench-warm bench-diff

# Where the warm-start trial persists its solver stores; CI points this
# at a workspace path so the journals upload as artifacts.
ER_BENCH_CACHE_DIR ?= /tmp/er_bench_cache

all: build

build:
	dune build

test:
	dune runtest

# Format check.  Local dev soft-skips when ocamlformat is not on PATH;
# CI sets FMT_STRICT=1, which turns a missing ocamlformat into a hard
# failure instead of a silent pass.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt; \
	elif [ -n "$(FMT_STRICT)" ]; then \
		echo "FMT_STRICT set but ocamlformat is not installed" >&2; \
		exit 1; \
	else \
		echo "ocamlformat not installed — skipping 'dune build @fmt'"; \
	fi

ci:
	dune build
	dune runtest
	$(MAKE) fmt
	$(MAKE) bench-smoke
	$(MAKE) bench-vm
	$(MAKE) bench-long-trace
	$(MAKE) bench-serve
	$(MAKE) bench-warm
	$(MAKE) fleet-determinism
	dune exec bench/main.exe -- --validate BENCH_10.json --baseline BENCH_9.json --baseline-exact
	$(MAKE) bench-diff

# Run the whole bug corpus through the staged pipeline on a domain pool.
fleet:
	dune exec bin/er_cli.exe -- fleet

# The determinism contract, as a gate: the normalized fleet report
# (per-bug iterations, solver costs, recorded values; wall clocks and
# worker placement stripped) must be byte-identical at -j 1 and -j 4.
fleet-determinism:
	dune exec bin/er_cli.exe -- fleet -j 1 --json --normalize > /tmp/er_fleet_j1.json
	dune exec bin/er_cli.exe -- fleet -j 4 --json --normalize > /tmp/er_fleet_j4.json
	cmp /tmp/er_fleet_j1.json /tmp/er_fleet_j4.json
	@echo "fleet-determinism: -j 1 and -j 4 normalized reports are byte-identical"

# One-bug end-to-end bench: pipeline + recording overhead, persisted
# trajectory written and re-parsed with the shared JSON reader.
bench-smoke:
	dune exec bench/main.exe -- smoke -o /tmp/er_bench_smoke.json

# Block-fused threaded-dispatch engine vs reference interpreter on the
# Table 1 perf workloads.  The gate compares speedup ratios, not raw
# instr/sec, so it holds across machines: below 4x, or >10% under the
# committed trajectory's recorded speedup, fails.
bench-vm:
	dune exec bench/main.exe -- vm -o /tmp/er_bench_vm.json --vm-baseline BENCH_10.json

# The long-trace workload family: the incremental tracer must beat
# from-scratch tracing end-to-end by at least 1.5x (the job self-gates),
# with identical reconstruction results between the two modes.
bench-long-trace:
	dune exec bench/main.exe -- longtrace -o /tmp/er_bench_longtrace.json

# The serve smoke: an in-process er-serve daemon under a 4-client
# loadgen replay of the corpus.  The job self-gates: every submit must
# resolve, no job may crash, and every client must receive the
# byte-identical normalized payload per bug.
bench-serve:
	dune exec bench/main.exe -- serve -o /tmp/er_bench_serve.json

# The warm-start gate: a cold fleet pass records every solver answer
# into per-job journals under ER_BENCH_CACHE_DIR, a warm pass replays
# them.  The job self-gates: warm total solver_cost strictly below
# cold, per-bug trajectories byte-identical between the passes, and
# the stall-time portfolio must resolve stalls on the throttled bug.
bench-warm:
	ER_BENCH_CACHE_DIR=$(ER_BENCH_CACHE_DIR) \
		dune exec bench/main.exe -- warm -o /tmp/er_bench_warm.json

# Trajectory delta between the two newest committed bench files: solver
# cost must be exactly identical (the counters are deterministic), vm
# speedup must not drop more than 10%; wall clocks render as
# informational deltas only.  A regression names its section before the
# nonzero exit.
bench-diff:
	dune exec bench/main.exe -- diff BENCH_9.json BENCH_10.json --exact

# Regenerate the committed trajectory: full corpus + overheads + the
# sequential-vs-parallel fleet trials + the vm engine comparison + the
# long-trace incremental-tracing family + the serve loadgen smoke + the
# cold-vs-warm persistent-store trial.
bench-fleet:
	dune exec bench/main.exe -- table1 fig6 fleet vm longtrace serve warm -o BENCH_10.json
