# Tier-1 verification in one command: `make ci` chains the build, the
# full test suite, and (when ocamlformat is available) the format check.

.PHONY: all build test fmt ci fleet bench-smoke

all: build

build:
	dune build

test:
	dune runtest

fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt; \
	else \
		echo "ocamlformat not installed — skipping 'dune build @fmt'"; \
	fi

ci:
	dune build
	dune runtest
	$(MAKE) fmt
	$(MAKE) bench-smoke
	dune exec bench/main.exe -- --validate BENCH_3.json --baseline BENCH_2.json

# Run the whole bug corpus through the staged pipeline.
fleet:
	dune exec bin/er_cli.exe -- fleet

# One-bug end-to-end bench: pipeline + recording overhead, persisted
# trajectory written and re-parsed with the shared JSON reader.
bench-smoke:
	dune exec bench/main.exe -- smoke -o /tmp/er_bench_smoke.json
