# Tier-1 verification in one command: `make ci` chains the build, the
# full test suite, and (when ocamlformat is available) the format check.

.PHONY: all build test fmt ci fleet

all: build

build:
	dune build

test:
	dune runtest

fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt; \
	else \
		echo "ocamlformat not installed — skipping 'dune build @fmt'"; \
	fi

ci:
	dune build
	dune runtest
	$(MAKE) fmt

# Run the whole bug corpus through the staged pipeline.
fleet:
	dune exec bin/er_cli.exe -- fleet
