(* Program instrumentation (section 3.3.3): insert a [ptwrite] of the
   defined register immediately after each selected program point, the
   EIR analogue of the paper's LLVM pass that plants x86 ptwrite
   instructions.

   Because insertion shifts instruction indices, [apply] also returns a
   mapper from instrumented coordinates back to base-program coordinates;
   the iterative driver keeps its accumulated recording set in base
   coordinates across iterations. *)

open Er_ir.Types

type mapper = point -> point option
(* [None] means the instrumented point is an inserted ptwrite itself. *)

let apply (p : program) (points : point list) : program * mapper =
  (* insertion indices per (func, block), deduplicated *)
  let by_block : (string * string, int list ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun pt ->
       let key = (pt.p_func, pt.p_block) in
       let l =
         match Hashtbl.find_opt by_block key with
         | Some l -> l
         | None ->
             let l = ref [] in
             Hashtbl.add by_block key l;
             l
       in
       if not (List.mem pt.p_index !l) then l := pt.p_index :: !l)
    points;
  (* base index of each instrumented slot: Some orig | None for ptwrite *)
  let back : (string * string, int option array) Hashtbl.t = Hashtbl.create 16 in
  let instrument_block fname (b : block) =
    let inserts =
      match Hashtbl.find_opt by_block (fname, b.label) with
      | Some l -> !l
      | None -> []
    in
    let out = ref [] and origin = ref [] in
    Array.iteri
      (fun i instr ->
         out := instr :: !out;
         origin := Some i :: !origin;
         if List.mem i inserts then
           match def_of_instr instr with
           | Some dst ->
               out := Ptwrite { v = Reg dst } :: !out;
               origin := None :: !origin
           | None -> ())
      b.instrs;
    Hashtbl.replace back (fname, b.label) (Array.of_list (List.rev !origin));
    { b with instrs = Array.of_list (List.rev !out) }
  in
  let funcs =
    List.map
      (fun f -> { f with blocks = List.map (instrument_block f.fname) f.blocks })
      p.funcs
  in
  let mapper (pt : point) : point option =
    match Hashtbl.find_opt back (pt.p_func, pt.p_block) with
    | None -> Some pt
    | Some origin ->
        if pt.p_index >= Array.length origin then
          (* terminator position: unchanged label, base index shifts by the
             number of insertions *)
          let inserted =
            Array.fold_left
              (fun n o -> if o = None then n + 1 else n)
              0 origin
          in
          Some { pt with p_index = pt.p_index - inserted }
        else
          Option.map (fun i -> { pt with p_index = i }) origin.(pt.p_index)
  in
  ({ p with funcs }, mapper)

(* The forward direction of [apply]'s mapper: base-program coordinates
   to instrumented coordinates, without building the instrumented
   program.  A base index shifts by the number of ptwrites [apply] would
   insert earlier in the same block — marked indices that are in range
   and define a register; the terminator position (index = block length)
   shifts past all of them.  The plan-driven tracer runs the *base*
   program, so its failure reports are forward-mapped before the
   analysis stages, which think in instrumented coordinates. *)
let forward (p : program) (points : point list) : point -> point =
  let by_block : (string * string, int list ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun pt ->
       let key = (pt.p_func, pt.p_block) in
       let l =
         match Hashtbl.find_opt by_block key with
         | Some l -> l
         | None ->
             let l = ref [] in
             Hashtbl.add by_block key l;
             l
       in
       if not (List.mem pt.p_index !l) then l := pt.p_index :: !l)
    points;
  let actual : (string * string, int array) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun f ->
       List.iter
         (fun (b : block) ->
            match Hashtbl.find_opt by_block (f.fname, b.label) with
            | None -> ()
            | Some l ->
                let keep =
                  List.filter
                    (fun i ->
                       i >= 0 && i < Array.length b.instrs
                       && def_of_instr b.instrs.(i) <> None)
                    !l
                in
                Hashtbl.replace actual (f.fname, b.label) (Array.of_list keep))
         f.blocks)
    p.funcs;
  fun pt ->
    match Hashtbl.find_opt actual (pt.p_func, pt.p_block) with
    | None -> pt
    | Some inserts ->
        let shift =
          Array.fold_left
            (fun n j -> if j < pt.p_index then n + 1 else n)
            0 inserts
        in
        { pt with p_index = pt.p_index + shift }

(* Count of ptwrite instructions in a program (reporting). *)
let ptwrite_count (p : program) =
  List.fold_left
    (fun acc f ->
       List.fold_left
         (fun acc (b : block) ->
            Array.fold_left
              (fun acc i -> match i with Ptwrite _ -> acc + 1 | _ -> acc)
              acc b.instrs)
         acc f.blocks)
    0 p.funcs
