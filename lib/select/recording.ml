(* The recording set (section 3.3.2, "Reducing the Cost of Recording").

   Starting from the bottleneck set, ER searches the constraint graph for
   a cheaper set of recordable values from which each bottleneck element
   can be deduced.  A term is *recordable* when it has provenance (it was
   the value of a register definition, so a ptwrite can capture it); its
   recording cost is size-in-bytes times the number of times its defining
   point executed.  Every non-leaf operation is a deterministic function
   of its operands, so a set S determines a term e iff every path from e
   to a symbolic input passes through S — a cut.  The search below is the
   paper's depth-first cost-reduction: for each node take the cheaper of
   "record this node" and "record a determining cut below it". *)

open Er_ir.Types
module Expr = Er_smt.Expr
module Cgraph = Er_symex.Cgraph
module M = Er_metrics

let m_points =
  M.counter ~help:"Fresh recording points added to the recording set."
    "er_select_points_total"

type item = {
  it_point : point;       (* where to insert the ptwrite *)
  it_expr : Expr.t;       (* the recorded term *)
  it_cost : int;          (* bytes x dynamic executions *)
}

type plan = {
  items : item list;
  bottleneck_cost : int;  (* cost of recording the raw bottleneck set *)
  reduced_cost : int;     (* cost of the final recording set *)
}

(* Best determining cut below [e]: None when [e] cannot be determined by
   recordable descendants (an input with no provenance — impossible for
   well-formed traces, but handled).  Costs of shared subterms are counted
   once per bottleneck element; the heuristic matches the paper's greedy
   search rather than an exact minimum cut. *)
let best_cut (graph : Cgraph.t) (e : Expr.t) : (int * Expr.t list) option =
  let memo : (int, (int * Expr.t list) option) Hashtbl.t = Hashtbl.create 256 in
  let rec go e =
    match Hashtbl.find_opt memo (Expr.id e) with
    | Some r -> r
    | None ->
        (* break cycles defensively (the DAG has none, but memoize first) *)
        Hashtbl.add memo (Expr.id e) None;
        let self =
          match Cgraph.cost_of graph e with
          | Some c -> Some (c, [ e ])
          | None -> None
        in
        let result =
          if Expr.is_const e then Some (0, [])
          else begin
            let via_children =
              match Expr.children e with
              | [] -> None    (* a Var: only recordable via provenance *)
              | kids ->
                  List.fold_left
                    (fun acc kid ->
                       match acc, go kid with
                       | Some (c1, s1), Some (c2, s2) -> Some (c1 + c2, s1 @ s2)
                       | _, None | None, _ -> None)
                    (Some (0, [])) kids
            in
            match self, via_children with
            | Some (cs, ss), Some (cc, sc) ->
                if cc < cs then Some (cc, sc) else Some (cs, ss)
            | Some r, None | None, Some r -> Some r
            | None, None -> None
          end
        in
        Hashtbl.replace memo (Expr.id e) result;
        result
  in
  go e

let dedup_items items =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun it ->
       let key = point_to_string it.it_point in
       if Hashtbl.mem seen key then false
       else begin
         Hashtbl.add seen key ();
         true
       end)
    items

(* Is [e] determined by the set [s] of already-recorded terms?  Constants
   determine themselves; operations are deterministic functions of their
   operands, so [e] is determined when every path from it down to a
   symbolic input passes through [s].  This is the second half of the
   paper's search: V[x] drops out of the recording set because the
   already-chosen {x, c} determine it. *)
let determined_by (s : (int, unit) Hashtbl.t) (e : Expr.t) : bool =
  let memo = Hashtbl.create 64 in
  let rec det e =
    match Hashtbl.find_opt memo (Expr.id e) with
    | Some r -> r
    | None ->
        Hashtbl.add memo (Expr.id e) false;   (* cycle guard *)
        let r =
          Expr.is_const e
          || Hashtbl.mem s (Expr.id e)
          ||
          match Expr.children e with
          | [] -> (match Expr.node e with Expr.Const_array _ -> true | _ -> false)
          | kids -> List.for_all det kids
        in
        Hashtbl.replace memo (Expr.id e) r;
        r
  in
  det e

let reduce (graph : Cgraph.t) (bottleneck : Expr.t list) : plan =
  let cost_of e = Option.value ~default:0 (Cgraph.cost_of graph e) in
  let bottleneck_cost = List.fold_left (fun a e -> a + cost_of e) 0 bottleneck in
  (* process cheap elements first so expensive deducible ones are dropped *)
  let ordered =
    List.stable_sort (fun a b -> Int.compare (cost_of a) (cost_of b)) bottleneck
  in
  let chosen : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let items =
    List.concat_map
      (fun e ->
         if determined_by chosen e then []
         else begin
           let cut =
             match best_cut graph e with
             | Some (_, cut) -> cut
             | None -> [ e ]
           in
           List.filter_map
             (fun c ->
                if Hashtbl.mem chosen (Expr.id c) then None
                else
                  match Cgraph.provenance graph c with
                  | Some p ->
                      Hashtbl.replace chosen (Expr.id c) ();
                      Some
                        {
                          it_point = p.Cgraph.pr_point;
                          it_expr = c;
                          it_cost =
                            max 1 (p.Cgraph.pr_width / 8) * p.Cgraph.pr_count;
                        }
                  | None -> None)
             cut
         end)
      ordered
    |> dedup_items
  in
  let reduced_cost = List.fold_left (fun a it -> a + it.it_cost) 0 items in
  { items; bottleneck_cost; reduced_cost }

let points plan = List.map (fun it -> it.it_point) plan.items

(* Recording-point sets grow monotonically across ER iterations (each
   selection round appends its fresh points), so consecutive sets relate
   by list prefix.  The incremental pipeline uses these to decide whether
   a checkpointed run — taken under the previous iteration's set — can be
   resumed under the next one. *)

let is_prefix (pre : point list) (full : point list) : bool =
  let rec go = function
    | [], _ -> true
    | _ :: _, [] -> false
    | p :: ps, q :: qs -> point_compare p q = 0 && go (ps, qs)
  in
  go (pre, full)

let common_prefix (a : point list) (b : point list) : point list =
  let rec go acc = function
    | p :: ps, q :: qs when point_compare p q = 0 -> go (p :: acc) (ps, qs)
    | _ -> List.rev acc
  in
  go [] (a, b)

(* Points not already in [existing], deduplicated and in first-seen order
   — the increment the pipeline's selector hands back each iteration. *)
let fresh ~existing pts =
  let mem p l = List.exists (fun q -> Er_ir.Types.point_compare p q = 0) l in
  let added =
    List.rev
      (List.fold_left
         (fun acc p -> if mem p existing || mem p acc then acc else p :: acc)
         [] pts)
  in
  M.add m_points (List.length added);
  added
