(** The recording set (paper section 3.3.2, "Reducing the Cost of
    Recording").

    Starting from the bottleneck set, find a cheaper set of recordable
    terms (register definitions, cost = size × dynamic executions) that
    determines every bottleneck element: per element, the cheaper of
    "record it" and "record a determining cut below it", followed by a
    global pass dropping elements already determined by the chosen set —
    which is how V[x] drops out of the paper's {x, c, V[x]} example. *)

open Er_ir.Types

type item = {
  it_point : point;        (** where the ptwrite goes *)
  it_expr : Er_smt.Expr.t; (** the recorded term *)
  it_cost : int;           (** bytes x dynamic executions *)
}

type plan = {
  items : item list;
  bottleneck_cost : int;   (** cost of recording the raw bottleneck set *)
  reduced_cost : int;      (** cost of the final recording set *)
}

val best_cut :
  Er_symex.Cgraph.t -> Er_smt.Expr.t -> (int * Er_smt.Expr.t list) option

val determined_by : (int, unit) Hashtbl.t -> Er_smt.Expr.t -> bool

val reduce : Er_symex.Cgraph.t -> Er_smt.Expr.t list -> plan

(** The program points to instrument. *)
val points : plan -> point list

(** [fresh ~existing pts] is [pts] without the points already in
    [existing], deduplicated, in first-seen order — the recording-set
    increment one selection round contributes. *)
val fresh : existing:point list -> point list -> point list

(** [is_prefix pre full]: recording-point sets grow by appending, so
    consecutive iterations' sets relate by list prefix; the incremental
    pipeline asserts this before reusing checkpoints. *)
val is_prefix : point list -> point list -> bool

(** Longest common prefix of two point lists (pointwise
    [point_compare]). *)
val common_prefix : point list -> point list -> point list
