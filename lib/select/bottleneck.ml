(* The bottleneck set (section 3.3.2).

   ER searches the constraint graph for the two patterns that dominate
   constraint-solving complexity: the longest chain of symbolic writes,
   and the write chain updating the largest symbolic memory object.  The
   bottleneck set is every symbolic value read or written by the
   operations in those chains — the index and value terms of each
   symbolic write.

   When a stall occurs without any symbolic write chain (pure arithmetic
   complexity), the fall-back bottleneck is the set of symbolic register
   values appearing directly in the path constraints. *)

module Expr = Er_smt.Expr
module Symmem = Er_symex.Symmem
module Cgraph = Er_symex.Cgraph
module M = Er_metrics

let m_selections =
  M.counter ~help:"Key-data-value selection rounds run."
    "er_select_selections_total"

let m_candidates =
  M.counter ~help:"Bottleneck-set candidate terms across all rounds."
    "er_select_candidates_total"

let m_graph_nodes =
  M.gauge ~help:"Constraint-graph nodes at the last selection round."
    "er_select_graph_nodes"

let m_graph_edges =
  M.gauge ~help:"Constraint-graph edges at the last selection round."
    "er_select_graph_edges"

let m_determined =
  M.counter
    ~help:"Bottleneck candidates the path constraints already pin to a \
           single value (recording them would add no information)."
    "er_select_determined_candidates_total"

type t = {
  elements : Expr.t list;          (* deduplicated symbolic terms *)
  longest_chain : int;
  largest_object_bytes : int;
  chain_objects : int list;        (* object ids of the two chosen chains *)
  determined : int;                (* candidates entailed to a constant *)
}

let dedup exprs =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun e ->
       if Hashtbl.mem seen (Expr.id e) then false
       else begin
         Hashtbl.add seen (Expr.id e) ();
         true
       end)
    exprs

let chain_elements o =
  List.concat_map
    (fun (idx, value) ->
       let keep e = if Expr.is_const e then [] else [ e ] in
       keep idx @ keep value)
    (Symmem.sym_chain_writes o)

(* Fall back to the symbolic terms with provenance that feed the path
   constraints most directly: operands of the assertion roots. *)
let fallback_elements (graph : Cgraph.t) =
  let with_prov = Hashtbl.create 16 in
  List.iter
    (fun root ->
       Expr.iter_subterms
         (fun e ->
            if
              (not (Expr.is_const e))
              && Option.is_some (Cgraph.provenance graph e)
              && not (Hashtbl.mem with_prov (Expr.id e))
            then Hashtbl.add with_prov (Expr.id e) e)
         [ root ])
    graph.Cgraph.assertions;
  Hashtbl.fold (fun _ e acc -> e :: acc) with_prov []
  |> List.sort (fun a b -> Int.compare (Expr.id a) (Expr.id b))

(* Determinedness audit (section 3.3.2): a candidate whose value the path
   constraints already entail would be concretized to the only value it
   can take — recording it buys nothing.  We count such candidates (as a
   selection-quality signal) but never prune them, so the recording plan
   is exactly the paper's.  Each candidate is judged against the *slice*
   of assertions mentioning it: the full set at a stall is by definition
   over budget, the slice rarely is.  An [Error] from a budget-exhausted
   audit query counts as undetermined. *)
let audit_budget = 20_000

let mentions root e =
  Expr.fold_subterms (fun found t -> found || Expr.equal t e) false [ root ]

let entailed_constant (graph : Cgraph.t) (e : Expr.t) : bool =
  let slice = List.filter (fun r -> mentions r e) graph.Cgraph.assertions in
  slice <> []
  &&
  match
    Er_smt.Solver.check ~budget:audit_budget ~gate_budget:audit_budget slice
  with
  | Er_smt.Solver.Sat m, _ -> (
      let v = Expr.const ~width:(Expr.width e) (Er_smt.Model.eval m e) in
      match
        Er_smt.Solver.must_be_true ~budget:audit_budget
          ~gate_budget:audit_budget slice (Expr.eq e v)
      with
      | Ok entailed -> entailed
      | Error _ -> false)
  | (Er_smt.Solver.Unsat | Er_smt.Solver.Unknown _), _ -> false

let count_determined graph elements =
  List.length (List.filter (entailed_constant graph) elements)

let compute (graph : Cgraph.t) (mem : Symmem.t) : t =
  let finish (t : t) =
    if M.enabled M.default then begin
      M.inc m_selections;
      M.add m_candidates (List.length t.elements);
      M.add m_determined t.determined;
      M.set m_graph_nodes (float_of_int (Cgraph.node_count graph));
      M.set m_graph_edges (float_of_int (Cgraph.edge_count graph))
    end;
    t
  in
  let objs =
    List.filter (fun o -> Symmem.sym_chain_length o > 0) (Symmem.objects mem)
  in
  match objs with
  | [] ->
      let elements = dedup (fallback_elements graph) in
      finish
        {
          elements;
          longest_chain = 0;
          largest_object_bytes = 0;
          chain_objects = [];
          determined = count_determined graph elements;
        }
  | _ ->
      let by_chain =
        List.fold_left
          (fun best o ->
             if Symmem.sym_chain_length o > Symmem.sym_chain_length best then o
             else best)
          (List.hd objs) objs
      in
      let by_size =
        List.fold_left
          (fun best o ->
             if Symmem.size_bytes o > Symmem.size_bytes best then o else best)
          (List.hd objs) objs
      in
      let chosen =
        if by_chain.Symmem.s_id = by_size.Symmem.s_id then [ by_chain ]
        else [ by_chain; by_size ]
      in
      let elements = dedup (List.concat_map chain_elements chosen) in
      finish
        {
          elements;
          longest_chain = Symmem.sym_chain_length by_chain;
          largest_object_bytes = Symmem.size_bytes by_size;
          chain_objects = List.map (fun o -> o.Symmem.s_id) chosen;
          determined = count_determined graph elements;
        }
