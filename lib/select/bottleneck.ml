(* The bottleneck set (section 3.3.2).

   ER searches the constraint graph for the two patterns that dominate
   constraint-solving complexity: the longest chain of symbolic writes,
   and the write chain updating the largest symbolic memory object.  The
   bottleneck set is every symbolic value read or written by the
   operations in those chains — the index and value terms of each
   symbolic write.

   When a stall occurs without any symbolic write chain (pure arithmetic
   complexity), the fall-back bottleneck is the set of symbolic register
   values appearing directly in the path constraints. *)

module Expr = Er_smt.Expr
module Symmem = Er_symex.Symmem
module Cgraph = Er_symex.Cgraph
module M = Er_metrics

let m_selections =
  M.counter ~help:"Key-data-value selection rounds run."
    "er_select_selections_total"

let m_candidates =
  M.counter ~help:"Bottleneck-set candidate terms across all rounds."
    "er_select_candidates_total"

let m_graph_nodes =
  M.gauge ~help:"Constraint-graph nodes at the last selection round."
    "er_select_graph_nodes"

let m_graph_edges =
  M.gauge ~help:"Constraint-graph edges at the last selection round."
    "er_select_graph_edges"

type t = {
  elements : Expr.t list;          (* deduplicated symbolic terms *)
  longest_chain : int;
  largest_object_bytes : int;
  chain_objects : int list;        (* object ids of the two chosen chains *)
}

let dedup exprs =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun e ->
       if Hashtbl.mem seen (Expr.id e) then false
       else begin
         Hashtbl.add seen (Expr.id e) ();
         true
       end)
    exprs

let chain_elements o =
  List.concat_map
    (fun (idx, value) ->
       let keep e = if Expr.is_const e then [] else [ e ] in
       keep idx @ keep value)
    (Symmem.sym_chain_writes o)

(* Fall back to the symbolic terms with provenance that feed the path
   constraints most directly: operands of the assertion roots. *)
let fallback_elements (graph : Cgraph.t) =
  let with_prov = Hashtbl.create 16 in
  List.iter
    (fun root ->
       Expr.iter_subterms
         (fun e ->
            if
              (not (Expr.is_const e))
              && Option.is_some (Cgraph.provenance graph e)
              && not (Hashtbl.mem with_prov (Expr.id e))
            then Hashtbl.add with_prov (Expr.id e) e)
         [ root ])
    graph.Cgraph.assertions;
  Hashtbl.fold (fun _ e acc -> e :: acc) with_prov []
  |> List.sort (fun a b -> Int.compare (Expr.id a) (Expr.id b))

let compute (graph : Cgraph.t) (mem : Symmem.t) : t =
  let finish (t : t) =
    if M.enabled M.default then begin
      M.inc m_selections;
      M.add m_candidates (List.length t.elements);
      M.set m_graph_nodes (float_of_int (Cgraph.node_count graph));
      M.set m_graph_edges (float_of_int (Cgraph.edge_count graph))
    end;
    t
  in
  let objs =
    List.filter (fun o -> Symmem.sym_chain_length o > 0) (Symmem.objects mem)
  in
  match objs with
  | [] ->
      finish
        {
          elements = dedup (fallback_elements graph);
          longest_chain = 0;
          largest_object_bytes = 0;
          chain_objects = [];
        }
  | _ ->
      let by_chain =
        List.fold_left
          (fun best o ->
             if Symmem.sym_chain_length o > Symmem.sym_chain_length best then o
             else best)
          (List.hd objs) objs
      in
      let by_size =
        List.fold_left
          (fun best o ->
             if Symmem.size_bytes o > Symmem.size_bytes best then o else best)
          (List.hd objs) objs
      in
      let chosen =
        if by_chain.Symmem.s_id = by_size.Symmem.s_id then [ by_chain ]
        else [ by_chain; by_size ]
      in
      finish
        {
          elements = dedup (List.concat_map chain_elements chosen);
          longest_chain = Symmem.sym_chain_length by_chain;
          largest_object_bytes = Symmem.size_bytes by_size;
          chain_objects = List.map (fun o -> o.Symmem.s_id) chosen;
        }
