(* Block-fusion analysis over the lowered form.

   [analyze] partitions every basic block into execution units the VM's
   threaded dispatcher runs one closure call at a time: singleton units
   (one lowered instruction, or the terminator) and two- or three-wide
   superinstructions built from the adjacent opcode pairs named in the
   committed pair set (a pair whose tail starts another committed pair
   widens to a triple).  The analysis is pure bookkeeping — which ip
   starts a fused unit and how many clock ticks each unit retires — so
   it lives beside
   [Lower]; the closure compiler that consumes it lives in the VM, which
   owns the runtime state the closures mutate.

   Fusion never crosses a block boundary except into the block's own
   terminator (the classic cmp+cond_br loop-exit pair), and only
   instructions that stay on the same frame and cannot block are
   eligible: calls, spawns and the sync ops keep their own dispatch step
   so thread scheduling, blocking and frame pushes happen exactly where
   the unfused engine puts them.  Ptwrite is excluded because it retires
   clock-free ([Stepped_free]) and must keep its zero-cost dispatch.
   Plan-marked blocks and quantum budgets split units dynamically at run
   time (the dispatcher falls back to singletons); this module only
   decides the static shape. *)

module L = Lower

(* --- opcode classes -------------------------------------------------------- *)

(* One stable name per lowered constructor: the vocabulary of the
   [er_vm_top_opcode_pair] profile and of the committed pair set. *)
let opclass : L.linstr -> string = function
  | L.LBin _ -> "bin"
  | L.LCmp _ -> "cmp"
  | L.LSelect _ -> "select"
  | L.LCast _ -> "cast"
  | L.LLoad _ -> "load"
  | L.LStore _ -> "store"
  | L.LAlloc _ -> "alloc"
  | L.LFree _ -> "free"
  | L.LGep _ -> "gep"
  | L.LCall _ -> "call"
  | L.LInput _ -> "input"
  | L.LOutput _ -> "output"
  | L.LPtwrite _ -> "ptwrite"
  | L.LAssert _ -> "assert"
  | L.LSpawn _ -> "spawn"
  | L.LJoin -> "join"
  | L.LLock _ -> "lock"
  | L.LUnlock _ -> "unlock"

let termclass : L.lterm -> string = function
  | L.LBr _ -> "br"
  | L.LCond_br _ -> "cond_br"
  | L.LRet _ -> "ret"
  | L.LAbort _ -> "abort"
  | L.LUnreachable -> "unreachable"

let pair_key a b = a ^ "+" ^ b

(* --- fusion eligibility ---------------------------------------------------- *)

(* Same-frame instructions that either retire ([Stepped]) or crash; a
   crash mid-unit is safe because every sub-instruction updates ip and
   the clock itself, so the failure report and the partial metric flush
   see the exact instruction.  Excluded: call/spawn (frame or thread-set
   changes end a dispatch step), input (stream cursor interplay is kept
   on its own step), ptwrite (clock-free), and the sync ops (may
   block). *)
let fusable_instr : L.linstr -> bool = function
  | L.LBin _ | L.LCmp _ | L.LSelect _ | L.LCast _ | L.LLoad _ | L.LStore _
  | L.LGep _ | L.LAssert _ | L.LOutput _ -> true
  | L.LAlloc _ | L.LFree _ | L.LCall _ | L.LInput _ | L.LPtwrite _
  | L.LSpawn _ | L.LJoin | L.LLock _ | L.LUnlock _ -> false

let fusable_head = fusable_instr
let fusable_tail_instr = fusable_instr

(* Terminator tails: the jump decodes inside the fused closure, after
   the head retires.  Abort/unreachable stay singletons — they always
   crash, so there is nothing to win. *)
let fusable_tail_term : L.lterm -> bool = function
  | L.LBr _ | L.LCond_br _ | L.LRet _ -> true
  | L.LAbort _ | L.LUnreachable -> false

(* The committed superinstruction set: every fusable pair whose
   aggregate weight over the Table 1 perf corpus exceeds ~10k block-
   weighted occurrences in `bench vm --opcode-mix` (the
   er_vm_top_opcode_pair attribution table aggregates the same counts
   at run end).  Mined weights as of PR 10, hottest first; input+bin
   (10.2k) is excluded because input heads are not fusable.  See
   DESIGN.md "Block fusion & threaded dispatch". *)
let default_pairs : (string * string) list =
  [
    ("cmp", "cond_br");    (* 77.8k — loop exit: compare feeding the branch *)
    ("load", "cmp");       (* 61.3k — loaded value compared *)
    ("store", "br");       (* 55.7k — store closing a loop body *)
    ("bin", "store");      (* 50.2k — computed value stored back *)
    ("load", "bin");       (* 34.9k — load feeding arithmetic *)
    ("gep", "load");       (* 34.1k — address computation feeding the access *)
    ("bin", "gep");        (* 30.7k — index arithmetic feeding addressing *)
    ("gep", "store");      (* 20.6k *)
    ("bin", "bin");        (* 17.1k — arithmetic runs *)
    ("cast", "bin");       (* 13.2k — width adjustment feeding arithmetic *)
    ("store", "load");     (* 12.1k *)
    ("load", "output");    (* 11.6k *)
    ("store", "bin");      (* 10.5k *)
    ("bin", "cmp");        (* 10.1k — induction step feeding the compare *)
    ("output", "store");   (*  9.6k *)
  ]

(* --- the per-block unit plan ----------------------------------------------- *)

(* Arrays are indexed by instruction ip, with index [n] (= number of
   instructions) standing for the terminator.  [fp_len.(ip)] is the
   width of the unit starting at [ip]: 3 for a fused triple, 2 for a
   fused pair (the last element is possibly the terminator), 1
   otherwise.  [fp_cost.(ip)] is the clock ticks the unit starting at
   [ip] retires: its width for a fused unit, 0 for ptwrite, 1
   otherwise. *)
type block_plan = { fp_cost : int array; fp_len : int array }

type t = {
  f_pairs : (string * string) list;
  f_blocks : block_plan array array;  (* [fidx].(bidx) *)
}

let plan_block pairs (b : L.lblock) : block_plan =
  let n = Array.length b.L.lb_instrs in
  let cost = Array.make (n + 1) 1 in
  let len = Array.make (n + 1) 1 in
  Array.iteri
    (fun ip i -> match i with L.LPtwrite _ -> cost.(ip) <- 0 | _ -> ())
    b.L.lb_instrs;
  let committed head tail = List.mem (head, tail) pairs in
  (* [link ip]: the unit element at [ip] may extend to also cover
     position [ip + 1] (an instruction, or at [n] the terminator). *)
  let link ip =
    let i = b.L.lb_instrs.(ip) in
    fusable_head i
    && (if ip + 1 < n then
          let j = b.L.lb_instrs.(ip + 1) in
          fusable_tail_instr j && committed (opclass i) (opclass j)
        else
          fusable_tail_term b.L.lb_term
          && committed (opclass i) (termclass b.L.lb_term))
  in
  (* Greedy, widest-first: a committed pair whose tail itself links to
     its successor becomes a triple (e.g. load+cmp+cond_br, the classic
     loop exit, where pairwise greed would otherwise strand the
     cond_br as a singleton). *)
  let ip = ref 0 in
  while !ip < n do
    if link !ip then
      if !ip + 1 < n && link (!ip + 1) then begin
        cost.(!ip) <- 3;
        len.(!ip) <- 3;
        ip := !ip + 3
      end
      else begin
        cost.(!ip) <- 2;
        len.(!ip) <- 2;
        ip := !ip + 2
      end
    else incr ip
  done;
  { fp_cost = cost; fp_len = len }

let analyze ?(pairs = default_pairs) (low : L.t) : t =
  {
    f_pairs = pairs;
    f_blocks =
      Array.map
        (fun (lf : L.lfunc) -> Array.map (plan_block pairs) lf.L.lf_blocks)
        low.L.l_funcs;
  }

(* --- profiling support ----------------------------------------------------- *)

(* The adjacent opcode-pair keys of one block, terminator included —
   the static shape the [er_vm_top_opcode_pair] profile weights by the
   block's retirement count. *)
let block_pair_keys (b : L.lblock) : string list =
  let n = Array.length b.L.lb_instrs in
  let keys = ref [] in
  for ip = n - 1 downto 0 do
    let head = opclass b.L.lb_instrs.(ip) in
    let tail =
      if ip + 1 < n then opclass b.L.lb_instrs.(ip + 1)
      else termclass b.L.lb_term
    in
    keys := pair_key head tail :: !keys
  done;
  !keys
