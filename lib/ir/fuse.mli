(** Block-fusion analysis over {!Lower} output.

    Decides, per basic block, which adjacent instruction runs the VM's
    threaded dispatcher may run as a single two- or three-wide
    superinstruction (a committed pair whose tail heads another
    committed pair widens to a triple), and what every dispatch unit
    costs in clock ticks.  The analysis is
    pure and static; the closure compiler that turns it into executable
    units lives in [Er_vm.Vm_state].  Dynamic split points — plan-marked
    blocks and quantum-budget expiry — are the dispatcher's job: it
    falls back to singleton units there, so checkpoints, virtual
    recording and failure reports keep exact instruction granularity. *)

(** {1 Opcode classes} *)

(** Stable per-constructor class names ("bin", "cmp", "load", ...):
    the vocabulary of the committed pair set and of the
    [er_vm_top_opcode_pair] profile. *)
val opclass : Lower.linstr -> string

(** Terminator class names ("br", "cond_br", "ret", ...). *)
val termclass : Lower.lterm -> string

(** ["head+tail"] — the profile/report key for an adjacent pair. *)
val pair_key : string -> string -> string

(** {1 Fusion eligibility} *)

(** Same-frame, non-blocking instructions that may head a fused pair. *)
val fusable_head : Lower.linstr -> bool

(** Instructions that may be the second element of a fused pair. *)
val fusable_tail_instr : Lower.linstr -> bool

(** Terminators a block's last instruction may fuse into. *)
val fusable_tail_term : Lower.lterm -> bool

(** The committed superinstruction set, mined from the Table 1 perf
    corpus with `bench vm --opcode-mix`. *)
val default_pairs : (string * string) list

(** {1 The per-block unit plan} *)

type block_plan = {
  fp_cost : int array;
      (** indexed by ip, with index [n] (the instruction count) standing
          for the terminator: clock ticks retired by the unit starting
          at [ip] — its width for a fused unit, 0 for ptwrite, 1
          otherwise *)
  fp_len : int array;
      (** width of the unit starting at [ip]: 3 for a fused triple, 2
          for a fused pair (last element possibly the terminator), 1
          otherwise *)
}

type t = {
  f_pairs : (string * string) list;  (** the pair set analyzed against *)
  f_blocks : block_plan array array;  (** indexed [fidx].(bidx) *)
}

val analyze : ?pairs:(string * string) list -> Lower.t -> t

(** {1 Profiling support} *)

(** The adjacent opcode-pair keys of one block, terminator included —
    the static shape the pair profile weights by the block's retirement
    count. *)
val block_pair_keys : Lower.lblock -> string list
