(* Indexed view of a program: O(1) lookup of functions, blocks, globals and
   program points, plus the static instruction counts the benchmarks report. *)

open Types

type t = {
  program : program;
  funcs : (string, func) Hashtbl.t;
  blocks : (string * string, block) Hashtbl.t;  (* (func, label) *)
  globals : (string, global) Hashtbl.t;
  mutable low : Lower.t option;  (* lowered form, built on first demand *)
}

let of_program (program : program) : t =
  let funcs = Hashtbl.create 16 in
  let blocks = Hashtbl.create 64 in
  let globals = Hashtbl.create 16 in
  List.iter (fun f ->
      Hashtbl.replace funcs f.fname f;
      List.iter (fun b -> Hashtbl.replace blocks (f.fname, b.label) b) f.blocks)
    program.funcs;
  List.iter (fun g -> Hashtbl.replace globals g.gname g) program.globals;
  { program; funcs; blocks; globals; low = None }

(* The lowered code cache.  A [Prog.t] is immutable after construction
   (instrumentation builds a new program, hence a new [Prog.t]), so the
   cache never needs invalidation.  The benign race on [low] is safe:
   concurrent domains would at worst each compile once and one result
   wins — [Lower.compile] is pure — but in practice each fleet job
   constructs its own [Prog.t]. *)
let lowered t =
  match t.low with
  | Some l -> l
  | None ->
      let l = Lower.compile t.program in
      t.low <- Some l;
      l

let func t name =
  match Hashtbl.find_opt t.funcs name with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Prog.func: unknown function %s" name)

let block t ~func ~label =
  match Hashtbl.find_opt t.blocks (func, label) with
  | Some b -> b
  | None ->
      invalid_arg (Printf.sprintf "Prog.block: unknown block %s:%s" func label)

let global t name =
  match Hashtbl.find_opt t.globals name with
  | Some g -> g
  | None -> invalid_arg (Printf.sprintf "Prog.global: unknown global %s" name)

let entry t name = match (func t name).blocks with
  | b :: _ -> b
  | [] -> assert false

let main t = func t t.program.main

let instr_at t (p : point) =
  let b = block t ~func:p.p_func ~label:p.p_block in
  if p.p_index < 0 || p.p_index >= Array.length b.instrs then
    invalid_arg (Printf.sprintf "Prog.instr_at: %s out of range" (point_to_string p));
  b.instrs.(p.p_index)

let static_instr_count t =
  List.fold_left
    (fun acc (f : func) ->
       List.fold_left
         (fun acc (b : block) -> acc + Array.length b.instrs + 1)
         acc f.blocks)
    0 t.program.funcs

let iter_points t f =
  List.iter
    (fun fn ->
       List.iter
         (fun b ->
            Array.iteri
              (fun i instr ->
                 f { p_func = fn.fname; p_block = b.label; p_index = i } instr)
              b.instrs)
         fn.blocks)
    t.program.funcs
