(** One-time lowering of an EIR program into a dense, index-resolved
    executable form.

    [compile] turns a {!Types.program} into arrays the execution engines
    can dispatch over without string lookups: registers become integer
    slots into a per-frame array (one deterministic slot map per
    function), labels become block-array indices, call/spawn targets and
    globals become function/global-array indices, operand normalization
    widths are precomputed, and every block carries its per-class
    retirement-count delta so metrics are bumped once per block.

    Lowering is semantics-preserving for every program the validator
    accepts; name resolution happens eagerly, so unknown
    function/block/global references raise [Invalid_argument] at compile
    time instead of at first execution. *)

open Types

type operand =
  | Oslot of int  (** register slot proven defined on every path *)
  | Ocheck of { slot : int; reg : reg }
      (** slot whose definedness must be checked at runtime; [reg] is
          the source register name for the error message *)
  | Oimm of { v : int64; ity : ty }
      (** raw (un-normalized) immediate and the type it was written at *)
  | Oglobal of int  (** index into {!t.l_globals} *)
  | Onull

type linstr =
  | LBin of { dst : int; op : binop; ty : ty; w : int; a : operand; b : operand }
  | LCmp of { dst : int; op : cmpop; ty : ty; w : int; a : operand; b : operand }
  | LSelect of {
      dst : int;
      ty : ty;
      w : int;
      cond : operand;
      if_true : operand;
      if_false : operand;
    }
  | LCast of {
      dst : int;
      kind : cast_kind;
      to_ty : ty;
      from_ty : ty;
      to_w : int;
      from_w : int;
      v : operand;
    }
  | LLoad of { dst : int; ty : ty; addr : operand }
  | LStore of { ty : ty; w : int; v : operand; addr : operand }
  | LAlloc of { dst : int; elt_ty : ty; count : operand; heap : bool }
  | LFree of { addr : operand }
  | LGep of { dst : int; base : operand; idx : operand }
  | LCall of { dst : int option; fidx : int; args : operand array }
  | LInput of { dst : int; ty : ty; stream : string }
  | LOutput of { v : operand }
  | LPtwrite of { v : operand }
  | LAssert of { cond : operand; msg : string }
  | LSpawn of { fidx : int; args : operand array }
  | LJoin
  | LLock of { addr : operand }
  | LUnlock of { addr : operand }

type lterm =
  | LBr of int
  | LCond_br of { cond : operand; if_true : int; if_false : int }
  | LRet of operand option
  | LAbort of string
  | LUnreachable

(** Per-class retirement counts for a whole block (instructions plus
    terminator), matching the classes of [Er_vm.Interp.count_instr] /
    [count_term]; [d_cond] counts conditional branches. *)
type delta = {
  d_alu : int;
  d_load : int;
  d_store : int;
  d_mem : int;
  d_call : int;
  d_io : int;
  d_sync : int;
  d_branch : int;
  d_other : int;
  d_cond : int;
}

type lblock = {
  lb_index : int;
  lb_label : label;
  lb_instrs : linstr array;
  lb_term : lterm;
  lb_src : block;  (** original block, for cold-path source reporting *)
  lb_delta : delta;
}

type lfunc = {
  lf_idx : int;
  lf_name : string;
  lf_src : func;
  lf_params : (int * ty) array;  (** parameter slot and declared type *)
  lf_nslots : int;
  lf_reg_of_slot : reg array;
  lf_slot_of_reg : (reg, int) Hashtbl.t;
  lf_blocks : lblock array;  (** index 0 is the entry block *)
  lf_tracked : bool;
      (** true when any operand is [Ocheck]: frames of this function
          carry a per-slot definedness bitmap *)
  lf_ret_ty : ty option;
  lf_ret_w : int;
}

type t = {
  l_src : program;
  l_funcs : lfunc array;
  l_func_index : (string, int) Hashtbl.t;
  l_globals : global array;  (** program order — the allocation order *)
  l_global_index : (string, int) Hashtbl.t;
  l_main : int;
}

val compile : program -> t
val func_by_name : t -> string -> lfunc
val delta_of_block : block -> delta
val zero_delta : delta
