(* One-time lowering of an EIR program into a dense, index-resolved
   executable form — the pre-lowered code cache both execution engines
   (the concrete VM and the shepherded symbolic executor) dispatch over.

   What lowering resolves, once per program instead of once per retired
   instruction:

     - string registers become integer slots into a per-frame array
       (one slot map per function, params first, then first-occurrence
       order — deterministic, so slot numbering is reproducible);
     - labels become indices into the function's block array and call /
       spawn targets become indices into the program's function array;
     - globals become indices into the allocation-order global array;
     - operand widths (the [width_of_ty] of the type an operand is
       normalized at) are precomputed per instruction;
     - every block carries its per-class instruction-count delta so the
       engines can account a whole retired block with one batched
       counter add per class instead of a match-and-increment per
       instruction.

   Semantics note: lowering resolves names eagerly, so a program that
   references an unknown function / block / global fails here (at
   [compile] time) instead of lazily at first execution of the bad
   instruction.  Validated programs (everything the builder or parser
   produces) are unaffected.  Reads of dynamically-undefined registers
   keep their exact reference semantics: a use that the must-defined
   dataflow analysis cannot prove initialized is lowered to a checked
   operand carrying the register name, and functions containing such
   uses track definedness bits per frame; every other use is an
   unchecked slot read. *)

open Types

type operand =
  | Oslot of int                          (* proven-defined register slot *)
  | Ocheck of { slot : int; reg : reg }   (* slot + dynamic definedness check *)
  | Oimm of { v : int64; ity : ty }       (* raw immediate; [ity] is its own type *)
  | Oglobal of int                        (* index into the global array *)
  | Onull

type linstr =
  | LBin of { dst : int; op : binop; ty : ty; w : int; a : operand; b : operand }
  | LCmp of { dst : int; op : cmpop; ty : ty; w : int; a : operand; b : operand }
  | LSelect of {
      dst : int; ty : ty; w : int;
      cond : operand; if_true : operand; if_false : operand;
    }
  | LCast of {
      dst : int; kind : cast_kind;
      to_ty : ty; from_ty : ty; to_w : int; from_w : int; v : operand;
    }
  | LLoad of { dst : int; ty : ty; addr : operand }
  | LStore of { ty : ty; w : int; v : operand; addr : operand }
  | LAlloc of { dst : int; elt_ty : ty; count : operand; heap : bool }
  | LFree of { addr : operand }
  | LGep of { dst : int; base : operand; idx : operand }
  | LCall of { dst : int option; fidx : int; args : operand array }
  | LInput of { dst : int; ty : ty; stream : string }
  | LOutput of { v : operand }
  | LPtwrite of { v : operand }
  | LAssert of { cond : operand; msg : string }
  | LSpawn of { fidx : int; args : operand array }
  | LJoin
  | LLock of { addr : operand }
  | LUnlock of { addr : operand }

type lterm =
  | LBr of int
  | LCond_br of { cond : operand; if_true : int; if_false : int }
  | LRet of operand option
  | LAbort of string
  | LUnreachable

(* Per-class retirement counts for one whole block (instructions plus
   terminator), precomputed so that the VM bumps each class counter once
   per retired block.  Field names follow the metric classes of
   [Er_vm.Interp.count_instr]/[count_term]; [d_cond] is the conditional-
   branch count feeding [er_vm_branches_total]. *)
type delta = {
  d_alu : int;
  d_load : int;
  d_store : int;
  d_mem : int;
  d_call : int;
  d_io : int;
  d_sync : int;
  d_branch : int;
  d_other : int;
  d_cond : int;
}

type lblock = {
  lb_index : int;
  lb_label : label;
  lb_instrs : linstr array;
  lb_term : lterm;
  lb_src : block;          (* original block: cold paths report source instrs *)
  lb_delta : delta;
}

type lfunc = {
  lf_idx : int;
  lf_name : string;
  lf_src : func;
  lf_params : (int * ty) array;       (* slot and declared type, in order *)
  lf_nslots : int;
  lf_reg_of_slot : reg array;         (* slot -> register name, for hooks *)
  lf_slot_of_reg : (reg, int) Hashtbl.t;
  lf_blocks : lblock array;           (* index 0 is the entry block *)
  lf_tracked : bool;                  (* frames keep definedness bits *)
  lf_ret_ty : ty option;
  lf_ret_w : int;                     (* return-value normalization width *)
}

type t = {
  l_src : program;
  l_funcs : lfunc array;
  l_func_index : (string, int) Hashtbl.t;
  l_globals : global array;           (* program order = allocation order *)
  l_global_index : (string, int) Hashtbl.t;
  l_main : int;
}

(* ------------------------------------------------------------------ *)
(* Per-block metric deltas                                             *)
(* ------------------------------------------------------------------ *)

let zero_delta =
  { d_alu = 0; d_load = 0; d_store = 0; d_mem = 0; d_call = 0; d_io = 0;
    d_sync = 0; d_branch = 0; d_other = 0; d_cond = 0 }

let delta_of_block (b : block) : delta =
  let d = ref zero_delta in
  Array.iter
    (fun (i : instr) ->
       let c = !d in
       d :=
         (match i with
          | Bin _ | Cmp _ | Select _ | Cast _ | Gep _ ->
              { c with d_alu = c.d_alu + 1 }
          | Load _ -> { c with d_load = c.d_load + 1 }
          | Store _ -> { c with d_store = c.d_store + 1 }
          | Alloc _ | Free _ -> { c with d_mem = c.d_mem + 1 }
          | Call _ -> { c with d_call = c.d_call + 1 }
          | Input _ | Output _ | Ptwrite _ -> { c with d_io = c.d_io + 1 }
          | Spawn _ | Join | Lock _ | Unlock _ ->
              { c with d_sync = c.d_sync + 1 }
          | Assert _ -> { c with d_other = c.d_other + 1 }))
    b.instrs;
  let c = !d in
  match b.term with
  | Br _ -> { c with d_branch = c.d_branch + 1 }
  | Cond_br _ -> { c with d_branch = c.d_branch + 1; d_cond = c.d_cond + 1 }
  | Ret _ -> { c with d_call = c.d_call + 1 }
  | Abort _ | Unreachable -> { c with d_other = c.d_other + 1 }

(* ------------------------------------------------------------------ *)
(* Slot assignment                                                     *)
(* ------------------------------------------------------------------ *)

(* Deterministic slot numbering: parameters in declaration order, then
   every other register in first-occurrence order (uses before the def
   of each instruction, then terminator operands). *)
let assign_slots (f : func) =
  let slot_of = Hashtbl.create 16 in
  let rev_names = ref [] in
  let next = ref 0 in
  let intern r =
    match Hashtbl.find_opt slot_of r with
    | Some s -> s
    | None ->
        let s = !next in
        incr next;
        Hashtbl.add slot_of r s;
        rev_names := r :: !rev_names;
        s
  in
  List.iter (fun (r, _) -> ignore (intern r)) f.params;
  let intern_value = function
    | Reg r -> ignore (intern r)
    | Imm _ | Global _ | Null -> ()
  in
  List.iter
    (fun (b : block) ->
       Array.iter
         (fun i ->
            List.iter intern_value (values_of_instr i);
            match def_of_instr i with
            | Some r -> ignore (intern r)
            | None -> ())
         b.instrs;
       match b.term with
       | Cond_br { cond; _ } -> intern_value cond
       | Ret (Some v) -> intern_value v
       | Br _ | Ret None | Abort _ | Unreachable -> ())
    f.blocks;
  let names = Array.of_list (List.rev !rev_names) in
  (slot_of, names, !next)

(* ------------------------------------------------------------------ *)
(* Must-defined dataflow                                               *)
(* ------------------------------------------------------------------ *)

(* Forward must-defined analysis over the CFG: a register use is lowered
   to an unchecked slot read only when every path from entry defines it
   first.  Sets are bytes (one per slot); meet is byte-wise AND. *)
let must_defined (f : func) ~slot_of ~nslots ~block_index =
  let blocks = Array.of_list f.blocks in
  let n = Array.length blocks in
  let top () = Bytes.make nslots '\001' in
  let entry_in = Bytes.make nslots '\000' in
  List.iter
    (fun (r, _) -> Bytes.set entry_in (Hashtbl.find slot_of r) '\001')
    f.params;
  let ins = Array.init n (fun i -> if i = 0 then entry_in else top ()) in
  let outs = Array.init n (fun _ -> top ()) in
  let defs_of b =
    let d = Bytes.make nslots '\000' in
    Array.iter
      (fun i ->
         match def_of_instr i with
         | Some r -> Bytes.set d (Hashtbl.find slot_of r) '\001'
         | None -> ())
      b.instrs;
    d
  in
  let defs = Array.map defs_of blocks in
  let succs = Array.make n [] in
  Array.iteri
    (fun i (b : block) ->
       succs.(i) <-
         (match b.term with
          | Br l -> [ Hashtbl.find block_index l ]
          | Cond_br { if_true; if_false; _ } ->
              [ Hashtbl.find block_index if_true;
                Hashtbl.find block_index if_false ]
          | Ret _ | Abort _ | Unreachable -> []))
    blocks;
  let preds = Array.make n [] in
  Array.iteri
    (fun i ss -> List.iter (fun s -> preds.(s) <- i :: preds.(s)) ss)
    succs;
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      (if i > 0 then
         match preds.(i) with
         | [] -> ()   (* statically unreachable: keep top *)
         | ps ->
             let acc = top () in
             List.iter
               (fun p ->
                  for s = 0 to nslots - 1 do
                    if Bytes.get outs.(p) s = '\000' then
                      Bytes.set acc s '\000'
                  done)
               ps;
             ins.(i) <- acc);
      let out = Bytes.copy ins.(i) in
      for s = 0 to nslots - 1 do
        if Bytes.get defs.(i) s = '\001' then Bytes.set out s '\001'
      done;
      if not (Bytes.equal out outs.(i)) then begin
        outs.(i) <- out;
        changed := true
      end
    done
  done;
  ins

(* ------------------------------------------------------------------ *)
(* Lowering                                                            *)
(* ------------------------------------------------------------------ *)

let compile (p : program) : t =
  let l_globals = Array.of_list p.globals in
  let l_global_index = Hashtbl.create 16 in
  Array.iteri
    (fun i (g : global) -> Hashtbl.replace l_global_index g.gname i)
    l_globals;
  let funcs = Array.of_list p.funcs in
  let l_func_index = Hashtbl.create 16 in
  Array.iteri
    (fun i (f : func) -> Hashtbl.replace l_func_index f.fname i)
    funcs;
  let func_idx ~in_ name =
    match Hashtbl.find_opt l_func_index name with
    | Some i -> i
    | None ->
        invalid_arg
          (Printf.sprintf "Lower: unknown function %s (called from %s)" name
             in_)
  in
  let lower_func lf_idx (f : func) : lfunc =
    let slot_of, reg_of_slot, nslots = assign_slots f in
    let block_index = Hashtbl.create 16 in
    List.iteri (fun i (b : block) -> Hashtbl.replace block_index b.label i)
      f.blocks;
    let block_idx label =
      match Hashtbl.find_opt block_index label with
      | Some i -> i
      | None ->
          invalid_arg
            (Printf.sprintf "Lower: unknown block %s in %s" label f.fname)
    in
    let ins = must_defined f ~slot_of ~nslots ~block_index in
    let tracked = ref false in
    let lower_block bi (b : block) : lblock =
      (* running must-defined set while walking the block *)
      let defined = Bytes.copy ins.(bi) in
      let operand = function
        | Imm (v, ity) -> Oimm { v; ity }
        | Null -> Onull
        | Global g -> (
            match Hashtbl.find_opt l_global_index g with
            | Some i -> Oglobal i
            | None ->
                invalid_arg
                  (Printf.sprintf "Lower: unknown global %s in %s" g f.fname))
        | Reg r ->
            let slot = Hashtbl.find slot_of r in
            if Bytes.get defined slot = '\001' then Oslot slot
            else begin
              tracked := true;
              Ocheck { slot; reg = r }
            end
      in
      let def r =
        let slot = Hashtbl.find slot_of r in
        Bytes.set defined slot '\001';
        slot
      in
      let lower_instr (i : instr) : linstr =
        match i with
        | Bin { dst; op; ty; a; b } ->
            let a = operand a and b = operand b in
            LBin { dst = def dst; op; ty; w = width_of_ty ty; a; b }
        | Cmp { dst; op; ty; a; b } ->
            let a = operand a and b = operand b in
            LCmp { dst = def dst; op; ty; w = width_of_ty ty; a; b }
        | Select { dst; ty; cond; if_true; if_false } ->
            let cond = operand cond in
            let if_true = operand if_true and if_false = operand if_false in
            LSelect
              { dst = def dst; ty; w = width_of_ty ty; cond; if_true; if_false }
        | Cast { dst; kind; to_ty; v; from_ty } ->
            let v = operand v in
            LCast
              { dst = def dst; kind; to_ty; from_ty;
                to_w = width_of_ty to_ty; from_w = width_of_ty from_ty; v }
        | Load { dst; ty; addr } ->
            let addr = operand addr in
            LLoad { dst = def dst; ty; addr }
        | Store { ty; v; addr } ->
            LStore { ty; w = width_of_ty ty; v = operand v; addr = operand addr }
        | Alloc { dst; elt_ty; count; heap } ->
            let count = operand count in
            LAlloc { dst = def dst; elt_ty; count; heap }
        | Free { addr } -> LFree { addr = operand addr }
        | Gep { dst; base; idx } ->
            let base = operand base and idx = operand idx in
            LGep { dst = def dst; base; idx }
        | Call { dst; func; args } ->
            let args = Array.of_list (List.map operand args) in
            LCall
              { dst = Option.map def dst; fidx = func_idx ~in_:f.fname func;
                args }
        | Input { dst; ty; stream } -> LInput { dst = def dst; ty; stream }
        | Output { v } -> LOutput { v = operand v }
        | Ptwrite { v } -> LPtwrite { v = operand v }
        | Assert { cond; msg } -> LAssert { cond = operand cond; msg }
        | Spawn { func; args } ->
            LSpawn
              { fidx = func_idx ~in_:f.fname func;
                args = Array.of_list (List.map operand args) }
        | Join -> LJoin
        | Lock { addr } -> LLock { addr = operand addr }
        | Unlock { addr } -> LUnlock { addr = operand addr }
      in
      let lb_instrs = Array.map lower_instr b.instrs in
      let lb_term =
        match b.term with
        | Br l -> LBr (block_idx l)
        | Cond_br { cond; if_true; if_false } ->
            LCond_br
              { cond = operand cond; if_true = block_idx if_true;
                if_false = block_idx if_false }
        | Ret v -> LRet (Option.map operand v)
        | Abort msg -> LAbort msg
        | Unreachable -> LUnreachable
      in
      { lb_index = bi; lb_label = b.label; lb_instrs; lb_term; lb_src = b;
        lb_delta = delta_of_block b }
    in
    let lf_blocks = Array.of_list (List.mapi lower_block f.blocks) in
    if Array.length lf_blocks = 0 then
      invalid_arg (Printf.sprintf "Lower: function %s has no blocks" f.fname);
    let lf_params =
      Array.of_list
        (List.map (fun (r, ty) -> (Hashtbl.find slot_of r, ty)) f.params)
    in
    {
      lf_idx;
      lf_name = f.fname;
      lf_src = f;
      lf_params;
      lf_nslots = nslots;
      lf_reg_of_slot = reg_of_slot;
      lf_slot_of_reg = slot_of;
      lf_blocks;
      lf_tracked = !tracked;
      lf_ret_ty = f.ret_ty;
      lf_ret_w = width_of_ty (match f.ret_ty with Some t -> t | None -> I64);
    }
  in
  let l_funcs = Array.mapi lower_func funcs in
  let l_main =
    match Hashtbl.find_opt l_func_index p.main with
    | Some i -> i
    | None -> invalid_arg (Printf.sprintf "Lower: main function %s not found" p.main)
  in
  { l_src = p; l_funcs; l_func_index; l_globals; l_global_index; l_main }

let func_by_name t name =
  match Hashtbl.find_opt t.l_func_index name with
  | Some i -> t.l_funcs.(i)
  | None -> invalid_arg (Printf.sprintf "Lower: unknown function %s" name)
