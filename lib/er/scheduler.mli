(** Multi-tenant job scheduler.

    A persistent pool of worker domains executing {!Job} handles with
    per-tenant fair round-robin dispatch and bounded-queue backpressure.
    Both the batch {!Fleet} runner and the [er_cli serve] daemon are
    clients.  Crash isolation is per job (see {!Job.execute}): a raising
    job never takes its worker down. *)

type t

val create :
  ?queue_limit:int -> ?on_done:(Job.t -> unit) -> workers:int -> unit -> t
(** Spawn [max 1 workers] worker domains.  [queue_limit] (default 256)
    bounds the total number of queued jobs across all tenants.
    [on_done] is invoked on the worker domain right after each job
    completes — it must be fast and must not block on the scheduler. *)

val workers : t -> int

val submit : t -> Job.t -> (unit, [ `Queue_full | `Stopping ]) result
(** Enqueue a job under its tenant's FIFO.  Refuses when the total
    queue is at [queue_limit] ([`Queue_full] — the daemon's 429) or
    after {!shutdown} ([`Stopping]). *)

val pending : t -> int
(** Jobs queued but not yet picked up, across all tenants. *)

val shutdown : t -> unit
(** Stop accepting submits, drain already-queued jobs, join all worker
    domains.  Blocks until the pool has exited. *)
