(** Compatibility surface of the iterative ER algorithm (paper Fig. 2,
    section 3.3.4).

    The algorithm itself lives in {!Pipeline} as four first-class stages
    ([TRACER] → [SHEPHERD] → [SELECTOR] → [VERIFIER]) folded over failure
    occurrences, reporting through the {!Events} bus.  This module keeps
    the original flat records with string-rendered outcomes so that
    long-standing callers compile unchanged; new code should prefer
    {!Pipeline.run} (or read {!result.pipeline}) for structured outcomes,
    per-stage timing and the event stream. *)

open Er_ir.Types

type config = Pipeline.config = {
  max_occurrences : int;           (** bound on production runs consumed *)
  exec_config : Er_symex.Exec.config;
  vm_config : Er_vm.Interp.config;
  ring_bytes : int;                (** trace ring buffer size *)
  verify : bool;                   (** re-execute the generated test case *)
  incremental : bool;              (** resume production runs from CoW
                                       checkpoints of the previous one *)
  checkpoint_interval : int;       (** instructions between checkpoints *)
}

val default_config : config

type iteration = {
  occurrence : int;
  trace_bytes : int;
  trace_packets : int;
  ptwrites_recorded : int;
  vm_instrs : int;
  symex_steps : int;
  symex_time : float;
  solver_calls : int;
  solver_cost : int;
  outcome : [ `Complete | `Stalled of string | `Diverged of string ];
  recording_set_size : int;
  graph_nodes : int;
  selection_time : float;
}

type status =
  | Reproduced of {
      testcase : Testcase.t;
      verified : Verify.verdict option;
      solution : Er_symex.Exec.solution;
    }
  | Gave_up of string

type result = {
  status : status;
  iterations : iteration list;     (** one per analyzed failure occurrence *)
  occurrences : int;               (** failure occurrences ER consumed *)
  total_symex_time : float;
  recording_points : point list;   (** final recording set, base coords *)
  failure : Er_vm.Failure.t option;
  pipeline : Pipeline.result;      (** structured result: outcomes, per-stage
                                       timing, full event stream *)
}

(** A workload models the production traffic around the k-th occurrence
    of the failure: the input streams and the scheduler seed of that run.
    Occurrences may differ in inputs and interleavings; runs in which the
    tracked failure does not fire are skipped, as in a real deployment. *)
type workload = Pipeline.workload

val reconstruct :
  ?config:config -> base_prog:program -> workload:workload -> unit -> result
