(* Structured outcomes for the staged ER pipeline.

   The original driver threaded failure information around as formatted
   strings ("stalled — …; +2 points (chain=7, obj=1024B)"), which made it
   impossible for downstream tooling — the fleet aggregator, the JSONL
   event sink, tests — to act on *why* an iteration stopped.  These
   variants carry the same information structurally; the string renderings
   below exist only for the human-facing compatibility surface of
   {!Driver}. *)

type stall = {
  reason : string;              (* the executor's stall description *)
  longest_chain : int;          (* bottleneck: longest symbolic write chain *)
  largest_object_bytes : int;   (* bottleneck: largest symbolic object *)
  points_added : int;           (* recording points gained by selection *)
}

(* Per-iteration outcome of shepherded symbolic execution + selection. *)
type step =
  | Completed
  | Stalled of stall            (* solver/gate budget exhausted mid-path *)
  | Diverged of string          (* execution left the recorded trace *)

(* Terminal reason the whole reconstruction stopped without a test case. *)
type give_up =
  | Decode_error of string      (* the shipped trace snapshot was corrupt *)
  | Max_occurrences of int      (* occurrence budget exhausted *)
  | Cancelled                   (* the owning job was cancelled mid-flight *)

let step_tag = function
  | Completed -> `Complete
  | Stalled _ -> `Stalled
  | Diverged _ -> `Diverged

(* The legacy [`Stalled of string] rendering kept bottleneck statistics
   inside the message; reproduce it exactly for Driver compatibility. *)
let step_to_compat :
  step -> [ `Complete | `Stalled of string | `Diverged of string ] = function
  | Completed -> `Complete
  | Stalled s ->
      `Stalled
        (Printf.sprintf "%s; +%d points (chain=%d, obj=%dB)" s.reason
           s.points_added s.longest_chain s.largest_object_bytes)
  | Diverged m -> `Diverged m

let give_up_to_string = function
  | Decode_error e -> "trace decode failed: " ^ e
  | Max_occurrences _ -> "max occurrences exhausted"
  | Cancelled -> "cancelled"

let pp_step ppf = function
  | Completed -> Fmt.string ppf "complete"
  | Stalled s ->
      Fmt.pf ppf "stalled — %s; +%d points (chain=%d, obj=%dB)" s.reason
        s.points_added s.longest_chain s.largest_object_bytes
  | Diverged m -> Fmt.pf ppf "diverged — %s" m

let pp_give_up ppf g = Fmt.string ppf (give_up_to_string g)
