(* Compatibility surface over the staged {!Pipeline}.

   The iterative ER algorithm (Fig. 2, section 3.3.4) now lives in
   {!Pipeline} as four first-class stages folded over occurrences with a
   structured event stream.  This module keeps the original driver API —
   the same config/iteration/result records with string-rendered outcomes
   — so existing callers (tests, bench harness, examples) are untouched;
   the full structured result is available via {!result.pipeline}. *)

open Er_ir.Types
module Interp = Er_vm.Interp
module Exec = Er_symex.Exec

type config = Pipeline.config = {
  max_occurrences : int;
  exec_config : Exec.config;
  vm_config : Interp.config;
  ring_bytes : int;
  verify : bool;
  incremental : bool;
  checkpoint_interval : int;
}

let default_config = Pipeline.default_config

type iteration = {
  occurrence : int;
  trace_bytes : int;
  trace_packets : int;
  ptwrites_recorded : int;
  vm_instrs : int;
  symex_steps : int;
  symex_time : float;          (* seconds of wall-clock symbolic execution *)
  solver_calls : int;
  solver_cost : int;
  outcome : [ `Complete | `Stalled of string | `Diverged of string ];
  recording_set_size : int;    (* accumulated points after this iteration *)
  graph_nodes : int;           (* constraint graph size at stall/finish *)
  selection_time : float;      (* seconds spent in key data value selection *)
}

type status =
  | Reproduced of {
      testcase : Testcase.t;
      verified : Verify.verdict option;
      solution : Exec.solution;
    }
  | Gave_up of string

type result = {
  status : status;
  iterations : iteration list;
  occurrences : int;
  total_symex_time : float;
  recording_points : point list;      (* base-program coordinates *)
  failure : Er_vm.Failure.t option;   (* base-program coordinates *)
  pipeline : Pipeline.result;         (* the structured result underneath *)
}

type workload = Pipeline.workload

let iteration_of_pipeline (it : Pipeline.iteration) : iteration =
  {
    occurrence = it.Pipeline.occurrence;
    trace_bytes = it.Pipeline.trace_bytes;
    trace_packets = it.Pipeline.trace_packets;
    ptwrites_recorded = it.Pipeline.ptwrites_recorded;
    vm_instrs = it.Pipeline.vm_instrs;
    symex_steps = it.Pipeline.symex_steps;
    symex_time = it.Pipeline.symex_time;
    solver_calls = it.Pipeline.solver_calls;
    solver_cost = it.Pipeline.solver_cost;
    outcome = Outcome.step_to_compat it.Pipeline.outcome;
    recording_set_size = it.Pipeline.recording_set_size;
    graph_nodes = it.Pipeline.graph_nodes;
    selection_time = it.Pipeline.selection_time;
  }

let reconstruct ?(config = default_config) ~(base_prog : program)
    ~(workload : workload) () : result =
  let p = Pipeline.run ~config ~base_prog ~workload () in
  {
    status =
      (match p.Pipeline.status with
       | Pipeline.Reproduced { testcase; verified; solution } ->
           Reproduced { testcase; verified; solution }
       | Pipeline.Gave_up g -> Gave_up (Outcome.give_up_to_string g));
    iterations = List.map iteration_of_pipeline p.Pipeline.iterations;
    occurrences = p.Pipeline.occurrences;
    total_symex_time = p.Pipeline.total_symex_time;
    recording_points = p.Pipeline.recording_points;
    failure = p.Pipeline.failure;
    pipeline = p;
  }
