(* The staged ER pipeline (paper Fig. 2, section 3.3.4).

   The iterative algorithm is a pipeline of four stages per failure
   occurrence:

     TRACER    — instrumented production run under PT-like tracing,
                 snapshot shipped when the tracked failure reoccurs;
     SHEPHERD  — symbolic execution shepherded along the decoded trace;
     SELECTOR  — key data value selection over the constraint graph at a
                 stall, extending the recording set;
     VERIFIER  — concrete re-execution of the generated test case.

   Each stage is a first-class module (so alternative tracers/solvers/
   selection policies can be swapped in), the loop is a fold of an
   immutable {!state} over occurrences, and every stage reports through
   the {!Events} bus.  Per-iteration accounting records are *derived from
   the event stream* rather than hand-assembled, so whatever a sink sees
   is, by construction, the same data the result reports. *)

open Er_ir.Types
module Interp = Er_vm.Interp
module Exec = Er_symex.Exec
module M = Er_metrics

(* The paper's key recording budget: ptwrite bytes (PTW packets are 9
   bytes on the wire) per million instructions of the traced run. *)
let m_bandwidth =
  M.gauge
    ~help:"Recording bandwidth of the last capture, in ptwrite bytes per            million instructions."
    "er_select_recording_bytes_per_minstr"

(* Hot-spot attribution: instructions the tracer did not re-execute
   because the production run resumed from a checkpoint, keyed per
   occurrence (cost = resume clock = prefix instructions saved). *)
let m_top_ckpt_savings =
  M.top ~k:8
    ~help:"Largest per-occurrence checkpoint savings (instructions not \
           re-executed on resume)."
    "er_tracer_top_checkpoint_saved_instrs"

type config = {
  max_occurrences : int;           (* bound on production runs consumed *)
  exec_config : Exec.config;
  vm_config : Interp.config;
  ring_bytes : int;                (* trace ring buffer size *)
  verify : bool;                   (* re-execute the generated test case *)
  incremental : bool;              (* resume runs from CoW checkpoints *)
  checkpoint_interval : int;       (* instructions between checkpoints *)
}

let default_config =
  {
    max_occurrences = 24;
    exec_config = Exec.default_config;
    vm_config = Interp.default_config;
    ring_bytes = 1 lsl 22;
    verify = true;
    incremental = true;
    checkpoint_interval = 1000;
  }

(* A workload produces the inputs (and scheduler seed) of the k-th
   occurrence of the failure in production. *)
type workload = occurrence:int -> Er_vm.Inputs.t * int

(* The forward direction: the plan-driven tracer reports failures in
   base-program coordinates; the analysis stages think in instrumented
   ones. *)
let forward_failure (fwd : point -> point) (f : Er_vm.Failure.t) :
  Er_vm.Failure.t =
  { f with
    Er_vm.Failure.point = fwd f.Er_vm.Failure.point;
    stack = List.map fwd f.Er_vm.Failure.stack }

(* ---------------------------------------------------------------- *)
(* Stage interfaces                                                  *)
(* ---------------------------------------------------------------- *)

(* What the tracer ships to the analysis engine: the decoded trace
   snapshot plus the failure context of the run that produced it. *)
type capture = {
  cap_bytes : int;                       (* raw snapshot size *)
  cap_packets : int;
  cap_ptwrites : int;
  cap_switches : int;
  cap_vm_instrs : int;
  cap_overwritten : int;                 (* ring bytes lost to wrap-around *)
  cap_split : Er_trace.Decoder.split;
  cap_failure : Er_vm.Failure.t;         (* instrumented coordinates *)
  cap_base_failure : Er_vm.Failure.t;    (* base-program coordinates *)
  cap_failure_clock : int;
  cap_sched_seed : int;
}

type trace_outcome =
  | Captured of capture
  | No_failure                 (* the run finished without the failure *)
  | Different_failure          (* an unrelated bug fired; keep waiting *)
  | Decode_failed of string    (* snapshot shipped but unusable *)

(* Checkpoint accounting of a whole reconstruction. *)
type ckpt_stats = {
  ck_taken : int;              (* checkpoints captured *)
  ck_resumes : int;            (* production runs resumed from one *)
  ck_saved_instrs : int;       (* shared-prefix instructions not re-executed *)
  ck_executed_instrs : int;    (* instructions the tracer actually executed *)
}

module type TRACER = sig
  (* A tracer session persists across the occurrences of one
     reconstruction, so consecutive production runs can share state —
     the default tracer keeps one resumable VM plus the encoder and
     resumes each run from the deepest checkpoint still valid for the
     next occurrence's recording set, inputs and scheduler seed. *)
  type session

  val start : config:config -> base_prog:Er_ir.Prog.t -> session

  (* One production run of the base program under tracing, recording
     [points] (base coordinates; must extend the previous run's set).
     [forward] maps base to instrumented coordinates — the shipped
     failure context is what an instrumented binary would have reported.
     [tracked] is the failure identity ER is keyed on (base coordinates);
     [None] until the first occurrence pins it down.  The second
     component is the resume clock when the run continued from a
     checkpoint instead of starting over. *)
  val capture :
    session:session ->
    config:config ->
    points:point list ->
    forward:(point -> point) ->
    tracked:Er_vm.Failure.t option ->
    inputs:Er_vm.Inputs.t ->
    sched_seed:int ->
    trace_outcome * int option

  val stats : session -> ckpt_stats
end

module type SHEPHERD = sig
  val analyze :
    config:Exec.config -> prog:Er_ir.Prog.t -> capture:capture -> Exec.result
end

(* The selector's answer: which base-program points to instrument next,
   plus the bottleneck statistics that justified the choice. *)
type selection = {
  sel_points : point list;       (* new points only — deduped vs existing *)
  sel_longest_chain : int;
  sel_largest_object_bytes : int;
}

module type SELECTOR = sig
  val select :
    stall:Exec.stall_info ->
    mapper:Er_select.Instrument.mapper ->
    existing:point list ->
    selection
end

module type VERIFIER = sig
  val verify :
    solution:Exec.solution option ->
    base_prog:Er_ir.Prog.t ->
    testcase:Testcase.t ->
    expected_failure:Er_vm.Failure.t ->
    expected_branches:bool array ->
    sched_seed:int ->
    Verify.verdict
end

(* ---------------------------------------------------------------- *)
(* Default stage implementations                                     *)
(* ---------------------------------------------------------------- *)

(* The default tracer runs the *base* program with a recording plan
   (virtual ptwrites fired by the VM at plan-marked definitions) instead
   of an instrumented copy.  The executed program is therefore constant
   across iterations, which is what makes checkpoints reusable when the
   recording set grows: a checkpoint taken under iteration N's plan can
   seed iteration N+1 whenever

     - the new recording set extends the old one (always true: the
       selector appends),
     - the scheduler seed matches, or the program is spawn-free and
       cannot observe the seed,
     - the input values consumed up to the checkpoint are unchanged
       ([Vm_state.inputs_prefix_ok]), and
     - every *new* point lands in a block first executed at or after the
       checkpoint ([Vm_state.first_exec_clock]) — so no virtual ptwrite
       of the new plan falls inside the shared prefix, and the resumed
       packet stream stays bit-identical to a from-scratch run's.

   The encoder is checkpointed in lockstep with the VM (ring position,
   mid-TNT pending bits, cumulative stats), so a resumed capture
   continues the packet stream exactly where the checkpoint left it. *)
module Default_tracer : TRACER = struct
  module Vs = Er_vm.Vm_state
  module Enc = Er_trace.Encoder

  type session = {
    s_prog : Er_ir.Prog.t;               (* the base program; never rewritten *)
    s_enc : Enc.t;
    s_hooks : Interp.hooks;
    mutable s_vm : Vs.t option;          (* state of the last production run *)
    mutable s_seed : int;                (* scheduler seed that run used *)
    mutable s_points : point list;       (* recording set it ran under *)
    (* checkpoints of the last run, deepest (highest clock) first *)
    mutable s_cks : (Vs.checkpoint * Enc.checkpoint) list;
    mutable s_taken : int;
    mutable s_resumes : int;
    mutable s_saved : int;
    mutable s_executed : int;
  }

  let start ~config ~base_prog =
    let enc = Enc.create ~ring_bytes:config.ring_bytes () in
    let hooks =
      {
        Interp.no_hooks with
        Interp.on_branch = Some (fun b -> Enc.branch enc b);
        on_switch = Some (fun ~tid ~clock -> Enc.thread_switch enc ~tid ~clock);
        on_ptwrite = Some (fun v -> Enc.ptwrite enc v);
        on_alloc = Some (fun v -> Enc.ptwrite enc v);
      }
    in
    { s_prog = base_prog; s_enc = enc; s_hooks = hooks; s_vm = None;
      s_seed = 0; s_points = []; s_cks = []; s_taken = 0; s_resumes = 0;
      s_saved = 0; s_executed = 0 }

  (* Deepest checkpoint of the previous run still valid for a run with
     [points]/[inputs]/[sched_seed], per the conditions above. *)
  let resume_candidate s ~points ~inputs ~sched_seed =
    match s.s_vm with
    | None -> None
    | Some vm ->
        if not (Er_select.Recording.is_prefix s.s_points points) then None
        else if sched_seed <> s.s_seed && not (Vs.seed_independent vm) then None
        else begin
          let rec added = function
            | _ :: ps, _ :: qs -> added (ps, qs)
            | [], rest -> rest
            | _, [] -> []
          in
          let fresh_points = added (s.s_points, points) in
          let valid (vck, eck) =
            let c = Vs.clock_of_checkpoint vck in
            Vs.inputs_prefix_ok vm vck ~fresh:inputs
            && Enc.can_revert s.s_enc eck
            && List.for_all
                 (fun pt ->
                    match Vs.first_exec_clock vm pt with
                    | None -> true        (* block never ran: not in the prefix *)
                    | Some fc -> c <= fc)
                 fresh_points
          in
          Option.map (fun ck -> (vm, ck)) (List.find_opt valid s.s_cks)
        end

  (* Ready the VM for one production run: resume the persistent state
     from the deepest valid checkpoint, or rebuild from scratch. *)
  let arm s ~config ~points ~inputs ~sched_seed =
    let plan () = Vs.plan_of_points (Er_ir.Prog.lowered s.s_prog) points in
    let resume =
      if config.incremental then resume_candidate s ~points ~inputs ~sched_seed
      else None
    in
    match resume with
    | Some (vm, (vck, eck)) ->
        let at = Vs.clock_of_checkpoint vck in
        Vs.revert vm vck;
        if not (Enc.revert s.s_enc eck) then
          failwith "Pipeline: encoder refused a validated checkpoint";
        Vs.swap_inputs vm inputs;
        Vs.set_plan vm (plan ());
        (* checkpoints beyond the resume point describe the abandoned
           suffix of the previous run *)
        s.s_cks <-
          List.filter (fun (v, _) -> Vs.clock_of_checkpoint v <= at) s.s_cks;
        s.s_points <- points;
        s.s_resumes <- s.s_resumes + 1;
        s.s_saved <- s.s_saved + at;
        (vm, Some at)
    | None ->
        Enc.reset s.s_enc;
        Enc.start s.s_enc;
        let vm_config =
          { config.vm_config with Interp.sched_seed; hooks = s.s_hooks }
        in
        let vm = Vs.create ~config:vm_config ~plan:(plan ()) s.s_prog inputs in
        s.s_vm <- Some vm;
        s.s_seed <- sched_seed;
        s.s_points <- points;
        s.s_cks <- [];
        (vm, None)

  (* Run to the end, pausing at quantum boundaries every
     [checkpoint_interval] instructions to snapshot VM and encoder
     together.  Pausing commutes with execution, so the checkpointed run
     is step-identical to an uninterrupted one. *)
  let run_traced s ~config vm =
    if not config.incremental then Vs.run_to_end vm
    else begin
      let interval = max 1 config.checkpoint_interval in
      let rec drive target =
        match Vs.run ~pause_at:target vm with
        | Some r -> r
        | None ->
            s.s_cks <- (Vs.snapshot vm, Enc.checkpoint s.s_enc) :: s.s_cks;
            s.s_taken <- s.s_taken + 1;
            drive (Vs.clock vm + interval)
      in
      drive (Vs.clock vm + interval)
    end

  let capture ~session:s ~config ~points ~forward ~tracked ~inputs ~sched_seed =
    let vm, resumed = arm s ~config ~points ~inputs ~sched_seed in
    let c0 = Vs.clock vm in
    let r = run_traced s ~config vm in
    s.s_executed <- s.s_executed + (r.Interp.instr_count - c0);
    let outcome =
      match r.Interp.outcome with
      | Interp.Finished _ -> No_failure
      | Interp.Failed base_failure -> (
          match tracked with
          | Some f0 when not (Er_vm.Failure.same_failure f0 base_failure) ->
              (* ER keys on the failing program counter and call stack and
                 waits for the tracked failure to reoccur *)
              Different_failure
          | _ -> (
              let raw = Enc.finish s.s_enc in
              let stats = Enc.stats s.s_enc in
              match Er_trace.Decoder.decode raw with
              | Error e -> Decode_failed (Er_trace.Decoder.error_to_string e)
              | Ok events ->
                  Captured
                    {
                      cap_bytes = Bytes.length raw;
                      cap_packets = stats.Er_trace.Encoder.packets;
                      cap_ptwrites = stats.Er_trace.Encoder.ptwrites;
                      cap_switches = stats.Er_trace.Encoder.switches;
                      cap_vm_instrs = r.Interp.instr_count;
                      cap_overwritten = Enc.overwritten s.s_enc;
                      cap_split = Er_trace.Decoder.split events;
                      cap_failure = forward_failure forward base_failure;
                      cap_base_failure = base_failure;
                      cap_failure_clock = r.Interp.instr_count;
                      cap_sched_seed = sched_seed;
                    }))
    in
    (outcome, resumed)

  let stats s =
    { ck_taken = s.s_taken; ck_resumes = s.s_resumes;
      ck_saved_instrs = s.s_saved; ck_executed_instrs = s.s_executed }
end

module Default_shepherd : SHEPHERD = struct
  let analyze ~config ~prog ~capture =
    Exec.run ~config prog ~trace:capture.cap_split ~failure:capture.cap_failure
      ~failure_clock:capture.cap_failure_clock
end

module Default_selector : SELECTOR = struct
  let select ~stall ~mapper ~existing =
    let bset =
      Er_select.Bottleneck.compute stall.Exec.graph stall.Exec.memory
    in
    let plan =
      Er_select.Recording.reduce stall.Exec.graph
        bset.Er_select.Bottleneck.elements
    in
    let mapped = List.filter_map mapper (Er_select.Recording.points plan) in
    {
      sel_points = Er_select.Recording.fresh ~existing mapped;
      sel_longest_chain = bset.Er_select.Bottleneck.longest_chain;
      sel_largest_object_bytes = bset.Er_select.Bottleneck.largest_object_bytes;
    }
end

module Default_verifier : VERIFIER = struct
  let verify ~solution ~base_prog ~testcase ~expected_failure
      ~expected_branches ~sched_seed =
    Verify.check ~solution ~base_prog ~testcase ~expected_failure
      ~expected_branches ~sched_seed
end

(* ---------------------------------------------------------------- *)
(* Results                                                           *)
(* ---------------------------------------------------------------- *)

type iteration = {
  occurrence : int;
  trace_bytes : int;
  trace_packets : int;
  ptwrites_recorded : int;
  vm_instrs : int;
  ring_overwritten : int;      (* trace bytes lost to ring wrap-around *)
  trace_time : float;          (* tracer stage wall clock *)
  symex_steps : int;
  symex_time : float;          (* shepherd stage wall clock *)
  solver_calls : int;
  solver_cost : int;
  cache_hits : int;            (* solver result-cache hits of this run *)
  cache_misses : int;
  outcome : Outcome.step;
  recording_set_size : int;    (* accumulated points after this iteration *)
  graph_nodes : int;           (* constraint graph size at stall/finish *)
  selection_time : float;      (* selector stage wall clock *)
  verify_time : float;         (* verifier stage wall clock *)
}

type status =
  | Reproduced of {
      testcase : Testcase.t;
      verified : Verify.verdict option;
      solution : Exec.solution;
    }
  | Gave_up of Outcome.give_up

type result = {
  status : status;
  iterations : iteration list;
  occurrences : int;           (* failure occurrences ER analyzed *)
  runs : int;                  (* production runs consumed, incl. skipped *)
  total_symex_time : float;
  recording_points : point list;  (* base-program coordinates *)
  failure : Er_vm.Failure.t option;
  ckpt : ckpt_stats;           (* tracer checkpoint/resume accounting *)
  events : Events.event list;  (* the full buffered event stream *)
}

(* ---------------------------------------------------------------- *)
(* Accounting: iterations are a pure function of the event stream    *)
(* ---------------------------------------------------------------- *)

let iterations_of_events (evs : Events.event list) : iteration list =
  let blank occurrence total_points =
    {
      occurrence;
      trace_bytes = 0;
      trace_packets = 0;
      ptwrites_recorded = 0;
      vm_instrs = 0;
      ring_overwritten = 0;
      trace_time = 0.0;
      symex_steps = 0;
      symex_time = 0.0;
      solver_calls = 0;
      solver_cost = 0;
      cache_hits = 0;
      cache_misses = 0;
      outcome = Outcome.Completed;
      recording_set_size = total_points;
      graph_nodes = 0;
      selection_time = 0.0;
      verify_time = 0.0;
    }
  in
  (* [cur] is the iteration being assembled for the occurrence whose trace
     was captured; it is flushed when the next occurrence starts or the
     stream ends.  [total] tracks the running recording-set size. *)
  let flush acc = function None -> acc | Some it -> it :: acc in
  let acc, cur, _total =
    List.fold_left
      (fun (acc, cur, total) (ev : Events.event) ->
         match ev with
         | Events.Occurrence_started _ -> (flush acc cur, None, total)
         | Events.Trace_captured
             { occurrence; bytes; packets; ptwrites; vm_instrs; overwritten;
               elapsed; _ } ->
             ( acc,
               Some
                 { (blank occurrence total) with
                   trace_bytes = bytes;
                   trace_packets = packets;
                   ptwrites_recorded = ptwrites;
                   vm_instrs;
                   ring_overwritten = overwritten;
                   trace_time = elapsed },
               total )
         | Events.Symex_finished
             { steps; solver_calls; solver_cost; cache_hits; cache_misses;
               graph_nodes; outcome; elapsed; _ } ->
             let upd it =
               { it with
                 symex_steps = steps;
                 symex_time = elapsed;
                 solver_calls;
                 solver_cost;
                 cache_hits;
                 cache_misses;
                 graph_nodes;
                 outcome =
                   (match outcome with
                    | `Complete -> Outcome.Completed
                    | `Stalled ->
                        (* details arrive with the Stall / Points_added
                           events of the selector *)
                        Outcome.Stalled
                          { Outcome.reason = ""; longest_chain = 0;
                            largest_object_bytes = 0; points_added = 0 }
                    | `Diverged -> Outcome.Diverged "") }
             in
             (acc, Option.map upd cur, total)
         | Events.Diverged { reason; _ } ->
             let upd it = { it with outcome = Outcome.Diverged reason } in
             (acc, Option.map upd cur, total)
         | Events.Stall { reason; chain; object_bytes; _ } ->
             let upd it =
               match it.outcome with
               | Outcome.Stalled s ->
                   { it with
                     outcome =
                       Outcome.Stalled
                         { s with Outcome.reason; longest_chain = chain;
                           largest_object_bytes = object_bytes } }
               | _ -> it
             in
             (acc, Option.map upd cur, total)
         | Events.Points_added { added; total = new_total; elapsed; _ } ->
             let upd it =
               let outcome =
                 match it.outcome with
                 | Outcome.Stalled s ->
                     Outcome.Stalled { s with Outcome.points_added = added }
                 | o -> o
               in
               { it with
                 outcome;
                 selection_time = elapsed;
                 recording_set_size = new_total }
             in
             (flush acc (Option.map upd cur), None, new_total)
         | Events.Verified { elapsed; _ } ->
             let upd it = { it with verify_time = elapsed } in
             (acc, Option.map upd cur, total)
         (* [Checkpoint_resumed] is deliberately ignored: incremental and
            from-scratch reconstructions must derive identical iteration
            trajectories. *)
         | Events.Run_skipped _ | Events.Checkpoint_resumed _
         | Events.Decode_failed _ | Events.Budget_escalated _
         | Events.Reproduced _ | Events.Gave_up _ | Events.Metrics_snapshot _
         | Events.Cache_status _ | Events.Pipeline_finished _ ->
             (acc, cur, total))
      ([], None, 0) evs
  in
  List.rev (flush acc cur)

(* ---------------------------------------------------------------- *)
(* The fold over occurrences                                         *)
(* ---------------------------------------------------------------- *)

(* Immutable pipeline state threaded through the fold — replaces the
   seven mutable refs of the original driver loop. *)
type state = {
  st_run : int;                          (* production runs consumed *)
  st_points : point list;                (* recording set, base coords *)
  st_exec_config : Exec.config;          (* escalates at fixpoints *)
  st_tracked : Er_vm.Failure.t option;   (* failure identity, base coords *)
  st_final : status option;
}

module Make (T : TRACER) (Sh : SHEPHERD) (Sel : SELECTOR) (V : VERIFIER) =
struct
  let run ?(config = default_config) ?(events = Events.null)
      ?(should_stop = fun () -> false) ~(base_prog : program)
      ~(workload : workload) () : result =
    let base_indexed = Er_ir.Prog.of_program base_prog in
    let session = T.start ~config ~base_prog:base_indexed in
    let buffer, buffered = Events.buffer () in
    let emit = Events.tee buffer events in
    let occurrence_body (st : state) : state =
      M.with_span "occurrence" @@ fun () ->
      let occ = st.st_run + 1 in
      emit (Events.Occurrence_started { occurrence = occ });
      let inputs, sched_seed = workload ~occurrence:occ in
      (* --- stage 1: production run under tracing --- *)
      let t0 = Sys.time () in
      let outcome, resumed =
        M.with_span "trace" (fun () ->
            T.capture ~session ~config ~points:st.st_points
              ~forward:(Er_select.Instrument.forward base_prog st.st_points)
              ~tracked:st.st_tracked ~inputs ~sched_seed)
      in
      (match resumed with
       | Some at_clock ->
           M.top_observe m_top_ckpt_savings
             ~key:(Printf.sprintf "occurrence-%d" occ)
             at_clock;
           emit (Events.Checkpoint_resumed { occurrence = occ; at_clock })
       | None -> ());
      match outcome with
      | No_failure ->
          emit
            (Events.Run_skipped
               { occurrence = occ; reason = Events.No_failure });
          { st with st_run = occ }
      | Different_failure ->
          emit
            (Events.Run_skipped
               { occurrence = occ; reason = Events.Different_failure });
          { st with st_run = occ }
      | Decode_failed e ->
          emit (Events.Decode_failed { occurrence = occ; error = e });
          { st with st_run = occ;
            st_final = Some (Gave_up (Outcome.Decode_error e)) }
      | Captured cap -> (
          (* The analysis stages think in instrumented coordinates, so the
             instrumented program is still materialized — but only for
             captures, never for the production run itself. *)
          let inst_prog, mapper =
            Er_select.Instrument.apply base_prog st.st_points
          in
          let inst_indexed = Er_ir.Prog.of_program inst_prog in
          emit
            (Events.Trace_captured
               { occurrence = occ; bytes = cap.cap_bytes;
                 packets = cap.cap_packets; ptwrites = cap.cap_ptwrites;
                 switches = cap.cap_switches; vm_instrs = cap.cap_vm_instrs;
                 overwritten = cap.cap_overwritten;
                 elapsed = Sys.time () -. t0 });
          if cap.cap_vm_instrs > 0 then
            M.set m_bandwidth
              (float_of_int (cap.cap_ptwrites * 9)
               *. 1e6
               /. float_of_int cap.cap_vm_instrs);
          let tracked =
            match st.st_tracked with
            | Some _ as t -> t
            | None -> Some cap.cap_base_failure
          in
          (* --- stage 2: shepherded symbolic execution --- *)
          let t1 = Sys.time () in
          let sx =
            M.with_span "symex" (fun () ->
                Sh.analyze ~config:st.st_exec_config ~prog:inst_indexed
                  ~capture:cap)
          in
          let symex_time = Sys.time () -. t1 in
          let finished outcome ~graph_nodes =
            emit
              (Events.Symex_finished
                 { occurrence = occ; steps = sx.Exec.steps;
                   solver_calls = sx.Exec.solver_calls;
                   solver_cost = sx.Exec.solver_cost;
                   cache_hits = sx.Exec.cache_hits;
                   cache_misses = sx.Exec.cache_misses; graph_nodes; outcome;
                   elapsed = symex_time })
          in
          match sx.Exec.outcome with
          | Exec.Complete solution ->
              (* graph size at completion = the distinct nodes of the final
                 path condition (what Cgraph.node_count folds over) *)
              let graph_nodes =
                Er_smt.Expr.fold_subterms
                  (fun n _ -> n + 1)
                  0 solution.Exec.path_constraints
              in
              finished `Complete ~graph_nodes;
              let testcase = Testcase.of_solution solution in
              (* --- stage 4: verification by concrete re-execution --- *)
              let verified =
                if config.verify then begin
                  let t2 = Sys.time () in
                  let v =
                    M.with_span "verify" (fun () ->
                        V.verify ~solution:(Some solution)
                          ~base_prog:base_indexed ~testcase
                          ~expected_failure:cap.cap_base_failure
                          ~expected_branches:
                            cap.cap_split.Er_trace.Decoder.branches
                          ~sched_seed)
                  in
                  emit
                    (Events.Verified
                       { occurrence = occ; ok = v.Verify.ok;
                         same_failure = v.Verify.same_failure;
                         same_control_flow = v.Verify.same_control_flow;
                         elapsed = Sys.time () -. t2 });
                  Some v
                end
                else None
              in
              emit
                (Events.Reproduced
                   { occurrence = occ;
                     testcase_values = Testcase.total_values testcase });
              { st with st_run = occ; st_tracked = tracked;
                st_final = Some (Reproduced { testcase; verified; solution }) }
          | Exec.Stalled stall ->
              finished `Stalled
                ~graph_nodes:(Er_symex.Cgraph.node_count stall.Exec.graph);
              (* --- stage 3: key data value selection --- *)
              let t2 = Sys.time () in
              let sel =
                M.with_span "select" (fun () ->
                    Sel.select ~stall ~mapper ~existing:st.st_points)
              in
              let selection_time = Sys.time () -. t2 in
              emit
                (Events.Stall
                   { occurrence = occ; reason = stall.Exec.stall_reason;
                     chain = sel.sel_longest_chain;
                     object_bytes = sel.sel_largest_object_bytes });
              let points = st.st_points @ sel.sel_points in
              emit
                (Events.Points_added
                   { occurrence = occ; added = List.length sel.sel_points;
                     total = List.length points; elapsed = selection_time });
              let exec_config =
                if sel.sel_points = [] then begin
                  (* selection fixpoint while symex still stalls: give the
                     solver a longer deterministic timeout, as ER does for
                     infrequent failures *)
                  let ec =
                    { st.st_exec_config with
                      Exec.solver_budget =
                        4 * st.st_exec_config.Exec.solver_budget;
                      gate_budget = 4 * st.st_exec_config.Exec.gate_budget }
                  in
                  emit
                    (Events.Budget_escalated
                       { occurrence = occ;
                         solver_budget = ec.Exec.solver_budget;
                         gate_budget = ec.Exec.gate_budget });
                  ec
                end
                else st.st_exec_config
              in
              { st_run = occ; st_points = points; st_exec_config = exec_config;
                st_tracked = tracked; st_final = None }
          | Exec.Diverged msg ->
              finished `Diverged ~graph_nodes:0;
              emit (Events.Diverged { occurrence = occ; reason = msg });
              { st with st_run = occ; st_tracked = tracked })
    in
    let occurrence_step (st : state) : state =
      let st' = occurrence_body st in
      (* one registry snapshot per iteration, on the bus like any other
         stage report — only when somebody turned metrics on, so JSONL
         streams stay lean by default *)
      if M.enabled M.default then
        emit
          (Events.Metrics_snapshot
             { occurrence = st'.st_run; snapshot = M.snapshot () });
      st'
    in
    let rec fold st =
      match st.st_final with
      | Some _ -> st
      | None when st.st_run >= config.max_occurrences -> st
      (* cooperative cancellation: a cancelled job finishes at the next
         occurrence boundary with whatever it has — the partial state is
         still a well-formed result (status [Gave_up Cancelled]) *)
      | None when should_stop () ->
          { st with st_final = Some (Gave_up Outcome.Cancelled) }
      | None -> fold (occurrence_step st)
    in
    let st =
      fold
        { st_run = 0; st_points = []; st_exec_config = config.exec_config;
          st_tracked = None; st_final = None }
    in
    let status =
      match st.st_final with
      | Some s -> s
      | None -> Gave_up (Outcome.Max_occurrences config.max_occurrences)
    in
    (match status with
     | Gave_up g ->
         emit
           (Events.Gave_up
              { occurrence = st.st_run;
                reason = Outcome.give_up_to_string g })
     | Reproduced _ -> ());
    let iterations = iterations_of_events (buffered ()) in
    let reproduced =
      match status with Reproduced _ -> true | Gave_up _ -> false
    in
    emit
      (Events.Pipeline_finished
         { runs = st.st_run; occurrences = List.length iterations; reproduced });
    {
      status;
      iterations;
      occurrences = List.length iterations;
      runs = st.st_run;
      total_symex_time =
        List.fold_left (fun a it -> a +. it.symex_time) 0.0 iterations;
      recording_points = st.st_points;
      failure = st.st_tracked;
      ckpt = T.stats session;
      events = buffered ();
    }
end

module Default = Make (Default_tracer) (Default_shepherd) (Default_selector)
    (Default_verifier)

(* The staged pipeline with the paper's stage implementations. *)
let run = Default.run

(* ---------------------------------------------------------------- *)
(* Machine-readable rendering of a result                            *)
(* ---------------------------------------------------------------- *)

let point_to_json (p : point) : Json.t =
  Json.Obj
    [ ("func", Json.Str p.p_func);
      ("block", Json.Str p.p_block);
      ("index", Json.Int p.p_index) ]

let iteration_to_json (it : iteration) : Json.t =
  let open Json in
  Obj
    [ ("occurrence", Int it.occurrence);
      ("trace_bytes", Int it.trace_bytes);
      ("trace_packets", Int it.trace_packets);
      ("ptwrites_recorded", Int it.ptwrites_recorded);
      ("vm_instrs", Int it.vm_instrs);
      ("ring_overwritten", Int it.ring_overwritten);
      ("trace_time", Float it.trace_time);
      ("symex_steps", Int it.symex_steps);
      ("symex_time", Float it.symex_time);
      ("solver_calls", Int it.solver_calls);
      ("solver_cost", Int it.solver_cost);
      ("cache_hits", Int it.cache_hits);
      ("cache_misses", Int it.cache_misses);
      ( "outcome",
        match it.outcome with
        | Outcome.Completed -> Obj [ ("kind", Str "complete") ]
        | Outcome.Stalled s ->
            Obj
              [ ("kind", Str "stalled");
                ("reason", Str s.Outcome.reason);
                ("chain", Int s.Outcome.longest_chain);
                ("object_bytes", Int s.Outcome.largest_object_bytes);
                ("points_added", Int s.Outcome.points_added) ]
        | Outcome.Diverged m ->
            Obj [ ("kind", Str "diverged"); ("reason", Str m) ] );
      ("recording_set_size", Int it.recording_set_size);
      ("graph_nodes", Int it.graph_nodes);
      ("selection_time", Float it.selection_time);
      ("verify_time", Float it.verify_time) ]

let result_to_json_value (r : result) : Json.t =
  let open Json in
  let status =
    match r.status with
    | Reproduced { testcase; verified; _ } ->
        Obj
          ([ ("kind", Str "reproduced");
             ( "testcase",
               Obj
                 (List.map
                    (fun (stream, vals) ->
                       (stream, List (List.map (fun v -> Str (Int64.to_string v)) vals)))
                    testcase.Testcase.streams) ) ]
           @
           match verified with
           | Some v ->
               [ ( "verified",
                   Obj
                     [ ("ok", Bool v.Verify.ok);
                       ("same_failure", Bool v.Verify.same_failure);
                       ("same_control_flow", Bool v.Verify.same_control_flow) ] ) ]
           | None -> [])
    | Gave_up g ->
        Obj
          [ ("kind", Str "gave_up");
            ("reason", Str (Outcome.give_up_to_string g)) ]
  in
  Obj
    [ ("status", status);
      ("occurrences", Int r.occurrences);
      ("runs", Int r.runs);
      ("total_symex_time", Float r.total_symex_time);
      ("recording_points", List (List.map point_to_json r.recording_points));
      ( "checkpoints",
        Obj
          [ ("taken", Int r.ckpt.ck_taken);
            ("resumes", Int r.ckpt.ck_resumes);
            ("saved_instrs", Int r.ckpt.ck_saved_instrs);
            ("executed_instrs", Int r.ckpt.ck_executed_instrs) ] );
      ("iterations", List (List.map iteration_to_json r.iterations)) ]

let result_to_json (r : result) : string = Json.to_string (result_to_json_value r)
