(* Multi-tenant job scheduler.

   A persistent pool of worker domains multiplexing {!Job} handles from
   many tenants — the execution engine behind both the batch {!Fleet}
   runner (one anonymous tenant, submit-all-then-await) and the
   [er_cli serve] daemon (many tenants, jobs arriving continuously).

   Scheduling is per-tenant fair round-robin over central FIFO queues,
   not work stealing: jobs are whole-bug reconstructions, coarse enough
   that dispatch cost is irrelevant, and the service contract is that a
   tenant's throughput degrades gracefully as others arrive — a greedy
   queue (or steal-from-the-busiest) would let one chatty tenant starve
   the rest.  The old work-stealing deque pool solved a different
   problem (many tiny tasks, one tenant) and is subsumed by this one.

   Backpressure is a bounded total queue: beyond [queue_limit] pending
   jobs, {!submit} refuses with [`Queue_full] and the daemon turns that
   into a 429-style reject frame.  Refusing at submit keeps the bound
   honest — there is no hidden retry buffer that grows instead.

   Crash isolation lives in {!Job.execute}: a job that raises becomes a
   [Crashed] outcome on its own handle; the worker domain survives and
   picks the next job. *)

type t = {
  mutex : Mutex.t;
  nonempty : Condition.t;            (* signalled on submit and shutdown *)
  queues : (string, Job.t Queue.t) Hashtbl.t;  (* per-tenant FIFO *)
  mutable ring : string list;        (* tenant round-robin order *)
  mutable pending : int;             (* total queued jobs, all tenants *)
  queue_limit : int;
  mutable stopping : bool;           (* drain remaining queue, then exit *)
  on_done : (Job.t -> unit) option;  (* completion callback, worker domain *)
  mutable domains : unit Domain.t array;
}

(* -- metrics ------------------------------------------------------- *)

let m_submitted =
  Er_metrics.counter ~help:"Jobs accepted by the scheduler."
    "er_sched_jobs_submitted_total"

let m_completed =
  Er_metrics.counter ~help:"Jobs executed to completion (any outcome)."
    "er_sched_jobs_completed_total"

let m_rejected =
  Er_metrics.counter ~help:"Submits refused (queue full or stopping)."
    "er_sched_jobs_rejected_total"

let m_cancelled =
  Er_metrics.counter ~help:"Jobs that finished cancelled."
    "er_sched_jobs_cancelled_total"

let m_crashed =
  Er_metrics.counter ~help:"Jobs that raised (isolated to the job)."
    "er_sched_jobs_crashed_total"

let m_depth =
  Er_metrics.gauge ~help:"Queued jobs across all tenants."
    "er_sched_queue_depth"

let m_wall =
  Er_metrics.histogram ~help:"Per-job execution wall time."
    ~buckets:[ 1e-3; 1e-2; 0.1; 1.; 10.; 60.; 600. ]
    "er_sched_job_wall_seconds"

(* -- dispatch ------------------------------------------------------ *)

(* Pick the next job under the lock: rotate the tenant ring until a
   non-empty queue is found.  Moving the chosen tenant to the back of
   the ring is the entire fairness mechanism — each tenant gets one job
   per revolution regardless of queue depth. *)
let take_locked t : Job.t option =
  let rec go seen = function
    | [] -> None
    | tenant :: rest -> (
        match Hashtbl.find_opt t.queues tenant with
        | Some q when not (Queue.is_empty q) ->
            let job = Queue.pop q in
            t.pending <- t.pending - 1;
            t.ring <- rest @ List.rev (tenant :: seen);
            Some job
        | _ -> go (tenant :: seen) rest)
  in
  go [] t.ring

let worker_loop t index =
  let rec loop () =
    Mutex.lock t.mutex;
    let rec next () =
      match take_locked t with
      | Some job ->
          Er_metrics.set m_depth (float_of_int t.pending);
          Some job
      | None ->
          if t.stopping then None
          else begin
            Condition.wait t.nonempty t.mutex;
            next ()
          end
    in
    let job = next () in
    Mutex.unlock t.mutex;
    match job with
    | None -> ()
    | Some job ->
        Job.execute ~worker:index job;
        Er_metrics.inc m_completed;
        Er_metrics.observe m_wall (Job.wall job);
        (match Job.poll job with
        | Some (Job.Crashed _) -> Er_metrics.inc m_crashed
        | Some (Job.Cancelled _) -> Er_metrics.inc m_cancelled
        | _ -> ());
        (match t.on_done with Some f -> f job | None -> ());
        loop ()
  in
  loop ()

(* -- public API ---------------------------------------------------- *)

let create ?(queue_limit = 256) ?on_done ~workers () : t =
  let workers = max 1 workers in
  let t =
    {
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      queues = Hashtbl.create 16;
      ring = [];
      pending = 0;
      queue_limit;
      stopping = false;
      on_done;
      domains = [||];
    }
  in
  t.domains <-
    Array.init workers (fun i -> Domain.spawn (fun () -> worker_loop t i));
  t

let workers t = Array.length t.domains

let submit t (job : Job.t) : (unit, [ `Queue_full | `Stopping ]) result =
  Mutex.lock t.mutex;
  let r =
    if t.stopping then Error `Stopping
    else if t.pending >= t.queue_limit then Error `Queue_full
    else begin
      let tenant = Job.tenant job in
      let q =
        match Hashtbl.find_opt t.queues tenant with
        | Some q -> q
        | None ->
            let q = Queue.create () in
            Hashtbl.add t.queues tenant q;
            t.ring <- t.ring @ [ tenant ];
            q
      in
      Queue.push job q;
      t.pending <- t.pending + 1;
      Er_metrics.set m_depth (float_of_int t.pending);
      Condition.broadcast t.nonempty;
      Ok ()
    end
  in
  Mutex.unlock t.mutex;
  (match r with
  | Ok () -> Er_metrics.inc m_submitted
  | Error _ -> Er_metrics.inc m_rejected);
  r

let pending t =
  Mutex.lock t.mutex;
  let p = t.pending in
  Mutex.unlock t.mutex;
  p

(* Stop accepting work, let the workers drain what is already queued,
   and join them.  Jobs still queued at shutdown run to completion —
   a daemon that accepted a submit owes its client a result. *)
let shutdown t =
  Mutex.lock t.mutex;
  t.stopping <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex;
  Array.iter Domain.join t.domains
