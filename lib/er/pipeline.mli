(** The staged ER pipeline (paper Fig. 2, section 3.3.4).

    Four stages per failure occurrence — TRACER (instrumented production
    run), SHEPHERD (trace-guided symbolic execution), SELECTOR (key data
    value selection at a stall), VERIFIER (concrete re-execution of the
    generated test case) — folded over occurrences until the failure is
    reproduced or a budget runs out.  Each stage is a first-class module
    so alternative implementations can be swapped in via {!Make}; every
    stage reports through the typed {!Events} bus and per-iteration
    accounting is derived from that stream.

    Entry points: callers construct a {!Job.request} and let a scheduler
    drive it, or call {!run} directly (what {!Job.execute} does under
    the hood).  The fold state, coordinate-mapping helpers and stage
    metrics are private. *)

open Er_ir.Types

type config = {
  max_occurrences : int;       (** bound on production runs consumed *)
  exec_config : Er_symex.Exec.config;
  vm_config : Er_vm.Interp.config;
  ring_bytes : int;            (** trace ring buffer size *)
  verify : bool;               (** re-execute the generated test case *)
  incremental : bool;          (** resume runs from CoW checkpoints *)
  checkpoint_interval : int;   (** instructions between checkpoints *)
}

val default_config : config

type workload = occurrence:int -> Er_vm.Inputs.t * int
(** Produces the inputs (and scheduler seed) of the k-th occurrence of
    the failure in production. *)

(** {1 Stage interfaces} *)

(** What the tracer ships to the analysis engine: the decoded trace
    snapshot plus the failure context of the run that produced it. *)
type capture = {
  cap_bytes : int;                       (** raw snapshot size *)
  cap_packets : int;
  cap_ptwrites : int;
  cap_switches : int;
  cap_vm_instrs : int;
  cap_overwritten : int;                 (** ring bytes lost to wrap-around *)
  cap_split : Er_trace.Decoder.split;
  cap_failure : Er_vm.Failure.t;         (** instrumented coordinates *)
  cap_base_failure : Er_vm.Failure.t;    (** base-program coordinates *)
  cap_failure_clock : int;
  cap_sched_seed : int;
}

type trace_outcome =
  | Captured of capture
  | No_failure                 (** the run finished without the failure *)
  | Different_failure          (** an unrelated bug fired; keep waiting *)
  | Decode_failed of string    (** snapshot shipped but unusable *)

(** Checkpoint accounting of a whole reconstruction. *)
type ckpt_stats = {
  ck_taken : int;              (** checkpoints captured *)
  ck_resumes : int;            (** production runs resumed from one *)
  ck_saved_instrs : int;       (** shared-prefix instructions not re-executed *)
  ck_executed_instrs : int;    (** instructions the tracer actually executed *)
}

module type TRACER = sig
  type session

  val start : config:config -> base_prog:Er_ir.Prog.t -> session

  val capture :
    session:session ->
    config:config ->
    points:point list ->
    forward:(point -> point) ->
    tracked:Er_vm.Failure.t option ->
    inputs:Er_vm.Inputs.t ->
    sched_seed:int ->
    trace_outcome * int option

  val stats : session -> ckpt_stats
end

module type SHEPHERD = sig
  val analyze :
    config:Er_symex.Exec.config ->
    prog:Er_ir.Prog.t ->
    capture:capture ->
    Er_symex.Exec.result
end

(** The selector's answer: which base-program points to instrument next,
    plus the bottleneck statistics that justified the choice. *)
type selection = {
  sel_points : point list;       (** new points only — deduped vs existing *)
  sel_longest_chain : int;
  sel_largest_object_bytes : int;
}

module type SELECTOR = sig
  val select :
    stall:Er_symex.Exec.stall_info ->
    mapper:Er_select.Instrument.mapper ->
    existing:point list ->
    selection
end

module type VERIFIER = sig
  val verify :
    solution:Er_symex.Exec.solution option ->
    base_prog:Er_ir.Prog.t ->
    testcase:Testcase.t ->
    expected_failure:Er_vm.Failure.t ->
    expected_branches:bool array ->
    sched_seed:int ->
    Verify.verdict
end

module Default_tracer : TRACER
module Default_shepherd : SHEPHERD
module Default_selector : SELECTOR
module Default_verifier : VERIFIER

(** {1 Results} *)

type iteration = {
  occurrence : int;
  trace_bytes : int;
  trace_packets : int;
  ptwrites_recorded : int;
  vm_instrs : int;
  ring_overwritten : int;      (** trace bytes lost to ring wrap-around *)
  trace_time : float;          (** tracer stage wall clock *)
  symex_steps : int;
  symex_time : float;          (** shepherd stage wall clock *)
  solver_calls : int;
  solver_cost : int;
  cache_hits : int;            (** solver result-cache hits of this run *)
  cache_misses : int;
  outcome : Outcome.step;
  recording_set_size : int;    (** accumulated points after this iteration *)
  graph_nodes : int;           (** constraint graph size at stall/finish *)
  selection_time : float;      (** selector stage wall clock *)
  verify_time : float;         (** verifier stage wall clock *)
}

type status =
  | Reproduced of {
      testcase : Testcase.t;
      verified : Verify.verdict option;
      solution : Er_symex.Exec.solution;
    }
  | Gave_up of Outcome.give_up

type result = {
  status : status;
  iterations : iteration list;
  occurrences : int;           (** failure occurrences ER analyzed *)
  runs : int;                  (** production runs consumed, incl. skipped *)
  total_symex_time : float;
  recording_points : point list;  (** base-program coordinates *)
  failure : Er_vm.Failure.t option;
  ckpt : ckpt_stats;           (** tracer checkpoint/resume accounting *)
  events : Events.event list;  (** the full buffered event stream *)
}

val iterations_of_events : Events.event list -> iteration list
(** Per-iteration accounting as a pure function of the event stream —
    whatever a sink saw is, by construction, the same data the result
    reports. *)

(** {1 Running} *)

module Make (_ : TRACER) (_ : SHEPHERD) (_ : SELECTOR) (_ : VERIFIER) : sig
  val run :
    ?config:config ->
    ?events:Events.sink ->
    ?should_stop:(unit -> bool) ->
    base_prog:program ->
    workload:workload ->
    unit ->
    result
end

val run :
  ?config:config ->
  ?events:Events.sink ->
  ?should_stop:(unit -> bool) ->
  base_prog:program ->
  workload:workload ->
  unit ->
  result
(** The staged pipeline with the paper's stage implementations.
    [should_stop] is polled at each occurrence boundary; when it turns
    true the fold finishes with status [Gave_up Cancelled] and whatever
    partial accounting it has ({!Job.cancel} wires this). *)

(** {1 Machine-readable rendering} *)

val point_to_json : point -> Json.t
val iteration_to_json : iteration -> Json.t
val result_to_json_value : result -> Json.t
val result_to_json : result -> string
