(** Domain-parallel batch execution over the job scheduler.

    The batch face of the job API: wraps each corpus bug in a
    {!Job.Thunk}, submits the lot to a {!Scheduler} pool under one
    tenant, awaits the handles in submission order and renders a
    speedup report.  Determinism contract: [run ~jobs:8] produces the
    same per-bug content as [run ~jobs:1]; only wall clocks and worker
    placement vary, and [report_to_json_value ~normalize:true] strips
    exactly those (the CI fleet-determinism gate diffs that view). *)

type job = {
  job_name : string;
  job_run : unit -> Pipeline.result;
  job_config : Job.Config.t;
      (** request config; {!Job.execute} binds the persistent solver
          store from its [cache_dir] — the budgets the thunk actually
          runs under are bound inside [job_run] *)
}

type outcome =
  | Finished of Pipeline.result
  | Worker_crashed of { exn : string; backtrace : string }
      (** the job raised; isolated to the job, not the fleet *)

type row = {
  row_name : string;
  row_outcome : outcome;
  row_worker : int;  (** index of the worker that executed the job *)
  row_wall : float;  (** wall-clock seconds the job took *)
}

type report = {
  rows : row list;  (** submission order, not completion order *)
  jobs : int;       (** workers actually used *)
  wall : float;     (** fleet wall clock, spawn to last join *)
  cpu : float;      (** sum of per-job walls: sequential-equivalent time *)
}

val speedup : report -> float

val run : ?jobs:int -> job list -> report
(** Execute the jobs on [jobs] worker domains (default
    [Domain.recommended_domain_count ()], capped at the job count). *)

val normalize_json : Json.t -> Json.t
(** Zero every wall-clock field of a result JSON — the determinism view
    used by the serve-vs-batch differential and the fleet gate. *)

val report_to_json_value : ?normalize:bool -> ?baseline:string * float -> report -> Json.t
(** [~normalize:true] renders per-bug content only — no wall clocks, no
    worker placement, no job count; two reports from the same corpus at
    different [-j] must render byte-identically.  [?baseline] adds the
    committed sequential baseline the human table compares against. *)

val report_to_json : ?normalize:bool -> ?baseline:string * float -> report -> string
