(** Load generation against an er-serve daemon.

    Replays bug names as N concurrent client connections (one domain
    and tenant each, pipelined submits, retry-on-reject) and measures
    reconstructions/sec, per-job latency and cross-client determinism.
    Shared by [er_cli loadgen] and the bench serve smoke. *)

type result = {
  lg_clients : int;
  lg_jobs : int;             (** results received across all clients *)
  lg_failed : int;           (** [Job_failed] frames *)
  lg_rejected : int;         (** reject-then-retry events (backpressure) *)
  lg_errors : int;           (** protocol errors + unexpected cancels *)
  lg_wall : float;
  lg_latencies : float list; (** submit → result receipt, seconds *)
  lg_results : (string * string) list;
      (** (bug, normalized payload) for every received result *)
}

val run :
  socket:string ->
  clients:int ->
  ?rounds:int ->
  bugs:string list ->
  unit ->
  result
(** Each client submits [bugs] × [rounds] (default 1) jobs pipelined
    and waits for all of them.  Latency is measured from the first
    submit, so backpressure delay lands in the tail percentiles. *)

val throughput : result -> float
(** Received results per second of wall clock. *)

val percentile : float -> float list -> float
(** Nearest-rank percentile, e.g. [percentile 99. r.lg_latencies]. *)

val deterministic : result -> bool
(** Every client received the trajectory-identical payload per bug:
    byte-identical after masking the three fields the persistent
    solver store is allowed to change ([solver_cost], [cache_hits],
    [cache_misses]) — a daemon running with [--cache-dir] serves warm
    repeats of a bug at lower cost, never with a different result. *)

val to_json_value : result -> Json.t
(** The BENCH serve section / [loadgen --json] rendering: clients,
    jobs, failed, rejected, wall, throughput_rps, p50/p99 ms,
    deterministic. *)
