(* First-class reconstruction jobs.

   ER's deployment story is continuous: failures arrive one at a time
   from a fleet of production VMs, not as a batch corpus.  This module is
   the job-centric entry point everything else now consumes — the batch
   {!Fleet} runner, the {!Server} daemon behind [er_cli serve], and the
   thin {!Driver} compatibility wrapper are all clients of the same
   request/handle API:

     - a {!request} names what to reconstruct (program + occurrence
       workload), who asked ({!request.tenant}) and under which budgets
       (one flattened {!Config.t} record with JSON round-trip, replacing
       the ad-hoc optional-argument threading of the old call sites);
     - {!create} turns a request into a handle; an executor (a scheduler
       worker, or the calling domain) drives it with {!execute};
     - the handle supports [status]/[poll]/[cancel]/[await] from any
       domain, with the usual typed {!Events} stream riding along.

   Determinism contract: {!execute} runs the pipeline inside
   {!Er_smt.Expr.in_fresh_space}, so a job's solver trajectory — and
   hence its normalized result JSON — depends only on its own request,
   never on which other jobs ran before or concurrently (the same
   mechanism fleet mode has always used). *)

(* ---------------------------------------------------------------- *)
(* Unified configuration                                             *)
(* ---------------------------------------------------------------- *)

module Config = struct
  (* Every serializable knob of a reconstruction, flattened into one
     record: the pipeline bounds, the symbolic executor budgets
     ({!Er_symex.Exec.config}) and the scalar VM limits
     ({!Er_vm.Interp.config}).  Deliberately excluded: [sched_seed]
     (the workload provides it per occurrence) and [hooks] (the tracer
     owns them) — the two fields that made the old per-call-site tuples
     unserializable. *)
  type t = {
    max_occurrences : int;       (* bound on production runs consumed *)
    solver_budget : int;         (* SAT work budget per query *)
    gate_budget : int;           (* bit-blasting budget for the run *)
    max_steps : int;             (* symex step bound *)
    progress_every : int;        (* Fig. 5 sampling period, in steps *)
    max_instrs : int;            (* concrete VM instruction bound *)
    max_call_depth : int;
    quantum : int;               (* scheduler quantum *)
    quantum_jitter : int;
    ring_bytes : int;            (* trace ring buffer size *)
    verify : bool;               (* re-execute the generated test case *)
    incremental : bool;          (* resume runs from CoW checkpoints *)
    checkpoint_interval : int;   (* instructions between checkpoints *)
    portfolio : int;             (* CDCL configs raced on a stall; 0 = off *)
    cache_dir : string option;   (* persistent solver-knowledge store *)
  }

  let of_pipeline (c : Pipeline.config) : t =
    {
      max_occurrences = c.Pipeline.max_occurrences;
      solver_budget = c.Pipeline.exec_config.Er_symex.Exec.solver_budget;
      gate_budget = c.Pipeline.exec_config.Er_symex.Exec.gate_budget;
      max_steps = c.Pipeline.exec_config.Er_symex.Exec.max_steps;
      progress_every = c.Pipeline.exec_config.Er_symex.Exec.progress_every;
      max_instrs = c.Pipeline.vm_config.Er_vm.Interp.max_instrs;
      max_call_depth = c.Pipeline.vm_config.Er_vm.Interp.max_call_depth;
      quantum = c.Pipeline.vm_config.Er_vm.Interp.quantum;
      quantum_jitter = c.Pipeline.vm_config.Er_vm.Interp.quantum_jitter;
      ring_bytes = c.Pipeline.ring_bytes;
      verify = c.Pipeline.verify;
      incremental = c.Pipeline.incremental;
      checkpoint_interval = c.Pipeline.checkpoint_interval;
      portfolio = c.Pipeline.exec_config.Er_symex.Exec.portfolio;
      cache_dir = None;
    }

  let to_pipeline (t : t) : Pipeline.config =
    {
      Pipeline.max_occurrences = t.max_occurrences;
      exec_config =
        {
          Er_symex.Exec.solver_budget = t.solver_budget;
          gate_budget = t.gate_budget;
          max_steps = t.max_steps;
          progress_every = t.progress_every;
          portfolio = t.portfolio;
        };
      vm_config =
        {
          Er_vm.Interp.default_config with
          Er_vm.Interp.max_instrs = t.max_instrs;
          max_call_depth = t.max_call_depth;
          quantum = t.quantum;
          quantum_jitter = t.quantum_jitter;
        };
      ring_bytes = t.ring_bytes;
      verify = t.verify;
      incremental = t.incremental;
      checkpoint_interval = t.checkpoint_interval;
    }

  let default = of_pipeline Pipeline.default_config

  (* JSON field table: one row per knob keeps the encoder, the strict
     decoder and the partial-override decoder in lockstep.  Adding a
     field here is the whole change. *)
  type field =
    | I of string * (t -> int) * (t -> int -> t)
    | B of string * (t -> bool) * (t -> bool -> t)
    | S of string * (t -> string option) * (t -> string option -> t)

  let fields =
    [
      I ("max_occurrences", (fun t -> t.max_occurrences),
         fun t v -> { t with max_occurrences = v });
      I ("solver_budget", (fun t -> t.solver_budget),
         fun t v -> { t with solver_budget = v });
      I ("gate_budget", (fun t -> t.gate_budget),
         fun t v -> { t with gate_budget = v });
      I ("max_steps", (fun t -> t.max_steps),
         fun t v -> { t with max_steps = v });
      I ("progress_every", (fun t -> t.progress_every),
         fun t v -> { t with progress_every = v });
      I ("max_instrs", (fun t -> t.max_instrs),
         fun t v -> { t with max_instrs = v });
      I ("max_call_depth", (fun t -> t.max_call_depth),
         fun t v -> { t with max_call_depth = v });
      I ("quantum", (fun t -> t.quantum), fun t v -> { t with quantum = v });
      I ("quantum_jitter", (fun t -> t.quantum_jitter),
         fun t v -> { t with quantum_jitter = v });
      I ("ring_bytes", (fun t -> t.ring_bytes),
         fun t v -> { t with ring_bytes = v });
      B ("verify", (fun t -> t.verify), fun t v -> { t with verify = v });
      B ("incremental", (fun t -> t.incremental),
         fun t v -> { t with incremental = v });
      I ("checkpoint_interval", (fun t -> t.checkpoint_interval),
         fun t v -> { t with checkpoint_interval = v });
      I ("portfolio", (fun t -> t.portfolio),
         fun t v -> { t with portfolio = v });
      S ("cache_dir", (fun t -> t.cache_dir),
         fun t v -> { t with cache_dir = v });
    ]

  let to_json_value (t : t) : Json.t =
    Json.Obj
      (List.map
         (function
           | I (k, get, _) -> (k, Json.Int (get t))
           | B (k, get, _) -> (k, Json.Bool (get t))
           | S (k, get, _) ->
               (k, match get t with Some s -> Json.Str s | None -> Json.Null))
         fields)

  let to_json t = Json.to_string (to_json_value t)

  (* Decode an object over [base]: present fields override, absent
     fields keep [base]'s value, and anything else — an unknown key, a
     mistyped value, a non-object — rejects the whole document.  With
     [~base:default] this is the submit-frame override decoder; a full
     object round-trips exactly ([of_json_value (to_json_value t) = Some
     t]). *)
  let of_json_value ?(base = default) (j : Json.t) : t option =
    match j with
    | Json.Obj kvs ->
        let known k =
          List.exists
            (function
              | I (k', _, _) | B (k', _, _) | S (k', _, _) -> String.equal k k')
            fields
        in
        if not (List.for_all (fun (k, _) -> known k) kvs) then None
        else
          List.fold_left
            (fun acc field ->
               Option.bind acc (fun t ->
                   let k =
                     match field with
                     | I (k, _, _) | B (k, _, _) | S (k, _, _) -> k
                   in
                   match (List.assoc_opt k kvs, field) with
                   | None, _ -> Some t
                   | Some (Json.Int v), I (_, _, set) -> Some (set t v)
                   | Some (Json.Bool v), B (_, _, set) -> Some (set t v)
                   | Some (Json.Str v), S (_, _, set) -> Some (set t (Some v))
                   | Some Json.Null, S (_, _, set) -> Some (set t None)
                   | Some _, _ -> None))
            (Some base) fields
    | _ -> None

  let of_json ?base (s : string) : t option =
    Option.bind (Json.parse s) (of_json_value ?base)

  (* Digest basis for the persistent solver store: every knob that could
     alter the solver query sequence — the whole config minus the cache
     location itself, so pointing the same job at a moved directory
     still warm-starts. *)
  let fingerprint (t : t) : string = to_json { t with cache_dir = None }
end

(* ---------------------------------------------------------------- *)
(* Requests                                                          *)
(* ---------------------------------------------------------------- *)

(* What to reconstruct: a base program plus the workload producing the
   inputs of each failure occurrence.  The daemon's resolver maps corpus
   bug names to sources; embedders can hand in anything. *)
type source = {
  src_name : string;
  src_prog : Er_ir.Types.program;
  src_workload : Pipeline.workload;
}

(* The job body.  [Reconstruct] is the first-class form — the pipeline
   runs under the request's config with cooperative cancellation.
   [Thunk] is the batch-compat form ({!Fleet} jobs are pre-bound
   closures over corpus specs): the body is opaque, so such a job can
   only be cancelled while still queued. *)
type work =
  | Reconstruct of source
  | Thunk of { name : string; run : unit -> Pipeline.result }

type request = {
  tenant : string;               (* fair-queueing identity *)
  work : work;
  config : Config.t;
}

(* ---------------------------------------------------------------- *)
(* Handles                                                           *)
(* ---------------------------------------------------------------- *)

type outcome =
  | Finished of Pipeline.result
  | Crashed of { exn : string; backtrace : string }
  | Cancelled of Pipeline.result option
      (* [Some r]: cancelled mid-run at an occurrence boundary, [r] is
         the partial result (status [Gave_up Cancelled]); [None]:
         cancelled while still queued, never executed *)

type state = Queued | Running | Done of outcome

type t = {
  id : int;                          (* process-unique *)
  request : request;
  events : Events.sink;
  mutex : Mutex.t;
  cond : Condition.t;
  mutable state : state;
  cancelled : bool Atomic.t;         (* polled by the pipeline fold *)
  mutable worker : int option;       (* index of the executing worker *)
  mutable wall : float;              (* execution seconds, once done *)
}

let next_id = Atomic.make 0

let create ?(events = Events.null) (request : request) : t =
  {
    id = Atomic.fetch_and_add next_id 1;
    request;
    events;
    mutex = Mutex.create ();
    cond = Condition.create ();
    state = Queued;
    cancelled = Atomic.make false;
    worker = None;
    wall = 0.;
  }

let id t = t.id
let request t = t.request

let name t =
  match t.request.work with
  | Reconstruct s -> s.src_name
  | Thunk { name; _ } -> name

let tenant t = t.request.tenant

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

type status = [ `Queued | `Running | `Done | `Crashed | `Cancelled ]

let status t : status =
  locked t (fun () ->
      match t.state with
      | Queued -> `Queued
      | Running -> `Running
      | Done (Finished _) -> `Done
      | Done (Crashed _) -> `Crashed
      | Done (Cancelled _) -> `Cancelled)

let status_to_string : status -> string = function
  | `Queued -> "queued"
  | `Running -> "running"
  | `Done -> "done"
  | `Crashed -> "crashed"
  | `Cancelled -> "cancelled"

let poll t : outcome option =
  locked t (fun () ->
      match t.state with Done o -> Some o | Queued | Running -> None)

let await t : outcome =
  locked t (fun () ->
      let rec wait () =
        match t.state with
        | Done o -> o
        | Queued | Running ->
            Condition.wait t.cond t.mutex;
            wait ()
      in
      wait ())

(* Best-effort cancellation: a queued job completes immediately as
   [Cancelled None] (its executor will skip it); a running job is asked
   to stop — the pipeline checks the flag at each occurrence boundary
   and finishes with a partial result.  Returns [false] iff the job had
   already completed. *)
let cancel t : bool =
  locked t (fun () ->
      match t.state with
      | Done _ -> false
      | Queued ->
          Atomic.set t.cancelled true;
          t.state <- Done (Cancelled None);
          Condition.broadcast t.cond;
          true
      | Running ->
          Atomic.set t.cancelled true;
          true)

let worker t = locked t (fun () -> t.worker)
let wall t = locked t (fun () -> t.wall)

(* ---------------------------------------------------------------- *)
(* Execution                                                         *)
(* ---------------------------------------------------------------- *)

(* Run one job to completion on the calling domain, with per-job crash
   isolation (an exception becomes a [Crashed] outcome, not an executor
   abort) and a fresh interning space for the determinism contract.
   Idempotence: a job that is already [Done] — typically cancelled while
   queued — is skipped; executing a [Running] job is an API misuse and
   raises. *)
let execute ?(worker = 0) (t : t) : unit =
  let claimed =
    locked t (fun () ->
        match t.state with
        | Done _ -> false
        | Running -> invalid_arg "Job.execute: job is already running"
        | Queued ->
            t.state <- Running;
            t.worker <- Some worker;
            true)
  in
  if claimed then begin
    let t0 = Unix.gettimeofday () in
    let body () =
      match t.request.work with
      | Reconstruct s ->
          Pipeline.run
            ~config:(Config.to_pipeline t.request.config)
            ~events:t.events
            ~should_stop:(fun () -> Atomic.get t.cancelled)
            ~base_prog:s.src_prog ~workload:s.src_workload ()
      | Thunk { run; _ } -> run ()
    in
    (* Persistent solver knowledge: bind the job's store to its fresh
       interning space before any solving, flush on the way out (also on
       crash — everything recorded up to that point is valid knowledge).
       Warm replay cannot change the trajectory, so this wrapper is
       invisible to the determinism contract. *)
    let body_with_store () =
      match t.request.config.Config.cache_dir with
      | None -> body ()
      | Some dir ->
          let label = name t in
          let emit state entries detail =
            t.events (Events.Cache_status { label; state; entries; detail })
          in
          (match
             Er_smt.Persist.attach ~dir ~label
               ~fingerprint:(Config.fingerprint t.request.config)
           with
          | Er_smt.Persist.Loaded { entries; replayable_cost } ->
              emit "warm" entries
                (Printf.sprintf "replayable cost %d" replayable_cost)
          | Er_smt.Persist.Cold { reason = None } ->
              emit "cold" 0 "no store yet"
          | Er_smt.Persist.Cold { reason = Some r } -> emit "cold" 0 r);
          Fun.protect body ~finally:(fun () ->
              match Er_smt.Persist.detach_and_flush () with
              | None -> ()
              | Some fl ->
                  List.iter (fun w -> emit "warning" 0 w)
                    fl.Er_smt.Persist.fl_warnings;
                  if fl.Er_smt.Persist.fl_wrote then
                    emit "flushed" fl.Er_smt.Persist.fl_entries
                      (Printf.sprintf "%d appended, %d replayed, saved cost %d"
                         fl.Er_smt.Persist.fl_appended
                         fl.Er_smt.Persist.fl_replayed
                         fl.Er_smt.Persist.fl_saved_cost)
                  else
                    emit "replayed" fl.Er_smt.Persist.fl_entries
                      (Printf.sprintf "%d replayed, saved cost %d"
                         fl.Er_smt.Persist.fl_replayed
                         fl.Er_smt.Persist.fl_saved_cost))
    in
    let run () =
      Er_metrics.with_span ("bug:" ^ name t) (fun () ->
          Er_smt.Expr.in_fresh_space body_with_store)
    in
    let outcome =
      match run () with
      | r ->
          if
            Atomic.get t.cancelled
            && (match r.Pipeline.status with
                | Pipeline.Gave_up Outcome.Cancelled -> true
                | _ -> false)
          then Cancelled (Some r)
          else Finished r
      | exception ((Out_of_memory | Stack_overflow) as e) -> raise e
      | exception e ->
          let backtrace = Printexc.get_backtrace () in
          Crashed { exn = Printexc.to_string e; backtrace }
    in
    locked t (fun () ->
        t.wall <- Unix.gettimeofday () -. t0;
        t.state <- Done outcome;
        Condition.broadcast t.cond)
  end
