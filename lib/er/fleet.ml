(* Domain-parallel fleet execution.

   ER's iterate-until-reproduced loop is embarrassingly parallel across
   failures: each corpus bug reconstructs independently.  This module is
   the batch face of the job API: it wraps each corpus bug in a
   {!Job.Thunk}, submits the lot to a {!Scheduler} pool under one
   anonymous tenant, awaits the handles in submission order and renders
   the familiar speedup report.  Per-job crash isolation (an exception
   in one bug's reconstruction becomes a structured [Worker_crashed]
   row, not a fleet abort) now lives in {!Job.execute}.

   Determinism contract: [run ~jobs:8] produces the same per-bug
   iteration counts, solver costs and recorded-value sets as
   [run ~jobs:1].  Three mechanisms carry it:

     - every job body runs inside {!Er_smt.Expr.in_fresh_space} (see
       {!Job.execute}), so the interning order each bug observes — and
       the id-order-dependent solver trajectory downstream — is
       independent of what other domains intern concurrently;
     - the solver result cache is sharded by interning space
       ({!Er_smt.Solver}), so a bug's cache hits depend only on its own
       query sequence, never on which bugs happened to run before it;
     - handle completion is published by the job's own mutex/condvar
       (a happens-before edge on [await]), and rows are reported in
       submission order regardless of completion order.

   Only wall-clock fields ([row_wall], [wall], [cpu]) and the executing
   worker index vary between runs; [report_to_json_value ~normalize:true]
   strips exactly those, which is what the CI fleet-determinism gate
   diffs. *)

type job = {
  job_name : string;
  job_run : unit -> Pipeline.result;
  (* request config of the job: {!Job.execute} reads cache_dir from it
     to bind the persistent solver store; the budgets the thunk actually
     uses are bound inside [job_run] *)
  job_config : Job.Config.t;
}

type outcome =
  | Finished of Pipeline.result
  | Worker_crashed of { exn : string; backtrace : string }

type row = {
  row_name : string;
  row_outcome : outcome;
  row_worker : int;  (* index of the worker that executed the job *)
  row_wall : float;  (* wall-clock seconds the job took *)
}

type report = {
  rows : row list;  (* submission order, not completion order *)
  jobs : int;       (* workers actually used *)
  wall : float;     (* fleet wall clock, spawn to last join *)
  cpu : float;      (* sum of per-job walls: the sequential-equivalent time *)
}

let speedup r = if r.wall > 0. then r.cpu /. r.wall else 1.

(* ---------------------------------------------------------------- *)
(* Batch execution over the scheduler                                 *)
(* ---------------------------------------------------------------- *)

let run ?jobs (js : job list) : report =
  let requested =
    match jobs with Some n -> n | None -> Domain.recommended_domain_count ()
  in
  let nworkers = max 1 (min requested (List.length js)) in
  let t0 = Unix.gettimeofday () in
  let sched = Scheduler.create ~workers:nworkers () in
  let handles =
    List.map
      (fun j ->
         let h =
           Job.create
             {
               Job.tenant = "fleet";
               work = Job.Thunk { name = j.job_name; run = j.job_run };
               config = j.job_config;
             }
         in
         (* the queue bound is a service concern; a batch run submits a
            known, finite corpus, so a refusal here is a programming
            error, not backpressure *)
         (match Scheduler.submit sched h with
         | Ok () -> ()
         | Error _ -> invalid_arg "Fleet.run: scheduler refused a job");
         h)
      js
  in
  let rows =
    List.map
      (fun h ->
         let outcome =
           match Job.await h with
           | Job.Finished r -> Finished r
           | Job.Crashed { exn; backtrace } -> Worker_crashed { exn; backtrace }
           | Job.Cancelled _ ->
               (* nothing cancels batch jobs; keep the row total *)
               assert false
         in
         {
           row_name = Job.name h;
           row_outcome = outcome;
           row_worker = (match Job.worker h with Some w -> w | None -> 0);
           row_wall = Job.wall h;
         })
      handles
  in
  Scheduler.shutdown sched;
  let wall = Unix.gettimeofday () -. t0 in
  let cpu = List.fold_left (fun a r -> a +. r.row_wall) 0. rows in
  { rows; jobs = nworkers; wall; cpu }

(* ---------------------------------------------------------------- *)
(* JSON rendering                                                    *)
(* ---------------------------------------------------------------- *)

(* Wall-clock fields inside a pipeline result; everything else in the
   result JSON is deterministic across [jobs] settings. *)
let time_fields =
  [ "total_symex_time"; "trace_time"; "symex_time"; "selection_time";
    "verify_time" ]

let rec normalize_json (j : Json.t) : Json.t =
  match j with
  | Json.Obj fields ->
      Json.Obj
        (List.map
           (fun (k, v) ->
              if List.mem k time_fields then (k, Json.Float 0.)
              else (k, normalize_json v))
           fields)
  | Json.List l -> Json.List (List.map normalize_json l)
  | j -> j

let row_to_json ~normalize (r : row) : Json.t =
  let open Json in
  let timing =
    if normalize then []
    else [ ("worker", Int r.row_worker); ("wall", Float r.row_wall) ]
  in
  let fields =
    match r.row_outcome with
    | Finished res ->
        let res_json = Pipeline.result_to_json_value res in
        [ ("outcome", Str "finished");
          ("result", if normalize then normalize_json res_json else res_json) ]
    | Worker_crashed { exn; backtrace } ->
        ("outcome", Str "crashed") :: ("exn", Str exn)
        :: (if normalize then [] else [ ("backtrace", Str backtrace) ])
  in
  Obj ((("bug", Str r.row_name) :: fields) @ timing)

(* [~normalize:true] is the determinism view: per-bug content only, no
   wall clocks, no worker placement, no job count — the baseline fields
   are wall clocks, so the normalized schema omits them *by design*
   (documented in DESIGN.md "Domain-safety model"; consumers of the
   normalized view must not expect them).  Two reports from the same
   corpus at different [-j] must render byte-identically.
   [?baseline:(file, wall)] adds the committed sequential baseline the
   human table compares against; in the full view the three baseline
   keys are always present — explicit [null]s when no baseline was given
   (or the report's wall clock is unusable) — so downstream consumers
   can key on them unconditionally. *)
let report_to_json_value ?(normalize = false) ?baseline (r : report) :
    Json.t =
  let open Json in
  let rows = List (List.map (row_to_json ~normalize) r.rows) in
  if normalize then Obj [ ("rows", rows) ]
  else
    let baseline_fields =
      match baseline with
      | Some (file, base_wall) when r.wall > 0. ->
          [ ("baseline_file", Str file);
            ("baseline_wall", Float base_wall);
            ("baseline_speedup", Float (base_wall /. r.wall)) ]
      | Some _ | None ->
          [ ("baseline_file", Null); ("baseline_wall", Null);
            ("baseline_speedup", Null) ]
    in
    Obj
      ([ ("jobs", Int r.jobs); ("wall", Float r.wall); ("cpu", Float r.cpu);
         ("speedup", Float (speedup r)); ("rows", rows) ]
       @ baseline_fields)

let report_to_json ?normalize ?baseline r =
  Json.to_string (report_to_json_value ?normalize ?baseline r)
