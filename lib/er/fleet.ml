(* Domain-parallel fleet execution.

   ER's iterate-until-reproduced loop is embarrassingly parallel across
   failures: each corpus bug reconstructs independently.  This module
   distributes a list of jobs over [n] OCaml 5 domains via per-worker
   work-stealing deques, with per-job crash isolation (an exception in
   one bug's reconstruction becomes a structured [Worker_crashed] row,
   not a fleet abort) and a wall-clock speedup report.

   Determinism contract: [run ~jobs:8] produces the same per-bug
   iteration counts, solver costs and recorded-value sets as
   [run ~jobs:1].  Three mechanisms carry it:

     - every job body runs inside {!Er_smt.Expr.in_fresh_space}, so the
       interning order each bug observes — and the id-order-dependent
       solver trajectory downstream — is independent of what other
       domains intern concurrently;
     - the solver result cache is sharded by interning space
       ({!Er_smt.Solver}), so a bug's cache hits depend only on its own
       query sequence, never on which bugs happened to run before it;
     - results land in per-job slots of one array, published to the
       caller by [Domain.join] (a happens-before edge), and rows are
       reported in submission order regardless of completion order.

   Only wall-clock fields ([row_wall], [wall], [cpu]) and the executing
   worker index vary between runs; [report_to_json_value ~normalize:true]
   strips exactly those, which is what the CI fleet-determinism gate
   diffs. *)

type job = {
  job_name : string;
  job_run : unit -> Pipeline.result;
}

type outcome =
  | Finished of Pipeline.result
  | Worker_crashed of { exn : string; backtrace : string }

type row = {
  row_name : string;
  row_outcome : outcome;
  row_worker : int;  (* index of the worker that executed the job *)
  row_wall : float;  (* wall-clock seconds the job took *)
}

type report = {
  rows : row list;  (* submission order, not completion order *)
  jobs : int;       (* workers actually used *)
  wall : float;     (* fleet wall clock, spawn to last join *)
  cpu : float;      (* sum of per-job walls: the sequential-equivalent time *)
}

let speedup r = if r.wall > 0. then r.cpu /. r.wall else 1.

(* ---------------------------------------------------------------- *)
(* Work-stealing deque                                               *)
(* ---------------------------------------------------------------- *)

(* A mutex per deque is plenty here: tasks are whole-bug reconstructions
   (milliseconds to seconds), so deque traffic is a rounding error.  The
   owner pops newest-first from the bottom; thieves steal oldest-first
   from the top, which tends to move the biggest remaining chunk of the
   round-robin seeding in one steal. *)
module Deque = struct
  type 'a t = { m : Mutex.t; mutable bottom : 'a list (* newest first *) }

  let create () = { m = Mutex.create (); bottom = [] }

  let locked d f =
    Mutex.lock d.m;
    Fun.protect ~finally:(fun () -> Mutex.unlock d.m) f

  let seed d items = locked d (fun () -> d.bottom <- items)

  let pop d =
    locked d (fun () ->
        match d.bottom with
        | [] -> None
        | x :: rest ->
            d.bottom <- rest;
            Some x)

  let steal d =
    locked d (fun () ->
        match List.rev d.bottom with
        | [] -> None
        | x :: rest ->
            d.bottom <- List.rev rest;
            Some x)
end

(* ---------------------------------------------------------------- *)
(* The pool                                                          *)
(* ---------------------------------------------------------------- *)

(* Run one job with crash isolation: any exception (except the
   non-maskable runtime ones) becomes a [Worker_crashed] row.  The body
   runs under a per-bug span so a flight-recorder timeline shows one
   "bug:<name>" slice per job on its worker's track (free when the
   metrics registry is off). *)
let execute ~worker (idx, j) slots =
  let t0 = Unix.gettimeofday () in
  let run () =
    Er_metrics.with_span ("bug:" ^ j.job_name) (fun () ->
        Er_smt.Expr.in_fresh_space j.job_run)
  in
  let outcome =
    match run () with
    | r -> Finished r
    | exception ((Out_of_memory | Stack_overflow) as e) -> raise e
    | exception e ->
        let backtrace = Printexc.get_backtrace () in
        Worker_crashed { exn = Printexc.to_string e; backtrace }
  in
  slots.(idx) <-
    Some
      {
        row_name = j.job_name;
        row_outcome = outcome;
        row_worker = worker;
        row_wall = Unix.gettimeofday () -. t0;
      }

(* Tasks are only ever removed from the deques after seeding — a worker
   that finds every deque empty can terminate: nothing is in flight that
   could be re-queued. *)
let worker_loop ~worker deques slots =
  let n = Array.length deques in
  let rec next i =
    if i = n then None
    else
      let v = (worker + i) mod n in
      let take = if i = 0 then Deque.pop else Deque.steal in
      match take deques.(v) with Some t -> Some t | None -> next (i + 1)
  in
  let rec go () =
    match next 0 with
    | Some task ->
        execute ~worker task slots;
        go ()
    | None -> ()
  in
  go ()

let run ?jobs (js : job list) : report =
  let requested =
    match jobs with Some n -> n | None -> Domain.recommended_domain_count ()
  in
  let nworkers = max 1 (min requested (List.length js)) in
  let deques = Array.init nworkers (fun _ -> Deque.create ()) in
  (* round-robin seeding: worker w starts with jobs w, w+n, w+2n, ... *)
  let tasks = List.mapi (fun i j -> (i, j)) js in
  Array.iteri
    (fun w d ->
       Deque.seed d
         (List.filter (fun (i, _) -> i mod nworkers = w) tasks))
    deques;
  let slots = Array.make (List.length js) None in
  let t0 = Unix.gettimeofday () in
  (* worker 0 is the calling domain; only n-1 domains are spawned, so
     [run ~jobs:1] never pays a domain spawn at all *)
  let spawned =
    List.init (nworkers - 1) (fun k ->
        Domain.spawn (fun () -> worker_loop ~worker:(k + 1) deques slots))
  in
  worker_loop ~worker:0 deques slots;
  List.iter Domain.join spawned;
  let wall = Unix.gettimeofday () -. t0 in
  let rows =
    Array.to_list slots
    |> List.map (function
         | Some row -> row
         | None -> assert false (* every seeded task is executed exactly once *))
  in
  let cpu = List.fold_left (fun a r -> a +. r.row_wall) 0. rows in
  { rows; jobs = nworkers; wall; cpu }

(* ---------------------------------------------------------------- *)
(* JSON rendering                                                    *)
(* ---------------------------------------------------------------- *)

(* Wall-clock fields inside a pipeline result; everything else in the
   result JSON is deterministic across [jobs] settings. *)
let time_fields =
  [ "total_symex_time"; "trace_time"; "symex_time"; "selection_time";
    "verify_time" ]

let rec normalize_json (j : Json.t) : Json.t =
  match j with
  | Json.Obj fields ->
      Json.Obj
        (List.map
           (fun (k, v) ->
              if List.mem k time_fields then (k, Json.Float 0.)
              else (k, normalize_json v))
           fields)
  | Json.List l -> Json.List (List.map normalize_json l)
  | j -> j

let row_to_json ~normalize (r : row) : Json.t =
  let open Json in
  let timing =
    if normalize then []
    else [ ("worker", Int r.row_worker); ("wall", Float r.row_wall) ]
  in
  let fields =
    match r.row_outcome with
    | Finished res ->
        let res_json = Pipeline.result_to_json_value res in
        [ ("outcome", Str "finished");
          ("result", if normalize then normalize_json res_json else res_json) ]
    | Worker_crashed { exn; backtrace } ->
        ("outcome", Str "crashed") :: ("exn", Str exn)
        :: (if normalize then [] else [ ("backtrace", Str backtrace) ])
  in
  Obj ((("bug", Str r.row_name) :: fields) @ timing)

(* [~normalize:true] is the determinism view: per-bug content only, no
   wall clocks, no worker placement, no job count — the baseline fields
   are wall clocks, so the normalized schema omits them *by design*
   (documented in DESIGN.md "Domain-safety model"; consumers of the
   normalized view must not expect them).  Two reports from the same
   corpus at different [-j] must render byte-identically.
   [?baseline:(file, wall)] adds the committed sequential baseline the
   human table compares against; in the full view the three baseline
   keys are always present — explicit [null]s when no baseline was given
   (or the report's wall clock is unusable) — so downstream consumers
   can key on them unconditionally. *)
let report_to_json_value ?(normalize = false) ?baseline (r : report) :
    Json.t =
  let open Json in
  let rows = List (List.map (row_to_json ~normalize) r.rows) in
  if normalize then Obj [ ("rows", rows) ]
  else
    let baseline_fields =
      match baseline with
      | Some (file, base_wall) when r.wall > 0. ->
          [ ("baseline_file", Str file);
            ("baseline_wall", Float base_wall);
            ("baseline_speedup", Float (base_wall /. r.wall)) ]
      | Some _ | None ->
          [ ("baseline_file", Null); ("baseline_wall", Null);
            ("baseline_speedup", Null) ]
    in
    Obj
      ([ ("jobs", Int r.jobs); ("wall", Float r.wall); ("cpu", Float r.cpu);
         ("speedup", Float (speedup r)); ("rows", rows) ]
       @ baseline_fields)

let report_to_json ?normalize ?baseline r =
  Json.to_string (report_to_json_value ?normalize ?baseline r)
