(* Accuracy check: a generated test case must lead the program along the
   same recorded control flow and reproduce the same failure (section 5.2,
   "Accuracy of Reproduced Executions").  We re-execute the base program
   concretely on the generated inputs and compare failure identity and the
   full branch-outcome sequence. *)

type verdict = {
  ok : bool;
  same_failure : bool;
  same_control_flow : bool;
  constraints_hold : bool option;
      (* when the symbolic solution is supplied: does its model satisfy
         every recorded path constraint?  Ground evaluation under the
         model — a failed check means the solver handed back a model
         inconsistent with its own path condition, which the two
         re-execution checks above cannot distinguish from an
         instrumentation bug.  Informational: does not affect [ok]. *)
  detail : string;
}

let solution_consistent (s : Er_symex.Exec.solution) =
  List.for_all
    (Er_smt.Model.holds s.Er_symex.Exec.model)
    s.Er_symex.Exec.path_constraints

let collect_branches prog inputs ~sched_seed =
  let branches = ref [] in
  let hooks =
    { Er_vm.Interp.no_hooks with
      Er_vm.Interp.on_branch = Some (fun b -> branches := b :: !branches) }
  in
  let config = { Er_vm.Interp.default_config with sched_seed; hooks } in
  let r = Er_vm.Interp.run ~config prog inputs in
  (r, Array.of_list (List.rev !branches))

let check ~(solution : Er_symex.Exec.solution option)
    ~(base_prog : Er_ir.Prog.t) ~(testcase : Testcase.t)
    ~(expected_failure : Er_vm.Failure.t) ~(expected_branches : bool array)
    ~(sched_seed : int) : verdict =
  let constraints_hold = Option.map solution_consistent solution in
  let inputs = Testcase.to_inputs testcase in
  let r, branches = collect_branches base_prog inputs ~sched_seed in
  match r.Er_vm.Interp.outcome with
  | Er_vm.Interp.Finished _ ->
      { ok = false; same_failure = false; same_control_flow = false;
        constraints_hold; detail = "test case did not fail" }
  | Er_vm.Interp.Failed f ->
      let same_failure = Er_vm.Failure.same_failure f expected_failure in
      let same_control_flow = branches = expected_branches in
      {
        ok = same_failure && same_control_flow;
        same_failure;
        same_control_flow;
        constraints_hold;
        detail =
          (if same_failure then "failure reproduced"
           else
             Printf.sprintf "different failure: %s"
               (Er_vm.Failure.kind_to_string f.Er_vm.Failure.kind));
      }
