(* The er-serve wire protocol: JSONL frames over a stream socket.

   One JSON object per line in each direction.  Every frame carries a
   ["type"] tag; [Submit] carries a client-chosen correlation id that
   all responses about that job echo back, so a client can pipeline
   submits and match results as they stream in out of order.

   Decoding is strict the same way {!Job.Config} decoding is strict: an
   unknown type, a missing field or a mistyped value rejects the whole
   frame ([of_json → None]) and the server answers with an [Error]
   frame instead of guessing.  Unknown *extra* fields are rejected too —
   the protocol is versioned by its strictness; loosening it later is
   backward compatible, tightening it is not. *)

(* -- frames -------------------------------------------------------- *)

type client_frame =
  | Submit of {
      id : string;               (* client-chosen correlation id *)
      tenant : string;
      bug : string;              (* resolver key, e.g. a corpus bug name *)
      config : Json.t option;    (* partial Job.Config override *)
    }
  | Status of { id : string }
  | Cancel of { id : string }
  | Metrics                      (* ask for a Prometheus exposition dump *)
  | Shutdown                     (* drain and stop the daemon *)

type server_frame =
  | Accepted of { id : string }
  | Rejected of { id : string; code : int; reason : string }
      (* backpressure: the scheduler queue is full (code 429) or the
         daemon is draining (code 503); resubmit later *)
  | Job_status of { id : string; state : string }
  | Job_result of {
      id : string;
      bug : string;
      tenant : string;
      result : Json.t;           (* normalized pipeline result *)
      wall : float;
    }
  | Job_failed of { id : string; exn : string }
  | Job_cancelled of { id : string; partial : Json.t option }
  | Metrics_dump of { prometheus : string }
  | Error of { id : string option; reason : string }
      (* protocol-level failure: malformed frame, unknown bug,
         unknown id, bad config override *)
  | Shutting_down

(* -- encoding ------------------------------------------------------ *)

let client_to_json (f : client_frame) : Json.t =
  let open Json in
  match f with
  | Submit { id; tenant; bug; config } ->
      Obj
        ([ ("type", Str "submit"); ("id", Str id); ("tenant", Str tenant);
           ("bug", Str bug) ]
         @ match config with Some c -> [ ("config", c) ] | None -> [])
  | Status { id } -> Obj [ ("type", Str "status"); ("id", Str id) ]
  | Cancel { id } -> Obj [ ("type", Str "cancel"); ("id", Str id) ]
  | Metrics -> Obj [ ("type", Str "metrics") ]
  | Shutdown -> Obj [ ("type", Str "shutdown") ]

let server_to_json (f : server_frame) : Json.t =
  let open Json in
  match f with
  | Accepted { id } -> Obj [ ("type", Str "accepted"); ("id", Str id) ]
  | Rejected { id; code; reason } ->
      Obj
        [ ("type", Str "rejected"); ("id", Str id); ("code", Int code);
          ("reason", Str reason) ]
  | Job_status { id; state } ->
      Obj [ ("type", Str "job_status"); ("id", Str id); ("state", Str state) ]
  | Job_result { id; bug; tenant; result; wall } ->
      Obj
        [ ("type", Str "job_result"); ("id", Str id); ("bug", Str bug);
          ("tenant", Str tenant); ("result", result); ("wall", Float wall) ]
  | Job_failed { id; exn } ->
      Obj [ ("type", Str "job_failed"); ("id", Str id); ("exn", Str exn) ]
  | Job_cancelled { id; partial } ->
      Obj
        ([ ("type", Str "job_cancelled"); ("id", Str id) ]
         @ match partial with Some p -> [ ("partial", p) ] | None -> [])
  | Metrics_dump { prometheus } ->
      Obj [ ("type", Str "metrics_dump"); ("prometheus", Str prometheus) ]
  | Error { id; reason } ->
      Obj
        ([ ("type", Str "error") ]
         @ (match id with Some id -> [ ("id", Str id) ] | None -> [])
         @ [ ("reason", Str reason) ])
  | Shutting_down -> Obj [ ("type", Str "shutting_down") ]

(* -- decoding ------------------------------------------------------ *)

(* A tiny strict-object reader: each [take] consumes a field; [finish]
   fails if any field was left unconsumed, which is what rejects frames
   with extra keys. *)
module Reader = struct
  type t = (string * Json.t) list ref

  let of_json = function Json.Obj kvs -> Some (ref kvs) | _ -> None

  let take (r : t) k =
    match List.assoc_opt k !r with
    | Some v ->
        r := List.remove_assoc k !r;
        Some v
    | None -> None

  let str r k = match take r k with Some (Json.Str s) -> Some s | _ -> None
  let int r k = match take r k with Some (Json.Int i) -> Some i | _ -> None

  let float r k =
    match take r k with
    | Some (Json.Float f) -> Some f
    | Some (Json.Int i) -> Some (float_of_int i)
    | _ -> None

  let finish r v = if !r = [] then Some v else None
end

let ( let* ) = Option.bind

let client_of_json (j : Json.t) : client_frame option =
  let* r = Reader.of_json j in
  let* ty = Reader.str r "type" in
  match ty with
  | "submit" ->
      let* id = Reader.str r "id" in
      let* tenant = Reader.str r "tenant" in
      let* bug = Reader.str r "bug" in
      let config = Reader.take r "config" in
      Reader.finish r (Submit { id; tenant; bug; config })
  | "status" ->
      let* id = Reader.str r "id" in
      Reader.finish r (Status { id })
  | "cancel" ->
      let* id = Reader.str r "id" in
      Reader.finish r (Cancel { id })
  | "metrics" -> Reader.finish r Metrics
  | "shutdown" -> Reader.finish r Shutdown
  | _ -> None

let server_of_json (j : Json.t) : server_frame option =
  let* r = Reader.of_json j in
  let* ty = Reader.str r "type" in
  match ty with
  | "accepted" ->
      let* id = Reader.str r "id" in
      Reader.finish r (Accepted { id })
  | "rejected" ->
      let* id = Reader.str r "id" in
      let* code = Reader.int r "code" in
      let* reason = Reader.str r "reason" in
      Reader.finish r (Rejected { id; code; reason })
  | "job_status" ->
      let* id = Reader.str r "id" in
      let* state = Reader.str r "state" in
      Reader.finish r (Job_status { id; state })
  | "job_result" ->
      let* id = Reader.str r "id" in
      let* bug = Reader.str r "bug" in
      let* tenant = Reader.str r "tenant" in
      let* result = Reader.take r "result" in
      let* wall = Reader.float r "wall" in
      Reader.finish r (Job_result { id; bug; tenant; result; wall })
  | "job_failed" ->
      let* id = Reader.str r "id" in
      let* exn = Reader.str r "exn" in
      Reader.finish r (Job_failed { id; exn })
  | "job_cancelled" ->
      let* id = Reader.str r "id" in
      let partial = Reader.take r "partial" in
      Reader.finish r (Job_cancelled { id; partial })
  | "metrics_dump" ->
      let* prometheus = Reader.str r "prometheus" in
      Reader.finish r (Metrics_dump { prometheus })
  | "error" ->
      let id = Reader.str r "id" in
      let* reason = Reader.str r "reason" in
      Reader.finish r (Error { id; reason })
  | "shutting_down" -> Reader.finish r Shutting_down
  | _ -> None

(* -- line framing -------------------------------------------------- *)

let client_to_line f = Json.to_string (client_to_json f) ^ "\n"
let server_to_line f = Json.to_string (server_to_json f) ^ "\n"

let client_of_line s = Option.bind (Json.parse s) client_of_json
let server_of_line s = Option.bind (Json.parse s) server_of_json

(* Split a receive buffer into complete lines plus the unterminated
   tail.  The daemon keeps one such buffer per connection. *)
let split_lines (buf : string) : string list * string =
  let parts = String.split_on_char '\n' buf in
  match List.rev parts with
  | tail :: complete -> (List.rev complete, tail)
  | [] -> ([], buf)
