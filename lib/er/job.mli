(** First-class reconstruction jobs.

    The job API is the single entry point every execution mode consumes:
    batch ({!Fleet}), daemon ({!Server}) and the one-shot {!Driver}
    wrapper.  A {!request} bundles what to reconstruct with who asked and
    under which budgets; {!create} yields a handle that any domain can
    [status]/[poll]/[cancel]/[await] while an executor drives it with
    {!execute}. *)

module Config : sig
  (** Every serializable reconstruction knob, flattened into one record:
      pipeline bounds, symbolic-execution budgets and scalar VM limits.
      Excluded by design: scheduler seed (owned by the workload) and VM
      hooks (owned by the tracer). *)
  type t = {
    max_occurrences : int;       (** bound on production runs consumed *)
    solver_budget : int;         (** SAT work budget per query *)
    gate_budget : int;           (** bit-blasting budget for the run *)
    max_steps : int;             (** symex step bound *)
    progress_every : int;        (** Fig. 5 sampling period, in steps *)
    max_instrs : int;            (** concrete VM instruction bound *)
    max_call_depth : int;
    quantum : int;               (** scheduler quantum *)
    quantum_jitter : int;
    ring_bytes : int;            (** trace ring buffer size *)
    verify : bool;               (** re-execute the generated test case *)
    incremental : bool;          (** resume runs from CoW checkpoints *)
    checkpoint_interval : int;   (** instructions between checkpoints *)
    portfolio : int;
        (** CDCL configurations raced on a solver stall; 0 = off *)
    cache_dir : string option;
        (** directory of the persistent solver-knowledge store; [None]
            disables persistence *)
  }

  val default : t
  (** [of_pipeline Pipeline.default_config]. *)

  val of_pipeline : Pipeline.config -> t

  val to_pipeline : t -> Pipeline.config
  (** Right inverse of {!of_pipeline} on the serializable fields; the VM
      hooks and scheduler seed come from {!Pipeline.default_config}. *)

  val to_json_value : t -> Json.t
  val to_json : t -> string

  val of_json_value : ?base:t -> Json.t -> t option
  (** Decode an object over [base] (default {!default}): present fields
      override, absent fields keep [base]'s value.  Unknown keys,
      mistyped values or a non-object reject the whole document.  A full
      {!to_json_value} image round-trips exactly. *)

  val of_json : ?base:t -> string -> t option

  val fingerprint : t -> string
  (** Digest basis for the persistent solver store: the config's JSON
      with [cache_dir] blanked — every knob that could alter the solver
      query sequence, and nothing else. *)
end

type source = {
  src_name : string;
  src_prog : Er_ir.Types.program;
  src_workload : Pipeline.workload;
}
(** What to reconstruct: a base program plus the workload producing the
    inputs of each failure occurrence. *)

type work =
  | Reconstruct of source
      (** first-class form: the pipeline runs under the request's
          config with cooperative cancellation *)
  | Thunk of { name : string; run : unit -> Pipeline.result }
      (** batch-compat form ({!Fleet} jobs): opaque pre-bound body,
          cancellable only while still queued *)

type request = {
  tenant : string;  (** fair-queueing identity *)
  work : work;
  config : Config.t;
}

type outcome =
  | Finished of Pipeline.result
  | Crashed of { exn : string; backtrace : string }
      (** the job raised; isolated to the job, not the executor *)
  | Cancelled of Pipeline.result option
      (** [Some r]: cancelled mid-run at an occurrence boundary with
          partial result [r] (status [Gave_up Cancelled]); [None]:
          cancelled while still queued *)

type t
(** A job handle.  Thread-safe: all operations may be called from any
    domain. *)

val create : ?events:Events.sink -> request -> t

val id : t -> int
(** Process-unique job id. *)

val request : t -> request
val name : t -> string
val tenant : t -> string

type status = [ `Queued | `Running | `Done | `Crashed | `Cancelled ]

val status : t -> status
val status_to_string : status -> string

val poll : t -> outcome option
(** [None] while queued or running. *)

val await : t -> outcome
(** Block until the job completes. *)

val cancel : t -> bool
(** Best-effort cancellation.  A queued job completes immediately as
    [Cancelled None]; a running job stops at the next occurrence
    boundary with a partial result.  [false] iff already completed. *)

val worker : t -> int option
(** Index of the worker that executed (or is executing) the job. *)

val wall : t -> float
(** Execution wall seconds, once done. *)

val execute : ?worker:int -> t -> unit
(** Run the job to completion on the calling domain: crash-isolated
    (exceptions become {!Crashed}, except [Out_of_memory] and
    [Stack_overflow] which re-raise), inside a fresh term-interning
    space so results depend only on the request.  A job already [Done]
    (e.g. cancelled while queued) is skipped; calling on a [Running] job
    raises [Invalid_argument]. *)
