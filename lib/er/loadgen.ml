(* Load generation against an er-serve daemon.

   Replays a list of bug names as [clients] concurrent connections —
   one domain and one tenant per client — with pipelined submits, and
   measures what the service contract promises: reconstructions per
   second, per-job latency (submit to result receipt, including any
   backpressure delay), and determinism (every client must receive the
   byte-identical normalized result for the same bug).

   Shared by [er_cli loadgen] and the bench serve smoke so the number
   CI gates on is the number the CLI reports. *)

type job_result = {
  jr_bug : string;
  jr_payload : string;       (* normalized result JSON, as a string *)
  jr_latency : float;        (* submit -> result receipt, seconds *)
}

type client_stats = {
  cs_results : job_result list;
  cs_failed : int;           (* Job_failed frames *)
  cs_cancelled : int;
  cs_rejected : int;         (* Rejected frames (job was retried) *)
  cs_errors : int;           (* protocol Error frames *)
}

type result = {
  lg_clients : int;
  lg_jobs : int;             (* results received across all clients *)
  lg_failed : int;
  lg_rejected : int;         (* total reject-then-retry events *)
  lg_errors : int;
  lg_wall : float;
  lg_latencies : float list; (* one per received result *)
  lg_results : (string * string) list;  (* (bug, payload) for every job *)
}

(* One client connection: submit [bugs] x [rounds] pipelined, then read
   frames until every job has resolved.  A [Rejected] frame (the
   daemon's 429 backpressure) triggers a resubmit after a short backoff;
   latency is measured from the *first* submit, so backpressure shows up
   in the tail percentiles, as it does for a real client. *)
let run_client ~socket ~tenant ~rounds ~bugs () : client_stats =
  let cl = Server.Client.connect socket in
  let submits = Hashtbl.create 64 in    (* id -> (bug, first submit time) *)
  let submit id bug =
    if not (Hashtbl.mem submits id) then
      Hashtbl.replace submits id (bug, Unix.gettimeofday ());
    Server.Client.send cl
      (Wire.Submit { id; tenant; bug; config = None })
  in
  List.iteri
    (fun r () ->
       List.iteri
         (fun i bug -> submit (Printf.sprintf "%s-r%d-j%d" tenant r i) bug)
         bugs)
    (List.init rounds (fun _ -> ()));
  let expected = rounds * List.length bugs in
  let stats =
    ref { cs_results = []; cs_failed = 0; cs_cancelled = 0; cs_rejected = 0;
          cs_errors = 0 }
  in
  let resolved = ref 0 in
  while !resolved < expected do
    match Server.Client.recv cl with
    | None -> resolved := expected  (* daemon went away; count what we have *)
    | Some frame -> (
        match frame with
        | Wire.Accepted _ -> ()
        | Wire.Rejected { id; _ } -> (
            stats := { !stats with cs_rejected = !stats.cs_rejected + 1 };
            match Hashtbl.find_opt submits id with
            | Some (bug, _) ->
                (* brief backoff, then try again under the same id *)
                Unix.sleepf 0.02;
                Server.Client.send cl
                  (Wire.Submit { id; tenant; bug; config = None })
            | None -> incr resolved)
        | Wire.Job_result { id; bug; result; _ } ->
            let latency =
              match Hashtbl.find_opt submits id with
              | Some (_, t0) -> Unix.gettimeofday () -. t0
              | None -> 0.
            in
            stats :=
              { !stats with
                cs_results =
                  { jr_bug = bug; jr_payload = Json.to_string result;
                    jr_latency = latency }
                  :: !stats.cs_results };
            incr resolved
        | Wire.Job_failed _ ->
            stats := { !stats with cs_failed = !stats.cs_failed + 1 };
            incr resolved
        | Wire.Job_cancelled _ ->
            stats := { !stats with cs_cancelled = !stats.cs_cancelled + 1 };
            incr resolved
        | Wire.Error _ ->
            stats := { !stats with cs_errors = !stats.cs_errors + 1 };
            incr resolved
        | Wire.Job_status _ | Wire.Metrics_dump _ -> ()
        | Wire.Shutting_down -> resolved := expected)
  done;
  Server.Client.close cl;
  !stats

let run ~socket ~clients ?(rounds = 1) ~bugs () : result =
  let clients = max 1 clients in
  let t0 = Unix.gettimeofday () in
  let domains =
    List.init clients (fun c ->
        Domain.spawn (fun () ->
            run_client ~socket
              ~tenant:(Printf.sprintf "tenant-%d" c)
              ~rounds ~bugs ()))
  in
  let per_client = List.map Domain.join domains in
  let wall = Unix.gettimeofday () -. t0 in
  let all_results = List.concat_map (fun s -> s.cs_results) per_client in
  {
    lg_clients = clients;
    lg_jobs = List.length all_results;
    lg_failed = List.fold_left (fun a s -> a + s.cs_failed) 0 per_client;
    lg_rejected = List.fold_left (fun a s -> a + s.cs_rejected) 0 per_client;
    lg_errors =
      List.fold_left
        (fun a s -> a + s.cs_errors + s.cs_cancelled)
        0 per_client;
    lg_wall = wall;
    lg_latencies = List.map (fun r -> r.jr_latency) all_results;
    lg_results = List.map (fun r -> (r.jr_bug, r.jr_payload)) all_results;
  }

let throughput r =
  if r.lg_wall > 0. then float_of_int r.lg_jobs /. r.lg_wall else 0.

(* Nearest-rank percentile over the observed latencies. *)
let percentile p xs =
  match List.sort compare xs with
  | [] -> 0.
  | sorted ->
      let a = Array.of_list sorted in
      let n = Array.length a in
      let rank =
        int_of_float (ceil (p /. 100. *. float_of_int n)) - 1
      in
      a.(max 0 (min (n - 1) rank))

(* Every client must have received the trajectory-identical payload for
   the same bug — the concurrency half of the determinism contract.
   When the daemon runs with a cache directory, a later submit of the
   same bug legitimately replays the persistent answer journal and
   reports lower solver cost, so the three fields persistence is
   allowed to change are masked before comparing; everything else must
   be byte-identical. *)
let persistence_fields = [ "solver_cost"; "cache_hits"; "cache_misses" ]

let trajectory_key payload =
  match Json.parse payload with
  | None -> payload
  | Some doc ->
      let rec mask = function
        | Json.Obj kvs ->
            Json.Obj
              (List.map
                 (fun (k, v) ->
                    if List.mem k persistence_fields then (k, Json.Int 0)
                    else (k, mask v))
                 kvs)
        | Json.List xs -> Json.List (List.map mask xs)
        | j -> j
      in
      Json.to_string (mask doc)

let deterministic r =
  let tbl = Hashtbl.create 16 in
  List.for_all
    (fun (bug, payload) ->
       let key = trajectory_key payload in
       match Hashtbl.find_opt tbl bug with
       | None ->
           Hashtbl.replace tbl bug key;
           true
       | Some p -> String.equal p key)
    r.lg_results

let to_json_value (r : result) : Json.t =
  let open Json in
  Obj
    [ ("clients", Int r.lg_clients);
      ("jobs", Int r.lg_jobs);
      ("failed", Int r.lg_failed);
      ("rejected", Int r.lg_rejected);
      ("errors", Int r.lg_errors);
      ("wall", Float r.lg_wall);
      ("throughput_rps", Float (throughput r));
      ("p50_ms", Float (1000. *. percentile 50. r.lg_latencies));
      ("p99_ms", Float (1000. *. percentile 99. r.lg_latencies));
      ("deterministic", Bool (deterministic r)) ]
