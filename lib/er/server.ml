(* The er-serve daemon: a JSONL-over-socket front end to the scheduler.

   Architecture is a single select loop owning all sockets, with the
   {!Scheduler} pool doing the actual reconstructions on worker domains:

     - a Unix-domain listener accepts client connections speaking the
       {!Wire} protocol, one frame per line;
     - worker domains never touch a socket: job completion lands in a
       mutex-protected queue plus one byte down a self-pipe, and the
       loop — the only writer to any fd — wakes and pushes the result
       frame to whichever connection submitted the job;
     - an optional TCP listener on localhost answers Prometheus scrapes
       with the live {!Er_metrics} registry, so a dashboard can watch
       queue depth and job outcomes while reconstructions run.

   The bug-name resolver is injected: [er_core] sits below the corpus
   in the library graph, so the daemon maps submit frames to programs
   through a [string -> (Job.source * Job.Config.t) option] provided by
   the binary.  The resolved config is the per-bug default; a submit
   frame's ["config"] field overrides individual knobs on top of it
   ({!Job.Config.of_json_value} with [~base]).

   Determinism contract: the result payload of a [Job_result] frame is
   [Fleet.normalize_json] of the pipeline result — byte-identical to
   what a batch [er_cli fleet --json] run renders for the same bug,
   which is what the serve-vs-batch differential test pins. *)

type resolver = string -> (Job.source * Job.Config.t) option

type config = {
  socket_path : string;
  workers : int;
  queue_limit : int;
  prometheus_port : int option;  (* TCP scrape endpoint on 127.0.0.1 *)
  cache_dir : string option;
      (* daemon-wide persistent solver store; a job keeps its own
         cache_dir if its submit frame set one *)
}

let default_config =
  { socket_path = "er-serve.sock"; workers = 2; queue_limit = 64;
    prometheus_port = None; cache_dir = None }

(* -- per-connection state ------------------------------------------ *)

type conn = {
  fd : Unix.file_descr;
  mutable inbuf : string;                    (* unterminated tail *)
  jobs : (string, Job.t) Hashtbl.t;          (* client id -> handle *)
  mutable closed : bool;
}

type t = {
  cfg : config;
  resolver : resolver;
  sched : Scheduler.t;
  listener : Unix.file_descr;
  prom_listener : Unix.file_descr option;
  pipe_r : Unix.file_descr;
  pipe_w : Unix.file_descr;
  done_mutex : Mutex.t;
  mutable done_queue : Job.t list;           (* completed, not yet reported *)
  mutable stop_requested : bool;             (* set by Shutdown/stop *)
  mutable loop_domain : unit Domain.t option;
}

(* -- small IO helpers ---------------------------------------------- *)

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      let w = Unix.write_substring fd s off (n - off) in
      go (off + w)
  in
  try go 0 with Unix.Unix_error _ -> ()  (* peer went away; reaped on read *)

let send conn frame = write_all conn.fd (Wire.server_to_line frame)

(* -- submit path --------------------------------------------------- *)

let normalized_result r = Fleet.normalize_json (Pipeline.result_to_json_value r)

let handle_submit t conn ~by_job ~id ~tenant ~bug ~config_override =
  if t.stop_requested then
    send conn (Wire.Rejected { id; code = 503; reason = "daemon is draining" })
  else
    match t.resolver bug with
    | None ->
        send conn (Wire.Error { id = Some id; reason = "unknown bug: " ^ bug })
    | Some (source, base_config) -> (
        let config =
          match config_override with
          | None -> Some base_config
          | Some j -> Job.Config.of_json_value ~base:base_config j
        in
        match config with
        | None ->
            send conn
              (Wire.Error { id = Some id; reason = "bad config override" })
        | Some config ->
            (* daemon-wide warm-start default, overridable per submit *)
            let config =
              match (config.Job.Config.cache_dir, t.cfg.cache_dir) with
              | None, Some _ ->
                  { config with Job.Config.cache_dir = t.cfg.cache_dir }
              | _ -> config
            in
            let job =
              Job.create
                { Job.tenant; work = Job.Reconstruct source; config }
            in
            (match Scheduler.submit t.sched job with
            | Ok () ->
                Hashtbl.replace conn.jobs id job;
                Hashtbl.replace by_job (Job.id job) (conn, id, bug, tenant);
                send conn (Wire.Accepted { id })
            | Error `Queue_full ->
                send conn
                  (Wire.Rejected { id; code = 429; reason = "queue full" })
            | Error `Stopping ->
                send conn
                  (Wire.Rejected
                     { id; code = 503; reason = "daemon is draining" })))

let handle_frame t conn ~by_job line =
  match Wire.client_of_line line with
  | None ->
      send conn (Wire.Error { id = None; reason = "malformed frame" })
  | Some (Wire.Submit { id; tenant; bug; config }) ->
      handle_submit t conn ~by_job ~id ~tenant ~bug ~config_override:config
  | Some (Wire.Status { id }) -> (
      match Hashtbl.find_opt conn.jobs id with
      | None -> send conn (Wire.Error { id = Some id; reason = "unknown id" })
      | Some job ->
          send conn
            (Wire.Job_status
               { id; state = Job.status_to_string (Job.status job) }))
  | Some (Wire.Cancel { id }) -> (
      match Hashtbl.find_opt conn.jobs id with
      | None -> send conn (Wire.Error { id = Some id; reason = "unknown id" })
      | Some job ->
          ignore (Job.cancel job);
          send conn
            (Wire.Job_status
               { id; state = Job.status_to_string (Job.status job) }))
  | Some Wire.Metrics ->
      let text =
        Er_metrics.Snapshot.to_prometheus (Er_metrics.snapshot ())
      in
      send conn (Wire.Metrics_dump { prometheus = text })
  | Some Wire.Shutdown ->
      send conn Wire.Shutting_down;
      t.stop_requested <- true

(* -- completion path ----------------------------------------------- *)

(* Runs on a worker domain: just queue and wake the loop. *)
let on_done t job =
  Mutex.lock t.done_mutex;
  t.done_queue <- job :: t.done_queue;
  Mutex.unlock t.done_mutex;
  ignore (try Unix.write_substring t.pipe_w "!" 0 1 with Unix.Unix_error _ -> 0)

let drain_completions t ~by_job =
  Mutex.lock t.done_mutex;
  let jobs = List.rev t.done_queue in
  t.done_queue <- [];
  Mutex.unlock t.done_mutex;
  List.iter
    (fun job ->
       match Hashtbl.find_opt by_job (Job.id job) with
       | None -> ()  (* connection gone; nobody to tell *)
       | Some (conn, id, bug, tenant) ->
           Hashtbl.remove by_job (Job.id job);
           if not conn.closed then (
             match Job.poll job with
             | Some (Job.Finished r) ->
                 send conn
                   (Wire.Job_result
                      { id; bug; tenant; result = normalized_result r;
                        wall = Job.wall job })
             | Some (Job.Crashed { exn; _ }) ->
                 send conn (Wire.Job_failed { id; exn })
             | Some (Job.Cancelled partial) ->
                 send conn
                   (Wire.Job_cancelled
                      { id; partial = Option.map normalized_result partial })
             | None -> assert false (* on_done fires after completion *)))
    jobs

let outstanding ~by_job = Hashtbl.length by_job

(* -- Prometheus scrape --------------------------------------------- *)

(* One-shot HTTP: accept, read whatever request arrived, answer with the
   whole registry, close.  A scrape is a page-sized text dump every few
   seconds — not worth a persistent-connection server. *)
let handle_scrape fd =
  let buf = Bytes.create 4096 in
  (try ignore (Unix.read fd buf 0 4096) with Unix.Unix_error _ -> ());
  let body = Er_metrics.Snapshot.to_prometheus (Er_metrics.snapshot ()) in
  let resp =
    Printf.sprintf
      "HTTP/1.1 200 OK\r\n\
       Content-Type: text/plain; version=0.0.4\r\n\
       Content-Length: %d\r\n\
       Connection: close\r\n\r\n%s"
      (String.length body) body
  in
  write_all fd resp;
  (try Unix.close fd with Unix.Unix_error _ -> ())

(* -- the loop ------------------------------------------------------ *)

let close_conn conns conn =
  conn.closed <- true;
  Hashtbl.remove conns conn.fd;
  try Unix.close conn.fd with Unix.Unix_error _ -> ()

let loop t =
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 16 in
  let by_job : (int, conn * string * string * string) Hashtbl.t =
    Hashtbl.create 64
  in
  let running = ref true in
  while !running do
    let fds =
      (t.listener :: t.pipe_r
       :: (match t.prom_listener with Some fd -> [ fd ] | None -> []))
      @ Hashtbl.fold (fun fd _ acc -> fd :: acc) conns []
    in
    let readable, _, _ =
      try Unix.select fds [] [] (-1.0)
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    List.iter
      (fun fd ->
         if fd = t.listener then (
           match Unix.accept t.listener with
           | cfd, _ ->
               Hashtbl.replace conns cfd
                 { fd = cfd; inbuf = ""; jobs = Hashtbl.create 8;
                   closed = false }
           | exception Unix.Unix_error _ -> ())
         else if fd = t.pipe_r then (
           let buf = Bytes.create 64 in
           (try ignore (Unix.read t.pipe_r buf 0 64)
            with Unix.Unix_error _ -> ());
           drain_completions t ~by_job)
         else if Some fd = t.prom_listener then (
           match Unix.accept fd with
           | cfd, _ -> handle_scrape cfd
           | exception Unix.Unix_error _ -> ())
         else
           match Hashtbl.find_opt conns fd with
           | None -> ()
           | Some conn -> (
               let buf = Bytes.create 65536 in
               match Unix.read fd buf 0 65536 with
               | 0 -> close_conn conns conn
               | n ->
                   let lines, tail =
                     Wire.split_lines
                       (conn.inbuf ^ Bytes.sub_string buf 0 n)
                   in
                   conn.inbuf <- tail;
                   List.iter
                     (fun line ->
                        if String.trim line <> "" then
                          handle_frame t conn ~by_job line)
                     lines
               | exception Unix.Unix_error _ -> close_conn conns conn))
      readable;
    (* drain even when woken by client traffic: a completion byte can
       ride the same select round as the submit that caused it *)
    drain_completions t ~by_job;
    if t.stop_requested && outstanding ~by_job = 0 then running := false
  done;
  drain_completions t ~by_job;
  Hashtbl.iter (fun _ c -> send c Wire.Shutting_down) conns;
  Hashtbl.iter (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ())
    conns

(* -- lifecycle ----------------------------------------------------- *)

let start ?(config = default_config) ~resolver () : t =
  (* a client may close between select rounds; without this a write to
     its dead socket raises SIGPIPE and kills the process instead of
     returning the EPIPE that [write_all] already absorbs *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.unlink config.socket_path with Unix.Unix_error _ -> ());
  Unix.bind listener (Unix.ADDR_UNIX config.socket_path);
  Unix.listen listener 64;
  let prom_listener =
    Option.map
      (fun port ->
         let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
         Unix.setsockopt fd Unix.SO_REUSEADDR true;
         Unix.bind fd
           (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port));
         Unix.listen fd 16;
         fd)
      config.prometheus_port
  in
  let pipe_r, pipe_w = Unix.pipe () in
  let rec t =
    lazy
      {
        cfg = config;
        resolver;
        sched =
          Scheduler.create ~queue_limit:config.queue_limit
            ~on_done:(fun job -> on_done (Lazy.force t) job)
            ~workers:config.workers ();
        listener;
        prom_listener;
        pipe_r;
        pipe_w;
        done_mutex = Mutex.create ();
        done_queue = [];
        stop_requested = false;
        loop_domain = None;
      }
  in
  let t = Lazy.force t in
  t.loop_domain <- Some (Domain.spawn (fun () -> loop t));
  t

let stop t =
  t.stop_requested <- true;
  ignore (try Unix.write_substring t.pipe_w "!" 0 1 with Unix.Unix_error _ -> 0)

let wait t =
  (match t.loop_domain with Some d -> Domain.join d | None -> ());
  t.loop_domain <- None;
  Scheduler.shutdown t.sched;
  List.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    ([ t.listener; t.pipe_r; t.pipe_w ]
     @ match t.prom_listener with Some fd -> [ fd ] | None -> []);
  try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ -> ()

(* -- client -------------------------------------------------------- *)

(* A small blocking client for the protocol: what [er_cli loadgen] and
   the tests speak.  One connection, pipelined sends, frame-at-a-time
   receive. *)
module Client = struct
  type t = {
    fd : Unix.file_descr;
    mutable inbuf : string;
    mutable pending : Wire.server_frame list;  (* decoded, undelivered *)
  }

  let connect path =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX path);
    { fd; inbuf = ""; pending = [] }

  let send t frame = write_all t.fd (Wire.client_to_line frame)

  (* Next frame, blocking.  [None] on EOF; a malformed line from the
     server is a protocol bug, surfaced as [None] too. *)
  let rec recv t : Wire.server_frame option =
    match t.pending with
    | f :: rest ->
        t.pending <- rest;
        Some f
    | [] -> (
        let buf = Bytes.create 65536 in
        match Unix.read t.fd buf 0 65536 with
        | 0 -> None
        | n ->
            let lines, tail =
              Wire.split_lines (t.inbuf ^ Bytes.sub_string buf 0 n)
            in
            t.inbuf <- tail;
            t.pending <-
              List.filter_map Wire.server_of_line
                (List.filter (fun l -> String.trim l <> "") lines);
            recv t
        | exception Unix.Unix_error _ -> None)

  let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
end
