(** The er-serve daemon: a JSONL-over-socket front end to the scheduler.

    A single select loop owns every socket; {!Scheduler} worker domains
    run the reconstructions and signal completion through a self-pipe,
    so the loop is the only writer to any connection.  Result payloads
    are normalized with {!Fleet.normalize_json} — byte-identical to what
    a batch [er_cli fleet --json] renders for the same bug.

    The bug-name resolver is injected because [er_core] sits below the
    corpus in the library graph: the binary maps submit-frame bug names
    to programs. *)

type resolver = string -> (Job.source * Job.Config.t) option
(** Resolve a submit frame's bug name to a source and its per-bug base
    config; a frame's ["config"] field overrides on top of it. *)

type config = {
  socket_path : string;
  workers : int;
  queue_limit : int;
  prometheus_port : int option;
      (** serve Prometheus scrapes on 127.0.0.1:port *)
  cache_dir : string option;
      (** daemon-wide persistent solver-knowledge store: applied to
          every job whose submit frame did not set its own [cache_dir],
          so repeat submissions of a bug warm-start across daemon
          restarts *)
}

val default_config : config

type t

val start : ?config:config -> resolver:resolver -> unit -> t
(** Bind the sockets, spawn the worker pool and the select loop, return
    immediately. *)

val stop : t -> unit
(** Ask the daemon to drain: no new submits are accepted, outstanding
    jobs complete and deliver their frames, then the loop exits.  The
    [Shutdown] wire frame does the same from a client. *)

val wait : t -> unit
(** Block until the loop has exited, then join the worker pool and
    release the sockets. *)

(** A small blocking client for the protocol: what [er_cli loadgen] and
    the tests speak. *)
module Client : sig
  type t

  val connect : string -> t
  (** Connect to a daemon's Unix-domain socket path. *)

  val send : t -> Wire.client_frame -> unit

  val recv : t -> Wire.server_frame option
  (** Next frame, blocking; [None] on EOF. *)

  val close : t -> unit
end
