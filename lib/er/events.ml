(* The structured event bus of the staged pipeline.

   Every stage (tracer, shepherd, selector, verifier) emits typed events
   as it runs; sinks are pluggable — the null sink for silent runs, an
   in-memory buffer (the pipeline derives its per-iteration accounting
   records from it), a human formatter for the CLI, and a JSONL writer
   for downstream tooling.  Events round-trip through JSON
   ([of_json (to_json e) = Some e]) so a persisted stream can be
   re-analyzed offline. *)

(* JSON comes from the shared [Json] module ([Er_core.Json], backed by
   [Er_json]) — the same dialect the pipeline renderer, the metrics
   snapshots and the bench harness use. *)

(* ---------------------------------------------------------------- *)
(* Events                                                            *)
(* ---------------------------------------------------------------- *)

type stage = Trace | Symex | Select | Verify

type skip_reason = No_failure | Different_failure

type event =
  | Occurrence_started of { occurrence : int }
  | Run_skipped of { occurrence : int; reason : skip_reason }
  | Checkpoint_resumed of {
      occurrence : int;
      at_clock : int;    (* instructions of shared prefix not re-executed *)
    }
  | Trace_captured of {
      occurrence : int;
      bytes : int;
      packets : int;
      ptwrites : int;
      switches : int;
      vm_instrs : int;
      overwritten : int; (* ring bytes lost to wrap-around this capture *)
      elapsed : float;
    }
  | Decode_failed of { occurrence : int; error : string }
  | Symex_finished of {
      occurrence : int;
      steps : int;
      solver_calls : int;
      solver_cost : int;
      cache_hits : int;         (* solver result-cache hits of this run *)
      cache_misses : int;
      graph_nodes : int;
      outcome : [ `Complete | `Stalled | `Diverged ];
      elapsed : float;
    }
  | Diverged of { occurrence : int; reason : string }
  | Stall of {
      occurrence : int;
      reason : string;
      chain : int;              (* longest symbolic write chain *)
      object_bytes : int;       (* largest symbolic object *)
    }
  | Points_added of {
      occurrence : int;
      added : int;
      total : int;              (* recording set size after this iteration *)
      elapsed : float;
    }
  | Budget_escalated of {
      occurrence : int;
      solver_budget : int;
      gate_budget : int;
    }
  | Verified of {
      occurrence : int;
      ok : bool;
      same_failure : bool;
      same_control_flow : bool;
      elapsed : float;
    }
  | Reproduced of { occurrence : int; testcase_values : int }
  | Gave_up of { occurrence : int; reason : string }
  | Metrics_snapshot of {
      occurrence : int;
      snapshot : Er_metrics.Snapshot.t;
    }
  | Cache_status of {
      label : string;   (* job name = store file stem *)
      state : string;   (* "warm" | "cold" | "flushed" *)
      entries : int;    (* journal entries loaded / written *)
      detail : string;  (* cost replayable, rejection reason, ... *)
    }
  | Pipeline_finished of { runs : int; occurrences : int; reproduced : bool }

(* The stage that emitted an event; [None] for pipeline control events. *)
let stage_of = function
  | Occurrence_started _ -> None
  | Run_skipped _ | Checkpoint_resumed _ | Trace_captured _ | Decode_failed _ ->
      Some Trace
  | Symex_finished _ | Diverged _ -> Some Symex
  | Stall _ | Points_added _ | Budget_escalated _ -> Some Select
  | Verified _ -> Some Verify
  | Reproduced _ | Gave_up _ | Metrics_snapshot _ | Cache_status _
  | Pipeline_finished _ ->
      None

let stage_name = function
  | Trace -> "trace"
  | Symex -> "symex"
  | Select -> "select"
  | Verify -> "verify"

(* ---------------------------------------------------------------- *)
(* JSON encoding / decoding                                          *)
(* ---------------------------------------------------------------- *)

let to_json_value (e : event) : Json.t =
  let open Json in
  let obj name fields = Obj (("event", Str name) :: fields) in
  match e with
  | Occurrence_started { occurrence } ->
      obj "occurrence_started" [ ("occurrence", Int occurrence) ]
  | Run_skipped { occurrence; reason } ->
      obj "run_skipped"
        [ ("occurrence", Int occurrence);
          ( "reason",
            Str
              (match reason with
               | No_failure -> "no_failure"
               | Different_failure -> "different_failure") ) ]
  | Checkpoint_resumed { occurrence; at_clock } ->
      obj "checkpoint_resumed"
        [ ("occurrence", Int occurrence); ("at_clock", Int at_clock) ]
  | Trace_captured { occurrence; bytes; packets; ptwrites; switches; vm_instrs; overwritten; elapsed } ->
      obj "trace_captured"
        [ ("occurrence", Int occurrence); ("bytes", Int bytes);
          ("packets", Int packets); ("ptwrites", Int ptwrites);
          ("switches", Int switches); ("vm_instrs", Int vm_instrs);
          ("overwritten", Int overwritten); ("elapsed", Float elapsed) ]
  | Decode_failed { occurrence; error } ->
      obj "decode_failed" [ ("occurrence", Int occurrence); ("error", Str error) ]
  | Symex_finished { occurrence; steps; solver_calls; solver_cost; cache_hits; cache_misses; graph_nodes; outcome; elapsed } ->
      obj "symex_finished"
        [ ("occurrence", Int occurrence); ("steps", Int steps);
          ("solver_calls", Int solver_calls); ("solver_cost", Int solver_cost);
          ("cache_hits", Int cache_hits); ("cache_misses", Int cache_misses);
          ("graph_nodes", Int graph_nodes);
          ( "outcome",
            Str
              (match outcome with
               | `Complete -> "complete"
               | `Stalled -> "stalled"
               | `Diverged -> "diverged") );
          ("elapsed", Float elapsed) ]
  | Diverged { occurrence; reason } ->
      obj "diverged" [ ("occurrence", Int occurrence); ("reason", Str reason) ]
  | Stall { occurrence; reason; chain; object_bytes } ->
      obj "stall"
        [ ("occurrence", Int occurrence); ("reason", Str reason);
          ("chain", Int chain); ("object_bytes", Int object_bytes) ]
  | Points_added { occurrence; added; total; elapsed } ->
      obj "points_added"
        [ ("occurrence", Int occurrence); ("added", Int added);
          ("total", Int total); ("elapsed", Float elapsed) ]
  | Budget_escalated { occurrence; solver_budget; gate_budget } ->
      obj "budget_escalated"
        [ ("occurrence", Int occurrence); ("solver_budget", Int solver_budget);
          ("gate_budget", Int gate_budget) ]
  | Verified { occurrence; ok; same_failure; same_control_flow; elapsed } ->
      obj "verified"
        [ ("occurrence", Int occurrence); ("ok", Bool ok);
          ("same_failure", Bool same_failure);
          ("same_control_flow", Bool same_control_flow);
          ("elapsed", Float elapsed) ]
  | Reproduced { occurrence; testcase_values } ->
      obj "reproduced"
        [ ("occurrence", Int occurrence); ("testcase_values", Int testcase_values) ]
  | Gave_up { occurrence; reason } ->
      obj "gave_up" [ ("occurrence", Int occurrence); ("reason", Str reason) ]
  | Metrics_snapshot { occurrence; snapshot } ->
      obj "metrics_snapshot"
        [ ("occurrence", Int occurrence);
          ("snapshot", Er_metrics.Snapshot.to_json_value snapshot) ]
  | Cache_status { label; state; entries; detail } ->
      obj "cache_status"
        [ ("label", Str label); ("state", Str state);
          ("entries", Int entries); ("detail", Str detail) ]
  | Pipeline_finished { runs; occurrences; reproduced } ->
      obj "pipeline_finished"
        [ ("runs", Int runs); ("occurrences", Int occurrences);
          ("reproduced", Bool reproduced) ]

let to_json e = Json.to_string (to_json_value e)

let of_json (line : string) : event option =
  match Json.parse line with
  | Some (Json.Obj fields) -> (
      let str k = match List.assoc_opt k fields with Some (Json.Str s) -> Some s | _ -> None in
      let int k = match List.assoc_opt k fields with Some (Json.Int i) -> Some i | _ -> None in
      let flt k =
        match List.assoc_opt k fields with
        | Some (Json.Float f) -> Some f
        | Some (Json.Int i) -> Some (float_of_int i)
        | _ -> None
      in
      let boolean k = match List.assoc_opt k fields with Some (Json.Bool b) -> Some b | _ -> None in
      let ( let* ) = Option.bind in
      match str "event" with
      | Some "occurrence_started" ->
          let* occurrence = int "occurrence" in
          Some (Occurrence_started { occurrence })
      | Some "run_skipped" ->
          let* occurrence = int "occurrence" in
          let* reason =
            match str "reason" with
            | Some "no_failure" -> Some No_failure
            | Some "different_failure" -> Some Different_failure
            | _ -> None
          in
          Some (Run_skipped { occurrence; reason })
      | Some "checkpoint_resumed" ->
          let* occurrence = int "occurrence" in
          let* at_clock = int "at_clock" in
          Some (Checkpoint_resumed { occurrence; at_clock })
      | Some "trace_captured" ->
          let* occurrence = int "occurrence" in
          let* bytes = int "bytes" in
          let* packets = int "packets" in
          let* ptwrites = int "ptwrites" in
          let* switches = int "switches" in
          let* vm_instrs = int "vm_instrs" in
          let* overwritten = int "overwritten" in
          let* elapsed = flt "elapsed" in
          Some (Trace_captured { occurrence; bytes; packets; ptwrites; switches; vm_instrs; overwritten; elapsed })
      | Some "decode_failed" ->
          let* occurrence = int "occurrence" in
          let* error = str "error" in
          Some (Decode_failed { occurrence; error })
      | Some "symex_finished" ->
          let* occurrence = int "occurrence" in
          let* steps = int "steps" in
          let* solver_calls = int "solver_calls" in
          let* solver_cost = int "solver_cost" in
          (* absent in pre-session streams: treat as zero traffic *)
          let cache_hits = Option.value (int "cache_hits") ~default:0 in
          let cache_misses = Option.value (int "cache_misses") ~default:0 in
          let* graph_nodes = int "graph_nodes" in
          let* outcome =
            match str "outcome" with
            | Some "complete" -> Some `Complete
            | Some "stalled" -> Some `Stalled
            | Some "diverged" -> Some `Diverged
            | _ -> None
          in
          let* elapsed = flt "elapsed" in
          Some (Symex_finished { occurrence; steps; solver_calls; solver_cost; cache_hits; cache_misses; graph_nodes; outcome; elapsed })
      | Some "diverged" ->
          let* occurrence = int "occurrence" in
          let* reason = str "reason" in
          Some (Diverged { occurrence; reason })
      | Some "stall" ->
          let* occurrence = int "occurrence" in
          let* reason = str "reason" in
          let* chain = int "chain" in
          let* object_bytes = int "object_bytes" in
          Some (Stall { occurrence; reason; chain; object_bytes })
      | Some "points_added" ->
          let* occurrence = int "occurrence" in
          let* added = int "added" in
          let* total = int "total" in
          let* elapsed = flt "elapsed" in
          Some (Points_added { occurrence; added; total; elapsed })
      | Some "budget_escalated" ->
          let* occurrence = int "occurrence" in
          let* solver_budget = int "solver_budget" in
          let* gate_budget = int "gate_budget" in
          Some (Budget_escalated { occurrence; solver_budget; gate_budget })
      | Some "verified" ->
          let* occurrence = int "occurrence" in
          let* ok = boolean "ok" in
          let* same_failure = boolean "same_failure" in
          let* same_control_flow = boolean "same_control_flow" in
          let* elapsed = flt "elapsed" in
          Some (Verified { occurrence; ok; same_failure; same_control_flow; elapsed })
      | Some "reproduced" ->
          let* occurrence = int "occurrence" in
          let* testcase_values = int "testcase_values" in
          Some (Reproduced { occurrence; testcase_values })
      | Some "gave_up" ->
          let* occurrence = int "occurrence" in
          let* reason = str "reason" in
          Some (Gave_up { occurrence; reason })
      | Some "metrics_snapshot" ->
          let* occurrence = int "occurrence" in
          let* snapshot =
            Option.bind
              (List.assoc_opt "snapshot" fields)
              Er_metrics.Snapshot.of_json_value
          in
          Some (Metrics_snapshot { occurrence; snapshot })
      | Some "cache_status" ->
          let* label = str "label" in
          let* state = str "state" in
          let* entries = int "entries" in
          let* detail = str "detail" in
          Some (Cache_status { label; state; entries; detail })
      | Some "pipeline_finished" ->
          let* runs = int "runs" in
          let* occurrences = int "occurrences" in
          let* reproduced = boolean "reproduced" in
          Some (Pipeline_finished { runs; occurrences; reproduced })
      | _ -> None)
  | _ -> None

(* ---------------------------------------------------------------- *)
(* Human rendering                                                   *)
(* ---------------------------------------------------------------- *)

let pp ppf (e : event) =
  let stage =
    match stage_of e with
    | Some s -> Printf.sprintf "[%s]" (stage_name s)
    | None -> "[pipeline]"
  in
  match e with
  | Occurrence_started { occurrence } ->
      Fmt.pf ppf "%-10s occurrence %d started" stage occurrence
  | Run_skipped { occurrence; reason } ->
      Fmt.pf ppf "%-10s occurrence %d skipped (%s)" stage occurrence
        (match reason with
         | No_failure -> "tracked failure did not fire"
         | Different_failure -> "a different bug fired")
  | Checkpoint_resumed { occurrence; at_clock } ->
      Fmt.pf ppf
        "%-10s occurrence %d: resumed from checkpoint at clock %d" stage
        occurrence at_clock
  | Trace_captured { occurrence; bytes; packets; ptwrites; switches; vm_instrs; overwritten; elapsed } ->
      Fmt.pf ppf
        "%-10s occurrence %d: %d bytes, %d packets, %d ptwrites, %d switches, %d instrs, %d overwritten (%.3fs)"
        stage occurrence bytes packets ptwrites switches vm_instrs overwritten elapsed
  | Decode_failed { occurrence; error } ->
      Fmt.pf ppf "%-10s occurrence %d: decode failed: %s" stage occurrence error
  | Symex_finished { occurrence; steps; solver_calls; solver_cost; cache_hits; cache_misses; graph_nodes; outcome; elapsed } ->
      Fmt.pf ppf
        "%-10s occurrence %d: %s after %d steps, %d solver calls (cost %d, cache %d/%d), graph %d nodes (%.3fs)"
        stage occurrence
        (match outcome with
         | `Complete -> "complete"
         | `Stalled -> "stalled"
         | `Diverged -> "diverged")
        steps solver_calls solver_cost cache_hits
        (cache_hits + cache_misses) graph_nodes elapsed
  | Diverged { occurrence; reason } ->
      Fmt.pf ppf "%-10s occurrence %d: diverged — %s" stage occurrence reason
  | Stall { occurrence; reason; chain; object_bytes } ->
      Fmt.pf ppf "%-10s occurrence %d: %s (chain=%d, obj=%dB)" stage occurrence
        reason chain object_bytes
  | Points_added { occurrence; added; total; elapsed } ->
      Fmt.pf ppf "%-10s occurrence %d: +%d recording points (total %d, %.4fs)"
        stage occurrence added total elapsed
  | Budget_escalated { occurrence; solver_budget; gate_budget } ->
      Fmt.pf ppf
        "%-10s occurrence %d: selection fixpoint — budgets escalated to %d/%d"
        stage occurrence solver_budget gate_budget
  | Verified { occurrence; ok; same_failure; same_control_flow; elapsed } ->
      Fmt.pf ppf
        "%-10s occurrence %d: ok=%b (same failure %b, same control flow %b, %.3fs)"
        stage occurrence ok same_failure same_control_flow elapsed
  | Reproduced { occurrence; testcase_values } ->
      Fmt.pf ppf "%-10s occurrence %d: test case extracted (%d input values)"
        stage occurrence testcase_values
  | Gave_up { occurrence; reason } ->
      Fmt.pf ppf "%-10s gave up after occurrence %d: %s" stage occurrence reason
  | Metrics_snapshot { occurrence; snapshot } ->
      Fmt.pf ppf "%-10s occurrence %d: metrics snapshot (%d samples, %d spans)"
        stage occurrence
        (List.length snapshot.Er_metrics.Snapshot.samples)
        (List.length snapshot.Er_metrics.Snapshot.spans)
  | Cache_status { label; state; entries; detail } ->
      Fmt.pf ppf "%-10s solver cache %s: %s (%d entries, %s)" stage label
        state entries detail
  | Pipeline_finished { runs; occurrences; reproduced } ->
      Fmt.pf ppf "%-10s finished: %d runs, %d analyzed occurrences, reproduced=%b"
        stage runs occurrences reproduced

(* ---------------------------------------------------------------- *)
(* Sinks                                                             *)
(* ---------------------------------------------------------------- *)

type sink = event -> unit

let null : sink = fun _ -> ()

let tee (a : sink) (b : sink) : sink = fun e -> a e; b e

(* In-memory buffer: returns the sink and a function reading the events
   collected so far, in emission order.  Single-domain by construction
   (each pipeline run owns its buffer); share one across domains only
   through [serialize]. *)
let buffer () : sink * (unit -> event list) =
  let evs = ref [] in
  ((fun e -> evs := e :: !evs), fun () -> List.rev !evs)

(* Serialize a sink: events from concurrent domains are delivered one at
   a time.  Fleet mode wraps any sink shared between workers in this, so
   a JSONL stream (or a human log) never interleaves mid-line. *)
let serialize (s : sink) : sink =
  let m = Mutex.create () in
  fun e ->
    Mutex.lock m;
    Fun.protect ~finally:(fun () -> Mutex.unlock m) (fun () -> s e)

let human ppf : sink = fun e -> Fmt.pf ppf "%a@." pp e

(* One [output_string] per event: the line (payload + newline) is built
   in full first, so even an unserialized stderr/O_APPEND stream gets
   whole lines.  Flushed per line: a worker crash mid-reconstruction
   must not lose the buffered tail of the log — the events up to the
   crash are exactly what a post-mortem needs.  Concurrent writers to
   the same channel must still be wrapped in [serialize] — channel
   buffers are not domain-safe. *)
let jsonl oc : sink =
 fun e ->
  output_string oc (to_json e ^ "\n");
  flush oc
