(* The shared JSON dialect, re-exported as [Er_core.Json].

   The implementation lives in [Er_json] at the bottom of the library
   graph so that [Er_metrics] (which the instrumented layers depend on,
   and which er_core in turn depends on) can render snapshots without a
   dependency cycle or a second copy of the codec. *)

include Er_json
