(** The er-serve wire protocol: JSONL frames over a stream socket.

    One JSON object per line, a ["type"] tag per frame.  [Submit]
    carries a client-chosen correlation id echoed by every response
    about that job, so clients can pipeline submits and match streaming
    results.  Decoding is strict: unknown types, missing fields,
    mistyped values and extra keys all reject the frame. *)

type client_frame =
  | Submit of {
      id : string;               (** client-chosen correlation id *)
      tenant : string;
      bug : string;              (** resolver key, e.g. a corpus bug name *)
      config : Json.t option;    (** partial {!Job.Config} override *)
    }
  | Status of { id : string }
  | Cancel of { id : string }
  | Metrics                      (** ask for a Prometheus exposition dump *)
  | Shutdown                     (** drain and stop the daemon *)

type server_frame =
  | Accepted of { id : string }
  | Rejected of { id : string; code : int; reason : string }
      (** backpressure: queue full (429) or draining (503) *)
  | Job_status of { id : string; state : string }
  | Job_result of {
      id : string;
      bug : string;
      tenant : string;
      result : Json.t;           (** normalized pipeline result *)
      wall : float;
    }
  | Job_failed of { id : string; exn : string }
  | Job_cancelled of { id : string; partial : Json.t option }
  | Metrics_dump of { prometheus : string }
  | Error of { id : string option; reason : string }
      (** protocol-level failure: malformed frame, unknown bug,
          unknown id, bad config override *)
  | Shutting_down

val client_to_json : client_frame -> Json.t
val server_to_json : server_frame -> Json.t
val client_of_json : Json.t -> client_frame option
val server_of_json : Json.t -> server_frame option

val client_to_line : client_frame -> string
(** Encoded frame with trailing newline. *)

val server_to_line : server_frame -> string
val client_of_line : string -> client_frame option
val server_of_line : string -> server_frame option

val split_lines : string -> string list * string
(** Split a receive buffer into complete lines plus the unterminated
    tail. *)
