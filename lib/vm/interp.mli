(** The concrete EIR runtime: failure detection, a coarse-chunk jittered
    thread scheduler, and tracing hooks.

    Two engines implement one semantics.  {!run} is the production path:
    it delegates to {!Vm_state}, which dispatches over the pre-lowered
    code cache and keeps all run state behind a resumable value.
    {!run_reference} is the tree-walking reference engine kept in this
    module; the differential suite in test/test_lower.ml enforces their
    bit-for-bit agreement on every observable (hook order, failure
    reports, outputs, metric totals).

    The shared types and helpers (hooks, config, results, metrics) are
    defined in {!Vm_state} and re-exported here under their historical
    names, so existing callers keep writing [Interp.run],
    [Interp.default_config], [Interp.m_i_alu], ... *)

open Er_ir.Types

(** {1 Retirement metrics} *)

val m_i_alu : Er_metrics.counter
val m_i_load : Er_metrics.counter
val m_i_store : Er_metrics.counter
val m_i_mem : Er_metrics.counter
val m_i_call : Er_metrics.counter
val m_i_io : Er_metrics.counter
val m_i_sync : Er_metrics.counter
val m_i_branch : Er_metrics.counter
val m_i_other : Er_metrics.counter
val m_loads : Er_metrics.counter
val m_stores : Er_metrics.counter
val m_branches : Er_metrics.counter
val m_switches : Er_metrics.counter

val count_instr : instr -> unit
val count_term : terminator -> unit

(** {1 Hooks and configuration} *)

type hooks = Vm_state.hooks = {
  on_branch : (bool -> unit) option;
  on_switch : (tid:int -> clock:int -> unit) option;
  on_ptwrite : (int64 -> unit) option;
  on_input : (stream:string -> value:int64 -> unit) option;
  on_store :
    (obj:int -> index:int -> old_value:int64 -> new_value:int64 -> unit) option;
  on_alloc : (int64 -> unit) option;
  on_def : (point -> reg:string -> value:int64 -> unit) option;
  on_enter : (func:string -> args:int64 list -> unit) option;
  on_ret : (func:string -> value:int64 option -> unit) option;
}

val no_hooks : hooks

(** Run two hook sets side by side (first argument first). *)
val compose_hooks : hooks -> hooks -> hooks

type config = Vm_state.config = {
  max_instrs : int;
  max_call_depth : int;
  quantum : int;
  quantum_jitter : int;
  sched_seed : int;
  hooks : hooks;
}

val default_config : config

(** {1 Results} *)

type outcome = Vm_state.outcome =
  | Finished of int64 option
  | Failed of Failure.t

type run_result = Vm_state.run_result = {
  outcome : outcome;
  instr_count : int;
  branch_count : int;
  outputs : int64 list;
  peak_mem_cells : int;
  final_mem : Memory.t;
}

type tstatus = Vm_state.tstatus =
  | Runnable
  | Blocked_lock of int64
  | Waiting_join
  | Done_t

type step = Vm_state.step =
  | Stepped
  | Stepped_free
  | Blocked
  | Thread_done
  | Program_done of int64 option

exception Crash of Failure.kind

(** {1 Shared evaluation helpers} *)

val norm : ty -> int64 -> int64
val smt_binop : binop -> Er_smt.Expr.binop
val eval_cmp : cmpop -> int -> int64 -> int64 -> bool

(** Deterministic per-(seed, chunk#) quantum jitter. *)
val chunk_quantum : config -> int -> int

(** Shared by both engines so global allocation order — hence object ids
    and packed pointers — is identical. *)
val alloc_global_mem : Memory.t -> global -> int64

(** {1 Execution} *)

(** The production engine: lowered dispatch over the code cache,
    resumable state ({!Vm_state}). *)
val run : ?config:config -> Er_ir.Prog.t -> Inputs.t -> run_result

(** The tree-walking reference engine. *)
val run_reference : ?config:config -> Er_ir.Prog.t -> Inputs.t -> run_result
