(* The production runtime: a concrete EIR interpreter with failure
   detection, a coarse-chunk thread scheduler, and tracing hooks.

   All register values are int64, normalized to their type width;
   pointers are packed per {!Memory}.  Arithmetic reuses the evaluation
   functions of the SMT expression language so that the concrete runtime,
   the model evaluator and the bit-blaster provably share one semantics
   (a qcheck property pins this down).

   The scheduler runs one thread for a quantum of instructions, then
   rotates; quantum lengths are jittered from a seed so that different
   failure occurrences exhibit different interleavings, the way distinct
   production runs would.  Chunk boundaries invoke the [on_switch] hook,
   which the PT-like encoder turns into TIP+MTC packets — the coarse
   timestamps of section 3.4. *)

open Er_ir.Types
module Sem = Er_smt.Expr     (* shared concrete semantics *)
module M = Er_metrics

(* Retirement counters on the process registry; [step_thread] checks
   [M.enabled] once per step, so a metrics-off run pays one branch. *)
let instr_counter cls =
  M.counter
    ~labels:[ ("class", cls) ]
    ~help:"Instructions retired, by opcode class." "er_vm_instructions_total"

let m_i_alu = instr_counter "alu"
and m_i_load = instr_counter "load"
and m_i_store = instr_counter "store"
and m_i_mem = instr_counter "mem"
and m_i_call = instr_counter "call"
and m_i_io = instr_counter "io"
and m_i_sync = instr_counter "sync"
and m_i_branch = instr_counter "branch"
and m_i_other = instr_counter "other"

let m_loads = M.counter ~help:"Memory loads executed." "er_vm_loads_total"
let m_stores = M.counter ~help:"Memory stores executed." "er_vm_stores_total"

let m_branches =
  M.counter ~help:"Conditional branches executed." "er_vm_branches_total"

let m_switches =
  M.counter ~help:"Chunk-scheduler thread switches." "er_vm_switches_total"

let count_instr (i : instr) =
  match i with
  | Bin _ | Cmp _ | Select _ | Cast _ | Gep _ -> M.inc m_i_alu
  | Load _ ->
      M.inc m_i_load;
      M.inc m_loads
  | Store _ ->
      M.inc m_i_store;
      M.inc m_stores
  | Alloc _ | Free _ -> M.inc m_i_mem
  | Call _ -> M.inc m_i_call
  | Input _ | Output _ | Ptwrite _ -> M.inc m_i_io
  | Spawn _ | Join | Lock _ | Unlock _ -> M.inc m_i_sync
  | Assert _ -> M.inc m_i_other

let count_term (t : terminator) =
  match t with
  | Br _ -> M.inc m_i_branch
  | Cond_br _ ->
      M.inc m_i_branch;
      M.inc m_branches
  | Ret _ -> M.inc m_i_call
  | Abort _ | Unreachable -> M.inc m_i_other

type hooks = {
  on_branch : (bool -> unit) option;
  on_switch : (tid:int -> clock:int -> unit) option;
  on_ptwrite : (int64 -> unit) option;
  on_input : (stream:string -> value:int64 -> unit) option;
  on_store :
    (obj:int -> index:int -> old_value:int64 -> new_value:int64 -> unit) option;
  (* allocation sizes are always traced: the analysis engine needs the
     concrete heap layout to replay memory accesses *)
  on_alloc : (int64 -> unit) option;
  (* every register definition with its concrete value: ground truth for
     the REPT accuracy experiment *)
  on_def : (Er_ir.Types.point -> reg:string -> value:int64 -> unit) option;
  (* function boundaries: used by the invariant-inference case study *)
  on_enter : (func:string -> args:int64 list -> unit) option;
  on_ret : (func:string -> value:int64 option -> unit) option;
}

let no_hooks =
  { on_branch = None; on_switch = None; on_ptwrite = None; on_input = None;
    on_store = None; on_alloc = None; on_def = None; on_enter = None;
    on_ret = None }

(* Run two hook sets side by side ([a] first).  Lets the pipeline attach
   event-accounting observers next to the trace encoder hooks without
   either knowing about the other. *)
let compose_hooks (a : hooks) (b : hooks) : hooks =
  let fuse f g wrap =
    match f, g with
    | None, h | h, None -> h
    | Some f, Some g -> Some (wrap f g)
  in
  {
    on_branch = fuse a.on_branch b.on_branch (fun f g x -> f x; g x);
    on_switch =
      fuse a.on_switch b.on_switch (fun f g ~tid ~clock ->
          f ~tid ~clock;
          g ~tid ~clock);
    on_ptwrite = fuse a.on_ptwrite b.on_ptwrite (fun f g x -> f x; g x);
    on_input =
      fuse a.on_input b.on_input (fun f g ~stream ~value ->
          f ~stream ~value;
          g ~stream ~value);
    on_store =
      fuse a.on_store b.on_store (fun f g ~obj ~index ~old_value ~new_value ->
          f ~obj ~index ~old_value ~new_value;
          g ~obj ~index ~old_value ~new_value);
    on_alloc = fuse a.on_alloc b.on_alloc (fun f g x -> f x; g x);
    on_def =
      fuse a.on_def b.on_def (fun f g p ~reg ~value ->
          f p ~reg ~value;
          g p ~reg ~value);
    on_enter =
      fuse a.on_enter b.on_enter (fun f g ~func ~args ->
          f ~func ~args;
          g ~func ~args);
    on_ret =
      fuse a.on_ret b.on_ret (fun f g ~func ~value ->
          f ~func ~value;
          g ~func ~value);
  }

type config = {
  max_instrs : int;
  max_call_depth : int;
  quantum : int;
  quantum_jitter : int;
  sched_seed : int;
  hooks : hooks;
}

let default_config =
  {
    max_instrs = 50_000_000;
    max_call_depth = 512;
    quantum = 60;
    quantum_jitter = 24;
    sched_seed = 0;
    hooks = no_hooks;
  }

type outcome = Finished of int64 option | Failed of Failure.t

type run_result = {
  outcome : outcome;
  instr_count : int;
  branch_count : int;
  outputs : int64 list;
  peak_mem_cells : int;
  final_mem : Memory.t;    (* the core dump available post-mortem *)
}

(* --- execution state ---------------------------------------------------- *)

type frame = {
  fr_func : func;
  mutable fr_block : block;
  mutable fr_ip : int;
  fr_regs : (string, int64) Hashtbl.t;
  fr_dst : reg option;              (* caller register for the return value *)
  mutable fr_stack_objs : int list; (* alloca'd objects, released on return *)
}

type tstatus = Runnable | Blocked_lock of int64 | Waiting_join | Done_t

type thread = {
  tid : int;
  mutable stack : frame list;       (* innermost first *)
  mutable depth : int;              (* cached [List.length stack] *)
  mutable status : tstatus;
}

exception Crash of Failure.kind

type st = {
  prog : Er_ir.Prog.t;
  mem : Memory.t;
  inputs : Inputs.t;
  cfg : config;
  globals : (string, int64) Hashtbl.t;   (* name -> base pointer *)
  mutexes : (int64, int) Hashtbl.t;      (* lock address -> owner tid *)
  mutable threads : thread list;
  mutable next_tid : int;
  mutable clock : int;
  mutable branches : int;
  mutable outputs : int64 list;
}

let point_of st (fr : frame) =
  ignore st;
  { p_func = fr.fr_func.fname; p_block = fr.fr_block.label; p_index = fr.fr_ip }

let stack_of (th : thread) =
  List.map
    (fun fr ->
       { p_func = fr.fr_func.fname; p_block = fr.fr_block.label;
         p_index = fr.fr_ip })
    th.stack

(* --- value evaluation ---------------------------------------------------- *)

let norm ty v = Er_smt.Ty.truncate (width_of_ty ty) v

let eval_value st (fr : frame) = function
  | Imm (v, _) -> v
  | Null -> Memory.null
  | Global g -> (
      match Hashtbl.find_opt st.globals g with
      | Some p -> p
      | None -> invalid_arg ("Interp: unknown global " ^ g))
  | Reg r -> (
      match Hashtbl.find_opt fr.fr_regs r with
      | Some v -> v
      | None -> invalid_arg
                  (Printf.sprintf "Interp: read of undefined register %s in %s"
                     r fr.fr_func.fname))

let set_reg (fr : frame) r v = Hashtbl.replace fr.fr_regs r v

let smt_binop : binop -> Sem.binop = function
  | Add -> Sem.Add | Sub -> Sem.Sub | Mul -> Sem.Mul | Udiv -> Sem.Udiv
  | Urem -> Sem.Urem | And -> Sem.And | Or -> Sem.Or | Xor -> Sem.Xor
  | Shl -> Sem.Shl | Lshr -> Sem.Lshr | Ashr -> Sem.Ashr

let eval_cmp op w a b =
  let base o = Sem.eval_cmp o w a b in
  match op with
  | Eq -> base Sem.Eq
  | Ne -> not (base Sem.Eq)
  | Ult -> base Sem.Ult
  | Ule -> base Sem.Ule
  | Ugt -> not (base Sem.Ule)
  | Uge -> not (base Sem.Ult)
  | Slt -> base Sem.Slt
  | Sle -> base Sem.Sle
  | Sgt -> not (base Sem.Sle)
  | Sge -> not (base Sem.Slt)

(* --- setup ---------------------------------------------------------------- *)

(* Shared by both engines so global allocation order — hence object ids
   and packed pointers — is identical. *)
let alloc_global_mem mem (g : global) : int64 =
  match Memory.alloc mem ~elt_ty:g.g_elt_ty ~size:g.g_size ~heap:true with
  | None -> invalid_arg ("Interp: global too large: " ^ g.gname)
  | Some p ->
      (match g.g_init with
       | None -> ()
       | Some init ->
           Array.iteri
             (fun i v ->
                match
                  Memory.store mem
                    (Memory.ptr ~obj:(Memory.ptr_obj p) ~index:i)
                    ~ty:g.g_elt_ty (norm g.g_elt_ty v)
                with
                | Ok _ -> ()
                | Error _ -> assert false)
             init);
      p

let alloc_global st (g : global) =
  Hashtbl.replace st.globals g.gname (alloc_global_mem st.mem g)

let make_frame (f : func) (args : int64 list) ~dst =
  let regs = Hashtbl.create 16 in
  (try List.iter2 (fun (r, ty) v -> Hashtbl.replace regs r (norm ty v)) f.params args
   with Invalid_argument _ ->
     invalid_arg (Printf.sprintf "Interp: arity mismatch calling %s" f.fname));
  match f.blocks with
  | [] -> assert false    (* validated *)
  | entry :: _ ->
      { fr_func = f; fr_block = entry; fr_ip = 0; fr_regs = regs; fr_dst = dst;
        fr_stack_objs = [] }

(* --- single-step execution ----------------------------------------------- *)

(* Outcome of stepping one thread by one instruction.  [Stepped_free]
   executes without advancing the clock: ptwrite is hardware tracing work,
   not program work, so instrumentation must not perturb the schedule. *)
type step = Stepped | Stepped_free | Blocked | Thread_done | Program_done of int64 option

let jump st (fr : frame) label =
  fr.fr_block <- Er_ir.Prog.block st.prog ~func:fr.fr_func.fname ~label;
  fr.fr_ip <- 0

let do_return st (th : thread) v : step =
  match th.stack with
  | [] -> assert false
  | fr :: rest ->
      (match st.cfg.hooks.on_ret with
       | Some h -> h ~func:fr.fr_func.fname ~value:v
       | None -> ());
      List.iter (Memory.release_stack st.mem) fr.fr_stack_objs;
      th.stack <- rest;
      th.depth <- th.depth - 1;
      (match rest with
       | [] ->
           th.status <- Done_t;
           if th.tid = 0 then Program_done v else Thread_done
       | caller :: _ ->
           (match fr.fr_dst, v with
            | Some dst, Some value ->
                let ty =
                  match fr.fr_func.ret_ty with Some t -> t | None -> I64
                in
                set_reg caller dst (norm ty value)
            | Some dst, None -> set_reg caller dst 0L
            | None, _ -> ());
           Stepped)

let step_instr st (th : thread) (fr : frame) (i : instr) : step =
  let ev v = eval_value st fr v in
  let set_reg fr r v =
    (match st.cfg.hooks.on_def with
     | Some h -> h (point_of st fr) ~reg:r ~value:v
     | None -> ());
    set_reg fr r v
  in
  ignore set_reg;
  match i with
  | Bin { dst; op; ty; a; b } ->
      let va = ev a and vb = ev b in
      (match op with
       | Udiv | Urem when Int64.equal (norm ty vb) 0L ->
           raise (Crash Failure.Div_by_zero)
       | _ -> ());
      set_reg fr dst
        (Sem.eval_binop (smt_binop op) (width_of_ty ty) (norm ty va) (norm ty vb));
      fr.fr_ip <- fr.fr_ip + 1;
      Stepped
  | Cmp { dst; op; ty; a; b } ->
      let r = eval_cmp op (width_of_ty ty) (norm ty (ev a)) (norm ty (ev b)) in
      set_reg fr dst (if r then 1L else 0L);
      fr.fr_ip <- fr.fr_ip + 1;
      Stepped
  | Select { dst; ty; cond; if_true; if_false } ->
      let c = ev cond in
      set_reg fr dst (norm ty (if Int64.equal (norm I1 c) 1L then ev if_true else ev if_false));
      fr.fr_ip <- fr.fr_ip + 1;
      Stepped
  | Cast { dst; kind; to_ty; v; from_ty } ->
      let value = norm from_ty (ev v) in
      let out =
        match kind with
        | Zext | Ptrtoint | Inttoptr -> norm to_ty value
        | Trunc -> norm to_ty value
        | Sext -> norm to_ty (Er_smt.Ty.sign_extend (width_of_ty from_ty) value)
      in
      set_reg fr dst out;
      fr.fr_ip <- fr.fr_ip + 1;
      Stepped
  | Load { dst; ty; addr } ->
      (match Memory.load st.mem (ev addr) ~ty with
       | Error k -> raise (Crash k)
       | Ok v ->
           set_reg fr dst v;
           fr.fr_ip <- fr.fr_ip + 1;
           Stepped)
  | Store { ty; v; addr } ->
      let value = norm ty (ev v) in
      (match Memory.store st.mem (ev addr) ~ty value with
       | Error k -> raise (Crash k)
       | Ok (obj, index, old_value) ->
           (match st.cfg.hooks.on_store with
            | Some f -> f ~obj ~index ~old_value ~new_value:value
            | None -> ());
           fr.fr_ip <- fr.fr_ip + 1;
           Stepped)
  | Alloc { dst; elt_ty; count; heap } ->
      let n = Int64.to_int (ev count) in
      (match st.cfg.hooks.on_alloc with
       | Some f -> f (Int64.of_int n)
       | None -> ());
      (match Memory.alloc st.mem ~elt_ty ~size:n ~heap with
       | None -> raise (Crash (Failure.Access_type_error "allocation too large"))
       | Some p ->
           if not heap then
             fr.fr_stack_objs <- Memory.ptr_obj p :: fr.fr_stack_objs;
           set_reg fr dst p;
           fr.fr_ip <- fr.fr_ip + 1;
           Stepped)
  | Free { addr } ->
      (match Memory.free st.mem (ev addr) with
       | Error k -> raise (Crash k)
       | Ok () ->
           fr.fr_ip <- fr.fr_ip + 1;
           Stepped)
  | Gep { dst; base; idx } ->
      let p = ev base in
      let i = Int64.to_int (Er_smt.Ty.sign_extend 64 (ev idx)) in
      set_reg fr dst
        (Memory.ptr ~obj:(Memory.ptr_obj p) ~index:(Memory.ptr_index p + i));
      fr.fr_ip <- fr.fr_ip + 1;
      Stepped
  | Call { dst; func; args } ->
      if th.depth >= st.cfg.max_call_depth then
        raise (Crash Failure.Stack_overflow);
      let f = Er_ir.Prog.func st.prog func in
      let vargs = List.map ev args in
      (match st.cfg.hooks.on_enter with
       | Some h -> h ~func ~args:vargs
       | None -> ());
      fr.fr_ip <- fr.fr_ip + 1;    (* return to the next instruction *)
      th.stack <- make_frame f vargs ~dst :: th.stack;
      th.depth <- th.depth + 1;
      Stepped
  | Input { dst; ty; stream } ->
      (match Inputs.read st.inputs stream with
       | None -> raise (Crash (Failure.Input_exhausted stream))
       | Some v ->
           let v = norm ty v in
           (match st.cfg.hooks.on_input with
            | Some f -> f ~stream ~value:v
            | None -> ());
           set_reg fr dst v;
           fr.fr_ip <- fr.fr_ip + 1;
           Stepped)
  | Output { v } ->
      st.outputs <- ev v :: st.outputs;
      fr.fr_ip <- fr.fr_ip + 1;
      Stepped
  | Ptwrite { v } ->
      (match st.cfg.hooks.on_ptwrite with
       | Some f -> f (ev v)
       | None -> ());
      fr.fr_ip <- fr.fr_ip + 1;
      Stepped_free
  | Assert { cond; msg } ->
      if Int64.equal (norm I1 (ev cond)) 0L then
        raise (Crash (Failure.Assert_failed msg));
      fr.fr_ip <- fr.fr_ip + 1;
      Stepped
  | Spawn { func; args } ->
      let f = Er_ir.Prog.func st.prog func in
      let vargs = List.map ev args in
      let t =
        { tid = st.next_tid; stack = [ make_frame f vargs ~dst:None ];
          depth = 1; status = Runnable }
      in
      st.next_tid <- st.next_tid + 1;
      st.threads <- st.threads @ [ t ];
      fr.fr_ip <- fr.fr_ip + 1;
      Stepped
  | Join ->
      let others_done =
        List.for_all
          (fun t -> t.tid = th.tid || t.status = Done_t)
          st.threads
      in
      if others_done then begin
        fr.fr_ip <- fr.fr_ip + 1;
        Stepped
      end
      else begin
        th.status <- Waiting_join;
        Blocked
      end
  | Lock { addr } ->
      let a = ev addr in
      (match Hashtbl.find_opt st.mutexes a with
       | Some owner when owner = th.tid ->
           raise (Crash (Failure.Lock_error "recursive lock"))
       | Some _ ->
           th.status <- Blocked_lock a;
           Blocked
       | None ->
           Hashtbl.replace st.mutexes a th.tid;
           fr.fr_ip <- fr.fr_ip + 1;
           Stepped)
  | Unlock { addr } ->
      let a = ev addr in
      (match Hashtbl.find_opt st.mutexes a with
       | Some owner when owner = th.tid ->
           Hashtbl.remove st.mutexes a;
           (* wake threads blocked on this mutex *)
           List.iter
             (fun t ->
                match t.status with
                | Blocked_lock a' when Int64.equal a a' -> t.status <- Runnable
                | Blocked_lock _ | Runnable | Waiting_join | Done_t -> ())
             st.threads;
           fr.fr_ip <- fr.fr_ip + 1;
           Stepped
       | Some _ | None ->
           raise (Crash (Failure.Lock_error "unlock of mutex not held")))

let step_term st (th : thread) (fr : frame) (t : terminator) : step =
  match t with
  | Br l ->
      jump st fr l;
      Stepped
  | Cond_br { cond; if_true; if_false } ->
      let c = Int64.equal (norm I1 (eval_value st fr cond)) 1L in
      st.branches <- st.branches + 1;
      (match st.cfg.hooks.on_branch with Some f -> f c | None -> ());
      jump st fr (if c then if_true else if_false);
      Stepped
  | Ret v -> do_return st th (Option.map (eval_value st fr) v)
  | Abort msg -> raise (Crash (Failure.Abort_called msg))
  | Unreachable -> raise (Crash Failure.Unreachable_reached)

let step_thread st (th : thread) : step =
  match th.stack with
  | [] ->
      th.status <- Done_t;
      Thread_done
  | fr :: _ ->
      if fr.fr_ip < Array.length fr.fr_block.instrs then begin
        let i = fr.fr_block.instrs.(fr.fr_ip) in
        if M.enabled M.default then count_instr i;
        step_instr st th fr i
      end
      else begin
        if M.enabled M.default then count_term fr.fr_block.term;
        step_term st th fr fr.fr_block.term
      end

(* --- scheduler ------------------------------------------------------------ *)

(* Deterministic per-(seed, chunk#) quantum jitter. *)
let chunk_quantum cfg turn =
  let h = Hashtbl.hash (cfg.sched_seed, turn) in
  let j = if cfg.quantum_jitter = 0 then 0 else (h mod (2 * cfg.quantum_jitter)) - cfg.quantum_jitter in
  max 8 (cfg.quantum + j)

let run_reference ?(config = default_config) (prog : Er_ir.Prog.t)
    (inputs : Inputs.t) : run_result =
  Inputs.reset inputs;
  let st =
    {
      prog;
      mem = Memory.create ();
      inputs;
      cfg = config;
      globals = Hashtbl.create 16;
      mutexes = Hashtbl.create 8;
      threads = [];
      next_tid = 1;
      clock = 0;
      branches = 0;
      outputs = [];
    }
  in
  List.iter (alloc_global st) prog.program.globals;
  let main_func = Er_ir.Prog.main prog in
  let main_thread =
    { tid = 0; stack = [ make_frame main_func [] ~dst:None ]; depth = 1;
      status = Runnable }
  in
  st.threads <- [ main_thread ];
  let finish outcome =
    {
      outcome;
      instr_count = st.clock;
      branch_count = st.branches;
      outputs = List.rev st.outputs;
      peak_mem_cells = Memory.peak_cells st.mem;
      final_mem = st.mem;
    }
  in
  let result = ref None in
  let turn = ref 0 in
  let cur = ref main_thread in
  let emit_switch th =
    M.inc m_switches;
    match config.hooks.on_switch with
    | Some f -> f ~tid:th.tid ~clock:st.clock
    | None -> ()
  in
  (* pick the next runnable thread after [after] in tid order, if any *)
  let pick_next after =
    (* a joining thread becomes runnable once every other thread is done *)
    List.iter
      (fun t ->
         if
           t.status = Waiting_join
           && List.for_all
                (fun u -> u.tid = t.tid || u.status = Done_t)
                st.threads
         then t.status <- Runnable)
      st.threads;
    let runnable = List.filter (fun t -> t.status = Runnable) st.threads in
    match runnable with
    | [] -> None
    | _ ->
        let later = List.filter (fun t -> t.tid > after) runnable in
        Some (match later with t :: _ -> t | [] -> List.hd runnable)
  in
  while !result = None do
    let th = !cur in
    let quantum = chunk_quantum config !turn in
    incr turn;
    let steps = ref 0 in
    let stop = ref false in
    while (not !stop) && !steps < quantum && !result = None do
      if st.clock >= config.max_instrs then begin
        let fr = List.hd th.stack in
        result :=
          Some
            (finish
               (Failed
                  { Failure.kind = Failure.Hang; point = point_of st fr;
                    stack = stack_of th; thread = th.tid }))
      end
      else begin
        match step_thread st th with
        | exception Crash kind ->
            let fr = List.hd th.stack in
            result :=
              Some
                (finish
                   (Failed
                      { Failure.kind; point = point_of st fr;
                        stack = stack_of th; thread = th.tid }))
        | Stepped ->
            st.clock <- st.clock + 1;
            incr steps
        | Stepped_free -> ()
        | Blocked -> stop := true
        | Thread_done -> stop := true
        | Program_done v ->
            st.clock <- st.clock + 1;
            result := Some (finish (Finished v))
      end
    done;
    (match !result with
     | Some _ -> ()
     | None -> (
         match pick_next th.tid with
         | Some next ->
             if next.tid <> th.tid || th.status <> Runnable then begin
               cur := next;
               if next.tid <> th.tid then emit_switch next
             end
             else cur := next
         | None ->
             (* no runnable threads: every thread done, or deadlock *)
             if List.for_all (fun t -> t.status = Done_t) st.threads then
               (* main returning sets Program_done, so reaching here with
                  all threads done means main never ran; treat as finish *)
               result := Some (finish (Finished None))
             else begin
               let victim =
                 match
                   List.find_opt (fun t -> t.status <> Done_t) st.threads
                 with
                 | Some t -> t
                 | None -> assert false
               in
               let point, stack =
                 match victim.stack with
                 | fr :: _ -> point_of st fr, stack_of victim
                 | [] ->
                     ( { p_func = prog.program.main; p_block = "entry";
                         p_index = 0 }, [] )
               in
               result :=
                 Some
                   (finish
                      (Failed
                         { Failure.kind = Failure.Deadlock; point;
                           stack; thread = victim.tid }))
             end))
  done;
  match !result with Some r -> r | None -> assert false

(* ======================================================================== *)
(* Lowered engine                                                           *)
(* ======================================================================== *)

(* The production interpreter: dispatch over the pre-lowered code cache
   ({!Er_ir.Lower}).  Register files are dense [int64 array]s indexed by
   slot, control flow and call targets are array indices, the call-depth
   check is a cached counter, and per-class retirement metrics are
   flushed one batched [M.add] per retired block.  Every observable —
   hook invocations and their order, failure reports, outputs, metric
   totals — matches [run_reference] bit for bit; the differential suite
   in test/test_lower.ml pins this down. *)

module L = Er_ir.Lower

type lframe = {
  lfr_func : L.lfunc;
  mutable lfr_block : L.lblock;
  mutable lfr_ip : int;
  lfr_regs : int64 array;
  lfr_defined : Bytes.t;   (* per-slot definedness; length 0 when untracked *)
  lfr_dst : int option;    (* caller slot for the return value *)
  mutable lfr_stack_objs : int list;
}

type lthread = {
  ltid : int;
  mutable lstack : lframe list;    (* innermost first *)
  mutable ldepth : int;            (* cached [List.length lstack] *)
  mutable lstatus : tstatus;
}

type lst = {
  llow : L.t;
  lmem : Memory.t;
  linputs : Inputs.t;
  lcfg : config;
  lglobal_ptrs : int64 array;      (* indexed like [llow.l_globals] *)
  lmutexes : (int64, int) Hashtbl.t;
  mutable lthreads : lthread list;
  mutable lnext_tid : int;
  mutable lclock : int;
  mutable lbranches : int;
  mutable loutputs : int64 list;
}

let lpoint_of (fr : lframe) =
  { p_func = fr.lfr_func.L.lf_name; p_block = fr.lfr_block.L.lb_label;
    p_index = fr.lfr_ip }

let lstack_of (th : lthread) = List.map lpoint_of th.lstack

let ev_operand st (fr : lframe) (o : L.operand) : int64 =
  match o with
  | L.Oslot s -> Array.unsafe_get fr.lfr_regs s
  | L.Oimm { v; _ } -> v
  | L.Onull -> Memory.null
  | L.Oglobal i -> st.lglobal_ptrs.(i)
  | L.Ocheck { slot; reg } ->
      if Bytes.get fr.lfr_defined slot = '\001' then fr.lfr_regs.(slot)
      else
        invalid_arg
          (Printf.sprintf "Interp: read of undefined register %s in %s" reg
             fr.lfr_func.L.lf_name)

(* Slot write without the on_def hook: return values and parameter
   binding, mirroring the plain [set_reg] of the reference engine. *)
let lset_slot (fr : lframe) slot v =
  fr.lfr_regs.(slot) <- v;
  if Bytes.length fr.lfr_defined <> 0 then Bytes.set fr.lfr_defined slot '\001'

let empty_defined = Bytes.create 0

let make_lframe (lf : L.lfunc) (args : int64 list) ~dst =
  let regs = Array.make lf.L.lf_nslots 0L in
  let defined =
    if lf.L.lf_tracked then Bytes.make lf.L.lf_nslots '\000' else empty_defined
  in
  let fr =
    { lfr_func = lf; lfr_block = lf.L.lf_blocks.(0); lfr_ip = 0;
      lfr_regs = regs; lfr_defined = defined; lfr_dst = dst;
      lfr_stack_objs = [] }
  in
  if List.length args <> Array.length lf.L.lf_params then
    invalid_arg (Printf.sprintf "Interp: arity mismatch calling %s" lf.L.lf_name);
  List.iteri
    (fun i v ->
       let slot, ty = lf.L.lf_params.(i) in
       lset_slot fr slot (norm ty v))
    args;
  fr

(* One batched add per counter class for a fully retired block
   (instructions + terminator). *)
let flush_delta (d : L.delta) =
  if d.L.d_alu > 0 then M.add m_i_alu d.L.d_alu;
  if d.L.d_load > 0 then begin
    M.add m_i_load d.L.d_load;
    M.add m_loads d.L.d_load
  end;
  if d.L.d_store > 0 then begin
    M.add m_i_store d.L.d_store;
    M.add m_stores d.L.d_store
  end;
  if d.L.d_mem > 0 then M.add m_i_mem d.L.d_mem;
  if d.L.d_call > 0 then M.add m_i_call d.L.d_call;
  if d.L.d_io > 0 then M.add m_i_io d.L.d_io;
  if d.L.d_sync > 0 then M.add m_i_sync d.L.d_sync;
  if d.L.d_branch > 0 then M.add m_i_branch d.L.d_branch;
  if d.L.d_other > 0 then M.add m_i_other d.L.d_other;
  if d.L.d_cond > 0 then M.add m_branches d.L.d_cond

(* At run end, account the partially retired block of every live frame
   so totals equal the reference engine's per-instruction counts.  For
   the frame that raised [Crash] at an instruction, the crashing
   instruction itself was "counted before execution" by the reference
   engine, so include it; a crash at a terminator was already covered by
   the pre-terminator [flush_delta].  A pending-but-never-attempted
   instruction (hang check, blocked sync op) is excluded, again like the
   reference, whose per-attempt counts for blocked ops are instead added
   at each [Blocked] step. *)
let flush_partial st ~(crashed : lthread option) =
  if M.enabled M.default then
    List.iter
      (fun th ->
         List.iteri
           (fun fi fr ->
              let src = fr.lfr_block.L.lb_src in
              let len = Array.length src.instrs in
              let crashed_top =
                (match crashed with Some t -> t == th | None -> false)
                && fi = 0
              in
              let stop =
                if crashed_top then
                  if fr.lfr_ip < len then fr.lfr_ip + 1 else 0
                else min fr.lfr_ip len
              in
              for k = 0 to stop - 1 do
                count_instr src.instrs.(k)
              done)
           th.lstack)
      st.lthreads

let ldo_return st (th : lthread) v : step =
  match th.lstack with
  | [] -> assert false
  | fr :: rest ->
      (match st.lcfg.hooks.on_ret with
       | Some h -> h ~func:fr.lfr_func.L.lf_name ~value:v
       | None -> ());
      List.iter (Memory.release_stack st.lmem) fr.lfr_stack_objs;
      th.lstack <- rest;
      th.ldepth <- th.ldepth - 1;
      (match rest with
       | [] ->
           th.lstatus <- Done_t;
           if th.ltid = 0 then Program_done v else Thread_done
       | caller :: _ ->
           (match fr.lfr_dst, v with
            | Some dst, Some value ->
                lset_slot caller dst
                  (Er_smt.Ty.truncate fr.lfr_func.L.lf_ret_w value)
            | Some dst, None -> lset_slot caller dst 0L
            | None, _ -> ());
           Stepped)

(* Slot write with the on_def hook, the lowered [set_reg]; a top-level
   function so the per-instruction step allocates no closures. *)
let[@inline] lset_reg st (fr : lframe) slot v =
  (match st.lcfg.hooks.on_def with
   | Some h ->
       h (lpoint_of fr) ~reg:fr.lfr_func.L.lf_reg_of_slot.(slot) ~value:v
   | None -> ());
  lset_slot fr slot v

(* Evaluate a call/spawn argument array without the intermediate array
   of [Array.map] — one list allocation, same element order. *)
let ev_args st (fr : lframe) (args : L.operand array) =
  Array.fold_right (fun o acc -> ev_operand st fr o :: acc) args []

let lstep_instr st (th : lthread) (fr : lframe) (i : L.linstr) : step =
  match i with
  | L.LBin { dst; op; w; a; b; _ } ->
      let va = ev_operand st fr a and vb = ev_operand st fr b in
      (match op with
       | Udiv | Urem when Int64.equal (Er_smt.Ty.truncate w vb) 0L ->
           raise (Crash Failure.Div_by_zero)
       | _ -> ());
      lset_reg st fr dst
        (Sem.eval_binop (smt_binop op) w (Er_smt.Ty.truncate w va)
           (Er_smt.Ty.truncate w vb));
      fr.lfr_ip <- fr.lfr_ip + 1;
      Stepped
  | L.LCmp { dst; op; w; a; b; _ } ->
      let r =
        eval_cmp op w (Er_smt.Ty.truncate w (ev_operand st fr a)) (Er_smt.Ty.truncate w (ev_operand st fr b))
      in
      lset_reg st fr dst (if r then 1L else 0L);
      fr.lfr_ip <- fr.lfr_ip + 1;
      Stepped
  | L.LSelect { dst; w; cond; if_true; if_false; _ } ->
      let c = ev_operand st fr cond in
      lset_reg st fr dst
        (Er_smt.Ty.truncate w
           (if Int64.equal (Er_smt.Ty.truncate 1 c) 1L then ev_operand st fr if_true
            else ev_operand st fr if_false));
      fr.lfr_ip <- fr.lfr_ip + 1;
      Stepped
  | L.LCast { dst; kind; to_w; from_w; v; _ } ->
      let value = Er_smt.Ty.truncate from_w (ev_operand st fr v) in
      let out =
        match kind with
        | Zext | Ptrtoint | Inttoptr | Trunc -> Er_smt.Ty.truncate to_w value
        | Sext ->
            Er_smt.Ty.truncate to_w (Er_smt.Ty.sign_extend from_w value)
      in
      lset_reg st fr dst out;
      fr.lfr_ip <- fr.lfr_ip + 1;
      Stepped
  | L.LLoad { dst; ty; addr } ->
      (match Memory.load st.lmem (ev_operand st fr addr) ~ty with
       | Error k -> raise (Crash k)
       | Ok v ->
           lset_reg st fr dst v;
           fr.lfr_ip <- fr.lfr_ip + 1;
           Stepped)
  | L.LStore { ty; w; v; addr } ->
      let value = Er_smt.Ty.truncate w (ev_operand st fr v) in
      (match Memory.store st.lmem (ev_operand st fr addr) ~ty value with
       | Error k -> raise (Crash k)
       | Ok (obj, index, old_value) ->
           (match st.lcfg.hooks.on_store with
            | Some f -> f ~obj ~index ~old_value ~new_value:value
            | None -> ());
           fr.lfr_ip <- fr.lfr_ip + 1;
           Stepped)
  | L.LAlloc { dst; elt_ty; count; heap } ->
      let n = Int64.to_int (ev_operand st fr count) in
      (match st.lcfg.hooks.on_alloc with
       | Some f -> f (Int64.of_int n)
       | None -> ());
      (match Memory.alloc st.lmem ~elt_ty ~size:n ~heap with
       | None -> raise (Crash (Failure.Access_type_error "allocation too large"))
       | Some p ->
           if not heap then
             fr.lfr_stack_objs <- Memory.ptr_obj p :: fr.lfr_stack_objs;
           lset_reg st fr dst p;
           fr.lfr_ip <- fr.lfr_ip + 1;
           Stepped)
  | L.LFree { addr } ->
      (match Memory.free st.lmem (ev_operand st fr addr) with
       | Error k -> raise (Crash k)
       | Ok () ->
           fr.lfr_ip <- fr.lfr_ip + 1;
           Stepped)
  | L.LGep { dst; base; idx } ->
      let p = ev_operand st fr base in
      let i = Int64.to_int (Er_smt.Ty.sign_extend 64 (ev_operand st fr idx)) in
      lset_reg st fr dst
        (Memory.ptr ~obj:(Memory.ptr_obj p) ~index:(Memory.ptr_index p + i));
      fr.lfr_ip <- fr.lfr_ip + 1;
      Stepped
  | L.LCall { dst; fidx; args } ->
      if th.ldepth >= st.lcfg.max_call_depth then
        raise (Crash Failure.Stack_overflow);
      let lf = st.llow.L.l_funcs.(fidx) in
      let vargs = ev_args st fr args in
      (match st.lcfg.hooks.on_enter with
       | Some h -> h ~func:lf.L.lf_name ~args:vargs
       | None -> ());
      fr.lfr_ip <- fr.lfr_ip + 1;    (* return to the next instruction *)
      th.lstack <- make_lframe lf vargs ~dst :: th.lstack;
      th.ldepth <- th.ldepth + 1;
      Stepped
  | L.LInput { dst; ty; stream } ->
      (match Inputs.read st.linputs stream with
       | None -> raise (Crash (Failure.Input_exhausted stream))
       | Some v ->
           let v = norm ty v in
           (match st.lcfg.hooks.on_input with
            | Some f -> f ~stream ~value:v
            | None -> ());
           lset_reg st fr dst v;
           fr.lfr_ip <- fr.lfr_ip + 1;
           Stepped)
  | L.LOutput { v } ->
      st.loutputs <- ev_operand st fr v :: st.loutputs;
      fr.lfr_ip <- fr.lfr_ip + 1;
      Stepped
  | L.LPtwrite { v } ->
      (match st.lcfg.hooks.on_ptwrite with
       | Some f -> f (ev_operand st fr v)
       | None -> ());
      fr.lfr_ip <- fr.lfr_ip + 1;
      Stepped_free
  | L.LAssert { cond; msg } ->
      if Int64.equal (Er_smt.Ty.truncate 1 (ev_operand st fr cond)) 0L then
        raise (Crash (Failure.Assert_failed msg));
      fr.lfr_ip <- fr.lfr_ip + 1;
      Stepped
  | L.LSpawn { fidx; args } ->
      let lf = st.llow.L.l_funcs.(fidx) in
      let vargs = ev_args st fr args in
      let t =
        { ltid = st.lnext_tid; lstack = [ make_lframe lf vargs ~dst:None ];
          ldepth = 1; lstatus = Runnable }
      in
      st.lnext_tid <- st.lnext_tid + 1;
      st.lthreads <- st.lthreads @ [ t ];
      fr.lfr_ip <- fr.lfr_ip + 1;
      Stepped
  | L.LJoin ->
      let others_done =
        List.for_all
          (fun t -> t.ltid = th.ltid || t.lstatus = Done_t)
          st.lthreads
      in
      if others_done then begin
        fr.lfr_ip <- fr.lfr_ip + 1;
        Stepped
      end
      else begin
        th.lstatus <- Waiting_join;
        Blocked
      end
  | L.LLock { addr } ->
      let a = ev_operand st fr addr in
      (match Hashtbl.find_opt st.lmutexes a with
       | Some owner when owner = th.ltid ->
           raise (Crash (Failure.Lock_error "recursive lock"))
       | Some _ ->
           th.lstatus <- Blocked_lock a;
           Blocked
       | None ->
           Hashtbl.replace st.lmutexes a th.ltid;
           fr.lfr_ip <- fr.lfr_ip + 1;
           Stepped)
  | L.LUnlock { addr } ->
      let a = ev_operand st fr addr in
      (match Hashtbl.find_opt st.lmutexes a with
       | Some owner when owner = th.ltid ->
           Hashtbl.remove st.lmutexes a;
           List.iter
             (fun t ->
                match t.lstatus with
                | Blocked_lock a' when Int64.equal a a' -> t.lstatus <- Runnable
                | Blocked_lock _ | Runnable | Waiting_join | Done_t -> ())
             st.lthreads;
           fr.lfr_ip <- fr.lfr_ip + 1;
           Stepped
       | Some _ | None ->
           raise (Crash (Failure.Lock_error "unlock of mutex not held")))

let lstep_term st (th : lthread) (fr : lframe) (t : L.lterm) : step =
  match t with
  | L.LBr i ->
      fr.lfr_block <- fr.lfr_func.L.lf_blocks.(i);
      fr.lfr_ip <- 0;
      Stepped
  | L.LCond_br { cond; if_true; if_false } ->
      let c = Int64.equal (Er_smt.Ty.truncate 1 (ev_operand st fr cond)) 1L in
      st.lbranches <- st.lbranches + 1;
      (match st.lcfg.hooks.on_branch with Some f -> f c | None -> ());
      fr.lfr_block <-
        fr.lfr_func.L.lf_blocks.(if c then if_true else if_false);
      fr.lfr_ip <- 0;
      Stepped
  | L.LRet v -> ldo_return st th (Option.map (ev_operand st fr) v)
  | L.LAbort msg -> raise (Crash (Failure.Abort_called msg))
  | L.LUnreachable -> raise (Crash Failure.Unreachable_reached)

let lstep_thread st (th : lthread) : step =
  match th.lstack with
  | [] ->
      th.lstatus <- Done_t;
      Thread_done
  | fr :: _ ->
      let b = fr.lfr_block in
      if fr.lfr_ip < Array.length b.L.lb_instrs then begin
        let i = Array.unsafe_get b.L.lb_instrs fr.lfr_ip in
        match lstep_instr st th fr i with
        | Blocked ->
            (* the reference engine counts a blocked op once per attempt;
               the block delta will cover only the successful retirement *)
            if M.enabled M.default then
              count_instr b.L.lb_src.instrs.(fr.lfr_ip);
            Blocked
        | s -> s
      end
      else begin
        (* whole block retires with this terminator: one batched add per
           class, before execution, like the reference's count-then-step *)
        if M.enabled M.default then flush_delta b.L.lb_delta;
        lstep_term st th fr b.L.lb_term
      end

let run ?(config = default_config) (prog : Er_ir.Prog.t) (inputs : Inputs.t) :
  run_result =
  Inputs.reset inputs;
  let low = Er_ir.Prog.lowered prog in
  let mem = Memory.create () in
  let st =
    {
      llow = low;
      lmem = mem;
      linputs = inputs;
      lcfg = config;
      lglobal_ptrs = Array.map (alloc_global_mem mem) low.L.l_globals;
      lmutexes = Hashtbl.create 8;
      lthreads = [];
      lnext_tid = 1;
      lclock = 0;
      lbranches = 0;
      loutputs = [];
    }
  in
  let main_thread =
    { ltid = 0;
      lstack = [ make_lframe low.L.l_funcs.(low.L.l_main) [] ~dst:None ];
      ldepth = 1; lstatus = Runnable }
  in
  st.lthreads <- [ main_thread ];
  let finish ?crashed outcome =
    flush_partial st ~crashed;
    {
      outcome;
      instr_count = st.lclock;
      branch_count = st.lbranches;
      outputs = List.rev st.loutputs;
      peak_mem_cells = Memory.peak_cells st.lmem;
      final_mem = st.lmem;
    }
  in
  let result = ref None in
  let turn = ref 0 in
  let cur = ref main_thread in
  let emit_switch th =
    M.inc m_switches;
    match config.hooks.on_switch with
    | Some f -> f ~tid:th.ltid ~clock:st.lclock
    | None -> ()
  in
  let pick_next after =
    List.iter
      (fun t ->
         if
           t.lstatus = Waiting_join
           && List.for_all
                (fun u -> u.ltid = t.ltid || u.lstatus = Done_t)
                st.lthreads
         then t.lstatus <- Runnable)
      st.lthreads;
    let runnable = List.filter (fun t -> t.lstatus = Runnable) st.lthreads in
    match runnable with
    | [] -> None
    | _ ->
        let later = List.filter (fun t -> t.ltid > after) runnable in
        Some (match later with t :: _ -> t | [] -> List.hd runnable)
  in
  while !result = None do
    let th = !cur in
    let quantum = chunk_quantum config !turn in
    incr turn;
    let steps = ref 0 in
    let stop = ref false in
    while (not !stop) && !steps < quantum && !result = None do
      if st.lclock >= config.max_instrs then begin
        let fr = List.hd th.lstack in
        result :=
          Some
            (finish
               (Failed
                  { Failure.kind = Failure.Hang; point = lpoint_of fr;
                    stack = lstack_of th; thread = th.ltid }))
      end
      else begin
        match lstep_thread st th with
        | exception Crash kind ->
            let fr = List.hd th.lstack in
            result :=
              Some
                (finish ~crashed:th
                   (Failed
                      { Failure.kind; point = lpoint_of fr;
                        stack = lstack_of th; thread = th.ltid }))
        | Stepped ->
            st.lclock <- st.lclock + 1;
            incr steps
        | Stepped_free -> ()
        | Blocked -> stop := true
        | Thread_done -> stop := true
        | Program_done v ->
            st.lclock <- st.lclock + 1;
            result := Some (finish (Finished v))
      end
    done;
    (match !result with
     | Some _ -> ()
     | None -> (
         match pick_next th.ltid with
         | Some next ->
             if next.ltid <> th.ltid || th.lstatus <> Runnable then begin
               cur := next;
               if next.ltid <> th.ltid then emit_switch next
             end
             else cur := next
         | None ->
             if List.for_all (fun t -> t.lstatus = Done_t) st.lthreads then
               result := Some (finish (Finished None))
             else begin
               let victim =
                 match
                   List.find_opt (fun t -> t.lstatus <> Done_t) st.lthreads
                 with
                 | Some t -> t
                 | None -> assert false
               in
               let point, stack =
                 match victim.lstack with
                 | fr :: _ -> lpoint_of fr, lstack_of victim
                 | [] ->
                     ( { p_func = low.L.l_src.main; p_block = "entry";
                         p_index = 0 }, [] )
               in
               result :=
                 Some
                   (finish
                      (Failed
                         { Failure.kind = Failure.Deadlock; point;
                           stack; thread = victim.ltid }))
             end))
  done;
  match !result with Some r -> r | None -> assert false
