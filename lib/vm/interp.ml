(* The production runtime: a concrete EIR interpreter with failure
   detection, a coarse-chunk thread scheduler, and tracing hooks.

   All register values are int64, normalized to their type width;
   pointers are packed per {!Memory}.  Arithmetic reuses the evaluation
   functions of the SMT expression language so that the concrete runtime,
   the model evaluator and the bit-blaster provably share one semantics
   (a qcheck property pins this down).

   The scheduler runs one thread for a quantum of instructions, then
   rotates; quantum lengths are jittered from a seed so that different
   failure occurrences exhibit different interleavings, the way distinct
   production runs would.  Chunk boundaries invoke the [on_switch] hook,
   which the PT-like encoder turns into TIP+MTC packets — the coarse
   timestamps of section 3.4.

   Two engines implement this semantics.  The production one lives in
   {!Vm_state}: it dispatches over the pre-lowered code cache, keeps all
   run state behind a resumable value with checkpoint/revert, and is
   what [run] delegates to.  This module keeps the tree-walking
   *reference* engine ([run_reference]) — string-keyed register tables,
   name-resolved jumps — whose bit-for-bit agreement with the lowered
   engine the differential suite in test/test_lower.ml enforces.  The
   shared pieces (hooks, config, metrics, evaluation helpers) are
   defined once in {!Vm_state} and re-exported here under their
   historical names. *)

open Er_ir.Types
module Sem = Er_smt.Expr     (* shared concrete semantics *)
module M = Er_metrics

(* --- re-exports from the production engine ------------------------------- *)

let m_i_alu = Vm_state.m_i_alu
let m_i_load = Vm_state.m_i_load
let m_i_store = Vm_state.m_i_store
let m_i_mem = Vm_state.m_i_mem
let m_i_call = Vm_state.m_i_call
let m_i_io = Vm_state.m_i_io
let m_i_sync = Vm_state.m_i_sync
let m_i_branch = Vm_state.m_i_branch
let m_i_other = Vm_state.m_i_other
let m_loads = Vm_state.m_loads
let m_stores = Vm_state.m_stores
let m_branches = Vm_state.m_branches
let m_switches = Vm_state.m_switches
let count_instr = Vm_state.count_instr
let count_term = Vm_state.count_term

type hooks = Vm_state.hooks = {
  on_branch : (bool -> unit) option;
  on_switch : (tid:int -> clock:int -> unit) option;
  on_ptwrite : (int64 -> unit) option;
  on_input : (stream:string -> value:int64 -> unit) option;
  on_store :
    (obj:int -> index:int -> old_value:int64 -> new_value:int64 -> unit) option;
  on_alloc : (int64 -> unit) option;
  on_def : (Er_ir.Types.point -> reg:string -> value:int64 -> unit) option;
  on_enter : (func:string -> args:int64 list -> unit) option;
  on_ret : (func:string -> value:int64 option -> unit) option;
}

let no_hooks = Vm_state.no_hooks
let compose_hooks = Vm_state.compose_hooks

type config = Vm_state.config = {
  max_instrs : int;
  max_call_depth : int;
  quantum : int;
  quantum_jitter : int;
  sched_seed : int;
  hooks : hooks;
}

let default_config = Vm_state.default_config

type outcome = Vm_state.outcome =
  | Finished of int64 option
  | Failed of Failure.t

type run_result = Vm_state.run_result = {
  outcome : outcome;
  instr_count : int;
  branch_count : int;
  outputs : int64 list;
  peak_mem_cells : int;
  final_mem : Memory.t;    (* the core dump available post-mortem *)
}

type tstatus = Vm_state.tstatus =
  | Runnable
  | Blocked_lock of int64
  | Waiting_join
  | Done_t

(* Outcome of stepping one thread by one instruction.  [Stepped_free]
   executes without advancing the clock: ptwrite is hardware tracing work,
   not program work, so instrumentation must not perturb the schedule. *)
type step = Vm_state.step =
  | Stepped
  | Stepped_free
  | Blocked
  | Thread_done
  | Program_done of int64 option

exception Crash = Vm_state.Crash

let norm = Vm_state.norm
let smt_binop = Vm_state.smt_binop
let eval_cmp = Vm_state.eval_cmp
let chunk_quantum = Vm_state.chunk_quantum
let alloc_global_mem = Vm_state.alloc_global_mem

(* The production entry point: lowered dispatch, resumable state. *)
let run ?config prog inputs = Vm_state.run_program ?config prog inputs

(* ======================================================================== *)
(* Reference engine                                                         *)
(* ======================================================================== *)

(* --- execution state ---------------------------------------------------- *)

type frame = {
  fr_func : func;
  mutable fr_block : block;
  mutable fr_ip : int;
  fr_regs : (string, int64) Hashtbl.t;
  fr_dst : reg option;              (* caller register for the return value *)
  mutable fr_stack_objs : int list; (* alloca'd objects, released on return *)
}

type thread = {
  tid : int;
  mutable stack : frame list;       (* innermost first *)
  mutable depth : int;              (* cached [List.length stack] *)
  mutable status : tstatus;
}

type st = {
  prog : Er_ir.Prog.t;
  mem : Memory.t;
  inputs : Inputs.t;
  cfg : config;
  globals : (string, int64) Hashtbl.t;   (* name -> base pointer *)
  mutexes : (int64, int) Hashtbl.t;      (* lock address -> owner tid *)
  mutable threads : thread list;
  mutable next_tid : int;
  mutable clock : int;
  mutable branches : int;
  mutable outputs : int64 list;
}

let point_of st (fr : frame) =
  ignore st;
  { p_func = fr.fr_func.fname; p_block = fr.fr_block.label; p_index = fr.fr_ip }

let stack_of (th : thread) =
  List.map
    (fun fr ->
       { p_func = fr.fr_func.fname; p_block = fr.fr_block.label;
         p_index = fr.fr_ip })
    th.stack

(* --- value evaluation ---------------------------------------------------- *)

let eval_value st (fr : frame) = function
  | Imm (v, _) -> v
  | Null -> Memory.null
  | Global g -> (
      match Hashtbl.find_opt st.globals g with
      | Some p -> p
      | None -> invalid_arg ("Interp: unknown global " ^ g))
  | Reg r -> (
      match Hashtbl.find_opt fr.fr_regs r with
      | Some v -> v
      | None -> invalid_arg
                  (Printf.sprintf "Interp: read of undefined register %s in %s"
                     r fr.fr_func.fname))

let set_reg (fr : frame) r v = Hashtbl.replace fr.fr_regs r v

(* --- setup ---------------------------------------------------------------- *)

let alloc_global st (g : global) =
  Hashtbl.replace st.globals g.gname (alloc_global_mem st.mem g)

let make_frame (f : func) (args : int64 list) ~dst =
  let regs = Hashtbl.create 16 in
  (try List.iter2 (fun (r, ty) v -> Hashtbl.replace regs r (norm ty v)) f.params args
   with Invalid_argument _ ->
     invalid_arg (Printf.sprintf "Interp: arity mismatch calling %s" f.fname));
  match f.blocks with
  | [] -> assert false    (* validated *)
  | entry :: _ ->
      { fr_func = f; fr_block = entry; fr_ip = 0; fr_regs = regs; fr_dst = dst;
        fr_stack_objs = [] }

(* --- single-step execution ----------------------------------------------- *)

let jump st (fr : frame) label =
  fr.fr_block <- Er_ir.Prog.block st.prog ~func:fr.fr_func.fname ~label;
  fr.fr_ip <- 0

let do_return st (th : thread) v : step =
  match th.stack with
  | [] -> assert false
  | fr :: rest ->
      (match st.cfg.hooks.on_ret with
       | Some h -> h ~func:fr.fr_func.fname ~value:v
       | None -> ());
      List.iter (Memory.release_stack st.mem) fr.fr_stack_objs;
      th.stack <- rest;
      th.depth <- th.depth - 1;
      (match rest with
       | [] ->
           th.status <- Done_t;
           if th.tid = 0 then Program_done v else Thread_done
       | caller :: _ ->
           (match fr.fr_dst, v with
            | Some dst, Some value ->
                let ty =
                  match fr.fr_func.ret_ty with Some t -> t | None -> I64
                in
                set_reg caller dst (norm ty value)
            | Some dst, None -> set_reg caller dst 0L
            | None, _ -> ());
           Stepped)

let step_instr st (th : thread) (fr : frame) (i : instr) : step =
  let ev v = eval_value st fr v in
  let set_reg fr r v =
    (match st.cfg.hooks.on_def with
     | Some h -> h (point_of st fr) ~reg:r ~value:v
     | None -> ());
    set_reg fr r v
  in
  ignore set_reg;
  match i with
  | Bin { dst; op; ty; a; b } ->
      let va = ev a and vb = ev b in
      (match op with
       | Udiv | Urem when Int64.equal (norm ty vb) 0L ->
           raise (Crash Failure.Div_by_zero)
       | _ -> ());
      set_reg fr dst
        (Sem.eval_binop (smt_binop op) (width_of_ty ty) (norm ty va) (norm ty vb));
      fr.fr_ip <- fr.fr_ip + 1;
      Stepped
  | Cmp { dst; op; ty; a; b } ->
      let r = eval_cmp op (width_of_ty ty) (norm ty (ev a)) (norm ty (ev b)) in
      set_reg fr dst (if r then 1L else 0L);
      fr.fr_ip <- fr.fr_ip + 1;
      Stepped
  | Select { dst; ty; cond; if_true; if_false } ->
      let c = ev cond in
      set_reg fr dst (norm ty (if Int64.equal (norm I1 c) 1L then ev if_true else ev if_false));
      fr.fr_ip <- fr.fr_ip + 1;
      Stepped
  | Cast { dst; kind; to_ty; v; from_ty } ->
      let value = norm from_ty (ev v) in
      let out =
        match kind with
        | Zext | Ptrtoint | Inttoptr -> norm to_ty value
        | Trunc -> norm to_ty value
        | Sext -> norm to_ty (Er_smt.Ty.sign_extend (width_of_ty from_ty) value)
      in
      set_reg fr dst out;
      fr.fr_ip <- fr.fr_ip + 1;
      Stepped
  | Load { dst; ty; addr } ->
      (match Memory.load st.mem (ev addr) ~ty with
       | Error k -> raise (Crash k)
       | Ok v ->
           set_reg fr dst v;
           fr.fr_ip <- fr.fr_ip + 1;
           Stepped)
  | Store { ty; v; addr } ->
      let value = norm ty (ev v) in
      (match Memory.store st.mem (ev addr) ~ty value with
       | Error k -> raise (Crash k)
       | Ok (obj, index, old_value) ->
           (match st.cfg.hooks.on_store with
            | Some f -> f ~obj ~index ~old_value ~new_value:value
            | None -> ());
           fr.fr_ip <- fr.fr_ip + 1;
           Stepped)
  | Alloc { dst; elt_ty; count; heap } ->
      let n = Int64.to_int (ev count) in
      (match st.cfg.hooks.on_alloc with
       | Some f -> f (Int64.of_int n)
       | None -> ());
      (match Memory.alloc st.mem ~elt_ty ~size:n ~heap with
       | None -> raise (Crash (Failure.Access_type_error "allocation too large"))
       | Some p ->
           if not heap then
             fr.fr_stack_objs <- Memory.ptr_obj p :: fr.fr_stack_objs;
           set_reg fr dst p;
           fr.fr_ip <- fr.fr_ip + 1;
           Stepped)
  | Free { addr } ->
      (match Memory.free st.mem (ev addr) with
       | Error k -> raise (Crash k)
       | Ok () ->
           fr.fr_ip <- fr.fr_ip + 1;
           Stepped)
  | Gep { dst; base; idx } ->
      let p = ev base in
      let i = Int64.to_int (Er_smt.Ty.sign_extend 64 (ev idx)) in
      set_reg fr dst
        (Memory.ptr ~obj:(Memory.ptr_obj p) ~index:(Memory.ptr_index p + i));
      fr.fr_ip <- fr.fr_ip + 1;
      Stepped
  | Call { dst; func; args } ->
      if th.depth >= st.cfg.max_call_depth then
        raise (Crash Failure.Stack_overflow);
      let f = Er_ir.Prog.func st.prog func in
      let vargs = List.map ev args in
      (match st.cfg.hooks.on_enter with
       | Some h -> h ~func ~args:vargs
       | None -> ());
      fr.fr_ip <- fr.fr_ip + 1;    (* return to the next instruction *)
      th.stack <- make_frame f vargs ~dst :: th.stack;
      th.depth <- th.depth + 1;
      Stepped
  | Input { dst; ty; stream } ->
      (match Inputs.read st.inputs stream with
       | None -> raise (Crash (Failure.Input_exhausted stream))
       | Some v ->
           let v = norm ty v in
           (match st.cfg.hooks.on_input with
            | Some f -> f ~stream ~value:v
            | None -> ());
           set_reg fr dst v;
           fr.fr_ip <- fr.fr_ip + 1;
           Stepped)
  | Output { v } ->
      st.outputs <- ev v :: st.outputs;
      fr.fr_ip <- fr.fr_ip + 1;
      Stepped
  | Ptwrite { v } ->
      (match st.cfg.hooks.on_ptwrite with
       | Some f -> f (ev v)
       | None -> ());
      fr.fr_ip <- fr.fr_ip + 1;
      Stepped_free
  | Assert { cond; msg } ->
      if Int64.equal (norm I1 (ev cond)) 0L then
        raise (Crash (Failure.Assert_failed msg));
      fr.fr_ip <- fr.fr_ip + 1;
      Stepped
  | Spawn { func; args } ->
      let f = Er_ir.Prog.func st.prog func in
      let vargs = List.map ev args in
      let t =
        { tid = st.next_tid; stack = [ make_frame f vargs ~dst:None ];
          depth = 1; status = Runnable }
      in
      st.next_tid <- st.next_tid + 1;
      st.threads <- st.threads @ [ t ];
      fr.fr_ip <- fr.fr_ip + 1;
      Stepped
  | Join ->
      let others_done =
        List.for_all
          (fun t -> t.tid = th.tid || t.status = Done_t)
          st.threads
      in
      if others_done then begin
        fr.fr_ip <- fr.fr_ip + 1;
        Stepped
      end
      else begin
        th.status <- Waiting_join;
        Blocked
      end
  | Lock { addr } ->
      let a = ev addr in
      (match Hashtbl.find_opt st.mutexes a with
       | Some owner when owner = th.tid ->
           raise (Crash (Failure.Lock_error "recursive lock"))
       | Some _ ->
           th.status <- Blocked_lock a;
           Blocked
       | None ->
           Hashtbl.replace st.mutexes a th.tid;
           fr.fr_ip <- fr.fr_ip + 1;
           Stepped)
  | Unlock { addr } ->
      let a = ev addr in
      (match Hashtbl.find_opt st.mutexes a with
       | Some owner when owner = th.tid ->
           Hashtbl.remove st.mutexes a;
           (* wake threads blocked on this mutex *)
           List.iter
             (fun t ->
                match t.status with
                | Blocked_lock a' when Int64.equal a a' -> t.status <- Runnable
                | Blocked_lock _ | Runnable | Waiting_join | Done_t -> ())
             st.threads;
           fr.fr_ip <- fr.fr_ip + 1;
           Stepped
       | Some _ | None ->
           raise (Crash (Failure.Lock_error "unlock of mutex not held")))

let step_term st (th : thread) (fr : frame) (t : terminator) : step =
  match t with
  | Br l ->
      jump st fr l;
      Stepped
  | Cond_br { cond; if_true; if_false } ->
      let c = Int64.equal (norm I1 (eval_value st fr cond)) 1L in
      st.branches <- st.branches + 1;
      (match st.cfg.hooks.on_branch with Some f -> f c | None -> ());
      jump st fr (if c then if_true else if_false);
      Stepped
  | Ret v -> do_return st th (Option.map (eval_value st fr) v)
  | Abort msg -> raise (Crash (Failure.Abort_called msg))
  | Unreachable -> raise (Crash Failure.Unreachable_reached)

let step_thread st (th : thread) : step =
  match th.stack with
  | [] ->
      th.status <- Done_t;
      Thread_done
  | fr :: _ ->
      if fr.fr_ip < Array.length fr.fr_block.instrs then begin
        let i = fr.fr_block.instrs.(fr.fr_ip) in
        if M.enabled M.default then count_instr i;
        step_instr st th fr i
      end
      else begin
        if M.enabled M.default then count_term fr.fr_block.term;
        step_term st th fr fr.fr_block.term
      end

(* --- scheduler ------------------------------------------------------------ *)

let run_reference ?(config = default_config) (prog : Er_ir.Prog.t)
    (inputs : Inputs.t) : run_result =
  Inputs.reset inputs;
  let st =
    {
      prog;
      mem = Memory.create ();
      inputs;
      cfg = config;
      globals = Hashtbl.create 16;
      mutexes = Hashtbl.create 8;
      threads = [];
      next_tid = 1;
      clock = 0;
      branches = 0;
      outputs = [];
    }
  in
  List.iter (alloc_global st) prog.program.globals;
  let main_func = Er_ir.Prog.main prog in
  let main_thread =
    { tid = 0; stack = [ make_frame main_func [] ~dst:None ]; depth = 1;
      status = Runnable }
  in
  st.threads <- [ main_thread ];
  let finish outcome =
    {
      outcome;
      instr_count = st.clock;
      branch_count = st.branches;
      outputs = List.rev st.outputs;
      peak_mem_cells = Memory.peak_cells st.mem;
      final_mem = st.mem;
    }
  in
  let result = ref None in
  let turn = ref 0 in
  let cur = ref main_thread in
  let emit_switch th =
    M.inc m_switches;
    match config.hooks.on_switch with
    | Some f -> f ~tid:th.tid ~clock:st.clock
    | None -> ()
  in
  (* pick the next runnable thread after [after] in tid order, if any *)
  let pick_next after =
    (* a joining thread becomes runnable once every other thread is done *)
    List.iter
      (fun t ->
         if
           t.status = Waiting_join
           && List.for_all
                (fun u -> u.tid = t.tid || u.status = Done_t)
                st.threads
         then t.status <- Runnable)
      st.threads;
    let runnable = List.filter (fun t -> t.status = Runnable) st.threads in
    match runnable with
    | [] -> None
    | _ ->
        let later = List.filter (fun t -> t.tid > after) runnable in
        Some (match later with t :: _ -> t | [] -> List.hd runnable)
  in
  while !result = None do
    let th = !cur in
    let quantum = chunk_quantum config !turn in
    incr turn;
    let steps = ref 0 in
    let stop = ref false in
    while (not !stop) && !steps < quantum && !result = None do
      if st.clock >= config.max_instrs then begin
        let fr = List.hd th.stack in
        result :=
          Some
            (finish
               (Failed
                  { Failure.kind = Failure.Hang; point = point_of st fr;
                    stack = stack_of th; thread = th.tid }))
      end
      else begin
        match step_thread st th with
        | exception Crash kind ->
            let fr = List.hd th.stack in
            result :=
              Some
                (finish
                   (Failed
                      { Failure.kind; point = point_of st fr;
                        stack = stack_of th; thread = th.tid }))
        | Stepped ->
            st.clock <- st.clock + 1;
            incr steps
        | Stepped_free -> ()
        | Blocked -> stop := true
        | Thread_done -> stop := true
        | Program_done v ->
            st.clock <- st.clock + 1;
            result := Some (finish (Finished v))
      end
    done;
    (match !result with
     | Some _ -> ()
     | None -> (
         match pick_next th.tid with
         | Some next ->
             if next.tid <> th.tid || th.status <> Runnable then begin
               cur := next;
               if next.tid <> th.tid then emit_switch next
             end
             else cur := next
         | None ->
             (* no runnable threads: every thread done, or deadlock *)
             if List.for_all (fun t -> t.status = Done_t) st.threads then
               (* main returning sets Program_done, so reaching here with
                  all threads done means main never ran; treat as finish *)
               result := Some (finish (Finished None))
             else begin
               let victim =
                 match
                   List.find_opt (fun t -> t.status <> Done_t) st.threads
                 with
                 | Some t -> t
                 | None -> assert false
               in
               let point, stack =
                 match victim.stack with
                 | fr :: _ -> point_of st fr, stack_of victim
                 | [] ->
                     ( { p_func = prog.program.main; p_block = "entry";
                         p_index = 0 }, [] )
               in
               result :=
                 Some
                   (finish
                      (Failed
                         { Failure.kind = Failure.Deadlock; point;
                           stack; thread = victim.tid }))
             end))
  done;
  match !result with Some r -> r | None -> assert false
