(** Concrete memory: typed objects addressed by (object id, cell index),
    with pointers packed into int64 register values as
    [obj << 32 | index].  Object id 0 is the null object, so the null
    pointer is the integer 0.  Bounds, liveness and access-width checks
    implement the fail-stop crash detection of the runtime.

    Cells live in fixed-size pages under a copy-on-write discipline:
    {!snapshot} captures the page-pointer tables (shallow) plus the
    scalar counters, and the first store into a page after a snapshot
    copies that page.  Structural changes (alloc/free/stack release) are
    journaled so {!revert} can undo them.  Any number of checkpoints may
    be live at once; a checkpoint stays valid across repeated reverts. *)

open Er_ir.Types

type t

(** A point-in-time capture of the whole store, cheap to take (shallow
    page pointers) and to hold (unchanged pages are shared). *)
type checkpoint

val create : unit -> t

(** {1 Pointer packing} *)

val ptr : obj:int -> index:int -> int64
val ptr_obj : int64 -> int
(** The cell index is a signed 32-bit offset so negative GEPs behave
    like C. *)

val ptr_index : int64 -> int
val null : int64
val is_null : int64 -> bool

(** {1 Allocation and access} *)

val alloc : t -> elt_ty:ty -> size:int -> heap:bool -> int64 option
val free : t -> int64 -> (unit, Failure.kind) result

(** Free a stack object when its frame returns (dangling pointers to it
    then fault as use-after-free). *)
val release_stack : t -> int -> unit

val load : t -> int64 -> ty:ty -> (int64, Failure.kind) result

(** [store t p ~ty v] returns [(object id, index, old value)] on
    success. *)
val store : t -> int64 -> ty:ty -> int64 -> (int * int * int64, Failure.kind) result

(** {1 Exception-based access}

    Identical checks in the identical order as {!load}/{!store} — null,
    invalid pointer, use-after-free, out-of-bounds, access type — but
    faults raise {!Fault} and successes return bare values, so the VM's
    threaded fast path pays no per-access allocation. *)

exception Fault of Failure.kind

val load_exn : t -> int64 -> ty:ty -> int64
val store_exn : t -> int64 -> ty:ty -> int64 -> unit

(** {1 Inspection} *)

(** Raw cell read for post-mortem inspection: no liveness or type
    checks; [None] only when the address names no allocated cell. *)
val peek : t -> obj:int -> index:int -> int64 option

val size_of : t -> int -> int option
val elt_ty_of : t -> int -> ty option
val peak_cells : t -> int
val object_count : t -> int

(** All objects as [(id, size, element type, freed)] rows in id order. *)
val objects : t -> (int * int * ty * bool) list

(** {1 Snapshot / revert} *)

val snapshot : t -> checkpoint

(** Restore the store to the snapshot: undo the journal (drop later
    allocations, un-free later frees), reinstall the saved page tables,
    restore the counters.  Raises [Invalid_argument] if the checkpoint's
    journal position is ahead of the store's (divergent history). *)
val revert : t -> checkpoint -> unit
