(** The resumable production engine: every piece of mutable run state of
    the lowered interpreter — threads, frames, scheduler cursor, the
    copy-on-write store, input cursors — behind one value, with
    {!snapshot} / {!revert} and mid-run pauses at quantum boundaries.

    [Interp.run] delegates here ({!run_program}); the incremental ER
    pipeline instead holds a long-lived [t], pauses it at checkpoint
    intervals, and reverts to the deepest checkpoint still valid for the
    next iteration's recording-point set.

    Recording points are applied as a {!plan} over the base program
    rather than by rewriting it with ptwrite instructions: a plan-marked
    instruction leaves a pending virtual ptwrite on its frame that fires
    (clock-free, like an instrumented [Ptwrite]) before the frame's next
    step.  The executed program is therefore constant across iterations
    and checkpoints never need remapping when the point set changes. *)

open Er_ir.Types

(** {1 Retirement metrics} *)

val m_i_alu : Er_metrics.counter
val m_i_load : Er_metrics.counter
val m_i_store : Er_metrics.counter
val m_i_mem : Er_metrics.counter
val m_i_call : Er_metrics.counter
val m_i_io : Er_metrics.counter
val m_i_sync : Er_metrics.counter
val m_i_branch : Er_metrics.counter
val m_i_other : Er_metrics.counter
val m_loads : Er_metrics.counter
val m_stores : Er_metrics.counter
val m_branches : Er_metrics.counter
val m_switches : Er_metrics.counter

(** The thirteen VM counters above, in a fixed order. *)
val vm_counters : Er_metrics.counter list

(** Hottest lowered blocks by retirement count ([er_vm_top_block_retired]). *)
val m_top_blocks : Er_metrics.top

(** Hottest adjacent opcode pairs, weighted by block retirements
    ([er_vm_top_opcode_pair]) — the mining input for the committed
    superinstruction set in {!Er_ir.Fuse.default_pairs}. *)
val m_top_pairs : Er_metrics.top

val count_instr : instr -> unit
val count_term : terminator -> unit

(** {1 Hooks and configuration} *)

type hooks = {
  on_branch : (bool -> unit) option;
  on_switch : (tid:int -> clock:int -> unit) option;
  on_ptwrite : (int64 -> unit) option;
  on_input : (stream:string -> value:int64 -> unit) option;
  on_store :
    (obj:int -> index:int -> old_value:int64 -> new_value:int64 -> unit) option;
  on_alloc : (int64 -> unit) option;
  on_def : (point -> reg:string -> value:int64 -> unit) option;
  on_enter : (func:string -> args:int64 list -> unit) option;
  on_ret : (func:string -> value:int64 option -> unit) option;
}

val no_hooks : hooks

(** Run two hook sets side by side (first argument first). *)
val compose_hooks : hooks -> hooks -> hooks

type config = {
  max_instrs : int;
  max_call_depth : int;
  quantum : int;
  quantum_jitter : int;
  sched_seed : int;
  hooks : hooks;
}

val default_config : config

type outcome = Finished of int64 option | Failed of Failure.t

type run_result = {
  outcome : outcome;
  instr_count : int;
  branch_count : int;
  outputs : int64 list;
  peak_mem_cells : int;
  final_mem : Memory.t;
}

type tstatus = Runnable | Blocked_lock of int64 | Waiting_join | Done_t

(** Outcome of stepping one thread by one instruction.  [Stepped_free]
    executes without advancing the clock: ptwrite is hardware tracing
    work, not program work, so instrumentation must not perturb the
    schedule. *)
type step =
  | Stepped
  | Stepped_free
  | Blocked
  | Thread_done
  | Program_done of int64 option

exception Crash of Failure.kind

(** {1 Shared evaluation helpers}

    Used by the reference engine too, so both engines provably share one
    semantics. *)

val norm : ty -> int64 -> int64
val smt_binop : binop -> Er_smt.Expr.binop
val eval_cmp : cmpop -> int -> int64 -> int64 -> bool
val chunk_quantum : config -> int -> int
val alloc_global_mem : Memory.t -> global -> int64

(** {1 Recording plans} *)

(** Marks instructions of the base program for virtual ptwrite recording
    — the plan-mode equivalent of [Instrument.apply].  Points that
    define no register, or that name unknown functions/blocks/indices,
    are skipped (exactly the points [Instrument.apply] would not
    instrument). *)
type plan

val empty_plan : Er_ir.Lower.t -> plan
val plan_of_points : Er_ir.Lower.t -> point list -> plan

(** Whether the program can ever create a second thread.  Spawn-free
    programs are scheduler-seed-independent, so their checkpoints stay
    valid across occurrences that differ only in [sched_seed]. *)
val has_spawn : Er_ir.Lower.t -> bool

(** {1 Construction and running} *)

type t

(** [create ?config ?plan prog inputs] readies a run from clock 0.
    Passing [~plan] (even an empty one) enables plan-driven recording
    and first-execution tracking; without it the engine behaves exactly
    like the classic lowered interpreter on the given program. *)
val create : ?config:config -> ?plan:plan -> Er_ir.Prog.t -> Inputs.t -> t

(** Replace the recording plan (between runs or after a revert).  Raises
    [Invalid_argument] if the state was created without a plan. *)
val set_plan : t -> plan -> unit

(** Run until the program finishes, or — with [~pause_at:c] — until the
    first quantum boundary at clock >= [c] ([None] = paused, call again
    to continue).  Pausing commutes with execution: an uninterrupted run
    and one paused and resumed any number of times perform the identical
    step sequence.  Once finished, returns the same result again. *)
val run : ?pause_at:int -> t -> run_result option

(** [run] with no pause: always completes. *)
val run_to_end : t -> run_result

(** Fresh state run straight to the end — the classic [Interp.run]. *)
val run_program : ?config:config -> Er_ir.Prog.t -> Inputs.t -> run_result

(** {1 Snapshot / revert} *)

type checkpoint

val clock_of_checkpoint : checkpoint -> int

(** Capture the full run state: registers and frames by copy, memory as
    a CoW page-table snapshot, input cursors, scheduler position.  Valid
    between quanta (before the first [run], or after a paused or
    finished one).  Any number of checkpoints may be live at once; each
    survives repeated reverts. *)
val snapshot : t -> checkpoint

(** Restore the state captured by {!snapshot}.  Process-registry metric
    counters are shared with everything else that ran since, so winding
    them back is opt-in ([~restore_metrics:true]); the ER pipeline
    leaves them monotone. *)
val revert : ?restore_metrics:bool -> t -> checkpoint -> unit

(** Swap in another workload's stream contents while keeping the current
    cursors: how a resumed prefix continues under the next occurrence's
    inputs.  Only sound when [Inputs.prefix_ok] held. *)
val swap_inputs : t -> Inputs.t -> unit

(** {1 Checkpoint-validity queries} *)

(** Clock at which the point's block first became current, [None] if it
    never did.  A checkpoint at clock [c] stays valid when a new
    recording point lands in a block iff [c] <= that block's first-exec
    clock (or the block never ran). *)
val first_exec_clock : t -> point -> int option

(** True when the program is statically spawn-free, making checkpoints
    reusable across runs that differ only in [sched_seed]. *)
val seed_independent : t -> bool

(** Would the run up to the checkpoint have consumed identical values
    under [fresh]'s streams?  ([Inputs.prefix_ok] against the state's
    current streams — the run the checkpoint was taken from.) *)
val inputs_prefix_ok : t -> checkpoint -> fresh:Inputs.t -> bool

(** {1 Inspection} *)

val clock : t -> int
val branches : t -> int
val result : t -> run_result option
val memory : t -> Memory.t
val inputs : t -> Inputs.t
val outputs_so_far : t -> int64 list
val lowered : t -> Er_ir.Lower.t

(** This state's adjacent opcode-pair retirement counts (every adjacent
    pair of a block, terminator included, weighted by the block's
    retirement count), hottest first; ties broken by key for
    deterministic output.  Counts accumulate only while metrics are
    enabled, like the block profile they derive from. *)
val opcode_pair_profile : t -> (string * int) list

type frame_view = {
  fv_func : string;
  fv_block : string;
  fv_ip : int;
  fv_regs : (string * int64) list;   (** defined registers, slot order *)
  fv_pending : string option;        (** register with a pending ptwrite *)
}

type thread_view = {
  tv_tid : int;
  tv_status : tstatus;
  tv_frames : frame_view list;       (** innermost first *)
}

val threads : t -> thread_view list
