(* The resumable production engine: all mutable run state of the lowered
   interpreter behind one value, with copy-on-write snapshots.

   This module owns everything [Interp.run] used to keep in closure-local
   refs — threads, frames, the scheduler cursor, the store, input
   cursors — as a first-class [t].  A run can [pause] at quantum
   boundaries, be [snapshot]ted in O(live pages), [revert]ed, and resumed
   under a *different* recording plan and different (prefix-compatible)
   inputs.  That is what makes ER iterations incremental: iteration N+1
   replays only the suffix past the deepest checkpoint that is still
   valid for the new recording-point set.

   Recording points are applied as a *plan* over the base program rather
   than by rewriting it with ptwrite instructions: when a marked
   instruction retires, its frame carries a pending virtual ptwrite that
   fires (as a clock-free step, exactly like an instrumented [Ptwrite])
   before that frame's next step.  Because the executed program is
   constant across iterations, checkpoints never need frame remapping
   when the point set changes.

   Hook invocations and their order, failure reports, outputs and metric
   totals match [Interp.run_reference] bit for bit on instrumented
   programs (the differential suite in test/test_lower.ml pins this
   down), and plan-driven runs match instrumented runs packet for packet
   (test/test_vm_state.ml). *)

open Er_ir.Types
module Sem = Er_smt.Expr     (* shared concrete semantics *)
module Ty = Er_smt.Ty
module M = Er_metrics
module L = Er_ir.Lower
module Fuse = Er_ir.Fuse

(* --- retirement metrics --------------------------------------------------- *)

(* Counters on the process registry; the step loop checks [M.enabled]
   once per step, so a metrics-off run pays one branch. *)
let instr_counter cls =
  M.counter
    ~labels:[ ("class", cls) ]
    ~help:"Instructions retired, by opcode class." "er_vm_instructions_total"

let m_i_alu = instr_counter "alu"
and m_i_load = instr_counter "load"
and m_i_store = instr_counter "store"
and m_i_mem = instr_counter "mem"
and m_i_call = instr_counter "call"
and m_i_io = instr_counter "io"
and m_i_sync = instr_counter "sync"
and m_i_branch = instr_counter "branch"
and m_i_other = instr_counter "other"

let m_loads = M.counter ~help:"Memory loads executed." "er_vm_loads_total"
let m_stores = M.counter ~help:"Memory stores executed." "er_vm_stores_total"

let m_branches =
  M.counter ~help:"Conditional branches executed." "er_vm_branches_total"

let m_switches =
  M.counter ~help:"Chunk-scheduler thread switches." "er_vm_switches_total"

(* Hot-spot attribution: the blocks retired most often, keyed by
   "func/label".  Per-run counts accumulate in the state (bumped at the
   block-retirement site under the same [M.enabled] branch as the class
   deltas) and are published into the bounded table at run end. *)
let m_top_blocks =
  M.top ~k:8
    ~help:"Hottest lowered blocks by retirement count (func/label)."
    "er_vm_top_block_retired"

(* Adjacent opcode pairs weighted by the retirement count of the block
   they appear in: the mining input for the committed superinstruction
   set (Er_ir.Fuse.default_pairs).  `bench vm --opcode-mix` reports the
   same counts per corpus program. *)
let m_top_pairs =
  M.top ~k:12
    ~help:"Hottest adjacent opcode pairs, weighted by block retirements."
    "er_vm_top_opcode_pair"

let vm_counters =
  [ m_i_alu; m_i_load; m_i_store; m_i_mem; m_i_call; m_i_io; m_i_sync;
    m_i_branch; m_i_other; m_loads; m_stores; m_branches; m_switches ]

let count_instr (i : instr) =
  match i with
  | Bin _ | Cmp _ | Select _ | Cast _ | Gep _ -> M.inc m_i_alu
  | Load _ ->
      M.inc m_i_load;
      M.inc m_loads
  | Store _ ->
      M.inc m_i_store;
      M.inc m_stores
  | Alloc _ | Free _ -> M.inc m_i_mem
  | Call _ -> M.inc m_i_call
  | Input _ | Output _ | Ptwrite _ -> M.inc m_i_io
  | Spawn _ | Join | Lock _ | Unlock _ -> M.inc m_i_sync
  | Assert _ -> M.inc m_i_other

let count_term (t : terminator) =
  match t with
  | Br _ -> M.inc m_i_branch
  | Cond_br _ ->
      M.inc m_i_branch;
      M.inc m_branches
  | Ret _ -> M.inc m_i_call
  | Abort _ | Unreachable -> M.inc m_i_other

(* --- hooks and configuration ---------------------------------------------- *)

type hooks = {
  on_branch : (bool -> unit) option;
  on_switch : (tid:int -> clock:int -> unit) option;
  on_ptwrite : (int64 -> unit) option;
  on_input : (stream:string -> value:int64 -> unit) option;
  on_store :
    (obj:int -> index:int -> old_value:int64 -> new_value:int64 -> unit) option;
  (* allocation sizes are always traced: the analysis engine needs the
     concrete heap layout to replay memory accesses *)
  on_alloc : (int64 -> unit) option;
  (* every register definition with its concrete value: ground truth for
     the REPT accuracy experiment *)
  on_def : (Er_ir.Types.point -> reg:string -> value:int64 -> unit) option;
  (* function boundaries: used by the invariant-inference case study *)
  on_enter : (func:string -> args:int64 list -> unit) option;
  on_ret : (func:string -> value:int64 option -> unit) option;
}

let no_hooks =
  { on_branch = None; on_switch = None; on_ptwrite = None; on_input = None;
    on_store = None; on_alloc = None; on_def = None; on_enter = None;
    on_ret = None }

(* Run two hook sets side by side ([a] first).  Lets the pipeline attach
   event-accounting observers next to the trace encoder hooks without
   either knowing about the other. *)
let compose_hooks (a : hooks) (b : hooks) : hooks =
  let fuse f g wrap =
    match f, g with
    | None, h | h, None -> h
    | Some f, Some g -> Some (wrap f g)
  in
  {
    on_branch = fuse a.on_branch b.on_branch (fun f g x -> f x; g x);
    on_switch =
      fuse a.on_switch b.on_switch (fun f g ~tid ~clock ->
          f ~tid ~clock;
          g ~tid ~clock);
    on_ptwrite = fuse a.on_ptwrite b.on_ptwrite (fun f g x -> f x; g x);
    on_input =
      fuse a.on_input b.on_input (fun f g ~stream ~value ->
          f ~stream ~value;
          g ~stream ~value);
    on_store =
      fuse a.on_store b.on_store (fun f g ~obj ~index ~old_value ~new_value ->
          f ~obj ~index ~old_value ~new_value;
          g ~obj ~index ~old_value ~new_value);
    on_alloc = fuse a.on_alloc b.on_alloc (fun f g x -> f x; g x);
    on_def =
      fuse a.on_def b.on_def (fun f g p ~reg ~value ->
          f p ~reg ~value;
          g p ~reg ~value);
    on_enter =
      fuse a.on_enter b.on_enter (fun f g ~func ~args ->
          f ~func ~args;
          g ~func ~args);
    on_ret =
      fuse a.on_ret b.on_ret (fun f g ~func ~value ->
          f ~func ~value;
          g ~func ~value);
  }

type config = {
  max_instrs : int;
  max_call_depth : int;
  quantum : int;
  quantum_jitter : int;
  sched_seed : int;
  hooks : hooks;
}

let default_config =
  {
    max_instrs = 50_000_000;
    max_call_depth = 512;
    quantum = 60;
    quantum_jitter = 24;
    sched_seed = 0;
    hooks = no_hooks;
  }

type outcome = Finished of int64 option | Failed of Failure.t

type run_result = {
  outcome : outcome;
  instr_count : int;
  branch_count : int;
  outputs : int64 list;
  peak_mem_cells : int;
  final_mem : Memory.t;    (* the core dump available post-mortem *)
}

type tstatus = Runnable | Blocked_lock of int64 | Waiting_join | Done_t

(* Outcome of stepping one thread by one instruction.  [Stepped_free]
   executes without advancing the clock: ptwrite is hardware tracing work,
   not program work, so instrumentation must not perturb the schedule. *)
type step = Stepped | Stepped_free | Blocked | Thread_done | Program_done of int64 option

exception Crash of Failure.kind

(* --- shared evaluation helpers -------------------------------------------- *)

let norm ty v = Er_smt.Ty.truncate (width_of_ty ty) v

let smt_binop : binop -> Sem.binop = function
  | Add -> Sem.Add | Sub -> Sem.Sub | Mul -> Sem.Mul | Udiv -> Sem.Udiv
  | Urem -> Sem.Urem | And -> Sem.And | Or -> Sem.Or | Xor -> Sem.Xor
  | Shl -> Sem.Shl | Lshr -> Sem.Lshr | Ashr -> Sem.Ashr

let eval_cmp op w a b =
  let base o = Sem.eval_cmp o w a b in
  match op with
  | Eq -> base Sem.Eq
  | Ne -> not (base Sem.Eq)
  | Ult -> base Sem.Ult
  | Ule -> base Sem.Ule
  | Ugt -> not (base Sem.Ule)
  | Uge -> not (base Sem.Ult)
  | Slt -> base Sem.Slt
  | Sle -> base Sem.Sle
  | Sgt -> not (base Sem.Sle)
  | Sge -> not (base Sem.Slt)

(* Deterministic per-(seed, chunk#) quantum jitter. *)
let chunk_quantum cfg turn =
  let h = Hashtbl.hash (cfg.sched_seed, turn) in
  let j = if cfg.quantum_jitter = 0 then 0 else (h mod (2 * cfg.quantum_jitter)) - cfg.quantum_jitter in
  max 8 (cfg.quantum + j)

(* Shared by both engines so global allocation order — hence object ids
   and packed pointers — is identical. *)
let alloc_global_mem mem (g : global) : int64 =
  match Memory.alloc mem ~elt_ty:g.g_elt_ty ~size:g.g_size ~heap:true with
  | None -> invalid_arg ("Interp: global too large: " ^ g.gname)
  | Some p ->
      (match g.g_init with
       | None -> ()
       | Some init ->
           Array.iteri
             (fun i v ->
                match
                  Memory.store mem
                    (Memory.ptr ~obj:(Memory.ptr_obj p) ~index:i)
                    ~ty:g.g_elt_ty (norm g.g_elt_ty v)
                with
                | Ok _ -> ()
                | Error _ -> assert false)
             init);
      p

(* --- recording plans ------------------------------------------------------- *)

(* A plan marks instructions of the *base* program for virtual ptwrite
   recording, the plan-mode equivalent of [Instrument.apply] inserting a
   [Ptwrite (Reg dst)] right after each recording point that defines a
   register.  [pl_marks.(fidx).(bidx)] is either [||] (block unmarked) or
   a per-instruction-index array of the destination slot to trace, -1 for
   unmarked indices. *)
type plan = { pl_marks : int array array array }

(* The defined slot of a lowered instruction — mirrors
   [Er_ir.Types.def_of_instr] on the source instruction, so a plan marks
   exactly the points [Instrument.apply] would instrument. *)
let ldef_slot (i : L.linstr) : int option =
  match i with
  | L.LBin { dst; _ } | L.LCmp { dst; _ } | L.LSelect { dst; _ }
  | L.LCast { dst; _ } | L.LLoad { dst; _ } | L.LAlloc { dst; _ }
  | L.LGep { dst; _ } | L.LInput { dst; _ } -> Some dst
  | L.LCall { dst; _ } -> dst
  | L.LStore _ | L.LFree _ | L.LOutput _ | L.LPtwrite _ | L.LAssert _
  | L.LSpawn _ | L.LJoin | L.LLock _ | L.LUnlock _ -> None

let empty_plan (low : L.t) : plan =
  { pl_marks =
      Array.map
        (fun lf -> Array.make (Array.length lf.L.lf_blocks) [||])
        low.L.l_funcs }

let plan_of_points (low : L.t) (points : point list) : plan =
  let plan = empty_plan low in
  List.iter
    (fun (p : point) ->
       match Hashtbl.find_opt low.L.l_func_index p.p_func with
       | None -> ()
       | Some fidx ->
           let lf = low.L.l_funcs.(fidx) in
           Array.iter
             (fun (b : L.lblock) ->
                if String.equal b.L.lb_label p.p_block then begin
                  let n = Array.length b.L.lb_instrs in
                  if p.p_index >= 0 && p.p_index < n then
                    match ldef_slot b.L.lb_instrs.(p.p_index) with
                    | None -> ()    (* point defines nothing: not recordable *)
                    | Some slot ->
                        let row =
                          match plan.pl_marks.(fidx).(b.L.lb_index) with
                          | [||] ->
                              let r = Array.make n (-1) in
                              plan.pl_marks.(fidx).(b.L.lb_index) <- r;
                              r
                          | r -> r
                        in
                        row.(p.p_index) <- slot
                end)
             lf.L.lf_blocks)
    points;
  plan

(* Whether the program can ever create a second thread.  A statically
   spawn-free program is scheduler-seed-independent: quantum boundaries
   are unobservable without thread switches, so a checkpoint taken under
   one seed is valid for a resume under any other. *)
let has_spawn (low : L.t) : bool =
  Array.exists
    (fun (lf : L.lfunc) ->
       Array.exists
         (fun (b : L.lblock) ->
            Array.exists
              (function L.LSpawn _ -> true | _ -> false)
              b.L.lb_instrs)
         lf.L.lf_blocks)
    low.L.l_funcs

(* --- execution state ------------------------------------------------------- *)

type lframe = {
  lfr_func : L.lfunc;
  mutable lfr_block : L.lblock;
  mutable lfr_ip : int;
  (* the int64 register file as raw bytes, slot [s] at byte offset
     [8*s]: the [%caml_bytes_get64u]/[set64u] primitives compile to
     single unboxed moves, so a register access is one load/store with
     no box allocation, no caml_modify barrier and no C call — where an
     [int64 array] pays a box per write and [Int64.bits_of_float] on a
     float array pays a C call per access.  Access only through
     [rget]/[rset]. *)
  lfr_regs : Bytes.t;
  lfr_defined : Bytes.t;   (* per-slot definedness; length 0 when untracked *)
  lfr_dst : int option;    (* caller slot for the return value *)
  mutable lfr_stack_objs : int list;
  (* slot whose value a virtual ptwrite must trace before this frame's
     next step; set when a plan-marked instruction retires *)
  mutable lfr_pending : int option;
}

and lthread = {
  ltid : int;
  mutable lstack : lframe list;    (* innermost first *)
  mutable ldepth : int;            (* cached [List.length lstack] *)
  mutable lstatus : tstatus;
}

(* The threaded code of one basic block: pre-compiled execution units
   the dispatcher runs one closure call at a time, indexed by
   instruction ip with index [n] (the instruction count) standing for
   the terminator.  [xb_one] holds singleton units; [xb_big] the fused
   unit starting at each ip where Fuse committed a pair, and the
   singleton elsewhere (pair tails keep their singleton entry so a
   resume can land on any instruction boundary).  The [_h] variants
   consult the configured hooks; the plain variants assume [lno_hooks]
   and pay zero hook branching.  Every unit updates [lfr_ip] and
   [lclock] itself, per retired sub-instruction, so a crash mid-unit
   reports the exact instruction and the exact clock. *)
and xunit = t -> lthread -> lframe -> step

and xblock = {
  xb_cost : int array;        (* clock ticks of xb_big.(ip): 0..3 *)
  xb_one : xunit array;
  xb_big : xunit array;
  xb_one_h : xunit array;
  xb_big_h : xunit array;
  (* true where the unit may change the current frame or block
     (terminator, call, or a fused unit ending in the terminator):
     straight-line units skip the post-step transfer checks *)
  xb_ctl : bool array;
  (* whole-block chain: every fused/singleton unit of the block composed
     into one closure, terminator included — the no-hooks dispatcher
     runs it when the block starts at ip 0 and its full cost fits the
     remaining quantum ([xb_wcost] <= budget left), so a hot self-loop
     costs one indirect call per iteration.  [xb_wcost] is [max_int]
     when the block is ineligible (any non-fusable instruction), which
     makes eligibility and budget one integer compare. *)
  xb_whole : xunit;
  xb_wcost : int;
  xb_pairs : string list;     (* adjacent pair keys, for the profiler *)
}

and t = {
  llow : L.t;
  lmem : Memory.t;
  linputs : Inputs.t;
  lcfg : config;
  lglobal_ptrs : int64 array;      (* indexed like [llow.l_globals] *)
  lmutexes : (int64, int) Hashtbl.t;
  mutable lthreads : lthread list;
  mutable lnext_tid : int;
  mutable lclock : int;
  mutable lbranches : int;
  mutable loutputs : int64 list;
  (* recording plan; [lplan_on] is false for plain (instrumented-program)
     runs, which then pay one dead branch per step *)
  mutable lplan_on : bool;
  mutable lmarks : int array array array;
  (* program-wide block uid = lblock_base.(lf_idx) + lb_index *)
  lblock_base : int array;
  (* retirements per block uid (metrics-gated; monotone across reverts
     like the process counters) *)
  lblk_counts : int array;
  (* clock at which each block first became the current block, -1 if
     never; length 0 when not tracked (no plan).  Bounds the checkpoints
     that stay valid when a *new* point lands in that block. *)
  mutable lfexec : int array;
  (* re-enterable scheduler state *)
  mutable lresult : run_result option;
  mutable lturn : int;
  mutable lcur : lthread;
  (* pre-compiled threaded code, indexed [lf_idx].(lb_index); physically
     shared between states of the same lowered program via a bounded
     compile cache *)
  lxcode : xblock array array;
  (* no hook is configured: dispatch may use the hook-free closure
     arrays, decided once at [create] instead of once per instruction *)
  lno_hooks : bool;
}

(* Slot indices come from the lowering's own numbering, always in
   bounds, so the reads and writes are unchecked. *)
(* Unchecked native-endian 64-bit bytes access: compiler primitives (the
   same ones behind [Bytes.get_int64_ne]), compiled to a single unboxed
   move.  Slot indices are always in bounds by lowering invariant
   ([lf_nslots] sizes the file). *)
external b64_get : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
external b64_set : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"

let[@inline] rget (fr : lframe) s = b64_get fr.lfr_regs (s lsl 3)
let[@inline] rset (fr : lframe) s v = b64_set fr.lfr_regs (s lsl 3) v

let lpoint_of (fr : lframe) =
  { p_func = fr.lfr_func.L.lf_name; p_block = fr.lfr_block.L.lb_label;
    p_index = fr.lfr_ip }

let lstack_of (th : lthread) = List.map lpoint_of th.lstack

let ev_operand st (fr : lframe) (o : L.operand) : int64 =
  match o with
  | L.Oslot s -> rget fr s
  | L.Oimm { v; _ } -> v
  | L.Onull -> Memory.null
  | L.Oglobal i -> st.lglobal_ptrs.(i)
  | L.Ocheck { slot; reg } ->
      if Bytes.get fr.lfr_defined slot = '\001' then rget fr slot
      else
        invalid_arg
          (Printf.sprintf "Interp: read of undefined register %s in %s" reg
             fr.lfr_func.L.lf_name)

(* Slot write without the on_def hook: return values and parameter
   binding, mirroring the plain [set_reg] of the reference engine. *)
let lset_slot (fr : lframe) slot v =
  rset fr slot v;
  if Bytes.length fr.lfr_defined <> 0 then Bytes.set fr.lfr_defined slot '\001'

let empty_defined = Bytes.create 0

let make_lframe (lf : L.lfunc) (args : int64 list) ~dst =
  let regs = Bytes.make (lf.L.lf_nslots lsl 3) '\000' in
  let defined =
    if lf.L.lf_tracked then Bytes.make lf.L.lf_nslots '\000' else empty_defined
  in
  let fr =
    { lfr_func = lf; lfr_block = lf.L.lf_blocks.(0); lfr_ip = 0;
      lfr_regs = regs; lfr_defined = defined; lfr_dst = dst;
      lfr_stack_objs = []; lfr_pending = None }
  in
  if List.length args <> Array.length lf.L.lf_params then
    invalid_arg (Printf.sprintf "Interp: arity mismatch calling %s" lf.L.lf_name);
  List.iteri
    (fun i v ->
       let slot, ty = lf.L.lf_params.(i) in
       lset_slot fr slot (norm ty v))
    args;
  fr

(* Record that [bidx] of [lf] becomes the current block at the *next*
   clock tick (the jump/call/spawn that installs it is about to retire). *)
let[@inline] record_entry st (lf : L.lfunc) bidx =
  if Array.length st.lfexec <> 0 then begin
    let uid = Array.unsafe_get st.lblock_base lf.L.lf_idx + bidx in
    if Array.unsafe_get st.lfexec uid < 0 then
      Array.unsafe_set st.lfexec uid (st.lclock + 1)
  end

(* One batched add per counter class for a fully retired block
   (instructions + terminator). *)
let flush_delta (d : L.delta) =
  if d.L.d_alu > 0 then M.add m_i_alu d.L.d_alu;
  if d.L.d_load > 0 then begin
    M.add m_i_load d.L.d_load;
    M.add m_loads d.L.d_load
  end;
  if d.L.d_store > 0 then begin
    M.add m_i_store d.L.d_store;
    M.add m_stores d.L.d_store
  end;
  if d.L.d_mem > 0 then M.add m_i_mem d.L.d_mem;
  if d.L.d_call > 0 then M.add m_i_call d.L.d_call;
  if d.L.d_io > 0 then M.add m_i_io d.L.d_io;
  if d.L.d_sync > 0 then M.add m_i_sync d.L.d_sync;
  if d.L.d_branch > 0 then M.add m_i_branch d.L.d_branch;
  if d.L.d_other > 0 then M.add m_i_other d.L.d_other;
  if d.L.d_cond > 0 then M.add m_branches d.L.d_cond

(* At run end, account the partially retired block of every live frame
   so totals equal the reference engine's per-instruction counts.  For
   the frame that raised [Crash] at an instruction, the crashing
   instruction itself was "counted before execution" by the reference
   engine, so include it; a crash at a terminator was already covered by
   the pre-terminator [flush_delta].  A pending-but-never-attempted
   instruction (hang check, blocked sync op) is excluded, again like the
   reference, whose per-attempt counts for blocked ops are instead added
   at each [Blocked] step. *)
let flush_partial st ~(crashed : lthread option) =
  if M.enabled M.default then
    List.iter
      (fun th ->
         List.iteri
           (fun fi fr ->
              let src = fr.lfr_block.L.lb_src in
              let len = Array.length src.instrs in
              let crashed_top =
                (match crashed with Some t -> t == th | None -> false)
                && fi = 0
              in
              let stop =
                if crashed_top then
                  if fr.lfr_ip < len then fr.lfr_ip + 1 else 0
                else min fr.lfr_ip len
              in
              for k = 0 to stop - 1 do
                count_instr src.instrs.(k)
              done)
           th.lstack)
      st.lthreads

let ldo_return st (th : lthread) v : step =
  match th.lstack with
  | [] -> assert false
  | fr :: rest ->
      (match st.lcfg.hooks.on_ret with
       | Some h -> h ~func:fr.lfr_func.L.lf_name ~value:v
       | None -> ());
      List.iter (Memory.release_stack st.lmem) fr.lfr_stack_objs;
      th.lstack <- rest;
      th.ldepth <- th.ldepth - 1;
      (match rest with
       | [] ->
           th.lstatus <- Done_t;
           if th.ltid = 0 then Program_done v else Thread_done
       | caller :: _ ->
           (match fr.lfr_dst, v with
            | Some dst, Some value ->
                lset_slot caller dst
                  (Er_smt.Ty.truncate fr.lfr_func.L.lf_ret_w value)
            | Some dst, None -> lset_slot caller dst 0L
            | None, _ -> ());
           Stepped)

(* Slot write with the on_def hook, the lowered [set_reg]; a top-level
   function so the per-instruction step allocates no closures. *)
let[@inline] lset_reg st (fr : lframe) slot v =
  (match st.lcfg.hooks.on_def with
   | Some h ->
       h (lpoint_of fr) ~reg:fr.lfr_func.L.lf_reg_of_slot.(slot) ~value:v
   | None -> ());
  lset_slot fr slot v

(* Evaluate a call/spawn argument array without the intermediate array
   of [Array.map] — one list allocation, same element order. *)
let ev_args st (fr : lframe) (args : L.operand array) =
  Array.fold_right (fun o acc -> ev_operand st fr o :: acc) args []

let lstep_instr st (th : lthread) (fr : lframe) (i : L.linstr) : step =
  match i with
  | L.LBin { dst; op; w; a; b; _ } ->
      let va = ev_operand st fr a and vb = ev_operand st fr b in
      (match op with
       | Udiv | Urem when Int64.equal (Er_smt.Ty.truncate w vb) 0L ->
           raise (Crash Failure.Div_by_zero)
       | _ -> ());
      lset_reg st fr dst
        (Sem.eval_binop (smt_binop op) w (Er_smt.Ty.truncate w va)
           (Er_smt.Ty.truncate w vb));
      fr.lfr_ip <- fr.lfr_ip + 1;
      Stepped
  | L.LCmp { dst; op; w; a; b; _ } ->
      let r =
        eval_cmp op w (Er_smt.Ty.truncate w (ev_operand st fr a)) (Er_smt.Ty.truncate w (ev_operand st fr b))
      in
      lset_reg st fr dst (if r then 1L else 0L);
      fr.lfr_ip <- fr.lfr_ip + 1;
      Stepped
  | L.LSelect { dst; w; cond; if_true; if_false; _ } ->
      let c = ev_operand st fr cond in
      lset_reg st fr dst
        (Er_smt.Ty.truncate w
           (if Int64.equal (Er_smt.Ty.truncate 1 c) 1L then ev_operand st fr if_true
            else ev_operand st fr if_false));
      fr.lfr_ip <- fr.lfr_ip + 1;
      Stepped
  | L.LCast { dst; kind; to_w; from_w; v; _ } ->
      let value = Er_smt.Ty.truncate from_w (ev_operand st fr v) in
      let out =
        match kind with
        | Zext | Ptrtoint | Inttoptr | Trunc -> Er_smt.Ty.truncate to_w value
        | Sext ->
            Er_smt.Ty.truncate to_w (Er_smt.Ty.sign_extend from_w value)
      in
      lset_reg st fr dst out;
      fr.lfr_ip <- fr.lfr_ip + 1;
      Stepped
  | L.LLoad { dst; ty; addr } ->
      (match Memory.load st.lmem (ev_operand st fr addr) ~ty with
       | Error k -> raise (Crash k)
       | Ok v ->
           lset_reg st fr dst v;
           fr.lfr_ip <- fr.lfr_ip + 1;
           Stepped)
  | L.LStore { ty; w; v; addr } ->
      let value = Er_smt.Ty.truncate w (ev_operand st fr v) in
      (match Memory.store st.lmem (ev_operand st fr addr) ~ty value with
       | Error k -> raise (Crash k)
       | Ok (obj, index, old_value) ->
           (match st.lcfg.hooks.on_store with
            | Some f -> f ~obj ~index ~old_value ~new_value:value
            | None -> ());
           fr.lfr_ip <- fr.lfr_ip + 1;
           Stepped)
  | L.LAlloc { dst; elt_ty; count; heap } ->
      let n = Int64.to_int (ev_operand st fr count) in
      (match st.lcfg.hooks.on_alloc with
       | Some f -> f (Int64.of_int n)
       | None -> ());
      (match Memory.alloc st.lmem ~elt_ty ~size:n ~heap with
       | None -> raise (Crash (Failure.Access_type_error "allocation too large"))
       | Some p ->
           if not heap then
             fr.lfr_stack_objs <- Memory.ptr_obj p :: fr.lfr_stack_objs;
           lset_reg st fr dst p;
           fr.lfr_ip <- fr.lfr_ip + 1;
           Stepped)
  | L.LFree { addr } ->
      (match Memory.free st.lmem (ev_operand st fr addr) with
       | Error k -> raise (Crash k)
       | Ok () ->
           fr.lfr_ip <- fr.lfr_ip + 1;
           Stepped)
  | L.LGep { dst; base; idx } ->
      let p = ev_operand st fr base in
      let i = Int64.to_int (Er_smt.Ty.sign_extend 64 (ev_operand st fr idx)) in
      lset_reg st fr dst
        (Memory.ptr ~obj:(Memory.ptr_obj p) ~index:(Memory.ptr_index p + i));
      fr.lfr_ip <- fr.lfr_ip + 1;
      Stepped
  | L.LCall { dst; fidx; args } ->
      if th.ldepth >= st.lcfg.max_call_depth then
        raise (Crash Failure.Stack_overflow);
      let lf = st.llow.L.l_funcs.(fidx) in
      let vargs = ev_args st fr args in
      (match st.lcfg.hooks.on_enter with
       | Some h -> h ~func:lf.L.lf_name ~args:vargs
       | None -> ());
      fr.lfr_ip <- fr.lfr_ip + 1;    (* return to the next instruction *)
      record_entry st lf 0;
      th.lstack <- make_lframe lf vargs ~dst :: th.lstack;
      th.ldepth <- th.ldepth + 1;
      Stepped
  | L.LInput { dst; ty; stream } ->
      (match Inputs.read st.linputs stream with
       | None -> raise (Crash (Failure.Input_exhausted stream))
       | Some v ->
           let v = norm ty v in
           (match st.lcfg.hooks.on_input with
            | Some f -> f ~stream ~value:v
            | None -> ());
           lset_reg st fr dst v;
           fr.lfr_ip <- fr.lfr_ip + 1;
           Stepped)
  | L.LOutput { v } ->
      st.loutputs <- ev_operand st fr v :: st.loutputs;
      fr.lfr_ip <- fr.lfr_ip + 1;
      Stepped
  | L.LPtwrite { v } ->
      (match st.lcfg.hooks.on_ptwrite with
       | Some f -> f (ev_operand st fr v)
       | None -> ());
      fr.lfr_ip <- fr.lfr_ip + 1;
      Stepped_free
  | L.LAssert { cond; msg } ->
      if Int64.equal (Er_smt.Ty.truncate 1 (ev_operand st fr cond)) 0L then
        raise (Crash (Failure.Assert_failed msg));
      fr.lfr_ip <- fr.lfr_ip + 1;
      Stepped
  | L.LSpawn { fidx; args } ->
      let lf = st.llow.L.l_funcs.(fidx) in
      let vargs = ev_args st fr args in
      record_entry st lf 0;
      let t =
        { ltid = st.lnext_tid; lstack = [ make_lframe lf vargs ~dst:None ];
          ldepth = 1; lstatus = Runnable }
      in
      st.lnext_tid <- st.lnext_tid + 1;
      st.lthreads <- st.lthreads @ [ t ];
      fr.lfr_ip <- fr.lfr_ip + 1;
      Stepped
  | L.LJoin ->
      let others_done =
        List.for_all
          (fun t -> t.ltid = th.ltid || t.lstatus = Done_t)
          st.lthreads
      in
      if others_done then begin
        fr.lfr_ip <- fr.lfr_ip + 1;
        Stepped
      end
      else begin
        th.lstatus <- Waiting_join;
        Blocked
      end
  | L.LLock { addr } ->
      let a = ev_operand st fr addr in
      (match Hashtbl.find_opt st.lmutexes a with
       | Some owner when owner = th.ltid ->
           raise (Crash (Failure.Lock_error "recursive lock"))
       | Some _ ->
           th.lstatus <- Blocked_lock a;
           Blocked
       | None ->
           Hashtbl.replace st.lmutexes a th.ltid;
           fr.lfr_ip <- fr.lfr_ip + 1;
           Stepped)
  | L.LUnlock { addr } ->
      let a = ev_operand st fr addr in
      (match Hashtbl.find_opt st.lmutexes a with
       | Some owner when owner = th.ltid ->
           Hashtbl.remove st.lmutexes a;
           List.iter
             (fun t ->
                match t.lstatus with
                | Blocked_lock a' when Int64.equal a a' -> t.lstatus <- Runnable
                | Blocked_lock _ | Runnable | Waiting_join | Done_t -> ())
             st.lthreads;
           fr.lfr_ip <- fr.lfr_ip + 1;
           Stepped
       | Some _ | None ->
           raise (Crash (Failure.Lock_error "unlock of mutex not held")))

let lstep_term st (th : lthread) (fr : lframe) (t : L.lterm) : step =
  match t with
  | L.LBr i ->
      record_entry st fr.lfr_func i;
      fr.lfr_block <- fr.lfr_func.L.lf_blocks.(i);
      fr.lfr_ip <- 0;
      Stepped
  | L.LCond_br { cond; if_true; if_false } ->
      let c = Int64.equal (Er_smt.Ty.truncate 1 (ev_operand st fr cond)) 1L in
      st.lbranches <- st.lbranches + 1;
      (match st.lcfg.hooks.on_branch with Some f -> f c | None -> ());
      let i = if c then if_true else if_false in
      record_entry st fr.lfr_func i;
      fr.lfr_block <- fr.lfr_func.L.lf_blocks.(i);
      fr.lfr_ip <- 0;
      Stepped
  | L.LRet v -> ldo_return st th (Option.map (ev_operand st fr) v)
  | L.LAbort msg -> raise (Crash (Failure.Abort_called msg))
  | L.LUnreachable -> raise (Crash Failure.Unreachable_reached)

let lstep_thread st (th : lthread) : step =
  match th.lstack with
  | [] ->
      th.lstatus <- Done_t;
      Thread_done
  | fr :: _ ->
      let b = fr.lfr_block in
      if fr.lfr_ip < Array.length b.L.lb_instrs then begin
        let ip = fr.lfr_ip in
        let i = Array.unsafe_get b.L.lb_instrs ip in
        (* the plan mark of this instruction, if any: its defined slot
           becomes a pending virtual ptwrite once the step retires *)
        let mark =
          if st.lplan_on then begin
            let row = st.lmarks.(fr.lfr_func.L.lf_idx).(b.L.lb_index) in
            if Array.length row = 0 then -1 else Array.unsafe_get row ip
          end
          else -1
        in
        match lstep_instr st th fr i with
        | Blocked ->
            (* the reference engine counts a blocked op once per attempt;
               the block delta will cover only the successful retirement *)
            if M.enabled M.default then
              count_instr b.L.lb_src.instrs.(fr.lfr_ip);
            Blocked
        | Stepped as s ->
            if mark >= 0 then fr.lfr_pending <- Some mark;
            s
        | s -> s
      end
      else begin
        (* whole block retires with this terminator: one batched add per
           class, before execution, like the reference's count-then-step *)
        if M.enabled M.default then begin
          flush_delta b.L.lb_delta;
          let uid =
            st.lblock_base.(fr.lfr_func.L.lf_idx) + b.L.lb_index
          in
          st.lblk_counts.(uid) <- st.lblk_counts.(uid) + 1
        end;
        lstep_term st th fr b.L.lb_term
      end

(* Fire the pending virtual ptwrite of [th]'s top frame, if any: exactly
   what an instrumented [Ptwrite (Reg dst)] placed after the marked
   instruction would do, as a clock-free step before the frame's next
   real one (so across calls it fires after the return value binds, and
   across quantum expiry after the thread is rescheduled — the same
   positions the inserted instruction would occupy). *)
let fire_pending st (th : lthread) : bool =
  match th.lstack with
  | ({ lfr_pending = Some slot; _ } as fr) :: _ ->
      fr.lfr_pending <- None;
      (match st.lcfg.hooks.on_ptwrite with
       | Some f -> f (rget fr slot)
       | None -> ());
      if M.enabled M.default then M.inc m_i_io;
      true
  | _ -> false

(* --- threaded code: the block-fused closure compiler ----------------------- *)

(* Each basic block compiles once (per lowered program, not per state)
   into arrays of execution units — closures of type [xunit] — indexed
   by ip, with index [n] standing for the terminator.  A unit performs
   exactly the state transition the [lstep_instr]/[lstep_term] +
   run-loop combination would, *including* the ip and clock updates:
   operand getters, width masks, immediate truncations, block targets
   and error strings are all resolved at compile time, so the fast path
   executes no per-step decode, no hook option checks and no width
   branches.  Fused units (committed opcode pairs from [Fuse.analyze])
   retire two sub-instructions per dispatch; every sub-instruction still
   updates ip and the clock itself, so a crash, a blocked sync op or a
   metric flush in the tail observes exactly the state a singleton
   schedule would have produced.

   The symex engine deliberately keeps dispatching the unfused lowered
   form: its per-instruction cost is dominated by term construction and
   path bookkeeping, fusion would buy nothing, and single-stepping is
   load-bearing for path splitting.  Only this concrete engine threads. *)

(* Compile-time operand getter.  [Oglobal] stays an [st] access because
   compiled code is shared across states; everything else resolves to a
   constant or a slot read.  Slot indices come from the lowering's own
   numbering, always in bounds, so the reads are unchecked. *)
let xget (lf : L.lfunc) (o : L.operand) : t -> lframe -> int64 =
  match o with
  | L.Oslot s -> fun _ fr -> rget fr s
  | L.Oimm { v; _ } -> fun _ _ -> v
  | L.Onull -> fun _ _ -> Memory.null
  | L.Oglobal i -> fun st _ -> Array.unsafe_get st.lglobal_ptrs i
  | L.Ocheck { slot; reg } ->
      let msg =
        Printf.sprintf "Interp: read of undefined register %s in %s" reg
          lf.L.lf_name
      in
      fun _ fr ->
        if Bytes.unsafe_get fr.lfr_defined slot = '\001' then rget fr slot
        else invalid_arg msg

(* Slot write specialised on whether the function tracks definedness,
   so untracked (fully-defined) functions skip the byte-set and both
   skip the per-write length test of [lset_slot]. *)
let xsetter (lf : L.lfunc) : lframe -> int -> int64 -> unit =
  if lf.L.lf_tracked then fun fr dst v ->
    rset fr dst v;
    Bytes.unsafe_set fr.lfr_defined dst '\001'
  else fun fr dst v -> rset fr dst v

(* Definedness mark of the specialised arms: [tracked] is a captured
   immediate, so untracked functions pay one predicted branch. *)
let[@inline] xmark tracked (fr : lframe) dst =
  if tracked then Bytes.unsafe_set fr.lfr_defined dst '\001'

(* Definedness pre-guards.  An [Ocheck] operand compiled through a
   getter closure boxes its int64 return on every read — the dominant
   allocation of tracked functions on the fast path.  Instead, the
   checks of one instruction run up front as a unit-returning guard
   (nothing boxes), and the specialised arms below then treat the
   operands as plain slot reads.  Guards run in the reference's operand
   evaluation order for that opcode, so a multi-undefined instruction
   reports the same register. *)
let xcheck1 (lf : L.lfunc) (o : L.operand) : (lframe -> unit) option =
  match o with
  | L.Ocheck { slot; reg } ->
      let msg =
        Printf.sprintf "Interp: read of undefined register %s in %s" reg
          lf.L.lf_name
      in
      Some
        (fun fr ->
          if Bytes.unsafe_get fr.lfr_defined slot <> '\001' then
            invalid_arg msg)
  | _ -> None

let xguard (lf : L.lfunc) (os : L.operand list) : (lframe -> unit) option =
  match List.filter_map (xcheck1 lf) os with
  | [] -> None
  | [ g ] -> Some g
  | [ g1; g2 ] ->
      Some
        (fun fr ->
          g1 fr;
          g2 fr)
  | gs -> Some (fun fr -> List.iter (fun g -> g fr) gs)

let strip_check : L.operand -> L.operand = function
  | L.Ocheck { slot; _ } -> L.Oslot slot
  | o -> o

let xguarded (g : (lframe -> unit) option) (core : xunit) : xunit =
  match g with
  | None -> core
  | Some g ->
      fun st th fr ->
        g fr;
        core st th fr

(* Getter followed by truncation to [w], with the mask precomputed (and
   immediates truncated outright at compile time). *)
let xget_w (lf : L.lfunc) w (o : L.operand) : t -> lframe -> int64 =
  match o with
  | L.Oimm { v; _ } ->
      let tv = Ty.truncate w v in
      fun _ _ -> tv
  | _ ->
      let g = xget lf o in
      let m = Ty.mask w in
      fun st fr -> Int64.logand (g st fr) m

(* Binop on pre-truncated inputs, specialised per (op, w).  Division by
   zero is the caller's crash check, so Udiv/Urem here assume b <> 0.
   The shifts keep their subtle width semantics in one place by
   delegating to [Sem.eval_binop]. *)
let xbinop (op : binop) w : int64 -> int64 -> int64 =
  let m = Ty.mask w in
  match op with
  | Add -> fun a b -> Int64.logand (Int64.add a b) m
  | Sub -> fun a b -> Int64.logand (Int64.sub a b) m
  | Mul -> fun a b -> Int64.logand (Int64.mul a b) m
  | And -> Int64.logand
  | Or -> Int64.logor
  | Xor -> Int64.logxor
  | Udiv -> fun a b -> Int64.logand (Int64.unsigned_div a b) m
  | Urem -> fun a b -> Int64.logand (Int64.unsigned_rem a b) m
  | Shl | Lshr | Ashr ->
      let sop = smt_binop op in
      fun a b -> Sem.eval_binop sop w a b

let xsext w = if w = 64 then fun v -> v else fun v -> Ty.sign_extend w v

(* Comparison on pre-truncated inputs: [eval_cmp] with the negations
   folded and the sign extension hoisted. *)
let xcmpop (op : cmpop) w : int64 -> int64 -> bool =
  let sx = xsext w in
  match op with
  | Eq -> Int64.equal
  | Ne -> fun a b -> not (Int64.equal a b)
  | Ult -> fun a b -> Int64.unsigned_compare a b < 0
  | Ule -> fun a b -> Int64.unsigned_compare a b <= 0
  | Ugt -> fun a b -> Int64.unsigned_compare a b > 0
  | Uge -> fun a b -> Int64.unsigned_compare a b >= 0
  | Slt -> fun a b -> Int64.compare (sx a) (sx b) < 0
  | Sle -> fun a b -> Int64.compare (sx a) (sx b) <= 0
  | Sgt -> fun a b -> Int64.compare (sx a) (sx b) > 0
  | Sge -> fun a b -> Int64.compare (sx a) (sx b) >= 0

(* Compare condition with the operand reads inlined, one closure body
   per (operand shape, op): without flambda a getter closure boxes its
   int64 return, so the getter chain costs two allocations per compare.
   Here slot reads, masks, sign extensions and the comparison live in a
   single body, where ocamlopt keeps every intermediate unboxed.  The
   comparisons compile to unboxed [Pbintcomp]; unsigned order uses the
   [sub min_int] bias (the definition of [Int64.unsigned_compare]) and
   signed order sign-extends by shift pairs, both on raw reads — the
   input masks fold into the shifts/bias algebraically.  Operand shapes
   outside slot/imm (global, null, undefined-checked) fall back to the
   getter chain. *)
let xcond (lf : L.lfunc) ~(op : cmpop) ~w (a : L.operand) (b : L.operand) :
    t -> lframe -> bool =
  let m = Ty.mask w in
  let sh = 64 - w in
  let mn = Int64.min_int in
  match (a, b) with
  | L.Oslot sa, L.Oslot sb -> (
      match op with
      | Eq -> fun _ fr -> Int64.logand (rget fr sa) m = Int64.logand (rget fr sb) m
      | Ne -> fun _ fr -> Int64.logand (rget fr sa) m <> Int64.logand (rget fr sb) m
      | Ult ->
          fun _ fr ->
            Int64.sub (Int64.logand (rget fr sa) m) mn
            < Int64.sub (Int64.logand (rget fr sb) m) mn
      | Ule ->
          fun _ fr ->
            Int64.sub (Int64.logand (rget fr sa) m) mn
            <= Int64.sub (Int64.logand (rget fr sb) m) mn
      | Ugt ->
          fun _ fr ->
            Int64.sub (Int64.logand (rget fr sa) m) mn
            > Int64.sub (Int64.logand (rget fr sb) m) mn
      | Uge ->
          fun _ fr ->
            Int64.sub (Int64.logand (rget fr sa) m) mn
            >= Int64.sub (Int64.logand (rget fr sb) m) mn
      | Slt ->
          fun _ fr ->
            Int64.shift_right (Int64.shift_left (rget fr sa) sh) sh
            < Int64.shift_right (Int64.shift_left (rget fr sb) sh) sh
      | Sle ->
          fun _ fr ->
            Int64.shift_right (Int64.shift_left (rget fr sa) sh) sh
            <= Int64.shift_right (Int64.shift_left (rget fr sb) sh) sh
      | Sgt ->
          fun _ fr ->
            Int64.shift_right (Int64.shift_left (rget fr sa) sh) sh
            > Int64.shift_right (Int64.shift_left (rget fr sb) sh) sh
      | Sge ->
          fun _ fr ->
            Int64.shift_right (Int64.shift_left (rget fr sa) sh) sh
            >= Int64.shift_right (Int64.shift_left (rget fr sb) sh) sh)
  | L.Oslot sa, L.Oimm { v; _ } -> (
      let k = Ty.truncate w v in
      let uk = Int64.sub k mn in
      let sk = Int64.shift_right (Int64.shift_left k sh) sh in
      match op with
      | Eq -> fun _ fr -> Int64.logand (rget fr sa) m = k
      | Ne -> fun _ fr -> Int64.logand (rget fr sa) m <> k
      | Ult -> fun _ fr -> Int64.sub (Int64.logand (rget fr sa) m) mn < uk
      | Ule -> fun _ fr -> Int64.sub (Int64.logand (rget fr sa) m) mn <= uk
      | Ugt -> fun _ fr -> Int64.sub (Int64.logand (rget fr sa) m) mn > uk
      | Uge -> fun _ fr -> Int64.sub (Int64.logand (rget fr sa) m) mn >= uk
      | Slt ->
          fun _ fr -> Int64.shift_right (Int64.shift_left (rget fr sa) sh) sh < sk
      | Sle ->
          fun _ fr ->
            Int64.shift_right (Int64.shift_left (rget fr sa) sh) sh <= sk
      | Sgt ->
          fun _ fr -> Int64.shift_right (Int64.shift_left (rget fr sa) sh) sh > sk
      | Sge ->
          fun _ fr ->
            Int64.shift_right (Int64.shift_left (rget fr sa) sh) sh >= sk)
  | L.Oimm { v; _ }, L.Oslot sb -> (
      let k = Ty.truncate w v in
      let uk = Int64.sub k mn in
      let sk = Int64.shift_right (Int64.shift_left k sh) sh in
      match op with
      | Eq -> fun _ fr -> k = Int64.logand (rget fr sb) m
      | Ne -> fun _ fr -> k <> Int64.logand (rget fr sb) m
      | Ult -> fun _ fr -> uk < Int64.sub (Int64.logand (rget fr sb) m) mn
      | Ule -> fun _ fr -> uk <= Int64.sub (Int64.logand (rget fr sb) m) mn
      | Ugt -> fun _ fr -> uk > Int64.sub (Int64.logand (rget fr sb) m) mn
      | Uge -> fun _ fr -> uk >= Int64.sub (Int64.logand (rget fr sb) m) mn
      | Slt ->
          fun _ fr -> sk < Int64.shift_right (Int64.shift_left (rget fr sb) sh) sh
      | Sle ->
          fun _ fr ->
            sk <= Int64.shift_right (Int64.shift_left (rget fr sb) sh) sh
      | Sgt ->
          fun _ fr -> sk > Int64.shift_right (Int64.shift_left (rget fr sb) sh) sh
      | Sge ->
          fun _ fr ->
            sk >= Int64.shift_right (Int64.shift_left (rget fr sb) sh) sh)
  | _ ->
      let ga = xget_w lf w a and gb = xget_w lf w b in
      let ev = xcmpop op w in
      fun st fr -> ev (ga st fr) (gb st fr)

(* Hand-specialised LBin unit for slot/imm operand shapes, the same
   unboxing argument as [xcond].  For add/sub/mul and the bitwise ops
   the input masks are algebraically redundant —
   [(a land m) op (b land m) land m = (a op b) land m] for any low-bit
   mask — so raw reads feed the op and only the result is masked,
   exactly the reference's value.  Udiv/Urem keep the input masks (high
   bits change quotients) and the masked-divisor zero check; the shifts
   keep their width subtleties in [Sem.eval_binop], now a direct call. *)
let xbin_unit (lf : L.lfunc) ~ip1 ~dst ~(op : binop) ~w (a : L.operand)
    (b : L.operand) : xunit =
  let tracked = lf.L.lf_tracked in
  let m = Ty.mask w in
  let generic () =
    let xset = xsetter lf in
    let ga = xget_w lf w a and gb = xget_w lf w b in
    match op with
    | Udiv | Urem ->
        let ev = xbinop op w in
        fun st _ fr ->
          let va = ga st fr and vb = gb st fr in
          if Int64.equal vb 0L then raise (Crash Failure.Div_by_zero);
          xset fr dst (ev va vb);
          fr.lfr_ip <- ip1;
          st.lclock <- st.lclock + 1;
          Stepped
    | _ ->
        let ev = xbinop op w in
        fun st _ fr ->
          let va = ga st fr and vb = gb st fr in
          xset fr dst (ev va vb);
          fr.lfr_ip <- ip1;
          st.lclock <- st.lclock + 1;
          Stepped
  in
  match (a, b) with
  | L.Oslot sa, L.Oslot sb -> (
      match op with
      | Add ->
          fun st _ fr ->
            rset fr dst (Int64.logand (Int64.add (rget fr sa) (rget fr sb)) m);
            xmark tracked fr dst;
            fr.lfr_ip <- ip1;
            st.lclock <- st.lclock + 1;
            Stepped
      | Sub ->
          fun st _ fr ->
            rset fr dst (Int64.logand (Int64.sub (rget fr sa) (rget fr sb)) m);
            xmark tracked fr dst;
            fr.lfr_ip <- ip1;
            st.lclock <- st.lclock + 1;
            Stepped
      | Mul ->
          fun st _ fr ->
            rset fr dst (Int64.logand (Int64.mul (rget fr sa) (rget fr sb)) m);
            xmark tracked fr dst;
            fr.lfr_ip <- ip1;
            st.lclock <- st.lclock + 1;
            Stepped
      | And ->
          fun st _ fr ->
            rset fr dst (Int64.logand (Int64.logand (rget fr sa) (rget fr sb)) m);
            xmark tracked fr dst;
            fr.lfr_ip <- ip1;
            st.lclock <- st.lclock + 1;
            Stepped
      | Or ->
          fun st _ fr ->
            rset fr dst (Int64.logand (Int64.logor (rget fr sa) (rget fr sb)) m);
            xmark tracked fr dst;
            fr.lfr_ip <- ip1;
            st.lclock <- st.lclock + 1;
            Stepped
      | Xor ->
          fun st _ fr ->
            rset fr dst (Int64.logand (Int64.logxor (rget fr sa) (rget fr sb)) m);
            xmark tracked fr dst;
            fr.lfr_ip <- ip1;
            st.lclock <- st.lclock + 1;
            Stepped
      | Udiv ->
          fun st _ fr ->
            let vb = Int64.logand (rget fr sb) m in
            if vb = 0L then raise (Crash Failure.Div_by_zero);
            rset fr dst
              (Int64.logand
                 (Int64.unsigned_div (Int64.logand (rget fr sa) m) vb)
                 m);
            xmark tracked fr dst;
            fr.lfr_ip <- ip1;
            st.lclock <- st.lclock + 1;
            Stepped
      | Urem ->
          fun st _ fr ->
            let vb = Int64.logand (rget fr sb) m in
            if vb = 0L then raise (Crash Failure.Div_by_zero);
            rset fr dst
              (Int64.logand
                 (Int64.unsigned_rem (Int64.logand (rget fr sa) m) vb)
                 m);
            xmark tracked fr dst;
            fr.lfr_ip <- ip1;
            st.lclock <- st.lclock + 1;
            Stepped
      (* [Sem.eval_binop]'s shift semantics inlined: amount = the masked
         b as an int; overshifts yield 0 (Shl/Lshr) or the sign fill
         (Ashr, clamped at 63).  Shl's input mask folds into the result
         mask; Lshr/Ashr read masked/sign-extended values since high
         bits would shift into range. *)
      | Shl ->
          fun st _ fr ->
            let s = Int64.to_int (Int64.logand (rget fr sb) m) in
            rset fr dst
              (if s >= w then 0L
               else Int64.logand (Int64.shift_left (rget fr sa) s) m);
            xmark tracked fr dst;
            fr.lfr_ip <- ip1;
            st.lclock <- st.lclock + 1;
            Stepped
      | Lshr ->
          fun st _ fr ->
            let s = Int64.to_int (Int64.logand (rget fr sb) m) in
            rset fr dst
              (if s >= w then 0L
               else
                 Int64.shift_right_logical (Int64.logand (rget fr sa) m) s);
            xmark tracked fr dst;
            fr.lfr_ip <- ip1;
            st.lclock <- st.lclock + 1;
            Stepped
      | Ashr ->
          let sh = 64 - w in
          fun st _ fr ->
            let s = Int64.to_int (Int64.logand (rget fr sb) m) in
            let sa_ =
              Int64.shift_right (Int64.shift_left (rget fr sa) sh) sh
            in
            rset fr dst
              (Int64.logand
                 (Int64.shift_right sa_ (if s >= 63 then 63 else s))
                 m);
            xmark tracked fr dst;
            fr.lfr_ip <- ip1;
            st.lclock <- st.lclock + 1;
            Stepped)
  | L.Oslot sa, L.Oimm { v; _ } -> (
      let k = Ty.truncate w v in
      match op with
      | Add ->
          fun st _ fr ->
            rset fr dst (Int64.logand (Int64.add (rget fr sa) k) m);
            xmark tracked fr dst;
            fr.lfr_ip <- ip1;
            st.lclock <- st.lclock + 1;
            Stepped
      | Sub ->
          fun st _ fr ->
            rset fr dst (Int64.logand (Int64.sub (rget fr sa) k) m);
            xmark tracked fr dst;
            fr.lfr_ip <- ip1;
            st.lclock <- st.lclock + 1;
            Stepped
      | Mul ->
          fun st _ fr ->
            rset fr dst (Int64.logand (Int64.mul (rget fr sa) k) m);
            xmark tracked fr dst;
            fr.lfr_ip <- ip1;
            st.lclock <- st.lclock + 1;
            Stepped
      | And ->
          fun st _ fr ->
            rset fr dst (Int64.logand (Int64.logand (rget fr sa) k) m);
            xmark tracked fr dst;
            fr.lfr_ip <- ip1;
            st.lclock <- st.lclock + 1;
            Stepped
      | Or ->
          fun st _ fr ->
            rset fr dst (Int64.logand (Int64.logor (rget fr sa) k) m);
            xmark tracked fr dst;
            fr.lfr_ip <- ip1;
            st.lclock <- st.lclock + 1;
            Stepped
      | Xor ->
          fun st _ fr ->
            rset fr dst (Int64.logand (Int64.logxor (rget fr sa) k) m);
            xmark tracked fr dst;
            fr.lfr_ip <- ip1;
            st.lclock <- st.lclock + 1;
            Stepped
      | Udiv ->
          if k = 0L then fun _ _ _ -> raise (Crash Failure.Div_by_zero)
          else
            fun st _ fr ->
              rset fr dst
                (Int64.logand
                   (Int64.unsigned_div (Int64.logand (rget fr sa) m) k)
                   m);
              xmark tracked fr dst;
              fr.lfr_ip <- ip1;
              st.lclock <- st.lclock + 1;
              Stepped
      | Urem ->
          if k = 0L then fun _ _ _ -> raise (Crash Failure.Div_by_zero)
          else
            fun st _ fr ->
              rset fr dst
                (Int64.logand
                   (Int64.unsigned_rem (Int64.logand (rget fr sa) m) k)
                   m);
              xmark tracked fr dst;
              fr.lfr_ip <- ip1;
              st.lclock <- st.lclock + 1;
              Stepped
      (* constant shift amount: the overshift test resolves at compile
         time *)
      | Shl ->
          let s = Int64.to_int k in
          if s >= w then fun st _ fr ->
            rset fr dst 0L;
            xmark tracked fr dst;
            fr.lfr_ip <- ip1;
            st.lclock <- st.lclock + 1;
            Stepped
          else
            fun st _ fr ->
              rset fr dst (Int64.logand (Int64.shift_left (rget fr sa) s) m);
              xmark tracked fr dst;
              fr.lfr_ip <- ip1;
              st.lclock <- st.lclock + 1;
              Stepped
      | Lshr ->
          let s = Int64.to_int k in
          if s >= w then fun st _ fr ->
            rset fr dst 0L;
            xmark tracked fr dst;
            fr.lfr_ip <- ip1;
            st.lclock <- st.lclock + 1;
            Stepped
          else
            fun st _ fr ->
              rset fr dst
                (Int64.shift_right_logical (Int64.logand (rget fr sa) m) s);
              xmark tracked fr dst;
              fr.lfr_ip <- ip1;
              st.lclock <- st.lclock + 1;
              Stepped
      | Ashr ->
          let s = Int64.to_int k in
          let s = if s >= 63 then 63 else s in
          let sh = 64 - w in
          fun st _ fr ->
            rset fr dst
              (Int64.logand
                 (Int64.shift_right
                    (Int64.shift_right (Int64.shift_left (rget fr sa) sh) sh)
                    s)
                 m);
            xmark tracked fr dst;
            fr.lfr_ip <- ip1;
            st.lclock <- st.lclock + 1;
            Stepped)
  | L.Oimm { v; _ }, L.Oslot sb -> (
      let k = Ty.truncate w v in
      match op with
      | Add ->
          fun st _ fr ->
            rset fr dst (Int64.logand (Int64.add k (rget fr sb)) m);
            xmark tracked fr dst;
            fr.lfr_ip <- ip1;
            st.lclock <- st.lclock + 1;
            Stepped
      | Sub ->
          fun st _ fr ->
            rset fr dst (Int64.logand (Int64.sub k (rget fr sb)) m);
            xmark tracked fr dst;
            fr.lfr_ip <- ip1;
            st.lclock <- st.lclock + 1;
            Stepped
      | Mul ->
          fun st _ fr ->
            rset fr dst (Int64.logand (Int64.mul k (rget fr sb)) m);
            xmark tracked fr dst;
            fr.lfr_ip <- ip1;
            st.lclock <- st.lclock + 1;
            Stepped
      | And ->
          fun st _ fr ->
            rset fr dst (Int64.logand (Int64.logand k (rget fr sb)) m);
            xmark tracked fr dst;
            fr.lfr_ip <- ip1;
            st.lclock <- st.lclock + 1;
            Stepped
      | Or ->
          fun st _ fr ->
            rset fr dst (Int64.logand (Int64.logor k (rget fr sb)) m);
            xmark tracked fr dst;
            fr.lfr_ip <- ip1;
            st.lclock <- st.lclock + 1;
            Stepped
      | Xor ->
          fun st _ fr ->
            rset fr dst (Int64.logand (Int64.logxor k (rget fr sb)) m);
            xmark tracked fr dst;
            fr.lfr_ip <- ip1;
            st.lclock <- st.lclock + 1;
            Stepped
      | Udiv ->
          fun st _ fr ->
            let vb = Int64.logand (rget fr sb) m in
            if vb = 0L then raise (Crash Failure.Div_by_zero);
            rset fr dst (Int64.logand (Int64.unsigned_div k vb) m);
            xmark tracked fr dst;
            fr.lfr_ip <- ip1;
            st.lclock <- st.lclock + 1;
            Stepped
      | Urem ->
          fun st _ fr ->
            let vb = Int64.logand (rget fr sb) m in
            if vb = 0L then raise (Crash Failure.Div_by_zero);
            rset fr dst (Int64.logand (Int64.unsigned_rem k vb) m);
            xmark tracked fr dst;
            fr.lfr_ip <- ip1;
            st.lclock <- st.lclock + 1;
            Stepped
      | Shl | Lshr | Ashr ->
          let sop = smt_binop op in
          fun st _ fr ->
            rset fr dst
              (Sem.eval_binop sop w k (Int64.logand (rget fr sb) m));
            xmark tracked fr dst;
            fr.lfr_ip <- ip1;
            st.lclock <- st.lclock + 1;
            Stepped)
  | _ -> generic ()

(* [ldo_return] without the on_ret hook check, for the fast path. *)
let ldo_return_fast st (th : lthread) v : step =
  match th.lstack with
  | [] -> assert false
  | fr :: rest ->
      List.iter (Memory.release_stack st.lmem) fr.lfr_stack_objs;
      th.lstack <- rest;
      th.ldepth <- th.ldepth - 1;
      (match rest with
       | [] ->
           th.lstatus <- Done_t;
           if th.ltid = 0 then Program_done v else Thread_done
       | caller :: _ ->
           (match fr.lfr_dst, v with
            | Some dst, Some value ->
                lset_slot caller dst
                  (Ty.truncate fr.lfr_func.L.lf_ret_w value)
            | Some dst, None -> lset_slot caller dst 0L
            | None, _ -> ());
           Stepped)

(* Return with the value as a raw slot read: the option box moves to the
   Program_done edge (once per run), so ordinary returns allocate
   nothing beyond what the frame pop itself frees. *)
let ldo_return_slot st (th : lthread) (value : int64) : step =
  match th.lstack with
  | [] -> assert false
  | fr :: rest ->
      List.iter (Memory.release_stack st.lmem) fr.lfr_stack_objs;
      th.lstack <- rest;
      th.ldepth <- th.ldepth - 1;
      (match rest with
       | [] ->
           th.lstatus <- Done_t;
           if th.ltid = 0 then Program_done (Some value) else Thread_done
       | caller :: _ ->
           (match fr.lfr_dst with
            | Some dst ->
                lset_slot caller dst
                  (Ty.truncate fr.lfr_func.L.lf_ret_w value)
            | None -> ());
           Stepped)

(* Hand-specialised call: one writer closure per argument copies
   caller-frame slots into the callee frame as raw 64-bit moves — no
   boxed getter returns, no argument list, no List.iteri binding.
   Writers run last-argument-first, the reference's fold_right
   evaluation order (observable only through Ocheck raises).  The
   callee frame is allocated before the arguments evaluate; that
   reordering is unobservable (a frame allocation journals nothing).
   Arity mismatches fall back to the generic path so the invalid_arg
   fires after operand evaluation, exactly like [make_lframe]. *)
let xcall_unit (low : L.t) (lf : L.lfunc) ~ip1 ~dst ~fidx
    (args : L.operand array) : xunit option =
  let callee = low.L.l_funcs.(fidx) in
  let params = callee.L.lf_params in
  if Array.length args <> Array.length params then None
  else begin
    let tracked = callee.L.lf_tracked in
    let writer i : t -> lframe -> lframe -> unit =
      let slot, ty = params.(i) in
      let m = Ty.mask (width_of_ty ty) in
      let[@inline] put (nfr : lframe) v =
        rset nfr slot v;
        if tracked then Bytes.unsafe_set nfr.lfr_defined slot '\001'
      in
      match args.(i) with
      | L.Oslot s -> fun _ fr nfr -> put nfr (Int64.logand (rget fr s) m)
      | L.Oimm { v; _ } ->
          let k = Int64.logand v m in
          fun _ _ nfr -> put nfr k
      | L.Onull -> fun _ _ nfr -> put nfr 0L
      | L.Oglobal gi ->
          fun st _ nfr ->
            put nfr (Int64.logand (Array.unsafe_get st.lglobal_ptrs gi) m)
      | L.Ocheck { slot = s; reg } ->
          let msg =
            Printf.sprintf "Interp: read of undefined register %s in %s" reg
              lf.L.lf_name
          in
          fun _ fr nfr ->
            if Bytes.unsafe_get fr.lfr_defined s <> '\001' then
              invalid_arg msg;
            put nfr (Int64.logand (rget fr s) m)
    in
    let writers = Array.init (Array.length params) writer in
    let nparams = Array.length params in
    let nbytes = callee.L.lf_nslots lsl 3 in
    let ndef = callee.L.lf_nslots in
    let entry = callee.L.lf_blocks.(0) in
    Some
      (fun st th fr ->
        if th.ldepth >= st.lcfg.max_call_depth then
          raise (Crash Failure.Stack_overflow);
        let nfr =
          { lfr_func = callee; lfr_block = entry; lfr_ip = 0;
            lfr_regs = Bytes.make nbytes '\000';
            lfr_defined =
              (if tracked then Bytes.make ndef '\000' else empty_defined);
            lfr_dst = dst; lfr_stack_objs = []; lfr_pending = None }
        in
        for i = nparams - 1 downto 0 do
          (Array.unsafe_get writers i) st fr nfr
        done;
        fr.lfr_ip <- ip1;
        record_entry st callee 0;
        th.lstack <- nfr :: th.lstack;
        th.ldepth <- th.ldepth + 1;
        st.lclock <- st.lclock + 1;
        Stepped)
  end

(* The pre-terminator accounting of [lstep_thread]: one batched add per
   counter class plus the per-block retirement count, before the
   terminator executes (also before abort/unreachable raise). *)
let[@inline] xflush st uid (b : L.lblock) =
  if M.enabled M.default then begin
    flush_delta b.L.lb_delta;
    (* uid < length by construction: it's the block's own table slot *)
    Array.unsafe_set st.lblk_counts uid
      (Array.unsafe_get st.lblk_counts uid + 1)
  end

(* Hand-specialised hook-free singleton for the instruction at [ip].
   Mirrors [lstep_instr] case by case — same evaluation order, same
   crash points, same writes — minus every hook option check, plus the
   ip/clock update the run loop used to perform. *)
let xinstr_fast (low : L.t) (lf : L.lfunc) (b : L.lblock) ip : xunit =
  let ip1 = ip + 1 in
  let xset = xsetter lf in
  let tracked = lf.L.lf_tracked in
  match b.L.lb_instrs.(ip) with
  | L.LBin { dst; op; w; a; b; _ } ->
      (* reference order: a then b (let-and binds left to right) *)
      xguarded
        (xguard lf [ a; b ])
        (xbin_unit lf ~ip1 ~dst ~op ~w (strip_check a) (strip_check b))
  | L.LCmp { dst; op; w; a; b; _ } ->
      (* reference order: b then a (application arguments evaluate
         right to left) *)
      let g = xguard lf [ b; a ] in
      let cond = xcond lf ~op ~w (strip_check a) (strip_check b) in
      xguarded g (fun st _ fr ->
          rset fr dst (if cond st fr then 1L else 0L);
          xmark tracked fr dst;
          fr.lfr_ip <- ip1;
          st.lclock <- st.lclock + 1;
          Stepped)
  | L.LSelect { dst; w; cond; if_true; if_false; _ } ->
      let gc = xget lf cond
      and gt = xget lf if_true
      and gf = xget lf if_false in
      let m = Ty.mask w in
      fun st _ fr ->
        let c = gc st fr in
        let v =
          if Int64.equal (Int64.logand c 1L) 1L then gt st fr else gf st fr
        in
        xset fr dst (Int64.logand v m);
        fr.lfr_ip <- ip1;
        st.lclock <- st.lclock + 1;
        Stepped
  | L.LCast { dst; kind; to_w; from_w; v = v0; _ } -> (
      let gv = xguard lf [ v0 ] in
      let v = strip_check v0 in
      xguarded gv
      @@
      match (kind, v) with
      (* single mask: (x & m_from) & m_to, folded at compile time *)
      | (Zext | Ptrtoint | Inttoptr | Trunc), L.Oslot s ->
          let mm = Int64.logand (Ty.mask from_w) (Ty.mask to_w) in
          fun st _ fr ->
            rset fr dst (Int64.logand (rget fr s) mm);
            xmark tracked fr dst;
            fr.lfr_ip <- ip1;
            st.lclock <- st.lclock + 1;
            Stepped
      (* the from-mask folds into the shift pair, as in [xcond] *)
      | Sext, L.Oslot s ->
          let sh = 64 - from_w and m = Ty.mask to_w in
          fun st _ fr ->
            rset fr dst
              (Int64.logand
                 (Int64.shift_right (Int64.shift_left (rget fr s) sh) sh)
                 m);
            xmark tracked fr dst;
            fr.lfr_ip <- ip1;
            st.lclock <- st.lclock + 1;
            Stepped
      | (Zext | Ptrtoint | Inttoptr | Trunc), _ ->
          let g = xget_w lf from_w v in
          let m = Ty.mask to_w in
          fun st _ fr ->
            xset fr dst (Int64.logand (g st fr) m);
            fr.lfr_ip <- ip1;
            st.lclock <- st.lclock + 1;
            Stepped
      | Sext, _ ->
          let g = xget_w lf from_w v in
          let sx = xsext from_w and m = Ty.mask to_w in
          fun st _ fr ->
            xset fr dst (Int64.logand (sx (g st fr)) m);
            fr.lfr_ip <- ip1;
            st.lclock <- st.lclock + 1;
            Stepped)
  | L.LLoad { dst; ty; addr = addr0 } -> (
      let ga = xguard lf [ addr0 ] in
      let addr = strip_check addr0 in
      xguarded ga
      @@
      match addr with
      | L.Oslot sa ->
          fun st _ fr ->
            let v =
              match Memory.load_exn st.lmem (rget fr sa) ~ty with
              | v -> v
              | exception Memory.Fault k -> raise (Crash k)
            in
            rset fr dst v;
            xmark tracked fr dst;
            fr.lfr_ip <- ip1;
            st.lclock <- st.lclock + 1;
            Stepped
      | L.Oglobal gi ->
          fun st _ fr ->
            let v =
              match
                Memory.load_exn st.lmem
                  (Array.unsafe_get st.lglobal_ptrs gi)
                  ~ty
              with
              | v -> v
              | exception Memory.Fault k -> raise (Crash k)
            in
            rset fr dst v;
            xmark tracked fr dst;
            fr.lfr_ip <- ip1;
            st.lclock <- st.lclock + 1;
            Stepped
      | _ ->
          let ga = xget lf addr in
          fun st _ fr ->
            let v =
              match Memory.load_exn st.lmem (ga st fr) ~ty with
              | v -> v
              | exception Memory.Fault k -> raise (Crash k)
            in
            xset fr dst v;
            fr.lfr_ip <- ip1;
            st.lclock <- st.lclock + 1;
            Stepped)
  | L.LStore { ty; w; v = v0; addr = addr0 } -> (
      (* reference order: value then address *)
      let gs = xguard lf [ v0; addr0 ] in
      let v = strip_check v0 and addr = strip_check addr0 in
      let m = Ty.mask w in
      xguarded gs
      @@
      match (v, addr) with
      | L.Oslot sv, L.Oslot sa ->
          fun st _ fr ->
            let value = Int64.logand (rget fr sv) m in
            (match Memory.store_exn st.lmem (rget fr sa) ~ty value with
             | () -> ()
             | exception Memory.Fault k -> raise (Crash k));
            fr.lfr_ip <- ip1;
            st.lclock <- st.lclock + 1;
            Stepped
      | L.Oslot sv, L.Oglobal gi ->
          fun st _ fr ->
            let value = Int64.logand (rget fr sv) m in
            (match
               Memory.store_exn st.lmem
                 (Array.unsafe_get st.lglobal_ptrs gi)
                 ~ty value
             with
             | () -> ()
             | exception Memory.Fault k -> raise (Crash k));
            fr.lfr_ip <- ip1;
            st.lclock <- st.lclock + 1;
            Stepped
      | L.Oimm { v = iv; _ }, L.Oslot sa ->
          let k = Ty.truncate w iv in
          fun st _ fr ->
            (match Memory.store_exn st.lmem (rget fr sa) ~ty k with
             | () -> ()
             | exception Memory.Fault k -> raise (Crash k));
            fr.lfr_ip <- ip1;
            st.lclock <- st.lclock + 1;
            Stepped
      | L.Oimm { v = iv; _ }, L.Oglobal gi ->
          let k = Ty.truncate w iv in
          fun st _ fr ->
            (match
               Memory.store_exn st.lmem
                 (Array.unsafe_get st.lglobal_ptrs gi)
                 ~ty k
             with
             | () -> ()
             | exception Memory.Fault k -> raise (Crash k));
            fr.lfr_ip <- ip1;
            st.lclock <- st.lclock + 1;
            Stepped
      | _ ->
          let gv = xget_w lf w v and ga = xget lf addr in
          fun st _ fr ->
            let value = gv st fr in
            (match Memory.store_exn st.lmem (ga st fr) ~ty value with
             | () -> ()
             | exception Memory.Fault k -> raise (Crash k));
            fr.lfr_ip <- ip1;
            st.lclock <- st.lclock + 1;
            Stepped)
  | L.LAlloc { dst; elt_ty; count; heap } -> (
      let gc = xget lf count in
      fun st _ fr ->
        let n = Int64.to_int (gc st fr) in
        match Memory.alloc st.lmem ~elt_ty ~size:n ~heap with
        | None ->
            raise (Crash (Failure.Access_type_error "allocation too large"))
        | Some p ->
            if not heap then
              fr.lfr_stack_objs <- Memory.ptr_obj p :: fr.lfr_stack_objs;
            xset fr dst p;
            fr.lfr_ip <- ip1;
            st.lclock <- st.lclock + 1;
            Stepped)
  | L.LFree { addr } -> (
      let ga = xget lf addr in
      fun st _ fr ->
        match Memory.free st.lmem (ga st fr) with
        | Error k -> raise (Crash k)
        | Ok () ->
            fr.lfr_ip <- ip1;
            st.lclock <- st.lclock + 1;
            Stepped)
  | L.LGep { dst; base = base0; idx = idx0 } -> (
      (* reference order: base then index *)
      let gg = xguard lf [ base0; idx0 ] in
      let base = strip_check base0 and idx = strip_check idx0 in
      (* sign_extend 64 is the identity, so the index read is plain *)
      xguarded gg
      @@
      match (base, idx) with
      | L.Oslot sb_, L.Oslot si ->
          fun st _ fr ->
            let p = rget fr sb_ in
            let i = Int64.to_int (rget fr si) in
            rset fr dst
              (Memory.ptr ~obj:(Memory.ptr_obj p)
                 ~index:(Memory.ptr_index p + i));
            xmark tracked fr dst;
            fr.lfr_ip <- ip1;
            st.lclock <- st.lclock + 1;
            Stepped
      | L.Oslot sb_, L.Oimm { v; _ } ->
          let ki = Int64.to_int v in
          fun st _ fr ->
            let p = rget fr sb_ in
            rset fr dst
              (Memory.ptr ~obj:(Memory.ptr_obj p)
                 ~index:(Memory.ptr_index p + ki));
            xmark tracked fr dst;
            fr.lfr_ip <- ip1;
            st.lclock <- st.lclock + 1;
            Stepped
      | L.Oglobal gi_, L.Oslot si ->
          fun st _ fr ->
            let p = Array.unsafe_get st.lglobal_ptrs gi_ in
            let i = Int64.to_int (rget fr si) in
            rset fr dst
              (Memory.ptr ~obj:(Memory.ptr_obj p)
                 ~index:(Memory.ptr_index p + i));
            xmark tracked fr dst;
            fr.lfr_ip <- ip1;
            st.lclock <- st.lclock + 1;
            Stepped
      | L.Oglobal gi_, L.Oimm { v; _ } ->
          let ki = Int64.to_int v in
          fun st _ fr ->
            let p = Array.unsafe_get st.lglobal_ptrs gi_ in
            rset fr dst
              (Memory.ptr ~obj:(Memory.ptr_obj p)
                 ~index:(Memory.ptr_index p + ki));
            xmark tracked fr dst;
            fr.lfr_ip <- ip1;
            st.lclock <- st.lclock + 1;
            Stepped
      | _ ->
          let gb = xget lf base and gi = xget lf idx in
          fun st _ fr ->
            let p = gb st fr in
            let i = Int64.to_int (gi st fr) in
            xset fr dst
              (Memory.ptr ~obj:(Memory.ptr_obj p)
                 ~index:(Memory.ptr_index p + i));
            fr.lfr_ip <- ip1;
            st.lclock <- st.lclock + 1;
            Stepped)
  | L.LCall { dst; fidx; args } -> (
      match xcall_unit low lf ~ip1 ~dst ~fidx args with
      | Some x -> x
      | None ->
          (* arity mismatch: keep the generic path so the invalid_arg
             fires after operand evaluation, like the reference *)
          let gargs = Array.map (xget lf) args in
          fun st th fr ->
            if th.ldepth >= st.lcfg.max_call_depth then
              raise (Crash Failure.Stack_overflow);
            let callee = st.llow.L.l_funcs.(fidx) in
            let vargs =
              Array.fold_right (fun g acc -> g st fr :: acc) gargs []
            in
            fr.lfr_ip <- ip1;
            record_entry st callee 0;
            th.lstack <- make_lframe callee vargs ~dst :: th.lstack;
            th.ldepth <- th.ldepth + 1;
            st.lclock <- st.lclock + 1;
            Stepped)
  | L.LInput { dst; ty; stream } -> (
      let m = Ty.mask (width_of_ty ty) in
      fun st _ fr ->
        match Inputs.read st.linputs stream with
        | None -> raise (Crash (Failure.Input_exhausted stream))
        | Some v ->
            xset fr dst (Int64.logand v m);
            fr.lfr_ip <- ip1;
            st.lclock <- st.lclock + 1;
            Stepped)
  | L.LOutput { v = v0 } -> (
      let gv = xguard lf [ v0 ] in
      let v = strip_check v0 in
      xguarded gv
      @@
      match v with
      | L.Oslot s ->
          fun st _ fr ->
            st.loutputs <- rget fr s :: st.loutputs;
            fr.lfr_ip <- ip1;
            st.lclock <- st.lclock + 1;
            Stepped
      | _ ->
          let gv = xget lf v in
          fun st _ fr ->
            st.loutputs <- gv st fr :: st.loutputs;
            fr.lfr_ip <- ip1;
            st.lclock <- st.lclock + 1;
            Stepped)
  | L.LPtwrite _ ->
      (* with no hook the traced operand is not even evaluated, exactly
         like the [None] arm of the reference; clock-free *)
      fun _ _ fr ->
        fr.lfr_ip <- ip1;
        Stepped_free
  | L.LAssert { cond = cond0; msg } -> (
      let gc = xguard lf [ cond0 ] in
      let cond = strip_check cond0 in
      xguarded gc
      @@
      match cond with
      | L.Oslot s ->
          fun st _ fr ->
            if Int64.logand (rget fr s) 1L = 0L then
              raise (Crash (Failure.Assert_failed msg));
            fr.lfr_ip <- ip1;
            st.lclock <- st.lclock + 1;
            Stepped
      | _ ->
          let gc = xget lf cond in
          fun st _ fr ->
            if Int64.equal (Int64.logand (gc st fr) 1L) 0L then
              raise (Crash (Failure.Assert_failed msg));
            fr.lfr_ip <- ip1;
            st.lclock <- st.lclock + 1;
            Stepped)
  | L.LSpawn { fidx; args } ->
      let gargs = Array.map (xget lf) args in
      fun st _ fr ->
        let callee = st.llow.L.l_funcs.(fidx) in
        let vargs = Array.fold_right (fun g acc -> g st fr :: acc) gargs [] in
        record_entry st callee 0;
        let nt =
          { ltid = st.lnext_tid; lstack = [ make_lframe callee vargs ~dst:None ];
            ldepth = 1; lstatus = Runnable }
        in
        st.lnext_tid <- st.lnext_tid + 1;
        st.lthreads <- st.lthreads @ [ nt ];
        fr.lfr_ip <- ip1;
        st.lclock <- st.lclock + 1;
        Stepped
  | L.LJoin ->
      let src_i = b.L.lb_src.instrs.(ip) in
      fun st th fr ->
        let others_done =
          List.for_all
            (fun t -> t.ltid = th.ltid || t.lstatus = Done_t)
            st.lthreads
        in
        if others_done then begin
          fr.lfr_ip <- ip1;
          st.lclock <- st.lclock + 1;
          Stepped
        end
        else begin
          th.lstatus <- Waiting_join;
          (* blocked ops count once per attempt, like the reference *)
          if M.enabled M.default then count_instr src_i;
          Blocked
        end
  | L.LLock { addr } -> (
      let ga = xget lf addr and src_i = b.L.lb_src.instrs.(ip) in
      fun st th fr ->
        let a = ga st fr in
        match Hashtbl.find_opt st.lmutexes a with
        | Some owner when owner = th.ltid ->
            raise (Crash (Failure.Lock_error "recursive lock"))
        | Some _ ->
            th.lstatus <- Blocked_lock a;
            if M.enabled M.default then count_instr src_i;
            Blocked
        | None ->
            Hashtbl.replace st.lmutexes a th.ltid;
            fr.lfr_ip <- ip1;
            st.lclock <- st.lclock + 1;
            Stepped)
  | L.LUnlock { addr } -> (
      let ga = xget lf addr in
      fun st th fr ->
        let a = ga st fr in
        match Hashtbl.find_opt st.lmutexes a with
        | Some owner when owner = th.ltid ->
            Hashtbl.remove st.lmutexes a;
            List.iter
              (fun t ->
                 match t.lstatus with
                 | Blocked_lock a' when Int64.equal a a' ->
                     t.lstatus <- Runnable
                 | Blocked_lock _ | Runnable | Waiting_join | Done_t -> ())
              st.lthreads;
            fr.lfr_ip <- ip1;
            st.lclock <- st.lclock + 1;
            Stepped
        | Some _ | None ->
            raise (Crash (Failure.Lock_error "unlock of mutex not held")))

(* Hook-free terminator singleton: metric flush, then the jump/return,
   then the clock tick — the order of [lstep_thread] + the run loop. *)
let xterm_fast (lf : L.lfunc) (b : L.lblock) ~uid : xunit =
  match b.L.lb_term with
  | L.LBr i ->
      let target = lf.L.lf_blocks.(i) in
      fun st _ fr ->
        xflush st uid b;
        record_entry st lf i;
        fr.lfr_block <- target;
        fr.lfr_ip <- 0;
        st.lclock <- st.lclock + 1;
        Stepped
  | L.LCond_br { cond; if_true; if_false } -> (
      let bt = lf.L.lf_blocks.(if_true) and bf = lf.L.lf_blocks.(if_false) in
      match cond with
      | L.Oslot s ->
          fun st _ fr ->
            xflush st uid b;
            let c = Int64.logand (rget fr s) 1L = 1L in
            st.lbranches <- st.lbranches + 1;
            record_entry st lf (if c then if_true else if_false);
            fr.lfr_block <- (if c then bt else bf);
            fr.lfr_ip <- 0;
            st.lclock <- st.lclock + 1;
            Stepped
      | L.Ocheck { slot = s; reg } ->
          (* inline definedness check after the flush, exactly where the
             generic getter would run — no boxed getter return *)
          let msg =
            Printf.sprintf "Interp: read of undefined register %s in %s" reg
              lf.L.lf_name
          in
          fun st _ fr ->
            xflush st uid b;
            if Bytes.unsafe_get fr.lfr_defined s <> '\001' then
              invalid_arg msg;
            let c = Int64.logand (rget fr s) 1L = 1L in
            st.lbranches <- st.lbranches + 1;
            record_entry st lf (if c then if_true else if_false);
            fr.lfr_block <- (if c then bt else bf);
            fr.lfr_ip <- 0;
            st.lclock <- st.lclock + 1;
            Stepped
      | _ ->
          let gc = xget lf cond in
          fun st _ fr ->
            xflush st uid b;
            let c = Int64.equal (Int64.logand (gc st fr) 1L) 1L in
            st.lbranches <- st.lbranches + 1;
            record_entry st lf (if c then if_true else if_false);
            fr.lfr_block <- (if c then bt else bf);
            fr.lfr_ip <- 0;
            st.lclock <- st.lclock + 1;
            Stepped)
  | L.LRet v -> (
      match v with
      | None ->
          fun st th _ -> (
            xflush st uid b;
            match ldo_return_fast st th None with
            | Stepped ->
                st.lclock <- st.lclock + 1;
                Stepped
            | Program_done r ->
                st.lclock <- st.lclock + 1;
                Program_done r
            | s -> s)
      | Some (L.Oslot s) ->
          fun st th fr -> (
            xflush st uid b;
            match ldo_return_slot st th (rget fr s) with
            | Stepped ->
                st.lclock <- st.lclock + 1;
                Stepped
            | Program_done r ->
                st.lclock <- st.lclock + 1;
                Program_done r
            | s -> s)
      | Some (L.Ocheck { slot = s; reg }) ->
          (* check after the metric flush, matching the generic arm's
             operand-evaluation point *)
          let msg =
            Printf.sprintf "Interp: read of undefined register %s in %s" reg
              lf.L.lf_name
          in
          fun st th fr -> (
            xflush st uid b;
            if Bytes.unsafe_get fr.lfr_defined s <> '\001' then
              invalid_arg msg;
            match ldo_return_slot st th (rget fr s) with
            | Stepped ->
                st.lclock <- st.lclock + 1;
                Stepped
            | Program_done r ->
                st.lclock <- st.lclock + 1;
                Program_done r
            | s -> s)
      | Some o ->
          let g = xget lf o in
          fun st th fr -> (
            xflush st uid b;
            match ldo_return_slot st th (g st fr) with
            | Stepped ->
                st.lclock <- st.lclock + 1;
                Stepped
            | Program_done r ->
                st.lclock <- st.lclock + 1;
                Program_done r
            | s -> s))
  | L.LAbort msg ->
      fun st _ _ ->
        xflush st uid b;
        raise (Crash (Failure.Abort_called msg))
  | L.LUnreachable ->
      fun st _ _ ->
        xflush st uid b;
        raise (Crash Failure.Unreachable_reached)

(* Hooked singletons: thin wrappers over the reference step functions —
   bit-identical hook behaviour by construction — plus the ip/clock and
   blocked-attempt accounting the run loop / [lstep_thread] used to do. *)
let xinstr_hooked (b : L.lblock) ip : xunit =
  let i = b.L.lb_instrs.(ip) in
  let src_i = b.L.lb_src.instrs.(ip) in
  fun st th fr ->
    match lstep_instr st th fr i with
    | Stepped ->
        st.lclock <- st.lclock + 1;
        Stepped
    | Blocked ->
        if M.enabled M.default then count_instr src_i;
        Blocked
    | s -> s

let xterm_hooked (b : L.lblock) ~uid : xunit =
  let term = b.L.lb_term in
  fun st th fr ->
    xflush st uid b;
    match lstep_term st th fr term with
    | Stepped ->
        st.lclock <- st.lclock + 1;
        Stepped
    | Program_done r ->
        st.lclock <- st.lclock + 1;
        Program_done r
    | s -> s

(* Superinstruction composition: the tail runs iff the head retired.
   Each side updates ip and clock itself, so the pair is observationally
   the two singleton dispatches back to back. *)
let xpair (head : xunit) (tail : xunit) : xunit =
 fun st th fr -> match head st th fr with Stepped -> tail st th fr | s -> s

(* The hottest committed pair gets a hand-fused unit: cmp feeding the
   block's own cond_br on the compared flag, sparing the flag re-read
   and re-test.  The flag register is still written (it stays
   observable), and both sub-steps keep their own clock tick. *)
let xcmp_br_fused (lf : L.lfunc) (b : L.lblock) ~uid ~ip : xunit option =
  match b.L.lb_instrs.(ip), b.L.lb_term with
  | ( L.LCmp { dst; op; w; a; b = ob; _ },
      L.LCond_br { cond = L.Oslot cs | L.Ocheck { slot = cs; _ }; if_true; if_false } )
    when cs = dst ->
      let g = xguard lf [ ob; a ] in
      let cond = xcond lf ~op ~w (strip_check a) (strip_check ob) in
      let tracked = lf.L.lf_tracked in
      let n = Array.length b.L.lb_instrs in
      let bt = lf.L.lf_blocks.(if_true) and bf = lf.L.lf_blocks.(if_false) in
      Some
        (xguarded g (fun st _ fr ->
          let c = cond st fr in
          rset fr dst (if c then 1L else 0L);
          xmark tracked fr dst;
          fr.lfr_ip <- n;
          st.lclock <- st.lclock + 1;
          xflush st uid b;
          st.lbranches <- st.lbranches + 1;
          record_entry st lf (if c then if_true else if_false);
          fr.lfr_block <- (if c then bt else bf);
          fr.lfr_ip <- 0;
          st.lclock <- st.lclock + 1;
          Stepped))
  | _ -> None

(* The hot half of one block's threaded code: the hook-free singleton
   and fused-unit arrays the no-hooks dispatcher actually touches. *)
let xcompile_block_hot (low : L.t) (lf : L.lfunc) (b : L.lblock) ~uid
    (fp : Fuse.block_plan) : xunit array * xunit array =
  let n = Array.length b.L.lb_instrs in
  let one =
    Array.init (n + 1) (fun ip ->
        if ip < n then xinstr_fast low lf b ip else xterm_fast lf b ~uid)
  in
  (* tail of a fused unit whose last position is [ip + 1] ([= n] is the
     terminator, where the hand-fused cmp+cond_br is tried first) *)
  let pair_at ip =
    if ip + 1 < n then xpair one.(ip) one.(ip + 1)
    else
      match xcmp_br_fused lf b ~uid ~ip with
      | Some u -> u
      | None -> xpair one.(ip) one.(n)
  in
  let big =
    Array.init (n + 1) (fun ip ->
        match fp.Fuse.fp_len.(ip) with
        | 3 -> xpair one.(ip) (pair_at (ip + 1))
        | 2 -> pair_at ip
        | _ -> one.(ip))
  in
  (one, big)

(* The cold half: hook-consulting units, plus assembly of the final
   record.  Built in a separate pass over the whole program so the hot
   closures of [xcompile_block_hot] stay contiguous in the heap instead
   of interleaving with hooked closures the no-hooks fast path never
   touches — dispatch is pointer-chasing, so cache density of the hot
   half is part of the speedup. *)
let xcompile_block_hooked (b : L.lblock) ~uid
    (fp : Fuse.block_plan) ((one, big) : xunit array * xunit array) : xblock =
  let n = Array.length b.L.lb_instrs in
  let one_h =
    Array.init (n + 1) (fun ip ->
        if ip < n then xinstr_hooked b ip else xterm_hooked b ~uid)
  in
  let pair_at_h ip =
    if ip + 1 < n then xpair one_h.(ip) one_h.(ip + 1)
    else xpair one_h.(ip) one_h.(n)
  in
  let big_h =
    Array.init (n + 1) (fun ip ->
        match fp.Fuse.fp_len.(ip) with
        | 3 -> xpair one_h.(ip) (pair_at_h (ip + 1))
        | 2 -> pair_at_h ip
        | _ -> one_h.(ip))
  in
  (* a unit may transfer control iff it is the terminator, a call (frame
     push; spawn only adds a thread, the current frame continues), or a
     fused unit ending in the terminator *)
  let ctl =
    Array.init (n + 1) (fun ip ->
        ip = n
        || (match b.L.lb_instrs.(ip) with L.LCall _ -> true | _ -> false)
        || (fp.Fuse.fp_len.(ip) > 1 && ip + fp.Fuse.fp_len.(ip) - 1 = n))
  in
  (* Whole-block chain over the hot units.  Only blocks whose every
     instruction is fusable qualify: calls push frames, inputs touch the
     stream cursor, ptwrite retires clock-free ([Stepped_free] would cut
     the chain), the sync ops may block — all of those keep per-unit
     dispatch.  Each sub-unit still updates ip and the clock itself, so
     crashes, failure reports and Ocheck traps inside the chain keep
     exact instruction granularity; the budget gate in the dispatcher
     guarantees the chain never starts unless the whole block fits the
     remaining quantum.  Cost is [n + 1]: one tick per instruction plus
     the terminator (no ptwrite here by construction). *)
  let wcost, whole =
    if Array.for_all Fuse.fusable_head b.L.lb_instrs then begin
      let rec chain ip =
        let l = fp.Fuse.fp_len.(ip) in
        if ip + l > n then big.(ip)
        else xpair big.(ip) (chain (ip + l))
      in
      (n + 1, chain 0)
    end
    else (max_int, big.(n))
  in
  {
    xb_cost = fp.Fuse.fp_cost;
    xb_one = one;
    xb_big = big;
    xb_one_h = one_h;
    xb_big_h = big_h;
    xb_ctl = ctl;
    xb_whole = whole;
    xb_wcost = wcost;
    xb_pairs = Fuse.block_pair_keys b;
  }

let xcompile (low : L.t) : xblock array array =
  let fuse = Fuse.analyze low in
  let nfuncs = Array.length low.L.l_funcs in
  let base = Array.make (nfuncs + 1) 0 in
  for i = 0 to nfuncs - 1 do
    base.(i + 1) <- base.(i) + Array.length low.L.l_funcs.(i).L.lf_blocks
  done;
  let hot =
    Array.mapi
      (fun fi (lf : L.lfunc) ->
         Array.mapi
           (fun bi b ->
              xcompile_block_hot low lf b ~uid:(base.(fi) + bi)
                fuse.Fuse.f_blocks.(fi).(bi))
           lf.L.lf_blocks)
      low.L.l_funcs
  in
  Array.mapi
    (fun fi (lf : L.lfunc) ->
       Array.mapi
         (fun bi b ->
            xcompile_block_hooked b ~uid:(base.(fi) + bi)
              fuse.Fuse.f_blocks.(fi).(bi)
              hot.(fi).(bi))
         lf.L.lf_blocks)
    low.L.l_funcs

(* Bounded compile cache keyed by the *physical* identity of the lowered
   program ([Prog.lowered] memoizes, so every state of one program sees
   the same [L.t]).  Compiled code is immutable, so sharing it across
   states — and across fleet domains — is safe; the mutex only guards
   the cache list itself. *)
let xcache : (L.t * xblock array array) list ref = ref []
let xcache_mutex = Mutex.create ()
let xcache_cap = 32

let xcode_of (low : L.t) : xblock array array =
  Mutex.lock xcache_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock xcache_mutex)
    (fun () ->
      match List.find_opt (fun (k, _) -> k == low) !xcache with
      | Some (_, code) ->
          if not (match !xcache with (k, _) :: _ -> k == low | [] -> false)
          then
            xcache :=
              (low, code) :: List.filter (fun (k, _) -> not (k == low)) !xcache;
          code
      | None ->
          let code = xcompile low in
          let kept =
            if List.length !xcache >= xcache_cap then
              List.filteri (fun i _ -> i < xcache_cap - 1) !xcache
            else !xcache
          in
          xcache := (low, code) :: kept;
          code)

(* --- the threaded dispatcher ----------------------------------------------- *)

(* Run [th] by threaded dispatch for at most [budget] clock ticks
   (callers guarantee [budget >= 1] and measure consumed ticks as the
   clock delta).  Returns on budget exhaustion ([Stepped] with the
   thread still runnable), on a scheduling event (Blocked /
   Thread_done / Program_done), or — under a plan — whenever the top
   frame needs the single-step path: a pending virtual ptwrite to fire,
   or a plan-marked block, whose fused units must split at the marked
   instructions.  Fused units never start unless their full cost fits
   the remaining budget, so quantum boundaries and the hang check land
   on exactly the instruction they would in singleton dispatch. *)
let exec_threaded (st : t) (th : lthread) ~budget : step =
  let deadline = st.lclock + budget in
  let result = ref Stepped in
  let running = ref true in
  while !running do
    match th.lstack with
    | [] ->
        th.lstatus <- Done_t;
        result := Thread_done;
        running := false
    | fr :: _ ->
        (* [lf_idx]/[lb_index] index the per-program tables by
           construction, so the block-transfer re-resolution — run once
           per block, the second-hottest path after dispatch itself —
           can skip the bounds checks *)
        if
          st.lplan_on
          && ((match fr.lfr_pending with Some _ -> true | None -> false)
             || Array.length
                  (Array.unsafe_get
                     (Array.unsafe_get st.lmarks fr.lfr_func.L.lf_idx)
                     fr.lfr_block.L.lb_index)
                <> 0)
        then running := false
        else begin
          let b0 = fr.lfr_block in
          let xb =
            Array.unsafe_get
              (Array.unsafe_get st.lxcode fr.lfr_func.L.lf_idx)
              b0.L.lb_index
          in
          let one, big =
            if st.lno_hooks then xb.xb_one, xb.xb_big
            else xb.xb_one_h, xb.xb_big_h
          in
          let cost = xb.xb_cost and ctl = xb.xb_ctl in
          (* hooks want per-unit dispatch; max_int disables the chain *)
          let wcost = if st.lno_hooks then xb.xb_wcost else max_int in
          let whole = xb.xb_whole in
          (* tight loop: stay while this frame keeps running this block
             (self-loops included); any frame or block change falls out
             to re-resolve the closure arrays and the plan checks *)
          let inblock = ref true in
          while !inblock do
            if st.lclock >= deadline then begin
              inblock := false;
              running := false
            end
            else begin
              let ip = fr.lfr_ip in
              if ip = 0 && wcost <= deadline - st.lclock then
                (* whole-block chain: ends in the terminator, so only a
                   self-loop back to this block stays in the tight loop *)
                match whole st th fr with
                | Stepped ->
                    if
                      not
                        (fr.lfr_block == b0
                        && (match th.lstack with
                           | top :: _ -> top == fr
                           | [] -> false))
                    then inblock := false
                | Stepped_free -> ()
                | (Blocked | Thread_done | Program_done _) as s ->
                    result := s;
                    inblock := false;
                    running := false
              else
                let f =
                  if Array.unsafe_get cost ip <= deadline - st.lclock then
                    Array.unsafe_get big ip
                  else Array.unsafe_get one ip
                in
                match f st th fr with
                | Stepped ->
                    if
                      Array.unsafe_get ctl ip
                      && not
                           (fr.lfr_block == b0
                           && (match th.lstack with
                              | top :: _ -> top == fr
                              | [] -> false))
                    then inblock := false
                | Stepped_free -> ()
                | (Blocked | Thread_done | Program_done _) as s ->
                    result := s;
                    inblock := false;
                    running := false
            end
          done
        end
  done;
  !result

(* --- construction and the scheduler loop ----------------------------------- *)

let create ?(config = default_config) ?plan (prog : Er_ir.Prog.t)
    (inputs : Inputs.t) : t =
  Inputs.reset inputs;
  let low = Er_ir.Prog.lowered prog in
  let mem = Memory.create () in
  let nfuncs = Array.length low.L.l_funcs in
  let block_base = Array.make (nfuncs + 1) 0 in
  for i = 0 to nfuncs - 1 do
    block_base.(i + 1) <-
      block_base.(i) + Array.length low.L.l_funcs.(i).L.lf_blocks
  done;
  let main_thread =
    { ltid = 0;
      lstack = [ make_lframe low.L.l_funcs.(low.L.l_main) [] ~dst:None ];
      ldepth = 1; lstatus = Runnable }
  in
  let t =
    {
      llow = low;
      lmem = mem;
      linputs = inputs;
      lcfg = config;
      lglobal_ptrs = Array.map (alloc_global_mem mem) low.L.l_globals;
      lmutexes = Hashtbl.create 8;
      lthreads = [ main_thread ];
      lnext_tid = 1;
      lclock = 0;
      lbranches = 0;
      loutputs = [];
      lplan_on = plan <> None;
      lmarks =
        (match plan with Some p -> p.pl_marks | None -> [||]);
      lblock_base = block_base;
      lblk_counts = Array.make block_base.(nfuncs) 0;
      lfexec =
        (match plan with
         | Some _ -> Array.make block_base.(nfuncs) (-1)
         | None -> [||]);
      lresult = None;
      lturn = 0;
      lcur = main_thread;
      lxcode = xcode_of low;
      lno_hooks =
        (match config.hooks with
         | { on_branch = None; on_switch = None; on_ptwrite = None;
             on_input = None; on_store = None; on_alloc = None;
             on_def = None; on_enter = None; on_ret = None } ->
             true
         | _ -> false);
    }
  in
  (* main's entry block is current from clock 0 *)
  if Array.length t.lfexec <> 0 then begin
    let lf = low.L.l_funcs.(low.L.l_main) in
    t.lfexec.(block_base.(lf.L.lf_idx)) <- 0
  end;
  t

let set_plan (t : t) (p : plan) =
  if not t.lplan_on then
    invalid_arg "Vm_state.set_plan: state was created without a plan";
  t.lmarks <- p.pl_marks

(* This state's adjacent-pair retirement counts: every pair of a block
   (terminator included) weighted by the block's retirement count.  The
   mining input for the committed superinstruction set; only as fresh as
   [lblk_counts], which is metrics-gated. *)
let pair_counts t : (string, int) Hashtbl.t =
  let tbl = Hashtbl.create 64 in
  Array.iter
    (fun (lf : L.lfunc) ->
       let base = t.lblock_base.(lf.L.lf_idx) in
       Array.iteri
         (fun bidx _ ->
            let n = t.lblk_counts.(base + bidx) in
            if n > 0 then
              List.iter
                (fun key ->
                   Hashtbl.replace tbl key
                     ((match Hashtbl.find_opt tbl key with
                       | Some c -> c
                       | None -> 0)
                     + n))
                t.lxcode.(lf.L.lf_idx).(bidx).xb_pairs)
         lf.L.lf_blocks)
    t.llow.L.l_funcs;
  tbl

(* Pair counts sorted hottest first (count desc, then key asc for
   deterministic output); what `bench vm --opcode-mix` prints. *)
let opcode_pair_profile t : (string * int) list =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) (pair_counts t) []
  |> List.sort (fun (ka, ca) (kb, cb) ->
         if ca <> cb then compare cb ca else String.compare ka kb)

(* Publish this state's per-block retirement counts into the bounded
   hottest-blocks table, and the derived pair counts into the pair
   table (max per key, so repeated runs of one state just refresh their
   rows). *)
let publish_block_profile t =
  if M.enabled M.default then begin
    Array.iter
      (fun (lf : L.lfunc) ->
         let base = t.lblock_base.(lf.L.lf_idx) in
         Array.iteri
           (fun bidx (blk : L.lblock) ->
              let n = t.lblk_counts.(base + bidx) in
              if n > 0 then
                M.top_observe m_top_blocks
                  ~key:(lf.L.lf_name ^ "/" ^ blk.L.lb_label)
                  n)
           lf.L.lf_blocks)
      t.llow.L.l_funcs;
    Hashtbl.iter
      (fun key n -> M.top_observe m_top_pairs ~key n)
      (pair_counts t)
  end

let finish t ?crashed outcome =
  flush_partial t ~crashed;
  publish_block_profile t;
  t.lresult <-
    Some
      {
        outcome;
        instr_count = t.lclock;
        branch_count = t.lbranches;
        outputs = List.rev t.loutputs;
        peak_mem_cells = Memory.peak_cells t.lmem;
        final_mem = t.lmem;
      }

let emit_switch t th =
  M.inc m_switches;
  match t.lcfg.hooks.on_switch with
  | Some f -> f ~tid:th.ltid ~clock:t.lclock
  | None -> ()

(* pick the next runnable thread after [after] in tid order, if any *)
let pick_next t after =
  (* a joining thread becomes runnable once every other thread is done *)
  List.iter
    (fun th ->
       if
         th.lstatus = Waiting_join
         && List.for_all
              (fun u -> u.ltid = th.ltid || u.lstatus = Done_t)
              t.lthreads
       then th.lstatus <- Runnable)
    t.lthreads;
  let runnable = List.filter (fun th -> th.lstatus = Runnable) t.lthreads in
  match runnable with
  | [] -> None
  | _ ->
      let later = List.filter (fun th -> th.ltid > after) runnable in
      Some (match later with th :: _ -> th | [] -> List.hd runnable)

(* Run until the program finishes or, with [~pause_at:c], until the
   first quantum boundary at clock >= [c] ([None] = paused).  The pause
   point commutes with execution: an uninterrupted run and a run paused
   and resumed any number of times perform the identical step sequence. *)
let run ?pause_at (t : t) : run_result option =
  let config = t.lcfg in
  let pause = match pause_at with None -> max_int | Some c -> c in
  let paused = ref false in
  while Option.is_none t.lresult && not !paused do
    let th = t.lcur in
    let quantum = chunk_quantum config t.lturn in
    t.lturn <- t.lturn + 1;
    let steps = ref 0 in
    let stop = ref false in
    while (not !stop) && !steps < quantum && Option.is_none t.lresult do
      if t.lclock >= config.max_instrs then begin
        let fr = List.hd th.lstack in
        finish t
          (Failed
             { Failure.kind = Failure.Hang; point = lpoint_of fr;
               stack = lstack_of th; thread = th.ltid })
      end
      else if t.lplan_on && fire_pending t th then ()
      else begin
        (* a plan-marked block splits every fused unit: single-step it
           through [lstep_thread] so marks are applied per instruction *)
        let marked =
          t.lplan_on
          && (match th.lstack with
             | fr :: _ ->
                 Array.length
                   t.lmarks.(fr.lfr_func.L.lf_idx).(fr.lfr_block.L.lb_index)
                 <> 0
             | [] -> false)
        in
        if marked then begin
          match lstep_thread t th with
          | exception Crash kind ->
              let fr = List.hd th.lstack in
              finish t ~crashed:th
                (Failed
                   { Failure.kind; point = lpoint_of fr;
                     stack = lstack_of th; thread = th.ltid })
          | Stepped ->
              t.lclock <- t.lclock + 1;
              incr steps
          | Stepped_free -> ()
          | Blocked -> stop := true
          | Thread_done -> stop := true
          | Program_done v ->
              t.lclock <- t.lclock + 1;
              finish t (Finished v)
        end
        else begin
          (* threaded dispatch for as much of the quantum as remains;
             the hang bound caps the budget so the check above fires at
             exactly the reference instruction *)
          let budget = min (quantum - !steps) (config.max_instrs - t.lclock) in
          let c0 = t.lclock in
          match exec_threaded t th ~budget with
          | exception Crash kind ->
              let fr = List.hd th.lstack in
              finish t ~crashed:th
                (Failed
                   { Failure.kind; point = lpoint_of fr;
                     stack = lstack_of th; thread = th.ltid })
          | Stepped | Stepped_free -> steps := !steps + (t.lclock - c0)
          | Blocked | Thread_done ->
              steps := !steps + (t.lclock - c0);
              stop := true
          | Program_done v ->
              steps := !steps + (t.lclock - c0);
              finish t (Finished v)
        end
      end
    done;
    (match t.lresult with
     | Some _ -> ()
     | None -> (
         match pick_next t th.ltid with
         | Some next ->
             if next.ltid <> th.ltid || th.lstatus <> Runnable then begin
               t.lcur <- next;
               if next.ltid <> th.ltid then emit_switch t next
             end
             else t.lcur <- next
         | None ->
             if List.for_all (fun th -> th.lstatus = Done_t) t.lthreads then
               (* main returning sets Program_done, so reaching here with
                  all threads done means main never ran; treat as finish *)
               finish t (Finished None)
             else begin
               let victim =
                 match
                   List.find_opt (fun th -> th.lstatus <> Done_t) t.lthreads
                 with
                 | Some th -> th
                 | None -> assert false
               in
               let point, stack =
                 match victim.lstack with
                 | fr :: _ -> lpoint_of fr, lstack_of victim
                 | [] ->
                     ( { p_func = t.llow.L.l_src.main; p_block = "entry";
                         p_index = 0 }, [] )
               in
               finish t
                 (Failed
                    { Failure.kind = Failure.Deadlock; point;
                      stack; thread = victim.ltid })
             end));
    if Option.is_none t.lresult && t.lclock >= pause then paused := true
  done;
  t.lresult

let run_to_end (t : t) : run_result =
  match run t with Some r -> r | None -> assert false

(* The old [Interp.run]: fresh state, straight to the end. *)
let run_program ?config (prog : Er_ir.Prog.t) (inputs : Inputs.t) : run_result =
  run_to_end (create ?config prog inputs)

(* --- snapshot / revert ----------------------------------------------------- *)

type saved_frame = {
  sf_func : L.lfunc;
  sf_block : L.lblock;
  sf_ip : int;
  sf_regs : Bytes.t;               (* raw 64-bit cells like [lfr_regs] *)
  sf_defined : Bytes.t;
  sf_dst : int option;
  sf_stack_objs : int list;
  sf_pending : int option;
}

type saved_thread = {
  sth_tid : int;
  sth_frames : saved_frame list;
  sth_depth : int;
  sth_status : tstatus;
}

type checkpoint = {
  vck_clock : int;
  vck_branches : int;
  vck_outputs : int64 list;       (* immutable: shared, not copied *)
  vck_turn : int;
  vck_cur : int;                  (* tid of the scheduled thread *)
  vck_next_tid : int;
  vck_threads : saved_thread list;
  vck_mutexes : (int64 * int) list;
  vck_mem : Memory.checkpoint;
  vck_inputs : Inputs.checkpoint;
  vck_fexec : int array;
  (* process-registry VM counter values, for the opt-in metric restore *)
  vck_counters : (M.counter * int) list;
}

let clock_of_checkpoint ck = ck.vck_clock

let save_frame (fr : lframe) : saved_frame =
  {
    sf_func = fr.lfr_func;
    sf_block = fr.lfr_block;
    sf_ip = fr.lfr_ip;
    sf_regs = Bytes.copy fr.lfr_regs;
    sf_defined =
      (if Bytes.length fr.lfr_defined = 0 then empty_defined
       else Bytes.copy fr.lfr_defined);
    sf_dst = fr.lfr_dst;
    sf_stack_objs = fr.lfr_stack_objs;
    sf_pending = fr.lfr_pending;
  }

let restore_frame (sf : saved_frame) : lframe =
  {
    lfr_func = sf.sf_func;
    lfr_block = sf.sf_block;
    lfr_ip = sf.sf_ip;
    lfr_regs = Bytes.copy sf.sf_regs;
    lfr_defined =
      (if Bytes.length sf.sf_defined = 0 then empty_defined
       else Bytes.copy sf.sf_defined);
    lfr_dst = sf.sf_dst;
    lfr_stack_objs = sf.sf_stack_objs;
    lfr_pending = sf.sf_pending;
  }

(* Valid between quanta: before the first [run], or after a paused or
   finished one.  Frames and the store are deep-captured (registers by
   copy, memory by CoW page-table snapshot); any number of checkpoints
   can be live at once and each survives repeated reverts. *)
let snapshot (t : t) : checkpoint =
  {
    vck_clock = t.lclock;
    vck_branches = t.lbranches;
    vck_outputs = t.loutputs;
    vck_turn = t.lturn;
    vck_cur = t.lcur.ltid;
    vck_next_tid = t.lnext_tid;
    vck_threads =
      List.map
        (fun th ->
           { sth_tid = th.ltid;
             sth_frames = List.map save_frame th.lstack;
             sth_depth = th.ldepth;
             sth_status = th.lstatus })
        t.lthreads;
    vck_mutexes = Hashtbl.fold (fun a o acc -> (a, o) :: acc) t.lmutexes [];
    vck_mem = Memory.snapshot t.lmem;
    vck_inputs = Inputs.checkpoint t.linputs;
    vck_fexec = Array.copy t.lfexec;
    vck_counters = List.map (fun c -> (c, M.counter_value c)) vm_counters;
  }

(* Restore the full run state.  Metrics are process-global and shared
   with whatever else ran since the snapshot, so winding the counters
   back is opt-in ([~restore_metrics:true] — used by the bit-identity
   property test); the ER pipeline leaves them monotone. *)
let revert ?(restore_metrics = false) (t : t) (ck : checkpoint) : unit =
  Memory.revert t.lmem ck.vck_mem;
  Inputs.restore t.linputs ck.vck_inputs;
  t.lclock <- ck.vck_clock;
  t.lbranches <- ck.vck_branches;
  t.loutputs <- ck.vck_outputs;
  t.lturn <- ck.vck_turn;
  t.lnext_tid <- ck.vck_next_tid;
  Hashtbl.reset t.lmutexes;
  List.iter (fun (a, o) -> Hashtbl.replace t.lmutexes a o) ck.vck_mutexes;
  t.lthreads <-
    List.map
      (fun sth ->
         { ltid = sth.sth_tid;
           lstack = List.map restore_frame sth.sth_frames;
           ldepth = sth.sth_depth;
           lstatus = sth.sth_status })
      ck.vck_threads;
  t.lcur <- List.find (fun th -> th.ltid = ck.vck_cur) t.lthreads;
  t.lfexec <- Array.copy ck.vck_fexec;
  t.lresult <- None;
  if restore_metrics then
    List.iter
      (fun (c, v) -> M.add c (v - M.counter_value c))
      ck.vck_counters

(* Swap in the next occurrence's stream contents while keeping the
   restored cursors: how a resumed prefix continues under new inputs.
   Only sound when [Inputs.prefix_ok] held for the checkpoint. *)
let swap_inputs (t : t) (fresh : Inputs.t) = Inputs.replace_streams t.linputs fresh

(* --- checkpoint-validity queries ------------------------------------------- *)

(* Clock at which [point]'s block first became current in the state's
   history, [None] if it never did (or the point is unknown).  A
   checkpoint at clock [c] stays valid when a new recording point lands
   in that block iff [c <= first-exec clock]: every retirement of the
   marked instruction then happens after the resume, under the new
   plan. *)
let first_exec_clock (t : t) (p : point) : int option =
  if Array.length t.lfexec = 0 then None
  else
    match Hashtbl.find_opt t.llow.L.l_func_index p.p_func with
    | None -> None
    | Some fidx ->
        let lf = t.llow.L.l_funcs.(fidx) in
        let found = ref None in
        Array.iter
          (fun (b : L.lblock) ->
             if String.equal b.L.lb_label p.p_block then
               found := Some b.L.lb_index)
          lf.L.lf_blocks;
        (match !found with
         | None -> None
         | Some bidx ->
             let c = t.lfexec.(t.lblock_base.(lf.L.lf_idx) + bidx) in
             if c < 0 then None else Some c)

let seed_independent (t : t) = not (has_spawn t.llow)

(* Would the run up to [ck] have consumed the same values under [fresh]'s
   stream contents?  The state's current streams are the old side: they
   are the streams of the run the checkpoint was taken from (kept up to
   date by [swap_inputs] on every resume). *)
let inputs_prefix_ok (t : t) (ck : checkpoint) ~(fresh : Inputs.t) : bool =
  Inputs.prefix_ok ~old:t.linputs ~fresh ck.vck_inputs

(* --- inspection ------------------------------------------------------------ *)

let clock (t : t) = t.lclock
let branches (t : t) = t.lbranches
let result (t : t) = t.lresult
let memory (t : t) = t.lmem
let inputs (t : t) = t.linputs
let outputs_so_far (t : t) = List.rev t.loutputs
let lowered (t : t) = t.llow

type frame_view = {
  fv_func : string;
  fv_block : string;
  fv_ip : int;
  fv_regs : (string * int64) list;   (* defined registers, slot order *)
  fv_pending : string option;        (* register with a pending ptwrite *)
}

type thread_view = {
  tv_tid : int;
  tv_status : tstatus;
  tv_frames : frame_view list;       (* innermost first *)
}

let view_frame (fr : lframe) : frame_view =
  let names = fr.lfr_func.L.lf_reg_of_slot in
  let tracked = Bytes.length fr.lfr_defined <> 0 in
  let regs = ref [] in
  for s = (Bytes.length fr.lfr_regs lsr 3) - 1 downto 0 do
    let defined = (not tracked) || Bytes.get fr.lfr_defined s = '\001' in
    if defined then regs := (names.(s), rget fr s) :: !regs
  done;
  {
    fv_func = fr.lfr_func.L.lf_name;
    fv_block = fr.lfr_block.L.lb_label;
    fv_ip = fr.lfr_ip;
    fv_regs = !regs;
    fv_pending = Option.map (fun s -> names.(s)) fr.lfr_pending;
  }

let threads (t : t) : thread_view list =
  List.map
    (fun th ->
       { tv_tid = th.ltid;
         tv_status = th.lstatus;
         tv_frames = List.map view_frame th.lstack })
    t.lthreads
