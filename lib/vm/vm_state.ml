(* The resumable production engine: all mutable run state of the lowered
   interpreter behind one value, with copy-on-write snapshots.

   This module owns everything [Interp.run] used to keep in closure-local
   refs — threads, frames, the scheduler cursor, the store, input
   cursors — as a first-class [t].  A run can [pause] at quantum
   boundaries, be [snapshot]ted in O(live pages), [revert]ed, and resumed
   under a *different* recording plan and different (prefix-compatible)
   inputs.  That is what makes ER iterations incremental: iteration N+1
   replays only the suffix past the deepest checkpoint that is still
   valid for the new recording-point set.

   Recording points are applied as a *plan* over the base program rather
   than by rewriting it with ptwrite instructions: when a marked
   instruction retires, its frame carries a pending virtual ptwrite that
   fires (as a clock-free step, exactly like an instrumented [Ptwrite])
   before that frame's next step.  Because the executed program is
   constant across iterations, checkpoints never need frame remapping
   when the point set changes.

   Hook invocations and their order, failure reports, outputs and metric
   totals match [Interp.run_reference] bit for bit on instrumented
   programs (the differential suite in test/test_lower.ml pins this
   down), and plan-driven runs match instrumented runs packet for packet
   (test/test_vm_state.ml). *)

open Er_ir.Types
module Sem = Er_smt.Expr     (* shared concrete semantics *)
module M = Er_metrics
module L = Er_ir.Lower

(* --- retirement metrics --------------------------------------------------- *)

(* Counters on the process registry; the step loop checks [M.enabled]
   once per step, so a metrics-off run pays one branch. *)
let instr_counter cls =
  M.counter
    ~labels:[ ("class", cls) ]
    ~help:"Instructions retired, by opcode class." "er_vm_instructions_total"

let m_i_alu = instr_counter "alu"
and m_i_load = instr_counter "load"
and m_i_store = instr_counter "store"
and m_i_mem = instr_counter "mem"
and m_i_call = instr_counter "call"
and m_i_io = instr_counter "io"
and m_i_sync = instr_counter "sync"
and m_i_branch = instr_counter "branch"
and m_i_other = instr_counter "other"

let m_loads = M.counter ~help:"Memory loads executed." "er_vm_loads_total"
let m_stores = M.counter ~help:"Memory stores executed." "er_vm_stores_total"

let m_branches =
  M.counter ~help:"Conditional branches executed." "er_vm_branches_total"

let m_switches =
  M.counter ~help:"Chunk-scheduler thread switches." "er_vm_switches_total"

(* Hot-spot attribution: the blocks retired most often, keyed by
   "func/label".  Per-run counts accumulate in the state (bumped at the
   block-retirement site under the same [M.enabled] branch as the class
   deltas) and are published into the bounded table at run end. *)
let m_top_blocks =
  M.top ~k:8
    ~help:"Hottest lowered blocks by retirement count (func/label)."
    "er_vm_top_block_retired"

let vm_counters =
  [ m_i_alu; m_i_load; m_i_store; m_i_mem; m_i_call; m_i_io; m_i_sync;
    m_i_branch; m_i_other; m_loads; m_stores; m_branches; m_switches ]

let count_instr (i : instr) =
  match i with
  | Bin _ | Cmp _ | Select _ | Cast _ | Gep _ -> M.inc m_i_alu
  | Load _ ->
      M.inc m_i_load;
      M.inc m_loads
  | Store _ ->
      M.inc m_i_store;
      M.inc m_stores
  | Alloc _ | Free _ -> M.inc m_i_mem
  | Call _ -> M.inc m_i_call
  | Input _ | Output _ | Ptwrite _ -> M.inc m_i_io
  | Spawn _ | Join | Lock _ | Unlock _ -> M.inc m_i_sync
  | Assert _ -> M.inc m_i_other

let count_term (t : terminator) =
  match t with
  | Br _ -> M.inc m_i_branch
  | Cond_br _ ->
      M.inc m_i_branch;
      M.inc m_branches
  | Ret _ -> M.inc m_i_call
  | Abort _ | Unreachable -> M.inc m_i_other

(* --- hooks and configuration ---------------------------------------------- *)

type hooks = {
  on_branch : (bool -> unit) option;
  on_switch : (tid:int -> clock:int -> unit) option;
  on_ptwrite : (int64 -> unit) option;
  on_input : (stream:string -> value:int64 -> unit) option;
  on_store :
    (obj:int -> index:int -> old_value:int64 -> new_value:int64 -> unit) option;
  (* allocation sizes are always traced: the analysis engine needs the
     concrete heap layout to replay memory accesses *)
  on_alloc : (int64 -> unit) option;
  (* every register definition with its concrete value: ground truth for
     the REPT accuracy experiment *)
  on_def : (Er_ir.Types.point -> reg:string -> value:int64 -> unit) option;
  (* function boundaries: used by the invariant-inference case study *)
  on_enter : (func:string -> args:int64 list -> unit) option;
  on_ret : (func:string -> value:int64 option -> unit) option;
}

let no_hooks =
  { on_branch = None; on_switch = None; on_ptwrite = None; on_input = None;
    on_store = None; on_alloc = None; on_def = None; on_enter = None;
    on_ret = None }

(* Run two hook sets side by side ([a] first).  Lets the pipeline attach
   event-accounting observers next to the trace encoder hooks without
   either knowing about the other. *)
let compose_hooks (a : hooks) (b : hooks) : hooks =
  let fuse f g wrap =
    match f, g with
    | None, h | h, None -> h
    | Some f, Some g -> Some (wrap f g)
  in
  {
    on_branch = fuse a.on_branch b.on_branch (fun f g x -> f x; g x);
    on_switch =
      fuse a.on_switch b.on_switch (fun f g ~tid ~clock ->
          f ~tid ~clock;
          g ~tid ~clock);
    on_ptwrite = fuse a.on_ptwrite b.on_ptwrite (fun f g x -> f x; g x);
    on_input =
      fuse a.on_input b.on_input (fun f g ~stream ~value ->
          f ~stream ~value;
          g ~stream ~value);
    on_store =
      fuse a.on_store b.on_store (fun f g ~obj ~index ~old_value ~new_value ->
          f ~obj ~index ~old_value ~new_value;
          g ~obj ~index ~old_value ~new_value);
    on_alloc = fuse a.on_alloc b.on_alloc (fun f g x -> f x; g x);
    on_def =
      fuse a.on_def b.on_def (fun f g p ~reg ~value ->
          f p ~reg ~value;
          g p ~reg ~value);
    on_enter =
      fuse a.on_enter b.on_enter (fun f g ~func ~args ->
          f ~func ~args;
          g ~func ~args);
    on_ret =
      fuse a.on_ret b.on_ret (fun f g ~func ~value ->
          f ~func ~value;
          g ~func ~value);
  }

type config = {
  max_instrs : int;
  max_call_depth : int;
  quantum : int;
  quantum_jitter : int;
  sched_seed : int;
  hooks : hooks;
}

let default_config =
  {
    max_instrs = 50_000_000;
    max_call_depth = 512;
    quantum = 60;
    quantum_jitter = 24;
    sched_seed = 0;
    hooks = no_hooks;
  }

type outcome = Finished of int64 option | Failed of Failure.t

type run_result = {
  outcome : outcome;
  instr_count : int;
  branch_count : int;
  outputs : int64 list;
  peak_mem_cells : int;
  final_mem : Memory.t;    (* the core dump available post-mortem *)
}

type tstatus = Runnable | Blocked_lock of int64 | Waiting_join | Done_t

(* Outcome of stepping one thread by one instruction.  [Stepped_free]
   executes without advancing the clock: ptwrite is hardware tracing work,
   not program work, so instrumentation must not perturb the schedule. *)
type step = Stepped | Stepped_free | Blocked | Thread_done | Program_done of int64 option

exception Crash of Failure.kind

(* --- shared evaluation helpers -------------------------------------------- *)

let norm ty v = Er_smt.Ty.truncate (width_of_ty ty) v

let smt_binop : binop -> Sem.binop = function
  | Add -> Sem.Add | Sub -> Sem.Sub | Mul -> Sem.Mul | Udiv -> Sem.Udiv
  | Urem -> Sem.Urem | And -> Sem.And | Or -> Sem.Or | Xor -> Sem.Xor
  | Shl -> Sem.Shl | Lshr -> Sem.Lshr | Ashr -> Sem.Ashr

let eval_cmp op w a b =
  let base o = Sem.eval_cmp o w a b in
  match op with
  | Eq -> base Sem.Eq
  | Ne -> not (base Sem.Eq)
  | Ult -> base Sem.Ult
  | Ule -> base Sem.Ule
  | Ugt -> not (base Sem.Ule)
  | Uge -> not (base Sem.Ult)
  | Slt -> base Sem.Slt
  | Sle -> base Sem.Sle
  | Sgt -> not (base Sem.Sle)
  | Sge -> not (base Sem.Slt)

(* Deterministic per-(seed, chunk#) quantum jitter. *)
let chunk_quantum cfg turn =
  let h = Hashtbl.hash (cfg.sched_seed, turn) in
  let j = if cfg.quantum_jitter = 0 then 0 else (h mod (2 * cfg.quantum_jitter)) - cfg.quantum_jitter in
  max 8 (cfg.quantum + j)

(* Shared by both engines so global allocation order — hence object ids
   and packed pointers — is identical. *)
let alloc_global_mem mem (g : global) : int64 =
  match Memory.alloc mem ~elt_ty:g.g_elt_ty ~size:g.g_size ~heap:true with
  | None -> invalid_arg ("Interp: global too large: " ^ g.gname)
  | Some p ->
      (match g.g_init with
       | None -> ()
       | Some init ->
           Array.iteri
             (fun i v ->
                match
                  Memory.store mem
                    (Memory.ptr ~obj:(Memory.ptr_obj p) ~index:i)
                    ~ty:g.g_elt_ty (norm g.g_elt_ty v)
                with
                | Ok _ -> ()
                | Error _ -> assert false)
             init);
      p

(* --- recording plans ------------------------------------------------------- *)

(* A plan marks instructions of the *base* program for virtual ptwrite
   recording, the plan-mode equivalent of [Instrument.apply] inserting a
   [Ptwrite (Reg dst)] right after each recording point that defines a
   register.  [pl_marks.(fidx).(bidx)] is either [||] (block unmarked) or
   a per-instruction-index array of the destination slot to trace, -1 for
   unmarked indices. *)
type plan = { pl_marks : int array array array }

(* The defined slot of a lowered instruction — mirrors
   [Er_ir.Types.def_of_instr] on the source instruction, so a plan marks
   exactly the points [Instrument.apply] would instrument. *)
let ldef_slot (i : L.linstr) : int option =
  match i with
  | L.LBin { dst; _ } | L.LCmp { dst; _ } | L.LSelect { dst; _ }
  | L.LCast { dst; _ } | L.LLoad { dst; _ } | L.LAlloc { dst; _ }
  | L.LGep { dst; _ } | L.LInput { dst; _ } -> Some dst
  | L.LCall { dst; _ } -> dst
  | L.LStore _ | L.LFree _ | L.LOutput _ | L.LPtwrite _ | L.LAssert _
  | L.LSpawn _ | L.LJoin | L.LLock _ | L.LUnlock _ -> None

let empty_plan (low : L.t) : plan =
  { pl_marks =
      Array.map
        (fun lf -> Array.make (Array.length lf.L.lf_blocks) [||])
        low.L.l_funcs }

let plan_of_points (low : L.t) (points : point list) : plan =
  let plan = empty_plan low in
  List.iter
    (fun (p : point) ->
       match Hashtbl.find_opt low.L.l_func_index p.p_func with
       | None -> ()
       | Some fidx ->
           let lf = low.L.l_funcs.(fidx) in
           Array.iter
             (fun (b : L.lblock) ->
                if String.equal b.L.lb_label p.p_block then begin
                  let n = Array.length b.L.lb_instrs in
                  if p.p_index >= 0 && p.p_index < n then
                    match ldef_slot b.L.lb_instrs.(p.p_index) with
                    | None -> ()    (* point defines nothing: not recordable *)
                    | Some slot ->
                        let row =
                          match plan.pl_marks.(fidx).(b.L.lb_index) with
                          | [||] ->
                              let r = Array.make n (-1) in
                              plan.pl_marks.(fidx).(b.L.lb_index) <- r;
                              r
                          | r -> r
                        in
                        row.(p.p_index) <- slot
                end)
             lf.L.lf_blocks)
    points;
  plan

(* Whether the program can ever create a second thread.  A statically
   spawn-free program is scheduler-seed-independent: quantum boundaries
   are unobservable without thread switches, so a checkpoint taken under
   one seed is valid for a resume under any other. *)
let has_spawn (low : L.t) : bool =
  Array.exists
    (fun (lf : L.lfunc) ->
       Array.exists
         (fun (b : L.lblock) ->
            Array.exists
              (function L.LSpawn _ -> true | _ -> false)
              b.L.lb_instrs)
         lf.L.lf_blocks)
    low.L.l_funcs

(* --- execution state ------------------------------------------------------- *)

type lframe = {
  lfr_func : L.lfunc;
  mutable lfr_block : L.lblock;
  mutable lfr_ip : int;
  lfr_regs : int64 array;
  lfr_defined : Bytes.t;   (* per-slot definedness; length 0 when untracked *)
  lfr_dst : int option;    (* caller slot for the return value *)
  mutable lfr_stack_objs : int list;
  (* slot whose value a virtual ptwrite must trace before this frame's
     next step; set when a plan-marked instruction retires *)
  mutable lfr_pending : int option;
}

type lthread = {
  ltid : int;
  mutable lstack : lframe list;    (* innermost first *)
  mutable ldepth : int;            (* cached [List.length lstack] *)
  mutable lstatus : tstatus;
}

type t = {
  llow : L.t;
  lmem : Memory.t;
  linputs : Inputs.t;
  lcfg : config;
  lglobal_ptrs : int64 array;      (* indexed like [llow.l_globals] *)
  lmutexes : (int64, int) Hashtbl.t;
  mutable lthreads : lthread list;
  mutable lnext_tid : int;
  mutable lclock : int;
  mutable lbranches : int;
  mutable loutputs : int64 list;
  (* recording plan; [lplan_on] is false for plain (instrumented-program)
     runs, which then pay one dead branch per step *)
  mutable lplan_on : bool;
  mutable lmarks : int array array array;
  (* program-wide block uid = lblock_base.(lf_idx) + lb_index *)
  lblock_base : int array;
  (* retirements per block uid (metrics-gated; monotone across reverts
     like the process counters) *)
  lblk_counts : int array;
  (* clock at which each block first became the current block, -1 if
     never; length 0 when not tracked (no plan).  Bounds the checkpoints
     that stay valid when a *new* point lands in that block. *)
  mutable lfexec : int array;
  (* re-enterable scheduler state *)
  mutable lresult : run_result option;
  mutable lturn : int;
  mutable lcur : lthread;
}

let lpoint_of (fr : lframe) =
  { p_func = fr.lfr_func.L.lf_name; p_block = fr.lfr_block.L.lb_label;
    p_index = fr.lfr_ip }

let lstack_of (th : lthread) = List.map lpoint_of th.lstack

let ev_operand st (fr : lframe) (o : L.operand) : int64 =
  match o with
  | L.Oslot s -> Array.unsafe_get fr.lfr_regs s
  | L.Oimm { v; _ } -> v
  | L.Onull -> Memory.null
  | L.Oglobal i -> st.lglobal_ptrs.(i)
  | L.Ocheck { slot; reg } ->
      if Bytes.get fr.lfr_defined slot = '\001' then fr.lfr_regs.(slot)
      else
        invalid_arg
          (Printf.sprintf "Interp: read of undefined register %s in %s" reg
             fr.lfr_func.L.lf_name)

(* Slot write without the on_def hook: return values and parameter
   binding, mirroring the plain [set_reg] of the reference engine. *)
let lset_slot (fr : lframe) slot v =
  fr.lfr_regs.(slot) <- v;
  if Bytes.length fr.lfr_defined <> 0 then Bytes.set fr.lfr_defined slot '\001'

let empty_defined = Bytes.create 0

let make_lframe (lf : L.lfunc) (args : int64 list) ~dst =
  let regs = Array.make lf.L.lf_nslots 0L in
  let defined =
    if lf.L.lf_tracked then Bytes.make lf.L.lf_nslots '\000' else empty_defined
  in
  let fr =
    { lfr_func = lf; lfr_block = lf.L.lf_blocks.(0); lfr_ip = 0;
      lfr_regs = regs; lfr_defined = defined; lfr_dst = dst;
      lfr_stack_objs = []; lfr_pending = None }
  in
  if List.length args <> Array.length lf.L.lf_params then
    invalid_arg (Printf.sprintf "Interp: arity mismatch calling %s" lf.L.lf_name);
  List.iteri
    (fun i v ->
       let slot, ty = lf.L.lf_params.(i) in
       lset_slot fr slot (norm ty v))
    args;
  fr

(* Record that [bidx] of [lf] becomes the current block at the *next*
   clock tick (the jump/call/spawn that installs it is about to retire). *)
let[@inline] record_entry st (lf : L.lfunc) bidx =
  if Array.length st.lfexec <> 0 then begin
    let uid = st.lblock_base.(lf.L.lf_idx) + bidx in
    if Array.unsafe_get st.lfexec uid < 0 then
      Array.unsafe_set st.lfexec uid (st.lclock + 1)
  end

(* One batched add per counter class for a fully retired block
   (instructions + terminator). *)
let flush_delta (d : L.delta) =
  if d.L.d_alu > 0 then M.add m_i_alu d.L.d_alu;
  if d.L.d_load > 0 then begin
    M.add m_i_load d.L.d_load;
    M.add m_loads d.L.d_load
  end;
  if d.L.d_store > 0 then begin
    M.add m_i_store d.L.d_store;
    M.add m_stores d.L.d_store
  end;
  if d.L.d_mem > 0 then M.add m_i_mem d.L.d_mem;
  if d.L.d_call > 0 then M.add m_i_call d.L.d_call;
  if d.L.d_io > 0 then M.add m_i_io d.L.d_io;
  if d.L.d_sync > 0 then M.add m_i_sync d.L.d_sync;
  if d.L.d_branch > 0 then M.add m_i_branch d.L.d_branch;
  if d.L.d_other > 0 then M.add m_i_other d.L.d_other;
  if d.L.d_cond > 0 then M.add m_branches d.L.d_cond

(* At run end, account the partially retired block of every live frame
   so totals equal the reference engine's per-instruction counts.  For
   the frame that raised [Crash] at an instruction, the crashing
   instruction itself was "counted before execution" by the reference
   engine, so include it; a crash at a terminator was already covered by
   the pre-terminator [flush_delta].  A pending-but-never-attempted
   instruction (hang check, blocked sync op) is excluded, again like the
   reference, whose per-attempt counts for blocked ops are instead added
   at each [Blocked] step. *)
let flush_partial st ~(crashed : lthread option) =
  if M.enabled M.default then
    List.iter
      (fun th ->
         List.iteri
           (fun fi fr ->
              let src = fr.lfr_block.L.lb_src in
              let len = Array.length src.instrs in
              let crashed_top =
                (match crashed with Some t -> t == th | None -> false)
                && fi = 0
              in
              let stop =
                if crashed_top then
                  if fr.lfr_ip < len then fr.lfr_ip + 1 else 0
                else min fr.lfr_ip len
              in
              for k = 0 to stop - 1 do
                count_instr src.instrs.(k)
              done)
           th.lstack)
      st.lthreads

let ldo_return st (th : lthread) v : step =
  match th.lstack with
  | [] -> assert false
  | fr :: rest ->
      (match st.lcfg.hooks.on_ret with
       | Some h -> h ~func:fr.lfr_func.L.lf_name ~value:v
       | None -> ());
      List.iter (Memory.release_stack st.lmem) fr.lfr_stack_objs;
      th.lstack <- rest;
      th.ldepth <- th.ldepth - 1;
      (match rest with
       | [] ->
           th.lstatus <- Done_t;
           if th.ltid = 0 then Program_done v else Thread_done
       | caller :: _ ->
           (match fr.lfr_dst, v with
            | Some dst, Some value ->
                lset_slot caller dst
                  (Er_smt.Ty.truncate fr.lfr_func.L.lf_ret_w value)
            | Some dst, None -> lset_slot caller dst 0L
            | None, _ -> ());
           Stepped)

(* Slot write with the on_def hook, the lowered [set_reg]; a top-level
   function so the per-instruction step allocates no closures. *)
let[@inline] lset_reg st (fr : lframe) slot v =
  (match st.lcfg.hooks.on_def with
   | Some h ->
       h (lpoint_of fr) ~reg:fr.lfr_func.L.lf_reg_of_slot.(slot) ~value:v
   | None -> ());
  lset_slot fr slot v

(* Evaluate a call/spawn argument array without the intermediate array
   of [Array.map] — one list allocation, same element order. *)
let ev_args st (fr : lframe) (args : L.operand array) =
  Array.fold_right (fun o acc -> ev_operand st fr o :: acc) args []

let lstep_instr st (th : lthread) (fr : lframe) (i : L.linstr) : step =
  match i with
  | L.LBin { dst; op; w; a; b; _ } ->
      let va = ev_operand st fr a and vb = ev_operand st fr b in
      (match op with
       | Udiv | Urem when Int64.equal (Er_smt.Ty.truncate w vb) 0L ->
           raise (Crash Failure.Div_by_zero)
       | _ -> ());
      lset_reg st fr dst
        (Sem.eval_binop (smt_binop op) w (Er_smt.Ty.truncate w va)
           (Er_smt.Ty.truncate w vb));
      fr.lfr_ip <- fr.lfr_ip + 1;
      Stepped
  | L.LCmp { dst; op; w; a; b; _ } ->
      let r =
        eval_cmp op w (Er_smt.Ty.truncate w (ev_operand st fr a)) (Er_smt.Ty.truncate w (ev_operand st fr b))
      in
      lset_reg st fr dst (if r then 1L else 0L);
      fr.lfr_ip <- fr.lfr_ip + 1;
      Stepped
  | L.LSelect { dst; w; cond; if_true; if_false; _ } ->
      let c = ev_operand st fr cond in
      lset_reg st fr dst
        (Er_smt.Ty.truncate w
           (if Int64.equal (Er_smt.Ty.truncate 1 c) 1L then ev_operand st fr if_true
            else ev_operand st fr if_false));
      fr.lfr_ip <- fr.lfr_ip + 1;
      Stepped
  | L.LCast { dst; kind; to_w; from_w; v; _ } ->
      let value = Er_smt.Ty.truncate from_w (ev_operand st fr v) in
      let out =
        match kind with
        | Zext | Ptrtoint | Inttoptr | Trunc -> Er_smt.Ty.truncate to_w value
        | Sext ->
            Er_smt.Ty.truncate to_w (Er_smt.Ty.sign_extend from_w value)
      in
      lset_reg st fr dst out;
      fr.lfr_ip <- fr.lfr_ip + 1;
      Stepped
  | L.LLoad { dst; ty; addr } ->
      (match Memory.load st.lmem (ev_operand st fr addr) ~ty with
       | Error k -> raise (Crash k)
       | Ok v ->
           lset_reg st fr dst v;
           fr.lfr_ip <- fr.lfr_ip + 1;
           Stepped)
  | L.LStore { ty; w; v; addr } ->
      let value = Er_smt.Ty.truncate w (ev_operand st fr v) in
      (match Memory.store st.lmem (ev_operand st fr addr) ~ty value with
       | Error k -> raise (Crash k)
       | Ok (obj, index, old_value) ->
           (match st.lcfg.hooks.on_store with
            | Some f -> f ~obj ~index ~old_value ~new_value:value
            | None -> ());
           fr.lfr_ip <- fr.lfr_ip + 1;
           Stepped)
  | L.LAlloc { dst; elt_ty; count; heap } ->
      let n = Int64.to_int (ev_operand st fr count) in
      (match st.lcfg.hooks.on_alloc with
       | Some f -> f (Int64.of_int n)
       | None -> ());
      (match Memory.alloc st.lmem ~elt_ty ~size:n ~heap with
       | None -> raise (Crash (Failure.Access_type_error "allocation too large"))
       | Some p ->
           if not heap then
             fr.lfr_stack_objs <- Memory.ptr_obj p :: fr.lfr_stack_objs;
           lset_reg st fr dst p;
           fr.lfr_ip <- fr.lfr_ip + 1;
           Stepped)
  | L.LFree { addr } ->
      (match Memory.free st.lmem (ev_operand st fr addr) with
       | Error k -> raise (Crash k)
       | Ok () ->
           fr.lfr_ip <- fr.lfr_ip + 1;
           Stepped)
  | L.LGep { dst; base; idx } ->
      let p = ev_operand st fr base in
      let i = Int64.to_int (Er_smt.Ty.sign_extend 64 (ev_operand st fr idx)) in
      lset_reg st fr dst
        (Memory.ptr ~obj:(Memory.ptr_obj p) ~index:(Memory.ptr_index p + i));
      fr.lfr_ip <- fr.lfr_ip + 1;
      Stepped
  | L.LCall { dst; fidx; args } ->
      if th.ldepth >= st.lcfg.max_call_depth then
        raise (Crash Failure.Stack_overflow);
      let lf = st.llow.L.l_funcs.(fidx) in
      let vargs = ev_args st fr args in
      (match st.lcfg.hooks.on_enter with
       | Some h -> h ~func:lf.L.lf_name ~args:vargs
       | None -> ());
      fr.lfr_ip <- fr.lfr_ip + 1;    (* return to the next instruction *)
      record_entry st lf 0;
      th.lstack <- make_lframe lf vargs ~dst :: th.lstack;
      th.ldepth <- th.ldepth + 1;
      Stepped
  | L.LInput { dst; ty; stream } ->
      (match Inputs.read st.linputs stream with
       | None -> raise (Crash (Failure.Input_exhausted stream))
       | Some v ->
           let v = norm ty v in
           (match st.lcfg.hooks.on_input with
            | Some f -> f ~stream ~value:v
            | None -> ());
           lset_reg st fr dst v;
           fr.lfr_ip <- fr.lfr_ip + 1;
           Stepped)
  | L.LOutput { v } ->
      st.loutputs <- ev_operand st fr v :: st.loutputs;
      fr.lfr_ip <- fr.lfr_ip + 1;
      Stepped
  | L.LPtwrite { v } ->
      (match st.lcfg.hooks.on_ptwrite with
       | Some f -> f (ev_operand st fr v)
       | None -> ());
      fr.lfr_ip <- fr.lfr_ip + 1;
      Stepped_free
  | L.LAssert { cond; msg } ->
      if Int64.equal (Er_smt.Ty.truncate 1 (ev_operand st fr cond)) 0L then
        raise (Crash (Failure.Assert_failed msg));
      fr.lfr_ip <- fr.lfr_ip + 1;
      Stepped
  | L.LSpawn { fidx; args } ->
      let lf = st.llow.L.l_funcs.(fidx) in
      let vargs = ev_args st fr args in
      record_entry st lf 0;
      let t =
        { ltid = st.lnext_tid; lstack = [ make_lframe lf vargs ~dst:None ];
          ldepth = 1; lstatus = Runnable }
      in
      st.lnext_tid <- st.lnext_tid + 1;
      st.lthreads <- st.lthreads @ [ t ];
      fr.lfr_ip <- fr.lfr_ip + 1;
      Stepped
  | L.LJoin ->
      let others_done =
        List.for_all
          (fun t -> t.ltid = th.ltid || t.lstatus = Done_t)
          st.lthreads
      in
      if others_done then begin
        fr.lfr_ip <- fr.lfr_ip + 1;
        Stepped
      end
      else begin
        th.lstatus <- Waiting_join;
        Blocked
      end
  | L.LLock { addr } ->
      let a = ev_operand st fr addr in
      (match Hashtbl.find_opt st.lmutexes a with
       | Some owner when owner = th.ltid ->
           raise (Crash (Failure.Lock_error "recursive lock"))
       | Some _ ->
           th.lstatus <- Blocked_lock a;
           Blocked
       | None ->
           Hashtbl.replace st.lmutexes a th.ltid;
           fr.lfr_ip <- fr.lfr_ip + 1;
           Stepped)
  | L.LUnlock { addr } ->
      let a = ev_operand st fr addr in
      (match Hashtbl.find_opt st.lmutexes a with
       | Some owner when owner = th.ltid ->
           Hashtbl.remove st.lmutexes a;
           List.iter
             (fun t ->
                match t.lstatus with
                | Blocked_lock a' when Int64.equal a a' -> t.lstatus <- Runnable
                | Blocked_lock _ | Runnable | Waiting_join | Done_t -> ())
             st.lthreads;
           fr.lfr_ip <- fr.lfr_ip + 1;
           Stepped
       | Some _ | None ->
           raise (Crash (Failure.Lock_error "unlock of mutex not held")))

let lstep_term st (th : lthread) (fr : lframe) (t : L.lterm) : step =
  match t with
  | L.LBr i ->
      record_entry st fr.lfr_func i;
      fr.lfr_block <- fr.lfr_func.L.lf_blocks.(i);
      fr.lfr_ip <- 0;
      Stepped
  | L.LCond_br { cond; if_true; if_false } ->
      let c = Int64.equal (Er_smt.Ty.truncate 1 (ev_operand st fr cond)) 1L in
      st.lbranches <- st.lbranches + 1;
      (match st.lcfg.hooks.on_branch with Some f -> f c | None -> ());
      let i = if c then if_true else if_false in
      record_entry st fr.lfr_func i;
      fr.lfr_block <- fr.lfr_func.L.lf_blocks.(i);
      fr.lfr_ip <- 0;
      Stepped
  | L.LRet v -> ldo_return st th (Option.map (ev_operand st fr) v)
  | L.LAbort msg -> raise (Crash (Failure.Abort_called msg))
  | L.LUnreachable -> raise (Crash Failure.Unreachable_reached)

let lstep_thread st (th : lthread) : step =
  match th.lstack with
  | [] ->
      th.lstatus <- Done_t;
      Thread_done
  | fr :: _ ->
      let b = fr.lfr_block in
      if fr.lfr_ip < Array.length b.L.lb_instrs then begin
        let ip = fr.lfr_ip in
        let i = Array.unsafe_get b.L.lb_instrs ip in
        (* the plan mark of this instruction, if any: its defined slot
           becomes a pending virtual ptwrite once the step retires *)
        let mark =
          if st.lplan_on then begin
            let row = st.lmarks.(fr.lfr_func.L.lf_idx).(b.L.lb_index) in
            if Array.length row = 0 then -1 else Array.unsafe_get row ip
          end
          else -1
        in
        match lstep_instr st th fr i with
        | Blocked ->
            (* the reference engine counts a blocked op once per attempt;
               the block delta will cover only the successful retirement *)
            if M.enabled M.default then
              count_instr b.L.lb_src.instrs.(fr.lfr_ip);
            Blocked
        | Stepped as s ->
            if mark >= 0 then fr.lfr_pending <- Some mark;
            s
        | s -> s
      end
      else begin
        (* whole block retires with this terminator: one batched add per
           class, before execution, like the reference's count-then-step *)
        if M.enabled M.default then begin
          flush_delta b.L.lb_delta;
          let uid =
            st.lblock_base.(fr.lfr_func.L.lf_idx) + b.L.lb_index
          in
          st.lblk_counts.(uid) <- st.lblk_counts.(uid) + 1
        end;
        lstep_term st th fr b.L.lb_term
      end

(* Fire the pending virtual ptwrite of [th]'s top frame, if any: exactly
   what an instrumented [Ptwrite (Reg dst)] placed after the marked
   instruction would do, as a clock-free step before the frame's next
   real one (so across calls it fires after the return value binds, and
   across quantum expiry after the thread is rescheduled — the same
   positions the inserted instruction would occupy). *)
let fire_pending st (th : lthread) : bool =
  match th.lstack with
  | ({ lfr_pending = Some slot; _ } as fr) :: _ ->
      fr.lfr_pending <- None;
      (match st.lcfg.hooks.on_ptwrite with
       | Some f -> f fr.lfr_regs.(slot)
       | None -> ());
      if M.enabled M.default then M.inc m_i_io;
      true
  | _ -> false

(* --- construction and the scheduler loop ----------------------------------- *)

let create ?(config = default_config) ?plan (prog : Er_ir.Prog.t)
    (inputs : Inputs.t) : t =
  Inputs.reset inputs;
  let low = Er_ir.Prog.lowered prog in
  let mem = Memory.create () in
  let nfuncs = Array.length low.L.l_funcs in
  let block_base = Array.make (nfuncs + 1) 0 in
  for i = 0 to nfuncs - 1 do
    block_base.(i + 1) <-
      block_base.(i) + Array.length low.L.l_funcs.(i).L.lf_blocks
  done;
  let main_thread =
    { ltid = 0;
      lstack = [ make_lframe low.L.l_funcs.(low.L.l_main) [] ~dst:None ];
      ldepth = 1; lstatus = Runnable }
  in
  let t =
    {
      llow = low;
      lmem = mem;
      linputs = inputs;
      lcfg = config;
      lglobal_ptrs = Array.map (alloc_global_mem mem) low.L.l_globals;
      lmutexes = Hashtbl.create 8;
      lthreads = [ main_thread ];
      lnext_tid = 1;
      lclock = 0;
      lbranches = 0;
      loutputs = [];
      lplan_on = plan <> None;
      lmarks =
        (match plan with Some p -> p.pl_marks | None -> [||]);
      lblock_base = block_base;
      lblk_counts = Array.make block_base.(nfuncs) 0;
      lfexec =
        (match plan with
         | Some _ -> Array.make block_base.(nfuncs) (-1)
         | None -> [||]);
      lresult = None;
      lturn = 0;
      lcur = main_thread;
    }
  in
  (* main's entry block is current from clock 0 *)
  if Array.length t.lfexec <> 0 then begin
    let lf = low.L.l_funcs.(low.L.l_main) in
    t.lfexec.(block_base.(lf.L.lf_idx)) <- 0
  end;
  t

let set_plan (t : t) (p : plan) =
  if not t.lplan_on then
    invalid_arg "Vm_state.set_plan: state was created without a plan";
  t.lmarks <- p.pl_marks

(* Publish this state's per-block retirement counts into the bounded
   hottest-blocks table (max per key, so repeated runs of one state just
   refresh their rows). *)
let publish_block_profile t =
  if M.enabled M.default then
    Array.iter
      (fun (lf : L.lfunc) ->
         let base = t.lblock_base.(lf.L.lf_idx) in
         Array.iteri
           (fun bidx (blk : L.lblock) ->
              let n = t.lblk_counts.(base + bidx) in
              if n > 0 then
                M.top_observe m_top_blocks
                  ~key:(lf.L.lf_name ^ "/" ^ blk.L.lb_label)
                  n)
           lf.L.lf_blocks)
      t.llow.L.l_funcs

let finish t ?crashed outcome =
  flush_partial t ~crashed;
  publish_block_profile t;
  t.lresult <-
    Some
      {
        outcome;
        instr_count = t.lclock;
        branch_count = t.lbranches;
        outputs = List.rev t.loutputs;
        peak_mem_cells = Memory.peak_cells t.lmem;
        final_mem = t.lmem;
      }

let emit_switch t th =
  M.inc m_switches;
  match t.lcfg.hooks.on_switch with
  | Some f -> f ~tid:th.ltid ~clock:t.lclock
  | None -> ()

(* pick the next runnable thread after [after] in tid order, if any *)
let pick_next t after =
  (* a joining thread becomes runnable once every other thread is done *)
  List.iter
    (fun th ->
       if
         th.lstatus = Waiting_join
         && List.for_all
              (fun u -> u.ltid = th.ltid || u.lstatus = Done_t)
              t.lthreads
       then th.lstatus <- Runnable)
    t.lthreads;
  let runnable = List.filter (fun th -> th.lstatus = Runnable) t.lthreads in
  match runnable with
  | [] -> None
  | _ ->
      let later = List.filter (fun th -> th.ltid > after) runnable in
      Some (match later with th :: _ -> th | [] -> List.hd runnable)

(* Run until the program finishes or, with [~pause_at:c], until the
   first quantum boundary at clock >= [c] ([None] = paused).  The pause
   point commutes with execution: an uninterrupted run and a run paused
   and resumed any number of times perform the identical step sequence. *)
let run ?pause_at (t : t) : run_result option =
  let config = t.lcfg in
  let pause = match pause_at with None -> max_int | Some c -> c in
  let paused = ref false in
  while Option.is_none t.lresult && not !paused do
    let th = t.lcur in
    let quantum = chunk_quantum config t.lturn in
    t.lturn <- t.lturn + 1;
    let steps = ref 0 in
    let stop = ref false in
    while (not !stop) && !steps < quantum && Option.is_none t.lresult do
      if t.lclock >= config.max_instrs then begin
        let fr = List.hd th.lstack in
        finish t
          (Failed
             { Failure.kind = Failure.Hang; point = lpoint_of fr;
               stack = lstack_of th; thread = th.ltid })
      end
      else if t.lplan_on && fire_pending t th then ()
      else begin
        match lstep_thread t th with
        | exception Crash kind ->
            let fr = List.hd th.lstack in
            finish t ~crashed:th
              (Failed
                 { Failure.kind; point = lpoint_of fr;
                   stack = lstack_of th; thread = th.ltid })
        | Stepped ->
            t.lclock <- t.lclock + 1;
            incr steps
        | Stepped_free -> ()
        | Blocked -> stop := true
        | Thread_done -> stop := true
        | Program_done v ->
            t.lclock <- t.lclock + 1;
            finish t (Finished v)
      end
    done;
    (match t.lresult with
     | Some _ -> ()
     | None -> (
         match pick_next t th.ltid with
         | Some next ->
             if next.ltid <> th.ltid || th.lstatus <> Runnable then begin
               t.lcur <- next;
               if next.ltid <> th.ltid then emit_switch t next
             end
             else t.lcur <- next
         | None ->
             if List.for_all (fun th -> th.lstatus = Done_t) t.lthreads then
               (* main returning sets Program_done, so reaching here with
                  all threads done means main never ran; treat as finish *)
               finish t (Finished None)
             else begin
               let victim =
                 match
                   List.find_opt (fun th -> th.lstatus <> Done_t) t.lthreads
                 with
                 | Some th -> th
                 | None -> assert false
               in
               let point, stack =
                 match victim.lstack with
                 | fr :: _ -> lpoint_of fr, lstack_of victim
                 | [] ->
                     ( { p_func = t.llow.L.l_src.main; p_block = "entry";
                         p_index = 0 }, [] )
               in
               finish t
                 (Failed
                    { Failure.kind = Failure.Deadlock; point;
                      stack; thread = victim.ltid })
             end));
    if Option.is_none t.lresult && t.lclock >= pause then paused := true
  done;
  t.lresult

let run_to_end (t : t) : run_result =
  match run t with Some r -> r | None -> assert false

(* The old [Interp.run]: fresh state, straight to the end. *)
let run_program ?config (prog : Er_ir.Prog.t) (inputs : Inputs.t) : run_result =
  run_to_end (create ?config prog inputs)

(* --- snapshot / revert ----------------------------------------------------- *)

type saved_frame = {
  sf_func : L.lfunc;
  sf_block : L.lblock;
  sf_ip : int;
  sf_regs : int64 array;
  sf_defined : Bytes.t;
  sf_dst : int option;
  sf_stack_objs : int list;
  sf_pending : int option;
}

type saved_thread = {
  sth_tid : int;
  sth_frames : saved_frame list;
  sth_depth : int;
  sth_status : tstatus;
}

type checkpoint = {
  vck_clock : int;
  vck_branches : int;
  vck_outputs : int64 list;       (* immutable: shared, not copied *)
  vck_turn : int;
  vck_cur : int;                  (* tid of the scheduled thread *)
  vck_next_tid : int;
  vck_threads : saved_thread list;
  vck_mutexes : (int64 * int) list;
  vck_mem : Memory.checkpoint;
  vck_inputs : Inputs.checkpoint;
  vck_fexec : int array;
  (* process-registry VM counter values, for the opt-in metric restore *)
  vck_counters : (M.counter * int) list;
}

let clock_of_checkpoint ck = ck.vck_clock

let save_frame (fr : lframe) : saved_frame =
  {
    sf_func = fr.lfr_func;
    sf_block = fr.lfr_block;
    sf_ip = fr.lfr_ip;
    sf_regs = Array.copy fr.lfr_regs;
    sf_defined =
      (if Bytes.length fr.lfr_defined = 0 then empty_defined
       else Bytes.copy fr.lfr_defined);
    sf_dst = fr.lfr_dst;
    sf_stack_objs = fr.lfr_stack_objs;
    sf_pending = fr.lfr_pending;
  }

let restore_frame (sf : saved_frame) : lframe =
  {
    lfr_func = sf.sf_func;
    lfr_block = sf.sf_block;
    lfr_ip = sf.sf_ip;
    lfr_regs = Array.copy sf.sf_regs;
    lfr_defined =
      (if Bytes.length sf.sf_defined = 0 then empty_defined
       else Bytes.copy sf.sf_defined);
    lfr_dst = sf.sf_dst;
    lfr_stack_objs = sf.sf_stack_objs;
    lfr_pending = sf.sf_pending;
  }

(* Valid between quanta: before the first [run], or after a paused or
   finished one.  Frames and the store are deep-captured (registers by
   copy, memory by CoW page-table snapshot); any number of checkpoints
   can be live at once and each survives repeated reverts. *)
let snapshot (t : t) : checkpoint =
  {
    vck_clock = t.lclock;
    vck_branches = t.lbranches;
    vck_outputs = t.loutputs;
    vck_turn = t.lturn;
    vck_cur = t.lcur.ltid;
    vck_next_tid = t.lnext_tid;
    vck_threads =
      List.map
        (fun th ->
           { sth_tid = th.ltid;
             sth_frames = List.map save_frame th.lstack;
             sth_depth = th.ldepth;
             sth_status = th.lstatus })
        t.lthreads;
    vck_mutexes = Hashtbl.fold (fun a o acc -> (a, o) :: acc) t.lmutexes [];
    vck_mem = Memory.snapshot t.lmem;
    vck_inputs = Inputs.checkpoint t.linputs;
    vck_fexec = Array.copy t.lfexec;
    vck_counters = List.map (fun c -> (c, M.counter_value c)) vm_counters;
  }

(* Restore the full run state.  Metrics are process-global and shared
   with whatever else ran since the snapshot, so winding the counters
   back is opt-in ([~restore_metrics:true] — used by the bit-identity
   property test); the ER pipeline leaves them monotone. *)
let revert ?(restore_metrics = false) (t : t) (ck : checkpoint) : unit =
  Memory.revert t.lmem ck.vck_mem;
  Inputs.restore t.linputs ck.vck_inputs;
  t.lclock <- ck.vck_clock;
  t.lbranches <- ck.vck_branches;
  t.loutputs <- ck.vck_outputs;
  t.lturn <- ck.vck_turn;
  t.lnext_tid <- ck.vck_next_tid;
  Hashtbl.reset t.lmutexes;
  List.iter (fun (a, o) -> Hashtbl.replace t.lmutexes a o) ck.vck_mutexes;
  t.lthreads <-
    List.map
      (fun sth ->
         { ltid = sth.sth_tid;
           lstack = List.map restore_frame sth.sth_frames;
           ldepth = sth.sth_depth;
           lstatus = sth.sth_status })
      ck.vck_threads;
  t.lcur <- List.find (fun th -> th.ltid = ck.vck_cur) t.lthreads;
  t.lfexec <- Array.copy ck.vck_fexec;
  t.lresult <- None;
  if restore_metrics then
    List.iter
      (fun (c, v) -> M.add c (v - M.counter_value c))
      ck.vck_counters

(* Swap in the next occurrence's stream contents while keeping the
   restored cursors: how a resumed prefix continues under new inputs.
   Only sound when [Inputs.prefix_ok] held for the checkpoint. *)
let swap_inputs (t : t) (fresh : Inputs.t) = Inputs.replace_streams t.linputs fresh

(* --- checkpoint-validity queries ------------------------------------------- *)

(* Clock at which [point]'s block first became current in the state's
   history, [None] if it never did (or the point is unknown).  A
   checkpoint at clock [c] stays valid when a new recording point lands
   in that block iff [c <= first-exec clock]: every retirement of the
   marked instruction then happens after the resume, under the new
   plan. *)
let first_exec_clock (t : t) (p : point) : int option =
  if Array.length t.lfexec = 0 then None
  else
    match Hashtbl.find_opt t.llow.L.l_func_index p.p_func with
    | None -> None
    | Some fidx ->
        let lf = t.llow.L.l_funcs.(fidx) in
        let found = ref None in
        Array.iter
          (fun (b : L.lblock) ->
             if String.equal b.L.lb_label p.p_block then
               found := Some b.L.lb_index)
          lf.L.lf_blocks;
        (match !found with
         | None -> None
         | Some bidx ->
             let c = t.lfexec.(t.lblock_base.(lf.L.lf_idx) + bidx) in
             if c < 0 then None else Some c)

let seed_independent (t : t) = not (has_spawn t.llow)

(* Would the run up to [ck] have consumed the same values under [fresh]'s
   stream contents?  The state's current streams are the old side: they
   are the streams of the run the checkpoint was taken from (kept up to
   date by [swap_inputs] on every resume). *)
let inputs_prefix_ok (t : t) (ck : checkpoint) ~(fresh : Inputs.t) : bool =
  Inputs.prefix_ok ~old:t.linputs ~fresh ck.vck_inputs

(* --- inspection ------------------------------------------------------------ *)

let clock (t : t) = t.lclock
let branches (t : t) = t.lbranches
let result (t : t) = t.lresult
let memory (t : t) = t.lmem
let inputs (t : t) = t.linputs
let outputs_so_far (t : t) = List.rev t.loutputs
let lowered (t : t) = t.llow

type frame_view = {
  fv_func : string;
  fv_block : string;
  fv_ip : int;
  fv_regs : (string * int64) list;   (* defined registers, slot order *)
  fv_pending : string option;        (* register with a pending ptwrite *)
}

type thread_view = {
  tv_tid : int;
  tv_status : tstatus;
  tv_frames : frame_view list;       (* innermost first *)
}

let view_frame (fr : lframe) : frame_view =
  let names = fr.lfr_func.L.lf_reg_of_slot in
  let tracked = Bytes.length fr.lfr_defined <> 0 in
  let regs = ref [] in
  for s = Array.length fr.lfr_regs - 1 downto 0 do
    let defined = (not tracked) || Bytes.get fr.lfr_defined s = '\001' in
    if defined then regs := (names.(s), fr.lfr_regs.(s)) :: !regs
  done;
  {
    fv_func = fr.lfr_func.L.lf_name;
    fv_block = fr.lfr_block.L.lb_label;
    fv_ip = fr.lfr_ip;
    fv_regs = !regs;
    fv_pending = Option.map (fun s -> names.(s)) fr.lfr_pending;
  }

let threads (t : t) : thread_view list =
  List.map
    (fun th ->
       { tv_tid = th.ltid;
         tv_status = th.lstatus;
         tv_frames = List.map view_frame th.lstack })
    t.lthreads
