(* Named input streams: the program's sources of nondeterminism.

   Each [input] instruction names a stream ("stdin", "net", "argv", ...)
   and consumes its next value.  A production workload provides concrete
   streams; symbolic execution treats every read as an unconstrained
   symbolic value; a generated test case is precisely a value assignment
   for the reads the failing execution performed. *)

type t = {
  streams : (string, int64 array) Hashtbl.t;
  cursors : (string, int ref) Hashtbl.t;
  (* consumption log, for recording baselines and debugging *)
  mutable consumed : (string * int64) list;
}

let make (streams : (string * int64 list) list) : t =
  let tbl = Hashtbl.create 8 in
  List.iter (fun (name, vals) -> Hashtbl.replace tbl name (Array.of_list vals)) streams;
  { streams = tbl; cursors = Hashtbl.create 8; consumed = [] }

let of_string ~stream s =
  make [ (stream, List.init (String.length s) (fun i -> Int64.of_int (Char.code s.[i]))) ]

let reset t =
  Hashtbl.reset t.cursors;
  t.consumed <- []

let read t stream =
  match Hashtbl.find_opt t.streams stream with
  | None -> None
  | Some arr ->
      let cur =
        match Hashtbl.find_opt t.cursors stream with
        | Some c -> c
        | None ->
            let c = ref 0 in
            Hashtbl.replace t.cursors stream c;
            c
      in
      if !cur >= Array.length arr then None
      else begin
        let v = arr.(!cur) in
        incr cur;
        t.consumed <- (stream, v) :: t.consumed;
        v |> Option.some
      end

let consumed t = List.rev t.consumed

(* --- checkpoint support ------------------------------------------------ *)

type checkpoint = {
  ck_cursors : (string * int) list;
  ck_consumed : (string * int64) list;   (* immutable list: shared, not copied *)
}

let checkpoint t =
  {
    ck_cursors = Hashtbl.fold (fun s c acc -> (s, !c) :: acc) t.cursors [];
    ck_consumed = t.consumed;
  }

let restore t ck =
  Hashtbl.reset t.cursors;
  List.iter (fun (s, v) -> Hashtbl.replace t.cursors s (ref v)) ck.ck_cursors;
  t.consumed <- ck.ck_consumed

(* Swap in another workload's stream contents while keeping cursor
   positions: how an incremental run resumes a checkpointed prefix under
   the next occurrence's inputs. *)
let replace_streams t (src : t) =
  Hashtbl.reset t.streams;
  Hashtbl.iter (fun name arr -> Hashtbl.replace t.streams name arr) src.streams

(* A checkpoint taken while consuming [old] streams describes a valid
   prefix of a run over [fresh] streams iff every stream read so far is
   identical up to its cursor in both workloads. *)
let prefix_ok ~old ~fresh (ck : checkpoint) =
  List.for_all
    (fun (stream, cursor) ->
       cursor = 0
       ||
       match Hashtbl.find_opt old.streams stream,
             Hashtbl.find_opt fresh.streams stream with
       | Some a, Some b ->
           Array.length a >= cursor
           && Array.length b >= cursor
           && (let same = ref true in
               for i = 0 to cursor - 1 do
                 if not (Int64.equal a.(i) b.(i)) then same := false
               done;
               !same)
       | _ -> false)
    ck.ck_cursors

let stream_values t stream =
  match Hashtbl.find_opt t.streams stream with
  | None -> []
  | Some arr -> Array.to_list arr

let streams t =
  Hashtbl.fold (fun name arr acc -> (name, Array.to_list arr) :: acc) t.streams []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Total bytes of input — the amount a full record/replay engine must
   persist. *)
let total_values t =
  Hashtbl.fold (fun _ arr acc -> acc + Array.length arr) t.streams 0

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@]"
    (Fmt.list (fun ppf (name, vals) ->
         Fmt.pf ppf "%s = [%a]" name
           Fmt.(list ~sep:(any "; ") (fun ppf v -> pf ppf "%Ld" v))
           vals))
    (streams t)
