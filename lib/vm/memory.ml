(* Concrete memory: a store of typed objects addressed by (object id,
   cell index), with pointers packed into int64 register values as
   [obj << 32 | index].  Object id 0 is the null object, so the null
   pointer is the integer 0.  Bounds, liveness and access-width checks
   implement the fail-stop crash detection of the runtime.

   Cells are stored in fixed-size pages under a copy-on-write discipline
   so the whole store can be snapshotted in O(live pages' pointers):
   [snapshot] records shallow page-pointer tables plus the scalar
   counters and bumps a generation; the first store into a page whose
   generation is stale copies the page first.  Structural changes
   (allocation, free, stack release) go through an operation journal so
   [revert] can undo them; data writes need no journal entries — the
   checkpoint's page pointers still reference the pre-write pages.
   Checkpoints stay valid across repeated reverts and across later
   snapshots. *)

open Er_ir.Types

(* 256 cells (2 KiB) per page: small enough that CoW copies stay cheap,
   large enough that the two-level indirection stays off profile. *)
let page_bits = 8
let page_cells = 1 lsl page_bits
let page_mask = page_cells - 1

(* Unchecked native-endian 64-bit bytes access: compiler primitives (the
   same ones behind [Bytes.get_int64_ne]), compiled to a single unboxed
   move.  Offsets are in cells; callers guarantee bounds via the ordered
   checks of the access paths. *)
external b64_get : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
external b64_set : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"

let[@inline] pget (page : Bytes.t) off = b64_get page (off lsl 3)
let[@inline] pset (page : Bytes.t) off v = b64_set page (off lsl 3) v

type obj = {
  o_id : int;
  o_elt_ty : ty;
  o_size : int;
  (* int64 cells stored as raw bytes, cell [i] at byte offset [8*i]: a
     store is one unboxed write with no box allocation and no
     caml_modify barrier, a load feeds unboxed int64 arithmetic
     directly, and neither pays a C call.  Access only through
     [pget]/[pset]. *)
  mutable o_pages : Bytes.t array;
  o_pgen : int array;              (* per-page generation of last copy *)
  o_heap : bool;
  mutable o_freed : bool;
}

(* Undo log for structural mutations since a checkpoint. *)
type journal_entry =
  | J_alloc of int                 (* object id to drop on revert *)
  | J_free of int                  (* object id to un-free on revert *)

type t = {
  objects : (int, obj) Hashtbl.t;
  mutable next_id : int;
  mutable live_cells : int;
  mutable peak_cells : int;
  mutable gen : int;               (* bumped at snapshot and revert *)
  mutable journal : journal_entry list;
  mutable journal_len : int;
  (* direct-mapped lookup cache for the exn access path, indexed by
     [id land cache_mask]: hot loops touch a handful of objects
     (induction cell, a global table or two, the current heap record)
     and a field compare beats a Hashtbl probe.  Cached records are the
     live ones (free/un-free mutate them in place), so only [revert] —
     which can remove ids from [objects] and then reuse them — must
     invalidate. *)
  cache : obj array;
}

type checkpoint = {
  ck_next_id : int;
  ck_live_cells : int;
  ck_peak_cells : int;
  ck_journal_len : int;
  (* shallow page-pointer tables of every un-freed object at snapshot
     time; freed objects are immutable (stores fault) so theirs need no
     copy *)
  ck_pages : (int * Bytes.t array) list;
}

(* Never stored in [objects] (ids start at 1), so a cache slot primed
   with it can't produce a false hit: a null pointer (id 0) finds
   [o_id = 0] but always fails the bounds check ([o_size = 0]) and
   resolves through the slow path's precedence-ordered checks. *)
let cache_empty =
  { o_id = 0; o_elt_ty = I64; o_size = 0; o_pages = [||]; o_pgen = [||];
    o_heap = false; o_freed = true }

let cache_slots = 16
let cache_mask = cache_slots - 1

let create () =
  { objects = Hashtbl.create 64; next_id = 1; live_cells = 0; peak_cells = 0;
    gen = 0; journal = []; journal_len = 0;
    cache = Array.make cache_slots cache_empty }

(* --- pointer packing -------------------------------------------------- *)

let ptr ~obj ~index =
  Int64.logor
    (Int64.shift_left (Int64.of_int obj) 32)
    (Int64.logand (Int64.of_int index) 0xFFFFFFFFL)

let ptr_obj (p : int64) = Int64.to_int (Int64.shift_right_logical p 32)

(* index is a signed 32-bit offset so that negative GEPs behave like C *)
let ptr_index (p : int64) = Int64.to_int (Int64.of_int32 (Int64.to_int32 p))

let null = 0L
let is_null p = Int64.equal p 0L

(* --- allocation ------------------------------------------------------- *)

let max_object_cells = 1 lsl 24

(* Structural changes before the first snapshot can never need undoing
   (no checkpoint precedes them), so the journal only starts recording
   once [gen] has been bumped. *)
let journal_push t e =
  if t.gen > 0 then begin
    t.journal <- e :: t.journal;
    t.journal_len <- t.journal_len + 1
  end

let alloc t ~elt_ty ~size ~heap =
  if size < 0 || size > max_object_cells then None
  else begin
    let id = t.next_id in
    t.next_id <- id + 1;
    let cells = max size 1 in
    let npages = (cells + page_mask) lsr page_bits in
    let o =
      { o_id = id; o_elt_ty = elt_ty; o_size = size;
        (* pages are sized exactly — only the last one is partial, and
           in-page offsets never reach past it, so small allocas don't
           pay for a full page *)
        o_pages =
          Array.init npages (fun pg ->
              Bytes.make ((min page_cells (cells - (pg lsl page_bits))) lsl 3)
                '\000');
        o_pgen = Array.make npages t.gen;
        o_heap = heap; o_freed = false }
    in
    Hashtbl.replace t.objects id o;
    journal_push t (J_alloc id);
    t.live_cells <- t.live_cells + size;
    if t.live_cells > t.peak_cells then t.peak_cells <- t.live_cells;
    Some (ptr ~obj:id ~index:0)
  end

let find t id = Hashtbl.find_opt t.objects id

let free t p : (unit, Failure.kind) result =
  if is_null p then Error Failure.Null_deref
  else
    match find t (ptr_obj p) with
    | None -> Error Failure.Invalid_pointer
    | Some o ->
        if o.o_freed then Error (Failure.Double_free { obj = o.o_id })
        else if not o.o_heap then Error Failure.Invalid_pointer
        else begin
          o.o_freed <- true;
          journal_push t (J_free o.o_id);
          t.live_cells <- t.live_cells - o.o_size;
          Ok ()
        end

(* Free a stack object when its frame returns (dangling pointers to it
   then fault as use-after-free). *)
let release_stack t id =
  match find t id with
  | Some o when not o.o_freed ->
      o.o_freed <- true;
      journal_push t (J_free id);
      t.live_cells <- t.live_cells - o.o_size
  | Some _ | None -> ()

(* --- access ------------------------------------------------------------ *)

let check_access t p ~ty : (obj * int, Failure.kind) result =
  if is_null p then Error Failure.Null_deref
  else
    match find t (ptr_obj p) with
    | None -> Error Failure.Invalid_pointer
    | Some o ->
        if o.o_freed then Error (Failure.Use_after_free { obj = o.o_id })
        else begin
          let index = ptr_index p in
          if index < 0 || index >= o.o_size then
            Error (Failure.Out_of_bounds { obj = o.o_id; index; size = o.o_size })
          else if o.o_elt_ty <> ty then
            Error
              (Failure.Access_type_error
                 (Printf.sprintf "object of %s accessed as %s"
                    (ty_name o.o_elt_ty) (ty_name ty)))
          else Ok (o, index)
        end

let load t p ~ty : (int64, Failure.kind) result =
  match check_access t p ~ty with
  | Error e -> Error e
  | Ok (o, index) ->
      (* in bounds by check_access + exact page sizing *)
      Ok
        (pget
           (Array.unsafe_get o.o_pages (index lsr page_bits))
           (index land page_mask))

let store t p ~ty v : (int * int * int64, Failure.kind) result =
  match check_access t p ~ty with
  | Error e -> Error e
  | Ok (o, index) ->
      let pg = index lsr page_bits and off = index land page_mask in
      let page = Array.unsafe_get o.o_pages pg in
      let page =
        (* first write into this page since the last snapshot/revert:
           copy, so checkpoints keep referencing the old page *)
        if Array.unsafe_get o.o_pgen pg = t.gen then page
        else begin
          let fresh = Bytes.copy page in
          Array.unsafe_set o.o_pages pg fresh;
          Array.unsafe_set o.o_pgen pg t.gen;
          fresh
        end
      in
      let old = pget page off in
      pset page off v;
      Ok (o.o_id, index, old)

(* --- exception-based access --------------------------------------------- *)

(* [load]/[store] allocate a result (and a tuple) per access, which
   dominates the threaded dispatcher's memory-op cost.  The [_exn]
   variants perform the identical checks in the identical order —
   null, then invalid pointer, then use-after-free, then bounds, then
   access type — but report faults by exception and return bare values,
   so the hot path is allocation-free.  The hooked/reference paths keep
   the [result] API ([store]'s old-value triple feeds [on_store]). *)

exception Fault of Failure.kind

(* All [ty] constructors are nullary, so physical equality is structural
   equality without the caml_equal call. *)
let[@inline] ty_eq (a : ty) (b : ty) = a == b

(* Out-of-line path: cache miss, or a fast check failed.  Re-runs the
   full precedence-ordered checks (so a sentinel hit on an empty slot,
   a genuinely faulty access, and a mere miss all resolve correctly) and
   refills the object's slot on success. *)
let slow_checked t p ~ty : obj =
  if is_null p then raise (Fault Failure.Null_deref);
  let o =
    match Hashtbl.find t.objects (ptr_obj p) with
    | o -> o
    | exception Not_found -> raise (Fault Failure.Invalid_pointer)
  in
  if o.o_freed then raise (Fault (Failure.Use_after_free { obj = o.o_id }));
  let index = ptr_index p in
  if index < 0 || index >= o.o_size then
    raise (Fault (Failure.Out_of_bounds { obj = o.o_id; index; size = o.o_size }));
  if not (ty_eq o.o_elt_ty ty) then
    raise
      (Fault
         (Failure.Access_type_error
            (Printf.sprintf "object of %s accessed as %s"
               (ty_name o.o_elt_ty) (ty_name ty))));
  Array.unsafe_set t.cache (o.o_id land cache_mask) o;
  o

(* Small enough to inline into the VM's access closures: on a cache hit
   all checks are register compares; everything else falls out of
   line. *)
let[@inline] checked_obj t p ~ty : obj =
  let id = ptr_obj p in
  let o = Array.unsafe_get t.cache (id land cache_mask) in
  if o.o_id = id then begin
    let index = ptr_index p in
    if
      o.o_freed || index < 0 || index >= o.o_size
      || not (ty_eq o.o_elt_ty ty)
    then slow_checked t p ~ty
    else o
  end
  else slow_checked t p ~ty

let[@inline] load_exn t p ~ty : int64 =
  let o = checked_obj t p ~ty in
  let index = ptr_index p in
  (* in bounds by checked_obj + exact page sizing *)
  pget
    (Array.unsafe_get o.o_pages (index lsr page_bits))
    (index land page_mask)

let[@inline] store_exn t p ~ty v : unit =
  let o = checked_obj t p ~ty in
  let index = ptr_index p in
  let pg = index lsr page_bits and off = index land page_mask in
  let page = Array.unsafe_get o.o_pages pg in
  let page =
    if Array.unsafe_get o.o_pgen pg = t.gen then page
    else begin
      let fresh = Bytes.copy page in
      Array.unsafe_set o.o_pages pg fresh;
      Array.unsafe_set o.o_pgen pg t.gen;
      fresh
    end
  in
  pset page off v

(* Raw cell read for post-mortem inspection: no liveness or type checks,
   [None] only when the address is outside any object. *)
let peek t ~obj ~index =
  match find t obj with
  | Some o when index >= 0 && index < o.o_size ->
      Some (pget o.o_pages.(index lsr page_bits) (index land page_mask))
  | Some _ | None -> None

let size_of t id = Option.map (fun o -> o.o_size) (find t id)
let elt_ty_of t id = Option.map (fun o -> o.o_elt_ty) (find t id)
let peak_cells t = t.peak_cells
let object_count t = Hashtbl.length t.objects

let objects t =
  Hashtbl.fold
    (fun id o acc -> (id, o.o_size, o.o_elt_ty, o.o_freed) :: acc)
    t.objects []
  |> List.sort (fun (a, _, _, _) (b, _, _, _) -> compare a b)

(* --- snapshot / revert -------------------------------------------------- *)

let snapshot t : checkpoint =
  let pages =
    Hashtbl.fold
      (fun id o acc ->
         if o.o_freed then acc else (id, Array.copy o.o_pages) :: acc)
      t.objects []
  in
  t.gen <- t.gen + 1;
  {
    ck_next_id = t.next_id;
    ck_live_cells = t.live_cells;
    ck_peak_cells = t.peak_cells;
    ck_journal_len = t.journal_len;
    ck_pages = pages;
  }

let revert t (ck : checkpoint) =
  if ck.ck_journal_len > t.journal_len then
    invalid_arg "Memory.revert: checkpoint from a divergent history";
  (* undo structural changes, newest first *)
  while t.journal_len > ck.ck_journal_len do
    (match t.journal with
     | [] -> assert false
     | e :: rest ->
         (match e with
          | J_alloc id -> Hashtbl.remove t.objects id
          | J_free id -> (
              match find t id with
              | Some o -> o.o_freed <- false
              | None -> ()));
         t.journal <- rest);
    t.journal_len <- t.journal_len - 1
  done;
  (* restore page tables; re-copy the pointer arrays so the checkpoint
     survives further mutation and can be reverted to again *)
  List.iter
    (fun (id, pages) ->
       match find t id with
       | Some o -> o.o_pages <- Array.copy pages
       | None -> ())
    ck.ck_pages;
  t.next_id <- ck.ck_next_id;
  t.live_cells <- ck.ck_live_cells;
  t.peak_cells <- ck.ck_peak_cells;
  (* stale every page generation so the next store copies first: the
     restored pages are shared with the checkpoint *)
  t.gen <- t.gen + 1;
  (* ids removed above may be re-allocated to new records *)
  Array.fill t.cache 0 cache_slots cache_empty
