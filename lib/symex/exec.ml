(* Shepherded symbolic execution (section 3.2).

   The executor replays the decoded runtime trace over the program: every
   conditional branch consumes the next TNT bit and asserts the branch
   condition's outcome; every ptwrite consumes the next PTW value and
   concretizes the instrumented register; thread chunks follow the
   recorded TIP/MTC schedule.  There is no forking — path explosion is
   gone by construction.

   The solver is invoked at symbolic memory accesses and at the final
   failure state.  A budgeted query that returns Unknown is a *stall*
   (the paper's solver timeout), and the executor returns the constraint
   graph so that key data value selection can pick what to record on the
   next failure occurrence. *)

open Er_ir.Types
module Expr = Er_smt.Expr
module Solver = Er_smt.Solver
module Failure_ = Er_vm.Failure
module M = Er_metrics

(* Shepherding metrics; recorded once per [run] (not per step), so the
   hot loop is untouched. *)
let m_steps =
  M.counter ~help:"Shepherded symbolic-execution steps." "er_symex_steps_total"

let m_forks_avoided =
  M.counter
    ~help:"Conditional branches resolved by a trace TNT bit instead of a fork."
    "er_symex_forks_avoided_total"

let m_stalls =
  M.counter ~help:"Shepherded runs that stalled on a solver budget."
    "er_symex_stalls_total"

let m_divergences =
  M.counter ~help:"Shepherded runs that diverged from the trace."
    "er_symex_divergences_total"

let m_completions =
  M.counter ~help:"Shepherded runs that reached the failure and solved it."
    "er_symex_completions_total"

let m_path_constraints =
  M.gauge ~help:"Path-constraint count at the end of the last run."
    "er_symex_path_constraints"

let m_stall_depth =
  M.gauge ~help:"Call-stack depth at the last stall."
    "er_symex_stall_depth"

type config = {
  solver_budget : int;
  gate_budget : int;
  max_steps : int;
  progress_every : int;       (* sample period for Fig 5, in steps *)
  portfolio : int;            (* CDCL configs raced on a stall; 0 = off *)
}

let default_config =
  {
    solver_budget = 600_000;
    gate_budget = 120_000;
    max_steps = 30_000_000;
    progress_every = 1_000;
    portfolio = 0;
  }

type stall_info = {
  graph : Cgraph.t;
  memory : Symmem.t;
  stalled_at : point;
  stall_reason : string;
}

type solution = {
  model : Er_smt.Model.t;
  (* input reads in consumption order: stream, symbolic variable, width *)
  input_log : (string * Expr.t) list;
  path_constraints : Expr.t list;
}

type outcome =
  | Complete of solution
  | Stalled of stall_info
  | Diverged of string

type progress_sample = { ps_steps : int; ps_solver_cost : int }

type result = {
  outcome : outcome;
  steps : int;
  solver_calls : int;
  solver_cost : int;          (* deterministic: gates + propagations *)
  cache_hits : int;           (* solver result-cache hits of this run *)
  cache_misses : int;
  progress : progress_sample list;
}

(* --- executor state ----------------------------------------------------- *)

type frame = {
  fr_func : func;
  mutable fr_block : block;
  mutable fr_ip : int;
  fr_regs : (string, Sval.t) Hashtbl.t;
  fr_dst : reg option;
  mutable fr_stack_objs : int list;
}

type thread = {
  tid : int;
  mutable stack : frame list;
  mutable depth : int;          (* cached [List.length stack] *)
  mutable live : bool;
}

(* Shared executor state, parametric in the thread representation so the
   reference engine (string-keyed frames) and the lowered engine (slot
   arrays over {!Er_ir.Lower}) reuse the same solver plumbing — and
   therefore make byte-identical solver queries. *)
type 'th st = {
  prog : Er_ir.Prog.t;
  cfg : config;
  trace : Er_trace.Decoder.split;
  failure : Failure_.t;
  failure_clock : int;
  graph : Cgraph.t;
  session : Solver.Session.t;   (* one incremental session per run *)
  mem : Symmem.t;
  globals : (string, int) Hashtbl.t;      (* name -> object id *)
  lobjs : int array;            (* global object ids, lowered-index order *)
  mutable threads : 'th list;
  mutable next_tid : int;
  mutable clock : int;
  mutable branch_i : int;
  mutable data_i : int;
  mutable sched_i : int;
  mutable path : Expr.t list;             (* newest first *)
  mutable input_log : (string * Expr.t) list; (* newest first *)
  input_counters : (string, int ref) Hashtbl.t;
  mutable solver_calls : int;
  mutable solver_cost : int;
  mutable progress : progress_sample list;
}

exception Diverge of string
exception Stall of { at : point; reason : string }

(* --- solver helper -------------------------------------------------------- *)

let sample st =
  st.progress <- { ps_steps = st.clock; ps_solver_cost = st.solver_cost } :: st.progress

(* Extend the path constraint: mirror into the run's solver session so
   only the new assertion needs encoding at the next query. *)
let push_path st e =
  st.path <- e :: st.path;
  Solver.Session.push st.session e

(* Query the session with [extra] assertions on top of the path.  With
   [keep], a satisfiable [extra] becomes part of the path (the
   [assert_feasible] protocol); otherwise the extras are popped again.
   The per-query solver cost is the session's *marginal* work — gates
   and propagations this check actually performed. *)
let query st ~at ?(keep = false) extra =
  st.solver_calls <- st.solver_calls + 1;
  List.iter (Solver.Session.push st.session) extra;
  let r, stats = Solver.Session.check st.session in
  st.solver_cost <-
    st.solver_cost + stats.Solver.gates + stats.Solver.propagations;
  sample st;
  match r with
  | Solver.Unknown reason -> raise (Stall { at; reason })
  | Solver.Sat m ->
      if keep then
        List.iter
          (fun e -> if not (Expr.is_true e) then st.path <- e :: st.path)
          extra
      else List.iter (fun _ -> Solver.Session.pop st.session) extra;
      Some m
  | Solver.Unsat ->
      if not keep then List.iter (fun _ -> Solver.Session.pop st.session) extra;
      None

let assert_feasible st ~at ~what extra =
  match query st ~at ~keep:true extra with
  | Some _ -> ()
  | None -> raise (Diverge (Printf.sprintf "infeasible %s at %s" what
                              (point_to_string at)))

(* --- value helpers --------------------------------------------------------- *)

let bvc ~width v = Expr.const ~width v

let norm_expr ty e =
  let w = width_of_ty ty in
  let ew = Expr.width e in
  if ew = w then e
  else if ew > w then Expr.truncate ~to_:w e
  else Expr.zero_extend ~to_:w e

let eval_value st (fr : frame) v : Sval.t =
  match v with
  | Imm (value, ty) -> Sval.Bv (bvc ~width:(width_of_ty ty) value)
  | Null -> Sval.null
  | Global g -> (
      match Hashtbl.find_opt st.globals g with
      | Some obj -> Sval.Ptr { obj; index = bvc ~width:32 0L }
      | None -> invalid_arg ("Exec: unknown global " ^ g))
  | Reg r -> (
      match Hashtbl.find_opt fr.fr_regs r with
      | Some sv -> sv
      | None ->
          invalid_arg
            (Printf.sprintf "Exec: read of undefined register %s in %s" r
               fr.fr_func.fname))

let point_of (fr : frame) =
  { p_func = fr.fr_func.fname; p_block = fr.fr_block.label; p_index = fr.fr_ip }

let set_reg st (fr : frame) r (sv : Sval.t) =
  (* provenance: this register definition is a recordable program point *)
  (match sv with
   | Sval.Bv e -> Cgraph.define st.graph (point_of fr) e
   | Sval.Ptr { index; _ } -> Cgraph.define st.graph (point_of fr) index);
  Hashtbl.replace fr.fr_regs r sv

let smt_binop : binop -> Expr.binop = function
  | Add -> Expr.Add | Sub -> Expr.Sub | Mul -> Expr.Mul | Udiv -> Expr.Udiv
  | Urem -> Expr.Urem | And -> Expr.And | Or -> Expr.Or | Xor -> Expr.Xor
  | Shl -> Expr.Shl | Lshr -> Expr.Lshr | Ashr -> Expr.Ashr

let sym_cmp op ty (a : Sval.t) (b : Sval.t) : Expr.t =
  let ea, eb =
    match a, b with
    | Sval.Ptr { obj = oa; index = ia }, Sval.Ptr { obj = ob; index = ib }
      when oa = ob ->
        (* same-object pointer comparison reduces to index comparison *)
        ia, ib
    | _ -> norm_expr ty (Sval.expect_bv a), norm_expr ty (Sval.expect_bv b)
  in
  match op with
  | Eq -> Expr.eq ea eb
  | Ne -> Expr.ne ea eb
  | Ult -> Expr.ult ea eb
  | Ule -> Expr.ule ea eb
  | Ugt -> Expr.ugt ea eb
  | Uge -> Expr.uge ea eb
  | Slt -> Expr.slt ea eb
  | Sle -> Expr.sle ea eb
  | Sgt -> Expr.sgt ea eb
  | Sge -> Expr.sge ea eb

(* --- memory access ---------------------------------------------------------- *)

(* Resolve an address value to (object, 32-bit index expr).  A symbolic
   packed pointer is concretized to one object via a solver model, the way
   ER's engine resolves symbolic memory accesses to concrete objects. *)
let resolve_addr st ~at (sv : Sval.t) : Symmem.sobj * Expr.t =
  let obj_of id =
    match Symmem.find st.mem id with
    | Some o -> o
    | None -> raise (Diverge (Printf.sprintf "access to unknown object %d" id))
  in
  match sv with
  | Sval.Ptr { obj; index } -> obj_of obj, index
  | Sval.Bv e -> (
      match Sval.decode_ptr e with
      | Sval.Ptr { obj; index } -> obj_of obj, index
      | Sval.Bv e -> (
          (* fully symbolic address: ask the solver for a concrete object *)
          match query st ~at [] with
          | None -> raise (Diverge "path infeasible at address resolution")
          | Some m ->
              let v = Er_smt.Model.eval m e in
              let obj = Er_vm.Memory.ptr_obj v in
              let hi = Expr.extract ~hi:63 ~lo:32 e in
              let pin = Expr.eq hi (bvc ~width:32 (Int64.of_int obj)) in
              push_path st pin;
              obj_of obj, Expr.extract ~hi:31 ~lo:0 e))

(* A non-failing access must be in bounds; with a symbolic index this is
   where the solver gets invoked and where stalls happen. *)
let check_bounds st ~at (o : Symmem.sobj) idx =
  if o.Symmem.s_freed then
    raise (Diverge (Printf.sprintf "access to freed object %d mid-trace" o.Symmem.s_id));
  match Expr.to_const idx with
  | Some v ->
      let i = Int64.to_int v in
      if i < 0 || i >= o.Symmem.s_size then
        raise
          (Diverge
             (Printf.sprintf "concrete out-of-bounds mid-trace (obj %d idx %d)"
                o.Symmem.s_id i))
  | None ->
      let bound = Expr.ult idx (bvc ~width:32 (Int64.of_int o.Symmem.s_size)) in
      assert_feasible st ~at ~what:"memory bounds" [ bound ]

let access_ty_ok (o : Symmem.sobj) ty = o.Symmem.s_elt_ty = ty

(* --- the failing instruction ------------------------------------------------ *)

(* Constraints that make the final instruction fail the way production did. *)
let failure_constraints st (fr : frame) (i : instr option) : Expr.t list =
  let ev v = eval_value st fr v in
  let addr_of = function
    | Load { addr; _ } | Store { addr; _ } | Free { addr } -> Some (ev addr)
    | Bin _ | Cmp _ | Select _ | Cast _ | Alloc _ | Gep _ | Call _ | Input _
    | Output _ | Ptwrite _ | Assert _ | Spawn _ | Join | Lock _ | Unlock _ ->
        None
  in
  match st.failure.Failure_.kind, i with
  | Failure_.Null_deref, Some instr -> (
      match addr_of instr with
      | Some (Sval.Ptr { obj = 0; _ }) -> []
      | Some (Sval.Ptr _) -> raise (Diverge "expected null pointer, got object")
      | Some (Sval.Bv e) -> [ Expr.eq e (bvc ~width:64 0L) ]
      | None -> raise (Diverge "null-deref failure at non-memory instruction"))
  | Failure_.Out_of_bounds _, Some instr -> (
      match addr_of instr with
      | Some sv ->
          let o, idx = resolve_addr st ~at:st.failure.Failure_.point sv in
          [ Expr.uge idx (bvc ~width:32 (Int64.of_int o.Symmem.s_size)) ]
      | None -> raise (Diverge "out-of-bounds failure at non-memory instruction"))
  | Failure_.Use_after_free _, Some instr -> (
      match addr_of instr with
      | Some sv ->
          let o, _ = resolve_addr st ~at:st.failure.Failure_.point sv in
          if o.Symmem.s_freed then []
          else raise (Diverge "expected freed object at failure point")
      | None -> raise (Diverge "use-after-free at non-memory instruction"))
  | Failure_.Double_free _, Some (Free { addr }) -> (
      match resolve_addr st ~at:st.failure.Failure_.point (ev addr) with
      | o, _ when o.Symmem.s_freed -> []
      | _ -> raise (Diverge "expected freed object at double free"))
  | Failure_.Div_by_zero, Some (Bin { ty; b; _ }) ->
      [ Expr.eq (norm_expr ty (Sval.expect_bv (ev b)))
          (bvc ~width:(width_of_ty ty) 0L) ]
  | Failure_.Assert_failed _, Some (Assert { cond; _ }) ->
      [ Expr.eq (norm_expr I1 (Sval.expect_bv (ev cond))) (bvc ~width:1 0L) ]
  | Failure_.Input_exhausted _, _ -> []
  | Failure_.Abort_called _, _ | Failure_.Unreachable_reached, _ -> []
  | Failure_.Access_type_error _, _ | Failure_.Invalid_pointer, _ -> []
  | Failure_.Stack_overflow, _ -> []
  | (Failure_.Deadlock | Failure_.Lock_error _ | Failure_.Hang), _ ->
      raise (Diverge "failure kind not supported by reconstruction")
  | _, None -> []
  | _, Some _ -> raise (Diverge "failure kind does not match failing instruction")

(* --- stepping ---------------------------------------------------------------- *)

type step = Stepped | Stepped_free | Thread_done | Reached_failure

let jump st (fr : frame) label =
  fr.fr_block <- Er_ir.Prog.block st.prog ~func:fr.fr_func.fname ~label;
  fr.fr_ip <- 0

let next_branch st =
  if st.branch_i >= Array.length st.trace.Er_trace.Decoder.branches then
    raise (Diverge "control-flow trace exhausted");
  let b = st.trace.Er_trace.Decoder.branches.(st.branch_i) in
  st.branch_i <- st.branch_i + 1;
  b

let next_data st =
  if st.data_i >= Array.length st.trace.Er_trace.Decoder.data then
    raise (Diverge "data-value trace exhausted");
  let v = st.trace.Er_trace.Decoder.data.(st.data_i) in
  st.data_i <- st.data_i + 1;
  v

let fresh_input st stream ty =
  let c =
    match Hashtbl.find_opt st.input_counters stream with
    | Some c -> c
    | None ->
        let c = ref 0 in
        Hashtbl.replace st.input_counters stream c;
        c
  in
  let name = Printf.sprintf "%s!%d" stream !c in
  incr c;
  let v = Expr.bv_var name ~width:(width_of_ty ty) in
  st.input_log <- (stream, v) :: st.input_log;
  v

let make_frame (f : func) (args : Sval.t list) ~dst =
  let regs = Hashtbl.create 16 in
  (try
     List.iter2
       (fun (r, ty) sv ->
          let sv =
            match sv with
            | Sval.Bv e -> Sval.Bv (norm_expr ty e)
            | Sval.Ptr _ -> sv
          in
          Hashtbl.replace regs r sv)
       f.params args
   with Invalid_argument _ ->
     invalid_arg (Printf.sprintf "Exec: arity mismatch calling %s" f.fname));
  match f.blocks with
  | [] -> assert false
  | entry :: _ ->
      { fr_func = f; fr_block = entry; fr_ip = 0; fr_regs = regs; fr_dst = dst;
        fr_stack_objs = [] }

let do_return st (th : thread) (v : Sval.t option) : step =
  match th.stack with
  | [] -> assert false
  | fr :: rest ->
      List.iter
        (fun id ->
           match Symmem.find st.mem id with
           | Some o -> o.Symmem.s_freed <- true
           | None -> ())
        fr.fr_stack_objs;
      th.stack <- rest;
      th.depth <- th.depth - 1;
      (match rest with
       | [] ->
           th.live <- false;
           Thread_done
       | caller :: _ ->
           (match fr.fr_dst, v with
            | Some dst, Some sv -> set_reg st caller dst sv
            | Some dst, None -> set_reg st caller dst (Sval.of_const ~width:64 0L)
            | None, _ -> ());
           Stepped)

let step_instr st (th : thread) (fr : frame) (i : instr) : step =
  let at = point_of fr in
  let ev v = eval_value st fr v in
  let bv ty v = norm_expr ty (Sval.expect_bv (ev v)) in
  match i with
  | Bin { dst; op; ty; a; b } ->
      let ea = bv ty a and eb = bv ty b in
      (match op with
       | Udiv | Urem ->
           (* the production run did not crash here: divisor was nonzero *)
           if not (Expr.is_const eb) then begin
             let nz = Expr.ne eb (bvc ~width:(width_of_ty ty) 0L) in
             push_path st nz
           end
           else if Int64.equal (Option.get (Expr.to_const eb)) 0L then
             raise (Diverge "concrete division by zero mid-trace")
       | _ -> ());
      (* pointer arithmetic through Bin: keep the object when adding a
         concrete-object pointer and an integer *)
      let result =
        match op, ev a, ev b with
        | Add, Sval.Ptr { obj; index }, other when ty = Ptr ->
            Sval.Ptr { obj; index = Expr.add index (norm_expr I32 (Sval.expect_bv other)) }
        | Add, other, Sval.Ptr { obj; index } when ty = Ptr ->
            Sval.Ptr { obj; index = Expr.add index (norm_expr I32 (Sval.expect_bv other)) }
        | _ -> Sval.Bv (Expr.binop (smt_binop op) ea eb)
      in
      set_reg st fr dst result;
      fr.fr_ip <- fr.fr_ip + 1;
      Stepped
  | Cmp { dst; op; ty; a; b } ->
      set_reg st fr dst (Sval.Bv (sym_cmp op ty (ev a) (ev b)));
      fr.fr_ip <- fr.fr_ip + 1;
      Stepped
  | Select { dst; ty; cond; if_true; if_false } ->
      let c = norm_expr I1 (Sval.expect_bv (ev cond)) in
      let tv = ev if_true and fv = ev if_false in
      let result =
        match Expr.to_const c with
        | Some 1L -> tv
        | Some _ -> fv
        | None -> (
            match tv, fv with
            | Sval.Ptr { obj = ot; index = it }, Sval.Ptr { obj = of_; index = if_ }
              when ot = of_ ->
                Sval.Ptr { obj = ot; index = Expr.ite c it if_ }
            | _ ->
                Sval.Bv
                  (Expr.ite c
                     (norm_expr ty (Sval.expect_bv tv))
                     (norm_expr ty (Sval.expect_bv fv))))
      in
      set_reg st fr dst result;
      fr.fr_ip <- fr.fr_ip + 1;
      Stepped
  | Cast { dst; kind; to_ty; v; from_ty } ->
      let sv = ev v in
      let result =
        match kind, sv with
        | (Ptrtoint | Inttoptr | Zext), Sval.Ptr _ when width_of_ty to_ty = 64 ->
            sv    (* identity on packed pointers *)
        | Inttoptr, Sval.Bv e when width_of_ty to_ty = 64 ->
            Sval.decode_ptr (norm_expr to_ty e)
        | _ ->
            let e = norm_expr from_ty (Sval.expect_bv sv) in
            let out =
              match kind with
              | Zext | Ptrtoint | Inttoptr ->
                  if width_of_ty to_ty >= Expr.width e then
                    Expr.zero_extend ~to_:(width_of_ty to_ty) e
                  else Expr.truncate ~to_:(width_of_ty to_ty) e
              | Trunc -> Expr.truncate ~to_:(width_of_ty to_ty) e
              | Sext -> Expr.sign_extend_e ~to_:(width_of_ty to_ty) e
            in
            Sval.Bv out
      in
      set_reg st fr dst result;
      fr.fr_ip <- fr.fr_ip + 1;
      Stepped
  | Load { dst; ty; addr } ->
      let o, idx = resolve_addr st ~at (ev addr) in
      if not (access_ty_ok o ty) then
        raise (Diverge "access type mismatch mid-trace");
      check_bounds st ~at o idx;
      let e = Symmem.read o idx in
      let sv = if ty = Ptr then Sval.decode_ptr e else Sval.Bv e in
      set_reg st fr dst sv;
      fr.fr_ip <- fr.fr_ip + 1;
      Stepped
  | Store { ty; v; addr } ->
      let o, idx = resolve_addr st ~at (ev addr) in
      if not (access_ty_ok o ty) then
        raise (Diverge "access type mismatch mid-trace");
      check_bounds st ~at o idx;
      Symmem.write o idx (bv ty v);
      fr.fr_ip <- fr.fr_ip + 1;
      Stepped
  | Alloc { dst; elt_ty; count; heap } ->
      (* the runtime always traces allocation sizes; bind the symbolic
         count to the recorded concrete size *)
      let recorded = next_data st in
      let c = bv I32 count in
      (if not (Expr.is_const c) then
         push_path st (Expr.eq c (bvc ~width:32 recorded))
       else if not (Int64.equal (Option.get (Expr.to_const c)) recorded) then
         raise (Diverge "allocation size contradicts trace"));
      let n = Int64.to_int recorded in
      let o = Symmem.alloc st.mem ~elt_ty ~size:n ~heap in
      if not heap then fr.fr_stack_objs <- o.Symmem.s_id :: fr.fr_stack_objs;
      set_reg st fr dst (Sval.Ptr { obj = o.Symmem.s_id; index = bvc ~width:32 0L });
      fr.fr_ip <- fr.fr_ip + 1;
      Stepped
  | Free { addr } ->
      let o, _ = resolve_addr st ~at (ev addr) in
      if o.Symmem.s_freed then raise (Diverge "double free mid-trace");
      o.Symmem.s_freed <- true;
      fr.fr_ip <- fr.fr_ip + 1;
      Stepped
  | Gep { dst; base; idx } ->
      let delta =
        let e = Sval.expect_bv (ev idx) in
        if Expr.width e = 32 then e
        else if Expr.width e > 32 then Expr.truncate ~to_:32 e
        else Expr.sign_extend_e ~to_:32 e
      in
      (match ev base with
       | Sval.Ptr { obj; index } ->
           set_reg st fr dst (Sval.Ptr { obj; index = Expr.add index delta })
       | Sval.Bv e ->
           (match Sval.decode_ptr e with
            | Sval.Ptr { obj; index } ->
                set_reg st fr dst (Sval.Ptr { obj; index = Expr.add index delta })
            | Sval.Bv e ->
                set_reg st fr dst
                  (Sval.Bv (Expr.add e (Expr.zero_extend ~to_:64 delta)))));
      fr.fr_ip <- fr.fr_ip + 1;
      Stepped
  | Call { dst; func; args } ->
      let f = Er_ir.Prog.func st.prog func in
      let vargs = List.map ev args in
      fr.fr_ip <- fr.fr_ip + 1;
      th.stack <- make_frame f vargs ~dst :: th.stack;
      th.depth <- th.depth + 1;
      Stepped
  | Input { dst; ty; stream } ->
      set_reg st fr dst (Sval.Bv (fresh_input st stream ty));
      fr.fr_ip <- fr.fr_ip + 1;
      Stepped
  | Output _ ->
      fr.fr_ip <- fr.fr_ip + 1;
      Stepped
  | Ptwrite { v } ->
      (* consume the recorded value and concretize (section 3.3.3) *)
      let recorded = next_data st in
      (match ev v with
       | Sval.Bv e ->
           let c = bvc ~width:(Expr.width e) recorded in
           if not (Expr.is_const e) then begin
             push_path st (Expr.eq e c);
             (* subsequent uses of the register see the concrete value *)
             (match v with
              | Reg r -> Hashtbl.replace fr.fr_regs r (Sval.Bv c)
              | Imm _ | Global _ | Null -> ())
           end
       | Sval.Ptr { obj; index } ->
           let idx_c = Int64.of_int (Er_vm.Memory.ptr_index recorded) in
           let c = bvc ~width:32 idx_c in
           if not (Expr.is_const index) then begin
             push_path st (Expr.eq index c);
             match v with
             | Reg r -> Hashtbl.replace fr.fr_regs r (Sval.Ptr { obj; index = c })
             | Imm _ | Global _ | Null -> ()
           end);
      fr.fr_ip <- fr.fr_ip + 1;
      Stepped_free
  | Assert { cond; _ } ->
      (* mid-trace asserts passed in production *)
      let c = norm_expr I1 (Sval.expect_bv (ev cond)) in
      if not (Expr.is_true c) then push_path st c;
      fr.fr_ip <- fr.fr_ip + 1;
      Stepped
  | Spawn { func; args } ->
      let f = Er_ir.Prog.func st.prog func in
      let vargs = List.map ev args in
      let t =
        { tid = st.next_tid; stack = [ make_frame f vargs ~dst:None ];
          depth = 1; live = true }
      in
      st.next_tid <- st.next_tid + 1;
      st.threads <- st.threads @ [ t ];
      fr.fr_ip <- fr.fr_ip + 1;
      Stepped
  | Join | Lock _ | Unlock _ ->
      (* synchronization is replayed via the recorded schedule *)
      fr.fr_ip <- fr.fr_ip + 1;
      Stepped

let step_term st (th : thread) (fr : frame) (t : terminator) : step =
  match t with
  | Br l ->
      jump st fr l;
      Stepped
  | Cond_br { cond; if_true; if_false } ->
      let c = norm_expr I1 (Sval.expect_bv (eval_value st fr cond)) in
      let taken = next_branch st in
      (match Expr.to_const c with
       | Some v ->
           if Int64.equal v 1L <> taken then
             raise (Diverge "concrete branch contradicts trace")
       | None ->
           let want = if taken then c else Expr.not_ c in
           push_path st want);
      jump st fr (if taken then if_true else if_false);
      Stepped
  | Ret v -> do_return st th (Option.map (eval_value st fr) v)
  | Abort _ | Unreachable -> Reached_failure

let step_thread st (th : thread) : step =
  match th.stack with
  | [] ->
      th.live <- false;
      Thread_done
  | fr :: _ ->
      if fr.fr_ip < Array.length fr.fr_block.instrs then
        step_instr st th fr fr.fr_block.instrs.(fr.fr_ip)
      else step_term st th fr fr.fr_block.term

(* --- main entry -------------------------------------------------------------- *)

let run_reference ?(config = default_config) (prog : Er_ir.Prog.t)
    ~(trace : Er_trace.Decoder.split) ~(failure : Failure_.t)
    ~(failure_clock : int) : result =
  let st =
    {
      prog;
      cfg = config;
      trace;
      failure;
      failure_clock;
      graph = Cgraph.create ();
      session =
        Solver.Session.create ~budget:config.solver_budget
          ~gate_budget:config.gate_budget ~portfolio:config.portfolio ();
      mem = Symmem.create ();
      globals = Hashtbl.create 16;
      lobjs = [||];
      threads = [];
      next_tid = 1;
      clock = 0;
      branch_i = 0;
      data_i = 0;
      sched_i = 0;
      path = [];
      input_log = [];
      input_counters = Hashtbl.create 8;
      solver_calls = 0;
      solver_cost = 0;
      progress = [];
    }
  in
  (* globals allocate in the same order as the concrete runtime *)
  List.iter
    (fun (g : global) ->
       let o = Symmem.alloc st.mem ~elt_ty:g.g_elt_ty ~size:g.g_size ~heap:true in
       (match g.g_init with
        | None -> ()
        | Some init ->
            Array.iteri (fun i v -> Symmem.init_cell o ~index:i v) init);
       Hashtbl.replace st.globals g.gname o.Symmem.s_id)
    prog.program.globals;
  let main_thread =
    { tid = 0; stack = [ make_frame (Er_ir.Prog.main prog) [] ~dst:None ];
      depth = 1; live = true }
  in
  st.threads <- [ main_thread ];
  let thread_by_id tid =
    match List.find_opt (fun t -> t.tid = tid) st.threads with
    | Some t -> t
    | None -> raise (Diverge (Printf.sprintf "schedule names unknown thread %d" tid))
  in
  let finish outcome =
    if M.enabled M.default then begin
      M.add m_steps st.clock;
      M.add m_forks_avoided st.branch_i;
      M.set m_path_constraints (float_of_int (List.length st.path));
      match outcome with
      | Complete _ -> M.inc m_completions
      | Stalled _ -> M.inc m_stalls
      | Diverged _ -> M.inc m_divergences
    end;
    let cs = Solver.Session.cache_stats st.session in
    {
      outcome;
      steps = st.clock;
      solver_calls = st.solver_calls;
      solver_cost = st.solver_cost;
      cache_hits = cs.Solver.Session.cache_hits;
      cache_misses = cs.Solver.Session.cache_misses;
      progress = List.rev st.progress;
    }
  in
  let result = ref None in
  let cur = ref main_thread in
  (try
     while !result = None do
       (* follow the recorded chunk schedule *)
       (if st.sched_i < Array.length st.trace.Er_trace.Decoder.schedule then begin
          let tid, sw_clock = st.trace.Er_trace.Decoder.schedule.(st.sched_i) in
          if st.clock >= sw_clock then begin
            st.sched_i <- st.sched_i + 1;
            cur := thread_by_id tid
          end
        end);
       let th = !cur in
       if st.clock > st.cfg.max_steps then
         raise (Diverge "step budget exhausted")
       else if
         st.clock = st.failure_clock
         && (match th.stack with
             | fr :: _ ->
                 (* clock-free instrumentation executes before the failing
                    instruction is identified *)
                 not
                   (fr.fr_ip < Array.length fr.fr_block.instrs
                    && match fr.fr_block.instrs.(fr.fr_ip) with
                       | Ptwrite _ -> true
                       | _ -> false)
             | [] -> true)
       then begin
         (* we are at the failing instruction *)
         match th.stack with
         | [] -> raise (Diverge "failure clock reached with empty stack")
         | fr :: _ ->
             let here = point_of fr in
             if point_compare here st.failure.Failure_.point <> 0 then
               raise
                 (Diverge
                    (Printf.sprintf "failure point mismatch: at %s, expected %s"
                       (point_to_string here)
                       (point_to_string st.failure.Failure_.point)));
             let failing_instr =
               if fr.fr_ip < Array.length fr.fr_block.instrs then
                 Some fr.fr_block.instrs.(fr.fr_ip)
               else None
             in
             let fc = failure_constraints st fr failing_instr in
             List.iter (push_path st) (List.rev fc);
             (* final solve: compute failure-inducing inputs *)
             (match query st ~at:here [] with
              | None -> raise (Diverge "final path constraint unsatisfiable")
              | Some model ->
                  Cgraph.set_assertions st.graph st.path;
                  result :=
                    Some
                      (finish
                         (Complete
                            {
                              model;
                              input_log = List.rev st.input_log;
                              path_constraints = st.path;
                            })))
       end
       else begin
         match step_thread st th with
         | Stepped -> st.clock <- st.clock + 1
         | Stepped_free -> ()
         | Thread_done -> (
             (* pick any live thread; the schedule will correct us *)
             match List.find_opt (fun t -> t.live) st.threads with
             | Some t -> cur := t
             | None -> raise (Diverge "all threads done before failure point"))
         | Reached_failure ->
             raise
               (Diverge
                  (Printf.sprintf "reached terminator failure early at clock %d"
                     st.clock))
       end
     done;
     match !result with Some r -> r | None -> assert false
   with
   | Diverge msg -> finish (Diverged msg)
   | Stall { at; reason } ->
       Cgraph.set_assertions st.graph st.path;
       M.set m_stall_depth (float_of_int (!cur).depth);
       finish
         (Stalled
            { graph = st.graph; memory = st.mem; stalled_at = at;
              stall_reason = reason }))

(* ======================================================================== *)
(* Lowered engine                                                           *)
(* ======================================================================== *)

(* Shepherding over the pre-lowered code cache ({!Er_ir.Lower}): register
   files are dense [Sval.t array]s, control flow and call targets are
   array indices.  Every [Expr] construction and every solver query is
   made in exactly the order of the reference engine above, so path
   constraints, constraint-graph provenance, and the deterministic
   solver cost are identical — the corpus differential in
   test/test_lower.ml checks solver_cost equality per bug. *)

module L = Er_ir.Lower

type lframe = {
  lfr_func : L.lfunc;
  mutable lfr_block : L.lblock;
  mutable lfr_ip : int;
  lfr_regs : Sval.t array;
  lfr_defined : Bytes.t;   (* per-slot definedness; length 0 when untracked *)
  lfr_dst : int option;
  mutable lfr_stack_objs : int list;
}

type lthread = {
  ltid : int;
  mutable lstack : lframe list;
  mutable ldepth : int;    (* cached [List.length lstack] *)
  mutable llive : bool;
}

let lpoint_of (fr : lframe) =
  { p_func = fr.lfr_func.L.lf_name; p_block = fr.lfr_block.L.lb_label;
    p_index = fr.lfr_ip }

let lev st (fr : lframe) (o : L.operand) : Sval.t =
  match o with
  | L.Oslot s -> Array.unsafe_get fr.lfr_regs s
  | L.Oimm { v; ity } -> Sval.Bv (bvc ~width:(width_of_ty ity) v)
  | L.Onull -> Sval.null
  | L.Oglobal i -> Sval.Ptr { obj = st.lobjs.(i); index = bvc ~width:32 0L }
  | L.Ocheck { slot; reg } ->
      if Bytes.get fr.lfr_defined slot = '\001' then fr.lfr_regs.(slot)
      else
        invalid_arg
          (Printf.sprintf "Exec: read of undefined register %s in %s" reg
             fr.lfr_func.L.lf_name)

let lset_reg st (fr : lframe) slot (sv : Sval.t) =
  (match sv with
   | Sval.Bv e -> Cgraph.define st.graph (lpoint_of fr) e
   | Sval.Ptr { index; _ } -> Cgraph.define st.graph (lpoint_of fr) index);
  fr.lfr_regs.(slot) <- sv;
  if Bytes.length fr.lfr_defined <> 0 then Bytes.set fr.lfr_defined slot '\001'

let empty_defined = Bytes.create 0

let make_lframe (lf : L.lfunc) (args : Sval.t list) ~dst =
  let regs = Array.make lf.L.lf_nslots Sval.null in
  let defined =
    if lf.L.lf_tracked then Bytes.make lf.L.lf_nslots '\000' else empty_defined
  in
  if List.length args <> Array.length lf.L.lf_params then
    invalid_arg (Printf.sprintf "Exec: arity mismatch calling %s" lf.L.lf_name);
  List.iteri
    (fun i sv ->
       let slot, ty = lf.L.lf_params.(i) in
       let sv =
         match sv with
         | Sval.Bv e -> Sval.Bv (norm_expr ty e)
         | Sval.Ptr _ -> sv
       in
       regs.(slot) <- sv;
       if lf.L.lf_tracked then Bytes.set defined slot '\001')
    args;
  { lfr_func = lf; lfr_block = lf.L.lf_blocks.(0); lfr_ip = 0; lfr_regs = regs;
    lfr_defined = defined; lfr_dst = dst; lfr_stack_objs = [] }

let ldo_return st (th : lthread) (v : Sval.t option) : step =
  match th.lstack with
  | [] -> assert false
  | fr :: rest ->
      List.iter
        (fun id ->
           match Symmem.find st.mem id with
           | Some o -> o.Symmem.s_freed <- true
           | None -> ())
        fr.lfr_stack_objs;
      th.lstack <- rest;
      th.ldepth <- th.ldepth - 1;
      (match rest with
       | [] ->
           th.llive <- false;
           Thread_done
       | caller :: _ ->
           (match fr.lfr_dst, v with
            | Some dst, Some sv -> lset_reg st caller dst sv
            | Some dst, None ->
                lset_reg st caller dst (Sval.of_const ~width:64 0L)
            | None, _ -> ());
           Stepped)

let lfailure_constraints st (fr : lframe) (i : L.linstr option) : Expr.t list =
  let ev o = lev st fr o in
  let addr_of = function
    | L.LLoad { addr; _ } | L.LStore { addr; _ } | L.LFree { addr } ->
        Some (ev addr)
    | L.LBin _ | L.LCmp _ | L.LSelect _ | L.LCast _ | L.LAlloc _ | L.LGep _
    | L.LCall _ | L.LInput _ | L.LOutput _ | L.LPtwrite _ | L.LAssert _
    | L.LSpawn _ | L.LJoin | L.LLock _ | L.LUnlock _ ->
        None
  in
  match st.failure.Failure_.kind, i with
  | Failure_.Null_deref, Some instr -> (
      match addr_of instr with
      | Some (Sval.Ptr { obj = 0; _ }) -> []
      | Some (Sval.Ptr _) -> raise (Diverge "expected null pointer, got object")
      | Some (Sval.Bv e) -> [ Expr.eq e (bvc ~width:64 0L) ]
      | None -> raise (Diverge "null-deref failure at non-memory instruction"))
  | Failure_.Out_of_bounds _, Some instr -> (
      match addr_of instr with
      | Some sv ->
          let o, idx = resolve_addr st ~at:st.failure.Failure_.point sv in
          [ Expr.uge idx (bvc ~width:32 (Int64.of_int o.Symmem.s_size)) ]
      | None -> raise (Diverge "out-of-bounds failure at non-memory instruction"))
  | Failure_.Use_after_free _, Some instr -> (
      match addr_of instr with
      | Some sv ->
          let o, _ = resolve_addr st ~at:st.failure.Failure_.point sv in
          if o.Symmem.s_freed then []
          else raise (Diverge "expected freed object at failure point")
      | None -> raise (Diverge "use-after-free at non-memory instruction"))
  | Failure_.Double_free _, Some (L.LFree { addr }) -> (
      match resolve_addr st ~at:st.failure.Failure_.point (ev addr) with
      | o, _ when o.Symmem.s_freed -> []
      | _ -> raise (Diverge "expected freed object at double free"))
  | Failure_.Div_by_zero, Some (L.LBin { ty; b; _ }) ->
      [ Expr.eq (norm_expr ty (Sval.expect_bv (ev b)))
          (bvc ~width:(width_of_ty ty) 0L) ]
  | Failure_.Assert_failed _, Some (L.LAssert { cond; _ }) ->
      [ Expr.eq (norm_expr I1 (Sval.expect_bv (ev cond))) (bvc ~width:1 0L) ]
  | Failure_.Input_exhausted _, _ -> []
  | Failure_.Abort_called _, _ | Failure_.Unreachable_reached, _ -> []
  | Failure_.Access_type_error _, _ | Failure_.Invalid_pointer, _ -> []
  | Failure_.Stack_overflow, _ -> []
  | (Failure_.Deadlock | Failure_.Lock_error _ | Failure_.Hang), _ ->
      raise (Diverge "failure kind not supported by reconstruction")
  | _, None -> []
  | _, Some _ -> raise (Diverge "failure kind does not match failing instruction")

let lstep_instr st (th : lthread) (fr : lframe) (i : L.linstr) : step =
  let at = lpoint_of fr in
  let ev o = lev st fr o in
  let bv ty o = norm_expr ty (Sval.expect_bv (ev o)) in
  match i with
  | L.LBin { dst; op; ty; a; b; _ } ->
      let ea = bv ty a and eb = bv ty b in
      (match op with
       | Udiv | Urem ->
           if not (Expr.is_const eb) then begin
             let nz = Expr.ne eb (bvc ~width:(width_of_ty ty) 0L) in
             push_path st nz
           end
           else if Int64.equal (Option.get (Expr.to_const eb)) 0L then
             raise (Diverge "concrete division by zero mid-trace")
       | _ -> ());
      let result =
        match op, ev a, ev b with
        | Add, Sval.Ptr { obj; index }, other when ty = Ptr ->
            Sval.Ptr
              { obj;
                index = Expr.add index (norm_expr I32 (Sval.expect_bv other)) }
        | Add, other, Sval.Ptr { obj; index } when ty = Ptr ->
            Sval.Ptr
              { obj;
                index = Expr.add index (norm_expr I32 (Sval.expect_bv other)) }
        | _ -> Sval.Bv (Expr.binop (smt_binop op) ea eb)
      in
      lset_reg st fr dst result;
      fr.lfr_ip <- fr.lfr_ip + 1;
      Stepped
  | L.LCmp { dst; op; ty; a; b; _ } ->
      lset_reg st fr dst (Sval.Bv (sym_cmp op ty (ev a) (ev b)));
      fr.lfr_ip <- fr.lfr_ip + 1;
      Stepped
  | L.LSelect { dst; ty; cond; if_true; if_false; _ } ->
      let c = norm_expr I1 (Sval.expect_bv (ev cond)) in
      let tv = ev if_true and fv = ev if_false in
      let result =
        match Expr.to_const c with
        | Some 1L -> tv
        | Some _ -> fv
        | None -> (
            match tv, fv with
            | Sval.Ptr { obj = ot; index = it }, Sval.Ptr { obj = of_; index = if_ }
              when ot = of_ ->
                Sval.Ptr { obj = ot; index = Expr.ite c it if_ }
            | _ ->
                Sval.Bv
                  (Expr.ite c
                     (norm_expr ty (Sval.expect_bv tv))
                     (norm_expr ty (Sval.expect_bv fv))))
      in
      lset_reg st fr dst result;
      fr.lfr_ip <- fr.lfr_ip + 1;
      Stepped
  | L.LCast { dst; kind; to_ty; from_ty; v; _ } ->
      let sv = ev v in
      let result =
        match kind, sv with
        | (Ptrtoint | Inttoptr | Zext), Sval.Ptr _ when width_of_ty to_ty = 64 ->
            sv    (* identity on packed pointers *)
        | Inttoptr, Sval.Bv e when width_of_ty to_ty = 64 ->
            Sval.decode_ptr (norm_expr to_ty e)
        | _ ->
            let e = norm_expr from_ty (Sval.expect_bv sv) in
            let out =
              match kind with
              | Zext | Ptrtoint | Inttoptr ->
                  if width_of_ty to_ty >= Expr.width e then
                    Expr.zero_extend ~to_:(width_of_ty to_ty) e
                  else Expr.truncate ~to_:(width_of_ty to_ty) e
              | Trunc -> Expr.truncate ~to_:(width_of_ty to_ty) e
              | Sext -> Expr.sign_extend_e ~to_:(width_of_ty to_ty) e
            in
            Sval.Bv out
      in
      lset_reg st fr dst result;
      fr.lfr_ip <- fr.lfr_ip + 1;
      Stepped
  | L.LLoad { dst; ty; addr } ->
      let o, idx = resolve_addr st ~at (ev addr) in
      if not (access_ty_ok o ty) then
        raise (Diverge "access type mismatch mid-trace");
      check_bounds st ~at o idx;
      let e = Symmem.read o idx in
      let sv = if ty = Ptr then Sval.decode_ptr e else Sval.Bv e in
      lset_reg st fr dst sv;
      fr.lfr_ip <- fr.lfr_ip + 1;
      Stepped
  | L.LStore { ty; v; addr; _ } ->
      let o, idx = resolve_addr st ~at (ev addr) in
      if not (access_ty_ok o ty) then
        raise (Diverge "access type mismatch mid-trace");
      check_bounds st ~at o idx;
      Symmem.write o idx (bv ty v);
      fr.lfr_ip <- fr.lfr_ip + 1;
      Stepped
  | L.LAlloc { dst; elt_ty; count; heap } ->
      let recorded = next_data st in
      let c = bv I32 count in
      (if not (Expr.is_const c) then
         push_path st (Expr.eq c (bvc ~width:32 recorded))
       else if not (Int64.equal (Option.get (Expr.to_const c)) recorded) then
         raise (Diverge "allocation size contradicts trace"));
      let n = Int64.to_int recorded in
      let o = Symmem.alloc st.mem ~elt_ty ~size:n ~heap in
      if not heap then fr.lfr_stack_objs <- o.Symmem.s_id :: fr.lfr_stack_objs;
      lset_reg st fr dst
        (Sval.Ptr { obj = o.Symmem.s_id; index = bvc ~width:32 0L });
      fr.lfr_ip <- fr.lfr_ip + 1;
      Stepped
  | L.LFree { addr } ->
      let o, _ = resolve_addr st ~at (ev addr) in
      if o.Symmem.s_freed then raise (Diverge "double free mid-trace");
      o.Symmem.s_freed <- true;
      fr.lfr_ip <- fr.lfr_ip + 1;
      Stepped
  | L.LGep { dst; base; idx } ->
      let delta =
        let e = Sval.expect_bv (ev idx) in
        if Expr.width e = 32 then e
        else if Expr.width e > 32 then Expr.truncate ~to_:32 e
        else Expr.sign_extend_e ~to_:32 e
      in
      (match ev base with
       | Sval.Ptr { obj; index } ->
           lset_reg st fr dst (Sval.Ptr { obj; index = Expr.add index delta })
       | Sval.Bv e ->
           (match Sval.decode_ptr e with
            | Sval.Ptr { obj; index } ->
                lset_reg st fr dst
                  (Sval.Ptr { obj; index = Expr.add index delta })
            | Sval.Bv e ->
                lset_reg st fr dst
                  (Sval.Bv (Expr.add e (Expr.zero_extend ~to_:64 delta)))));
      fr.lfr_ip <- fr.lfr_ip + 1;
      Stepped
  | L.LCall { dst; fidx; args } ->
      let low = Er_ir.Prog.lowered st.prog in
      let lf = low.L.l_funcs.(fidx) in
      let vargs = Array.to_list (Array.map ev args) in
      fr.lfr_ip <- fr.lfr_ip + 1;
      th.lstack <- make_lframe lf vargs ~dst :: th.lstack;
      th.ldepth <- th.ldepth + 1;
      Stepped
  | L.LInput { dst; ty; stream } ->
      lset_reg st fr dst (Sval.Bv (fresh_input st stream ty));
      fr.lfr_ip <- fr.lfr_ip + 1;
      Stepped
  | L.LOutput _ ->
      fr.lfr_ip <- fr.lfr_ip + 1;
      Stepped
  | L.LPtwrite { v } ->
      let recorded = next_data st in
      (match ev v with
       | Sval.Bv e ->
           let c = bvc ~width:(Expr.width e) recorded in
           if not (Expr.is_const e) then begin
             push_path st (Expr.eq e c);
             (* subsequent uses of the register see the concrete value;
                the write is hook-free and provenance-free, like the raw
                [Hashtbl.replace] of the reference engine *)
             (match v with
              | L.Oslot s -> fr.lfr_regs.(s) <- Sval.Bv c
              | L.Ocheck { slot; _ } -> fr.lfr_regs.(slot) <- Sval.Bv c
              | L.Oimm _ | L.Oglobal _ | L.Onull -> ())
           end
       | Sval.Ptr { obj; index } ->
           let idx_c = Int64.of_int (Er_vm.Memory.ptr_index recorded) in
           let c = bvc ~width:32 idx_c in
           if not (Expr.is_const index) then begin
             push_path st (Expr.eq index c);
             match v with
             | L.Oslot s -> fr.lfr_regs.(s) <- Sval.Ptr { obj; index = c }
             | L.Ocheck { slot; _ } ->
                 fr.lfr_regs.(slot) <- Sval.Ptr { obj; index = c }
             | L.Oimm _ | L.Oglobal _ | L.Onull -> ()
           end);
      fr.lfr_ip <- fr.lfr_ip + 1;
      Stepped_free
  | L.LAssert { cond; _ } ->
      let c = norm_expr I1 (Sval.expect_bv (ev cond)) in
      if not (Expr.is_true c) then push_path st c;
      fr.lfr_ip <- fr.lfr_ip + 1;
      Stepped
  | L.LSpawn { fidx; args } ->
      let low = Er_ir.Prog.lowered st.prog in
      let lf = low.L.l_funcs.(fidx) in
      let vargs = Array.to_list (Array.map ev args) in
      let t =
        { ltid = st.next_tid; lstack = [ make_lframe lf vargs ~dst:None ];
          ldepth = 1; llive = true }
      in
      st.next_tid <- st.next_tid + 1;
      st.threads <- st.threads @ [ t ];
      fr.lfr_ip <- fr.lfr_ip + 1;
      Stepped
  | L.LJoin | L.LLock _ | L.LUnlock _ ->
      fr.lfr_ip <- fr.lfr_ip + 1;
      Stepped

let lstep_term st (th : lthread) (fr : lframe) (t : L.lterm) : step =
  match t with
  | L.LBr i ->
      fr.lfr_block <- fr.lfr_func.L.lf_blocks.(i);
      fr.lfr_ip <- 0;
      Stepped
  | L.LCond_br { cond; if_true; if_false } ->
      let c = norm_expr I1 (Sval.expect_bv (lev st fr cond)) in
      let taken = next_branch st in
      (match Expr.to_const c with
       | Some v ->
           if Int64.equal v 1L <> taken then
             raise (Diverge "concrete branch contradicts trace")
       | None ->
           let want = if taken then c else Expr.not_ c in
           push_path st want);
      fr.lfr_block <- fr.lfr_func.L.lf_blocks.(if taken then if_true else if_false);
      fr.lfr_ip <- 0;
      Stepped
  | L.LRet v -> ldo_return st th (Option.map (lev st fr) v)
  | L.LAbort _ | L.LUnreachable -> Reached_failure

let lstep_thread st (th : lthread) : step =
  match th.lstack with
  | [] ->
      th.llive <- false;
      Thread_done
  | fr :: _ ->
      if fr.lfr_ip < Array.length fr.lfr_block.L.lb_instrs then
        lstep_instr st th fr fr.lfr_block.L.lb_instrs.(fr.lfr_ip)
      else lstep_term st th fr fr.lfr_block.L.lb_term

let run ?(config = default_config) (prog : Er_ir.Prog.t)
    ~(trace : Er_trace.Decoder.split) ~(failure : Failure_.t)
    ~(failure_clock : int) : result =
  let low = Er_ir.Prog.lowered prog in
  let st =
    {
      prog;
      cfg = config;
      trace;
      failure;
      failure_clock;
      graph = Cgraph.create ();
      session =
        Solver.Session.create ~budget:config.solver_budget
          ~gate_budget:config.gate_budget ~portfolio:config.portfolio ();
      mem = Symmem.create ();
      globals = Hashtbl.create 16;
      lobjs = Array.make (Array.length low.L.l_globals) 0;
      threads = [];
      next_tid = 1;
      clock = 0;
      branch_i = 0;
      data_i = 0;
      sched_i = 0;
      path = [];
      input_log = [];
      input_counters = Hashtbl.create 8;
      solver_calls = 0;
      solver_cost = 0;
      progress = [];
    }
  in
  (* globals allocate in the same order as the concrete runtime *)
  Array.iteri
    (fun gi (g : global) ->
       let o = Symmem.alloc st.mem ~elt_ty:g.g_elt_ty ~size:g.g_size ~heap:true in
       (match g.g_init with
        | None -> ()
        | Some init ->
            Array.iteri (fun i v -> Symmem.init_cell o ~index:i v) init);
       Hashtbl.replace st.globals g.gname o.Symmem.s_id;
       st.lobjs.(gi) <- o.Symmem.s_id)
    low.L.l_globals;
  let main_thread =
    { ltid = 0;
      lstack = [ make_lframe low.L.l_funcs.(low.L.l_main) [] ~dst:None ];
      ldepth = 1; llive = true }
  in
  st.threads <- [ main_thread ];
  let thread_by_id tid =
    match List.find_opt (fun t -> t.ltid = tid) st.threads with
    | Some t -> t
    | None -> raise (Diverge (Printf.sprintf "schedule names unknown thread %d" tid))
  in
  let finish outcome =
    if M.enabled M.default then begin
      M.add m_steps st.clock;
      M.add m_forks_avoided st.branch_i;
      M.set m_path_constraints (float_of_int (List.length st.path));
      match outcome with
      | Complete _ -> M.inc m_completions
      | Stalled _ -> M.inc m_stalls
      | Diverged _ -> M.inc m_divergences
    end;
    let cs = Solver.Session.cache_stats st.session in
    {
      outcome;
      steps = st.clock;
      solver_calls = st.solver_calls;
      solver_cost = st.solver_cost;
      cache_hits = cs.Solver.Session.cache_hits;
      cache_misses = cs.Solver.Session.cache_misses;
      progress = List.rev st.progress;
    }
  in
  let result = ref None in
  let cur = ref main_thread in
  (try
     while !result = None do
       (* follow the recorded chunk schedule *)
       (if st.sched_i < Array.length st.trace.Er_trace.Decoder.schedule then begin
          let tid, sw_clock = st.trace.Er_trace.Decoder.schedule.(st.sched_i) in
          if st.clock >= sw_clock then begin
            st.sched_i <- st.sched_i + 1;
            cur := thread_by_id tid
          end
        end);
       let th = !cur in
       if st.clock > st.cfg.max_steps then
         raise (Diverge "step budget exhausted")
       else if
         st.clock = st.failure_clock
         && (match th.lstack with
             | fr :: _ ->
                 (* clock-free instrumentation executes before the failing
                    instruction is identified *)
                 not
                   (fr.lfr_ip < Array.length fr.lfr_block.L.lb_instrs
                    && match fr.lfr_block.L.lb_instrs.(fr.lfr_ip) with
                       | L.LPtwrite _ -> true
                       | _ -> false)
             | [] -> true)
       then begin
         (* we are at the failing instruction *)
         match th.lstack with
         | [] -> raise (Diverge "failure clock reached with empty stack")
         | fr :: _ ->
             let here = lpoint_of fr in
             if point_compare here st.failure.Failure_.point <> 0 then
               raise
                 (Diverge
                    (Printf.sprintf "failure point mismatch: at %s, expected %s"
                       (point_to_string here)
                       (point_to_string st.failure.Failure_.point)));
             let failing_instr =
               if fr.lfr_ip < Array.length fr.lfr_block.L.lb_instrs then
                 Some fr.lfr_block.L.lb_instrs.(fr.lfr_ip)
               else None
             in
             let fc = lfailure_constraints st fr failing_instr in
             List.iter (push_path st) (List.rev fc);
             (* final solve: compute failure-inducing inputs *)
             (match query st ~at:here [] with
              | None -> raise (Diverge "final path constraint unsatisfiable")
              | Some model ->
                  Cgraph.set_assertions st.graph st.path;
                  result :=
                    Some
                      (finish
                         (Complete
                            {
                              model;
                              input_log = List.rev st.input_log;
                              path_constraints = st.path;
                            })))
       end
       else begin
         match lstep_thread st th with
         | Stepped -> st.clock <- st.clock + 1
         | Stepped_free -> ()
         | Thread_done -> (
             (* pick any live thread; the schedule will correct us *)
             match List.find_opt (fun t -> t.llive) st.threads with
             | Some t -> cur := t
             | None -> raise (Diverge "all threads done before failure point"))
         | Reached_failure ->
             raise
               (Diverge
                  (Printf.sprintf "reached terminator failure early at clock %d"
                     st.clock))
       end
     done;
     match !result with Some r -> r | None -> assert false
   with
   | Diverge msg -> finish (Diverged msg)
   | Stall { at; reason } ->
       Cgraph.set_assertions st.graph st.path;
       M.set m_stall_depth (float_of_int (!cur).ldepth);
       finish
         (Stalled
            { graph = st.graph; memory = st.mem; stalled_at = at;
              stall_reason = reason }))
