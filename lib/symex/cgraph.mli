(** The constraint graph of section 3.2: the term DAG produced by
    shepherded symbolic execution, annotated with provenance — for each
    term that was the value of an IR register, the program point that
    defined it and how many times that point executed in the trace.

    Key data value selection (section 3.3) runs over this structure:
    provenance is what makes a term *recordable* (ER can only instrument
    register definitions with ptwrite), and the reference counts give
    the recording costs. *)

module Expr = Er_smt.Expr

type prov = {
  pr_point : Er_ir.Types.point;  (** first defining program point *)
  mutable pr_count : int;        (** dynamic executions of that point *)
  pr_width : int;                (** bits *)
}

type t = {
  prov : (int, prov) Hashtbl.t;      (** expr id -> provenance *)
  mutable assertions : Expr.t list;  (** the path constraint at stall time *)
}

val create : unit -> t

(** Record that [e] was just defined by the register write at [point]. *)
val define : t -> Er_ir.Types.point -> Expr.t -> unit

val provenance : t -> Expr.t -> prov option
val set_assertions : t -> Expr.t list -> unit

(** Cost of recording one element: size in bytes times the number of
    times its defining point executed (section 3.3.2). *)
val cost_of : t -> Expr.t -> int option

(** Distinct nodes reachable from the stall-time assertions — the
    "constraint graph size" reported in section 5.3. *)
val node_count : t -> int

(** Edges of the term DAG: one per operand slot of each distinct node. *)
val edge_count : t -> int

val pp_element : t -> Format.formatter -> Expr.t -> unit
