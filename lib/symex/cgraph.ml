(* The constraint graph of section 3.2: the term DAG produced by
   shepherded symbolic execution, annotated with provenance — for each
   term that was the value of an IR register, the program point that
   defined it and how many times that point executed in the trace.

   Key data value selection (section 3.3) runs over this structure:
   provenance is what makes a term *recordable* (ER can only instrument
   register definitions with ptwrite), and the reference counts give the
   recording costs. *)

module Expr = Er_smt.Expr
open Er_ir.Types

type prov = {
  pr_point : point;          (* first defining program point *)
  mutable pr_count : int;    (* dynamic executions of that point *)
  pr_width : int;            (* bits *)
}

type t = {
  prov : (int, prov) Hashtbl.t;       (* expr id -> provenance *)
  mutable assertions : Expr.t list;   (* the path constraint at stall time *)
}

let create () = { prov = Hashtbl.create 1024; assertions = [] }

(* Record that [e] was just defined by the register write at [point]. *)
let define t point (e : Expr.t) =
  if not (Expr.is_const e) then
    match Hashtbl.find_opt t.prov (Expr.id e) with
    | Some p -> p.pr_count <- p.pr_count + 1
    | None ->
        Hashtbl.add t.prov (Expr.id e)
          { pr_point = point; pr_count = 1; pr_width = Expr.width e }

let provenance t e = Hashtbl.find_opt t.prov (Expr.id e)

let set_assertions t assertions = t.assertions <- assertions

(* Cost of recording one element: size in bytes times the number of times
   its defining point executed (section 3.3.2). *)
let cost_of t e =
  match provenance t e with
  | None -> None
  | Some p -> Some (max 1 (p.pr_width / 8) * p.pr_count)

(* Total number of distinct nodes reachable from the stall-time
   assertions — the "constraint graph size" reported in section 5.3. *)
let node_count t =
  Expr.fold_subterms (fun n _ -> n + 1) 0 t.assertions

(* Edges of the term DAG: one per operand slot of each distinct node. *)
let edge_count t =
  Expr.fold_subterms
    (fun n e -> n + List.length (Expr.children e))
    0 t.assertions

let pp_element t ppf e =
  match provenance t e with
  | Some p ->
      Fmt.pf ppf "%a @@ %s (x%d)" Expr.pp e
        (point_to_string p.pr_point) p.pr_count
  | None -> Expr.pp ppf e
