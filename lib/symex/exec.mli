(** Shepherded symbolic execution (paper section 3.2).

    The executor replays a decoded runtime trace over an (instrumented)
    EIR program: conditional branches consume TNT bits and assert the
    branch condition's recorded outcome; [ptwrite] instructions consume
    PTW values and concretize the instrumented register; thread chunks
    follow the recorded TIP/MTC schedule; allocation sizes are bound to
    their traced values.  No forking happens — the recorded control flow
    eliminates path explosion by construction.

    The solver is invoked at symbolic memory accesses and at the final
    failure state; a budget-exhausted query is a {e stall}, returned
    together with the constraint graph for key data value selection. *)

type config = {
  solver_budget : int;        (** SAT work budget per query *)
  gate_budget : int;          (** bit-blasting budget for the whole run *)
  max_steps : int;
  progress_every : int;       (** Fig. 5 sampling period, in steps *)
  portfolio : int;
      (** CDCL configurations raced when a query stalls; 0 disables the
          portfolio (see {!Er_smt.Portfolio}) *)
}

val default_config : config

type stall_info = {
  graph : Cgraph.t;           (** constraint graph at stall time *)
  memory : Symmem.t;          (** symbolic memory with its write chains *)
  stalled_at : Er_ir.Types.point;
  stall_reason : string;
}

type solution = {
  model : Er_smt.Model.t;
  input_log : (string * Er_smt.Expr.t) list;
      (** input reads in consumption order: (stream, symbolic variable) *)
  path_constraints : Er_smt.Expr.t list;
}

type outcome =
  | Complete of solution
  | Stalled of stall_info
  | Diverged of string

type progress_sample = { ps_steps : int; ps_solver_cost : int }

type result = {
  outcome : outcome;
  steps : int;
  solver_calls : int;
  solver_cost : int;
      (** deterministic: gates + propagations actually charged — with the
          incremental session this is the marginal work per query, not a
          re-solve of the whole prefix *)
  cache_hits : int;           (** solver result-cache hits of this run *)
  cache_misses : int;
  progress : progress_sample list;
}

(** [run prog ~trace ~failure ~failure_clock] shepherds symbolic
    execution along [trace] until the instruction at [failure_clock]
    (which must match [failure]'s program point), then solves for
    failure-inducing inputs.

    [run] dispatches over the pre-lowered code cache
    ({!Er_ir.Lower}); {!run_reference} interprets the raw IR with
    string-keyed register files.  Both produce identical outcomes,
    path constraints, and (deterministic) solver costs — the
    differential suite pins this down. *)
val run :
  ?config:config ->
  Er_ir.Prog.t ->
  trace:Er_trace.Decoder.split ->
  failure:Er_vm.Failure.t ->
  failure_clock:int ->
  result

(** The retained reference engine, used by the differential tests and
    the [bench vm] reference timing. *)
val run_reference :
  ?config:config ->
  Er_ir.Prog.t ->
  trace:Er_trace.Decoder.split ->
  failure:Er_vm.Failure.t ->
  failure_clock:int ->
  result
