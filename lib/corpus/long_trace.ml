(* The long-trace workload family: a service whose every run begins with
   a long input-free warmup (table construction) before it touches a
   request.  From-scratch tracing pays the warmup on every production
   run; the incremental tracer checkpoints past it once and resumes each
   later run from the deepest checkpoint still valid — the family the
   `bench longtrace` job measures and gates (incremental >= 1.5x).

   Phase 2 reuses the running example's chained-write abort, so the
   reconstruction stalls once and grows the recording set mid-flight.
   The selected points land in blocks first executed *after* the warmup,
   which is exactly what keeps the warmup checkpoints valid across
   iterations; and the failure only fires on every fourth occurrence, so
   most production runs are traced, found clean, and skipped — the runs
   where resuming pays the most. *)

open Er_ir.Types
module B = Er_ir.Builder

let warmup_iters = 40_000

let program : program =
  let t = B.create () in
  B.global t ~name:"V" ~ty:I32 ~size:256 ();
  B.global t ~name:"T" ~ty:I32 ~size:1024 ();
  (* phase 1: input-free table build; dominates every run's trace *)
  B.func t ~name:"warmup" ~params:[] (fun fb ->
      let k = B.alloca fb I32 (B.i32 1) in
      B.store fb I32 (B.i32 0) k;
      B.br fb "wloop";
      B.block fb "wloop";
      let kv = B.load fb I32 k in
      let more = B.ult fb I32 kv (B.i32 warmup_iters) in
      B.condbr fb more "wbody" "wdone";
      B.block fb "wbody";
      let idx = B.and_ fb I32 kv (B.i32 1023) in
      let mixed = B.mul fb I32 kv (B.i32 2654435761) in
      let p = B.gep fb (B.glob "T") idx in
      B.store fb I32 mixed p;
      let next = B.add fb I32 kv (B.i32 1) in
      B.store fb I32 next k;
      B.br fb "wloop";
      B.block fb "wdone";
      B.ret_void fb);
  (* phase 2: the running example's request handler, verbatim — chained
     writes through V that stall control-flow-only symex *)
  B.func t ~name:"handle"
    ~params:[ ("a", I32); ("b", I32); ("c", I32); ("d", I32) ]
    (fun fb ->
       let a = B.reg "a" and b = B.reg "b" in
       let c = B.reg "c" and d = B.reg "d" in
       let x = B.add fb I32 a b in
       let cx = B.ult fb I32 x (B.i32 256) in
       B.condbr fb cx "check_c" "out";
       B.block fb "check_c";
       let cc = B.ult fb I32 c (B.i32 256) in
       B.condbr fb cc "check_d" "out";
       B.block fb "check_d";
       let cd = B.ult fb I32 d (B.i32 256) in
       B.condbr fb cd "body" "out";
       B.block fb "body";
       let px = B.gep fb (B.glob "V") x in
       B.store fb I32 (B.i32 1) px;
       let pc = B.gep fb (B.glob "V") c in
       let vc = B.load fb I32 pc in
       let z = B.eq fb I32 vc (B.i32 0) in
       B.condbr fb z "set_c" "after_c";
       B.block fb "set_c";
       B.store fb I32 (B.i32 512) pc;
       B.br fb "after_c";
       B.block fb "after_c";
       let vx = B.load fb I32 px in
       let pvx = B.gep fb (B.glob "V") vx in
       B.store fb I32 x pvx;
       let lt = B.ult fb I32 c d in
       B.condbr fb lt "check_vd" "out";
       B.block fb "check_vd";
       let pd = B.gep fb (B.glob "V") d in
       let vd = B.load fb I32 pd in
       let pvd = B.gep fb (B.glob "V") vd in
       let vvd = B.load fb I32 pvd in
       let hit = B.eq fb I32 vvd x in
       B.condbr fb hit "boom" "out";
       B.block fb "boom";
       B.abort fb "V[V[d]] == x";
       B.block fb "out";
       B.ret_void fb);
  B.func t ~name:"main" ~params:[] (fun fb ->
      B.call_void fb "warmup" [];
      let n = B.input fb I32 "argv" in
      let i = B.alloca fb I32 (B.i32 1) in
      B.store fb I32 (B.i32 0) i;
      B.br fb "loop";
      B.block fb "loop";
      let iv = B.load fb I32 i in
      let more = B.ult fb I32 iv n in
      B.condbr fb more "body" "done";
      B.block fb "body";
      let a = B.input fb I32 "argv" in
      let b = B.input fb I32 "argv" in
      let c = B.input fb I32 "argv" in
      let d = B.input fb I32 "argv" in
      B.call_void fb "handle" [ a; b; c; d ];
      let iv' = B.load fb I32 i in
      let next = B.add fb I32 iv' (B.i32 1) in
      B.store fb I32 next i;
      B.br fb "loop";
      B.block fb "done";
      B.ret_void fb);
  B.program t ~main:"main"

(* The failure fires on every 24th occurrence; the many runs in between
   see ordinary traffic with different request values each time (c > d
   keeps the abort branch unreachable), so the tracer records them in
   full and the pipeline skips them — exactly the runs resuming saves.
   The rare-failure rate is what makes re-execution cost dominate: symex
   only analyzes the two failing occurrences, while tracing touches all
   ~48 production runs.  Single-threaded, so the varying scheduler seed
   is immaterial. *)
let failure_period = 24

let failing_workload ~occurrence =
  let inputs =
    if occurrence mod failure_period = 0 then
      Er_vm.Inputs.make [ ("argv", [ 1L; 0L; 2L; 0L; 2L ]) ]
    else begin
      let v = Int64.of_int (occurrence * 7 mod 97) in
      Er_vm.Inputs.make
        [ ( "argv",
            [ 1L; v; Int64.add v 1L; Int64.add v 5L; Int64.add v 2L ] ) ]
    end
  in
  (inputs, occurrence)

(* Performance workload: the warmup followed by many benign requests. *)
let perf_inputs () =
  let vals =
    List.concat_map
      (fun i ->
         let i = Int64.of_int (i mod 200) in
         [ i; Int64.add i 1L; Int64.add i 5L; Int64.add i 2L ])
      (List.init 200 Fun.id)
  in
  Er_vm.Inputs.make [ ("argv", Int64.of_int 200 :: vals) ]

let spec : Bug.spec =
  {
    Bug.name = "long-trace";
    models = "long-trace service (warmup-dominated runs)";
    bug_type = "abort via chained symbolic writes";
    multithreaded = false;
    program;
    failing_workload;
    perf_inputs;
    (* fig3's budgets, so symex stalls on the write chain and the
       recording set grows across iterations; the occurrence bound
       leaves room for two failure periods of mostly-skipped runs *)
    config =
      Bug.config_with ~max_occurrences:64 ~solver_budget:2_500
        ~gate_budget:1_000 ();
  }
