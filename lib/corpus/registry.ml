(* All corpus entries, in the order of the paper's Table 1. *)

let table1 : Bug.spec list =
  [
    Php_2012_2386.spec;
    Php_74194.spec;
    Sqlite_7be932d.spec;
    Sqlite_787fa71.spec;
    Sqlite_4e8e485.spec;
    Nasm_2004_1287.spec;
    Objdump_2018_6323.spec;
    Matrixssl_2014_1569.spec;
    Memcached_2019_11596.spec;
    Libpng_2004_0597.spec;
    Bash_108885.spec;
    Python_2018_1000030.spec;
    Pbzip2.spec;
  ]

let find name =
  List.find_opt (fun (s : Bug.spec) -> String.equal s.Bug.name name) table1

let running_example = Running_example.spec

(* Section 5.4 case-study programs (not part of Table 1). *)
let case_studies : Bug.spec list = [ Coreutils_od.spec; Coreutils_pr.spec ]

(* The long-trace workload family: warmup-dominated runs that the
   incremental tracer resumes past.  Benchmarked by `bench longtrace`;
   deliberately not part of Table 1, whose gates it would skew. *)
let long_trace = Long_trace.spec

let all = table1 @ case_studies @ [ running_example; long_trace ]

let find_any name =
  List.find_opt (fun (s : Bug.spec) -> String.equal s.Bug.name name) all
