(* Minimal JSON — hand-rolled because the container has no json library.
   One shared implementation at the bottom of the dependency graph so
   that the event bus ([Er_core.Events]), the pipeline result renderer,
   the metrics registry ([Er_metrics]) and the bench harness all speak
   the same dialect.  [Er_core.Json] re-exports this module.

   Covers exactly what those clients need: the seven JSON value forms,
   a compact serializer whose float output round-trips every finite
   double, and a strict recursive-descent parser that returns [None] on
   any malformation. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\t' -> Buffer.add_string buf "\\t"
       | '\r' -> Buffer.add_string buf "\\r"
       | c when Char.code c < 0x20 ->
           Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec to_string = function
  | Null -> "null"
  | Bool b -> if b then "true" else "false"
  | Int i -> string_of_int i
  | Float f ->
      (* %.17g round-trips every finite double and stays a JSON number *)
      if Float.is_integer f && Float.abs f < 1e15 then
        Printf.sprintf "%.1f" f
      else Printf.sprintf "%.17g" f
  | Str s -> "\"" ^ escape s ^ "\""
  | List l -> "[" ^ String.concat "," (List.map to_string l) ^ "]"
  | Obj fields ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> "\"" ^ escape k ^ "\":" ^ to_string v) fields)
      ^ "}"

(* recursive-descent parser; returns None on any malformation *)
exception Bad

let parse (s : string) : t option =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = Some c then advance () else raise Bad
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else raise Bad
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then raise Bad;
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then raise Bad);
          (match s.[!pos] with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'n' -> Buffer.add_char buf '\n'
           | 't' -> Buffer.add_char buf '\t'
           | 'r' -> Buffer.add_char buf '\r'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'u' ->
               if !pos + 4 >= n then raise Bad;
               let hex = String.sub s (!pos + 1) 4 in
               let code =
                 try int_of_string ("0x" ^ hex) with _ -> raise Bad
               in
               (* producers only escape control chars, so < 0x80 suffices *)
               if code < 0x80 then Buffer.add_char buf (Char.chr code)
               else raise Bad;
               pos := !pos + 4
           | _ -> raise Bad);
          advance ();
          go ()
      | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> raise Bad)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); fields ((k, v) :: acc)
            | Some '}' -> advance (); List.rev ((k, v) :: acc)
            | _ -> raise Bad
          in
          Obj (fields [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); List [] end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elems (v :: acc)
            | Some ']' -> advance (); List.rev (v :: acc)
            | _ -> raise Bad
          in
          List (elems [])
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
    | None -> raise Bad
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos = n then Some v else None
  with Bad | Invalid_argument _ -> None

(* --- small accessors shared by consumers of parsed documents ------- *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List l -> Some l | _ -> None
let to_obj = function Obj fields -> Some fields | _ -> None
