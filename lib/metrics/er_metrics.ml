(* Cross-layer metrics and profiling registry.

   ER's argument is quantitative — overhead, trace bytes, recording
   bandwidth and solver cost must stay within budget — so every layer
   of the reproduction (vm, trace, smt, symex, select) reports into
   this registry: labelled counters, gauges, fixed-bucket histograms
   and hierarchical timing spans.

   Hot-path discipline:
     - handles are pre-registered once ([counter] / [gauge] /
       [histogram] at module-init time); the instrumented code holds
       the handle, never a name;
     - recording into a handle is a single mutable-cell update with no
       allocation — int cells for counters, one-element [float array]s
       for gauges/histogram sums so the float stays unboxed;
     - when the owning registry is disabled every record operation is
       one load + one branch.

   The registry clock is injectable ([set_clock]) so span timings and
   histogram observations are deterministic under test.  The process
   default registry starts *disabled*: an uninstrumented run pays only
   the branch.

   Domain safety (fleet mode runs bugs on concurrent domains, all
   reporting into the default registry):
     - counters are [Atomic.t] ints — increments from any domain are
       exact, never lost or torn;
     - gauges stay plain unboxed float cells: [set] is a single
       word-sized store (no tearing on 64-bit), last writer wins, which
       is the right semantics for a level;
     - histograms take a per-histogram mutex per [observe] (observations
       are orders of magnitude rarer than counter bumps);
     - span trees are per-domain — each domain nests its own stack and
       accumulates into its own cells — and snapshots merge the
       per-domain trees by path, so concurrent bugs never corrupt each
       other's nesting;
     - registration and the per-domain span-state table are guarded by
       the registry mutex (cold paths).

   Naming convention (see DESIGN.md "Observability"):
   [er_<layer>_<thing>_total] for counters, [er_<layer>_<thing>] for
   gauges, histogram base names like [er_smt_query_seconds]. *)

type labels = (string * string) list

type registry = {
  mutable r_enabled : bool;
  mutable r_clock : unit -> float;
  (* flight recorder: per-domain ring capacity for timestamped span
     events; 0 = recording off (the default — aggregate cells only) *)
  mutable r_recorder : int;
  (* registration order, for deterministic snapshots *)
  mutable r_rev : metric list;
  r_index : (string, metric) Hashtbl.t;
  r_mutex : Mutex.t; (* guards r_rev/r_index/r_domains (cold paths) *)
  (* one span state per domain that ever opened a span here *)
  mutable r_domains : (int * domain_spans) list;
}

and metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram
  | Top of top

and counter = {
  c_name : string;
  c_help : string;
  c_labels : labels;
  c_value : int Atomic.t;
  c_reg : registry;
}

and gauge = {
  g_name : string;
  g_help : string;
  g_labels : labels;
  g_cell : float array; (* length 1: unboxed float without a boxed record field *)
  g_reg : registry;
}

and histogram = {
  h_name : string;
  h_help : string;
  h_labels : labels;
  h_bounds : float array; (* strictly increasing finite upper bounds *)
  h_counts : int array; (* length = Array.length h_bounds + 1 (+Inf) *)
  h_sum : float array; (* length 1 *)
  h_mutex : Mutex.t;
  h_reg : registry;
}

(* Bounded top-K attribution table: the K most expensive keys seen so
   far (cost descending, key ascending on ties), one row per key with
   the maximum cost observed for it.  Merge semantics are commutative,
   so concurrent observers from several domains converge to the same
   table regardless of interleaving. *)
and top = {
  t_name : string;
  t_help : string;
  t_k : int;
  t_mutex : Mutex.t;
  mutable t_rows : top_row list; (* sorted, length <= t_k *)
  t_reg : registry;
}

and top_row = { tr_key : string; tr_cost : int; tr_labels : labels }
and span_cell = { mutable s_calls : int; mutable s_seconds : float }

(* Span nesting and accumulation for one domain.  Only the owning domain
   ever writes; snapshots from other domains read the cells racily,
   which can observe a slightly stale call count — acceptable for a
   monitoring read, and exact once the domain has quiesced (fleet
   snapshots after joining its workers see everything). *)
and domain_spans = {
  ds_spans : (string, span_cell) Hashtbl.t;
  mutable ds_stack : string list; (* full paths, innermost first *)
  (* flight-recorder ring of completed spans, owner-domain writes only;
     [||] until the recorder is armed *)
  mutable ds_ring : span_event array;
  mutable ds_next : int; (* next write slot *)
  mutable ds_count : int; (* events ever recorded on this domain *)
}

and span_event = { sp_path : string; sp_begin : float; sp_end : float }

let default_clock () = Unix.gettimeofday ()

let create ?(enabled = true) ?(clock = default_clock) () =
  {
    r_enabled = enabled;
    r_clock = clock;
    r_recorder = 0;
    r_rev = [];
    r_index = Hashtbl.create 64;
    r_mutex = Mutex.create ();
    r_domains = [];
  }

(* The process-wide registry.  Disabled until someone opts in
   ([er_cli --metrics], bench, tests): library instrumentation must be
   free for callers that never asked for metrics. *)
let default = create ~enabled:false ()

let enabled r = r.r_enabled
let set_enabled r b = r.r_enabled <- b
let set_clock r clock = r.r_clock <- clock
let now r = r.r_clock ()

let reset r =
  List.iter
    (function
      | Counter c -> Atomic.set c.c_value 0
      | Gauge g -> g.g_cell.(0) <- 0.
      | Histogram h ->
          Array.fill h.h_counts 0 (Array.length h.h_counts) 0;
          h.h_sum.(0) <- 0.
      | Top t ->
          Mutex.lock t.t_mutex;
          t.t_rows <- [];
          Mutex.unlock t.t_mutex)
    r.r_rev;
  Mutex.lock r.r_mutex;
  r.r_domains <- [];
  Mutex.unlock r.r_mutex

(* --- registration (cold path) -------------------------------------- *)

let canonical_labels labels =
  List.sort (fun (a, _) (b, _) -> compare a b) labels

let key name labels =
  name
  ^ String.concat ""
      (List.map (fun (k, v) -> "\x00" ^ k ^ "\x01" ^ v) labels)

(* Registration is idempotent per (name, labels); the double-checked
   shape keeps the common find on the uncontended fast path while making
   concurrent first-registrations race-free. *)
let registered r k make cast err =
  let get m = match cast m with Some v -> v | None -> err () in
  match Hashtbl.find_opt r.r_index k with
  | Some m -> get m
  | None ->
      Mutex.lock r.r_mutex;
      let m =
        match Hashtbl.find_opt r.r_index k with
        | Some m -> m
        | None -> (
            match make () with
            | m ->
                r.r_rev <- m :: r.r_rev;
                Hashtbl.replace r.r_index k m;
                m
            | exception e ->
                Mutex.unlock r.r_mutex;
                raise e)
      in
      Mutex.unlock r.r_mutex;
      get m

let counter ?(registry = default) ?(labels = []) ~help name =
  let labels = canonical_labels labels in
  let k = key name labels in
  registered registry k
    (fun () ->
       Counter
         { c_name = name; c_help = help; c_labels = labels;
           c_value = Atomic.make 0; c_reg = registry })
    (function Counter c -> Some c | _ -> None)
    (fun () ->
       invalid_arg ("Er_metrics.counter: " ^ name ^ " is not a counter"))

let gauge ?(registry = default) ?(labels = []) ~help name =
  let labels = canonical_labels labels in
  let k = key name labels in
  registered registry k
    (fun () ->
       Gauge
         { g_name = name; g_help = help; g_labels = labels;
           g_cell = [| 0. |]; g_reg = registry })
    (function Gauge g -> Some g | _ -> None)
    (fun () -> invalid_arg ("Er_metrics.gauge: " ^ name ^ " is not a gauge"))

let histogram ?(registry = default) ?(labels = []) ~help ~buckets name =
  let labels = canonical_labels labels in
  let k = key name labels in
  let make () =
    let bounds = Array.of_list buckets in
    let ok = ref (Array.length bounds > 0) in
    Array.iteri
      (fun i b ->
         if not (Float.is_finite b) then ok := false;
         if i > 0 && b <= bounds.(i - 1) then ok := false)
      bounds;
    if not !ok then
      invalid_arg
        ("Er_metrics.histogram: " ^ name
         ^ ": buckets must be non-empty, finite, strictly increasing");
    Histogram
      { h_name = name; h_help = help; h_labels = labels; h_bounds = bounds;
        h_counts = Array.make (Array.length bounds + 1) 0;
        h_sum = [| 0. |]; h_mutex = Mutex.create (); h_reg = registry }
  in
  registered registry k make
    (function Histogram h -> Some h | _ -> None)
    (fun () ->
       invalid_arg ("Er_metrics.histogram: " ^ name ^ " is not a histogram"))

let top ?(registry = default) ~help ~k name =
  if k <= 0 then invalid_arg ("Er_metrics.top: " ^ name ^ ": k must be > 0");
  registered registry (key name [])
    (fun () ->
       Top
         { t_name = name; t_help = help; t_k = k;
           t_mutex = Mutex.create (); t_rows = []; t_reg = registry })
    (function Top t -> Some t | _ -> None)
    (fun () -> invalid_arg ("Er_metrics.top: " ^ name ^ " is not a top table"))

(* --- recording (hot path) ------------------------------------------ *)

let inc c = if c.c_reg.r_enabled then Atomic.incr c.c_value
let add c n = if c.c_reg.r_enabled then ignore (Atomic.fetch_and_add c.c_value n)
let counter_value c = Atomic.get c.c_value
let set g v = if g.g_reg.r_enabled then g.g_cell.(0) <- v
let gauge_value g = g.g_cell.(0)

(* Insert [key] with [cost] into the bounded table, keeping the per-key
   maximum and the K most expensive keys overall.  Called once per rare
   event (solver query, run retirement), never inside the hot loop. *)
let top_observe t ~key:k ?(labels = []) cost =
  if t.t_reg.r_enabled then begin
    Mutex.lock t.t_mutex;
    let prev = List.find_opt (fun r -> r.tr_key = k) t.t_rows in
    (match prev with
     | Some r when r.tr_cost >= cost -> ()
     | _ ->
         let rows = List.filter (fun r -> r.tr_key <> k) t.t_rows in
         let rows =
           { tr_key = k; tr_cost = cost; tr_labels = canonical_labels labels }
           :: rows
         in
         let rows =
           List.sort
             (fun a b ->
                match compare b.tr_cost a.tr_cost with
                | 0 -> compare a.tr_key b.tr_key
                | c -> c)
             rows
         in
         let rec take n = function
           | [] -> []
           | _ when n = 0 -> []
           | x :: tl -> x :: take (n - 1) tl
         in
         t.t_rows <- take t.t_k rows);
    Mutex.unlock t.t_mutex
  end

let observe h v =
  if h.h_reg.r_enabled then begin
    let n = Array.length h.h_bounds in
    (* buckets are few (<= ~16); a linear scan beats binary search here *)
    let i = ref 0 in
    while !i < n && v > h.h_bounds.(!i) do
      incr i
    done;
    Mutex.lock h.h_mutex;
    h.h_counts.(!i) <- h.h_counts.(!i) + 1;
    h.h_sum.(0) <- h.h_sum.(0) +. v;
    Mutex.unlock h.h_mutex
  end

(* --- hierarchical timing spans ------------------------------------- *)

(* The current domain's span state; created on first use.  Only the
   owning domain reads/writes ds_stack, so no lock is needed past the
   lookup. *)
let domain_spans r =
  let did = (Domain.self () :> int) in
  match List.assq_opt did r.r_domains with
  | Some ds -> ds
  | None ->
      Mutex.lock r.r_mutex;
      let ds =
        match List.assq_opt did r.r_domains with
        | Some ds -> ds
        | None ->
            let ds =
              { ds_spans = Hashtbl.create 16; ds_stack = []; ds_ring = [||];
                ds_next = 0; ds_count = 0 }
            in
            r.r_domains <- (did, ds) :: r.r_domains;
            ds
      in
      Mutex.unlock r.r_mutex;
      ds

let span_cell ds path =
  match Hashtbl.find_opt ds.ds_spans path with
  | Some c -> c
  | None ->
      let c = { s_calls = 0; s_seconds = 0. } in
      Hashtbl.add ds.ds_spans path c;
      c

let with_span ?(registry = default) name f =
  if not registry.r_enabled then f ()
  else begin
    let ds = domain_spans registry in
    let path =
      match ds.ds_stack with
      | [] -> name
      | parent :: _ -> parent ^ "/" ^ name
    in
    ds.ds_stack <- path :: ds.ds_stack;
    let t0 = registry.r_clock () in
    Fun.protect
      ~finally:(fun () ->
        let t1 = registry.r_clock () in
        let dt = t1 -. t0 in
        (match ds.ds_stack with
         | p :: rest when p == path -> ds.ds_stack <- rest
         | stack ->
             (* an inner span leaked (exception skipped its finally);
                drop frames down to ours rather than corrupt the tree *)
             let rec unwind = function
               | p :: rest when p == path -> rest
               | _ :: rest -> unwind rest
               | [] -> []
             in
             ds.ds_stack <- unwind stack);
        let c = span_cell ds path in
        c.s_calls <- c.s_calls + 1;
        c.s_seconds <- c.s_seconds +. dt;
        let cap = registry.r_recorder in
        if cap > 0 then begin
          if Array.length ds.ds_ring <> cap then begin
            ds.ds_ring <-
              Array.make cap { sp_path = ""; sp_begin = 0.; sp_end = 0. };
            ds.ds_next <- 0;
            ds.ds_count <- 0
          end;
          ds.ds_ring.(ds.ds_next) <-
            { sp_path = path; sp_begin = t0; sp_end = t1 };
          ds.ds_next <- (ds.ds_next + 1) mod cap;
          ds.ds_count <- ds.ds_count + 1
        end)
      f
  end

(* --- flight recorder ------------------------------------------------ *)

(* Timestamped begin/end records for every completed span, kept in a
   bounded per-domain ring (oldest overwritten).  Off by default: the
   aggregate cells above are always maintained when the registry is
   enabled, the recorder additionally keeps the timeline.  Drained as
   Chrome trace-event JSON (Perfetto-loadable): one track (tid) per
   domain — in fleet mode, per worker — with pipeline-stage spans
   nesting inside each track by time containment. *)

type trace_event = {
  te_domain : int;
  te_path : string;
  te_begin : float;
  te_end : float;
}

let set_recorder ?(registry = default) ?(capacity = 65536) on =
  registry.r_recorder <- (if on then max 1 capacity else 0)

let recorder_enabled ?(registry = default) () = registry.r_recorder > 0

(* All surviving events across domains, oldest first within a domain,
   globally sorted by (begin time, domain, path) so the drain is
   deterministic under a scripted clock. *)
let recorded_events ?(registry = default) () =
  Mutex.lock registry.r_mutex;
  let domains = registry.r_domains in
  Mutex.unlock registry.r_mutex;
  let evs =
    List.concat_map
      (fun (did, ds) ->
         let cap = Array.length ds.ds_ring in
         if cap = 0 then []
         else begin
           let n = min ds.ds_count cap in
           let start = (ds.ds_next - n + cap) mod cap in
           List.init n (fun i ->
               let e = ds.ds_ring.((start + i) mod cap) in
               { te_domain = did; te_path = e.sp_path;
                 te_begin = e.sp_begin; te_end = e.sp_end })
         end)
      domains
  in
  List.sort
    (fun a b ->
       match compare a.te_begin b.te_begin with
       | 0 -> (
           match compare a.te_domain b.te_domain with
           | 0 -> compare a.te_path b.te_path
           | c -> c)
       | c -> c)
    evs

(* Events overwritten because a domain's ring wrapped. *)
let recorder_dropped ?(registry = default) () =
  Mutex.lock registry.r_mutex;
  let domains = registry.r_domains in
  Mutex.unlock registry.r_mutex;
  List.fold_left
    (fun acc (_, ds) ->
       let cap = Array.length ds.ds_ring in
       if cap = 0 then acc else acc + max 0 (ds.ds_count - cap))
    0 domains

(* Chrome trace-event format: {"traceEvents": [...]} with "X" (complete)
   slices, ts/dur in microseconds relative to the earliest recorded
   begin, pid 0, tid = domain id, plus "M" metadata naming each track.
   Loads directly in Perfetto / chrome://tracing. *)
let trace_json_value ?(registry = default) () =
  let module J = Er_json in
  let evs = recorded_events ~registry () in
  let epoch =
    List.fold_left (fun a e -> Float.min a e.te_begin) infinity evs
  in
  let epoch = if Float.is_finite epoch then epoch else 0. in
  let leaf path =
    match String.rindex_opt path '/' with
    | Some i -> String.sub path (i + 1) (String.length path - i - 1)
    | None -> path
  in
  let cat path =
    match String.index_opt path '/' with
    | Some i -> String.sub path 0 i
    | None -> path
  in
  let doms = List.sort_uniq compare (List.map (fun e -> e.te_domain) evs) in
  let meta =
    J.Obj
      [ ("name", J.Str "process_name"); ("ph", J.Str "M"); ("pid", J.Int 0);
        ("args", J.Obj [ ("name", J.Str "er") ]) ]
    :: List.map
         (fun d ->
            J.Obj
              [ ("name", J.Str "thread_name"); ("ph", J.Str "M");
                ("pid", J.Int 0); ("tid", J.Int d);
                ("args",
                 J.Obj
                   [ ("name", J.Str (Printf.sprintf "worker domain %d" d)) ])
              ])
         doms
  in
  let slices =
    List.map
      (fun e ->
         J.Obj
           [ ("name", J.Str (leaf e.te_path)); ("cat", J.Str (cat e.te_path));
             ("ph", J.Str "X");
             ("ts", J.Float ((e.te_begin -. epoch) *. 1e6));
             ("dur", J.Float ((e.te_end -. e.te_begin) *. 1e6));
             ("pid", J.Int 0); ("tid", J.Int e.te_domain);
             ("args", J.Obj [ ("path", J.Str e.te_path) ]) ])
      evs
  in
  J.Obj
    [ ("traceEvents", J.List (meta @ slices));
      ("displayTimeUnit", J.Str "ms") ]

let trace_json ?(registry = default) () =
  Er_json.to_string (trace_json_value ~registry ())

(* ==================================================================== *)
(* Snapshots: an immutable copy of the registry state, with the three
   renderers (human table / JSON / Prometheus text exposition). *)
(* ==================================================================== *)

module Snapshot = struct
  type sample =
    | Counter of {
        name : string;
        help : string;
        labels : labels;
        value : int;
      }
    | Gauge of { name : string; help : string; labels : labels; value : float }
    | Histogram of {
        name : string;
        help : string;
        labels : labels;
        bounds : float array;
        counts : int array; (* per-bucket, not cumulative *)
        sum : float;
      }
    | Top of {
        name : string;
        help : string;
        k : int;
        rows : (string * int * labels) list; (* key, cost, row labels *)
      }

  type span = { path : string; calls : int; seconds : float }
  type t = { samples : sample list; spans : span list }

  let sample_name = function
    | Counter { name; _ }
    | Gauge { name; _ }
    | Histogram { name; _ }
    | Top { name; _ } ->
        name

  let sample_labels = function
    | Counter { labels; _ } | Gauge { labels; _ } | Histogram { labels; _ } ->
        labels
    | Top _ -> []

  let take registry =
    let samples =
      List.rev_map
        (function
          | (Counter c : metric) ->
              Counter
                { name = c.c_name; help = c.c_help; labels = c.c_labels;
                  value = Atomic.get c.c_value }
          | Gauge g ->
              Gauge
                { name = g.g_name; help = g.g_help; labels = g.g_labels;
                  value = g.g_cell.(0) }
          | Histogram h ->
              Mutex.lock h.h_mutex;
              let counts = Array.copy h.h_counts and sum = h.h_sum.(0) in
              Mutex.unlock h.h_mutex;
              Histogram
                { name = h.h_name; help = h.h_help; labels = h.h_labels;
                  bounds = Array.copy h.h_bounds; counts; sum }
          | Top t ->
              Mutex.lock t.t_mutex;
              let rows =
                List.map
                  (fun r -> (r.tr_key, r.tr_cost, r.tr_labels))
                  t.t_rows
              in
              Mutex.unlock t.t_mutex;
              Top { name = t.t_name; help = t.t_help; k = t.t_k; rows })
        registry.r_rev
    in
    (* merge the per-domain span trees by path: same path on several
       domains sums its calls and seconds, which is what the combined
       tree would have shown had everything run on one domain *)
    let spans =
      Mutex.lock registry.r_mutex;
      let domains = registry.r_domains in
      Mutex.unlock registry.r_mutex;
      let merged : (string, span_cell) Hashtbl.t = Hashtbl.create 32 in
      List.iter
        (fun (_, ds) ->
           Hashtbl.iter
             (fun path (c : span_cell) ->
                match Hashtbl.find_opt merged path with
                | Some m ->
                    m.s_calls <- m.s_calls + c.s_calls;
                    m.s_seconds <- m.s_seconds +. c.s_seconds
                | None ->
                    Hashtbl.add merged path
                      { s_calls = c.s_calls; s_seconds = c.s_seconds })
             ds.ds_spans)
        domains;
      Hashtbl.fold
        (fun path (c : span_cell) acc ->
           { path; calls = c.s_calls; seconds = c.s_seconds } :: acc)
        merged []
      |> List.sort (fun a b -> compare a.path b.path)
    in
    { samples; spans }

  (* --- aggregate lookups (tests, fleet columns) -------------------- *)

  let counter_total t name =
    List.fold_left
      (fun acc s ->
         match s with
         | Counter { name = n; value; _ } when n = name -> acc + value
         | _ -> acc)
      0 t.samples

  let gauge_value t ?(labels = []) name =
    let labels = canonical_labels labels in
    List.find_map
      (function
        | Gauge { name = n; labels = l; value; _ }
          when n = name && l = labels -> Some value
        | _ -> None)
      t.samples

  let histogram_count t name =
    List.fold_left
      (fun acc s ->
         match s with
         | Histogram { name = n; counts; _ } when n = name ->
             Array.fold_left ( + ) acc counts
         | _ -> acc)
      0 t.samples

  (* Quantile estimate from one histogram sample: find the bucket
     holding rank [q * total] and interpolate linearly inside it.  The
     first bucket interpolates from 0 (all our observations are
     non-negative); the +Inf bucket reports the last finite bound. *)
  let quantile_of ~bounds ~counts q =
    let total = Array.fold_left ( + ) 0 counts in
    if total = 0 then None
    else begin
      let rank = q *. float_of_int total in
      let nb = Array.length bounds in
      let rec go i cum =
        if i > nb then Some bounds.(nb - 1)
        else
          let cum' = cum + counts.(i) in
          if float_of_int cum' >= rank && counts.(i) > 0 then
            if i = nb then Some bounds.(nb - 1)
            else
              let lo = if i = 0 then 0. else bounds.(i - 1) in
              let hi = bounds.(i) in
              let frac =
                (rank -. float_of_int cum) /. float_of_int counts.(i)
              in
              Some (lo +. ((hi -. lo) *. Float.max 0. (Float.min 1. frac)))
          else go (i + 1) cum'
      in
      go 0 0
    end

  let quantile t name q =
    List.find_map
      (function
        | Histogram { name = n; bounds; counts; _ } when n = name ->
            quantile_of ~bounds ~counts q
        | _ -> None)
      t.samples

  (* --- JSON --------------------------------------------------------- *)

  module J = Er_json

  let labels_to_json labels =
    J.Obj (List.map (fun (k, v) -> (k, J.Str v)) labels)

  let labels_of_json = function
    | J.Obj fields ->
        let ok =
          List.for_all (function _, J.Str _ -> true | _ -> false) fields
        in
        if ok then
          Some
            (List.map
               (function
                 | k, J.Str v -> (k, v)
                 | _ -> assert false)
               fields)
        else None
    | _ -> None

  let sample_to_json = function
    | Counter { name; help; labels; value } ->
        J.Obj
          [ ("kind", J.Str "counter"); ("name", J.Str name);
            ("help", J.Str help); ("labels", labels_to_json labels);
            ("value", J.Int value) ]
    | Gauge { name; help; labels; value } ->
        J.Obj
          [ ("kind", J.Str "gauge"); ("name", J.Str name);
            ("help", J.Str help); ("labels", labels_to_json labels);
            ("value", J.Float value) ]
    | Histogram { name; help; labels; bounds; counts; sum } ->
        J.Obj
          [ ("kind", J.Str "histogram"); ("name", J.Str name);
            ("help", J.Str help); ("labels", labels_to_json labels);
            ("bounds",
             J.List (Array.to_list (Array.map (fun b -> J.Float b) bounds)));
            ("counts",
             J.List (Array.to_list (Array.map (fun c -> J.Int c) counts)));
            ("sum", J.Float sum) ]
    | Top { name; help; k; rows } ->
        J.Obj
          [ ("kind", J.Str "top"); ("name", J.Str name); ("help", J.Str help);
            ("labels", labels_to_json []); ("k", J.Int k);
            ("rows",
             J.List
               (List.map
                  (fun (key, cost, labels) ->
                     J.Obj
                       [ ("key", J.Str key); ("cost", J.Int cost);
                         ("labels", labels_to_json labels) ])
                  rows)) ]

  let to_json_value t =
    J.Obj
      [ ("samples", J.List (List.map sample_to_json t.samples));
        ("spans",
         J.List
           (List.map
              (fun s ->
                 J.Obj
                   [ ("path", J.Str s.path); ("calls", J.Int s.calls);
                     ("seconds", J.Float s.seconds) ])
              t.spans)) ]

  let to_json t = J.to_string (to_json_value t)

  let ( let* ) = Option.bind

  let sample_of_json j =
    let* kind = Option.bind (J.member "kind" j) J.to_str in
    let* name = Option.bind (J.member "name" j) J.to_str in
    let* help = Option.bind (J.member "help" j) J.to_str in
    let* labels = Option.bind (J.member "labels" j) labels_of_json in
    match kind with
    | "counter" ->
        let* value = Option.bind (J.member "value" j) J.to_int in
        Some (Counter { name; help; labels; value })
    | "gauge" ->
        let* value = Option.bind (J.member "value" j) J.to_float in
        Some (Gauge { name; help; labels; value })
    | "histogram" ->
        let* bounds = Option.bind (J.member "bounds" j) J.to_list in
        let* counts = Option.bind (J.member "counts" j) J.to_list in
        let* sum = Option.bind (J.member "sum" j) J.to_float in
        let* bounds =
          List.fold_left
            (fun acc b ->
               let* acc = acc in
               let* b = J.to_float b in
               Some (b :: acc))
            (Some []) bounds
        in
        let* counts =
          List.fold_left
            (fun acc c ->
               let* acc = acc in
               let* c = J.to_int c in
               Some (c :: acc))
            (Some []) counts
        in
        Some
          (Histogram
             { name; help; labels;
               bounds = Array.of_list (List.rev bounds);
               counts = Array.of_list (List.rev counts); sum })
    | "top" ->
        let* k = Option.bind (J.member "k" j) J.to_int in
        let* rows = Option.bind (J.member "rows" j) J.to_list in
        let* rows =
          List.fold_left
            (fun acc r ->
               let* acc = acc in
               let* key = Option.bind (J.member "key" r) J.to_str in
               let* cost = Option.bind (J.member "cost" r) J.to_int in
               let* labels = Option.bind (J.member "labels" r) labels_of_json in
               Some ((key, cost, labels) :: acc))
            (Some []) rows
        in
        Some (Top { name; help; k; rows = List.rev rows })
    | _ -> None

  let of_json_value j =
    let* samples = Option.bind (J.member "samples" j) J.to_list in
    let* spans = Option.bind (J.member "spans" j) J.to_list in
    let* samples =
      List.fold_left
        (fun acc s ->
           let* acc = acc in
           let* s = sample_of_json s in
           Some (s :: acc))
        (Some []) samples
    in
    let* spans =
      List.fold_left
        (fun acc s ->
           let* acc = acc in
           let* path = Option.bind (J.member "path" s) J.to_str in
           let* calls = Option.bind (J.member "calls" s) J.to_int in
           let* seconds = Option.bind (J.member "seconds" s) J.to_float in
           Some ({ path; calls; seconds } :: acc))
        (Some []) spans
    in
    Some { samples = List.rev samples; spans = List.rev spans }

  let of_json s = Option.bind (J.parse s) of_json_value

  (* --- Prometheus text exposition ---------------------------------- *)

  (* Prometheus values: integral floats render bare, others with enough
     digits to round-trip; the exposition format has no exponent
     restrictions so %.9g is fine. *)
  let prom_float f =
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
    else Printf.sprintf "%.9g" f

  let prom_label_value v =
    let buf = Buffer.create (String.length v + 4) in
    String.iter
      (fun c ->
         match c with
         | '\\' -> Buffer.add_string buf "\\\\"
         | '"' -> Buffer.add_string buf "\\\""
         | '\n' -> Buffer.add_string buf "\\n"
         | c -> Buffer.add_char buf c)
      v;
    Buffer.contents buf

  let prom_labels = function
    | [] -> ""
    | labels ->
        "{"
        ^ String.concat ","
            (List.map
               (fun (k, v) ->
                  Printf.sprintf "%s=\"%s\"" k (prom_label_value v))
               labels)
        ^ "}"

  (* labels plus one extra pair already rendered (for histogram [le]) *)
  let prom_labels_with labels extra =
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (prom_label_value v))
           labels
         @ [ extra ])
    ^ "}"

  let to_prometheus t =
    let buf = Buffer.create 1024 in
    (* group samples into families preserving first-appearance order *)
    let seen = Hashtbl.create 16 in
    let families =
      List.filter_map
        (fun s ->
           let n = sample_name s in
           if Hashtbl.mem seen n then None
           else begin
             Hashtbl.add seen n ();
             Some n
           end)
        t.samples
    in
    List.iter
      (fun fam ->
         let members = List.filter (fun s -> sample_name s = fam) t.samples in
         (match members with
          | [] -> ()
          | first :: _ ->
              let help, ty =
                match first with
                | Counter { help; _ } -> (help, "counter")
                | Gauge { help; _ } -> (help, "gauge")
                | Histogram { help; _ } -> (help, "histogram")
                (* top tables expose rows as a gauge family keyed by
                   a [key] label *)
                | Top { help; _ } -> (help, "gauge")
              in
              Buffer.add_string buf
                (Printf.sprintf "# HELP %s %s\n# TYPE %s %s\n" fam help fam ty));
         List.iter
           (fun s ->
              match s with
              | Counter { name; labels; value; _ } ->
                  Buffer.add_string buf
                    (Printf.sprintf "%s%s %d\n" name (prom_labels labels)
                       value)
              | Gauge { name; labels; value; _ } ->
                  Buffer.add_string buf
                    (Printf.sprintf "%s%s %s\n" name (prom_labels labels)
                       (prom_float value))
              | Histogram { name; labels; bounds; counts; sum; _ } ->
                  let cum = ref 0 in
                  Array.iteri
                    (fun i b ->
                       cum := !cum + counts.(i);
                       Buffer.add_string buf
                         (Printf.sprintf "%s_bucket%s %d\n" name
                            (prom_labels_with labels
                               (Printf.sprintf "le=\"%s\"" (prom_float b)))
                            !cum))
                    bounds;
                  cum := !cum + counts.(Array.length counts - 1);
                  Buffer.add_string buf
                    (Printf.sprintf "%s_bucket%s %d\n" name
                       (prom_labels_with labels "le=\"+Inf\"")
                       !cum);
                  Buffer.add_string buf
                    (Printf.sprintf "%s_sum%s %s\n" name (prom_labels labels)
                       (prom_float sum));
                  Buffer.add_string buf
                    (Printf.sprintf "%s_count%s %d\n" name
                       (prom_labels labels) !cum)
              | Top { name; rows; _ } ->
                  List.iter
                    (fun (key, cost, labels) ->
                       Buffer.add_string buf
                         (Printf.sprintf "%s%s %d\n" name
                            (prom_labels_with labels
                               (Printf.sprintf "key=\"%s\""
                                  (prom_label_value key)))
                            cost))
                    rows)
           members)
      families;
    if t.spans <> [] then begin
      Buffer.add_string buf
        "# HELP er_span_seconds_total Cumulative wall time per span path.\n\
         # TYPE er_span_seconds_total counter\n";
      List.iter
        (fun s ->
           Buffer.add_string buf
             (Printf.sprintf "er_span_seconds_total{span=\"%s\"} %s\n"
                (prom_label_value s.path)
                (prom_float s.seconds)))
        t.spans;
      Buffer.add_string buf
        "# HELP er_span_calls_total Calls per span path.\n\
         # TYPE er_span_calls_total counter\n";
      List.iter
        (fun s ->
           Buffer.add_string buf
             (Printf.sprintf "er_span_calls_total{span=\"%s\"} %d\n"
                (prom_label_value s.path) s.calls))
        t.spans
    end;
    Buffer.contents buf

  (* --- human table --------------------------------------------------- *)

  let to_table t =
    let buf = Buffer.create 1024 in
    let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
    let labelled name labels =
      name
      ^
      match labels with
      | [] -> ""
      | l ->
          "{"
          ^ String.concat ","
              (List.map (fun (k, v) -> k ^ "=" ^ v) l)
          ^ "}"
    in
    let metrics =
      List.filter
        (function
          | Counter { value = 0; _ } -> false
          | Histogram { counts; _ } -> Array.exists (fun c -> c > 0) counts
          | Top { rows = []; _ } -> false
          | _ -> true)
        t.samples
    in
    if metrics <> [] then begin
      line "%-58s %16s" "metric" "value";
      List.iter
        (fun s ->
           match s with
           | Counter { name; labels; value; _ } ->
               line "%-58s %16d" (labelled name labels) value
           | Gauge { name; labels; value; _ } ->
               line "%-58s %16s" (labelled name labels) (prom_float value)
           | Histogram { name; labels; bounds; counts; sum; _ } ->
               let n = Array.fold_left ( + ) 0 counts in
               let q p =
                 match quantile_of ~bounds ~counts p with
                 | Some v -> prom_float v
                 | None -> "-"
               in
               line "%-58s %16s"
                 (labelled name labels)
                 (Printf.sprintf "n=%d sum=%s p50=%s p90=%s p99=%s" n
                    (prom_float sum) (q 0.5) (q 0.9) (q 0.99))
           | Top { name; rows; _ } ->
               List.iter
                 (fun (key, cost, labels) ->
                    line "%-58s %16d"
                      (labelled name (("key", key) :: labels))
                      cost)
                 rows)
        metrics
    end;
    if t.spans <> [] then begin
      if metrics <> [] then line "";
      line "%-58s %7s %10s" "span" "calls" "seconds";
      List.iter
        (fun s -> line "%-58s %7d %10.4f" s.path s.calls s.seconds)
        t.spans
    end;
    Buffer.contents buf
end

let snapshot ?(registry = default) () = Snapshot.take registry
