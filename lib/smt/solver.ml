(* Budgeted check-sat: array elimination, bit-blasting, CDCL search,
   model reconstruction.

   The public face is session-centric: {!Session.create} builds a
   persistent incremental solving context with a push/pop assertion
   stack, and {!Session.check} decides the current stack.  Pushed
   assertions are encoded once — array elimination, Tseitin blasting and
   CDCL learning all persist across checks — and each assertion is
   guarded by a fresh selector variable so that [pop] can retire it
   without invalidating anything the solver has already derived.

   [Unknown] is the solver-timeout outcome that drives ER's iterative
   algorithm.  Budgets are deterministic work counters (gate count for
   blasting, propagation count for search) charged *per check*, relative
   to the session's counters at entry, so that "the solver stalls on
   this formula" remains a property of the formula, not of the machine
   or of how much earlier work the session happens to carry. *)

type outcome =
  | Sat of Model.t
  | Unsat
  | Unknown of string

type stats = {
  sat_vars : int;
  gates : int;
  propagations : int;
  conflicts : int;
  decisions : int;
  restarts : int;
  clauses : int;
}

module M = Er_metrics

let query_counter res =
  M.counter
    ~labels:[ ("result", res) ]
    ~help:"SMT queries, by result." "er_smt_queries_total"

let m_q_sat = query_counter "sat"
and m_q_unsat = query_counter "unsat"
and m_q_unknown = query_counter "unknown"

let m_decisions =
  M.counter ~help:"SAT branching decisions." "er_smt_sat_decisions_total"

let m_propagations =
  M.counter ~help:"SAT unit propagations." "er_smt_sat_propagations_total"

let m_conflicts =
  M.counter ~help:"SAT conflicts analyzed." "er_smt_sat_conflicts_total"

let m_restarts =
  M.counter ~help:"SAT Luby restarts." "er_smt_sat_restarts_total"

let m_gates =
  M.counter ~help:"Bit-blast gates built." "er_smt_bitblast_gates_total"

let m_clauses =
  M.counter ~help:"CNF clauses built (bit-blasting + learning)."
    "er_smt_bitblast_clauses_total"

let m_vars =
  M.counter ~help:"SAT variables allocated by bit-blasting."
    "er_smt_bitblast_vars_total"

let m_query_seconds =
  M.histogram ~help:"Per-query solve wall time."
    ~buckets:[ 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 1.; 10. ]
    "er_smt_query_seconds"

let cache_hit_counter kind =
  M.counter
    ~labels:[ ("kind", kind) ]
    ~help:"Session result-cache hits, by fast path."
    "er_smt_session_cache_hits_total"

let m_cache_exact = cache_hit_counter "exact"
and m_cache_subset = cache_hit_counter "subset_sat"
and m_cache_superset = cache_hit_counter "superset_unsat"

let m_cache_miss =
  M.counter ~help:"Session result-cache misses."
    "er_smt_session_cache_misses_total"

let m_checks_fresh =
  M.counter ~help:"Session checks that built their encoding from scratch."
    "er_smt_session_checks_fresh_total"

let m_checks_incremental =
  M.counter ~help:"Session checks reusing a previously built encoding."
    "er_smt_session_checks_incremental_total"

let m_warm_replays =
  M.counter ~help:"Persisted journal answers replayed in place of solving."
    "er_smt_warm_replays_total"

let m_warm_saved_cost =
  M.counter
    ~help:"Solver cost (gates + propagations) avoided by warm replay."
    "er_smt_warm_saved_cost_total"

let m_portfolio_races =
  M.counter ~help:"Stall-time portfolio races run."
    "er_smt_portfolio_races_total"

let m_portfolio_wins =
  M.counter ~help:"Stalls resolved by a portfolio configuration."
    "er_smt_portfolio_wins_total"

(* Hot-spot attribution: the most expensive queries seen so far, keyed
   by the canonical assertion-set id (cost = gates + propagations, the
   same work measure as solver_cost). *)
let m_top_queries =
  M.top ~k:8
    ~help:"Most expensive SMT queries (cost = bit-blast gates + SAT \
           propagations)."
    "er_smt_top_query_cost"

(* A bounded rendering of the canonical key: member count, id range and
   a hash — enough to match a query across snapshots without dumping
   hundreds of ids. *)
let query_key (key : int array) =
  let n = Array.length key in
  Printf.sprintf "n=%d[%d..%d]#%08x" n key.(0)
    key.(n - 1)
    (Hashtbl.hash (Array.to_list key) land 0xffffffff)

let outcome_label = function
  | Sat _ -> "sat"
  | Unsat -> "unsat"
  | Unknown _ -> "unknown"

(* Default budgets: generous enough for well-conditioned queries, small
   enough that ite towers from long write chains exhaust them. *)
let default_budget = 4_000_000
let default_gate_budget = 400_000

(* --- normalized-constraint-set result cache --------------------------- *)

(* Keyed by the canonical form of the assertion set: the sorted,
   deduplicated hash-consed ids of its (non-trivial) members.  Sat/Unsat
   are pure properties of the formula, independent of which session (or
   which budget) established them, so entries stay valid across
   sessions, across pops, and across occurrences of the same failure.

   The cache is sharded by interning space ({!Expr.space_stamp}): ids
   are only comparable within one space, and sharding by space is also
   what keeps fleet mode deterministic — a bug running in its own fresh
   space can only ever hit entries produced by its own (deterministic)
   query sequence, never entries another domain happened to store first.
   Each shard is guarded by a mutex so that sessions on different
   domains may share one space (and hence one shard) safely; hit/miss
   accounting lives in the session, whose counters are only touched by
   the domain running it, so the tallies stay exact under concurrency.

   [Unknown] is never cached — it is a budget artifact, not a property
   of the formula.  Two fast paths fall out of keeping the sets around:
   a cached UNSAT core refutes any superset, and a cached model of a
   superset satisfies any subset. *)
module Cache = struct
  module ISet = Set.Make (Int)

  type kind = Exact | Subset_sat | Superset_unsat

  type shard = {
    sh_mutex : Mutex.t;
    sh_exact : (int array, outcome) Hashtbl.t;
    mutable sh_sats : (ISet.t * Model.t) list;
    mutable sh_unsats : ISet.t list;
  }

  (* space stamp -> shard; the table itself is touched only under
     [shards_mutex] (shard creation is rare — once per space). *)
  let shards : (int, shard) Hashtbl.t = Hashtbl.create 16
  let shards_mutex = Mutex.create ()

  let shard_for_current_space () =
    let stamp = Expr.space_stamp () in
    Mutex.lock shards_mutex;
    let sh =
      match Hashtbl.find_opt shards stamp with
      | Some sh -> sh
      | None ->
          let sh =
            { sh_mutex = Mutex.create ();
              sh_exact = Hashtbl.create 256;
              sh_sats = [];
              sh_unsats = [] }
          in
          Hashtbl.add shards stamp sh;
          sh
    in
    Mutex.unlock shards_mutex;
    sh

  let clear () =
    Mutex.lock shards_mutex;
    Hashtbl.reset shards;
    Mutex.unlock shards_mutex

  let locked sh f =
    Mutex.lock sh.sh_mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock sh.sh_mutex) f

  let lookup sh key set =
    locked sh @@ fun () ->
    match Hashtbl.find_opt sh.sh_exact key with
    | Some o -> Some (o, Exact)
    | None -> (
        match
          List.find_opt (fun core -> ISet.subset core set) sh.sh_unsats
        with
        | Some _ -> Some (Unsat, Superset_unsat)
        | None -> (
            match
              List.find_opt (fun (ids, _) -> ISet.subset set ids) sh.sh_sats
            with
            | Some (_, m) -> Some (Sat m, Subset_sat)
            | None -> None))

  let store sh key set o =
    locked sh @@ fun () ->
    if not (Hashtbl.mem sh.sh_exact key) then
      match o with
      | Sat m ->
          Hashtbl.replace sh.sh_exact key o;
          sh.sh_sats <- (set, m) :: sh.sh_sats
      | Unsat ->
          Hashtbl.replace sh.sh_exact key o;
          sh.sh_unsats <- set :: sh.sh_unsats
      | Unknown _ -> ()
end

let reset_cache = Cache.clear

(* --- incremental sessions --------------------------------------------- *)

module Session = struct
  type frame = {
    f_expr : Expr.t;
    f_sel : int; (* selector DIMACS var; 0 when the assertion is [true] *)
    mutable f_encoded : bool;
    (* array-eliminated form + congruence axioms, recorded at encode
       time so a stall-time portfolio can re-assert the frame into a
       fresh context without re-running elimination *)
    mutable f_elim : (Expr.t * Expr.t list) option;
  }

  type t = {
    sat : Sat.t;
    blast : Bitblast.ctx;
    elim : Arrays.state;
    cache : Cache.shard; (* the shard of the creating space *)
    persist : Persist.handle option; (* journal bound to the space, if any *)
    portfolio : int; (* configs to race on a propagation stall; 0 = off *)
    budget : int;
    gate_budget : int;
    mutable stack : frame list; (* newest first *)
    mutable solves : int; (* checks that reached the SAT core *)
    mutable hits : int;
    mutable misses : int;
    mutable replays : int; (* of [hits]: answered from the journal *)
    mutable portfolio_wins : int;
  }

  type cache_stats = { cache_hits : int; cache_misses : int }

  let create ?(budget = default_budget) ?(gate_budget = default_gate_budget)
      ?(portfolio = 0) () =
    let sat = Sat.create () in
    {
      sat;
      blast = Bitblast.create ~gate_budget sat;
      elim = Arrays.create_state ();
      cache = Cache.shard_for_current_space ();
      persist = Persist.current ();
      portfolio;
      budget;
      gate_budget;
      stack = [];
      solves = 0;
      hits = 0;
      misses = 0;
      replays = 0;
      portfolio_wins = 0;
    }

  let push t e =
    Sat.backtrack_root t.sat;
    let sel = if Expr.is_true e then 0 else Sat.new_var t.sat in
    t.stack <-
      { f_expr = e; f_sel = sel; f_encoded = sel = 0; f_elim = None }
      :: t.stack

  let pop t =
    match t.stack with
    | [] -> invalid_arg "Solver.Session.pop: empty assertion stack"
    | f :: rest ->
        Sat.backtrack_root t.sat;
        t.stack <- rest;
        (* Permanently disable the frame's guarded clause.  The encoding,
           its Tseitin definitions and anything the solver learned from
           them remain — learned clauses are implied by the (guarded)
           clause database alone, so they stay sound. *)
        if f.f_encoded && f.f_sel <> 0 then Sat.add_clause t.sat [ -f.f_sel ]

  let depth t = List.length t.stack
  let assertions t = List.rev_map (fun f -> f.f_expr) t.stack
  let cache_stats t = { cache_hits = t.hits; cache_misses = t.misses }
  let replays t = t.replays
  let portfolio_wins t = t.portfolio_wins

  let stats_since t ~g0 ~p0 ~c0 ~d0 ~r0 ~cl0 =
    let propagations, conflicts, clauses = Sat.stats t.sat in
    {
      sat_vars = Sat.num_vars t.sat;
      gates = Bitblast.gate_count t.blast - g0;
      propagations = propagations - p0;
      conflicts = conflicts - c0;
      decisions = Sat.decisions t.sat - d0;
      restarts = Sat.restarts t.sat - r0;
      clauses = clauses - cl0;
    }

  let zero_stats t =
    {
      sat_vars = Sat.num_vars t.sat;
      gates = 0;
      propagations = 0;
      conflicts = 0;
      decisions = 0;
      restarts = 0;
      clauses = 0;
    }

  (* Encode every still-pending frame, oldest first.  Raises
     [Bitblast.Too_large] on gate-budget exhaustion; already-encoded
     frames and the blasting memo survive the abort, so the next check
     resumes where this one stopped. *)
  let encode_pending t =
    List.iter
      (fun f ->
        if not f.f_encoded then begin
          let e', axioms = Arrays.eliminate_one t.elim f.f_expr in
          f.f_elim <- Some (e', axioms);
          (* Congruence axioms are theory-valid, hence asserted
             unguarded: they may outlive the frame that introduced
             them. *)
          List.iter (Bitblast.assert_true t.blast) axioms;
          let lit = Bitblast.lit_of t.blast e' in
          Sat.add_clause t.sat [ -f.f_sel; lit ];
          f.f_encoded <- true
        end)
      (List.rev t.stack)

  let extract_model t =
    let m = Model.empty () in
    List.iter
      (fun (var, bits) ->
        match Expr.node var with
        | Expr.Var name -> Model.set m name (Bitblast.value_of_bits t.sat bits)
        | _ -> assert false)
      (Bitblast.blasted_vars t.blast);
    (* reconstruct array points from the read witnesses *)
    List.iter
      (fun { Arrays.array; index; value } ->
        match Expr.node array with
        | Expr.Var name ->
            Model.add_array_point m name ~index:(Model.eval m index)
              ~elt:(Model.eval m value)
        | _ -> assert false)
      (Arrays.witnesses t.elim);
    m

  let check_core ?budget ?gate_budget t : outcome * stats =
    let budget = Option.value budget ~default:t.budget in
    (* The propagation budget is a per-check allowance (relative to the
       session's counters at entry); the gate budget is cumulative over
       the session — see {!Bitblast.arm}. *)
    (match gate_budget with
    | Some g -> Bitblast.arm t.blast ~gate_limit:g
    | None -> ());
    let active = List.filter (fun f -> f.f_sel <> 0) t.stack in
    if List.exists (fun f -> Expr.is_false f.f_expr) active then
      (Unsat, zero_stats t)
    else if active = [] then (Sat (Model.empty ()), zero_stats t)
    else begin
      let key =
        let ids = List.map (fun f -> Expr.id f.f_expr) active in
        Array.of_list (List.sort_uniq compare ids)
      in
      let set = Cache.ISet.of_list (Array.to_list key) in
      match Cache.lookup t.cache key set with
      | Some (o, kind) ->
          t.hits <- t.hits + 1;
          let kind_label =
            match kind with
            | Cache.Exact ->
                M.inc m_cache_exact;
                "exact"
            | Cache.Subset_sat ->
                M.inc m_cache_subset;
                "subset_sat"
            | Cache.Superset_unsat ->
                M.inc m_cache_superset;
                "superset_unsat"
          in
          (* zero-cost row: a hit never displaces the original solve's
             cost for the same key, but records that the set was asked
             again and answered from cache *)
          M.top_observe m_top_queries ~key:(query_key key)
            ~labels:[ ("outcome", outcome_label o); ("cached", kind_label) ]
            0;
          (o, zero_stats t)
      | None -> (
          (* Machine-stable form of [key] for the persistent journal:
             per-space local ids, order-isomorphic to the absolute ids
             within this space. *)
          let local_key =
            let ids = List.map (fun f -> Expr.local_id f.f_expr) active in
            Array.of_list (List.sort_uniq compare ids)
          in
          (* Structural digest alongside the id key: local ids are
             creation ordinals, so a changed client can mint different
             formulas at the same ordinals; the digest ensures a journal
             match means "the same formulas were asserted", never just
             "the same positions were asked".  Computed only on
             in-memory-cache misses, and only with a store attached. *)
          let local_hash () =
            Digest.to_hex
              (Digest.string
                 (String.concat ";"
                    (List.sort compare
                       (List.map (fun f -> Expr.to_string f.f_expr) active))))
          in
          let local_hash =
            match t.persist with Some _ -> local_hash () | None -> ""
          in
          let replayed =
            match t.persist with
            | Some h ->
                Persist.replay h ~key:local_key ~hash:local_hash ~budget
            | None -> None
          in
          match replayed with
          | Some (answer, saved) ->
              (* Warm replay: adopt the journaled answer at zero cost.
                 Solved answers are stored into the in-memory cache
                 exactly where the cold run stored them, so later
                 subset/superset lookups evolve identically; stalls are
                 returned verbatim and (as in a cold run) not cached. *)
              t.hits <- t.hits + 1;
              t.replays <- t.replays + 1;
              M.inc m_warm_replays;
              M.add m_warm_saved_cost saved;
              let o =
                match answer with
                | Persist.Solved_unsat ->
                    Cache.store t.cache key set Unsat;
                    Unsat
                | Persist.Solved_sat m ->
                    Cache.store t.cache key set (Sat m);
                    Sat m
                | Persist.Stalled reason -> Unknown reason
              in
              M.top_observe m_top_queries ~key:(query_key key)
                ~labels:[ ("outcome", outcome_label o); ("cached", "warm") ]
                0;
              (o, zero_stats t)
          | None ->
              t.misses <- t.misses + 1;
              M.inc m_cache_miss;
              if t.solves = 0 then M.inc m_checks_fresh
              else M.inc m_checks_incremental;
              t.solves <- t.solves + 1;
              Sat.backtrack_root t.sat;
              let g0 = Bitblast.gate_count t.blast in
              let p0, c0, cl0 = Sat.stats t.sat in
              let d0 = Sat.decisions t.sat and r0 = Sat.restarts t.sat in
              let finish ?(extra_gates = 0) ?(extra_propagations = 0) o =
                let st = stats_since t ~g0 ~p0 ~c0 ~d0 ~r0 ~cl0 in
                (* a portfolio win charges the winning attempt's work on
                   top of the stalled base search *)
                let st =
                  { st with
                    gates = st.gates + extra_gates;
                    propagations = st.propagations + extra_propagations }
                in
                M.add m_gates st.gates;
                M.add m_propagations st.propagations;
                M.add m_conflicts st.conflicts;
                M.add m_decisions st.decisions;
                M.add m_restarts st.restarts;
                M.add m_clauses st.clauses;
                M.top_observe m_top_queries ~key:(query_key key)
                  ~labels:[ ("outcome", outcome_label o); ("cached", "no") ]
                  (st.gates + st.propagations);
                (o, st)
              in
              (* Conclude a real solve: report stats and append the
                 verdict — including stalls, which warm runs must
                 reproduce — to the journal. *)
              let conclude ?extra_gates ?extra_propagations ?summary o =
                let ((o, st) as out) =
                  finish ?extra_gates ?extra_propagations o
                in
                (match t.persist with
                | Some h ->
                    let answer, summary =
                      match o with
                      | Unsat -> (Persist.Solved_unsat, summary)
                      | Sat m -> (Persist.Solved_sat m, summary)
                      | Unknown r -> (Persist.Stalled r, None)
                    in
                    let summary =
                      match (answer, summary) with
                      | Persist.Stalled _, _ | _, Some _ -> summary
                      | _, None ->
                          Some
                            {
                              Persist.sm_conflicts = st.conflicts;
                              sm_decisions = st.decisions;
                              sm_restarts = st.restarts;
                              sm_clauses = st.clauses;
                              sm_top = Sat.top_activity t.sat;
                            }
                    in
                    Persist.record h ~key:local_key ~hash:local_hash ~budget
                      ~cost:(st.gates + st.propagations) ?summary answer
                | None -> ());
                out
              in
              (match encode_pending t with
              | exception Bitblast.Too_large ->
                  conclude (Unknown "gate budget exhausted during bit-blasting")
              | () ->
                  M.add m_vars (Sat.num_vars t.sat);
                  (* oldest frame first, matching assertion order *)
                  let assumptions = List.rev_map (fun f -> f.f_sel) active in
                  let res = Sat.solve ~budget ~assumptions t.sat in
                  (match res with
                  | Sat.Unsat ->
                      Cache.store t.cache key set Unsat;
                      conclude Unsat
                  | Sat.Sat ->
                      let m = extract_model t in
                      Cache.store t.cache key set (Sat m);
                      conclude (Sat m)
                  | Sat.Unknown -> (
                      let stall =
                        "propagation budget exhausted during search"
                      in
                      if t.portfolio <= 0 then conclude (Unknown stall)
                      else begin
                        M.inc m_portfolio_races;
                        let assertions =
                          (* oldest first; every active frame was encoded
                             just above, so its eliminated form is
                             recorded *)
                          List.rev_map
                            (fun f ->
                              match f.f_elim with
                              | Some ea -> ea
                              | None -> (f.f_expr, []))
                            active
                        in
                        let _, winner =
                          Portfolio.run ~k:t.portfolio ~budget
                            ~gate_budget:t.gate_budget ~assertions
                            ~witnesses:(Arrays.witnesses t.elim) ()
                        in
                        match winner with
                        | None -> conclude (Unknown stall)
                        | Some w ->
                            t.portfolio_wins <- t.portfolio_wins + 1;
                            M.inc m_portfolio_wins;
                            let summary =
                              {
                                Persist.sm_conflicts = w.Portfolio.at_conflicts;
                                sm_decisions = w.Portfolio.at_decisions;
                                sm_restarts = w.Portfolio.at_restarts;
                                sm_clauses = w.Portfolio.at_clauses;
                                sm_top = w.Portfolio.at_top;
                              }
                            in
                            let conclude_win o =
                              conclude ~extra_gates:w.Portfolio.at_gates
                                ~extra_propagations:w.Portfolio.at_propagations
                                ~summary o
                            in
                            (match w.Portfolio.at_verdict with
                            | Portfolio.V_sat m ->
                                Cache.store t.cache key set (Sat m);
                                conclude_win (Sat m)
                            | Portfolio.V_unsat ->
                                Cache.store t.cache key set Unsat;
                                conclude_win Unsat
                            | Portfolio.V_unknown -> assert false)
                      end))))
    end

  let check ?budget ?gate_budget t : outcome * stats =
    if not (M.enabled M.default) then check_core ?budget ?gate_budget t
    else begin
      let t0 = M.now M.default in
      let ((res, _) as out) = check_core ?budget ?gate_budget t in
      M.observe m_query_seconds (M.now M.default -. t0);
      (match res with
      | Sat _ -> M.inc m_q_sat
      | Unsat -> M.inc m_q_unsat
      | Unknown _ -> M.inc m_q_unknown);
      out
    end
end

(* --- one-shot conveniences -------------------------------------------- *)

(* [check assertions] decides a conjunction with a throwaway session.
   The returned stats are the work this call performed; on a result-cache
   hit they are all zero. *)
let check ?budget ?gate_budget (assertions : Expr.t list) : outcome * stats =
  let s = Session.create ?budget ?gate_budget () in
  List.iter (Session.push s) assertions;
  Session.check s

let is_satisfiable ?budget ?gate_budget assertions =
  match fst (check ?budget ?gate_budget assertions) with
  | Sat _ -> Ok true
  | Unsat -> Ok false
  | Unknown why -> Error why

(* Is [e] forced true under [assumptions]?  (valid iff ¬e unsat) *)
let must_be_true ?budget ?gate_budget assumptions e =
  match fst (check ?budget ?gate_budget (Expr.not_ e :: assumptions)) with
  | Unsat -> Ok true
  | Sat _ -> Ok false
  | Unknown why -> Error why

let pp_outcome ppf = function
  | Sat _ -> Fmt.string ppf "sat"
  | Unsat -> Fmt.string ppf "unsat"
  | Unknown why -> Fmt.pf ppf "unknown (%s)" why
