(* The budgeted check-sat entry point: array elimination, bit-blasting,
   CDCL search, model reconstruction.

   [Unknown] is the solver-timeout outcome that drives ER's iterative
   algorithm.  The budget is deterministic (gate count for blasting,
   propagation count for search) so that "the solver stalls on this
   formula" is a property of the formula, not of the machine. *)

type outcome =
  | Sat of Model.t
  | Unsat
  | Unknown of string

type stats = {
  sat_vars : int;
  gates : int;
  propagations : int;
  conflicts : int;
  decisions : int;
  restarts : int;
  clauses : int;
}

let last_stats = ref None

module M = Er_metrics

let query_counter res =
  M.counter
    ~labels:[ ("result", res) ]
    ~help:"SMT queries, by result." "er_smt_queries_total"

let m_q_sat = query_counter "sat"
and m_q_unsat = query_counter "unsat"
and m_q_unknown = query_counter "unknown"

let m_decisions =
  M.counter ~help:"SAT branching decisions." "er_smt_sat_decisions_total"

let m_propagations =
  M.counter ~help:"SAT unit propagations." "er_smt_sat_propagations_total"

let m_conflicts =
  M.counter ~help:"SAT conflicts analyzed." "er_smt_sat_conflicts_total"

let m_restarts =
  M.counter ~help:"SAT Luby restarts." "er_smt_sat_restarts_total"

let m_gates =
  M.counter ~help:"Bit-blast gates built." "er_smt_bitblast_gates_total"

let m_clauses =
  M.counter ~help:"CNF clauses built (bit-blasting + learning)."
    "er_smt_bitblast_clauses_total"

let m_vars =
  M.counter ~help:"SAT variables allocated by bit-blasting."
    "er_smt_bitblast_vars_total"

let m_query_seconds =
  M.histogram ~help:"Per-query solve wall time."
    ~buckets:[ 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 1.; 10. ]
    "er_smt_query_seconds"

(* Default budgets: generous enough for well-conditioned queries, small
   enough that ite towers from long write chains exhaust them. *)
let default_budget = 4_000_000
let default_gate_budget = 400_000

let check_core ~budget ~gate_budget (assertions : Expr.t list) : outcome =
  (* fast path on literal constants *)
  let assertions = List.filter (fun e -> not (Expr.is_true e)) assertions in
  if List.exists Expr.is_false assertions then Unsat
  else if assertions = [] then Sat (Model.empty ())
  else begin
    let { Arrays.assertions = flat; witnesses } = Arrays.eliminate assertions in
    let sat = Sat.create () in
    let ctx = Bitblast.create ~gate_budget sat in
    match List.iter (Bitblast.assert_true ctx) flat with
    | exception Bitblast.Too_large ->
        last_stats := None;
        M.add m_gates (Bitblast.gate_count ctx);
        Unknown "gate budget exhausted during bit-blasting"
    | () -> (
        let res = Sat.solve ~budget sat in
        let propagations, conflicts, clauses = Sat.stats sat in
        let decisions = Sat.decisions sat and restarts = Sat.restarts sat in
        last_stats :=
          Some
            {
              sat_vars = Sat.num_vars sat;
              gates = Bitblast.gate_count ctx;
              propagations;
              conflicts;
              decisions;
              restarts;
              clauses;
            };
        M.add m_propagations propagations;
        M.add m_conflicts conflicts;
        M.add m_decisions decisions;
        M.add m_restarts restarts;
        M.add m_gates (Bitblast.gate_count ctx);
        M.add m_clauses clauses;
        M.add m_vars (Sat.num_vars sat);
        match res with
        | Sat.Unsat -> Unsat
        | Sat.Unknown -> Unknown "propagation budget exhausted during search"
        | Sat.Sat ->
            let m = Model.empty () in
            List.iter
              (fun (var, bits) ->
                 match Expr.node var with
                 | Expr.Var name ->
                     Model.set m name (Bitblast.value_of_bits sat bits)
                 | _ -> assert false)
              (Bitblast.blasted_vars ctx);
            (* reconstruct array points from the read witnesses *)
            List.iter
              (fun { Arrays.array; index; value } ->
                 match Expr.node array with
                 | Expr.Var name ->
                     Model.add_array_point m name ~index:(Model.eval m index)
                       ~elt:(Model.eval m value)
                 | _ -> assert false)
              witnesses;
            Sat m)
  end

let check ?(budget = default_budget) ?(gate_budget = default_gate_budget)
    (assertions : Expr.t list) : outcome =
  if not (M.enabled M.default) then check_core ~budget ~gate_budget assertions
  else begin
    let t0 = M.now M.default in
    let res = check_core ~budget ~gate_budget assertions in
    M.observe m_query_seconds (M.now M.default -. t0);
    (match res with
     | Sat _ -> M.inc m_q_sat
     | Unsat -> M.inc m_q_unsat
     | Unknown _ -> M.inc m_q_unknown);
    res
  end

(* Convenience wrappers used by the symbolic executor. *)

let is_satisfiable ?budget ?gate_budget assertions =
  match check ?budget ?gate_budget assertions with
  | Sat _ -> Some true
  | Unsat -> Some false
  | Unknown _ -> None

(* Is [e] forced true under [assumptions]?  (valid iff ¬e unsat) *)
let must_be_true ?budget ?gate_budget assumptions e =
  match check ?budget ?gate_budget (Expr.not_ e :: assumptions) with
  | Unsat -> Some true
  | Sat _ -> Some false
  | Unknown _ -> None

let pp_outcome ppf = function
  | Sat _ -> Fmt.string ppf "sat"
  | Unsat -> Fmt.string ppf "unsat"
  | Unknown why -> Fmt.pf ppf "unknown (%s)" why
