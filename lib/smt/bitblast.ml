(* Tseitin bit-blasting of (array-free) bitvector terms onto the CDCL SAT
   solver.  Each bitvector term maps to an array of SAT literals, LSB
   first.  Gate construction is budgeted: when a formula needs more gates
   than the budget allows (the typical outcome of a long symbolic-write
   chain expanded to ite towers), blasting raises [Too_large], which the
   solver reports as [Unknown] — a stall, in the paper's terminology. *)

exception Too_large

(* Arrays must be eliminated (see {!Arrays}) before blasting. *)
exception Unsupported of string

type ctx = {
  sat : Sat.t;
  memo : (int, int array) Hashtbl.t;       (* expr id -> bit literals *)
  var_bits : (Expr.t * int array) list ref;(* for model extraction *)
  true_lit : int;
  mutable gates : int;
  mutable gate_limit : int;                (* raise Too_large past this *)
}

let create ?(gate_budget = max_int) sat =
  let t = Sat.new_var sat in
  Sat.add_clause sat [ t ];
  {
    sat;
    memo = Hashtbl.create 1024;
    var_bits = ref [];
    true_lit = t;
    gates = 0;
    gate_limit = gate_budget;
  }

let gate_count ctx = ctx.gates

(* Reset the absolute gate limit.  The gate counter itself carries over:
   a session's budget is on the *total* encoding size, which is exactly
   what one-shot re-blasting of the whole assertion set enforced, since
   hash-consed blasting builds the same unique-gate set either way. *)
let arm ctx ~gate_limit = ctx.gate_limit <- gate_limit

let fresh ctx =
  ctx.gates <- ctx.gates + 1;
  if ctx.gates > ctx.gate_limit then raise Too_large;
  Sat.new_var ctx.sat

let tt ctx = ctx.true_lit
let ff ctx = -ctx.true_lit

(* --- gates (with constant folding on the true/false literals) -------- *)

let g_and ctx a b =
  if a = ff ctx || b = ff ctx then ff ctx
  else if a = tt ctx then b
  else if b = tt ctx then a
  else if a = b then a
  else if a = -b then ff ctx
  else begin
    let y = fresh ctx in
    Sat.add_clause ctx.sat [ -y; a ];
    Sat.add_clause ctx.sat [ -y; b ];
    Sat.add_clause ctx.sat [ y; -a; -b ];
    y
  end

let g_or ctx a b = -g_and ctx (-a) (-b)

let g_xor ctx a b =
  if a = ff ctx then b
  else if b = ff ctx then a
  else if a = tt ctx then -b
  else if b = tt ctx then -a
  else if a = b then ff ctx
  else if a = -b then tt ctx
  else begin
    let y = fresh ctx in
    Sat.add_clause ctx.sat [ -y; a; b ];
    Sat.add_clause ctx.sat [ -y; -a; -b ];
    Sat.add_clause ctx.sat [ y; -a; b ];
    Sat.add_clause ctx.sat [ y; a; -b ];
    y
  end

let g_ite ctx c a b =
  if c = tt ctx then a
  else if c = ff ctx then b
  else if a = b then a
  else if a = tt ctx && b = ff ctx then c
  else if a = ff ctx && b = tt ctx then -c
  else begin
    let y = fresh ctx in
    Sat.add_clause ctx.sat [ -y; -c; a ];
    Sat.add_clause ctx.sat [ -y; c; b ];
    Sat.add_clause ctx.sat [ y; -c; -a ];
    Sat.add_clause ctx.sat [ y; c; -b ];
    y
  end

(* majority of three: carry bit of a full adder *)
let g_maj ctx a b c =
  g_or ctx (g_and ctx a b) (g_or ctx (g_and ctx a c) (g_and ctx b c))

let g_xor3 ctx a b c = g_xor ctx (g_xor ctx a b) c

(* --- word-level circuits --------------------------------------------- *)

let bits_of_const ctx ~width v =
  Array.init width (fun i ->
      if Int64.equal (Int64.logand (Int64.shift_right_logical v i) 1L) 1L
      then tt ctx
      else ff ctx)

(* ripple-carry adder; returns (sum bits, carry out) *)
let adder ctx a b cin =
  let w = Array.length a in
  let sum = Array.make w (ff ctx) in
  let carry = ref cin in
  for i = 0 to w - 1 do
    sum.(i) <- g_xor3 ctx a.(i) b.(i) !carry;
    carry := g_maj ctx a.(i) b.(i) !carry
  done;
  (sum, !carry)

let bnot ctx a = ignore ctx; Array.map (fun l -> -l) a

let add_bits ctx a b = fst (adder ctx a b (ff ctx))
let sub_bits ctx a b = fst (adder ctx a (bnot ctx b) (tt ctx))
let neg_bits ctx a = sub_bits ctx (bits_of_const ctx ~width:(Array.length a) 0L) a

(* unsigned a < b  <=>  no carry out of a + ~b + 1 *)
let ult_bit ctx a b = -(snd (adder ctx a (bnot ctx b) (tt ctx)))

let slt_bit ctx a b =
  (* flip sign bits, then unsigned compare *)
  let w = Array.length a in
  let a' = Array.copy a and b' = Array.copy b in
  a'.(w - 1) <- -a.(w - 1);
  b'.(w - 1) <- -b.(w - 1);
  ult_bit ctx a' b'

let eq_bit ctx a b =
  let w = Array.length a in
  let acc = ref (tt ctx) in
  for i = 0 to w - 1 do
    acc := g_and ctx !acc (-g_xor ctx a.(i) b.(i))
  done;
  !acc

let mul_bits ctx a b =
  let w = Array.length a in
  let acc = ref (bits_of_const ctx ~width:w 0L) in
  for i = 0 to w - 1 do
    (* partial product: (a << i) masked by b.(i) *)
    let pp =
      Array.init w (fun j -> if j < i then ff ctx else g_and ctx b.(i) a.(j - i))
    in
    acc := add_bits ctx !acc pp
  done;
  !acc

(* Restoring division: returns (quotient, remainder).  Division by zero
   follows SMT-LIB: q = all-ones, r = a. *)
let divrem_bits ctx a b =
  let w = Array.length a in
  (* work on w+1 bits so the shifted partial remainder never overflows *)
  let bext = Array.init (w + 1) (fun i -> if i < w then b.(i) else ff ctx) in
  let r = ref (Array.make (w + 1) (ff ctx)) in
  let q = Array.make w (ff ctx) in
  for i = w - 1 downto 0 do
    (* r = (r << 1) | a.(i) *)
    let shifted =
      Array.init (w + 1) (fun j ->
          if j = 0 then a.(i) else !r.(j - 1))
    in
    let geq = -ult_bit ctx shifted bext in
    q.(i) <- geq;
    let diff = sub_bits ctx shifted bext in
    r := Array.init (w + 1) (fun j -> g_ite ctx geq diff.(j) shifted.(j))
  done;
  let rem = Array.sub !r 0 w in
  (q, rem)

(* Barrel shifter.  [fill] supplies the bit shifted in; [left] selects the
   direction.  The shift amount [s] has the same width as [a]; amounts >= w
   yield all-[fill]. *)
let shift_bits ctx ~left ~fill a s =
  let w = Array.length a in
  let stages = ref a in
  let log2w =
    let rec go k = if 1 lsl k >= w then k else go (k + 1) in
    go 0
  in
  for st = 0 to log2w - 1 do
    let amount = 1 lsl st in
    let cur = !stages in
    let shifted =
      Array.init w (fun i ->
          if left then if i < amount then fill cur else cur.(i - amount)
          else if i + amount < w then cur.(i + amount)
          else fill cur)
    in
    stages := Array.init w (fun i -> g_ite ctx s.(st) shifted.(i) cur.(i))
  done;
  (* if any amount bit >= log2w (beyond those consumed) is set, and the
     consumed bits do not already cover it, the result saturates *)
  let big = ref (ff ctx) in
  for i = log2w to w - 1 do
    big := g_or ctx !big s.(i)
  done;
  (* amounts in [w, 2^log2w) when w is not a power of two *)
  if 1 lsl log2w <> w then begin
    let wbits = bits_of_const ctx ~width:w (Int64.of_int w) in
    let ge_w = -ult_bit ctx s wbits in
    big := g_or ctx !big ge_w
  end;
  let cur = !stages in
  Array.init w (fun i -> g_ite ctx !big (fill cur) cur.(i))

(* --- expression translation ------------------------------------------ *)

let rec bits_of ctx (e : Expr.t) : int array =
  match Hashtbl.find_opt ctx.memo (Expr.id e) with
  | Some b -> b
  | None ->
      let b = compute ctx e in
      Hashtbl.add ctx.memo (Expr.id e) b;
      b

and compute ctx e =
  let w = Expr.width e in
  match Expr.node e with
  | Expr.Const v -> bits_of_const ctx ~width:w v
  | Expr.Var _ ->
      let b = Array.init w (fun _ -> Sat.new_var ctx.sat) in
      ctx.var_bits := (e, b) :: !(ctx.var_bits);
      b
  | Expr.Unop (Expr.Neg, a) -> neg_bits ctx (bits_of ctx a)
  | Expr.Unop (Expr.Lognot, a) -> bnot ctx (bits_of ctx a)
  | Expr.Binop (op, a, b) ->
      let ba = bits_of ctx a and bb = bits_of ctx b in
      (match op with
       | Expr.Add -> add_bits ctx ba bb
       | Expr.Sub -> sub_bits ctx ba bb
       | Expr.Mul -> mul_bits ctx ba bb
       | Expr.Udiv -> fst (divrem_bits ctx ba bb)
       | Expr.Urem -> snd (divrem_bits ctx ba bb)
       | Expr.And -> Array.init w (fun i -> g_and ctx ba.(i) bb.(i))
       | Expr.Or -> Array.init w (fun i -> g_or ctx ba.(i) bb.(i))
       | Expr.Xor -> Array.init w (fun i -> g_xor ctx ba.(i) bb.(i))
       | Expr.Shl -> shift_bits ctx ~left:true ~fill:(fun _ -> ff ctx) ba bb
       | Expr.Lshr -> shift_bits ctx ~left:false ~fill:(fun _ -> ff ctx) ba bb
       | Expr.Ashr ->
           shift_bits ctx ~left:false ~fill:(fun cur -> cur.(w - 1)) ba bb)
  | Expr.Cmp (op, a, b) ->
      let ba = bits_of ctx a and bb = bits_of ctx b in
      let bit =
        match op with
        | Expr.Eq -> eq_bit ctx ba bb
        | Expr.Ult -> ult_bit ctx ba bb
        | Expr.Ule -> -ult_bit ctx bb ba
        | Expr.Slt -> slt_bit ctx ba bb
        | Expr.Sle -> -slt_bit ctx bb ba
      in
      [| bit |]
  | Expr.Ite (c, a, b) ->
      let bc = (bits_of ctx c).(0) in
      let ba = bits_of ctx a and bb = bits_of ctx b in
      Array.init w (fun i -> g_ite ctx bc ba.(i) bb.(i))
  | Expr.Extract { hi = _; lo; arg } ->
      let ba = bits_of ctx arg in
      Array.init w (fun i -> ba.(i + lo))
  | Expr.Concat (hi, lo) ->
      let bh = bits_of ctx hi and bl = bits_of ctx lo in
      let wl = Array.length bl in
      Array.init w (fun i -> if i < wl then bl.(i) else bh.(i - wl))
  | Expr.Read _ | Expr.Write _ | Expr.Const_array _ ->
      raise (Unsupported "array term reached the bit-blaster")

(* Blast a width-1 expression down to its single SAT literal, without
   asserting anything.  This is what lets an incremental session guard an
   assertion behind a selector: it adds [-sel; lit] itself and activates
   the assertion per-check via solver assumptions. *)
let lit_of ctx e =
  if Expr.width e <> 1 then invalid_arg "Bitblast.lit_of";
  (bits_of ctx e).(0)

(* Assert a width-1 expression unconditionally. *)
let assert_true ctx e = Sat.add_clause ctx.sat [ lit_of ctx e ]

(* Variables encountered so far with their bit literals (model extraction). *)
let blasted_vars ctx = !(ctx.var_bits)

(* Read back the value of a blasted variable from a SAT model. *)
let value_of_bits sat bits =
  let v = ref 0L in
  Array.iteri
    (fun i l ->
       let b =
         if l > 0 then Sat.value sat l
         else not (Sat.value sat (-l))
       in
       if b then v := Int64.logor !v (Int64.shift_left 1L i))
    bits;
  !v
