(** Stall-time portfolio solving.

    When a session's CDCL search exhausts its propagation budget, race
    [k] alternative solver configurations (restart schedule, phase
    policy, VSIDS decay) over the same already-eliminated assertion set
    and adopt the best success.  Attempts are hermetic — fresh solver,
    fresh bit-blast context, unguarded assertions, no interning — and
    run in parallel domains; the winner is chosen by a
    scheduling-independent rule (lowest cost, ties by configuration
    index), so the portfolio can change what a stall costs but never
    what a fleet run computes. *)

type verdict = V_sat of Model.t | V_unsat | V_unknown

type attempt = {
  at_index : int;
  at_verdict : verdict;
  at_gates : int;
  at_propagations : int;
  at_cost : int;  (** [at_gates + at_propagations]: what this attempt paid *)
  at_conflicts : int;
  at_decisions : int;
  at_restarts : int;
  at_clauses : int;
  at_top : (int * float) list;  (** VSIDS hot variables, hottest first *)
}

(** The racing grid, index 0 first (index 0 = {!Sat.default_config}:
    a fresh unguarded encoding under stock heuristics is itself a
    distinct lane from the session's incremental one). *)
val default_configs : Sat.config list

(** [run ~k ~budget ~gate_budget ~assertions ~witnesses ()] races the
    first [k] configurations over [assertions] (eliminated form +
    congruence axioms per active frame, oldest first); [witnesses] are
    the session's array read witnesses, used to reconstruct array
    points of a satisfying model.  Returns all attempts (by index) and
    the deterministic winner, if any attempt succeeded. *)
val run :
  ?configs:Sat.config list ->
  k:int ->
  budget:int ->
  gate_budget:int ->
  assertions:(Expr.t * Expr.t list) list ->
  witnesses:Arrays.read_witness list ->
  unit ->
  attempt list * attempt option
