(* Persistent solver knowledge: an on-disk answer journal per interning
   space.

   The in-memory result cache ({!Solver.Cache}) dies with the process,
   so every fleet run, daemon restart and CI job re-pays the full solver
   cost from zero.  This module persists what a reconstruction's solver
   actually established — in the order it established it — so the next
   run of the same job *replays* those answers instead of re-searching.

   Why a journal and not a bag of entries: warm-vs-cold trajectory
   identity.  The in-memory cache has temporal semantics (a query asked
   at time t can only hit entries stored before t, and [Unknown] is a
   property of the solver state at t, not of the formula).  Replaying
   the journal at each in-memory cache *miss* — and storing each
   replayed Sat/Unsat into the in-memory cache exactly where the
   original solve stored it — rebuilds the cold run's cache evolution
   step by step, so every later lookup (exact, subset, superset) answers
   identically.  Stalls are replayed too: the journal records "this
   query, at this budget, stalled with this reason", which is exactly
   what the warm run must answer to keep the ER iteration trajectory
   byte-identical while paying none of the cost.

   Keys are per-space *local* ids ({!Expr.local_id}): dense interning
   ordinals that a deterministic client reproduces across processes,
   unlike absolute ids.  A key mismatch during replay (the program, the
   corpus or a budget changed under an unchanged label) permanently
   stops replay for the space — the run continues with real solving and
   the flush rewrites the journal from the divergence point, so a stale
   store self-heals instead of poisoning trajectories.

   File format (one file per label under the cache dir):

     er-smt-cache v<version> fp=<md5 of fingerprint> md5=<md5 of payload>
     <payload: one JSON document>

   The version gate, the fingerprint (a digest of every knob that could
   change the query sequence) and the checksum each independently force
   a clean cold start — a corrupt or mismatched store is never trusted.
   Flushes write a tmp file in the same directory and [Sys.rename] it
   into place, so concurrent writers to one cache dir are last-writer-
   wins and a reader never observes a torn file. *)

module J = Er_json

let format_version = 1
let magic = "er-smt-cache"

(* --- journal entries --------------------------------------------------- *)

(* Learned-clause/VSIDS summary of one solved query: what the search
   spent and which variables it cared about.  Diagnostic payload — it
   rides along in the store and surfaces in [er_cli report]-style
   tooling; re-injecting learned clauses themselves would be unsound
   because a warm session never re-creates the cold run's DIMACS
   variable numbering. *)
type summary = {
  sm_conflicts : int;
  sm_decisions : int;
  sm_restarts : int;
  sm_clauses : int;
  sm_top : (int * float) list;  (* (SAT var, VSIDS activity), hottest first *)
}

type answer =
  | Solved_unsat
  | Solved_sat of Model.t
  | Stalled of string           (* the stall reason, replayed verbatim *)

type entry = {
  en_key : int array;           (* canonical sorted local ids *)
  en_hash : string;             (* structural digest of the active set *)
  en_budget : int;              (* propagation budget of the check *)
  en_cost : int;                (* gates + propagations the cold run paid *)
  en_answer : answer;
  en_summary : summary option;
}

(* --- JSON codec -------------------------------------------------------- *)

(* int64 model values can exceed OCaml's 63-bit [int], so they are
   serialized as decimal strings; VSIDS activities use hex float
   notation ("%h") for exact round-trips. *)

let summary_to_json s =
  J.Obj
    [ ("cf", J.Int s.sm_conflicts); ("dc", J.Int s.sm_decisions);
      ("rs", J.Int s.sm_restarts); ("cl", J.Int s.sm_clauses);
      ( "top",
        J.List
          (List.map
             (fun (v, a) ->
               J.List [ J.Int v; J.Str (Printf.sprintf "%h" a) ])
             s.sm_top) ) ]

let summary_of_json j =
  let ( let* ) = Option.bind in
  let* cf = Option.bind (J.member "cf" j) J.to_int in
  let* dc = Option.bind (J.member "dc" j) J.to_int in
  let* rs = Option.bind (J.member "rs" j) J.to_int in
  let* cl = Option.bind (J.member "cl" j) J.to_int in
  let* top = Option.bind (J.member "top" j) J.to_list in
  let* top =
    List.fold_left
      (fun acc el ->
        let* acc = acc in
        match el with
        | J.List [ J.Int v; J.Str a ] -> (
            match float_of_string_opt a with
            | Some f -> Some ((v, f) :: acc)
            | None -> None)
        | _ -> None)
      (Some []) top
  in
  Some
    { sm_conflicts = cf; sm_decisions = dc; sm_restarts = rs;
      sm_clauses = cl; sm_top = List.rev top }

let model_to_json (m : Model.t) =
  let values =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) m.Model.values []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.map (fun (k, v) -> J.List [ J.Str k; J.Str (Int64.to_string v) ])
  in
  let points =
    Hashtbl.fold (fun k pts acc -> (k, pts) :: acc) m.Model.array_points []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.map (fun (k, pts) ->
           J.List
             [ J.Str k;
               J.List
                 (List.map
                    (fun (i, e) ->
                      J.List
                        [ J.Str (Int64.to_string i);
                          J.Str (Int64.to_string e) ])
                    pts) ])
  in
  [ ("v", J.List values); ("p", J.List points) ]

let model_of_json j =
  let ( let* ) = Option.bind in
  let* values = Option.bind (J.member "v" j) J.to_list in
  let* points = Option.bind (J.member "p" j) J.to_list in
  let m = Model.empty () in
  let* () =
    List.fold_left
      (fun acc el ->
        let* () = acc in
        match el with
        | J.List [ J.Str k; J.Str v ] -> (
            match Int64.of_string_opt v with
            | Some v ->
                Model.set m k v;
                Some ()
            | None -> None)
        | _ -> None)
      (Some ()) values
  in
  let* () =
    List.fold_left
      (fun acc el ->
        let* () = acc in
        match el with
        | J.List [ J.Str k; J.List pts ] ->
            List.fold_left
              (fun acc p ->
                let* () = acc in
                match p with
                | J.List [ J.Str i; J.Str e ] -> (
                    match (Int64.of_string_opt i, Int64.of_string_opt e) with
                    | Some i, Some e ->
                        (* replay points oldest-first so the rebuilt
                           per-array lists match the original order *)
                        Model.add_array_point m k ~index:i ~elt:e;
                        Some ()
                    | _ -> None)
                | _ -> None)
              (Some ()) (List.rev pts)
        | _ -> None)
      (Some ()) points
  in
  Some m

let entry_to_json (e : entry) : J.t =
  let key = ("k", J.List (Array.to_list (Array.map (fun i -> J.Int i) e.en_key))) in
  let base =
    [ key; ("h", J.Str e.en_hash); ("b", J.Int e.en_budget);
      ("c", J.Int e.en_cost) ]
  in
  let summary =
    match e.en_summary with
    | Some s -> [ ("s", summary_to_json s) ]
    | None -> []
  in
  match e.en_answer with
  | Solved_unsat -> J.Obj ((("a", J.Str "unsat") :: base) @ summary)
  | Solved_sat m -> J.Obj ((("a", J.Str "sat") :: base) @ model_to_json m @ summary)
  | Stalled reason ->
      J.Obj ((("a", J.Str "stall") :: base) @ [ ("r", J.Str reason) ] @ summary)

let entry_of_json (j : J.t) : entry option =
  let ( let* ) = Option.bind in
  let* key = Option.bind (J.member "k" j) J.to_list in
  let* key =
    List.fold_left
      (fun acc el ->
        let* acc = acc in
        match el with J.Int i -> Some (i :: acc) | _ -> None)
      (Some []) key
  in
  let key = Array.of_list (List.rev key) in
  let* hash = Option.bind (J.member "h" j) J.to_str in
  let* budget = Option.bind (J.member "b" j) J.to_int in
  let* cost = Option.bind (J.member "c" j) J.to_int in
  let summary = Option.bind (J.member "s" j) summary_of_json in
  let* answer =
    match Option.bind (J.member "a" j) J.to_str with
    | Some "unsat" -> Some Solved_unsat
    | Some "sat" ->
        let* m = model_of_json j in
        Some (Solved_sat m)
    | Some "stall" ->
        let* r = Option.bind (J.member "r" j) J.to_str in
        Some (Stalled r)
    | _ -> None
  in
  Some
    { en_key = key; en_hash = hash; en_budget = budget; en_cost = cost;
      en_answer = answer; en_summary = summary }

(* --- file I/O ---------------------------------------------------------- *)

let sanitize_label label =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '-')
    label

let store_path ~dir ~label =
  Filename.concat dir (sanitize_label label ^ ".ercache")

let payload_to_string ~fingerprint entries =
  J.to_string
    (J.Obj
       [ ("version", J.Int format_version);
         ("fingerprint", J.Str fingerprint);
         ("entries", J.List (List.map entry_to_json entries)) ])

let render ~fingerprint entries =
  let payload = payload_to_string ~fingerprint entries in
  Printf.sprintf "%s v%d fp=%s md5=%s\n%s" magic format_version
    (Digest.to_hex (Digest.string fingerprint))
    (Digest.to_hex (Digest.string payload))
    payload

(* Parse a store file's bytes.  Every failure mode is a [Error reason]
   — the caller falls back to a cold start and reports the reason. *)
let parse ~fingerprint (contents : string) : (entry array, string) result =
  match String.index_opt contents '\n' with
  | None -> Error "truncated store: no header line"
  | Some nl -> (
      let header = String.sub contents 0 nl in
      let payload =
        String.sub contents (nl + 1) (String.length contents - nl - 1)
      in
      match String.split_on_char ' ' header with
      | [ m; v; fp; md5 ] -> (
          if not (String.equal m magic) then Error "bad magic"
          else if not (String.equal v (Printf.sprintf "v%d" format_version))
          then Error (Printf.sprintf "version mismatch (%s, want v%d)" v format_version)
          else if
            not
              (String.equal fp
                 ("fp=" ^ Digest.to_hex (Digest.string fingerprint)))
          then Error "fingerprint mismatch (config changed)"
          else if
            not
              (String.equal md5
                 ("md5=" ^ Digest.to_hex (Digest.string payload)))
          then Error "checksum mismatch (corrupt or torn store)"
          else
            match J.parse payload with
            | None -> Error "unparseable payload"
            | Some doc -> (
                match
                  ( Option.bind (J.member "version" doc) J.to_int,
                    Option.bind (J.member "fingerprint" doc) J.to_str,
                    Option.bind (J.member "entries" doc) J.to_list )
                with
                | Some v, Some fpr, Some entries
                  when v = format_version && String.equal fpr fingerprint -> (
                    let decoded = List.map entry_of_json entries in
                    if List.exists Option.is_none decoded then
                      Error "undecodable entry"
                    else
                      Ok
                        (Array.of_list
                           (List.map Option.get decoded)))
                | _ -> Error "payload header mismatch"))
      | _ -> Error "malformed header")

let tmp_counter = Atomic.make 0

let write_atomically path contents =
  let dir = Filename.dirname path in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
      (Atomic.fetch_and_add tmp_counter 1)
  in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents);
  Sys.rename tmp path

(* --- per-space slots --------------------------------------------------- *)

type slot = {
  sl_mutex : Mutex.t;
  sl_path : string;
  sl_fingerprint : string;
  sl_replay : entry array;          (* the loaded journal *)
  mutable sl_cursor : int;
  mutable sl_diverged : bool;       (* replay stopped; journal rewrites *)
  mutable sl_fresh : entry list;    (* newly recorded, newest first *)
  mutable sl_replayed : int;
  mutable sl_saved_cost : int;      (* cold cost of replayed entries *)
  mutable sl_warnings : string list;
}

(* space stamp -> slot, same discipline as {!Solver.Cache.shards} *)
let slots : (int, slot) Hashtbl.t = Hashtbl.create 16
let slots_mutex = Mutex.create ()

type handle = slot

let current () : handle option =
  let stamp = Expr.space_stamp () in
  Mutex.lock slots_mutex;
  let s = Hashtbl.find_opt slots stamp in
  Mutex.unlock slots_mutex;
  s

type status =
  | Loaded of { entries : int; replayable_cost : int }
  | Cold of { reason : string option }
      (** [None]: no store file yet; [Some r]: a store existed but was
          rejected — the run proceeds cold and overwrites it at flush. *)

let attach ~dir ~label ~fingerprint : status =
  let path = store_path ~dir ~label in
  let loaded, status =
    if not (Sys.file_exists path) then ([||], Cold { reason = None })
    else
      let contents =
        try
          let ic = open_in_bin path in
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () -> Ok (really_input_string ic (in_channel_length ic)))
        with Sys_error m -> Error m
      in
      match Result.bind contents (parse ~fingerprint) with
      | Ok entries ->
          let cost =
            Array.fold_left (fun a e -> a + e.en_cost) 0 entries
          in
          (entries, Loaded { entries = Array.length entries; replayable_cost = cost })
      | Error reason -> ([||], Cold { reason = Some reason })
  in
  let slot =
    {
      sl_mutex = Mutex.create ();
      sl_path = path;
      sl_fingerprint = fingerprint;
      sl_replay = loaded;
      sl_cursor = 0;
      sl_diverged = false;
      sl_fresh = [];
      sl_replayed = 0;
      sl_saved_cost = 0;
      sl_warnings =
        (match status with
        | Cold { reason = Some r } ->
            [ Printf.sprintf "stale store rejected (%s): cold start" r ]
        | _ -> []);
    }
  in
  let stamp = Expr.space_stamp () in
  Mutex.lock slots_mutex;
  Hashtbl.replace slots stamp slot;
  Mutex.unlock slots_mutex;
  status

(* --- solver-side hooks ------------------------------------------------- *)

let locked sl f =
  Mutex.lock sl.sl_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock sl.sl_mutex) f

(* Keys containing foreign-space markers (negative components) are
   neither recorded nor replayed: the markers are not stable across
   processes, so such an entry could never match.  In practice every
   top-level assertion is interned by the job's own space and this
   never fires. *)
let key_portable key = Array.for_all (fun i -> i >= 0) key

(* The next journal answer, iff the run is still in lock-step with the
   recorded one: same canonical key, same structural digest, same
   budget, at the same position.  The digest matters: local ids are
   creation ordinals, so a changed run can mint *different* formulas at
   the same ordinals — the hash makes a match mean "the same formulas",
   never just "the same positions".  A mismatch permanently disables
   replay for the space (the journal tail is rewritten from here at
   flush). *)
let replay (sl : handle) ~key ~hash ~budget : (answer * int) option =
  if not (key_portable key) then None
  else
    locked sl @@ fun () ->
    if sl.sl_diverged || sl.sl_cursor >= Array.length sl.sl_replay then None
    else
      let e = sl.sl_replay.(sl.sl_cursor) in
      if e.en_budget = budget && e.en_key = key && String.equal e.en_hash hash
      then begin
        sl.sl_cursor <- sl.sl_cursor + 1;
        sl.sl_replayed <- sl.sl_replayed + 1;
        sl.sl_saved_cost <- sl.sl_saved_cost + e.en_cost;
        Some (e.en_answer, e.en_cost)
      end
      else begin
        sl.sl_diverged <- true;
        sl.sl_warnings <-
          Printf.sprintf
            "journal diverged at entry %d: replay disabled, store will be \
             rewritten"
            sl.sl_cursor
          :: sl.sl_warnings;
        None
      end

let record (sl : handle) ~key ~hash ~budget ~cost ?summary answer : unit =
  if key_portable key then
    locked sl @@ fun () ->
    sl.sl_fresh <-
      { en_key = key; en_hash = hash; en_budget = budget; en_cost = cost;
        en_answer = answer; en_summary = summary }
      :: sl.sl_fresh

let saved_cost (sl : handle) = locked sl @@ fun () -> sl.sl_saved_cost
let replayed (sl : handle) = locked sl @@ fun () -> sl.sl_replayed

(* --- flush ------------------------------------------------------------- *)

type flush_result = {
  fl_path : string;
  fl_entries : int;     (* entries in the final store *)
  fl_appended : int;    (* recorded fresh this run *)
  fl_replayed : int;
  fl_saved_cost : int;
  fl_wrote : bool;      (* a flush happened (journal changed) *)
  fl_warnings : string list;
}

(* Detach the current space's slot and write the journal back if it
   changed.  Final contents: the consumed (still-valid) prefix of the
   loaded journal, then everything recorded fresh this run.  A run that
   replayed a prefix and recorded nothing keeps the store untouched —
   including its unconsumed tail, so an interrupted warm run cannot
   erase knowledge it did not get to use. *)
let detach_and_flush () : flush_result option =
  let stamp = Expr.space_stamp () in
  Mutex.lock slots_mutex;
  let slot = Hashtbl.find_opt slots stamp in
  Hashtbl.remove slots stamp;
  Mutex.unlock slots_mutex;
  match slot with
  | None -> None
  | Some sl ->
      locked sl @@ fun () ->
      let fresh = List.rev sl.sl_fresh in
      let dirty = sl.sl_diverged || fresh <> [] in
      let entries =
        if not dirty then Array.to_list sl.sl_replay
        else
          Array.to_list (Array.sub sl.sl_replay 0 sl.sl_cursor) @ fresh
      in
      let wrote =
        if dirty then begin
          (try
             write_atomically sl.sl_path
               (render ~fingerprint:sl.sl_fingerprint entries)
           with Sys_error m ->
             sl.sl_warnings <-
               Printf.sprintf "flush failed: %s" m :: sl.sl_warnings);
          true
        end
        else false
      in
      Some
        {
          fl_path = sl.sl_path;
          fl_entries = List.length entries;
          fl_appended = List.length fresh;
          fl_replayed = sl.sl_replayed;
          fl_saved_cost = sl.sl_saved_cost;
          fl_wrote = wrote;
          fl_warnings = List.rev sl.sl_warnings;
        }
