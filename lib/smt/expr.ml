(* Hash-consed term DAG for the ER constraint language.

   Every term is interned, so structural equality is physical equality and
   each node has a unique integer id.  Smart constructors perform
   constant folding and the local rewrites that a solver front-end such as
   STP would apply (read-over-write at equal/distinct constant indices,
   neutral elements, ite collapsing, ...).

   Interning is organized into {e spaces} so that independent failure
   reconstructions — the unit of work of fleet mode — are bit-for-bit
   deterministic regardless of how many domains run concurrently:

   - each space owns its own intern table, guarded by a mutex, so a
     space shared between domains stays consistent;
   - ids come from one process-wide atomic counter, so they are unique
     across *all* spaces (two distinct terms never share an id, which
     keeps id-keyed caches and id-deduplicated traversals sound even
     when terms from different spaces meet);
   - within one space, the *relative* order of two ids depends only on
     the interning order of that space's client.  A fleet worker that
     runs a bug inside a fresh space therefore reproduces the exact
     id ordering — and hence the exact equality orientation, blasting
     structure and solver trajectory — of a sequential run, no matter
     what the other domains are interning in their own spaces.

   The default space is created at module init (it owns [tru], [fls] and
   everything a non-fleet caller builds); [in_fresh_space] scopes a
   computation to a brand-new empty space on the current domain. *)

type unop =
  | Neg                              (* two's complement negation *)
  | Lognot                           (* bitwise complement *)

type binop =
  | Add | Sub | Mul | Udiv | Urem
  | And | Or | Xor
  | Shl | Lshr | Ashr

type cmpop = Eq | Ult | Ule | Slt | Sle

type node =
  | Const of int64                          (* value, truncated to width *)
  | Var of string                           (* symbolic input *)
  | Unop of unop * t
  | Binop of binop * t * t
  | Cmp of cmpop * t * t
  | Ite of t * t * t
  | Extract of { hi : int; lo : int; arg : t }
  | Concat of t * t                         (* high-part, low-part *)
  | Read of { arr : t; idx : t }
  | Write of { arr : t; idx : t; value : t }
  | Const_array of int64                    (* every element = default *)

and t = { node : node; ty : Ty.t; id : int; hkey : int }

let node e = e.node
let ty e = e.ty
let id e = e.id

let width e = Ty.width e.ty

let equal (a : t) (b : t) = a == b
let compare (a : t) (b : t) = Stdlib.compare a.id b.id
let hash (a : t) = a.hkey

(* ------------------------------------------------------------------ *)
(* Interning                                                           *)
(* ------------------------------------------------------------------ *)

let hash_node ty n =
  let ph = Hashtbl.hash in
  let base =
    match n with
    | Const v -> ph (0, v)
    | Var s -> ph (1, s)
    | Unop (op, a) -> ph (2, op, a.id)
    | Binop (op, a, b) -> ph (3, op, a.id, b.id)
    | Cmp (op, a, b) -> ph (4, op, a.id, b.id)
    | Ite (c, a, b) -> ph (5, c.id, a.id, b.id)
    | Extract { hi; lo; arg } -> ph (6, hi, lo, arg.id)
    | Concat (a, b) -> ph (7, a.id, b.id)
    | Read { arr; idx } -> ph (8, arr.id, idx.id)
    | Write { arr; idx; value } -> ph (9, arr.id, idx.id, value.id)
    | Const_array v -> ph (10, v)
  in
  ph (base, ty)

let node_equal na nb =
  match na, nb with
  | Const a, Const b -> Int64.equal a b
  | Var a, Var b -> String.equal a b
  | Unop (o1, a1), Unop (o2, a2) -> o1 = o2 && a1 == a2
  | Binop (o1, a1, b1), Binop (o2, a2, b2) -> o1 = o2 && a1 == a2 && b1 == b2
  | Cmp (o1, a1, b1), Cmp (o2, a2, b2) -> o1 = o2 && a1 == a2 && b1 == b2
  | Ite (c1, a1, b1), Ite (c2, a2, b2) -> c1 == c2 && a1 == a2 && b1 == b2
  | Extract e1, Extract e2 -> e1.hi = e2.hi && e1.lo = e2.lo && e1.arg == e2.arg
  | Concat (a1, b1), Concat (a2, b2) -> a1 == a2 && b1 == b2
  | Read r1, Read r2 -> r1.arr == r2.arr && r1.idx == r2.idx
  | Write w1, Write w2 ->
      w1.arr == w2.arr && w1.idx == w2.idx && w1.value == w2.value
  | Const_array a, Const_array b -> Int64.equal a b
  | ( ( Const _ | Var _ | Unop _ | Binop _ | Cmp _ | Ite _ | Extract _
      | Concat _ | Read _ | Write _ | Const_array _ ),
      _ ) ->
      false

module Key = struct
  type nonrec t = t

  let equal a b = node_equal a.node b.node && Ty.equal a.ty b.ty
  let hash a = a.hkey
end

module Table = Hashtbl.Make (Key)

(* Ids are unique across every space for the lifetime of the process. *)
let next_id = Atomic.make 0

(* Space stamps distinguish interning spaces (the solver shards its
   result cache by stamp, so cache entries never cross spaces). *)
let next_stamp = Atomic.make 0

type space = {
  sp_stamp : int;
  sp_mutex : Mutex.t;
  sp_table : t Table.t;
  (* Absolute id -> per-space local id.  Local ids are dense (0, 1, 2,
     ... in interning order of this space), so they are stable across
     processes for any deterministic client — unlike absolute ids,
     which depend on what every other space interned first.  They are
     what the persistent solver-knowledge store keys its entries by. *)
  sp_locals : (int, int) Hashtbl.t;
  mutable sp_next_local : int;
}

let create_space () =
  {
    sp_stamp = Atomic.fetch_and_add next_stamp 1;
    sp_mutex = Mutex.create ();
    sp_table = Table.create 65_536;
    sp_locals = Hashtbl.create 65_536;
    sp_next_local = 0;
  }

(* The space terms are interned into, per domain.  Every domain starts
   in the shared default space; fleet workers switch to a fresh space
   per task via [with_space] / [in_fresh_space]. *)
let default_space = create_space ()
let current : space Domain.DLS.key = Domain.DLS.new_key (fun () -> default_space)

let space_stamp () = (Domain.DLS.get current).sp_stamp

let with_space sp f =
  let prev = Domain.DLS.get current in
  Domain.DLS.set current sp;
  Fun.protect ~finally:(fun () -> Domain.DLS.set current prev) f

let in_fresh_space f = with_space (create_space ()) f

let intern ty n =
  let sp = Domain.DLS.get current in
  let hkey = hash_node ty n in
  let probe = { node = n; ty; id = -1; hkey } in
  Mutex.lock sp.sp_mutex;
  match Table.find_opt sp.sp_table probe with
  | Some e ->
      Mutex.unlock sp.sp_mutex;
      e
  | None ->
      let e = { probe with id = Atomic.fetch_and_add next_id 1 } in
      Table.add sp.sp_table e e;
      Hashtbl.add sp.sp_locals e.id sp.sp_next_local;
      sp.sp_next_local <- sp.sp_next_local + 1;
      Mutex.unlock sp.sp_mutex;
      e

(* The current space's local id of [e]; terms interned by *another*
   space (the shared [tru]/[fls], say) map to a negative marker derived
   from their absolute id.  Within one space, local ids are
   order-isomorphic to absolute ids, so sorting by either gives the
   same canonical order. *)
let local_id e =
  let sp = Domain.DLS.get current in
  Mutex.lock sp.sp_mutex;
  let l = Hashtbl.find_opt sp.sp_locals e.id in
  Mutex.unlock sp.sp_mutex;
  match l with Some l -> l | None -> -e.id - 1

(* Number of distinct terms ever created (across all spaces); used by
   the offline-overhead experiment of section 5.3. *)
let live_nodes () = Atomic.get next_id

(* ------------------------------------------------------------------ *)
(* Constructors                                                        *)
(* ------------------------------------------------------------------ *)

let const ~width v = intern (Ty.bv width) (Const (Ty.truncate width v))
let bool_ b = const ~width:1 (if b then 1L else 0L)
let tru = bool_ true
let fls = bool_ false

let var name ty = intern ty (Var name)
let bv_var name ~width = var name (Ty.bv width)
let arr_var name ~idx ~elt = var name (Ty.arr ~idx ~elt)
let const_array ~idx ~elt default =
  intern (Ty.arr ~idx ~elt) (Const_array (Ty.truncate elt default))

let is_const e = match e.node with Const _ -> true | _ -> false

let to_const e = match e.node with Const v -> Some v | _ -> None

let is_true e = match e.node with Const 1L when width e = 1 -> true | _ -> false
let is_false e = match e.node with Const 0L when width e = 1 -> true | _ -> false

let elt_width e =
  match e.ty with
  | Ty.Arr { elt; _ } -> elt
  | Ty.Bv _ -> invalid_arg "Expr.elt_width: not an array"

let idx_width e =
  match e.ty with
  | Ty.Arr { idx; _ } -> idx
  | Ty.Bv _ -> invalid_arg "Expr.idx_width: not an array"

(* --- concrete semantics of the operators (shared with Model.eval) --- *)

let eval_unop op w a =
  let open Int64 in
  match op with
  | Neg -> Ty.truncate w (neg a)
  | Lognot -> Ty.truncate w (lognot a)

let eval_binop op w a b =
  let open Int64 in
  match op with
  | Add -> Ty.truncate w (add a b)
  | Sub -> Ty.truncate w (sub a b)
  | Mul -> Ty.truncate w (mul a b)
  | Udiv -> if equal b 0L then Ty.mask w else Ty.truncate w (unsigned_div a b)
  | Urem -> if equal b 0L then a else Ty.truncate w (unsigned_rem a b)
  | And -> logand a b
  | Or -> logor a b
  | Xor -> logxor a b
  | Shl ->
      let s = to_int (Ty.truncate w b) in
      if s >= w then 0L else Ty.truncate w (shift_left a s)
  | Lshr ->
      let s = to_int (Ty.truncate w b) in
      if s >= w then 0L else shift_right_logical a s
  | Ashr ->
      let s = to_int (Ty.truncate w b) in
      let sa = Ty.sign_extend w a in
      if s >= 63 then Ty.truncate w (shift_right sa 63)
      else Ty.truncate w (shift_right sa s)

let eval_cmp op w a b =
  let sa = Ty.sign_extend w a and sb = Ty.sign_extend w b in
  match op with
  | Eq -> Int64.equal a b
  | Ult -> Int64.unsigned_compare a b < 0
  | Ule -> Int64.unsigned_compare a b <= 0
  | Slt -> Int64.compare sa sb < 0
  | Sle -> Int64.compare sa sb <= 0

(* --- bitvector operations with folding ------------------------------ *)

let unop op a =
  let w = width a in
  match a.node with
  | Const va -> const ~width:w (eval_unop op w va)
  | _ -> intern a.ty (Unop (op, a))

let check_same_width name a b =
  if width a <> width b then
    invalid_arg (Printf.sprintf "Expr.%s: width mismatch (%d vs %d)"
                   name (width a) (width b))

let rec binop op a b =
  check_same_width "binop" a b;
  let w = width a in
  match a.node, b.node with
  | Const va, Const vb -> const ~width:w (eval_binop op w va vb)
  | _ -> (
      match op with
      | Add -> (
          match a.node, b.node with
          | Const 0L, _ -> b
          | _, Const 0L -> a
          (* (x + c1) + c2  ==>  x + (c1+c2): keeps address arithmetic flat *)
          | Binop (Add, x, { node = Const c1; _ }), Const c2 ->
              binop Add x (const ~width:w (Int64.add c1 c2))
          | Const _, _ -> intern a.ty (Binop (Add, b, a))
          | _ -> intern a.ty (Binop (Add, a, b)))
      | Sub ->
          if a == b then const ~width:w 0L
          else if is_const_zero b then a
          else intern a.ty (Binop (Sub, a, b))
      | Mul -> (
          match a.node, b.node with
          | Const 0L, _ -> a
          | _, Const 0L -> b
          | Const 1L, _ -> b
          | _, Const 1L -> a
          | Const _, _ -> intern a.ty (Binop (Mul, b, a))
          | _ -> intern a.ty (Binop (Mul, a, b)))
      | And -> (
          match a.node, b.node with
          | Const 0L, _ -> a
          | _, Const 0L -> b
          | Const m, _ when Int64.equal m (Ty.mask w) -> b
          | _, Const m when Int64.equal m (Ty.mask w) -> a
          | _ when a == b -> a
          | _ -> intern a.ty (Binop (And, a, b)))
      | Or -> (
          match a.node, b.node with
          | Const 0L, _ -> b
          | _, Const 0L -> a
          | Const m, _ when Int64.equal m (Ty.mask w) -> a
          | _, Const m when Int64.equal m (Ty.mask w) -> b
          | _ when a == b -> a
          | _ -> intern a.ty (Binop (Or, a, b)))
      | Xor ->
          if a == b then const ~width:w 0L
          else if is_const_zero a then b
          else if is_const_zero b then a
          else intern a.ty (Binop (Xor, a, b))
      | Shl | Lshr | Ashr ->
          if is_const_zero b then a else intern a.ty (Binop (op, a, b))
      | Udiv ->
          (match b.node with
           | Const 1L -> a
           | _ -> intern a.ty (Binop (op, a, b)))
      | Urem -> intern a.ty (Binop (op, a, b)))

and is_const_zero e = match e.node with Const 0L -> true | _ -> false

let add a b = binop Add a b
let sub a b = binop Sub a b
let mul a b = binop Mul a b
let udiv a b = binop Udiv a b
let urem a b = binop Urem a b
let logand_ a b = binop And a b
let logor_ a b = binop Or a b
let logxor_ a b = binop Xor a b
let shl a b = binop Shl a b
let lshr a b = binop Lshr a b
let ashr a b = binop Ashr a b
let neg a = unop Neg a
let lognot_ a = unop Lognot a

let cmp op a b =
  check_same_width "cmp" a b;
  let w = width a in
  match a.node, b.node with
  | Const va, Const vb -> bool_ (eval_cmp op w va vb)
  | _ ->
      if a == b then
        bool_ (match op with Eq | Ule | Sle -> true | Ult | Slt -> false)
      else
        (* orient equality by id so that [eq a b] and [eq b a] intern to the
           same node *)
        let a, b =
          match op with Eq when a.id > b.id -> b, a | _ -> a, b
        in
        intern Ty.bool (Cmp (op, a, b))

let eq a b = cmp Eq a b
let ult a b = cmp Ult a b
let ule a b = cmp Ule a b
let slt a b = cmp Slt a b
let sle a b = cmp Sle a b

let not_ a =
  if width a <> 1 then invalid_arg "Expr.not_: not a boolean";
  match a.node with
  | Const v -> bool_ (Int64.equal v 0L)
  | Unop (Lognot, inner) -> inner
  | _ -> unop Lognot a

let ne a b = not_ (eq a b)
let ugt a b = ult b a
let uge a b = ule b a
let sgt a b = slt b a
let sge a b = sle b a

let and_ a b =
  if is_true a then b
  else if is_true b then a
  else if is_false a || is_false b then fls
  else logand_ a b

let or_ a b =
  if is_false a then b
  else if is_false b then a
  else if is_true a || is_true b then tru
  else logor_ a b

let implies a b = or_ (not_ a) b

let conj = function
  | [] -> tru
  | e :: rest -> List.fold_left and_ e rest

let ite c a b =
  if width c <> 1 then invalid_arg "Expr.ite: condition not boolean";
  if not (Ty.equal a.ty b.ty) then invalid_arg "Expr.ite: branch sort mismatch";
  if is_true c then a
  else if is_false c then b
  else if a == b then a
  else
    match a.node, b.node with
    (* ite c 1 0 = c ; ite c 0 1 = not c (boolean-valued ite) *)
    | Const 1L, Const 0L when Ty.equal a.ty Ty.bool -> c
    | Const 0L, Const 1L when Ty.equal a.ty Ty.bool -> not_ c
    | _ -> intern a.ty (Ite (c, a, b))

let extract ~hi ~lo arg =
  let w = width arg in
  if lo < 0 || hi >= w || hi < lo then invalid_arg "Expr.extract: bad range";
  if lo = 0 && hi = w - 1 then arg
  else
    let nw = hi - lo + 1 in
    match arg.node with
    | Const v ->
        const ~width:nw (Int64.shift_right_logical v lo)
    | Extract { lo = lo'; arg = inner; _ } ->
        intern (Ty.bv nw) (Extract { hi = hi + lo'; lo = lo + lo'; arg = inner })
    | _ -> intern (Ty.bv nw) (Extract { hi; lo; arg })

let concat hi lo =
  let wh = width hi and wl = width lo in
  if wh + wl > 64 then invalid_arg "Expr.concat: result too wide";
  match hi.node, lo.node with
  | Const vh, Const vl ->
      const ~width:(wh + wl) (Int64.logor (Int64.shift_left vh wl) vl)
  | _ -> intern (Ty.bv (wh + wl)) (Concat (hi, lo))

let zero_extend ~to_ arg =
  let w = width arg in
  if to_ < w then invalid_arg "Expr.zero_extend";
  if to_ = w then arg else concat (const ~width:(to_ - w) 0L) arg

let sign_extend_e ~to_ arg =
  let w = width arg in
  if to_ < w then invalid_arg "Expr.sign_extend";
  if to_ = w then arg
  else
    let sign = extract ~hi:(w - 1) ~lo:(w - 1) arg in
    let ext = ite (eq sign (const ~width:1 1L)) (const ~width:(to_ - w) (-1L))
        (const ~width:(to_ - w) 0L) in
    concat ext arg

let truncate ~to_ arg =
  let w = width arg in
  if to_ > w then invalid_arg "Expr.truncate";
  if to_ = w then arg else extract ~hi:(to_ - 1) ~lo:0 arg

(* --- array operations ----------------------------------------------- *)

let write arr idx value =
  (match arr.ty with
   | Ty.Arr { idx = iw; elt = ew } ->
       if width idx <> iw then invalid_arg "Expr.write: index width";
       if width value <> ew then invalid_arg "Expr.write: element width"
   | Ty.Bv _ -> invalid_arg "Expr.write: not an array");
  (* write a i (read a i) = a *)
  (match value.node with
   | Read { arr = a'; idx = i' } when a' == arr && i' == idx -> arr
   | _ ->
       (* overwrite at the same index: write (write a i v) i w = write a i w *)
       match arr.node with
       | Write { arr = base; idx = i'; _ } when i' == idx ->
           intern arr.ty (Write { arr = base; idx; value })
       | _ -> intern arr.ty (Write { arr; idx; value }))

let rec read arr idx =
  (match arr.ty with
   | Ty.Arr { idx = iw; _ } ->
       if width idx <> iw then invalid_arg "Expr.read: index width"
   | Ty.Bv _ -> invalid_arg "Expr.read: not an array");
  match arr.node with
  | Const_array default -> const ~width:(elt_width arr) default
  | Write { arr = base; idx = widx; value } -> (
      if widx == idx then value
      else
        match widx.node, idx.node with
        (* distinct constant indices: skip over the write *)
        | Const a, Const b when not (Int64.equal a b) -> read base idx
        | _ -> intern (Ty.bv (elt_width arr)) (Read { arr; idx }))
  | _ -> intern (Ty.bv (elt_width arr)) (Read { arr; idx })

(* ------------------------------------------------------------------ *)
(* Traversal helpers                                                   *)
(* ------------------------------------------------------------------ *)

let children e =
  match e.node with
  | Const _ | Var _ | Const_array _ -> []
  | Unop (_, a) | Extract { arg = a; _ } -> [ a ]
  | Binop (_, a, b) | Cmp (_, a, b) | Concat (a, b) -> [ a; b ]
  | Ite (a, b, c) -> [ a; b; c ]
  | Read { arr; idx } -> [ arr; idx ]
  | Write { arr; idx; value } -> [ arr; idx; value ]

(* Depth-first post-order fold over the distinct subterms of [roots]. *)
let fold_subterms f acc roots =
  let seen = Hashtbl.create 256 in
  let acc = ref acc in
  let rec go e =
    if not (Hashtbl.mem seen e.id) then begin
      Hashtbl.add seen e.id ();
      List.iter go (children e);
      acc := f !acc e
    end
  in
  List.iter go roots;
  !acc

let iter_subterms f roots = fold_subterms (fun () e -> f e) () roots

let size e = fold_subterms (fun n _ -> n + 1) 0 [ e ]

(* Free variables, in first-occurrence order. *)
let vars roots =
  List.rev
    (fold_subterms
       (fun acc e -> match e.node with Var _ -> e :: acc | _ -> acc)
       [] roots)

(* Parallel substitution of interned terms. *)
let substitute map roots =
  let memo = Hashtbl.create 256 in
  let rec go e =
    match Hashtbl.find_opt memo e.id with
    | Some e' -> e'
    | None ->
        let e' =
          match map e with
          | Some r -> r
          | None -> (
              match e.node with
              | Const _ | Var _ | Const_array _ -> e
              | Unop (op, a) -> unop op (go a)
              | Binop (op, a, b) -> binop op (go a) (go b)
              | Cmp (op, a, b) -> cmp op (go a) (go b)
              | Ite (c, a, b) -> ite (go c) (go a) (go b)
              | Extract { hi; lo; arg } -> extract ~hi ~lo (go arg)
              | Concat (a, b) -> concat (go a) (go b)
              | Read { arr; idx } -> read (go arr) (go idx)
              | Write { arr; idx; value } -> write (go arr) (go idx) (go value))
        in
        Hashtbl.add memo e.id e';
        e'
  in
  List.map go roots

(* ------------------------------------------------------------------ *)
(* Pretty printing                                                     *)
(* ------------------------------------------------------------------ *)

let unop_name = function Neg -> "neg" | Lognot -> "not"

let binop_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Udiv -> "udiv"
  | Urem -> "urem" | And -> "and" | Or -> "or" | Xor -> "xor"
  | Shl -> "shl" | Lshr -> "lshr" | Ashr -> "ashr"

let cmpop_name = function
  | Eq -> "eq" | Ult -> "ult" | Ule -> "ule" | Slt -> "slt" | Sle -> "sle"

let rec pp ppf e =
  match e.node with
  | Const v ->
      if width e = 1 then Fmt.string ppf (if Int64.equal v 1L then "true" else "false")
      else Fmt.pf ppf "%Ld:bv%d" v (width e)
  | Var s -> Fmt.string ppf s
  | Unop (op, a) -> Fmt.pf ppf "(%s %a)" (unop_name op) pp a
  | Binop (op, a, b) -> Fmt.pf ppf "(%s %a %a)" (binop_name op) pp a pp b
  | Cmp (op, a, b) -> Fmt.pf ppf "(%s %a %a)" (cmpop_name op) pp a pp b
  | Ite (c, a, b) -> Fmt.pf ppf "(ite %a %a %a)" pp c pp a pp b
  | Extract { hi; lo; arg } -> Fmt.pf ppf "(extract %d %d %a)" hi lo pp arg
  | Concat (a, b) -> Fmt.pf ppf "(concat %a %a)" pp a pp b
  | Read { arr; idx } -> Fmt.pf ppf "(read %a %a)" pp arr pp idx
  | Write { arr; idx; value } ->
      Fmt.pf ppf "(write %a %a %a)" pp arr pp idx pp value
  | Const_array v -> Fmt.pf ppf "(const-array %Ld)" v

let to_string e = Fmt.str "%a" pp e
