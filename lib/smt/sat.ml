(* A from-scratch CDCL SAT solver in the MiniSat lineage: two watched
   literals, first-UIP clause learning, VSIDS decision heuristic with an
   indexed binary heap, phase saving, and Luby restarts.

   The solver is budgeted: [solve ~budget] counts propagated literals and
   gives up deterministically once the budget is exhausted.  This budget is
   ER's stand-in for the paper's 30-second constraint-solver timeout — it
   makes "symbolic execution stalls" a reproducible event rather than a
   wall-clock race. *)

type result = Sat | Unsat | Unknown

(* Literal encoding: variable [v] (0-based) has positive literal [2v] and
   negative literal [2v+1].  External clauses use DIMACS conventions
   (non-zero ints, sign = polarity, 1-based). *)

let lit_of_dimacs l =
  if l = 0 then invalid_arg "Sat.lit_of_dimacs: zero literal"
  else if l > 0 then 2 * (l - 1)
  else (2 * (-l - 1)) + 1

let lit_neg l = l lxor 1
let lit_var l = l lsr 1

(* --- growable int vectors ------------------------------------------- *)

module Veci = struct
  type t = { mutable data : int array; mutable len : int }

  let create () = { data = Array.make 16 0; len = 0 }

  let push v x =
    if v.len = Array.length v.data then begin
      let data = Array.make (2 * v.len) 0 in
      Array.blit v.data 0 data 0 v.len;
      v.data <- data
    end;
    v.data.(v.len) <- x;
    v.len <- v.len + 1

  let get v i = v.data.(i)
  let set v i x = v.data.(i) <- x
  let len v = v.len
  let clear v = v.len <- 0
  let shrink v n = v.len <- n
end

(* --- indexed max-heap on variable activity --------------------------- *)

module Heap = struct
  type t = {
    mutable heap : int array;       (* heap of variables *)
    mutable index : int array;      (* var -> position, -1 if absent *)
    mutable size : int;
    act : float array ref;          (* shared activity array *)
  }

  let create act = { heap = Array.make 16 0; index = Array.make 16 (-1); size = 0; act }

  let ensure t n =
    if n > Array.length t.index then begin
      let cap = max n (2 * Array.length t.index) in
      let index = Array.make cap (-1) in
      Array.blit t.index 0 index 0 (Array.length t.index);
      t.index <- index;
      let heap = Array.make cap 0 in
      Array.blit t.heap 0 heap 0 t.size;
      t.heap <- heap
    end

  let lt t a b = !(t.act).(a) > !(t.act).(b)

  let rec sift_up t i =
    if i > 0 then begin
      let p = (i - 1) / 2 in
      if lt t t.heap.(i) t.heap.(p) then begin
        let vi = t.heap.(i) and vp = t.heap.(p) in
        t.heap.(i) <- vp; t.heap.(p) <- vi;
        t.index.(vp) <- i; t.index.(vi) <- p;
        sift_up t p
      end
    end

  let rec sift_down t i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let best = ref i in
    if l < t.size && lt t t.heap.(l) t.heap.(!best) then best := l;
    if r < t.size && lt t t.heap.(r) t.heap.(!best) then best := r;
    if !best <> i then begin
      let vi = t.heap.(i) and vb = t.heap.(!best) in
      t.heap.(i) <- vb; t.heap.(!best) <- vi;
      t.index.(vb) <- i; t.index.(vi) <- !best;
      sift_down t !best
    end

  let mem t v = v < Array.length t.index && t.index.(v) >= 0

  let insert t v =
    ensure t (v + 1);
    if not (mem t v) then begin
      t.heap.(t.size) <- v;
      t.index.(v) <- t.size;
      t.size <- t.size + 1;
      sift_up t (t.size - 1)
    end

  let decrease t v = if mem t v then sift_up t t.index.(v)

  let pop t =
    let v = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      let last = t.heap.(t.size) in
      t.heap.(0) <- last;
      t.index.(last) <- 0;
      sift_down t 0
    end;
    t.index.(v) <- -1;
    v

  let is_empty t = t.size = 0
end

(* --- solver ---------------------------------------------------------- *)

(* Search-heuristic knobs.  [default_config] reproduces the historical
   hard-coded behavior bit for bit (VSIDS decay 0.95, Luby restarts with
   base 64, phase saving on, initial phase false) — every default-config
   trajectory in the committed bench baselines depends on that.  The
   portfolio attack on stalls races variations of these knobs. *)
type config = {
  var_decay : float;      (* activity divisor per conflict, in (0,1] *)
  restart : [ `Luby of int | `Geometric of int * float ];
  phase_saving : bool;    (* remember last polarity per variable *)
  default_phase : bool;   (* polarity before any save (or always, if
                             phase saving is off) *)
}

let default_config =
  { var_decay = 0.95; restart = `Luby 64; phase_saving = true;
    default_phase = false }

type t = {
  config : config;
  mutable nvars : int;
  mutable clauses : int array array;      (* clause arena *)
  mutable nclauses : int;
  mutable watches : Veci.t array;         (* literal -> clause ids *)
  mutable assigns : int array;            (* var -> 0 undef | 1 | -1 *)
  mutable level : int array;
  mutable reason : int array;             (* var -> clause id or -1 *)
  mutable phase : bool array;             (* saved polarity *)
  trail : Veci.t;
  trail_lim : Veci.t;
  mutable qhead : int;
  mutable activity : float array ref;
  heap : Heap.t;
  mutable var_inc : float;
  mutable ok : bool;                      (* false once UNSAT at level 0 *)
  mutable propagations : int;
  mutable conflicts : int;
  mutable decisions : int;
  mutable restarts : int;
  seen : Veci.t;                          (* scratch for analyze *)
  mutable seen_flags : bool array;
}

let create ?(config = default_config) () =
  let activity = ref (Array.make 16 0.0) in
  {
    config;
    nvars = 0;
    clauses = Array.make 64 [||];
    nclauses = 0;
    watches = Array.init 32 (fun _ -> Veci.create ());
    assigns = Array.make 16 0;
    level = Array.make 16 0;
    reason = Array.make 16 (-1);
    phase = Array.make 16 config.default_phase;
    trail = Veci.create ();
    trail_lim = Veci.create ();
    qhead = 0;
    activity;
    heap = Heap.create activity;
    var_inc = 1.0;
    ok = true;
    propagations = 0;
    conflicts = 0;
    decisions = 0;
    restarts = 0;
    seen = Veci.create ();
    seen_flags = Array.make 16 false;
  }

let grow_arrays s n =
  let cap a fill =
    if n <= Array.length a then a
    else begin
      let c = max n (2 * Array.length a) in
      let a' = Array.make c fill in
      Array.blit a 0 a' 0 (Array.length a);
      a'
    end
  in
  s.assigns <- cap s.assigns 0;
  s.level <- cap s.level 0;
  s.reason <- cap s.reason (-1);
  s.phase <- cap s.phase s.config.default_phase;
  s.seen_flags <- cap s.seen_flags false;
  (if 2 * n > Array.length s.watches then begin
     let c = max (2 * n) (2 * Array.length s.watches) in
     let w = Array.init c (fun i ->
         if i < Array.length s.watches then s.watches.(i) else Veci.create ())
     in
     s.watches <- w
   end);
  if n > Array.length !(s.activity) then begin
    let c = max n (2 * Array.length !(s.activity)) in
    let a = Array.make c 0.0 in
    Array.blit !(s.activity) 0 a 0 (Array.length !(s.activity));
    s.activity := a
  end

let new_var s =
  let v = s.nvars in
  s.nvars <- v + 1;
  grow_arrays s s.nvars;
  Heap.insert s.heap v;
  v + 1  (* external, 1-based *)

let value_lit s l =
  let a = s.assigns.(lit_var l) in
  if a = 0 then 0 else if l land 1 = 0 then a else -a

let enqueue s l reason =
  let v = lit_var l in
  s.assigns.(v) <- (if l land 1 = 0 then 1 else -1);
  s.level.(v) <- Veci.len s.trail_lim;
  s.reason.(v) <- reason;
  if s.config.phase_saving then s.phase.(v) <- l land 1 = 0;
  Veci.push s.trail l

let add_clause_arena s lits =
  if s.nclauses = Array.length s.clauses then begin
    let c = Array.make (2 * s.nclauses) [||] in
    Array.blit s.clauses 0 c 0 s.nclauses;
    s.clauses <- c
  end;
  let id = s.nclauses in
  s.clauses.(id) <- lits;
  s.nclauses <- id + 1;
  Veci.push s.watches.(lit_neg lits.(0)) id;
  Veci.push s.watches.(lit_neg lits.(1)) id;
  id

(* Add an external clause (DIMACS literals).  Must be called before or
   between solves; handles unit and empty clauses at level 0. *)
let add_clause s dimacs =
  if s.ok then begin
    (* dedup and check for tautology *)
    let lits = List.sort_uniq compare (List.map lit_of_dimacs dimacs) in
    let tauto =
      List.exists (fun l -> List.mem (lit_neg l) lits) lits
    in
    if not tauto then begin
      (* drop literals already false at level 0; detect satisfied clause *)
      let lits =
        List.filter
          (fun l -> not (value_lit s l = -1 && s.level.(lit_var l) = 0))
          lits
      in
      let sat_already =
        List.exists (fun l -> value_lit s l = 1 && s.level.(lit_var l) = 0) lits
      in
      if not sat_already then
        match lits with
        | [] -> s.ok <- false
        | [ l ] ->
            if value_lit s l = -1 then s.ok <- false
            else if value_lit s l = 0 then enqueue s l (-1)
        | l0 :: l1 :: _ ->
            let arr = Array.of_list lits in
            (* ensure the two watched positions are the first two *)
            arr.(0) <- l0; arr.(1) <- l1;
            let rec fill i = function
              | [] -> ()
              | x :: rest -> arr.(i) <- x; fill (i + 1) rest
            in
            fill 0 lits;
            ignore (add_clause_arena s arr)
    end
  end

exception Conflict of int

(* Propagate all enqueued literals; returns conflicting clause id or -1. *)
let propagate s =
  try
    while s.qhead < Veci.len s.trail do
      let l = Veci.get s.trail s.qhead in
      s.qhead <- s.qhead + 1;
      s.propagations <- s.propagations + 1;
      let ws = s.watches.(l) in
      let n = Veci.len ws in
      let j = ref 0 in
      (try
         for i = 0 to n - 1 do
           let cid = Veci.get ws i in
           let c = s.clauses.(cid) in
           (* make sure the false literal is at position 1 *)
           let falsel = lit_neg l in
           if c.(0) = falsel then begin
             c.(0) <- c.(1); c.(1) <- falsel
           end;
           if value_lit s c.(0) = 1 then begin
             (* clause satisfied; keep watch *)
             Veci.set ws !j cid; incr j
           end else begin
             (* look for a new literal to watch *)
             let len = Array.length c in
             let found = ref false in
             let k = ref 2 in
             while (not !found) && !k < len do
               if value_lit s c.(!k) <> -1 then begin
                 c.(1) <- c.(!k);
                 c.(!k) <- falsel;
                 Veci.push s.watches.(lit_neg c.(1)) cid;
                 found := true
               end;
               incr k
             done;
             if !found then ()
             else begin
               (* unit or conflicting *)
               Veci.set ws !j cid; incr j;
               if value_lit s c.(0) = -1 then begin
                 (* copy remaining watches before raising *)
                 for m = i + 1 to n - 1 do
                   Veci.set ws !j (Veci.get ws m); incr j
                 done;
                 Veci.shrink ws !j;
                 raise (Conflict cid)
               end else enqueue s c.(0) cid
             end
           end
         done;
         Veci.shrink ws !j
       with Conflict _ as e -> raise e)
    done;
    -1
  with Conflict cid -> cid

let var_bump s v =
  let act = !(s.activity) in
  act.(v) <- act.(v) +. s.var_inc;
  if act.(v) > 1e100 then begin
    for i = 0 to s.nvars - 1 do
      act.(i) <- act.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  Heap.decrease s.heap v

let var_decay s = s.var_inc <- s.var_inc /. s.config.var_decay

(* First-UIP conflict analysis.  Returns (learned clause, backjump level);
   learned.(0) is the asserting literal. *)
(* Test hook: observe learned clauses (used by the SAT fuzz harness). *)
let learn_hook : (int array -> unit) option ref = ref None

let analyze s confl =
  let learned = Veci.create () in
  Veci.push learned 0;                    (* slot for asserting literal *)
  let path = ref 0 in
  let p = ref (-1) in
  let cid = ref confl in
  let idx = ref (Veci.len s.trail - 1) in
  let continue = ref true in
  while !continue do
    let c = s.clauses.(!cid) in
    let start = if !p = -1 then 0 else 1 in
    for i = start to Array.length c - 1 do
      let q = c.(i) in
      let v = lit_var q in
      if (not s.seen_flags.(v)) && s.level.(v) > 0 then begin
        s.seen_flags.(v) <- true;
        Veci.push s.seen v;
        var_bump s v;
        if s.level.(v) = Veci.len s.trail_lim then incr path
        else Veci.push learned q
      end
    done;
    (* pick next literal to expand from the trail *)
    let rec next () =
      let l = Veci.get s.trail !idx in
      decr idx;
      if s.seen_flags.(lit_var l) then l else next ()
    in
    let l = next () in
    s.seen_flags.(lit_var l) <- false;
    decr path;
    if !path = 0 then begin
      Veci.set learned 0 (lit_neg l);
      continue := false
    end else begin
      p := l;
      cid := s.reason.(lit_var l)
    end
  done;
  (* clear remaining seen flags *)
  for i = 0 to Veci.len s.seen - 1 do
    s.seen_flags.(Veci.get s.seen i) <- false
  done;
  Veci.clear s.seen;
  let arr = Array.init (Veci.len learned) (Veci.get learned) in
  (* backjump level = max level among arr.(1..) *)
  let blevel = ref 0 in
  let pos = ref 1 in
  for i = 1 to Array.length arr - 1 do
    let lv = s.level.(lit_var arr.(i)) in
    if lv > !blevel then begin blevel := lv; pos := i end
  done;
  if Array.length arr > 1 then begin
    let tmp = arr.(1) in
    arr.(1) <- arr.(!pos);
    arr.(!pos) <- tmp
  end;
  (match !learn_hook with Some f -> f arr | None -> ());
  (arr, !blevel)

let cancel_until s lvl =
  if Veci.len s.trail_lim > lvl then begin
    let bound = Veci.get s.trail_lim lvl in
    for i = Veci.len s.trail - 1 downto bound do
      let v = lit_var (Veci.get s.trail i) in
      s.assigns.(v) <- 0;
      s.reason.(v) <- -1;
      Heap.insert s.heap v
    done;
    Veci.shrink s.trail bound;
    s.qhead <- bound;
    Veci.shrink s.trail_lim lvl
  end

let decide s =
  let rec pick () =
    if Heap.is_empty s.heap then -1
    else
      let v = Heap.pop s.heap in
      if s.assigns.(v) = 0 then v else pick ()
  in
  let v = pick () in
  if v = -1 then -1
  else begin
    s.decisions <- s.decisions + 1;
    Veci.push s.trail_lim (Veci.len s.trail);
    let l = if s.phase.(v) then 2 * v else (2 * v) + 1 in
    enqueue s l (-1);
    l
  end

(* Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... *)
let rec luby i =
  let rec pow2 k = if k = 0 then 1 else 2 * pow2 (k - 1) in
  let rec find k = if pow2 (k + 1) - 1 <= i then find (k + 1) else k in
  let k = find 0 in
  if i = pow2 (k + 1) - 2 then pow2 k else luby (i - pow2 k + 1)

(* [solve ?budget ?assumptions s].

   Assumptions are DIMACS literals assumed before any VSIDS decision: the
   k-th pending assumption is decided at decision level k (an assumption
   that is already true gets a dummy level so the level<->assumption
   correspondence stays intact; MiniSat does the same).  A conflict that
   forces an assumption false yields [Unsat] *under the assumptions* —
   the solver itself stays usable ([s.ok] is untouched), which is what
   lets an incremental session pop that assumption and continue.

   The budget is relative to the work counters at entry, so that a
   session issuing many [solve] calls on one solver gives each call the
   same deterministic allowance a fresh solver would get. *)
let solve ?(budget = max_int) ?(assumptions = []) s =
  if not s.ok then Unsat
  else begin
    let assum = Array.of_list (List.map lit_of_dimacs assumptions) in
    let nassum = Array.length assum in
    let p0 = s.propagations and c0 = s.conflicts in
    let budget_left () =
      s.propagations - p0 + (100 * (s.conflicts - c0)) < budget
    in
    (* 0 = progressed, 1 = all vars assigned (Sat), 2 = assumption
       contradicted (Unsat under assumptions). *)
    let decide_step () =
      let dl = Veci.len s.trail_lim in
      if dl < nassum then begin
        let l = assum.(dl) in
        match value_lit s l with
        | 1 ->
            Veci.push s.trail_lim (Veci.len s.trail);
            0
        | -1 -> 2
        | _ ->
            s.decisions <- s.decisions + 1;
            Veci.push s.trail_lim (Veci.len s.trail);
            enqueue s l (-1);
            0
      end
      else if decide s = -1 then 1
      else 0
    in
    let restart_n = ref 0 in
    let result = ref None in
    (* Normalize to root: a previous [Sat] answer leaves the trail in
       place for [value] reads, so an incremental re-solve must not start
       from those stale decisions. *)
    cancel_until s 0;
    (match propagate s with
     | -1 -> ()
     | _ ->
         s.ok <- false;
         result := Some Unsat);
    while !result = None do
      if not (budget_left ()) then begin
        cancel_until s 0;
        result := Some Unknown
      end
      else begin
        let conflict_budget =
          match s.config.restart with
          | `Luby base -> base * luby !restart_n
          | `Geometric (base, mult) ->
              int_of_float (float_of_int base *. (mult ** float_of_int !restart_n))
        in
        incr restart_n;
        let conflicts_here = ref 0 in
        let break = ref false in
        while (not !break) && !result = None do
          let confl = propagate s in
          if confl >= 0 then begin
            s.conflicts <- s.conflicts + 1;
            incr conflicts_here;
            if Veci.len s.trail_lim = 0 then begin
              s.ok <- false;
              result := Some Unsat
            end
            else if Veci.len s.trail_lim <= nassum then begin
              (* Conflict while only assumption levels are open: the
                 assumption set is contradicted. *)
              result := Some Unsat
            end
            else begin
              let learned, blevel = analyze s confl in
              cancel_until s blevel;
              (match Array.length learned with
               | 1 ->
                   (* A unit learned clause always backjumps to root and
                      is implied by the clause database alone, so it is
                      sound to keep across assumption changes. *)
                   enqueue s learned.(0) (-1)
               | _ ->
                   let cid = add_clause_arena s learned in
                   enqueue s learned.(0) cid);
              var_decay s
            end
          end
          else if !conflicts_here >= conflict_budget then begin
            s.restarts <- s.restarts + 1;
            (* Restart clears search decisions but keeps assumption
               levels assigned — re-propagating the whole assertion set
               after every restart would charge the budget for work a
               unit-clause (one-shot) encoding does exactly once. *)
            cancel_until s nassum;
            break := true
          end
          else if not (budget_left ()) then begin
            cancel_until s 0;
            result := Some Unknown
          end
          else begin
            match decide_step () with
            | 1 -> result := Some Sat
            | 2 -> result := Some Unsat
            | _ -> ()
          end
        done
      end
    done;
    (match !result with
     | Some Sat -> ()
     | _ -> cancel_until s 0);
    match !result with Some r -> r | None -> assert false
  end

(* Undo all decision levels, restoring the solver to its root state so
   that new clauses can be added.  After a [Sat] answer the trail is left
   in place for [value] reads; an incremental caller must backtrack
   before growing the formula. *)
let backtrack_root s = cancel_until s 0

(* Model value of an external (1-based) variable after [Sat]. *)
let value s extvar =
  let v = extvar - 1 in
  if v < 0 || v >= s.nvars then invalid_arg "Sat.value";
  s.assigns.(v) = 1

let stats s = (s.propagations, s.conflicts, s.nclauses)
let decisions s = s.decisions
let restarts s = s.restarts
let num_vars s = s.nvars

(* The k most active variables (external 1-based indices) with their
   VSIDS activities, highest first, ties by variable index — the
   deterministic "what the search cared about" summary the persistent
   store keeps alongside each solved entry. *)
let top_activity ?(k = 8) s =
  let act = !(s.activity) in
  let all = List.init s.nvars (fun v -> (v + 1, act.(v))) in
  let sorted =
    List.sort
      (fun (va, aa) (vb, ab) ->
        match Float.compare ab aa with 0 -> Int.compare va vb | c -> c)
      all
  in
  List.filteri (fun i _ -> i < k) sorted
