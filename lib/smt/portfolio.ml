(* Stall-time portfolio solving: when the incremental session's CDCL
   search exhausts its propagation budget, race K alternative solver
   configurations over the same (already array-eliminated) assertion
   set and adopt the best success.

   Each attempt is hermetic: a fresh {!Sat.t} with its own heuristic
   configuration and a fresh {!Bitblast.ctx}, fed the recorded
   eliminated forms and congruence axioms of the active frames,
   asserted unguarded in original (oldest-first) order with no
   assumptions.  Nothing is shared with the session's solver, and
   bit-blasting interns no expressions, so attempts run in parallel
   domains without touching any interning space.

   Determinism is non-negotiable (fleet [-j1] vs [-jN] must be
   byte-identical): every attempt is a deterministic function of
   (assertions, config, budgets), all attempts are joined, and the
   winner is chosen by a scheduling-independent rule — the
   lowest-cost success (cost = gates + propagations, the solver_cost
   measure), ties broken by configuration index. *)

type verdict = V_sat of Model.t | V_unsat | V_unknown

type attempt = {
  at_index : int;
  at_verdict : verdict;
  at_gates : int;
  at_propagations : int;
  at_cost : int;  (* at_gates + at_propagations: what this attempt paid *)
  at_conflicts : int;
  at_decisions : int;
  at_restarts : int;
  at_clauses : int;
  at_top : (int * float) list;
}

(* The racing grid, index 0 first.  Index 0 is the stock configuration:
   a fresh unguarded encoding alone sometimes beats the session's
   selector-laden incremental one, so the baseline heuristics deserve a
   lane too.  The rest vary one axis each: restart schedule, phase
   polarity, VSIDS memory. *)
let default_configs : Sat.config list =
  let d = Sat.default_config in
  [
    d;
    { d with restart = `Geometric (100, 1.5) };
    { d with default_phase = true };
    { d with var_decay = 0.85 };
    { d with phase_saving = false; restart = `Luby 32 };
    { d with var_decay = 0.99; restart = `Geometric (32, 2.0) };
  ]

let extract_model sat blast witnesses =
  let m = Model.empty () in
  List.iter
    (fun (var, bits) ->
      match Expr.node var with
      | Expr.Var name -> Model.set m name (Bitblast.value_of_bits sat bits)
      | _ -> assert false)
    (Bitblast.blasted_vars blast);
  List.iter
    (fun { Arrays.array; index; value } ->
      match Expr.node array with
      | Expr.Var name ->
          Model.add_array_point m name ~index:(Model.eval m index)
            ~elt:(Model.eval m value)
      | _ -> assert false)
    witnesses;
  m

let one_attempt ~index ~config ~budget ~gate_budget ~assertions ~witnesses =
  let sat = Sat.create ~config () in
  let blast = Bitblast.create ~gate_budget sat in
  let verdict =
    match
      List.iter
        (fun (e, axioms) ->
          List.iter (Bitblast.assert_true blast) axioms;
          Bitblast.assert_true blast e)
        assertions
    with
    | exception Bitblast.Too_large -> V_unknown
    | () -> (
        match Sat.solve ~budget sat with
        | Sat.Sat -> V_sat (extract_model sat blast witnesses)
        | Sat.Unsat -> V_unsat
        | Sat.Unknown -> V_unknown)
  in
  let propagations, conflicts, clauses = Sat.stats sat in
  let gates = Bitblast.gate_count blast in
  {
    at_index = index;
    at_verdict = verdict;
    at_gates = gates;
    at_propagations = propagations;
    at_cost = gates + propagations;
    at_conflicts = conflicts;
    at_decisions = Sat.decisions sat;
    at_restarts = Sat.restarts sat;
    at_clauses = clauses;
    at_top = Sat.top_activity sat;
  }

let succeeded a =
  match a.at_verdict with V_sat _ | V_unsat -> true | V_unknown -> false

(* Lowest-cost success, ties by index — independent of which domain
   finished first. *)
let pick_winner attempts =
  List.fold_left
    (fun best a ->
      if not (succeeded a) then best
      else
        match best with
        | None -> Some a
        | Some b ->
            if a.at_cost < b.at_cost
               || (a.at_cost = b.at_cost && a.at_index < b.at_index)
            then Some a
            else Some b)
    None attempts

(* Race the first [k] configurations; all attempts are joined before the
   winner is chosen.  [assertions] are the active frames' eliminated
   forms with their congruence axioms, oldest first. *)
let run ?(configs = default_configs) ~k ~budget ~gate_budget ~assertions
    ~witnesses () : attempt list * attempt option =
  let configs = List.filteri (fun i _ -> i < k) configs in
  let attempts =
    match configs with
    | [] -> []
    | [ c ] ->
        [ one_attempt ~index:0 ~config:c ~budget ~gate_budget ~assertions
            ~witnesses ]
    | _ ->
        List.mapi
          (fun index config ->
            Domain.spawn (fun () ->
                one_attempt ~index ~config ~budget ~gate_budget ~assertions
                  ~witnesses))
          configs
        |> List.map Domain.join
  in
  (attempts, pick_winner attempts)
