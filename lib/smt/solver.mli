(** Budgeted check-sat over bitvector+array assertions.

    The pipeline is: array elimination ({!Arrays}), Tseitin bit-blasting
    ({!Bitblast}), CDCL search ({!Sat}), model reconstruction ({!Model}).
    Budgets are deterministic work counters, ER's stand-in for the
    paper's 30-second solver timeout: a query either solves, refutes, or
    *stalls* ([Unknown]) identically on every machine. *)

type outcome =
  | Sat of Model.t
  | Unsat
  | Unknown of string  (** budget exhausted: a symbolic-execution stall *)

type stats = {
  sat_vars : int;
  gates : int;
  propagations : int;
  conflicts : int;
  decisions : int;
  restarts : int;
  clauses : int;
}

(** Statistics of the most recent [check] call, if it reached the SAT
    core.  Used for the deterministic solver-work accounting behind the
    Fig. 5 progress curves. *)
val last_stats : stats option ref

val default_budget : int
val default_gate_budget : int

(** [check ~budget ~gate_budget assertions] decides the conjunction of
    width-1 [assertions].  [gate_budget] caps bit-blasting work,
    [budget] caps SAT propagation work. *)
val check : ?budget:int -> ?gate_budget:int -> Expr.t list -> outcome

(** [Some true] / [Some false] when decided within budget, [None] on a
    stall. *)
val is_satisfiable : ?budget:int -> ?gate_budget:int -> Expr.t list -> bool option

(** Is [e] entailed by [assumptions]?  ([Some true] iff [not e] is unsat.) *)
val must_be_true :
  ?budget:int -> ?gate_budget:int -> Expr.t list -> Expr.t -> bool option

val pp_outcome : Format.formatter -> outcome -> unit
