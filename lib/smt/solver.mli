(** Budgeted check-sat over bitvector+array assertions.

    The pipeline is: array elimination ({!Arrays}), Tseitin bit-blasting
    ({!Bitblast}), CDCL search ({!Sat}), model reconstruction ({!Model}).
    Budgets are deterministic work counters, ER's stand-in for the
    paper's 30-second solver timeout: a query either solves, refutes, or
    *stalls* ([Unknown]) identically on every machine.

    The primary interface is {!Session}: a stateful incremental solving
    context.  Shepherded symbolic execution pushes one constraint per
    traced branch and re-checks; a session encodes each pushed assertion
    exactly once and retains CDCL learned clauses and variable
    activities across checks, so the per-check cost is proportional to
    the *new* constraints, not to the whole prefix.  {!check} remains as
    a thin one-shot wrapper over a throwaway session.

    There is no global mutable solver state: per-check statistics are
    returned as a value alongside the outcome. *)

type outcome =
  | Sat of Model.t
  | Unsat
  | Unknown of string  (** budget exhausted: a symbolic-execution stall *)

(** Work performed by one [check] call.  [sat_vars] is the solver's
    current variable count; the other fields are deltas charged by this
    call (for a one-shot [check] they equal the totals).  A result-cache
    hit reports all-zero work. *)
type stats = {
  sat_vars : int;
  gates : int;
  propagations : int;
  conflicts : int;
  decisions : int;
  restarts : int;
  clauses : int;
}

val default_budget : int
val default_gate_budget : int

(** Incremental solving sessions.

    A session owns one SAT solver, one blasting context and one array
    elimination state.  [push] grows an assertion stack; each assertion
    is guarded by a fresh selector variable and activated per-check via
    solver assumptions, so [pop] retires the newest assertion without
    discarding its encoding or anything learned from it.

    Results are memoized in a result cache keyed by the canonical
    (sorted, deduplicated) hash-consed ids of the asserted set.  The
    cache is sharded by interning space ({!Expr.space_stamp}): sessions
    created in the same space share a mutex-protected shard, sessions in
    different spaces never see each other's entries (ids from different
    spaces denote different terms, so a cross-space hit would be
    unsound).  Each session tallies its own hits and misses exactly,
    even under concurrent domains.  Besides exact hits, a cached UNSAT
    core refutes any superset and a cached model of a superset satisfies
    any subset; [Unknown] results are budget artifacts and are never
    cached.

    Budgets stay deterministic because the work counters carry over
    across incremental calls.  The propagation budget is a per-check
    allowance, charged relative to the session's counters at entry, so
    every check gets the same search allowance a fresh solver would.
    The gate budget is cumulative over the session: hash-consed blasting
    builds the same unique-gate set incrementally that a one-shot
    re-blast of the whole prefix would build, so capping the total keeps
    the gate-stall boundary on exactly the same assertion set. *)
module Session : sig
  type t

  (** Cumulative result-cache traffic of this session. *)
  type cache_stats = { cache_hits : int; cache_misses : int }

  (** [create ~budget ~gate_budget ()] — budgets default to
      {!default_budget} / {!default_gate_budget} and apply to every
      [check] unless overridden per call.

      If a persistent answer journal is attached to the current
      interning space ({!Persist.attach}), the session replays it: at
      each in-memory-cache miss the next journaled answer — Sat model,
      Unsat verdict, or stall — is adopted at zero cost, provided the
      run is still in lock-step with the recorded one; every real solve
      is appended for the next run.  This cannot change a trajectory,
      only its cost.

      [portfolio] (default 0 = off) races that many alternative CDCL
      configurations ({!Portfolio.default_configs}) whenever a check
      exhausts its propagation budget, adopting the deterministic
      winner's verdict and charging its work on top of the stalled
      search.  Unlike warm replay, a portfolio win *does* change the
      outcome of a check (a stall becomes Sat/Unsat), so [portfolio] is
      a configuration knob on par with the budgets. *)
  val create : ?budget:int -> ?gate_budget:int -> ?portfolio:int -> unit -> t

  (** Push one width-1 assertion onto the stack. *)
  val push : t -> Expr.t -> unit

  (** Retire the newest assertion.  Raises [Invalid_argument] on an
      empty stack. *)
  val pop : t -> unit

  (** Current stack depth. *)
  val depth : t -> int

  (** The asserted stack, oldest first. *)
  val assertions : t -> Expr.t list

  (** Decide the conjunction of the current stack.  Newly pushed
      assertions are encoded first (charging the gate budget); a
      gate-budget abort leaves them pending, and a later [check] resumes
      from the blasting memo rather than restarting. *)
  val check : ?budget:int -> ?gate_budget:int -> t -> outcome * stats

  val cache_stats : t -> cache_stats

  (** Of this session's cache hits, how many were answered by replaying
      the persistent journal. *)
  val replays : t -> int

  (** Stalled checks resolved by the portfolio. *)
  val portfolio_wins : t -> int
end

(** [check ~budget ~gate_budget assertions] decides the conjunction of
    width-1 [assertions] with a throwaway session.  [gate_budget] caps
    bit-blasting work, [budget] caps SAT propagation work. *)
val check : ?budget:int -> ?gate_budget:int -> Expr.t list -> outcome * stats

(** [Ok sat?] when decided within budget; [Error reason] carries the
    stall reason ([Unknown]) instead of silently dropping it. *)
val is_satisfiable :
  ?budget:int -> ?gate_budget:int -> Expr.t list -> (bool, string) result

(** Is [e] entailed by [assumptions]?  ([Ok true] iff [not e] is unsat;
    [Error reason] on a stall.) *)
val must_be_true :
  ?budget:int -> ?gate_budget:int -> Expr.t list -> Expr.t -> (bool, string) result

(** Drop every shard of the result cache (test isolation). *)
val reset_cache : unit -> unit

val pp_outcome : Format.formatter -> outcome -> unit
