(** A from-scratch CDCL SAT solver (MiniSat lineage): two watched
    literals, first-UIP learning, VSIDS decisions, phase saving, Luby
    restarts — with a deterministic work budget so that timeouts are a
    property of the formula, not of the machine. *)

type result = Sat | Unsat | Unknown

type t

(** Search-heuristic knobs; {!default_config} reproduces the historical
    hard-coded behavior exactly (VSIDS decay 0.95, Luby base-64
    restarts, phase saving on, initial phase false).  The stall-time
    portfolio races variations of these. *)
type config = {
  var_decay : float;
  restart : [ `Luby of int | `Geometric of int * float ];
  phase_saving : bool;
  default_phase : bool;
}

val default_config : config

val create : ?config:config -> unit -> t

(** Allocate a variable; returns its external (1-based, DIMACS) index. *)
val new_var : t -> int

(** Add a clause of DIMACS literals (non-zero; sign = polarity).  Must be
    called at decision level zero (before or between [solve] calls). *)
val add_clause : t -> int list -> unit

(** [solve ~budget ~assumptions t] searches until a model or refutation
    is found, or until the budget (propagations + weighted conflicts,
    counted relative to the totals at entry so every call gets the same
    deterministic allowance) is exhausted.

    [assumptions] are DIMACS literals decided before any heuristic
    decision.  If they are contradicted the answer is [Unsat] *under the
    assumptions only*: the solver stays usable and a later call with
    different assumptions may answer [Sat].  Learned clauses are implied
    by the clause database alone and are retained across calls. *)
val solve : ?budget:int -> ?assumptions:int list -> t -> result

(** Undo all decision levels.  A [Sat] answer leaves the trail in place
    so [value] can read the model; an incremental caller must backtrack
    to root before adding clauses, or the new clauses would be simplified
    against model values as if they were level-0 facts. *)
val backtrack_root : t -> unit

(** Model value of an external variable after [Sat]. *)
val value : t -> int -> bool

(** (propagations, conflicts, clauses) *)
val stats : t -> int * int * int

(** Branching decisions taken so far. *)
val decisions : t -> int

(** Luby restarts performed so far. *)
val restarts : t -> int

val num_vars : t -> int

(** The [k] most VSIDS-active variables (external indices, activity),
    highest first, ties by index — deterministic. *)
val top_activity : ?k:int -> t -> (int * float) list

(** Test hook: observe each learned clause (internal literal encoding),
    used by the SAT fuzz harness to validate learning. *)
val learn_hook : (int array -> unit) option ref
