(** A from-scratch CDCL SAT solver (MiniSat lineage): two watched
    literals, first-UIP learning, VSIDS decisions, phase saving, Luby
    restarts — with a deterministic work budget so that timeouts are a
    property of the formula, not of the machine. *)

type result = Sat | Unsat | Unknown

type t

val create : unit -> t

(** Allocate a variable; returns its external (1-based, DIMACS) index. *)
val new_var : t -> int

(** Add a clause of DIMACS literals (non-zero; sign = polarity).  Must be
    called at decision level zero (before or between [solve] calls). *)
val add_clause : t -> int list -> unit

(** [solve ~budget t] searches until a model or refutation is found, or
    until the budget (propagations + weighted conflicts) is exhausted. *)
val solve : ?budget:int -> t -> result

(** Model value of an external variable after [Sat]. *)
val value : t -> int -> bool

(** (propagations, conflicts, clauses) *)
val stats : t -> int * int * int

(** Branching decisions taken so far. *)
val decisions : t -> int

(** Luby restarts performed so far. *)
val restarts : t -> int

val num_vars : t -> int

(** Test hook: observe each learned clause (internal literal encoding),
    used by the SAT fuzz harness to validate learning. *)
val learn_hook : (int array -> unit) option ref
