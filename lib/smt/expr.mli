(** Hash-consed bitvector/array expressions.

    Every expression is interned: structurally equal terms (within one
    interning space) are physically equal and carry a unique, stable
    [id].  This is what the rest of the SMT stack leans on — the
    bit-blaster memoizes by id so equal subterms are encoded once, array
    elimination memoizes rewrites by id, and the solver's result cache
    keys whole assertion sets by their sorted ids.  The tables are owned
    by this module; the only way to obtain a [t] is through the smart
    constructors below, which also perform the constant folding and
    width checking the downstream layers assume.

    Interning is organized into {e spaces} (see {!in_fresh_space}): each
    space has its own mutex-guarded table, while ids stay unique across
    all spaces.  Running a computation in a fresh space makes its
    interning order — and everything downstream that depends on id
    order — independent of whatever other domains or earlier
    computations interned, which is how fleet mode keeps per-bug results
    bit-identical between sequential and parallel runs. *)

type unop = Neg | Lognot

type binop =
  | Add
  | Sub
  | Mul
  | Udiv
  | Urem
  | And
  | Or
  | Xor
  | Shl
  | Lshr
  | Ashr

type cmpop = Eq | Ult | Ule | Slt | Sle

type t

type node =
  | Const of int64
  | Var of string
  | Unop of unop * t
  | Binop of binop * t * t
  | Cmp of cmpop * t * t
  | Ite of t * t * t
  | Extract of { hi : int; lo : int; arg : t }
  | Concat of t * t
  | Read of { arr : t; idx : t }
  | Write of { arr : t; idx : t; value : t }
  | Const_array of int64

val node : t -> node
val ty : t -> Ty.t

(** Unique interning id.  Stable for the lifetime of the process and
    unique across all interning spaces; within one space, equal ids iff
    structurally equal terms. *)
val id : t -> int

(* --- interning spaces ------------------------------------------------- *)

(** An interning space: one mutex-guarded hash-cons table.  Safe to
    share between domains. *)
type space

(** A brand-new empty space. *)
val create_space : unit -> space

(** [with_space sp f] interns everything [f] builds on this domain into
    [sp], restoring the previous space afterwards. *)
val with_space : space -> (unit -> 'a) -> 'a

(** [in_fresh_space f] = [with_space (create_space ()) f]: runs [f] in
    an isolated interning space, making its id ordering (hence the whole
    downstream solver trajectory) independent of any other computation
    in the process.  Fleet workers wrap each bug reconstruction in this. *)
val in_fresh_space : (unit -> 'a) -> 'a

(** Stamp of the current domain's space (distinct per space); the solver
    shards its result cache by this, so cached outcomes never leak
    between spaces. *)
val space_stamp : unit -> int

(** The current space's local id of a term: dense, assigned in interning
    order, hence stable across processes for a deterministic client —
    unlike {!id}, which is only unique within one process run.  Local
    ids are order-isomorphic to absolute ids within their space.  Terms
    interned by a different space map to a negative marker (they can
    never match a persisted key, which is the safe answer). *)
val local_id : t -> int

(** Bit width of a bitvector-typed term ([Invalid_argument] on arrays). *)
val width : t -> int

(** Physical equality — sound because of hash-consing. *)
val equal : t -> t -> bool

val compare : t -> t -> int
val hash : t -> int

(** Number of distinct terms ever interned, across all spaces. *)
val live_nodes : unit -> int

(* --- constructors --------------------------------------------------- *)

val const : width:int -> int64 -> t
val bool_ : bool -> t
val tru : t
val fls : t
val var : string -> Ty.t -> t
val bv_var : string -> width:int -> t
val arr_var : string -> idx:int -> elt:int -> t
val const_array : idx:int -> elt:int -> int64 -> t

(* --- predicates and projections -------------------------------------- *)

val is_const : t -> bool
val to_const : t -> int64 option
val is_true : t -> bool
val is_false : t -> bool
val elt_width : t -> int
val idx_width : t -> int

(* --- concrete semantics (shared with {!Model}) ------------------------ *)

val eval_unop : unop -> int -> int64 -> int64
val eval_binop : binop -> int -> int64 -> int64 -> int64
val eval_cmp : cmpop -> int -> int64 -> int64 -> bool

(* --- operators (constant-folding smart constructors) ------------------ *)

val unop : unop -> t -> t
val binop : binop -> t -> t -> t
val cmp : cmpop -> t -> t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val udiv : t -> t -> t
val urem : t -> t -> t
val logand_ : t -> t -> t
val logor_ : t -> t -> t
val logxor_ : t -> t -> t
val shl : t -> t -> t
val lshr : t -> t -> t
val ashr : t -> t -> t
val neg : t -> t
val lognot_ : t -> t
val eq : t -> t -> t
val ult : t -> t -> t
val ule : t -> t -> t
val slt : t -> t -> t
val sle : t -> t -> t
val not_ : t -> t
val ne : t -> t -> t
val ugt : t -> t -> t
val uge : t -> t -> t
val sgt : t -> t -> t
val sge : t -> t -> t
val and_ : t -> t -> t
val or_ : t -> t -> t
val implies : t -> t -> t
val conj : t list -> t
val ite : t -> t -> t -> t
val extract : hi:int -> lo:int -> t -> t
val concat : t -> t -> t
val zero_extend : to_:int -> t -> t
val sign_extend_e : to_:int -> t -> t
val truncate : to_:int -> t -> t
val write : t -> t -> t -> t
val read : t -> t -> t

(* --- traversal -------------------------------------------------------- *)

val children : t -> t list
val fold_subterms : ('a -> t -> 'a) -> 'a -> t list -> 'a
val iter_subterms : (t -> unit) -> t list -> unit
val size : t -> int

(** Distinct variables of a term list, in first-occurrence order. *)
val vars : t list -> t list

val substitute : (t -> t option) -> t list -> t list

(* --- printing --------------------------------------------------------- *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
