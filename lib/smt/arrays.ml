(* Array-theory elimination.

   Reads over write chains are rewritten into ite towers
   ([read (write a i v) j  ==>  ite (i = j) v (read a j)]), and reads from
   base array variables are replaced by fresh bitvector variables related
   by Ackermann congruence constraints
   ([i_j = i_k  ==>  r_j = r_k] for every pair of reads of the same array).

   This is the mechanism by which the two complexity sources identified by
   the paper (length of symbolic write chains, size of the accessed
   symbolic memory) translate into solver work: a read at the end of an
   n-write chain becomes an n-deep ite tower, and m reads of one array
   become m^2/2 congruence constraints.

   The elimination state is persistent so that an incremental solver
   session can eliminate assertions one at a time as they are pushed: the
   structural memo, the per-array read lists and the witnesses all carry
   over, and each new read is still paired with every earlier read of the
   same array.  Congruence axioms are theory-valid (true in every model),
   so a session may assert them permanently even if the assertion that
   introduced them is later popped. *)

type read_witness = {
  array : Expr.t;      (* the base array variable *)
  index : Expr.t;      (* eliminated index expression *)
  value : Expr.t;      (* the fresh bitvector variable standing for the read *)
}

type elim_result = {
  assertions : Expr.t list;   (* array-free: original + congruence axioms *)
  witnesses : read_witness list;
}

type state = {
  memo : (int, Expr.t) Hashtbl.t;
  (* per base array variable: list of (index, read var), newest first *)
  base_reads : (int, (Expr.t * Expr.t) list ref) Hashtbl.t;
  mutable st_witnesses : read_witness list;   (* newest first *)
  mutable fresh : int;
}

let create_state () =
  {
    memo = Hashtbl.create 256;
    base_reads = Hashtbl.create 16;
    st_witnesses = [];
    fresh = 0;
  }

let fresh_read_var st ~elt =
  st.fresh <- st.fresh + 1;
  Expr.bv_var (Printf.sprintf "!read%d" st.fresh) ~width:elt

(* Eliminate one assertion against the persistent state.  Returns the
   array-free assertion together with the congruence axioms introduced by
   any new base-array reads (the axioms are not memoized into [e']
   because they relate reads across assertions). *)
let eliminate_one st (assertion : Expr.t) : Expr.t * Expr.t list =
  let extra = ref [] in

  (* Expand a read of [arr] at (already-eliminated) index [idx]. *)
  let rec expand_read arr idx =
    match Expr.node arr with
    | Expr.Const_array d -> Expr.const ~width:(Expr.elt_width arr) d
    | Expr.Write { arr = base; idx = widx; value } ->
        let widx' = elim widx and value' = elim value in
        (* constant/constant disequality skips the write entirely *)
        (match Expr.to_const widx', Expr.to_const idx with
         | Some a, Some b when not (Int64.equal a b) -> expand_read base idx
         | Some a, Some b when Int64.equal a b -> value'
         | _ -> Expr.ite (Expr.eq widx' idx) value' (expand_read base idx))
    | Expr.Var _ ->
        let key = Expr.id arr in
        let reads =
          match Hashtbl.find_opt st.base_reads key with
          | Some r -> r
          | None ->
              let r = ref [] in
              Hashtbl.add st.base_reads key r;
              r
        in
        (* reuse an existing witness for a structurally equal index *)
        (match List.find_opt (fun (i, _) -> Expr.equal i idx) !reads with
         | Some (_, rv) -> rv
         | None ->
             let rv = fresh_read_var st ~elt:(Expr.elt_width arr) in
             (* congruence with every earlier read of the same array *)
             List.iter
               (fun (i', rv') ->
                  extra :=
                    Expr.implies (Expr.eq idx i') (Expr.eq rv rv') :: !extra)
               !reads;
             reads := (idx, rv) :: !reads;
             st.st_witnesses <-
               { array = arr; index = idx; value = rv } :: st.st_witnesses;
             rv)
    | Expr.Ite (c, a, b) ->
        (* push reads through array-valued ite *)
        Expr.ite (elim c) (expand_read a idx) (expand_read b idx)
    | Expr.Const _ | Expr.Unop _ | Expr.Binop _ | Expr.Cmp _ | Expr.Extract _
    | Expr.Concat _ | Expr.Read _ ->
        invalid_arg "Arrays.eliminate: ill-sorted array term"

  and elim e =
    match Hashtbl.find_opt st.memo (Expr.id e) with
    | Some e' -> e'
    | None ->
        let e' =
          match Expr.node e with
          | Expr.Read { arr; idx } -> expand_read arr (elim idx)
          | Expr.Const _ | Expr.Var _ | Expr.Const_array _ -> e
          | Expr.Unop (op, a) -> Expr.unop op (elim a)
          | Expr.Binop (op, a, b) -> Expr.binop op (elim a) (elim b)
          | Expr.Cmp (op, a, b) -> Expr.cmp op (elim a) (elim b)
          | Expr.Ite (c, a, b) -> Expr.ite (elim c) (elim a) (elim b)
          | Expr.Extract { hi; lo; arg } -> Expr.extract ~hi ~lo (elim arg)
          | Expr.Concat (a, b) -> Expr.concat (elim a) (elim b)
          | Expr.Write { arr; idx; value } ->
              Expr.write (elim arr) (elim idx) (elim value)
        in
        Hashtbl.add st.memo (Expr.id e) e';
        e'
  in
  let out = elim assertion in
  (out, List.rev !extra)

let witnesses st = st.st_witnesses

(* One-shot convenience: eliminate a whole assertion list against a
   throwaway state. *)
let eliminate (assertions : Expr.t list) : elim_result =
  let st = create_state () in
  let out =
    List.concat_map
      (fun a ->
        let a', axioms = eliminate_one st a in
        a' :: axioms)
      assertions
  in
  { assertions = out; witnesses = st.st_witnesses }
