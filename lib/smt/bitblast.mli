(** Tseitin bit-blasting of (array-free) bitvector terms onto the CDCL
    SAT solver.  Each bitvector term maps to an array of SAT literals,
    LSB first, memoized by hash-consed expression id so that shared
    subterms are encoded exactly once — also across successive calls,
    which is what makes a persistent context incremental: re-blasting an
    already-seen assertion is a table lookup.

    Gate construction is budgeted: when a formula needs more gates than
    the current budget allows (the typical outcome of a long symbolic
    write chain expanded to ite towers), blasting raises {!Too_large},
    which the solver reports as [Unknown] — a stall, in the paper's
    terminology.  The memo table keeps whatever was built before the
    abort, so a retry under a fresh budget resumes rather than restarts. *)

exception Too_large

(** Arrays must be eliminated (see {!Arrays}) before blasting. *)
exception Unsupported of string

(** A persistent blasting context.  The context owns its expr-id memo
    table and the variable/bit-literal map; both only grow, and both
    remain valid across SAT [solve] calls as long as all clauses are
    added at decision level zero (see {!Sat.backtrack_root}). *)
type ctx

(** [create ?gate_budget sat] allocates the constant-true variable on
    [sat] and starts with an absolute gate limit of [gate_budget]
    (default: unlimited). *)
val create : ?gate_budget:int -> Sat.t -> ctx

(** Total gates built so far (monotone; survives {!Too_large}). *)
val gate_count : ctx -> int

(** Reset the absolute gate limit.  {!gate_count} itself carries over
    across encoding runs: budgeting the *total* encoding size is what
    makes an incremental session stall on exactly the assertion set a
    one-shot re-blast of the whole prefix would have stalled on. *)
val arm : ctx -> gate_limit:int -> unit

(** Blast a width-1 expression to its single SAT literal (DIMACS) without
    asserting it.  Raises {!Too_large} on budget exhaustion and
    [Invalid_argument] if the expression is not width 1. *)
val lit_of : ctx -> Expr.t -> int

(** Assert a width-1 expression unconditionally (a unit clause). *)
val assert_true : ctx -> Expr.t -> unit

(** Variables encountered so far with their bit literals, newest first
    (model extraction). *)
val blasted_vars : ctx -> (Expr.t * int array) list

(** Read back the value of a blasted variable from a SAT model. *)
val value_of_bits : Sat.t -> int array -> int64
