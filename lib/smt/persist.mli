(** Persistent solver knowledge: an on-disk, per-job answer journal.

    The solver's in-memory result cache dies with the process, so every
    fleet run, daemon restart and CI job re-pays the full solver cost
    from zero.  This module persists the *ordered journal* of answers a
    reconstruction's solver established — Sat models, Unsat verdicts,
    and budget stalls alike — so the next run of the same job replays
    them at zero search cost.

    Replay is lock-step: at each in-memory cache miss the solver asks
    for the next journal entry, and it is used only if its canonical key
    (sorted per-space {!Expr.local_id}s) and budget match the live
    query.  Replayed Sat/Unsat answers are stored into the in-memory
    cache exactly where the cold run stored them, so subset/superset
    lookups evolve identically; replayed stalls return their recorded
    reason verbatim.  This makes a warm run's trajectory byte-identical
    to the cold run's by construction — only the cost disappears.  Any
    mismatch permanently stops replay for the space (the run continues
    with real solving) and the flush rewrites the journal from the
    divergence point: stale stores self-heal, never poison.

    Stores are versioned, fingerprinted (a digest of every knob that
    could change the query sequence) and checksummed; any mismatch or
    corruption yields a clean cold start.  Flushes are tmp-file +
    [Sys.rename], so concurrent writers to one cache directory are
    last-writer-wins and readers never observe torn files.

    One store file per job label lives under the cache directory; state
    is sharded by the current interning space (same discipline as the
    solver result cache), so concurrent fleet jobs never share a
    journal. *)

val format_version : int

(** Learned-clause/VSIDS summary of one solved query (diagnostic
    payload; learned clauses themselves are never re-injected — a warm
    session's DIMACS numbering need not match the cold one's). *)
type summary = {
  sm_conflicts : int;
  sm_decisions : int;
  sm_restarts : int;
  sm_clauses : int;
  sm_top : (int * float) list;  (** (SAT var, VSIDS activity), hottest first *)
}

type answer =
  | Solved_unsat
  | Solved_sat of Model.t
  | Stalled of string  (** the stall reason, replayed verbatim *)

type entry = {
  en_key : int array;  (** canonical sorted local ids of the active set *)
  en_hash : string;
      (** structural digest of the active formulas: local ids are
          creation ordinals, so a changed run can mint different
          formulas at the same ordinals — the digest makes a journal
          match mean "same formulas", never just "same positions" *)
  en_budget : int;     (** propagation budget of the check *)
  en_cost : int;       (** gates + propagations the cold run paid *)
  en_answer : answer;
  en_summary : summary option;
}

(* --- attach / detach (job lifecycle) ---------------------------------- *)

type status =
  | Loaded of { entries : int; replayable_cost : int }
  | Cold of { reason : string option }
      (** [None]: no store file yet; [Some r]: a store existed but was
          rejected (version/fingerprint/checksum/parse) — the run
          proceeds cold and overwrites it at flush. *)

(** Bind a store to the {e current} interning space.  Call inside the
    job's fresh space, before any solving.  [label] names the store file
    ([<dir>/<sanitized-label>.ercache]); [fingerprint] must digest every
    configuration knob that could alter the query sequence. *)
val attach : dir:string -> label:string -> fingerprint:string -> status

type flush_result = {
  fl_path : string;
  fl_entries : int;   (** entries in the final store *)
  fl_appended : int;  (** recorded fresh this run *)
  fl_replayed : int;
  fl_saved_cost : int;
  fl_wrote : bool;    (** the file was (re)written — journal changed *)
  fl_warnings : string list;
}

(** Unbind the current space's store and write the journal back if it
    changed (divergence or fresh records); [None] if nothing was
    attached.  A pure replay run leaves the file untouched — including
    its unconsumed tail, so an interrupted warm run cannot erase
    knowledge it did not get to use. *)
val detach_and_flush : unit -> flush_result option

(* --- solver-side hooks ------------------------------------------------- *)

type handle

(** The store bound to the current space, if any.  Captured once per
    {!Solver.Session}. *)
val current : unit -> handle option

(** The next journal answer together with its recorded cold cost, iff
    the run is still in lock-step with the journal (same key, same
    structural digest, same budget, same position).  A mismatch
    permanently disables replay for this space.  Keys with
    foreign-space (negative) components never match. *)
val replay :
  handle -> key:int array -> hash:string -> budget:int ->
  (answer * int) option

(** Append a freshly established answer to the journal (written back at
    {!detach_and_flush}).  Keys with foreign-space components are
    skipped — symmetrically with {!replay}. *)
val record :
  handle -> key:int array -> hash:string -> budget:int -> cost:int ->
  ?summary:summary -> answer -> unit

(** Cold solver cost avoided by replay so far. *)
val saved_cost : handle -> int

(** Journal entries replayed so far. *)
val replayed : handle -> int

(* --- store internals, exposed for tests -------------------------------- *)

val store_path : dir:string -> label:string -> string
val render : fingerprint:string -> entry list -> string
val parse : fingerprint:string -> string -> (entry array, string) result
val entry_to_json : entry -> Er_json.t
val entry_of_json : Er_json.t -> entry option
