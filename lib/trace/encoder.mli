(** The runtime side of hardware-style tracing: accumulates branch
    outcomes into TNT packets and streams packets into the ring buffer —
    the per-instruction work whose cost is the online monitoring overhead
    of Fig. 6.  The branch hot path is allocation-free. *)

type stats = {
  mutable branches : int;
  mutable ptwrites : int;
  mutable switches : int;
  mutable packets : int;
  mutable bytes : int;
}

type t

(** [create ~ring_bytes ()] sizes the trace ring buffer; ER provisions it
    for the largest expected failing execution (the paper uses 64 MB). *)
val create : ?ring_bytes:int -> unit -> t

(** Emit the PSB sync packet; must precede all events. *)
val start : t -> unit

(** One conditional-branch outcome. *)
val branch : t -> bool -> unit

(** Chunk boundary: TIP (thread id) + MTC (low 16 clock bits). *)
val thread_switch : t -> tid:int -> clock:int -> unit

(** A standalone MTC timestamp. *)
val timestamp : t -> clock:int -> unit

(** A traced data value (ptwrite instrumentation or allocation size). *)
val ptwrite : t -> int64 -> unit

(** Flush pending TNT bits and snapshot the ring contents — what the ER
    runtime ships to the analysis engine when the failure fires. *)
val finish : t -> Bytes.t

(** {1 Checkpoint / revert}

    A checkpoint records the ring position, the pending (unflushed) TNT
    bits and the cumulative stats; {!revert} resumes the packet stream
    bit-identically mid-capture.  Reverting fails (returns [false]) when
    post-checkpoint writes wrapped into bytes that were live at the
    checkpoint, or when the ring had already overflowed. *)

type checkpoint

val checkpoint : t -> checkpoint
val can_revert : t -> checkpoint -> bool
val revert : t -> checkpoint -> bool

(** Full reset for a from-scratch capture reusing the same buffer. *)
val reset : t -> unit

val overflowed : t -> bool

(** Ring bytes lost to wrap-around so far (0 unless [overflowed]). *)
val overwritten : t -> int

(** Times the ring head wrapped back to offset 0. *)
val wraps : t -> int

val stats : t -> stats
val bytes_emitted : t -> int
