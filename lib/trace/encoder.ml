(* The runtime side of tracing: accumulates conditional-branch outcomes
   into TNT packets and streams packets into the ring buffer, exactly the
   work a PT-enabled CPU does on the program's behalf.  The interpreter
   calls [branch]/[thread_switch]/[ptwrite] from its hot loop, so the cost
   of this module is the online monitoring overhead that Fig. 6 measures. *)

module M = Er_metrics

(* Pre-registered handles on the process registry; every record below is
   one branch when metrics are off. *)
let m_branches =
  M.counter ~help:"Conditional-branch outcomes traced."
    "er_trace_branches_total"

let packet_counter ty =
  M.counter
    ~labels:[ ("type", ty) ]
    ~help:"Trace packets emitted, by packet type." "er_trace_packets_total"

let byte_counter ty =
  M.counter
    ~labels:[ ("type", ty) ]
    ~help:"Trace bytes emitted, by packet type." "er_trace_bytes_total"

let m_pk_psb = packet_counter "psb"
and m_pk_tnt = packet_counter "tnt"
and m_pk_tip = packet_counter "tip"
and m_pk_ptw = packet_counter "ptw"
and m_pk_mtc = packet_counter "mtc"
and m_pk_ovf = packet_counter "ovf"

let m_by_psb = byte_counter "psb"
and m_by_tnt = byte_counter "tnt"
and m_by_tip = byte_counter "tip"
and m_by_ptw = byte_counter "ptw"
and m_by_mtc = byte_counter "mtc"
and m_by_ovf = byte_counter "ovf"

let m_ring_overwritten =
  M.counter ~help:"Ring-buffer bytes lost to wrap-around."
    "er_trace_ring_overwritten_bytes_total"

let m_ring_ovf =
  M.counter ~help:"Captures that ended with an overflowed (lossy) ring."
    "er_trace_ring_ovf_total"

let m_compression =
  M.gauge
    ~help:"Branch outcomes encoded per trace byte in the last capture."
    "er_trace_compression_ratio"

let count_packet pkt =
  let pk, by =
    match (pkt : Packet.t) with
    | Packet.Psb -> (m_pk_psb, m_by_psb)
    | Packet.Tnt _ -> (m_pk_tnt, m_by_tnt)
    | Packet.Tip _ -> (m_pk_tip, m_by_tip)
    | Packet.Ptw _ -> (m_pk_ptw, m_by_ptw)
    | Packet.Mtc _ -> (m_pk_mtc, m_by_mtc)
    | Packet.Ovf -> (m_pk_ovf, m_by_ovf)
  in
  M.inc pk;
  M.add by (Packet.size pkt)

type stats = {
  mutable branches : int;
  mutable ptwrites : int;
  mutable switches : int;
  mutable packets : int;
  mutable bytes : int;
}

type t = {
  ring : Ring.t;
  (* TNT bits awaiting flush, accumulated as an int exactly like the
     hardware packet generator: oldest branch at the highest bit.  The
     hot path ([branch]) is allocation-free. *)
  mutable pending_bits : int;
  mutable pending_n : int;
  scratch : Buffer.t;
  stats : stats;
}

let create ?(ring_bytes = 1 lsl 22) () =
  {
    ring = Ring.create ring_bytes;
    pending_bits = 0;
    pending_n = 0;
    scratch = Buffer.create 16;
    stats = { branches = 0; ptwrites = 0; switches = 0; packets = 0; bytes = 0 };
  }

let emit t pkt =
  Buffer.clear t.scratch;
  Packet.append_bytes t.scratch pkt;
  Ring.write_bytes t.ring (Buffer.to_bytes t.scratch);
  t.stats.packets <- t.stats.packets + 1;
  t.stats.bytes <- t.stats.bytes + Packet.size pkt;
  if M.enabled M.default then count_packet pkt

let flush_tnt t =
  if t.pending_n > 0 then begin
    let n = t.pending_n in
    (* byte layout of Packet.encode_tnt: marker bit 0, outcomes at bits
       1..n (newest at bit 1), stop bit at n+1 *)
    let byte = 1 lor (t.pending_bits lsl 1) lor (1 lsl (n + 1)) in
    Ring.write_byte t.ring byte;
    t.stats.packets <- t.stats.packets + 1;
    t.stats.bytes <- t.stats.bytes + 1;
    M.inc m_pk_tnt;
    M.inc m_by_tnt;
    t.pending_bits <- 0;
    t.pending_n <- 0
  end

let start t =
  emit t Packet.Psb

let branch t taken =
  t.stats.branches <- t.stats.branches + 1;
  M.inc m_branches;
  t.pending_bits <- (t.pending_bits lsl 1) lor (if taken then 1 else 0);
  t.pending_n <- t.pending_n + 1;
  if t.pending_n = Packet.max_tnt_bits then flush_tnt t

let thread_switch t ~tid ~clock =
  flush_tnt t;
  t.stats.switches <- t.stats.switches + 1;
  emit t (Packet.Tip tid);
  emit t (Packet.Mtc clock)

let timestamp t ~clock =
  flush_tnt t;
  emit t (Packet.Mtc clock)

let ptwrite t v =
  flush_tnt t;
  t.stats.ptwrites <- t.stats.ptwrites + 1;
  emit t (Packet.Ptw v)

(* Finish tracing and snapshot the buffer (what the ER runtime ships to
   the analysis engine when the failure fires). *)
let finish t =
  flush_tnt t;
  if M.enabled M.default then begin
    M.add m_ring_overwritten (Ring.overwritten t.ring);
    if Ring.overflowed t.ring then M.inc m_ring_ovf;
    if t.stats.bytes > 0 then
      M.set m_compression
        (float_of_int t.stats.branches /. float_of_int t.stats.bytes)
  end;
  Ring.contents t.ring

(* --- checkpoint / revert ----------------------------------------------- *)

(* A checkpoint records the ring position plus the pending (unflushed)
   TNT bits and the cumulative stats, so a resumed capture continues the
   packet stream bit-identically to the run the checkpoint was taken
   from — mid-TNT-packet included. *)

type checkpoint = {
  ck_ring : Ring.checkpoint;
  ck_pending_bits : int;
  ck_pending_n : int;
  ck_stats : stats;                (* a copy, not an alias *)
}

let m_ck_taken =
  M.counter ~help:"Encoder checkpoints taken."
    "er_trace_encoder_checkpoints_total"

let m_ck_reverted =
  M.counter ~help:"Encoder reverts that resumed the packet stream."
    "er_trace_encoder_reverts_total"

let m_ck_refused =
  M.counter
    ~help:"Encoder reverts refused (ring wrapped over checkpoint bytes)."
    "er_trace_encoder_reverts_refused_total"

let checkpoint t =
  M.inc m_ck_taken;
  {
    ck_ring = Ring.checkpoint t.ring;
    ck_pending_bits = t.pending_bits;
    ck_pending_n = t.pending_n;
    ck_stats = { t.stats with branches = t.stats.branches };
  }

let can_revert t ck = Ring.can_revert t.ring ck.ck_ring

(* [false] when post-checkpoint writes wrapped into the bytes that were
   live at the checkpoint — the stream can no longer be reconstructed. *)
let revert t ck =
  let ok =
    Ring.revert t.ring ck.ck_ring
    && begin
      t.pending_bits <- ck.ck_pending_bits;
      t.pending_n <- ck.ck_pending_n;
      t.stats.branches <- ck.ck_stats.branches;
      t.stats.ptwrites <- ck.ck_stats.ptwrites;
      t.stats.switches <- ck.ck_stats.switches;
      t.stats.packets <- ck.ck_stats.packets;
      t.stats.bytes <- ck.ck_stats.bytes;
      true
    end
  in
  if ok then M.inc m_ck_reverted else M.inc m_ck_refused;
  ok

(* Full reset: a from-scratch capture reusing the same buffer. *)
let reset t =
  Ring.clear t.ring;
  t.pending_bits <- 0;
  t.pending_n <- 0;
  t.stats.branches <- 0;
  t.stats.ptwrites <- 0;
  t.stats.switches <- 0;
  t.stats.packets <- 0;
  t.stats.bytes <- 0

let overflowed t = Ring.overflowed t.ring
let overwritten t = Ring.overwritten t.ring
let wraps t = Ring.wraps t.ring
let stats t = t.stats
let bytes_emitted t = t.stats.bytes
