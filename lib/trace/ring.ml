(* The trace ring buffer the OS driver hands to the hardware: a fixed-size
   byte buffer that silently overwrites its oldest contents.  ER configures
   it large enough to hold the whole failing execution (the paper uses
   64 MB); the decoder detects and reports loss when it was not. *)

type t = {
  data : Bytes.t;
  capacity : int;
  mutable head : int;     (* next write position *)
  mutable written : int;  (* total bytes ever written *)
  mutable wraps : int;    (* times the head wrapped back to 0 *)
}

let create capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { data = Bytes.create capacity; capacity; head = 0; written = 0; wraps = 0 }

let capacity t = t.capacity
let total_written t = t.written
let overflowed t = t.written > t.capacity

(* Bytes lost to wrap-around: everything written beyond one capacity's
   worth has clobbered the oldest data.  The ring stays silent about it
   on the write path (as the hardware does) — observers ask after the
   fact. *)
let overwritten t = max 0 (t.written - t.capacity)
let wraps t = t.wraps

let write_byte t b =
  Bytes.unsafe_set t.data t.head (Char.unsafe_chr (b land 0xFF));
  t.head <- t.head + 1;
  if t.head = t.capacity then begin
    t.head <- 0;
    t.wraps <- t.wraps + 1
  end;
  t.written <- t.written + 1

(* Bulk write as one or two [Bytes.blit]s split at the wrap point,
   instead of a byte loop that re-checks the wrap per byte.  The
   [written]/[wraps]/[head] accounting is exactly the byte loop's:
   [head] advances by [len] modulo capacity and [wraps] increments once
   per capacity boundary crossed (a qcheck oracle in test/test_trace.ml
   compares against the loop, including multi-wrap writes). *)
let write_bytes t (s : Bytes.t) =
  let len = Bytes.length s in
  let cap = t.capacity in
  let wraps_delta = (t.head + len) / cap in
  if len >= cap then begin
    (* only the last [cap] bytes survive; they land ending at the new
       head, exactly where the byte loop would have left them *)
    let final_head = (t.head + len) mod cap in
    let src = len - cap in
    Bytes.blit s src t.data final_head (cap - final_head);
    Bytes.blit s (src + cap - final_head) t.data 0 final_head;
    t.head <- final_head
  end
  else begin
    let n1 = min len (cap - t.head) in
    Bytes.blit s 0 t.data t.head n1;
    Bytes.blit s n1 t.data 0 (len - n1);
    t.head <- (t.head + len) mod cap
  end;
  t.wraps <- t.wraps + wraps_delta;
  t.written <- t.written + len

(* Snapshot the live contents, oldest byte first. *)
let contents t =
  if not (overflowed t) then Bytes.sub t.data 0 t.head
  else begin
    let out = Bytes.create t.capacity in
    let tail = t.capacity - t.head in
    Bytes.blit t.data t.head out 0 tail;
    Bytes.blit t.data 0 out tail t.head;
    out
  end

let clear t =
  t.head <- 0;
  t.written <- 0;
  t.wraps <- 0

(* --- checkpoint / revert ----------------------------------------------- *)

(* A checkpoint is just the write position: reverting only has to move
   the head back, *provided* the bytes that were live at the checkpoint
   have not been clobbered by post-checkpoint writes wrapping into them.
   [can_revert] is that validity test; an overflowed-at-checkpoint ring
   never reverts (its whole buffer was live). *)

type checkpoint = { ck_head : int; ck_written : int; ck_wraps : int }

let checkpoint t = { ck_head = t.head; ck_written = t.written; ck_wraps = t.wraps }

let can_revert t ck =
  let since = t.written - ck.ck_written in
  since >= 0
  && (if ck.ck_written >= t.capacity then since = 0
      else since <= t.capacity - ck.ck_head)

let revert t ck =
  if can_revert t ck then begin
    t.head <- ck.ck_head;
    t.written <- ck.ck_written;
    t.wraps <- ck.ck_wraps;
    true
  end
  else false
