(* Differential tests for the pre-lowered code cache (lib/ir/lower.ml).

   The lowered VM and shepherded-symex engines must be observationally
   identical to the retained reference engines on every program: same
   outcome, same outputs, same packet stream, same branch-outcome
   sequence, same metric counters, and — for symex — the same
   deterministic solver trajectory. *)

open Er_ir.Types
module Prog = Er_ir.Prog
module Lower = Er_ir.Lower
module Interp = Er_vm.Interp
module Exec = Er_symex.Exec
module Bug = Er_corpus.Bug
module M = Er_metrics

let mk_block label instrs term =
  { label; instrs = Array.of_list instrs; term }

let mk_func fname params ret_ty blocks = { fname; params; ret_ty; blocks }
let mk_prog ?(globals = []) funcs main = { globals; funcs; main }

(* --- lowering unit tests ------------------------------------------------ *)

let test_slot_assignment () =
  let f =
    mk_func "main" [ ("%p", I64); ("%q", I32) ] (Some I64)
      [
        mk_block "entry"
          [
            Bin { dst = "%a"; op = Add; ty = I64; a = Reg "%p"; b = Reg "%q" };
            Bin { dst = "%b"; op = Add; ty = I64; a = Reg "%a"; b = Imm (1L, I64) };
          ]
          (Ret (Some (Reg "%b")));
      ]
  in
  let low = Lower.compile (mk_prog [ f ] "main") in
  let lf = Lower.func_by_name low "main" in
  Alcotest.(check int) "nslots" 4 lf.Lower.lf_nslots;
  Alcotest.(check (array string))
    "slots are params then first occurrence"
    [| "%p"; "%q"; "%a"; "%b" |]
    lf.Lower.lf_reg_of_slot;
  Array.iteri
    (fun i r ->
       Alcotest.(check int) ("slot_of_reg " ^ r) i
         (Hashtbl.find lf.Lower.lf_slot_of_reg r))
    lf.Lower.lf_reg_of_slot;
  Alcotest.(check bool) "always-defined function is untracked" false
    lf.Lower.lf_tracked;
  Alcotest.(check int) "entry is block 0" 0 lf.Lower.lf_blocks.(0).Lower.lb_index;
  let d = lf.Lower.lf_blocks.(0).Lower.lb_delta in
  Alcotest.(check int) "two alu instrs" 2 d.Lower.d_alu;
  Alcotest.(check int) "ret retires in the call class" 1 d.Lower.d_call

let test_maybe_undefined_is_tracked () =
  (* %x is defined only on the true path but read after the join: the
     must-defined analysis demotes its use to a checked slot *)
  let p =
    mk_prog
      [
        mk_func "main" [] None
          [
            mk_block "entry"
              [ Cmp { dst = "%c"; op = Eq; ty = I64; a = Imm (0L, I64); b = Imm (0L, I64) } ]
              (Cond_br { cond = Reg "%c"; if_true = "def"; if_false = "skip" });
            mk_block "def"
              [ Bin { dst = "%x"; op = Add; ty = I64; a = Imm (1L, I64); b = Imm (2L, I64) } ]
              (Br "use");
            mk_block "skip" [] (Br "use");
            mk_block "use" [ Output { v = Reg "%x" } ] (Ret None);
          ];
      ]
      "main"
  in
  let lf = Lower.func_by_name (Lower.compile p) "main" in
  Alcotest.(check bool) "tracked" true lf.Lower.lf_tracked;
  let use_block =
    Array.to_list lf.Lower.lf_blocks
    |> List.find (fun b -> String.equal b.Lower.lb_label "use")
  in
  (match use_block.Lower.lb_instrs.(0) with
   | Lower.LOutput { v = Lower.Ocheck { reg; _ } } ->
       Alcotest.(check string) "checked reg name" "%x" reg
   | _ -> Alcotest.fail "expected a checked operand");
  (* the cond in entry is defined in its own block: a plain slot *)
  match lf.Lower.lf_blocks.(0).Lower.lb_term with
  | Lower.LCond_br { cond = Lower.Oslot _; _ } -> ()
  | _ -> Alcotest.fail "expected a plain slot for the entry cond"

let test_unknown_callee_rejected () =
  let p =
    mk_prog
      [
        mk_func "main" [] None
          [ mk_block "entry" [ Call { dst = None; func = "nope"; args = [] } ] (Ret None) ];
      ]
      "main"
  in
  match Lower.compile p with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown callee must be rejected at compile time"

let test_cache_physical_equality () =
  let s = List.hd Er_corpus.Registry.table1 in
  let p = Prog.of_program s.Bug.program in
  Alcotest.(check bool) "lowering is compiled once and cached" true
    (Prog.lowered p == Prog.lowered p)

(* --- VM observation harness -------------------------------------------- *)

type vm_obs = {
  o_outcome : Interp.outcome;
  o_instrs : int;
  o_branches : int;
  o_outputs : int64 list;
  o_peak : int;
  o_trace : string;  (* finished encoder packet bytes *)
  o_bits : bool list;  (* conditional-branch outcome sequence *)
}

let observe
    (run :
       ?config:Interp.config -> Prog.t -> Er_vm.Inputs.t -> Interp.run_result)
    prog inputs ~seed ~config =
  let enc = Er_trace.Encoder.create () in
  Er_trace.Encoder.start enc;
  let bits = ref [] in
  let hooks =
    {
      Interp.no_hooks with
      Interp.on_branch =
        Some
          (fun b ->
             bits := b :: !bits;
             Er_trace.Encoder.branch enc b);
      on_switch =
        Some (fun ~tid ~clock -> Er_trace.Encoder.thread_switch enc ~tid ~clock);
      on_ptwrite = Some (fun v -> Er_trace.Encoder.ptwrite enc v);
      on_alloc = Some (fun v -> Er_trace.Encoder.ptwrite enc v);
    }
  in
  let config = { config with Interp.sched_seed = seed; hooks } in
  let r = run ~config prog inputs in
  {
    o_outcome = r.Interp.outcome;
    o_instrs = r.Interp.instr_count;
    o_branches = r.Interp.branch_count;
    o_outputs = r.Interp.outputs;
    o_peak = r.Interp.peak_mem_cells;
    o_trace = Bytes.to_string (Er_trace.Encoder.finish enc);
    o_bits = List.rev !bits;
  }

let outcome_str = function
  | Interp.Finished None -> "finished"
  | Interp.Finished (Some v) -> Printf.sprintf "finished %Ld" v
  | Interp.Failed f -> "failed: " ^ Er_vm.Failure.to_string f

let check_same_obs name (a : vm_obs) (b : vm_obs) =
  Alcotest.(check string)
    (name ^ ": outcome")
    (outcome_str a.o_outcome) (outcome_str b.o_outcome);
  Alcotest.(check bool) (name ^ ": outcome (structural)") true
    (a.o_outcome = b.o_outcome);
  Alcotest.(check int) (name ^ ": instr_count") a.o_instrs b.o_instrs;
  Alcotest.(check int) (name ^ ": branch_count") a.o_branches b.o_branches;
  Alcotest.(check (list int64)) (name ^ ": outputs") a.o_outputs b.o_outputs;
  Alcotest.(check int) (name ^ ": peak_mem_cells") a.o_peak b.o_peak;
  Alcotest.(check string) (name ^ ": packet bytes") a.o_trace b.o_trace;
  Alcotest.(check (list bool)) (name ^ ": branch outcomes") a.o_bits b.o_bits

let obs_equal (a : vm_obs) (b : vm_obs) =
  a.o_outcome = b.o_outcome && a.o_instrs = b.o_instrs
  && a.o_branches = b.o_branches && a.o_outputs = b.o_outputs
  && a.o_peak = b.o_peak
  && String.equal a.o_trace b.o_trace
  && a.o_bits = b.o_bits

(* --- corpus differential: VM ------------------------------------------- *)

let test_corpus_vm_differential () =
  List.iter
    (fun (s : Bug.spec) ->
       let prog = Prog.of_program s.Bug.program in
       for occ = 1 to 2 do
         let name = Printf.sprintf "%s occ %d" s.Bug.name occ in
         let inputs, seed = s.Bug.failing_workload ~occurrence:occ in
         let a =
           observe Interp.run_reference prog inputs ~seed
             ~config:Interp.default_config
         in
         let inputs, seed = s.Bug.failing_workload ~occurrence:occ in
         let b =
           observe Interp.run prog inputs ~seed ~config:Interp.default_config
         in
         check_same_obs name a b
       done)
    Er_corpus.Registry.table1

(* --- corpus differential: shepherded symex ------------------------------ *)

(* Replicates Pipeline.Default_tracer: capture the first failing
   occurrence's packet stream and failure clock. *)
let trace_failure prog (s : Bug.spec) =
  let rec go occ =
    if occ > 8 then None
    else
      let inputs, seed = s.Bug.failing_workload ~occurrence:occ in
      let enc = Er_trace.Encoder.create () in
      Er_trace.Encoder.start enc;
      let hooks =
        {
          Interp.no_hooks with
          Interp.on_branch = Some (fun b -> Er_trace.Encoder.branch enc b);
          on_switch =
            Some
              (fun ~tid ~clock -> Er_trace.Encoder.thread_switch enc ~tid ~clock);
          on_ptwrite = Some (fun v -> Er_trace.Encoder.ptwrite enc v);
          on_alloc = Some (fun v -> Er_trace.Encoder.ptwrite enc v);
        }
      in
      let config = { Interp.default_config with sched_seed = seed; hooks } in
      let r = Interp.run ~config prog inputs in
      match r.Interp.outcome with
      | Interp.Failed failure -> (
          match Er_trace.Decoder.decode (Er_trace.Encoder.finish enc) with
          | Error _ -> None
          | Ok events ->
              Some
                (Er_trace.Decoder.split events, failure, r.Interp.instr_count))
      | Interp.Finished _ -> go (occ + 1)
  in
  go 1

let exec_outcome_str = function
  | Exec.Complete sol ->
      Printf.sprintf "complete pcs=%d inputs=%s"
        (List.length sol.Exec.path_constraints)
        (String.concat "," (List.map fst sol.Exec.input_log))
  | Exec.Stalled st ->
      Printf.sprintf "stalled at %s: %s"
        (point_to_string st.Exec.stalled_at)
        st.Exec.stall_reason
  | Exec.Diverged why -> "diverged: " ^ why

let check_same_exec name (a : Exec.result) (b : Exec.result) =
  Alcotest.(check string)
    (name ^ ": outcome")
    (exec_outcome_str a.Exec.outcome)
    (exec_outcome_str b.Exec.outcome);
  Alcotest.(check int) (name ^ ": steps") a.Exec.steps b.Exec.steps;
  Alcotest.(check int) (name ^ ": solver_calls") a.Exec.solver_calls
    b.Exec.solver_calls;
  Alcotest.(check int) (name ^ ": solver_cost") a.Exec.solver_cost
    b.Exec.solver_cost;
  Alcotest.(check int) (name ^ ": cache_hits") a.Exec.cache_hits
    b.Exec.cache_hits;
  Alcotest.(check int) (name ^ ": cache_misses") a.Exec.cache_misses
    b.Exec.cache_misses

let test_corpus_symex_differential () =
  List.iter
    (fun (s : Bug.spec) ->
       let prog = Prog.of_program s.Bug.program in
       match trace_failure prog s with
       | None -> Alcotest.fail (s.Bug.name ^ ": no failing trace captured")
       | Some (split, failure, clock) ->
           let config = s.Bug.config.Er_core.Driver.exec_config in
           (* each engine runs in a fresh interning space: identical
              Expr ids, an isolated solver-cache shard, and therefore a
              bit-identical deterministic solver trajectory *)
           let run_one
               (run :
                  ?config:Exec.config ->
                  Prog.t ->
                  trace:Er_trace.Decoder.split ->
                  failure:Er_vm.Failure.t ->
                  failure_clock:int ->
                  Exec.result)
               =
             Er_smt.Expr.in_fresh_space (fun () ->
                 run ~config prog ~trace:split ~failure ~failure_clock:clock)
           in
           let a = run_one Exec.run_reference in
           let b = run_one Exec.run in
           check_same_exec s.Bug.name a b)
    Er_corpus.Registry.table1

(* --- randomized differential: VM ---------------------------------------- *)

(* Random DAG programs: the entry block allocates a buffer, reads a
   register pool from a finite input stream (exhaustion crashes are part
   of the state space), and body blocks branch strictly forward.  Body
   instructions use pool registers, masked and raw memory indices (raw
   ones crash out of bounds), unsigned division (by zero), asserts,
   calls, globals, and ptwrites. *)
let gen_prog_and_inputs =
  let open QCheck2.Gen in
  let pool = [ "%x0"; "%x1"; "%x2"; "%x3" ] in
  let pool_reg = oneofl (List.map (fun r -> Reg r) pool) in
  let operand =
    oneof
      [ pool_reg; map (fun v -> Imm (Int64.of_int v, I64)) (int_range (-4) 40) ]
  in
  let binop = oneofl [ Add; Sub; Mul; And; Or; Xor; Shl; Lshr; Udiv; Urem ] in
  let cmpop = oneofl [ Eq; Ne; Ult; Ule; Slt; Sge ] in
  let body_instr i j =
    let dst = Printf.sprintf "%%t%d_%d" i j in
    oneof
      [
        (let* op = binop in
         let* a = operand and* b = operand in
         return [ Bin { dst; op; ty = I64; a; b } ]);
        (let* op = cmpop in
         let* a = operand and* b = operand in
         return [ Cmp { dst; op; ty = I64; a; b } ]);
        (let* a = pool_reg and* b = pool_reg in
         return
           [
             Cmp { dst; op = Ult; ty = I64; a; b = Imm (7L, I64) };
             Select
               { dst = dst ^ "s"; ty = I64; cond = Reg dst; if_true = a; if_false = b };
           ]);
        (let* v = pool_reg in
         let* kind, from_ty, to_ty =
           oneofl [ (Trunc, I64, I8); (Trunc, I64, I16); (Zext, I8, I64); (Sext, I8, I64) ]
         in
         return [ Cast { dst; kind; to_ty; v; from_ty } ]);
        (* masked (usually safe) and raw (usually crashing) memory ops
           against the stack buffer or the global *)
        (let* base = oneofl [ Reg "%buf"; Global "g" ] in
         let* masked = frequency [ (4, return true); (1, return false) ] in
         let* idx = pool_reg in
         let* store = bool in
         let pre, addr_idx =
           if masked then
             ( [ Bin { dst = dst ^ "m"; op = And; ty = I64; a = idx; b = Imm (3L, I64) } ],
               Reg (dst ^ "m") )
           else ([], idx)
         in
         let gep = Gep { dst = dst ^ "g"; base; idx = addr_idx } in
         let op =
           if store then
             Store { ty = I64; v = idx; addr = Reg (dst ^ "g") }
           else Load { dst = dst ^ "l"; ty = I64; addr = Reg (dst ^ "g") }
         in
         return (pre @ [ gep; op ]));
        (let* v = pool_reg in
         return [ Output { v } ]);
        (let* v = pool_reg in
         return [ Ptwrite { v } ]);
        (let* a = operand in
         return
           [
             Cmp { dst; op = Ult; ty = I64; a; b = Imm (1000L, I64) };
             Assert { cond = Reg dst; msg = "random assert" };
           ]);
        (let* a = pool_reg and* b = operand in
         return [ Call { dst = Some (dst ^ "c"); func = "helper"; args = [ a; b ] } ]);
      ]
  in
  let* nblocks = int_range 1 5 in
  let* bodies =
    flatten_l
      (List.init nblocks (fun i ->
           let* nins = int_range 0 5 in
           let* seqs = flatten_l (List.init nins (fun j -> body_instr (i + 1) j)) in
           return (List.concat seqs)))
  in
  let* terms =
    flatten_l
      (List.init nblocks (fun i ->
           let bi = i + 1 in
           if bi = nblocks then
             oneof
               [
                 return (Ret (Some (Reg "%x2")));
                 return (Ret None);
                 frequency [ (1, return (Abort "generated abort")); (9, return (Ret None)) ];
               ]
           else
             let targets = List.init (nblocks - bi) (fun k -> Printf.sprintf "b%d" (bi + 1 + k)) in
             oneof
               [
                 map (fun l -> Br l) (oneofl targets);
                 (let* t = oneofl targets and* f = oneofl targets in
                  return (Cond_br { cond = Reg "%c"; if_true = t; if_false = f }));
               ]))
  in
  let entry =
    mk_block "entry"
      ([ Alloc { dst = "%buf"; elt_ty = I64; count = Imm (4L, I64); heap = false } ]
       @ List.map
           (fun r -> Input { dst = r; ty = I64; stream = "s" })
           pool
       @ [ Cmp { dst = "%c"; op = Slt; ty = I64; a = Reg "%x0"; b = Reg "%x1" } ])
      (Br "b1")
  in
  let body_blocks =
    List.mapi
      (fun i (instrs, term) -> mk_block (Printf.sprintf "b%d" (i + 1)) instrs term)
      (List.combine bodies terms)
  in
  let helper =
    mk_func "helper" [ ("%a", I64); ("%b", I64) ] (Some I64)
      [
        mk_block "entry"
          [
            Bin { dst = "%s"; op = Add; ty = I64; a = Reg "%a"; b = Reg "%b" };
            Output { v = Reg "%s" };
          ]
          (Ret (Some (Reg "%s")));
      ]
  in
  let g = { gname = "g"; g_elt_ty = I64; g_size = 4; g_init = None } in
  let program =
    mk_prog ~globals:[ g ]
      [ mk_func "main" [] None (entry :: body_blocks); helper ]
      "main"
  in
  let* inputs = list_size (int_range 0 6) (map Int64.of_int (int_range (-50) 50)) in
  let* seed = int_range 0 1000 in
  return (program, inputs, seed)

let qcheck_vm_differential =
  QCheck2.Test.make ~name:"lowered VM matches reference on random programs"
    ~count:150 gen_prog_and_inputs
    (fun (program, input_vals, seed) ->
       let prog = Prog.of_program program in
       let mk_inputs () = Er_vm.Inputs.make [ ("s", input_vals) ] in
       let a =
         observe Interp.run_reference prog (mk_inputs ()) ~seed
           ~config:Interp.default_config
       in
       let b =
         observe Interp.run prog (mk_inputs ()) ~seed
           ~config:Interp.default_config
       in
       obs_equal a b)

(* --- handwritten parity cases ------------------------------------------- *)

let undef_read_prog take_def_path =
  mk_prog
    [
      mk_func "main" [] None
        [
          mk_block "entry"
            [
              Cmp
                {
                  dst = "%c";
                  op = Eq;
                  ty = I64;
                  a = Imm (0L, I64);
                  b = Imm ((if take_def_path then 0L else 1L), I64);
                };
            ]
            (Cond_br { cond = Reg "%c"; if_true = "def"; if_false = "skip" });
          mk_block "def"
            [ Bin { dst = "%x"; op = Add; ty = I64; a = Imm (1L, I64); b = Imm (2L, I64) } ]
            (Br "use");
          mk_block "skip" [] (Br "use");
          mk_block "use" [ Output { v = Reg "%x" } ] (Ret None);
        ];
    ]
    "main"

let test_undefined_read_parity () =
  (* defined path: both engines agree on outputs *)
  let p = Prog.of_program (undef_read_prog true) in
  let a =
    observe Interp.run_reference p (Er_vm.Inputs.make []) ~seed:0
      ~config:Interp.default_config
  in
  let b =
    observe Interp.run p (Er_vm.Inputs.make []) ~seed:0
      ~config:Interp.default_config
  in
  check_same_obs "undef/defined path" a b;
  (* undefined path: both engines raise the same Invalid_argument *)
  let p = Prog.of_program (undef_read_prog false) in
  let catch
      (run :
         ?config:Interp.config -> Prog.t -> Er_vm.Inputs.t -> Interp.run_result)
      =
    try
      ignore (run ~config:Interp.default_config p (Er_vm.Inputs.make []));
      "no exception"
    with Invalid_argument m -> m
  in
  let ma = catch Interp.run_reference and mb = catch Interp.run in
  Alcotest.(check string) "undefined-read message parity" ma mb;
  Alcotest.(check bool) "reference raised" true
    (ma <> "no exception")

let test_stack_overflow_parity () =
  let p =
    Prog.of_program
      (mk_prog
         [
           mk_func "main" [] None
             [ mk_block "entry" [ Call { dst = None; func = "f"; args = [] } ] (Ret None) ];
           mk_func "f" [] None
             [ mk_block "entry" [ Call { dst = None; func = "f"; args = [] } ] (Ret None) ];
         ]
         "main")
  in
  let config = { Interp.default_config with max_call_depth = 40 } in
  let a = observe Interp.run_reference p (Er_vm.Inputs.make []) ~seed:0 ~config in
  let b = observe Interp.run p (Er_vm.Inputs.make []) ~seed:0 ~config in
  (match a.o_outcome with
   | Interp.Failed { Er_vm.Failure.kind = Er_vm.Failure.Stack_overflow; _ } -> ()
   | _ -> Alcotest.fail "expected a stack overflow");
  check_same_obs "stack overflow" a b

(* A spinning main holding a lock while a spawned worker repeatedly
   blocks on it: per-attempt sync retirement counts, thread switches,
   and join blocking must all match. *)
let mt_lock_prog =
  mk_prog
    ~globals:[ { gname = "m"; g_elt_ty = I64; g_size = 1; g_init = None } ]
    [
      mk_func "main" [] None
        [
          mk_block "entry"
            [
              Lock { addr = Global "m" };
              Spawn { func = "w"; args = [] };
              Bin { dst = "%i"; op = Add; ty = I64; a = Imm (0L, I64); b = Imm (0L, I64) };
            ]
            (Br "loop");
          mk_block "loop"
            [
              Bin { dst = "%i"; op = Add; ty = I64; a = Reg "%i"; b = Imm (1L, I64) };
              Cmp { dst = "%c"; op = Ult; ty = I64; a = Reg "%i"; b = Imm (200L, I64) };
            ]
            (Cond_br { cond = Reg "%c"; if_true = "loop"; if_false = "rest" });
          mk_block "rest"
            [ Unlock { addr = Global "m" }; Join; Output { v = Imm (7L, I64) } ]
            (Ret None);
        ];
      mk_func "w" [] None
        [
          mk_block "entry"
            [
              Lock { addr = Global "m" };
              Output { v = Imm (1L, I64) };
              Unlock { addr = Global "m" };
            ]
            (Ret None);
        ];
    ]
    "main"

let test_mt_lock_parity () =
  let p = Prog.of_program mt_lock_prog in
  let a =
    observe Interp.run_reference p (Er_vm.Inputs.make []) ~seed:3
      ~config:Interp.default_config
  in
  let b =
    observe Interp.run p (Er_vm.Inputs.make []) ~seed:3
      ~config:Interp.default_config
  in
  check_same_obs "mt lock" a b

(* --- no-hooks fast-path differentials ------------------------------------ *)

(* Everything above installs trace hooks, which routes execution through
   the hooked singleton units.  The fused threaded dispatcher — committed
   superinstruction pairs and triples, whole-block chains, pre-validated
   Ocheck guards, the specialised call/return path — only runs hook-free,
   so these differentials compare the engines under [no_hooks], exactly
   as `bench vm` and plan-less replay execute. *)

module Vs = Er_vm.Vm_state

let fast_obs (r : Interp.run_result) =
  ( (outcome_str r.Interp.outcome, r.Interp.instr_count),
    (r.Interp.branch_count, r.Interp.outputs) )

let fast_obs_t = Alcotest.(pair (pair string int) (pair int (list int64)))

let check_fast_pair name prog inputs_of seed =
  let run
      (run :
         ?config:Interp.config -> Prog.t -> Er_vm.Inputs.t -> Interp.run_result)
      =
    fast_obs
      (run ~config:{ Interp.default_config with Interp.sched_seed = seed } prog
         (inputs_of ()))
  in
  Alcotest.check fast_obs_t name (run Interp.run_reference) (run Interp.run)

let test_corpus_vm_fast_differential () =
  List.iter
    (fun (s : Bug.spec) ->
       let prog = Prog.of_program s.Bug.program in
       for occ = 1 to 2 do
         let _, seed = s.Bug.failing_workload ~occurrence:occ in
         check_fast_pair
           (Printf.sprintf "%s occ %d (no hooks)" s.Bug.name occ)
           prog
           (fun () -> fst (s.Bug.failing_workload ~occurrence:occ))
           seed
       done)
    Er_corpus.Registry.table1

let qcheck_vm_fast_differential =
  QCheck2.Test.make
    ~name:"fused no-hooks VM matches reference on random programs" ~count:150
    gen_prog_and_inputs
    (fun (program, input_vals, seed) ->
       let prog = Prog.of_program program in
       let run
           (run :
              ?config:Interp.config -> Prog.t -> Er_vm.Inputs.t ->
              Interp.run_result)
           =
         fast_obs
           (run
              ~config:{ Interp.default_config with Interp.sched_seed = seed }
              prog
              (Er_vm.Inputs.make [ ("s", input_vals) ]))
       in
       run Interp.run_reference = run Interp.run)

(* A self-looping block whose static shape exercises every unit kind at
   once: a committed load+bin pair, a store singleton, the hand-fused
   cmp+cond_br terminator pair — and, every instruction being fusable,
   the whole-block chain. *)
let fused_loop_prog ?(bound = 50L) () =
  mk_prog
    ~globals:[ { gname = "cell"; g_elt_ty = I64; g_size = 1; g_init = None } ]
    [
      mk_func "main" [] (Some I64)
        [
          mk_block "entry" [] (Br "loop");
          mk_block "loop"
            [
              Load { dst = "%i"; ty = I64; addr = Global "cell" };
              Bin { dst = "%j"; op = Add; ty = I64; a = Reg "%i"; b = Imm (1L, I64) };
              Store { ty = I64; v = Reg "%j"; addr = Global "cell" };
              Cmp { dst = "%c"; op = Ult; ty = I64; a = Reg "%j"; b = Imm (bound, I64) };
            ]
            (Cond_br { cond = Reg "%c"; if_true = "loop"; if_false = "done" });
          mk_block "done" [ Output { v = Reg "%j" } ] (Ret (Some (Reg "%j")));
        ];
    ]
    "main"

let resume_obs (r : Vs.run_result) =
  ( (match r.Vs.outcome with
     | Vs.Finished None -> "finished"
     | Vs.Finished (Some v) -> Printf.sprintf "finished %Ld" v
     | Vs.Failed f -> "failed: " ^ Er_vm.Failure.to_string f),
    r.Vs.instr_count,
    r.Vs.outputs )

let resume_obs_t = Alcotest.(triple string int (list int64))

(* Pause/snapshot/revert/resume with no hooks: the quantum boundary can
   land anywhere relative to the fused units — the budget guard must
   split them back to singletons so the checkpoint sits at exact
   instruction granularity, and the resumed suffix must be bit-identical
   whether the pause fell on a fused-block boundary or inside one. *)
let test_fast_checkpoint_resume () =
  let check_prog name program mk_inputs ks =
    let straight =
      resume_obs
        (Vs.run_program ~config:Interp.default_config (Prog.of_program program)
           (mk_inputs ()))
    in
    List.iter
      (fun k ->
         let prog = Prog.of_program program in
         let vm =
           Vs.create ~config:Interp.default_config
             ~plan:(Vs.empty_plan (Prog.lowered prog))
             prog (mk_inputs ())
         in
         match Vs.run ~pause_at:k vm with
         | Some _ -> () (* finished before ever pausing *)
         | None ->
             let ck = Vs.snapshot vm in
             let first = resume_obs (Vs.run_to_end vm) in
             Vs.revert vm ck;
             let second = resume_obs (Vs.run_to_end vm) in
             Alcotest.check resume_obs_t
               (Printf.sprintf "%s k=%d: replay" name k)
               first second;
             Alcotest.check resume_obs_t
               (Printf.sprintf "%s k=%d: vs straight" name k)
               straight first)
      ks
  in
  (* k = 1..30 sweeps every boundary and interior position of the fused
     loop's units across several iterations *)
  check_prog "fused loop"
    (fused_loop_prog ())
    (fun () -> Er_vm.Inputs.make [])
    (List.init 30 (fun i -> i + 1));
  let spec = Er_corpus.Registry.running_example in
  check_prog "running example" spec.Bug.program
    (fun () -> fst (spec.Bug.failing_workload ~occurrence:1))
    [ 1; 3; 7; 12; 19; 27; 40 ]

(* A recording-plan mark landing on the interior instruction of a
   would-be-fused pair forces the dispatcher back to singleton units for
   that block; the run must stay bit-identical to the unmarked one. *)
let test_plan_split_fused_pair () =
  let program = fused_loop_prog () in
  let prog = Prog.of_program program in
  let low = Prog.lowered prog in
  let run plan =
    let vm =
      Vs.create ~config:Interp.default_config ~plan prog (Er_vm.Inputs.make [])
    in
    resume_obs (Vs.run_to_end vm)
  in
  let unmarked = run (Vs.empty_plan low) in
  (* p_index 1 is the Bin: the tail of the committed load+bin pair *)
  let marked =
    run
      (Vs.plan_of_points low
         [ { p_func = "main"; p_block = "loop"; p_index = 1 } ])
  in
  Alcotest.check resume_obs_t "plan mark inside a fused pair" unmarked marked;
  let reference =
    fast_obs
      (Interp.run_reference ~config:Interp.default_config prog
         (Er_vm.Inputs.make []))
  in
  let (o, i), (_, outs) = reference in
  Alcotest.check resume_obs_t "marked run vs reference" (o, i, outs) marked

(* Crashes inside fused units: the failure must name the exact
   sub-instruction, with the preceding elements of the unit retired. *)
let test_fused_unit_crash_parity () =
  (* head faults: udiv-by-zero heading a committed bin+store pair *)
  let div_prog =
    mk_prog
      ~globals:[ { gname = "cell"; g_elt_ty = I64; g_size = 1; g_init = None } ]
      [
        mk_func "main" [] None
          [
            mk_block "entry" [] (Br "go");
            mk_block "go"
              [
                Bin { dst = "%d"; op = Udiv; ty = I64; a = Imm (1L, I64); b = Imm (0L, I64) };
                Store { ty = I64; v = Reg "%d"; addr = Global "cell" };
              ]
              (Ret None);
          ];
      ]
      "main"
  in
  check_fast_pair "udiv-by-zero at fused-pair head"
    (Prog.of_program div_prog)
    (fun () -> Er_vm.Inputs.make [])
    0;
  (* tail faults: out-of-bounds store ending a bin+gep+store triple,
     after the two head elements retired *)
  let oob_prog =
    mk_prog
      ~globals:[ { gname = "cell"; g_elt_ty = I64; g_size = 1; g_init = None } ]
      [
        mk_func "main" [] None
          [
            mk_block "entry" [] (Br "go");
            mk_block "go"
              [
                Bin { dst = "%v"; op = Add; ty = I64; a = Imm (40L, I64); b = Imm (59L, I64) };
                Gep { dst = "%p"; base = Global "cell"; idx = Reg "%v" };
                Store { ty = I64; v = Reg "%v"; addr = Reg "%p" };
              ]
              (Ret None);
          ];
      ]
      "main"
  in
  check_fast_pair "out-of-bounds store at fused-triple tail"
    (Prog.of_program oob_prog)
    (fun () -> Er_vm.Inputs.make [])
    0

(* Undefined-register reads inside a fused unit go through the
   pre-validated Ocheck guards of the fast path; the trap and its
   message must match the reference exactly. *)
let undef_in_fused_prog take_def_path =
  mk_prog
    ~globals:[ { gname = "cell"; g_elt_ty = I64; g_size = 1; g_init = None } ]
    [
      mk_func "main" [] None
        [
          mk_block "entry"
            [
              Cmp
                {
                  dst = "%c";
                  op = Eq;
                  ty = I64;
                  a = Imm (0L, I64);
                  b = Imm ((if take_def_path then 0L else 1L), I64);
                };
            ]
            (Cond_br { cond = Reg "%c"; if_true = "def"; if_false = "skip" });
          mk_block "def"
            [ Bin { dst = "%x"; op = Add; ty = I64; a = Imm (1L, I64); b = Imm (2L, I64) } ]
            (Br "use");
          mk_block "skip" [] (Br "use");
          (* the checked %x read heads a committed bin+store pair *)
          mk_block "use"
            [
              Bin { dst = "%y"; op = Add; ty = I64; a = Reg "%x"; b = Imm (1L, I64) };
              Store { ty = I64; v = Reg "%y"; addr = Global "cell" };
            ]
            (Ret None);
        ];
    ]
    "main"

let test_fast_undefined_read_in_fused_unit () =
  (* defined path: observationally identical *)
  check_fast_pair "Ocheck in fused unit, defined path"
    (Prog.of_program (undef_in_fused_prog true))
    (fun () -> Er_vm.Inputs.make [])
    0;
  (* undefined path: both engines raise the identical Invalid_argument *)
  let p = Prog.of_program (undef_in_fused_prog false) in
  let catch
      (run :
         ?config:Interp.config -> Prog.t -> Er_vm.Inputs.t -> Interp.run_result)
      =
    try
      ignore (run ~config:Interp.default_config p (Er_vm.Inputs.make []));
      "no exception"
    with Invalid_argument m -> m
  in
  let ma = catch Interp.run_reference and mb = catch Interp.run in
  Alcotest.(check string) "Ocheck trap message inside fused unit" ma mb;
  Alcotest.(check bool) "reference raised" true (ma <> "no exception")

(* Width and signedness edges through the specialised ALU units: shift
   counts at and beyond the word width, and signed/unsigned compares
   across the sign boundary. *)
let test_fast_shift_cmp_edges () =
  let out v = Output { v = Reg v } in
  let shifts =
    List.concat_map
      (fun (op, nm) ->
         List.mapi
           (fun i count ->
              let dst = Printf.sprintf "%%%s%d" nm i in
              [
                Bin { dst; op; ty = I64; a = Imm (-7L, I64); b = Imm (count, I64) };
                out dst;
              ])
           [ 0L; 1L; 63L; 64L; 65L; -1L ])
      [ (Shl, "shl"); (Lshr, "lshr"); (Ashr, "ashr") ]
    |> List.concat
  in
  let cmps =
    List.concat_map
      (fun (op, nm) ->
         List.mapi
           (fun i (a, b) ->
              let dst = Printf.sprintf "%%%s%d" nm i in
              [
                Cmp { dst; op; ty = I64; a = Imm (a, I64); b = Imm (b, I64) };
                out dst;
              ])
           [ (-1L, 1L); (1L, -1L); (Int64.min_int, Int64.max_int); (0L, 0L) ])
      [ (Ult, "ult"); (Ule, "ule"); (Slt, "slt"); (Sle, "sle");
        (Sgt, "sgt"); (Sge, "sge") ]
    |> List.concat
  in
  let p =
    mk_prog
      [ mk_func "main" [] None [ mk_block "entry" (shifts @ cmps) (Ret None) ] ]
      "main"
  in
  check_fast_pair "shift and compare edges (no hooks)" (Prog.of_program p)
    (fun () -> Er_vm.Inputs.make [])
    0

(* --- metrics parity ------------------------------------------------------ *)

let vm_counters =
  [
    ("alu", Interp.m_i_alu);
    ("load", Interp.m_i_load);
    ("store", Interp.m_i_store);
    ("mem", Interp.m_i_mem);
    ("call", Interp.m_i_call);
    ("io", Interp.m_i_io);
    ("sync", Interp.m_i_sync);
    ("branch", Interp.m_i_branch);
    ("other", Interp.m_i_other);
    ("loads", Interp.m_loads);
    ("stores", Interp.m_stores);
    ("branches", Interp.m_branches);
    ("switches", Interp.m_switches);
  ]

(* Run [f] with the default registry enabled and return the counter
   snapshot it produced; always disable and reset afterwards so other
   suites see pristine metrics. *)
let metered f =
  M.reset M.default;
  M.set_enabled M.default true;
  Fun.protect
    ~finally:(fun () ->
      M.set_enabled M.default false;
      M.reset M.default)
    (fun () ->
       ignore (f ());
       List.map (fun (n, c) -> (n, M.counter_value c)) vm_counters)

let check_metric_parity name prog inputs_of ~seed ~config =
  let a =
    metered (fun () -> Interp.run_reference ~config prog (inputs_of ()))
  in
  let b = metered (fun () -> Interp.run ~config prog (inputs_of ())) in
  List.iter2
    (fun (n, va) (_, vb) ->
       Alcotest.(check int) (Printf.sprintf "%s: %s" name n) va vb)
    a b;
  ignore seed

let test_metrics_parity () =
  let no_inputs () = Er_vm.Inputs.make [] in
  (* multithreaded with per-attempt Blocked sync counts *)
  check_metric_parity "mt lock metrics"
    (Prog.of_program mt_lock_prog)
    no_inputs ~seed:3 ~config:Interp.default_config;
  (* a mid-block crash: the partial flush must count exactly the
     retired prefix of the crashed frame *)
  let crash =
    Prog.of_program
      (mk_prog
         [
           mk_func "main" [] None
             [
               mk_block "entry"
                 [
                   Bin { dst = "%a"; op = Add; ty = I64; a = Imm (1L, I64); b = Imm (2L, I64) };
                   Bin { dst = "%d"; op = Udiv; ty = I64; a = Reg "%a"; b = Imm (0L, I64) };
                   Bin { dst = "%z"; op = Add; ty = I64; a = Reg "%d"; b = Imm (1L, I64) };
                 ]
                 (Ret None);
             ];
         ]
         "main")
  in
  check_metric_parity "div-zero crash metrics" crash no_inputs ~seed:0
    ~config:Interp.default_config;
  (* a hang: the instruction budget expires mid-block *)
  let spin =
    Prog.of_program
      (mk_prog
         [
           mk_func "main" [] None
             [
               mk_block "entry"
                 [ Bin { dst = "%i"; op = Add; ty = I64; a = Imm (0L, I64); b = Imm (0L, I64) } ]
                 (Br "loop");
               mk_block "loop"
                 [ Bin { dst = "%i"; op = Add; ty = I64; a = Reg "%i"; b = Imm (1L, I64) } ]
                 (Br "loop");
             ];
         ]
         "main")
  in
  check_metric_parity "hang metrics" spin no_inputs ~seed:0
    ~config:{ Interp.default_config with max_instrs = 500 };
  (* a real corpus bug exercises every instruction class *)
  let s = List.hd Er_corpus.Registry.table1 in
  let prog = Prog.of_program s.Bug.program in
  let inputs_of () = fst (s.Bug.failing_workload ~occurrence:1) in
  let _, seed = s.Bug.failing_workload ~occurrence:1 in
  check_metric_parity (s.Bug.name ^ " metrics") prog inputs_of ~seed
    ~config:{ Interp.default_config with sched_seed = seed }

let suites =
  [
    ( "lower",
      [
        Alcotest.test_case "slot assignment" `Quick test_slot_assignment;
        Alcotest.test_case "maybe-undefined regs are tracked" `Quick
          test_maybe_undefined_is_tracked;
        Alcotest.test_case "unknown callee rejected" `Quick
          test_unknown_callee_rejected;
        Alcotest.test_case "lowering cached per program" `Quick
          test_cache_physical_equality;
        Alcotest.test_case "undefined-read parity" `Quick
          test_undefined_read_parity;
        Alcotest.test_case "stack-overflow parity" `Quick
          test_stack_overflow_parity;
        Alcotest.test_case "multithreaded lock parity" `Quick
          test_mt_lock_parity;
        Alcotest.test_case "metrics parity" `Quick test_metrics_parity;
        QCheck_alcotest.to_alcotest qcheck_vm_differential;
      ] );
    ( "lower fused fast path",
      [
        Alcotest.test_case "checkpoint/resume at fused boundaries" `Quick
          test_fast_checkpoint_resume;
        Alcotest.test_case "plan mark splits a fused pair" `Quick
          test_plan_split_fused_pair;
        Alcotest.test_case "crashes inside fused units" `Quick
          test_fused_unit_crash_parity;
        Alcotest.test_case "undefined read inside a fused unit" `Quick
          test_fast_undefined_read_in_fused_unit;
        Alcotest.test_case "shift and compare edges" `Quick
          test_fast_shift_cmp_edges;
        Alcotest.test_case "no-hooks corpus differential" `Slow
          test_corpus_vm_fast_differential;
        QCheck_alcotest.to_alcotest qcheck_vm_fast_differential;
      ] );
    ( "lower corpus differential",
      [
        Alcotest.test_case "VM: all Table 1 bugs" `Slow
          test_corpus_vm_differential;
        Alcotest.test_case "symex: all Table 1 bugs" `Slow
          test_corpus_symex_differential;
      ] );
  ]
