(* End-to-end pipeline tests: production run under tracing, trace decode,
   shepherded symbolic execution, key data value selection, iteration,
   test-case generation and verification — on the paper's running example. *)

open Er_corpus

let run_fig3 () =
  let spec = Running_example.spec in
  Er_core.Driver.reconstruct ~config:spec.Bug.config
    ~base_prog:spec.Bug.program ~workload:spec.Bug.failing_workload ()

let cached_result : Er_core.Driver.result option ref = ref None

let result () =
  match !cached_result with
  | Some r -> r
  | None ->
      let r = run_fig3 () in
      cached_result := Some r;
      r

let test_reproduces () =
  let r = result () in
  match r.Er_core.Driver.status with
  | Er_core.Driver.Reproduced { verified; _ } ->
      (match verified with
       | Some v ->
           Alcotest.(check bool) "same failure" true v.Er_core.Verify.same_failure;
           Alcotest.(check bool) "same control flow" true
             v.Er_core.Verify.same_control_flow
       | None -> Alcotest.fail "verification missing")
  | Er_core.Driver.Gave_up msg -> Alcotest.fail ("gave up: " ^ msg)

let test_iterates () =
  (* with the configured small budget, the first attempt must stall:
     control flow alone is not enough (section 5.2: 11/13 failures) *)
  let r = result () in
  Alcotest.(check bool) "needs more than one occurrence" true
    (r.Er_core.Driver.occurrences > 1);
  match r.Er_core.Driver.iterations with
  | first :: _ ->
      (match first.Er_core.Driver.outcome with
       | `Stalled _ -> ()
       | `Complete -> Alcotest.fail "first iteration should stall"
       | `Diverged m -> Alcotest.fail ("diverged: " ^ m))
  | [] -> Alcotest.fail "no iterations recorded"

let test_recording_set_is_small () =
  let r = result () in
  let n = List.length r.Er_core.Driver.recording_points in
  Alcotest.(check bool) "recorded a handful of values" true (n >= 1 && n <= 8)

let test_testcase_fails_same_way () =
  let r = result () in
  match r.Er_core.Driver.status with
  | Er_core.Driver.Reproduced { testcase; _ } ->
      let prog = Er_ir.Prog.of_program Running_example.program in
      let res = Er_vm.Interp.run prog (Er_core.Testcase.to_inputs testcase) in
      (match res.Er_vm.Interp.outcome with
       | Er_vm.Interp.Failed f ->
           (match f.Er_vm.Failure.kind with
            | Er_vm.Failure.Abort_called _ -> ()
            | k ->
                Alcotest.fail
                  ("wrong failure kind: " ^ Er_vm.Failure.kind_to_string k))
       | Er_vm.Interp.Finished _ -> Alcotest.fail "generated input did not crash")
  | Er_core.Driver.Gave_up msg -> Alcotest.fail ("gave up: " ^ msg)

(* --- incremental vs from-scratch differential --------------------------- *)

(* Checkpoint/resume must be invisible in everything but wall clock: the
   incremental and from-scratch pipelines have to produce identical
   occurrence streams, iteration trajectories, solver costs, recording
   sets and statuses on the whole corpus. *)

module P = Er_core.Pipeline
module E = Er_core.Events
module J = Er_core.Json

(* events rendered with wall clocks stripped; resume notices (which only
   the incremental tracer emits) and metrics snapshots (whose counters
   are process-global, so they differ between back-to-back runs) are
   excluded from the comparison *)
let normalized_events evs =
  let rec strip = function
    | J.Obj fields ->
        J.Obj
          (List.filter_map
             (fun (k, v) ->
                if String.equal k "elapsed" then None else Some (k, strip v))
             fields)
    | J.List l -> J.List (List.map strip l)
    | j -> j
  in
  List.filter_map
    (fun e ->
       match (e : E.event) with
       | E.Checkpoint_resumed _ | E.Metrics_snapshot _ -> None
       | e -> Some (J.to_string (strip (E.to_json_value e))))
    evs

let zeroed (it : P.iteration) =
  { it with
    P.trace_time = 0.; symex_time = 0.; selection_time = 0.;
    verify_time = 0. }

let same_status a b =
  match (a, b) with
  | ( P.Reproduced { testcase = t1; verified = v1; _ },
      P.Reproduced { testcase = t2; verified = v2; _ } ) ->
      t1 = t2 && v1 = v2
  | P.Gave_up g1, P.Gave_up g2 -> g1 = g2
  | _ -> false

(* run both modes from a cold solver cache, check observational identity,
   return the incremental result *)
let differential (s : Bug.spec) =
  let run ~incremental =
    Er_smt.Solver.reset_cache ();
    P.run
      ~config:{ s.Bug.config with P.incremental }
      ~base_prog:s.Bug.program ~workload:s.Bug.failing_workload ()
  in
  let inc = run ~incremental:true in
  let scr = run ~incremental:false in
  let name = s.Bug.name in
  Alcotest.(check int) (name ^ ": runs") scr.P.runs inc.P.runs;
  Alcotest.(check int) (name ^ ": occurrences") scr.P.occurrences
    inc.P.occurrences;
  Alcotest.(check bool) (name ^ ": recording points") true
    (scr.P.recording_points = inc.P.recording_points);
  Alcotest.(check bool) (name ^ ": status") true
    (same_status scr.P.status inc.P.status);
  Alcotest.(check int) (name ^ ": iteration count")
    (List.length scr.P.iterations)
    (List.length inc.P.iterations);
  List.iter2
    (fun a b ->
       Alcotest.(check bool)
         (Printf.sprintf "%s: iteration %d identical" name a.P.occurrence)
         true
         (zeroed a = zeroed b))
    scr.P.iterations inc.P.iterations;
  let ea = normalized_events scr.P.events
  and eb = normalized_events inc.P.events in
  Alcotest.(check int) (name ^ ": event count") (List.length ea)
    (List.length eb);
  List.iter2
    (fun a b -> Alcotest.(check string) (name ^ ": event") a b)
    ea eb;
  Alcotest.(check int) (name ^ ": scratch never resumes") 0
    scr.P.ckpt.P.ck_resumes;
  inc

let test_incremental_matches_scratch_corpus () =
  let total_cost =
    List.fold_left
      (fun acc s ->
         let inc = differential s in
         acc
         + List.fold_left
             (fun a (it : P.iteration) -> a + it.P.solver_cost)
             0 inc.P.iterations)
      0 Er_corpus.Registry.table1
  in
  (* the committed trajectory's corpus-wide solver cost (BENCH totals) *)
  Alcotest.(check int) "Table 1 solver cost under incremental tracing"
    204_036 total_cost

let test_long_trace_resumes () =
  let inc = differential Er_corpus.Registry.long_trace in
  Alcotest.(check bool) "resumed at least one production run" true
    (inc.P.ckpt.P.ck_resumes > 0);
  Alcotest.(check bool) "resuming skipped shared-prefix instructions" true
    (inc.P.ckpt.P.ck_saved_instrs > 0);
  match inc.P.status with
  | P.Reproduced _ -> ()
  | P.Gave_up g ->
      Alcotest.fail ("long-trace gave up: " ^ Er_core.Outcome.give_up_to_string g)

let suites =
  [
    ( "end-to-end.fig3",
      [
        Alcotest.test_case "reproduces and verifies" `Slow test_reproduces;
        Alcotest.test_case "iterates via stalls" `Slow test_iterates;
        Alcotest.test_case "recording set small" `Slow test_recording_set_is_small;
        Alcotest.test_case "generated input crashes" `Slow test_testcase_fails_same_way;
      ] );
    ( "end-to-end.incremental",
      [
        Alcotest.test_case "incremental = from-scratch on the corpus" `Slow
          test_incremental_matches_scratch_corpus;
        Alcotest.test_case "long-trace family resumes from checkpoints" `Slow
          test_long_trace_resumes;
      ] );
  ]
