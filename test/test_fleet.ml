(* Tests for domain-parallel fleet execution (Er_core.Fleet) and the
   domain-safety work underneath it: the determinism contract between
   -j settings, per-bug crash isolation, and exact solver result-cache
   accounting when one shared cache is hammered from several domains. *)

module Fleet = Er_core.Fleet
module Job = Er_core.Job
module Pipeline = Er_core.Pipeline
module Events = Er_core.Events
module Json = Er_core.Json
module Bug = Er_corpus.Bug
module Registry = Er_corpus.Registry

(* A cheap corpus subset so the suite stays fast; names must exist. *)
let subset_names =
  [ "bash-108885"; "libpng-2004-0597"; "pbzip2"; "python-2018-1000030" ]

let subset () =
  List.map
    (fun n ->
       match Registry.find n with
       | Some s -> s
       | None -> Alcotest.failf "corpus bug %s disappeared" n)
    subset_names

let job_of_spec ?(events = Events.null) (s : Bug.spec) =
  {
    Fleet.job_name = s.Bug.name;
    job_run =
      (fun () ->
         Pipeline.run ~config:s.Bug.config ~events ~base_prog:s.Bug.program
           ~workload:s.Bug.failing_workload ());
    job_config = Job.Config.of_pipeline s.Bug.config;
  }

(* --- determinism: -j 1 and -j 4 agree byte for byte ----------------- *)

let test_determinism () =
  let norm jobs =
    let report = Fleet.run ~jobs (List.map job_of_spec (subset ())) in
    (* rows come back in submission order regardless of completion order *)
    Alcotest.(check (list string))
      "row order is submission order" subset_names
      (List.map (fun r -> r.Fleet.row_name) report.Fleet.rows);
    Fleet.report_to_json ~normalize:true report
  in
  let j1 = norm 1 and j4 = norm 4 in
  Alcotest.(check string) "normalized -j1 = -j4" j1 j4

(* --- crash isolation ------------------------------------------------ *)

(* A synthetic corpus bug whose workload raises while the pipeline is
   driving it: the fleet must report a structured [Worker_crashed] row
   for it and still complete every other bug.  Every job also writes
   into one shared job-tagged JSONL log (the same shape [er_cli fleet
   --events] produces, line-serialized under one mutex), and the log
   must come out complete and parseable despite the mid-run crash. *)
let test_crash_isolation () =
  let log = Buffer.create 4096 in
  let log_mutex = Mutex.create () in
  let tagged_sink name : Events.sink =
    fun e ->
      let line =
        match Events.to_json_value e with
        | Json.Obj fields ->
            Json.to_string (Json.Obj (("job", Json.Str name) :: fields))
        | j -> Json.to_string j
      in
      Mutex.lock log_mutex;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock log_mutex)
        (fun () ->
           Buffer.add_string log line;
           Buffer.add_char log '\n')
  in
  let good =
    List.map
      (fun s -> job_of_spec ~events:(tagged_sink s.Bug.name) s)
      (subset ())
  in
  let sick = Registry.running_example in
  let crashing =
    {
      Fleet.job_name = "synthetic-crasher";
      job_run =
        (fun () ->
           Pipeline.run ~config:sick.Bug.config
             ~events:(tagged_sink "synthetic-crasher")
             ~base_prog:sick.Bug.program
             ~workload:(fun ~occurrence:_ ->
               failwith "synthetic mid-reconstruction fault")
             ());
      job_config = Job.Config.of_pipeline sick.Bug.config;
    }
  in
  (* crasher in the middle, so healthy jobs surround it in every deque *)
  let jobs =
    match good with a :: rest -> a :: crashing :: rest | [] -> [ crashing ]
  in
  let report = Fleet.run ~jobs:4 jobs in
  let crashed, finished =
    List.partition
      (fun r ->
         match r.Fleet.row_outcome with
         | Fleet.Worker_crashed _ -> true
         | Fleet.Finished _ -> false)
      report.Fleet.rows
  in
  let contains ~sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  (match crashed with
   | [ { Fleet.row_name = "synthetic-crasher"; row_outcome; _ } ] -> (
       match row_outcome with
       | Fleet.Worker_crashed { exn; _ } ->
           Alcotest.(check bool) "exception text preserved" true
             (contains ~sub:"synthetic" exn)
       | Fleet.Finished _ -> assert false)
   | rows ->
       Alcotest.failf "expected exactly the synthetic crash, got %d crashes"
         (List.length rows));
  Alcotest.(check int) "every other bug completed" (List.length good)
    (List.length finished);
  List.iter
    (fun r ->
       match r.Fleet.row_outcome with
       | Fleet.Finished res -> (
           match res.Pipeline.status with
           | Pipeline.Reproduced _ -> ()
           | Pipeline.Gave_up _ ->
               Alcotest.failf "%s should reproduce" r.Fleet.row_name)
       | Fleet.Worker_crashed _ -> assert false)
    finished;
  (* The event log survived the crash intact: every line parses back
     through [Events.of_json] with its job tag, every finished bug
     closed its stream with [Pipeline_finished], and the crasher got
     far enough to log something but never a finish marker. *)
  let lines =
    List.filter
      (fun l -> l <> "")
      (String.split_on_char '\n' (Buffer.contents log))
  in
  let parsed =
    List.map
      (fun line ->
         let job =
           match Json.parse line with
           | Some j -> (
               match Option.bind (Json.member "job" j) Json.to_str with
               | Some name -> name
               | None -> Alcotest.failf "event line missing job tag: %s" line)
           | None -> Alcotest.failf "event line is not JSON: %s" line
         in
         match Events.of_json line with
         | Some e -> (job, e)
         | None -> Alcotest.failf "event line does not round-trip: %s" line)
      lines
  in
  let is_finish = function Events.Pipeline_finished _ -> true | _ -> false in
  List.iter
    (fun r ->
       Alcotest.(check bool)
         (r.Fleet.row_name ^ " logged pipeline_finished")
         true
         (List.exists
            (fun (job, e) -> job = r.Fleet.row_name && is_finish e)
            parsed))
    finished;
  let crasher_events =
    List.filter (fun (job, _) -> job = "synthetic-crasher") parsed
  in
  Alcotest.(check bool) "crasher emitted events before dying" true
    (crasher_events <> []);
  Alcotest.(check bool) "crasher never logged pipeline_finished" true
    (List.for_all (fun (_, e) -> not (is_finish e)) crasher_events)

(* --- concurrent access to one shared solver cache ------------------- *)

(* Four domains share one interning space (hence one result-cache
   shard) and fire sessions at it concurrently.  Exact accounting must
   survive: every nontrivial check is exactly one cache hit or one
   cache miss, both per session and in the atomic registry counters. *)
let concurrent_cache_prop picks =
  Er_smt.Solver.reset_cache ();
  let sp = Er_smt.Expr.create_space () in
  let pool =
    Er_smt.Expr.with_space sp (fun () ->
        let x = Er_smt.Expr.bv_var "cc_x" ~width:16 in
        Array.init 8 (fun i ->
            Er_smt.Expr.eq
              (Er_smt.Expr.urem x
                 (Er_smt.Expr.const ~width:16 (Int64.of_int (i + 2))))
              (Er_smt.Expr.const ~width:16 1L)))
  in
  let workloads = Array.make 4 [] in
  List.iteri
    (fun i pick -> workloads.(i mod 4) <- pick :: workloads.(i mod 4))
    picks;
  let registry = Er_metrics.default in
  Er_metrics.reset registry;
  Er_metrics.set_enabled registry true;
  let stats =
    Fun.protect
      ~finally:(fun () -> Er_metrics.set_enabled registry false)
      (fun () ->
        let hammer w () =
          Er_smt.Expr.with_space sp (fun () ->
              let s = Er_smt.Solver.Session.create () in
              List.iter
                (fun pick ->
                   Er_smt.Solver.Session.push s pool.(pick);
                   ignore (Er_smt.Solver.Session.check s);
                   Er_smt.Solver.Session.pop s)
                w;
              Er_smt.Solver.Session.cache_stats s)
        in
        let domains =
          Array.map (fun w -> Domain.spawn (hammer w)) workloads
        in
        Array.to_list (Array.map Domain.join domains))
  in
  let queries = List.length picks in
  let hits =
    List.fold_left
      (fun a s -> a + s.Er_smt.Solver.Session.cache_hits)
      0 stats
  and misses =
    List.fold_left
      (fun a s -> a + s.Er_smt.Solver.Session.cache_misses)
      0 stats
  in
  let session_exact =
    List.for_all2
      (fun s w ->
         s.Er_smt.Solver.Session.cache_hits
         + s.Er_smt.Solver.Session.cache_misses
         = List.length w)
      stats (Array.to_list workloads)
  in
  (* the registry counters saw the same traffic, with no torn updates *)
  let snap = Er_metrics.snapshot ~registry () in
  let m_hits =
    Er_metrics.Snapshot.counter_total snap "er_smt_session_cache_hits_total"
  and m_misses =
    Er_metrics.Snapshot.counter_total snap "er_smt_session_cache_misses_total"
  in
  session_exact && hits + misses = queries
  && m_hits = hits && m_misses = misses

let test_concurrent_cache =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:15
       ~name:"4 domains, one shared cache: hits+misses = queries"
       QCheck.(list_of_size Gen.(int_range 4 40) (int_range 0 7))
       concurrent_cache_prop)

let suites =
  [
    ( "fleet",
      [
        Alcotest.test_case "-j1 and -j4 normalized reports identical" `Slow
          test_determinism;
        Alcotest.test_case "worker crash isolates to its row" `Slow
          test_crash_isolation;
        test_concurrent_cache;
      ] );
  ]
