(* Unit and property tests for the er_smt substrate: term interning and
   folding, the CDCL SAT core, array elimination, and end-to-end check-sat
   against the reference concrete evaluator. *)

open Er_smt

let i32 v = Expr.const ~width:32 (Int64.of_int v)
let x32 = Expr.bv_var "x" ~width:32
let y32 = Expr.bv_var "y" ~width:32

(* --- Expr ------------------------------------------------------------ *)

let test_hashcons () =
  let a = Expr.add x32 (i32 1) and b = Expr.add x32 (i32 1) in
  Alcotest.(check bool) "same node" true (Expr.equal a b);
  Alcotest.(check int) "same id" (Expr.id a) (Expr.id b)

let test_folding () =
  let open Expr in
  Alcotest.(check bool) "const add" true (equal (add (i32 2) (i32 3)) (i32 5));
  Alcotest.(check bool) "add zero" true (equal (add x32 (i32 0)) x32);
  Alcotest.(check bool) "mul one" true (equal (mul x32 (i32 1)) x32);
  Alcotest.(check bool) "mul zero" true (equal (mul x32 (i32 0)) (i32 0));
  Alcotest.(check bool) "x - x" true (equal (sub x32 x32) (i32 0));
  Alcotest.(check bool) "x xor x" true (equal (logxor_ x32 x32) (i32 0));
  Alcotest.(check bool) "eq refl" true (is_true (eq x32 x32));
  Alcotest.(check bool) "ult irrefl" true (is_false (ult x32 x32));
  Alcotest.(check bool) "not not" true (equal (not_ (not_ (eq x32 y32))) (eq x32 y32));
  Alcotest.(check bool) "eq sym interned" true
    (equal (eq x32 y32) (eq y32 x32))

let test_fold_width_truncation () =
  let a = Expr.const ~width:8 255L and b = Expr.const ~width:8 1L in
  Alcotest.(check bool) "overflow wraps" true
    (Expr.equal (Expr.add a b) (Expr.const ~width:8 0L));
  let m = Expr.mul (Expr.const ~width:8 16L) (Expr.const ~width:8 16L) in
  Alcotest.(check bool) "mul wraps" true (Expr.equal m (Expr.const ~width:8 0L))

let test_row_rules () =
  let open Expr in
  let arr = const_array ~idx:32 ~elt:32 0L in
  let w1 = write arr (i32 3) (i32 99) in
  Alcotest.(check bool) "read same const idx" true
    (equal (read w1 (i32 3)) (i32 99));
  Alcotest.(check bool) "read distinct const idx" true
    (equal (read w1 (i32 4)) (i32 0));
  let wsym = write arr x32 (i32 7) in
  Alcotest.(check bool) "read same sym idx" true
    (equal (read wsym x32) (i32 7));
  (* read at a different symbolic index stays symbolic *)
  (match node (read wsym y32) with
   | Read _ -> ()
   | _ -> Alcotest.fail "expected residual Read node");
  Alcotest.(check bool) "write of read is identity" true
    (equal (write wsym x32 (read wsym x32)) wsym)

let test_extract_concat () =
  let open Expr in
  let v = const ~width:32 0xAABBCCDDL in
  Alcotest.(check bool) "extract low byte" true
    (equal (extract ~hi:7 ~lo:0 v) (const ~width:8 0xDDL));
  Alcotest.(check bool) "extract high byte" true
    (equal (extract ~hi:31 ~lo:24 v) (const ~width:8 0xAAL));
  Alcotest.(check bool) "concat consts" true
    (equal
       (concat (const ~width:8 0xABL) (const ~width:8 0xCDL))
       (const ~width:16 0xABCDL));
  Alcotest.(check bool) "zext" true
    (equal (zero_extend ~to_:16 (const ~width:8 0x80L)) (const ~width:16 0x80L));
  Alcotest.(check bool) "sext" true
    (equal (sign_extend_e ~to_:16 (const ~width:8 0x80L))
       (const ~width:16 0xFF80L))

(* --- Sat --------------------------------------------------------------- *)

let test_sat_basic () =
  let s = Sat.create () in
  let a = Sat.new_var s and b = Sat.new_var s in
  Sat.add_clause s [ a; b ];
  Sat.add_clause s [ -a; b ];
  Sat.add_clause s [ a; -b ];
  (match Sat.solve s with
   | Sat.Sat ->
       Alcotest.(check bool) "a true" true (Sat.value s a);
       Alcotest.(check bool) "b true" true (Sat.value s b)
   | _ -> Alcotest.fail "expected sat");
  Sat.add_clause s [ -a; -b ];
  match Sat.solve s with
  | Sat.Unsat -> ()
  | _ -> Alcotest.fail "expected unsat"

let test_sat_pigeonhole () =
  (* 4 pigeons in 3 holes: classic small UNSAT requiring real search *)
  let s = Sat.create () in
  let v = Array.init 4 (fun _ -> Array.init 3 (fun _ -> Sat.new_var s)) in
  for p = 0 to 3 do
    Sat.add_clause s [ v.(p).(0); v.(p).(1); v.(p).(2) ]
  done;
  for h = 0 to 2 do
    for p1 = 0 to 3 do
      for p2 = p1 + 1 to 3 do
        Sat.add_clause s [ -v.(p1).(h); -v.(p2).(h) ]
      done
    done
  done;
  match Sat.solve s with
  | Sat.Unsat -> ()
  | _ -> Alcotest.fail "expected unsat"

let test_sat_budget () =
  (* 9 pigeons in 8 holes with a tiny budget must time out *)
  let s = Sat.create () in
  let n = 9 in
  let v = Array.init n (fun _ -> Array.init (n - 1) (fun _ -> Sat.new_var s)) in
  for p = 0 to n - 1 do
    Sat.add_clause s (Array.to_list v.(p))
  done;
  for h = 0 to n - 2 do
    for p1 = 0 to n - 1 do
      for p2 = p1 + 1 to n - 1 do
        Sat.add_clause s [ -v.(p1).(h); -v.(p2).(h) ]
      done
    done
  done;
  match Sat.solve ~budget:200 s with
  | Sat.Unknown -> ()
  | Sat.Sat -> Alcotest.fail "pigeonhole cannot be sat"
  | Sat.Unsat -> Alcotest.fail "budget too generous for this test"

let qcheck_sat_random_3cnf =
  (* random small 3-CNF: solver's Sat answers must satisfy the formula,
     and Unsat answers must agree with brute force *)
  QCheck2.Test.make ~name:"sat agrees with brute force on random 3-CNF"
    ~count:60
    QCheck2.Gen.(
      let lit = map2 (fun v s -> if s then v + 1 else -(v + 1)) (int_bound 5) bool in
      let clause = list_size (int_range 1 3) lit in
      list_size (int_range 1 18) clause)
    (fun clauses ->
       let brute_sat =
         (* 6 variables -> 64 assignments *)
         let eval_lit assign l =
           let v = abs l - 1 in
           let b = assign land (1 lsl v) <> 0 in
           if l > 0 then b else not b
         in
         let eval_clause assign c = List.exists (eval_lit assign) c in
         let rec go a =
           if a >= 64 then false
           else if List.for_all (eval_clause a) clauses then true
           else go (a + 1)
         in
         go 0
       in
       let s = Sat.create () in
       for _ = 1 to 6 do ignore (Sat.new_var s) done;
       List.iter (fun c -> Sat.add_clause s c) clauses;
       match Sat.solve s with
       | Sat.Sat ->
           brute_sat
           && List.for_all
                (List.exists (fun l ->
                     if l > 0 then Sat.value s l else not (Sat.value s (-l))))
                clauses
       | Sat.Unsat -> not brute_sat
       | Sat.Unknown -> false)

(* --- Solver end-to-end -------------------------------------------------- *)

let solve_sat assertions =
  match Solver.check assertions with
  | Solver.Sat m, _ -> m
  | Solver.Unsat, _ -> Alcotest.fail "unexpected unsat"
  | Solver.Unknown why, _ -> Alcotest.fail ("unexpected unknown: " ^ why)

let test_solver_linear () =
  let m = solve_sat [ Expr.eq (Expr.add x32 (i32 5)) (i32 12) ] in
  Alcotest.(check int64) "x = 7" 7L (Option.get (Model.value m "x"))

let test_solver_unsat () =
  match
    Solver.check [ Expr.ult x32 (i32 5); Expr.ult (i32 10) x32 ]
  with
  | Solver.Unsat, _ -> ()
  | _ -> Alcotest.fail "expected unsat"

let test_solver_mul_inverse () =
  let m =
    solve_sat
      [ Expr.eq (Expr.mul x32 (i32 3)) (i32 21); Expr.ult x32 (i32 100) ]
  in
  Alcotest.(check int64) "x = 7" 7L (Option.get (Model.value m "x"))

let test_solver_divrem () =
  let m =
    solve_sat
      [
        Expr.eq (Expr.udiv (i32 29) x32) (i32 4);
        Expr.eq (Expr.urem (i32 29) x32) (i32 1);
      ]
  in
  Alcotest.(check int64) "x = 7" 7L (Option.get (Model.value m "x"))

let test_solver_shifts () =
  let m =
    solve_sat
      [
        Expr.eq (Expr.shl (i32 1) x32) (i32 64);
        Expr.eq (Expr.lshr (i32 0x100) x32) y32;
      ]
  in
  Alcotest.(check int64) "x = 6" 6L (Option.get (Model.value m "x"));
  Alcotest.(check int64) "y = 4" 4L (Option.get (Model.value m "y"))

let test_solver_signed () =
  let neg1 = Expr.const ~width:32 0xFFFFFFFFL in
  (match Solver.check [ Expr.slt neg1 (i32 0) ] with
   | Solver.Sat _, _ -> ()
   | _ -> Alcotest.fail "-1 <s 0 should be sat");
  match Solver.check [ Expr.ult neg1 (i32 0) ] with
  | Solver.Unsat, _ -> ()
  | _ -> Alcotest.fail "-1 <u 0 should be unsat"

let test_solver_array_chain () =
  (* V[256] = {0}; V[x] = 1; if (V[c] == 0) V[c] = 512; V[V[x]] = x —
     the paper's running example, steps 1-4 (Fig 3/4). *)
  let open Expr in
  let v0 = const_array ~idx:32 ~elt:32 0L in
  let a = bv_var "a" ~width:32 and b = bv_var "b" ~width:32 in
  let c = bv_var "c" ~width:32 and d = bv_var "d" ~width:32 in
  let x = add a b in
  let bounds = [ ult x (i32 256); ult c (i32 256); ult d (i32 256) ] in
  let v1 = write v0 x (i32 1) in
  let cond1 = eq (read v1 c) (i32 0) in
  let v2 = write v1 c (i32 512) in
  let v3 = write v2 (read v2 x) x in
  let cond2 = ult c d in
  let cond3 = eq (read v3 (read v3 d)) x in
  let m = solve_sat (bounds @ [ cond1; cond2; cond3 ]) in
  (* validate the model concretely: x must equal d (paper's analysis) *)
  let get n = Option.get (Model.value m n) in
  let xv = Int64.logand (Int64.add (get "a") (get "b")) 0xFFFFFFFFL in
  Alcotest.(check int64) "x = d" (get "d") xv

let test_solver_ackermann () =
  let open Expr in
  let a = arr_var "A" ~idx:32 ~elt:32 in
  let i = bv_var "i" ~width:32 and j = bv_var "j" ~width:32 in
  (match
     Solver.check
       [ eq (read a i) (i32 1); eq (read a j) (i32 2); eq i j ]
   with
   | Solver.Unsat, _ -> ()
   | _ -> Alcotest.fail "congruence violation should be unsat");
  let m =
    solve_sat [ eq (read a i) (i32 1); eq (read a j) (i32 2) ]
  in
  let get n = Option.get (Model.value m n) in
  Alcotest.(check bool) "i <> j" true (not (Int64.equal (get "i") (get "j")))

let test_solver_gate_budget () =
  (* a 64-bit multiplication tower should exceed a tiny gate budget *)
  let x = Expr.bv_var "gx" ~width:64 in
  let rec tower n acc = if n = 0 then acc else tower (n - 1) (Expr.mul acc acc) in
  let e = Expr.eq (tower 4 x) (Expr.const ~width:64 17L) in
  match Solver.check ~gate_budget:500 [ e ] with
  | Solver.Unknown _, _ -> ()
  | _ -> Alcotest.fail "expected gate-budget timeout"

(* Random ground-term property: build a term over two variables, pick
   concrete values, assert term = its concrete value; the solver must find
   a model, and the model must satisfy all assertions per Model.eval. *)
let qcheck_solver_vs_eval =
  let gen_expr =
    let open QCheck2.Gen in
    let width = 8 in
    sized @@ fix (fun self n ->
        if n <= 0 then
          oneof
            [
              map (fun v -> Expr.const ~width (Int64.of_int (v land 255))) (int_bound 255);
              return (Expr.bv_var "qx" ~width);
              return (Expr.bv_var "qy" ~width);
            ]
        else
          let sub = self (n / 2) in
          oneof
            [
              map2 Expr.add sub sub;
              map2 Expr.sub sub sub;
              map2 Expr.mul sub sub;
              map2 Expr.logand_ sub sub;
              map2 Expr.logor_ sub sub;
              map2 Expr.logxor_ sub sub;
              map2 Expr.udiv sub sub;
              map2 Expr.urem sub sub;
              map2 Expr.shl sub sub;
              map2 Expr.lshr sub sub;
              map2 Expr.ashr sub sub;
              map Expr.neg sub;
              map Expr.lognot_ sub;
              map3 (fun c a b -> Expr.ite (Expr.ult c a) a b) sub sub sub;
            ])
  in
  QCheck2.Test.make ~name:"solver models satisfy assertions (random terms)"
    ~count:60
    QCheck2.Gen.(triple gen_expr (int_bound 255) (int_bound 255))
    (fun (e, xv, yv) ->
       let ground = Model.empty () in
       Model.set ground "qx" (Int64.of_int xv);
       Model.set ground "qy" (Int64.of_int yv);
       let c = Model.eval ground e in
       let assertion = Expr.eq e (Expr.const ~width:8 c) in
       match Solver.check [ assertion ] with
       | Solver.Sat m, _ -> Model.holds m assertion
       | Solver.Unsat, _ -> false   (* ground witness exists, cannot be unsat *)
       | Solver.Unknown _, _ -> QCheck2.assume_fail ())

(* --- Solver.Session: push/pop, result cache, incrementality ---------- *)

let zero_work (st : Solver.stats) = st.Solver.gates = 0 && st.Solver.propagations = 0

(* Repeating an unchanged query must be answered from the result cache
   with zero solver work. *)
let test_session_cache_repeat () =
  Solver.reset_cache ();
  let s = Solver.Session.create () in
  Solver.Session.push s (Expr.ult x32 (i32 5));
  Solver.Session.push s (Expr.ult (i32 1) x32);
  let o1, st1 = Solver.Session.check s in
  (match o1 with Solver.Sat _ -> () | _ -> Alcotest.fail "expected sat");
  Alcotest.(check bool) "first check does real work" false (zero_work st1);
  let o2, st2 = Solver.Session.check s in
  (match o2 with Solver.Sat _ -> () | _ -> Alcotest.fail "expected sat again");
  Alcotest.(check bool) "repeat check is free" true (zero_work st2);
  let cs = Solver.Session.cache_stats s in
  Alcotest.(check int) "one hit" 1 cs.Solver.Session.cache_hits;
  Alcotest.(check int) "one miss" 1 cs.Solver.Session.cache_misses

(* A cached UNSAT core refutes any superset without touching the SAT
   solver. *)
let test_session_unsat_superset () =
  Solver.reset_cache ();
  let core = [ Expr.ult x32 (i32 5); Expr.ult (i32 10) x32 ] in
  (match Solver.check core with
   | Solver.Unsat, _ -> ()
   | _ -> Alcotest.fail "core should be unsat");
  let s = Solver.Session.create () in
  List.iter (Solver.Session.push s) (core @ [ Expr.ult y32 (i32 3) ]);
  (match Solver.Session.check s with
   | Solver.Unsat, st ->
       Alcotest.(check bool) "superset refuted for free" true (zero_work st)
   | _ -> Alcotest.fail "superset of an unsat core must be unsat");
  let cs = Solver.Session.cache_stats s in
  Alcotest.(check int) "superset hit" 1 cs.Solver.Session.cache_hits

(* A cached model of a superset satisfies any subset. *)
let test_session_subset_sat () =
  Solver.reset_cache ();
  let a = Expr.ult x32 (i32 5) and b = Expr.eq y32 (Expr.add x32 (i32 1)) in
  (match Solver.check [ a; b ] with
   | Solver.Sat _, _ -> ()
   | _ -> Alcotest.fail "expected sat");
  let s = Solver.Session.create () in
  Solver.Session.push s a;
  match Solver.Session.check s with
  | Solver.Sat m, st ->
      Alcotest.(check bool) "subset answered for free" true (zero_work st);
      Alcotest.(check bool) "cached model satisfies the subset" true
        (Model.holds m a)
  | _ -> Alcotest.fail "subset of a sat set must be sat"

(* Popping the contradicting frame must drop the cached UNSAT verdict:
   the remaining stack is satisfiable. *)
let test_session_pop_invalidation () =
  Solver.reset_cache ();
  let a = Expr.ult x32 (i32 5) and b = Expr.ult (i32 10) x32 in
  let s = Solver.Session.create () in
  Solver.Session.push s a;
  Solver.Session.push s b;
  (match Solver.Session.check s with
   | Solver.Unsat, _ -> ()
   | _ -> Alcotest.fail "a ∧ b should be unsat");
  Solver.Session.pop s;
  Alcotest.(check int) "depth back to one" 1 (Solver.Session.depth s);
  match Solver.Session.check s with
  | Solver.Sat m, _ ->
      Alcotest.(check bool) "model satisfies the survivor" true (Model.holds m a)
  | _ -> Alcotest.fail "after pop the stack must be sat"

(* Unknown is a budget artifact and must never be served from the cache. *)
let test_session_unknown_not_cached () =
  Solver.reset_cache ();
  let x = Expr.bv_var "ux" ~width:64 in
  let rec tower n acc = if n = 0 then acc else tower (n - 1) (Expr.mul acc acc) in
  let e = Expr.eq (tower 4 x) (Expr.const ~width:64 17L) in
  (match Solver.check ~gate_budget:500 [ e ] with
   | Solver.Unknown _, _ -> ()
   | _ -> Alcotest.fail "expected gate-budget stall");
  match Solver.check [ e ] with
  | Solver.Unknown _, _ -> Alcotest.fail "stall verdict must not be memoized"
  | _ -> ()

(* is_satisfiable / must_be_true surface the stall reason instead of
   silently collapsing it into a boolean. *)
let test_unknown_reason_surfaced () =
  Solver.reset_cache ();
  let x = Expr.bv_var "rx" ~width:64 in
  let rec tower n acc = if n = 0 then acc else tower (n - 1) (Expr.mul acc acc) in
  let e = Expr.eq (tower 4 x) (Expr.const ~width:64 17L) in
  (match Solver.is_satisfiable ~gate_budget:500 [ e ] with
   | Error reason ->
       Alcotest.(check bool) "reason mentions the gate budget" true
         (String.length reason > 0)
   | Ok _ -> Alcotest.fail "expected a stall");
  (match Solver.must_be_true ~gate_budget:500 [] e with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "expected a stall");
  (match Solver.must_be_true [ Expr.ult x32 (i32 5) ] (Expr.ult x32 (i32 10)) with
   | Ok true -> ()
   | _ -> Alcotest.fail "x<5 entails x<10");
  match Solver.must_be_true [] (Expr.ult x32 (i32 10)) with
  | Ok false -> ()
  | _ -> Alcotest.fail "x<10 is not valid"

(* Property: after an arbitrary push/pop interleaving, [Session.check]
   agrees with a one-shot [Solver.check] of the flattened stack — same
   verdict, and a Sat model satisfies every live assertion. *)
let qcheck_session_vs_oneshot =
  let pool =
    [|
      Expr.ult x32 (i32 50);
      Expr.ult (i32 10) x32;
      Expr.eq y32 (Expr.add x32 (i32 1));
      Expr.ult y32 (i32 12);
      Expr.eq x32 (i32 7);
      Expr.eq (Expr.logand_ x32 (i32 1)) (i32 1);
    |]
  in
  let n = Array.length pool in
  QCheck2.Test.make
    ~name:"session agrees with one-shot check on the flattened stack"
    ~count:50
    QCheck2.Gen.(list_size (int_range 1 24) (int_bound (n + n / 2)))
    (fun ops ->
       Solver.reset_cache ();
       let s = Solver.Session.create () in
       let mirror = ref [] in
       List.iter
         (fun op ->
            if op < n then begin
              Solver.Session.push s pool.(op);
              mirror := pool.(op) :: !mirror
            end
            else if !mirror <> [] then begin
              Solver.Session.pop s;
              mirror := List.tl !mirror
            end)
         ops;
       let flat = List.rev !mirror in
       let sv, _ = Solver.Session.check s in
       Solver.reset_cache ();
       let ov, _ = Solver.check flat in
       match (sv, ov) with
       | Solver.Sat m, Solver.Sat _ -> List.for_all (Model.holds m) flat
       | Solver.Unsat, Solver.Unsat -> true
       | Solver.Unknown _, _ | _, Solver.Unknown _ -> QCheck2.assume_fail ()
       | _ -> false)

let qcheck_of t = QCheck_alcotest.to_alcotest t

let suites =
  [
    ( "smt.expr",
      [
        Alcotest.test_case "hash-consing" `Quick test_hashcons;
        Alcotest.test_case "constant folding" `Quick test_folding;
        Alcotest.test_case "width truncation" `Quick test_fold_width_truncation;
        Alcotest.test_case "read-over-write rules" `Quick test_row_rules;
        Alcotest.test_case "extract/concat" `Quick test_extract_concat;
      ] );
    ( "smt.sat",
      [
        Alcotest.test_case "basic sat/unsat" `Quick test_sat_basic;
        Alcotest.test_case "pigeonhole unsat" `Quick test_sat_pigeonhole;
        Alcotest.test_case "budget timeout" `Quick test_sat_budget;
        qcheck_of qcheck_sat_random_3cnf;
      ] );
    ( "smt.solver",
      [
        Alcotest.test_case "linear equation" `Quick test_solver_linear;
        Alcotest.test_case "interval unsat" `Quick test_solver_unsat;
        Alcotest.test_case "multiplicative inverse" `Quick test_solver_mul_inverse;
        Alcotest.test_case "div/rem" `Quick test_solver_divrem;
        Alcotest.test_case "shifts" `Quick test_solver_shifts;
        Alcotest.test_case "signed vs unsigned" `Quick test_solver_signed;
        Alcotest.test_case "fig3 write chain" `Quick test_solver_array_chain;
        Alcotest.test_case "ackermann congruence" `Quick test_solver_ackermann;
        Alcotest.test_case "gate budget" `Quick test_solver_gate_budget;
        qcheck_of qcheck_solver_vs_eval;
      ] );
    ( "smt.session",
      [
        Alcotest.test_case "cache hit on repeat query" `Quick
          test_session_cache_repeat;
        Alcotest.test_case "unsat-core superset fast path" `Quick
          test_session_unsat_superset;
        Alcotest.test_case "sat subset fast path" `Quick test_session_subset_sat;
        Alcotest.test_case "pop invalidates cached unsat" `Quick
          test_session_pop_invalidation;
        Alcotest.test_case "unknown is never cached" `Quick
          test_session_unknown_not_cached;
        Alcotest.test_case "stall reasons surfaced" `Quick
          test_unknown_reason_surfaced;
        qcheck_of qcheck_session_vs_oneshot;
      ] );
  ]
