(* Aggregated test entry point: one Alcotest run over every suite. *)

let () =
  Alcotest.run "execution-reconstruction"
    (Test_smt.suites @ Test_ir.suites @ Test_trace.suites @ Test_vm.suites
     @ Test_select.suites @ Test_metrics.suites @ Test_baselines.suites
     @ Test_invariants.suites @ Test_end_to_end.suites @ Test_pipeline.suites
     @ Test_corpus.suites @ Test_fleet.suites @ Test_serve.suites
     @ Test_lower.suites @ Test_vm_state.suites @ Test_persist.suites)
