(* Tests for the persistent solver-knowledge store (Er_smt.Persist):
   serialized-entry round-trips, the rejection paths that force a clean
   cold start (truncation, corruption, version bump, fingerprint
   mismatch), concurrent fleet writers sharing one cache directory,
   warm-start replay through real solver sessions, and the journal's
   divergence self-heal. *)

module P = Er_smt.Persist
module Expr = Er_smt.Expr
module Solver = Er_smt.Solver
module Model = Er_smt.Model
module J = Er_json

(* -- helpers --------------------------------------------------------- *)

let fresh_dir =
  let c = ref 0 in
  fun () ->
    incr c;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "er-persist-test-%d-%d" (Unix.getpid ()) !c)
    in
    if Sys.file_exists d then
      Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d)
    else Sys.mkdir d 0o755;
    d

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let tbl_sorted t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t [] |> List.sort compare

let answer_eq a b =
  match (a, b) with
  | P.Solved_unsat, P.Solved_unsat -> true
  | P.Stalled x, P.Stalled y -> String.equal x y
  | P.Solved_sat m, P.Solved_sat n ->
      tbl_sorted m.Model.values = tbl_sorted n.Model.values
      && tbl_sorted m.Model.array_points = tbl_sorted n.Model.array_points
  | _ -> false

let entry_eq (a : P.entry) (b : P.entry) =
  a.P.en_key = b.P.en_key
  && String.equal a.P.en_hash b.P.en_hash
  && a.P.en_budget = b.P.en_budget
  && a.P.en_cost = b.P.en_cost
  && answer_eq a.P.en_answer b.P.en_answer
  && a.P.en_summary = b.P.en_summary

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* -- generators ------------------------------------------------------ *)

let gen_key =
  QCheck.Gen.(
    map
      (fun l -> Array.of_list (List.sort_uniq compare l))
      (list_size (int_range 1 6) (int_range 0 1000)))

let gen_name =
  QCheck.Gen.(
    map (fun s -> "v" ^ s)
      (string_size ~gen:(char_range 'a' 'z') (int_range 1 6)))

(* include the extremes: model values are int64s that exceed OCaml's
   63-bit int, which is why the codec stringifies them *)
let gen_i64 =
  QCheck.Gen.(
    oneof
      [ map Int64.of_int int; return Int64.min_int; return Int64.max_int;
        return 0x7fffffffffffffffL ])

let gen_model =
  QCheck.Gen.(
    list_size (int_range 0 4) (pair gen_name gen_i64) >>= fun values ->
    list_size (int_range 0 3)
      (pair gen_name (list_size (int_range 1 3) (pair gen_i64 gen_i64)))
    >>= fun points ->
    return
      (let m = Model.empty () in
       List.iter (fun (k, v) -> Model.set m k v) values;
       List.iter
         (fun (k, pts) ->
            List.iter
              (fun (i, e) -> Model.add_array_point m k ~index:i ~elt:e)
              pts)
         points;
       m))

(* finite floats only; "%h" round-trips them exactly *)
let gen_activity = QCheck.Gen.(map (fun i -> float_of_int i /. 7.) int)

let gen_summary =
  QCheck.Gen.(
    int_range 0 1000 >>= fun cf ->
    int_range 0 1000 >>= fun dc ->
    int_range 0 50 >>= fun rs ->
    int_range 0 500 >>= fun cl ->
    list_size (int_range 0 4) (pair (int_range 1 99) gen_activity)
    >>= fun top ->
    return
      { P.sm_conflicts = cf; sm_decisions = dc; sm_restarts = rs;
        sm_clauses = cl; sm_top = top })

let gen_answer =
  QCheck.Gen.(
    oneof
      [ return P.Solved_unsat;
        map (fun m -> P.Solved_sat m) gen_model;
        map (fun s -> P.Stalled ("stall: " ^ s)) gen_name ])

let gen_entry =
  QCheck.Gen.(
    gen_key >>= fun key ->
    gen_name >>= fun hash_seed ->
    int_range 1 100_000 >>= fun budget ->
    int_range 0 100_000 >>= fun cost ->
    gen_answer >>= fun answer ->
    opt gen_summary >>= fun summary ->
    return
      { P.en_key = key;
        en_hash = Digest.to_hex (Digest.string hash_seed);
        en_budget = budget; en_cost = cost; en_answer = answer;
        en_summary = summary })

(* -- round-trips ----------------------------------------------------- *)

let test_entry_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"entry survives JSON text round-trip"
       (QCheck.make gen_entry)
       (fun e ->
          match J.parse (J.to_string (P.entry_to_json e)) with
          | None -> false
          | Some j -> (
              match P.entry_of_json j with
              | Some e' -> entry_eq e e'
              | None -> false)))

let test_store_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100
       ~name:"rendered store parses back to the same journal"
       (QCheck.make QCheck.Gen.(list_size (int_range 0 8) gen_entry))
       (fun entries ->
          let fp = "qc-fingerprint" in
          match P.parse ~fingerprint:fp (P.render ~fingerprint:fp entries) with
          | Error _ -> false
          | Ok arr ->
              Array.length arr = List.length entries
              && List.for_all2 entry_eq entries (Array.to_list arr)))

(* -- rejection paths: every bad store is a clean cold start ---------- *)

let sample_entries =
  [ { P.en_key = [| 1; 4; 9 |]; en_hash = Digest.to_hex (Digest.string "a");
      en_budget = 500; en_cost = 77; en_answer = P.Solved_unsat;
      en_summary = None };
    { P.en_key = [| 2 |]; en_hash = Digest.to_hex (Digest.string "b");
      en_budget = 500; en_cost = 12;
      en_answer = P.Stalled "budget exhausted"; en_summary = None } ]

let test_rejections () =
  let fp = "fp-a" in
  let good = P.render ~fingerprint:fp sample_entries in
  let expect name result sub =
    match result with
    | Ok _ -> Alcotest.failf "%s: store was accepted" name
    | Error reason ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: reason %S mentions %S" name reason sub)
          true (contains ~sub reason)
  in
  expect "no header" (P.parse ~fingerprint:fp "garbage with no newline")
    "truncated";
  expect "bad magic"
    (P.parse ~fingerprint:fp ("er-other v1 fp=x md5=y\n{}"))
    "bad magic";
  (* version bump: patch the header's v1 to a future version *)
  let v99 =
    "er-smt-cache v99"
    ^ String.sub good 15 (String.length good - 15)
  in
  Alcotest.(check string) "patched header shape" "er-smt-cache v99 fp="
    (String.sub v99 0 20);
  expect "version bump" (P.parse ~fingerprint:fp v99) "version mismatch";
  (* fingerprint change: config drift must cold-start *)
  expect "fingerprint mismatch" (P.parse ~fingerprint:"fp-b" good)
    "fingerprint mismatch";
  (* truncation inside the payload *)
  let nl = String.index good '\n' in
  let truncated = String.sub good 0 (nl + 1 + ((String.length good - nl) / 2)) in
  expect "truncated payload" (P.parse ~fingerprint:fp truncated) "checksum";
  (* single flipped byte in the payload *)
  let corrupt = Bytes.of_string good in
  Bytes.set corrupt (String.length good - 2)
    (if Bytes.get corrupt (String.length good - 2) = 'x' then 'y' else 'x');
  expect "flipped byte"
    (P.parse ~fingerprint:fp (Bytes.to_string corrupt))
    "checksum"

let test_attach_cold_fallback () =
  let dir = fresh_dir () in
  let label = "cold-fallback" in
  write_file (P.store_path ~dir ~label) "er-smt-cache v1 half a hea";
  Expr.in_fresh_space (fun () ->
      (match P.attach ~dir ~label ~fingerprint:"fp" with
       | P.Cold { reason = Some r } ->
           Alcotest.(check bool) "reason names the failure" true
             (contains ~sub:"truncated" r || contains ~sub:"malformed" r)
       | P.Cold { reason = None } ->
           Alcotest.fail "corrupt store reported as absent"
       | P.Loaded _ -> Alcotest.fail "corrupt store was loaded");
      (* the rejection surfaces as a flush warning too *)
      match P.detach_and_flush () with
      | None -> Alcotest.fail "no slot attached"
      | Some fl ->
          Alcotest.(check bool) "warning mentions the stale store" true
            (List.exists (contains ~sub:"stale store rejected") fl.P.fl_warnings))

(* -- concurrent writers to one cache directory ----------------------- *)

(* Four domains, each in its own interning space, flush to the same
   label.  The final store must be exactly one writer's journal (last
   writer wins), parse cleanly (tmp+rename forbids torn files), and the
   directory must hold no leftover tmp files. *)
let test_concurrent_writers () =
  let dir = fresh_dir () in
  let label = "shared" and fp = "shared-fp" in
  let writer i () =
    Expr.in_fresh_space (fun () ->
        ignore (P.attach ~dir ~label ~fingerprint:fp);
        let h = Option.get (P.current ()) in
        for k = 0 to 2 + i do
          P.record h ~key:[| i; k |]
            ~hash:(Digest.to_hex (Digest.string (Printf.sprintf "%d.%d" i k)))
            ~budget:100 ~cost:(10 * k) P.Solved_unsat
        done;
        P.detach_and_flush ())
  in
  let flushes =
    Array.map Domain.join (Array.init 4 (fun i -> Domain.spawn (writer i)))
  in
  Array.iter
    (fun fl ->
       match fl with
       | Some fl -> Alcotest.(check bool) "every writer flushed" true fl.P.fl_wrote
       | None -> Alcotest.fail "a writer lost its slot")
    flushes;
  (match Sys.readdir dir with
   | [| f |] ->
       Alcotest.(check string) "only the store file remains" "shared.ercache" f
   | files ->
       Alcotest.failf "expected one file, found %d (torn tmp files?)"
         (Array.length files));
  match
    P.parse ~fingerprint:fp
      (In_channel.with_open_bin (P.store_path ~dir ~label) In_channel.input_all)
  with
  | Error r -> Alcotest.failf "final store does not parse: %s" r
  | Ok entries ->
      let owner = entries.(0).P.en_key.(0) in
      Alcotest.(check int)
        "the store is one writer's complete journal"
        (3 + owner) (Array.length entries);
      Array.iteri
        (fun k e ->
           Alcotest.(check bool) "entries all from the same writer" true
             (e.P.en_key = [| owner; k |]))
        entries

(* -- warm-start replay through real solver sessions ------------------ *)

let session_queries () =
  let x = Expr.bv_var "persist_x" ~width:16 in
  Array.init 5 (fun i ->
      Expr.eq
        (Expr.urem x (Expr.const ~width:16 (Int64.of_int (i + 2))))
        (Expr.const ~width:16 1L))

let run_session_pass ~dir ~label =
  Expr.in_fresh_space (fun () ->
      let status = P.attach ~dir ~label ~fingerprint:"sess-fp" in
      let s = Solver.Session.create () in
      let cost = ref 0 in
      Array.iter
        (fun q ->
           Solver.Session.push s q;
           let _, st = Solver.Session.check s in
           cost := !cost + st.Solver.gates + st.Solver.propagations;
           Solver.Session.pop s)
        (session_queries ());
      let replays = Solver.Session.replays s in
      let fl = P.detach_and_flush () in
      (status, !cost, replays, fl))

let test_warm_replay () =
  let dir = fresh_dir () in
  let label = "warm-session" in
  let st_cold, cost_cold, replays_cold, fl_cold =
    run_session_pass ~dir ~label
  in
  (match st_cold with
   | P.Cold { reason = None } -> ()
   | _ -> Alcotest.fail "first pass should find no store");
  Alcotest.(check bool) "cold pass paid solver cost" true (cost_cold > 0);
  Alcotest.(check int) "cold pass replayed nothing" 0 replays_cold;
  Alcotest.(check bool) "cold pass wrote the journal" true
    (Option.get fl_cold).P.fl_wrote;
  let st_warm, cost_warm, replays_warm, fl_warm =
    run_session_pass ~dir ~label
  in
  (match st_warm with
   | P.Loaded { entries; replayable_cost } ->
       Alcotest.(check int) "journal holds every query" 5 entries;
       Alcotest.(check int) "replayable cost is the cold cost" cost_cold
         replayable_cost
   | P.Cold _ -> Alcotest.fail "second pass should load the store");
  Alcotest.(check int) "warm pass replays every answer" 5 replays_warm;
  Alcotest.(check int) "warm pass pays zero solver cost" 0 cost_warm;
  let fl = Option.get fl_warm in
  Alcotest.(check int) "warm pass saved the full cold cost" cost_cold
    fl.P.fl_saved_cost;
  Alcotest.(check bool) "pure replay leaves the store untouched" false
    fl.P.fl_wrote

(* -- divergence self-heal -------------------------------------------- *)

(* A journal recorded for queries [A; B] replayed against [A; C] must
   replay A, disable itself at the mismatch, and rewrite the store as
   [A; C] at flush — after which a third [A; C] run replays fully. *)
let test_divergence_self_heal () =
  let dir = fresh_dir () in
  let label = "diverge" in
  let pass mk_queries =
    Expr.in_fresh_space (fun () ->
        ignore (P.attach ~dir ~label ~fingerprint:"div-fp");
        let x = Expr.bv_var "div_x" ~width:16 in
        let s = Solver.Session.create () in
        let cost = ref 0 in
        List.iter
          (fun q ->
             Solver.Session.push s q;
             let _, st = Solver.Session.check s in
             cost := !cost + st.Solver.gates + st.Solver.propagations;
             Solver.Session.pop s)
          (mk_queries x);
        (Solver.Session.replays s, !cost, Option.get (P.detach_and_flush ())))
  in
  let q_mod m x =
    Expr.eq
      (Expr.urem x (Expr.const ~width:16 m))
      (Expr.const ~width:16 1L)
  in
  let a x = q_mod 3L x and b x = q_mod 5L x and c x = q_mod 7L x in
  let _, _, fl1 = pass (fun x -> [ a x; b x ]) in
  Alcotest.(check int) "first pass journals both queries" 2 fl1.P.fl_entries;
  let replays2, _, fl2 = pass (fun x -> [ a x; c x ]) in
  Alcotest.(check int) "prefix replays before the divergence" 1 replays2;
  Alcotest.(check bool) "divergence is reported" true
    (List.exists (contains ~sub:"diverged") fl2.P.fl_warnings);
  Alcotest.(check bool) "diverged journal is rewritten" true fl2.P.fl_wrote;
  Alcotest.(check int) "healed journal: kept prefix + fresh tail" 2
    fl2.P.fl_entries;
  let replays3, cost3, fl3 = pass (fun x -> [ a x; c x ]) in
  Alcotest.(check int) "healed journal replays fully" 2 replays3;
  Alcotest.(check int) "healed replay is free" 0 cost3;
  Alcotest.(check bool) "healed replay rewrites nothing" false fl3.P.fl_wrote

(* -- the job layer: cold-fallback warning events, warm identity ------ *)

(* Corrupt a job's store, run it through Job.execute with an events
   sink: the run must fall back cold, emit the rejection as events, and
   still produce a result whose rerun (now warm) is identical modulo
   the masked cost fields. *)
let test_job_cold_warning_and_warm_identity () =
  let module Job = Er_core.Job in
  let module Events = Er_core.Events in
  let module Json = Er_core.Json in
  let s =
    match Er_corpus.Registry.find "bash-108885" with
    | Some s -> s
    | None -> Alcotest.fail "corpus bug bash-108885 disappeared"
  in
  let dir = fresh_dir () in
  write_file
    (P.store_path ~dir ~label:s.Er_corpus.Bug.name)
    "er-smt-cache v1 fp=dead md5=beef\n{\"not\":\"a payload\"}";
  let run () =
    let events = ref [] in
    let config =
      { (Job.Config.of_pipeline s.Er_corpus.Bug.config) with
        Job.Config.cache_dir = Some dir }
    in
    let h =
      Job.create
        ~events:(fun e -> events := e :: !events)
        {
          Job.tenant = "test";
          work =
            Job.Reconstruct
              {
                Job.src_name = s.Er_corpus.Bug.name;
                src_prog = s.Er_corpus.Bug.program;
                src_workload = s.Er_corpus.Bug.failing_workload;
              };
          config;
        }
    in
    Job.execute h;
    match Job.poll h with
    | Some (Job.Finished r) -> (r, List.rev !events)
    | _ -> Alcotest.fail "job did not finish"
  in
  let r1, events1 = run () in
  let cache_events =
    List.filter_map
      (function
        | Events.Cache_status { state; detail; _ } -> Some (state, detail)
        | _ -> None)
      events1
  in
  Alcotest.(check bool) "cold event carries the rejection reason" true
    (List.exists
       (fun (state, detail) ->
          state = "cold" && contains ~sub:"mismatch" detail)
       cache_events);
  Alcotest.(check bool) "flush emits the stale-store warning" true
    (List.exists
       (fun (state, detail) ->
          state = "warning" && contains ~sub:"stale store rejected" detail)
       cache_events);
  Alcotest.(check bool) "cold run rewrote the store" true
    (List.exists (fun (state, _) -> state = "flushed") cache_events);
  (* second run: warm, byte-identical modulo the masked cost fields *)
  let r2, events2 = run () in
  Alcotest.(check bool) "second run warm-started" true
    (List.exists
       (function
         | Events.Cache_status { state = "warm"; _ } -> true
         | _ -> false)
       events2);
  let mask_fields = [ "solver_cost"; "cache_hits"; "cache_misses" ] in
  let rec mask = function
    | Json.Obj fields ->
        Json.Obj
          (List.map
             (fun (k, v) ->
                if List.mem k mask_fields then (k, Json.Int 0)
                else (k, mask v))
             fields)
    | Json.List l -> Json.List (List.map mask l)
    | j -> j
  in
  let view r =
    Json.to_string
      (mask
         (Er_core.Fleet.normalize_json (Er_core.Pipeline.result_to_json_value r)))
  in
  Alcotest.(check string) "warm trajectory identical to cold" (view r1)
    (view r2)

let suites =
  [
    ( "persist",
      [
        test_entry_roundtrip;
        test_store_roundtrip;
        Alcotest.test_case "rejected stores name their failure" `Quick
          test_rejections;
        Alcotest.test_case "corrupt store attaches cold with a warning" `Quick
          test_attach_cold_fallback;
        Alcotest.test_case "concurrent writers: last one wins, no torn files"
          `Slow test_concurrent_writers;
        Alcotest.test_case "warm session replays the journal at zero cost"
          `Quick test_warm_replay;
        Alcotest.test_case "diverged journal self-heals" `Quick
          test_divergence_self_heal;
        Alcotest.test_case "job layer: cold-fallback events + warm identity"
          `Slow test_job_cold_warning_and_warm_identity;
      ] );
  ]
