(* Tests for the cross-layer metrics registry (Er_metrics): hot-path
   counters and label isolation, histogram bucket semantics and quantile
   estimates, the three renderers (golden Prometheus exposition with an
   injected clock), the disabled no-op mode, snapshot JSON round trips,
   and the end-to-end wiring through all five instrumented layers. *)

module M = Er_metrics
module S = M.Snapshot

let fresh ?(enabled = true) ?clock () =
  match clock with
  | Some clock -> M.create ~enabled ~clock ()
  | None -> M.create ~enabled ()

let hist_counts snap name =
  List.find_map
    (function
      | S.Histogram { name = n; counts; _ } when n = name -> Some counts
      | _ -> None)
    snap.S.samples

(* --- counters ------------------------------------------------------- *)

let test_counter_monotonic_labels () =
  let r = fresh () in
  let a = M.counter ~registry:r ~labels:[ ("k", "a") ] ~help:"h" "t_total" in
  let b = M.counter ~registry:r ~labels:[ ("k", "b") ] ~help:"h" "t_total" in
  M.inc a;
  M.inc a;
  M.add a 3;
  M.inc b;
  Alcotest.(check int) "a accumulated" 5 (M.counter_value a);
  Alcotest.(check int) "b isolated from a" 1 (M.counter_value b);
  (* registration is idempotent: same name+labels yields the same cell,
     and label order does not matter *)
  let a' = M.counter ~registry:r ~labels:[ ("k", "a") ] ~help:"h" "t_total" in
  M.inc a';
  Alcotest.(check int) "same cell" 6 (M.counter_value a);
  let c1 =
    M.counter ~registry:r ~labels:[ ("x", "1"); ("y", "2") ] ~help:"h" "m_total"
  in
  let c2 =
    M.counter ~registry:r ~labels:[ ("y", "2"); ("x", "1") ] ~help:"h" "m_total"
  in
  M.inc c1;
  Alcotest.(check int) "canonical label order" 1 (M.counter_value c2);
  let snap = M.snapshot ~registry:r () in
  Alcotest.(check int) "total across labels" 7 (S.counter_total snap "t_total")

(* --- disabled mode -------------------------------------------------- *)

let test_disabled_records_nothing () =
  let r = fresh ~enabled:false () in
  let c = M.counter ~registry:r ~help:"h" "c_total" in
  let g = M.gauge ~registry:r ~help:"h" "g" in
  let h = M.histogram ~registry:r ~help:"h" ~buckets:[ 1.; 2. ] "h" in
  M.inc c;
  M.add c 5;
  M.set g 3.;
  M.observe h 1.5;
  let ran = ref false in
  let x =
    M.with_span ~registry:r "s"
      (fun () ->
         ran := true;
         42)
  in
  Alcotest.(check int) "with_span passes the result through" 42 x;
  Alcotest.(check bool) "span body ran" true !ran;
  let snap = M.snapshot ~registry:r () in
  Alcotest.(check int) "counter untouched" 0 (S.counter_total snap "c_total");
  Alcotest.(check (option (float 0.)))
    "gauge untouched" (Some 0.)
    (S.gauge_value snap "g");
  Alcotest.(check int) "histogram empty" 0 (S.histogram_count snap "h");
  Alcotest.(check int) "no spans" 0 (List.length snap.S.spans)

(* --- histograms ----------------------------------------------------- *)

let test_histogram_buckets () =
  let r = fresh () in
  let h = M.histogram ~registry:r ~help:"h" ~buckets:[ 1.; 2.; 5. ] "hist" in
  M.observe h 0.5;
  M.observe h 1.0;     (* le semantics: exactly on a bound stays below *)
  M.observe h 1.5;
  M.observe h 5.0;
  M.observe h 7.0;     (* overflow bucket *)
  let snap = M.snapshot ~registry:r () in
  (match hist_counts snap "hist" with
   | Some counts ->
       Alcotest.(check (array int))
         "per-bucket counts" [| 2; 1; 1; 1 |] counts
   | None -> Alcotest.fail "histogram sample missing");
  Alcotest.(check int) "count" 5 (S.histogram_count snap "hist");
  (* a single populated bucket interpolates linearly from its lower edge *)
  let r2 = fresh () in
  let h2 = M.histogram ~registry:r2 ~help:"h" ~buckets:[ 10. ] "h2" in
  for _ = 1 to 4 do
    M.observe h2 3.
  done;
  let snap2 = M.snapshot ~registry:r2 () in
  Alcotest.(check (option (float 1e-9)))
    "median of one bucket" (Some 5.0)
    (S.quantile snap2 "h2" 0.5);
  (* bad bucket specs are rejected at registration *)
  Alcotest.check_raises "empty buckets" (Invalid_argument
    "Er_metrics.histogram: bad: buckets must be non-empty, finite, strictly \
     increasing")
    (fun () -> ignore (M.histogram ~registry:r ~help:"h" ~buckets:[] "bad"))

let qcheck_histogram_partition =
  let bounds = [ 1.; 2.; 5.; 10.; 50. ] in
  QCheck2.Test.make ~name:"histogram buckets partition the observations"
    ~count:200
    QCheck2.Gen.(list_size (int_range 1 50) (float_bound_inclusive 100.))
    (fun obs ->
       let r = fresh () in
       let h = M.histogram ~registry:r ~help:"h" ~buckets:bounds "q" in
       List.iter (M.observe h) obs;
       let snap = M.snapshot ~registry:r () in
       let counts =
         match hist_counts snap "q" with Some c -> c | None -> [||]
       in
       (* cumulative count at each bound equals the number of
          observations at or below it *)
       let cum = ref 0 in
       let bucket_ok =
         List.for_all2
           (fun b i ->
              cum := !cum + counts.(i);
              !cum = List.length (List.filter (fun v -> v <= b) obs))
           bounds
           (List.init (List.length bounds) Fun.id)
       in
       let total_ok =
         Array.fold_left ( + ) 0 counts = List.length obs
         && S.histogram_count snap "q" = List.length obs
       in
       (* quantile estimates are monotone in q and within range *)
       let quantile_ok =
         match
           (S.quantile snap "q" 0.1, S.quantile snap "q" 0.5,
            S.quantile snap "q" 0.9)
         with
         | Some a, Some b, Some c ->
             a <= b && b <= c && a >= 0. && c <= 50.
         | _ -> false
       in
       bucket_ok && total_ok && quantile_ok)

(* --- span exception safety and leak recovery ------------------------- *)

let scripted_clock step =
  let t = ref 0.0 in
  fun () ->
    let v = !t in
    t := v +. step;
    v

let span_cell snap path =
  List.find_opt (fun sp -> sp.S.path = path) snap.S.spans

(* An exception through the span body must still record the span, pop
   the stack, and re-raise — a later span at the same depth gets a
   top-level path, not one nested under the dead span. *)
let test_span_exception_safety () =
  let r = fresh ~clock:(scripted_clock 0.25) () in
  (try
     M.with_span ~registry:r "outer" (fun () ->
         M.with_span ~registry:r "inner" (fun () -> failwith "boom"))
   with Failure _ -> ());
  M.with_span ~registry:r "after" ignore;
  let snap = M.snapshot ~registry:r () in
  (match span_cell snap "outer/inner" with
   | Some sp -> Alcotest.(check int) "inner recorded once" 1 sp.S.calls
   | None -> Alcotest.fail "inner span lost to the exception");
  (match span_cell snap "outer" with
   | Some sp -> Alcotest.(check int) "outer recorded once" 1 sp.S.calls
   | None -> Alcotest.fail "outer span lost to the exception");
  Alcotest.(check bool)
    "stack popped: next span is top-level" true
    (Option.is_some (span_cell snap "after"));
  Alcotest.(check bool)
    "no span nested under the dead pair" true
    (not
       (List.exists
          (fun sp -> sp.S.path = "outer/inner/after" || sp.S.path = "outer/after")
          snap.S.spans))

(* A genuinely leaked inner span: the body performs an effect whose
   handler drops the continuation, so the inner [Fun.protect] finally
   never runs.  The enclosing span's finally must unwind the leaked
   frame(s) instead of corrupting the tree for the rest of the run. *)
type _ Effect.t += Leak : unit Effect.t

let leak_spans ~registry names =
  (* open [names] as nested spans, then abandon the whole fiber *)
  Effect.Deep.try_with
    (fun () ->
       let rec nest = function
         | [] ->
             Effect.perform Leak;
             ()
         | n :: rest -> M.with_span ~registry n (fun () -> nest rest)
       in
       nest names)
    ()
    {
      Effect.Deep.effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Leak ->
              Some
                (fun (_k : (a, _) Effect.Deep.continuation) ->
                  (* drop the continuation: every finally in the fiber
                     above the handler is skipped *)
                  ())
          | _ -> None);
    }

let test_span_leak_recovery () =
  let r = fresh ~clock:(scripted_clock 0.25) () in
  M.with_span ~registry:r "outer" (fun () -> leak_spans ~registry:r [ "lost" ]);
  M.with_span ~registry:r "after" ignore;
  let snap = M.snapshot ~registry:r () in
  (match span_cell snap "outer" with
   | Some sp -> Alcotest.(check int) "outer still recorded" 1 sp.S.calls
   | None -> Alcotest.fail "outer span missing");
  Alcotest.(check bool)
    "leaked span never completed" true
    (Option.is_none (span_cell snap "outer/lost"));
  (match span_cell snap "after" with
   | Some sp -> Alcotest.(check int) "clean top-level path after leak" 1 sp.S.calls
   | None -> Alcotest.fail "span after the leak nested under dead frames")

let test_span_nested_leak_recovery () =
  let r = fresh ~clock:(scripted_clock 0.25) () in
  (* three leaked frames at once, then an enclosing span unwinds them all *)
  M.with_span ~registry:r "outer" (fun () ->
      leak_spans ~registry:r [ "a"; "b"; "c" ]);
  M.with_span ~registry:r "next" (fun () ->
      M.with_span ~registry:r "child" ignore);
  let snap = M.snapshot ~registry:r () in
  Alcotest.(check bool)
    "no leaked frame completed" true
    (not
       (List.exists
          (fun sp ->
             sp.S.path = "outer/a" || sp.S.path = "outer/a/b"
             || sp.S.path = "outer/a/b/c")
          snap.S.spans));
  Alcotest.(check bool)
    "tree resumes cleanly after a multi-frame leak" true
    (Option.is_some (span_cell snap "next/child"))

(* --- top-K attribution tables ---------------------------------------- *)

let top_rows snap name =
  List.find_map
    (function
      | S.Top { name = n; rows; _ } when n = name -> Some rows
      | _ -> None)
    snap.S.samples

let test_top_table () =
  let r = fresh () in
  let t = M.top ~registry:r ~k:3 ~help:"h" "t_top" in
  M.top_observe t ~key:"a" 10;
  M.top_observe t ~key:"b" 30;
  M.top_observe t ~key:"a" 20;   (* per-key max: replaces the 10 *)
  M.top_observe t ~key:"a" 5;    (* lower cost for a seen key: ignored *)
  M.top_observe t ~key:"c" 20;   (* ties with a: key breaks the tie *)
  M.top_observe t ~key:"d" 1;    (* below the cut once k rows exist *)
  let snap = M.snapshot ~registry:r () in
  (match top_rows snap "t_top" with
   | Some rows ->
       Alcotest.(check (list (pair string int)))
         "cost-desc, key-asc, truncated to k"
         [ ("b", 30); ("a", 20); ("c", 20) ]
         (List.map (fun (k, c, _) -> (k, c)) rows)
   | None -> Alcotest.fail "top sample missing");
  (* disabled registries observe nothing *)
  let r2 = fresh ~enabled:false () in
  let t2 = M.top ~registry:r2 ~k:3 ~help:"h" "t2_top" in
  M.top_observe t2 ~key:"x" 99;
  match top_rows (M.snapshot ~registry:r2 ()) "t2_top" with
  | Some [] -> ()
  | Some _ -> Alcotest.fail "disabled registry recorded a top row"
  | None -> Alcotest.fail "top sample missing"

(* --- flight recorder and trace-event JSON ---------------------------- *)

let test_recorder_trace_json () =
  let r = fresh ~clock:(scripted_clock 0.5) () in
  M.set_recorder ~registry:r true;
  M.with_span ~registry:r "occurrence" (fun () ->
      M.with_span ~registry:r "trace" ignore;
      M.with_span ~registry:r "symex" ignore);
  M.set_recorder ~registry:r false;
  (* disarmed: later spans keep the aggregate cells but add no events *)
  M.with_span ~registry:r "untimed" ignore;
  let evs = M.recorded_events ~registry:r () in
  Alcotest.(check (list string))
    "events drain sorted by begin time"
    [ "occurrence"; "occurrence/trace"; "occurrence/symex" ]
    (List.map (fun e -> e.M.te_path) evs);
  List.iter
    (fun e ->
       Alcotest.(check bool) "events have positive duration" true
         (e.M.te_end > e.M.te_begin))
    evs;
  Alcotest.(check int) "nothing dropped" 0 (M.recorder_dropped ~registry:r ());
  (* the drained JSON is a Chrome trace-event document *)
  let module J = Er_json in
  (match J.parse (M.trace_json ~registry:r ()) with
   | None -> Alcotest.fail "trace JSON does not parse"
   | Some doc ->
       let events =
         Option.bind (J.member "traceEvents" doc) J.to_list
         |> Option.value ~default:[]
       in
       let phase e = Option.bind (J.member "ph" e) J.to_str in
       Alcotest.(check int) "three X slices" 3
         (List.length (List.filter (fun e -> phase e = Some "X") events));
       Alcotest.(check bool) "track metadata present" true
         (List.exists (fun e -> phase e = Some "M") events);
       List.iter
         (fun e ->
            if phase e = Some "X" then begin
              Alcotest.(check bool) "slice has ts/dur/tid" true
                (Option.is_some (J.member "ts" e)
                 && Option.is_some (J.member "dur" e)
                 && Option.is_some (J.member "tid" e));
              match Option.bind (J.member "ts" e) J.to_float with
              | Some ts -> Alcotest.(check bool) "ts >= 0" true (ts >= 0.)
              | None -> Alcotest.fail "ts is not a number"
            end)
         events);
  (* a ring smaller than the span count wraps and reports the overflow *)
  let r2 = fresh ~clock:(scripted_clock 0.125) () in
  M.set_recorder ~registry:r2 ~capacity:2 true;
  for i = 1 to 5 do
    M.with_span ~registry:r2 (Printf.sprintf "s%d" i) ignore
  done;
  Alcotest.(check int) "ring keeps the newest capacity events" 2
    (List.length (M.recorded_events ~registry:r2 ()));
  Alcotest.(check int) "overflow counted" 3 (M.recorder_dropped ~registry:r2 ());
  Alcotest.(check (list string))
    "survivors are the newest" [ "s4"; "s5" ]
    (List.map (fun e -> e.M.te_path) (M.recorded_events ~registry:r2 ()))

(* --- golden Prometheus exposition ----------------------------------- *)

let test_prometheus_golden () =
  let t = ref 0.0 in
  let clock () =
    let v = !t in
    t := v +. 0.25;
    v
  in
  let r = fresh ~clock () in
  let c_alu =
    M.counter ~registry:r ~labels:[ ("class", "alu") ]
      ~help:"Instructions executed." "vm_instructions_total"
  in
  let c_load =
    M.counter ~registry:r ~labels:[ ("class", "load") ]
      ~help:"Instructions executed." "vm_instructions_total"
  in
  let g = M.gauge ~registry:r ~help:"Live graph nodes." "graph_nodes" in
  let h =
    M.histogram ~registry:r ~help:"Query seconds." ~buckets:[ 0.01; 0.1; 1.0 ]
      "query_seconds"
  in
  M.inc c_alu;
  M.inc c_alu;
  M.inc c_load;
  M.set g 42.;
  M.observe h 0.005;
  M.observe h 0.05;
  M.observe h 0.5;
  M.observe h 5.0;
  M.with_span ~registry:r "occurrence" (fun () ->
      M.with_span ~registry:r "symex" (fun () -> ()));
  let golden =
    "# HELP vm_instructions_total Instructions executed.\n\
     # TYPE vm_instructions_total counter\n\
     vm_instructions_total{class=\"alu\"} 2\n\
     vm_instructions_total{class=\"load\"} 1\n\
     # HELP graph_nodes Live graph nodes.\n\
     # TYPE graph_nodes gauge\n\
     graph_nodes 42\n\
     # HELP query_seconds Query seconds.\n\
     # TYPE query_seconds histogram\n\
     query_seconds_bucket{le=\"0.01\"} 1\n\
     query_seconds_bucket{le=\"0.1\"} 2\n\
     query_seconds_bucket{le=\"1\"} 3\n\
     query_seconds_bucket{le=\"+Inf\"} 4\n\
     query_seconds_sum 5.555\n\
     query_seconds_count 4\n\
     # HELP er_span_seconds_total Cumulative wall time per span path.\n\
     # TYPE er_span_seconds_total counter\n\
     er_span_seconds_total{span=\"occurrence\"} 0.75\n\
     er_span_seconds_total{span=\"occurrence/symex\"} 0.25\n\
     # HELP er_span_calls_total Calls per span path.\n\
     # TYPE er_span_calls_total counter\n\
     er_span_calls_total{span=\"occurrence\"} 1\n\
     er_span_calls_total{span=\"occurrence/symex\"} 1\n"
  in
  Alcotest.(check string)
    "prometheus exposition" golden
    (S.to_prometheus (M.snapshot ~registry:r ()))

(* --- Prometheus exposition lint -------------------------------------- *)

(* Structural lint over a full exposition: every non-comment line must
   be `name[{k="v",...}] value` with a valid metric name that a
   preceding # TYPE declared, valid label names, quoted label values and
   a numeric value; every comment must be a well-formed HELP or TYPE.
   This is what keeps the text scrapeable by an actual Prometheus. *)
let test_prometheus_lint () =
  let r = fresh ~clock:(scripted_clock 0.25) () in
  let c =
    M.counter ~registry:r ~labels:[ ("class", "alu") ] ~help:"Instr."
      "lint_instr_total"
  in
  let g = M.gauge ~registry:r ~help:"Ratio." "lint_ratio" in
  let h =
    M.histogram ~registry:r ~help:"Sec." ~buckets:[ 0.1; 1.0 ] "lint_seconds"
  in
  let t = M.top ~registry:r ~k:4 ~help:"Hot." "lint_top_cost" in
  M.inc c;
  M.set g 1.5;
  M.observe h 0.05;
  M.observe h 2.0;
  M.top_observe t ~key:"n=260[2641..3927]#3f4e" ~labels:[ ("outcome", "sat") ] 42;
  M.top_observe t ~key:"read_chunk/loop" 17;
  M.with_span ~registry:r "occurrence" (fun () ->
      M.with_span ~registry:r "symex" ignore);
  let text = S.to_prometheus (M.snapshot ~registry:r ()) in
  let is_name_char ch =
    (ch >= 'a' && ch <= 'z')
    || (ch >= 'A' && ch <= 'Z')
    || (ch >= '0' && ch <= '9')
    || ch = '_' || ch = ':'
  in
  let valid_name s =
    s <> ""
    && (not (s.[0] >= '0' && s.[0] <= '9'))
    && String.for_all is_name_char s
  in
  let typed = Hashtbl.create 8 in
  let lint line =
    if line = "" then ()
    else if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then (
      match String.split_on_char ' ' line with
      | [ "#"; "TYPE"; name; kind ] ->
          Alcotest.(check bool) (line ^ ": TYPE name valid") true
            (valid_name name);
          Alcotest.(check bool) (line ^ ": known kind") true
            (List.mem kind [ "counter"; "gauge"; "histogram" ]);
          Hashtbl.replace typed name ()
      | _ -> Alcotest.fail (line ^ ": malformed TYPE comment"))
    else if line.[0] = '#' then (
      match String.split_on_char ' ' line with
      | "#" :: "HELP" :: name :: _ :: _ ->
          Alcotest.(check bool) (line ^ ": HELP name valid") true
            (valid_name name)
      | _ -> Alcotest.fail (line ^ ": malformed comment"))
    else begin
      let n = String.length line in
      let name_end =
        let rec go i = if i < n && is_name_char line.[i] then go (i + 1) else i in
        go 0
      in
      let name = String.sub line 0 name_end in
      Alcotest.(check bool) (line ^ ": sample name valid") true
        (valid_name name);
      let base =
        let strip suf =
          let ls = String.length suf in
          if
            String.length name > ls
            && String.sub name (String.length name - ls) ls = suf
          then Some (String.sub name 0 (String.length name - ls))
          else None
        in
        match
          List.find_map
            (fun suf ->
               match strip suf with
               | Some b when Hashtbl.mem typed b -> Some b
               | _ -> None)
            [ "_bucket"; "_sum"; "_count" ]
        with
        | Some b -> b
        | None -> name
      in
      Alcotest.(check bool) (line ^ ": declared by a TYPE comment") true
        (Hashtbl.mem typed base);
      let rest = String.sub line name_end (n - name_end) in
      let value_str =
        if rest <> "" && rest.[0] = '{' then (
          match String.index_opt rest '}' with
          | None -> Alcotest.fail (line ^ ": unterminated label set")
          | Some close ->
              String.sub rest 1 (close - 1)
              |> String.split_on_char ','
              |> List.iter (fun pair ->
                  match String.index_opt pair '=' with
                  | None -> Alcotest.fail (line ^ ": label without =")
                  | Some eq ->
                      let k = String.sub pair 0 eq in
                      let v =
                        String.sub pair (eq + 1) (String.length pair - eq - 1)
                      in
                      Alcotest.(check bool) (line ^ ": label name valid") true
                        (valid_name k && not (String.contains k ':'));
                      Alcotest.(check bool) (line ^ ": label value quoted")
                        true
                        (String.length v >= 2
                         && v.[0] = '"'
                         && v.[String.length v - 1] = '"'));
              String.sub rest (close + 1) (String.length rest - close - 1))
        else rest
      in
      let v = String.trim value_str in
      Alcotest.(check bool) (line ^ ": single numeric value") true
        ((not (String.contains v ' '))
         && Option.is_some (float_of_string_opt v))
    end
  in
  List.iter lint (String.split_on_char '\n' text);
  (* the kinds under test actually made it into the exposition *)
  List.iter
    (fun name ->
       Alcotest.(check bool) (name ^ " present") true (Hashtbl.mem typed name))
    [ "lint_instr_total"; "lint_ratio"; "lint_seconds"; "lint_top_cost";
      "er_span_seconds_total" ]

(* --- human table: histogram quantile columns -------------------------- *)

let test_table_histogram_quantiles () =
  let r = fresh () in
  let h =
    M.histogram ~registry:r ~help:"s" ~buckets:[ 1.; 10.; 100. ] "tbl_lat"
  in
  List.iter (M.observe h) [ 0.5; 2.; 3.; 20.; 90. ];
  let table = S.to_table (M.snapshot ~registry:r ()) in
  let contains needle =
    let nl = String.length needle and tl = String.length table in
    let rec go i =
      i + nl <= tl && (String.sub table i nl = needle || go (i + 1))
    in
    go 0
  in
  List.iter
    (fun col ->
       Alcotest.(check bool) (col ^ " column rendered") true (contains col))
    [ "p50="; "p90="; "p99=" ]

(* --- JSON round trips ----------------------------------------------- *)

let test_snapshot_json_roundtrip () =
  let t = ref 0.0 in
  let clock () =
    let v = !t in
    t := v +. 0.125;
    v
  in
  let r = fresh ~clock () in
  let c =
    M.counter ~registry:r ~labels:[ ("type", "tnt") ] ~help:"packets"
      "packets_total"
  in
  let g = M.gauge ~registry:r ~help:"ratio" "ratio" in
  let h = M.histogram ~registry:r ~help:"s" ~buckets:[ 0.5; 1.5 ] "lat" in
  M.add c 7;
  M.set g 2.625;
  M.observe h 0.25;
  M.observe h 2.0;
  M.with_span ~registry:r "a" (fun () -> M.with_span ~registry:r "b" ignore);
  let snap = M.snapshot ~registry:r () in
  let s1 = S.to_json snap in
  match S.of_json s1 with
  | None -> Alcotest.fail "snapshot JSON does not parse back"
  | Some snap' ->
      Alcotest.(check string) "stable re-serialization" s1 (S.to_json snap');
      Alcotest.(check int) "counter survives" 7
        (S.counter_total snap' "packets_total");
      Alcotest.(check (option (float 0.)))
        "gauge survives" (Some 2.625)
        (S.gauge_value snap' "ratio");
      Alcotest.(check int) "histogram survives" 2
        (S.histogram_count snap' "lat");
      Alcotest.(check int) "spans survive" 2 (List.length snap'.S.spans)

let test_metrics_event_roundtrip () =
  let r = fresh () in
  let c = M.counter ~registry:r ~help:"h" "c_total" in
  M.add c 3;
  let snap = M.snapshot ~registry:r () in
  let e = Er_core.Events.Metrics_snapshot { occurrence = 4; snapshot = snap } in
  match Er_core.Events.of_json (Er_core.Events.to_json e) with
  | Some e' -> Alcotest.(check bool) "round trips" true (e = e')
  | None -> Alcotest.fail "Metrics_snapshot event does not parse back"

(* --- end-to-end: all five layers feed the default registry ----------- *)

let test_five_layers_nonzero () =
  M.reset M.default;
  M.set_enabled M.default true;
  Fun.protect
    ~finally:(fun () ->
      M.set_enabled M.default false;
      M.reset M.default)
    (fun () ->
       let s =
         match Er_corpus.Registry.find "pbzip2" with
         | Some s -> s
         | None -> Alcotest.fail "pbzip2 missing from the corpus"
       in
       let events = ref [] in
       let r =
         Er_core.Pipeline.run ~config:s.Er_corpus.Bug.config
           ~events:(fun e -> events := e :: !events)
           ~base_prog:s.Er_corpus.Bug.program
           ~workload:s.Er_corpus.Bug.failing_workload ()
       in
       (match r.Er_core.Pipeline.status with
        | Er_core.Pipeline.Reproduced _ -> ()
        | Er_core.Pipeline.Gave_up _ -> Alcotest.fail "pbzip2 not reproduced");
       let snap = M.snapshot () in
       let nz name =
         Alcotest.(check bool)
           (name ^ " is non-zero") true
           (S.counter_total snap name > 0)
       in
       nz "er_vm_instructions_total";
       nz "er_vm_branches_total";
       nz "er_trace_packets_total";
       nz "er_trace_branches_total";
       nz "er_smt_queries_total";
       nz "er_smt_sat_propagations_total";
       nz "er_symex_steps_total";
       nz "er_select_selections_total";
       nz "er_select_points_total";
       Alcotest.(check bool)
         "occurrence spans recorded" true
         (List.exists (fun sp -> sp.S.path = "occurrence") snap.S.spans);
       Alcotest.(check bool)
         "per-iteration snapshots on the bus" true
         (List.exists
            (function
              | Er_core.Events.Metrics_snapshot _ -> true
              | _ -> false)
            !events))

let suites =
  [
    ( "metrics",
      [
        Alcotest.test_case "counter monotonicity and label isolation" `Quick
          test_counter_monotonic_labels;
        Alcotest.test_case "disabled registry records nothing" `Quick
          test_disabled_records_nothing;
        Alcotest.test_case "histogram bucket boundaries and quantiles" `Quick
          test_histogram_buckets;
        QCheck_alcotest.to_alcotest qcheck_histogram_partition;
        Alcotest.test_case "span survives an exception through the body" `Quick
          test_span_exception_safety;
        Alcotest.test_case "leaked inner span is unwound" `Quick
          test_span_leak_recovery;
        Alcotest.test_case "nested multi-frame leak is unwound" `Quick
          test_span_nested_leak_recovery;
        Alcotest.test_case "top-K table semantics" `Quick test_top_table;
        Alcotest.test_case "flight recorder drains Chrome trace JSON" `Quick
          test_recorder_trace_json;
        Alcotest.test_case "prometheus golden exposition" `Quick
          test_prometheus_golden;
        Alcotest.test_case "prometheus exposition lint" `Quick
          test_prometheus_lint;
        Alcotest.test_case "table renders p50/p90/p99" `Quick
          test_table_histogram_quantiles;
        Alcotest.test_case "snapshot JSON round trip" `Quick
          test_snapshot_json_roundtrip;
        Alcotest.test_case "Metrics_snapshot event round trip" `Quick
          test_metrics_event_roundtrip;
        Alcotest.test_case "all five layers feed the registry" `Slow
          test_five_layers_nonzero;
      ] );
  ]
