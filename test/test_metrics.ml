(* Tests for the cross-layer metrics registry (Er_metrics): hot-path
   counters and label isolation, histogram bucket semantics and quantile
   estimates, the three renderers (golden Prometheus exposition with an
   injected clock), the disabled no-op mode, snapshot JSON round trips,
   and the end-to-end wiring through all five instrumented layers. *)

module M = Er_metrics
module S = M.Snapshot

let fresh ?(enabled = true) ?clock () =
  match clock with
  | Some clock -> M.create ~enabled ~clock ()
  | None -> M.create ~enabled ()

let hist_counts snap name =
  List.find_map
    (function
      | S.Histogram { name = n; counts; _ } when n = name -> Some counts
      | _ -> None)
    snap.S.samples

(* --- counters ------------------------------------------------------- *)

let test_counter_monotonic_labels () =
  let r = fresh () in
  let a = M.counter ~registry:r ~labels:[ ("k", "a") ] ~help:"h" "t_total" in
  let b = M.counter ~registry:r ~labels:[ ("k", "b") ] ~help:"h" "t_total" in
  M.inc a;
  M.inc a;
  M.add a 3;
  M.inc b;
  Alcotest.(check int) "a accumulated" 5 (M.counter_value a);
  Alcotest.(check int) "b isolated from a" 1 (M.counter_value b);
  (* registration is idempotent: same name+labels yields the same cell,
     and label order does not matter *)
  let a' = M.counter ~registry:r ~labels:[ ("k", "a") ] ~help:"h" "t_total" in
  M.inc a';
  Alcotest.(check int) "same cell" 6 (M.counter_value a);
  let c1 =
    M.counter ~registry:r ~labels:[ ("x", "1"); ("y", "2") ] ~help:"h" "m_total"
  in
  let c2 =
    M.counter ~registry:r ~labels:[ ("y", "2"); ("x", "1") ] ~help:"h" "m_total"
  in
  M.inc c1;
  Alcotest.(check int) "canonical label order" 1 (M.counter_value c2);
  let snap = M.snapshot ~registry:r () in
  Alcotest.(check int) "total across labels" 7 (S.counter_total snap "t_total")

(* --- disabled mode -------------------------------------------------- *)

let test_disabled_records_nothing () =
  let r = fresh ~enabled:false () in
  let c = M.counter ~registry:r ~help:"h" "c_total" in
  let g = M.gauge ~registry:r ~help:"h" "g" in
  let h = M.histogram ~registry:r ~help:"h" ~buckets:[ 1.; 2. ] "h" in
  M.inc c;
  M.add c 5;
  M.set g 3.;
  M.observe h 1.5;
  let ran = ref false in
  let x =
    M.with_span ~registry:r "s"
      (fun () ->
         ran := true;
         42)
  in
  Alcotest.(check int) "with_span passes the result through" 42 x;
  Alcotest.(check bool) "span body ran" true !ran;
  let snap = M.snapshot ~registry:r () in
  Alcotest.(check int) "counter untouched" 0 (S.counter_total snap "c_total");
  Alcotest.(check (option (float 0.)))
    "gauge untouched" (Some 0.)
    (S.gauge_value snap "g");
  Alcotest.(check int) "histogram empty" 0 (S.histogram_count snap "h");
  Alcotest.(check int) "no spans" 0 (List.length snap.S.spans)

(* --- histograms ----------------------------------------------------- *)

let test_histogram_buckets () =
  let r = fresh () in
  let h = M.histogram ~registry:r ~help:"h" ~buckets:[ 1.; 2.; 5. ] "hist" in
  M.observe h 0.5;
  M.observe h 1.0;     (* le semantics: exactly on a bound stays below *)
  M.observe h 1.5;
  M.observe h 5.0;
  M.observe h 7.0;     (* overflow bucket *)
  let snap = M.snapshot ~registry:r () in
  (match hist_counts snap "hist" with
   | Some counts ->
       Alcotest.(check (array int))
         "per-bucket counts" [| 2; 1; 1; 1 |] counts
   | None -> Alcotest.fail "histogram sample missing");
  Alcotest.(check int) "count" 5 (S.histogram_count snap "hist");
  (* a single populated bucket interpolates linearly from its lower edge *)
  let r2 = fresh () in
  let h2 = M.histogram ~registry:r2 ~help:"h" ~buckets:[ 10. ] "h2" in
  for _ = 1 to 4 do
    M.observe h2 3.
  done;
  let snap2 = M.snapshot ~registry:r2 () in
  Alcotest.(check (option (float 1e-9)))
    "median of one bucket" (Some 5.0)
    (S.quantile snap2 "h2" 0.5);
  (* bad bucket specs are rejected at registration *)
  Alcotest.check_raises "empty buckets" (Invalid_argument
    "Er_metrics.histogram: bad: buckets must be non-empty, finite, strictly \
     increasing")
    (fun () -> ignore (M.histogram ~registry:r ~help:"h" ~buckets:[] "bad"))

let qcheck_histogram_partition =
  let bounds = [ 1.; 2.; 5.; 10.; 50. ] in
  QCheck2.Test.make ~name:"histogram buckets partition the observations"
    ~count:200
    QCheck2.Gen.(list_size (int_range 1 50) (float_bound_inclusive 100.))
    (fun obs ->
       let r = fresh () in
       let h = M.histogram ~registry:r ~help:"h" ~buckets:bounds "q" in
       List.iter (M.observe h) obs;
       let snap = M.snapshot ~registry:r () in
       let counts =
         match hist_counts snap "q" with Some c -> c | None -> [||]
       in
       (* cumulative count at each bound equals the number of
          observations at or below it *)
       let cum = ref 0 in
       let bucket_ok =
         List.for_all2
           (fun b i ->
              cum := !cum + counts.(i);
              !cum = List.length (List.filter (fun v -> v <= b) obs))
           bounds
           (List.init (List.length bounds) Fun.id)
       in
       let total_ok =
         Array.fold_left ( + ) 0 counts = List.length obs
         && S.histogram_count snap "q" = List.length obs
       in
       (* quantile estimates are monotone in q and within range *)
       let quantile_ok =
         match
           (S.quantile snap "q" 0.1, S.quantile snap "q" 0.5,
            S.quantile snap "q" 0.9)
         with
         | Some a, Some b, Some c ->
             a <= b && b <= c && a >= 0. && c <= 50.
         | _ -> false
       in
       bucket_ok && total_ok && quantile_ok)

(* --- golden Prometheus exposition ----------------------------------- *)

let test_prometheus_golden () =
  let t = ref 0.0 in
  let clock () =
    let v = !t in
    t := v +. 0.25;
    v
  in
  let r = fresh ~clock () in
  let c_alu =
    M.counter ~registry:r ~labels:[ ("class", "alu") ]
      ~help:"Instructions executed." "vm_instructions_total"
  in
  let c_load =
    M.counter ~registry:r ~labels:[ ("class", "load") ]
      ~help:"Instructions executed." "vm_instructions_total"
  in
  let g = M.gauge ~registry:r ~help:"Live graph nodes." "graph_nodes" in
  let h =
    M.histogram ~registry:r ~help:"Query seconds." ~buckets:[ 0.01; 0.1; 1.0 ]
      "query_seconds"
  in
  M.inc c_alu;
  M.inc c_alu;
  M.inc c_load;
  M.set g 42.;
  M.observe h 0.005;
  M.observe h 0.05;
  M.observe h 0.5;
  M.observe h 5.0;
  M.with_span ~registry:r "occurrence" (fun () ->
      M.with_span ~registry:r "symex" (fun () -> ()));
  let golden =
    "# HELP vm_instructions_total Instructions executed.\n\
     # TYPE vm_instructions_total counter\n\
     vm_instructions_total{class=\"alu\"} 2\n\
     vm_instructions_total{class=\"load\"} 1\n\
     # HELP graph_nodes Live graph nodes.\n\
     # TYPE graph_nodes gauge\n\
     graph_nodes 42\n\
     # HELP query_seconds Query seconds.\n\
     # TYPE query_seconds histogram\n\
     query_seconds_bucket{le=\"0.01\"} 1\n\
     query_seconds_bucket{le=\"0.1\"} 2\n\
     query_seconds_bucket{le=\"1\"} 3\n\
     query_seconds_bucket{le=\"+Inf\"} 4\n\
     query_seconds_sum 5.555\n\
     query_seconds_count 4\n\
     # HELP er_span_seconds_total Cumulative wall time per span path.\n\
     # TYPE er_span_seconds_total counter\n\
     er_span_seconds_total{span=\"occurrence\"} 0.75\n\
     er_span_seconds_total{span=\"occurrence/symex\"} 0.25\n\
     # HELP er_span_calls_total Calls per span path.\n\
     # TYPE er_span_calls_total counter\n\
     er_span_calls_total{span=\"occurrence\"} 1\n\
     er_span_calls_total{span=\"occurrence/symex\"} 1\n"
  in
  Alcotest.(check string)
    "prometheus exposition" golden
    (S.to_prometheus (M.snapshot ~registry:r ()))

(* --- JSON round trips ----------------------------------------------- *)

let test_snapshot_json_roundtrip () =
  let t = ref 0.0 in
  let clock () =
    let v = !t in
    t := v +. 0.125;
    v
  in
  let r = fresh ~clock () in
  let c =
    M.counter ~registry:r ~labels:[ ("type", "tnt") ] ~help:"packets"
      "packets_total"
  in
  let g = M.gauge ~registry:r ~help:"ratio" "ratio" in
  let h = M.histogram ~registry:r ~help:"s" ~buckets:[ 0.5; 1.5 ] "lat" in
  M.add c 7;
  M.set g 2.625;
  M.observe h 0.25;
  M.observe h 2.0;
  M.with_span ~registry:r "a" (fun () -> M.with_span ~registry:r "b" ignore);
  let snap = M.snapshot ~registry:r () in
  let s1 = S.to_json snap in
  match S.of_json s1 with
  | None -> Alcotest.fail "snapshot JSON does not parse back"
  | Some snap' ->
      Alcotest.(check string) "stable re-serialization" s1 (S.to_json snap');
      Alcotest.(check int) "counter survives" 7
        (S.counter_total snap' "packets_total");
      Alcotest.(check (option (float 0.)))
        "gauge survives" (Some 2.625)
        (S.gauge_value snap' "ratio");
      Alcotest.(check int) "histogram survives" 2
        (S.histogram_count snap' "lat");
      Alcotest.(check int) "spans survive" 2 (List.length snap'.S.spans)

let test_metrics_event_roundtrip () =
  let r = fresh () in
  let c = M.counter ~registry:r ~help:"h" "c_total" in
  M.add c 3;
  let snap = M.snapshot ~registry:r () in
  let e = Er_core.Events.Metrics_snapshot { occurrence = 4; snapshot = snap } in
  match Er_core.Events.of_json (Er_core.Events.to_json e) with
  | Some e' -> Alcotest.(check bool) "round trips" true (e = e')
  | None -> Alcotest.fail "Metrics_snapshot event does not parse back"

(* --- end-to-end: all five layers feed the default registry ----------- *)

let test_five_layers_nonzero () =
  M.reset M.default;
  M.set_enabled M.default true;
  Fun.protect
    ~finally:(fun () ->
      M.set_enabled M.default false;
      M.reset M.default)
    (fun () ->
       let s =
         match Er_corpus.Registry.find "pbzip2" with
         | Some s -> s
         | None -> Alcotest.fail "pbzip2 missing from the corpus"
       in
       let events = ref [] in
       let r =
         Er_core.Pipeline.run ~config:s.Er_corpus.Bug.config
           ~events:(fun e -> events := e :: !events)
           ~base_prog:s.Er_corpus.Bug.program
           ~workload:s.Er_corpus.Bug.failing_workload ()
       in
       (match r.Er_core.Pipeline.status with
        | Er_core.Pipeline.Reproduced _ -> ()
        | Er_core.Pipeline.Gave_up _ -> Alcotest.fail "pbzip2 not reproduced");
       let snap = M.snapshot () in
       let nz name =
         Alcotest.(check bool)
           (name ^ " is non-zero") true
           (S.counter_total snap name > 0)
       in
       nz "er_vm_instructions_total";
       nz "er_vm_branches_total";
       nz "er_trace_packets_total";
       nz "er_trace_branches_total";
       nz "er_smt_queries_total";
       nz "er_smt_sat_propagations_total";
       nz "er_symex_steps_total";
       nz "er_select_selections_total";
       nz "er_select_points_total";
       Alcotest.(check bool)
         "occurrence spans recorded" true
         (List.exists (fun sp -> sp.S.path = "occurrence") snap.S.spans);
       Alcotest.(check bool)
         "per-iteration snapshots on the bus" true
         (List.exists
            (function
              | Er_core.Events.Metrics_snapshot _ -> true
              | _ -> false)
            !events))

let suites =
  [
    ( "metrics",
      [
        Alcotest.test_case "counter monotonicity and label isolation" `Quick
          test_counter_monotonic_labels;
        Alcotest.test_case "disabled registry records nothing" `Quick
          test_disabled_records_nothing;
        Alcotest.test_case "histogram bucket boundaries and quantiles" `Quick
          test_histogram_buckets;
        QCheck_alcotest.to_alcotest qcheck_histogram_partition;
        Alcotest.test_case "prometheus golden exposition" `Quick
          test_prometheus_golden;
        Alcotest.test_case "snapshot JSON round trip" `Quick
          test_snapshot_json_roundtrip;
        Alcotest.test_case "Metrics_snapshot event round trip" `Quick
          test_metrics_event_roundtrip;
        Alcotest.test_case "all five layers feed the registry" `Slow
          test_five_layers_nonzero;
      ] );
  ]
