(* Tests for the PT-like trace substrate: packet encode/decode round
   trips, ring-buffer overwrite semantics, and randomized event-stream
   properties. *)

open Er_trace

let test_tnt_byte_roundtrip () =
  (* every TNT payload of 1..6 bits survives encode/decode *)
  for n = 1 to 6 do
    for bits = 0 to (1 lsl n) - 1 do
      let l = List.init n (fun i -> bits land (1 lsl (n - 1 - i)) <> 0) in
      let b = Packet.encode_tnt l in
      Alcotest.(check (list bool))
        (Printf.sprintf "tnt %d/%d" n bits)
        l (Packet.decode_tnt b)
    done
  done

let test_ring_overwrite () =
  let r = Ring.create 8 in
  for i = 0 to 11 do
    Ring.write_byte r i
  done;
  Alcotest.(check bool) "overflowed" true (Ring.overflowed r);
  Alcotest.(check int) "overwritten counts lost bytes" 4 (Ring.overwritten r);
  Alcotest.(check int) "wrapped once" 1 (Ring.wraps r);
  let c = Ring.contents r in
  Alcotest.(check int) "keeps capacity bytes" 8 (Bytes.length c);
  (* a ring that never filled loses nothing *)
  let r2 = Ring.create 8 in
  Ring.write_byte r2 1;
  Alcotest.(check int) "no loss before wrap" 0 (Ring.overwritten r2);
  Alcotest.(check int) "no wraps" 0 (Ring.wraps r2);
  Alcotest.(check int) "oldest live byte is 4" 4 (Char.code (Bytes.get c 0));
  Alcotest.(check int) "newest byte is 11" 11
    (Char.code (Bytes.get c (Bytes.length c - 1)))

let test_decoder_needs_psb () =
  let enc = Encoder.create () in
  (* no [start]: stream lacks the sync packet *)
  Encoder.branch enc true;
  match Decoder.decode (Encoder.finish enc) with
  | Error (Decoder.Lost_sync _) -> ()
  | Error (Decoder.Truncated _) -> Alcotest.fail "wrong error"
  | Ok _ -> Alcotest.fail "decoded without PSB"

let test_encode_decode_mixed () =
  let enc = Encoder.create () in
  Encoder.start enc;
  Encoder.branch enc true;
  Encoder.branch enc false;
  Encoder.ptwrite enc 0xDEADBEEFL;
  Encoder.branch enc true;
  Encoder.thread_switch enc ~tid:1 ~clock:500;
  Encoder.branch enc false;
  match Decoder.decode (Encoder.finish enc) with
  | Error e -> Alcotest.fail (Decoder.error_to_string e)
  | Ok events ->
      let s = Decoder.split events in
      Alcotest.(check (array bool)) "branches" [| true; false; true; false |]
        s.Decoder.branches;
      Alcotest.(check int) "one data value" 1 (Array.length s.Decoder.data);
      Alcotest.(check int64) "payload" 0xDEADBEEFL s.Decoder.data.(0);
      Alcotest.(check int) "one switch" 1 (Array.length s.Decoder.schedule);
      Alcotest.(check int) "tid" 1 (fst s.Decoder.schedule.(0))

let test_clock_widening () =
  (* MTC carries 16 bits; the decoder reconstructs a monotone clock *)
  let enc = Encoder.create () in
  Encoder.start enc;
  Encoder.thread_switch enc ~tid:1 ~clock:65_000;
  Encoder.thread_switch enc ~tid:0 ~clock:66_000;   (* wrapped low bits *)
  Encoder.thread_switch enc ~tid:1 ~clock:140_000;
  match Decoder.decode (Encoder.finish enc) with
  | Error e -> Alcotest.fail (Decoder.error_to_string e)
  | Ok events ->
      let s = Decoder.split events in
      let clocks = Array.map snd s.Decoder.schedule in
      Alcotest.(check bool) "monotone" true
        (clocks.(0) < clocks.(1) && clocks.(1) < clocks.(2))

let qcheck_stream_roundtrip =
  let gen =
    QCheck2.Gen.(
      list_size (int_range 0 400)
        (oneof
           [
             map (fun b -> `B b) bool;
             map (fun v -> `D (Int64.of_int v)) (int_bound 1_000_000);
           ]))
  in
  QCheck2.Test.make ~name:"random branch/data streams round trip" ~count:100
    gen
    (fun ops ->
       let enc = Encoder.create () in
       Encoder.start enc;
       List.iter
         (function
           | `B b -> Encoder.branch enc b
           | `D v -> Encoder.ptwrite enc v)
         ops;
       match Decoder.decode (Encoder.finish enc) with
       | Error _ -> false
       | Ok events ->
           let s = Decoder.split events in
           let want_b =
             List.filter_map (function `B b -> Some b | `D _ -> None) ops
           in
           let want_d =
             List.filter_map (function `D v -> Some v | `B _ -> None) ops
           in
           Array.to_list s.Decoder.branches = want_b
           && Array.to_list s.Decoder.data = want_d)

let test_stats_counting () =
  let enc = Encoder.create () in
  Encoder.start enc;
  for _ = 1 to 100 do
    Encoder.branch enc true
  done;
  ignore (Encoder.finish enc);
  let st = Encoder.stats enc in
  Alcotest.(check int) "branches" 100 st.Encoder.branches;
  (* 100 branches = 16 full TNT packets + 1 partial + PSB *)
  Alcotest.(check int) "packets" 18 st.Encoder.packets

(* --- write_bytes blit vs byte-loop oracle ------------------------------- *)

(* The pre-blit implementation, kept as the oracle: one write_byte per
   byte, re-checking the wrap each time. *)
let oracle_write_bytes r (s : Bytes.t) =
  for i = 0 to Bytes.length s - 1 do
    Ring.write_byte r (Char.code (Bytes.get s i))
  done

let rings_agree name (a : Ring.t) (b : Ring.t) =
  Alcotest.(check int) (name ^ ": written") (Ring.total_written a)
    (Ring.total_written b);
  Alcotest.(check int) (name ^ ": wraps") (Ring.wraps a) (Ring.wraps b);
  Alcotest.(check bool) (name ^ ": overflowed") (Ring.overflowed a)
    (Ring.overflowed b);
  Alcotest.(check string) (name ^ ": contents")
    (Bytes.to_string (Ring.contents a))
    (Bytes.to_string (Ring.contents b))

let test_write_bytes_multiwrap () =
  (* one blit call larger than twice the capacity: several wraps at once *)
  let cap = 8 in
  let blit = Ring.create cap and loop = Ring.create cap in
  let payload = Bytes.init (3 * cap + 5) (fun i -> Char.chr (i land 0xFF)) in
  Ring.write_bytes blit payload;
  oracle_write_bytes loop payload;
  Alcotest.(check int) "three wraps" 3 (Ring.wraps blit);
  rings_agree "multiwrap" blit loop;
  (* landing exactly on the wrap boundary *)
  let b2 = Ring.create cap and l2 = Ring.create cap in
  Ring.write_bytes b2 (Bytes.make 3 'x');
  oracle_write_bytes l2 (Bytes.make 3 'x');
  Ring.write_bytes b2 (Bytes.make (cap - 3) 'y');
  oracle_write_bytes l2 (Bytes.make (cap - 3) 'y');
  Alcotest.(check int) "boundary write wraps once" 1 (Ring.wraps b2);
  rings_agree "boundary" b2 l2

let qcheck_write_bytes_blit_oracle =
  let gen =
    QCheck2.Gen.(
      pair (int_range 1 17)
        (small_list (string_size ~gen:printable (int_range 0 40))))
  in
  QCheck2.Test.make ~name:"write_bytes blit matches byte loop" ~count:500 gen
    (fun (cap, chunks) ->
       let blit = Ring.create cap and loop = Ring.create cap in
       List.iter
         (fun s ->
            let s = Bytes.of_string s in
            Ring.write_bytes blit s;
            oracle_write_bytes loop s)
         chunks;
       Ring.total_written blit = Ring.total_written loop
       && Ring.wraps blit = Ring.wraps loop
       && Ring.overflowed blit = Ring.overflowed loop
       && Bytes.equal (Ring.contents blit) (Ring.contents loop))

let suites =
  [
    ( "trace",
      [
        Alcotest.test_case "TNT byte round trip" `Quick test_tnt_byte_roundtrip;
        Alcotest.test_case "ring overwrite" `Quick test_ring_overwrite;
        Alcotest.test_case "ring write_bytes multi-wrap" `Quick
          test_write_bytes_multiwrap;
        QCheck_alcotest.to_alcotest qcheck_write_bytes_blit_oracle;
        Alcotest.test_case "decoder requires PSB" `Quick test_decoder_needs_psb;
        Alcotest.test_case "mixed stream decode" `Quick test_encode_decode_mixed;
        Alcotest.test_case "MTC clock widening" `Quick test_clock_widening;
        Alcotest.test_case "encoder stats" `Quick test_stats_counting;
        QCheck_alcotest.to_alcotest qcheck_stream_roundtrip;
      ] );
  ]
