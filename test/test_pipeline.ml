(* Staged-pipeline accounting: occurrence counting vs skipped runs, budget
   escalation exactly at selection fixpoints, per-stage event coverage,
   event-derived iteration records, and the JSONL round-trip. *)

open Er_corpus
module P = Er_core.Pipeline
module E = Er_core.Events
module O = Er_core.Outcome

let spec = Registry.running_example

let run_default () =
  P.run ~config:spec.Bug.config ~base_prog:spec.Bug.program
    ~workload:spec.Bug.failing_workload ()

let cached : P.result option ref = ref None

let result () =
  match !cached with
  | Some r -> r
  | None ->
      let r = run_default () in
      cached := Some r;
      r

(* --- occurrences count only runs where the tracked failure fired ------- *)

let test_occurrences_exclude_skipped_runs () =
  (* a workload whose first production run finishes cleanly: the pipeline
     must consume the run without counting it as an analyzed occurrence *)
  let workload ~occurrence =
    if occurrence = 1 then (spec.Bug.perf_inputs (), 0)
    else spec.Bug.failing_workload ~occurrence:(occurrence - 1)
  in
  let r = P.run ~config:spec.Bug.config ~base_prog:spec.Bug.program ~workload () in
  (match r.P.status with
   | P.Reproduced _ -> ()
   | P.Gave_up g -> Alcotest.fail ("gave up: " ^ O.give_up_to_string g));
  Alcotest.(check int) "occurrences = analyzed iterations"
    (List.length r.P.iterations) r.P.occurrences;
  Alcotest.(check int) "skipped run still consumes a production run"
    (r.P.occurrences + 1) r.P.runs;
  let skipped =
    List.filter
      (function
        | E.Run_skipped { reason = E.No_failure; occurrence } ->
            occurrence = 1
        | _ -> false)
      r.P.events
  in
  Alcotest.(check int) "the clean run emitted Run_skipped(no_failure)" 1
    (List.length skipped);
  (* the baseline workload analyzes every run: runs = occurrences *)
  let r0 = result () in
  Alcotest.(check int) "baseline: every run analyzed" r0.P.runs
    r0.P.occurrences

(* --- budget escalation happens exactly at selection fixpoints ---------- *)

let escalation_matches_fixpoints (evs : E.event list) =
  (* pair each occurrence's Points_added.added with whether a
     Budget_escalated event followed for that occurrence *)
  let added = Hashtbl.create 8 and escalated = Hashtbl.create 8 in
  List.iter
    (function
      | E.Points_added { occurrence; added = a; _ } ->
          Hashtbl.replace added occurrence a
      | E.Budget_escalated { occurrence; _ } ->
          Hashtbl.replace escalated occurrence ()
      | _ -> ())
    evs;
  Hashtbl.iter
    (fun occ a ->
       Alcotest.(check bool)
         (Printf.sprintf "occurrence %d: escalated iff selection fixpoint" occ)
         (a = 0)
         (Hashtbl.mem escalated occ))
    added;
  Hashtbl.iter
    (fun occ () ->
       if not (Hashtbl.mem added occ) then
         Alcotest.fail
           (Printf.sprintf
              "occurrence %d escalated without a selection round" occ))
    escalated

let test_budget_escalates_at_fixpoint () =
  (* tiny budgets: selection runs dry while symex still stalls, forcing
     the deterministic analogue of the paper's longer solver timeout.
     The solver result cache is process-wide, and earlier tests solved
     this same bug under default budgets — drop it so the tiny budgets
     actually bite. *)
  Er_smt.Solver.reset_cache ();
  let config =
    { spec.Bug.config with
      P.exec_config =
        { spec.Bug.config.P.exec_config with
          Er_symex.Exec.solver_budget = 200; gate_budget = 200 } }
  in
  let r =
    P.run ~config ~base_prog:spec.Bug.program
      ~workload:spec.Bug.failing_workload ()
  in
  (match r.P.status with
   | P.Reproduced _ -> ()
   | P.Gave_up g -> Alcotest.fail ("gave up: " ^ O.give_up_to_string g));
  let escalations =
    List.filter_map
      (function
        | E.Budget_escalated { solver_budget; _ } -> Some solver_budget
        | _ -> None)
      r.P.events
  in
  Alcotest.(check bool) "at least one escalation forced" true
    (escalations <> []);
  (* each escalation quadruples the previous effective budget *)
  ignore
    (List.fold_left
       (fun prev b ->
          Alcotest.(check int) "budget quadruples" (4 * prev) b;
          b)
       200 escalations);
  escalation_matches_fixpoints r.P.events;
  (* the default run must obey the same invariant (vacuously or not) *)
  escalation_matches_fixpoints (result ()).P.events

(* --- every stage reports at least one event per iteration -------------- *)

let events_of_occurrence evs occ =
  List.filter
    (fun e ->
       match (e : E.event) with
       | E.Occurrence_started { occurrence }
       | E.Run_skipped { occurrence; _ }
       | E.Checkpoint_resumed { occurrence; _ }
       | E.Trace_captured { occurrence; _ }
       | E.Decode_failed { occurrence; _ }
       | E.Symex_finished { occurrence; _ }
       | E.Diverged { occurrence; _ }
       | E.Stall { occurrence; _ }
       | E.Points_added { occurrence; _ }
       | E.Budget_escalated { occurrence; _ }
       | E.Verified { occurrence; _ }
       | E.Reproduced { occurrence; _ }
       | E.Gave_up { occurrence; _ }
       | E.Metrics_snapshot { occurrence; _ } -> occurrence = occ
       | E.Cache_status _ | E.Pipeline_finished _ -> false)
    evs

let test_event_per_stage_per_iteration () =
  let r = result () in
  Alcotest.(check bool) "needs more than one occurrence" true
    (r.P.occurrences > 1);
  List.iter
    (fun (it : P.iteration) ->
       let evs = events_of_occurrence r.P.events it.P.occurrence in
       let has stage =
         List.exists (fun e -> E.stage_of e = Some stage) evs
       in
       Alcotest.(check bool) "tracer reported" true (has E.Trace);
       Alcotest.(check bool) "shepherd reported" true (has E.Symex);
       match it.P.outcome with
       | O.Stalled _ ->
           Alcotest.(check bool) "selector reported" true (has E.Select)
       | O.Completed ->
           Alcotest.(check bool) "verifier reported" true (has E.Verify)
       | O.Diverged _ -> ())
    r.P.iterations

(* --- iteration records are a pure function of the event stream --------- *)

let test_iterations_derived_from_events () =
  let r = result () in
  Alcotest.(check int) "derivation is idempotent"
    (List.length r.P.iterations)
    (List.length (P.iterations_of_events r.P.events));
  List.iter2
    (fun (a : P.iteration) (b : P.iteration) ->
       Alcotest.(check bool)
         (Printf.sprintf "occurrence %d re-derives identically" a.P.occurrence)
         true (a = b))
    r.P.iterations
    (P.iterations_of_events r.P.events)

(* --- per-stage wall-clock accounting ----------------------------------- *)

let test_stage_accounting () =
  let r = result () in
  List.iter
    (fun (it : P.iteration) ->
       Alcotest.(check bool) "stage times are non-negative" true
         (it.P.trace_time >= 0. && it.P.symex_time >= 0.
          && it.P.selection_time >= 0. && it.P.verify_time >= 0.);
       match it.P.outcome with
       | O.Stalled s ->
           Alcotest.(check bool) "stall carries bottleneck stats" true
             (s.O.longest_chain >= 0 && s.O.largest_object_bytes >= 0)
       | O.Completed | O.Diverged _ ->
           Alcotest.(check (float 0.0)) "no selection time outside stalls" 0.0
             it.P.selection_time)
    r.P.iterations;
  Alcotest.(check (float 1e-9)) "total symex time = sum over iterations"
    (List.fold_left (fun a (it : P.iteration) -> a +. it.P.symex_time) 0.0
       r.P.iterations)
    r.P.total_symex_time

(* --- JSONL sink round-trip --------------------------------------------- *)

let test_jsonl_round_trip () =
  let r = result () in
  Alcotest.(check bool) "stream is non-empty" true (r.P.events <> []);
  (* structural round-trip through the JSON codec *)
  List.iter
    (fun e ->
       match E.of_json (E.to_json e) with
       | Some e' ->
           if e <> e' then
             Alcotest.fail ("round-trip changed event: " ^ E.to_json e)
       | None -> Alcotest.fail ("unparseable event: " ^ E.to_json e))
    r.P.events;
  (* the file-level contract: one parseable JSON object per line *)
  let path = Filename.temp_file "er_events" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
       let oc = open_out path in
       let sink = E.jsonl oc in
       let r2 =
         P.run ~config:spec.Bug.config ~events:sink
           ~base_prog:spec.Bug.program
           ~workload:spec.Bug.failing_workload ()
       in
       close_out oc;
       let ic = open_in path in
       let lines = ref [] in
       (try
          while true do
            lines := input_line ic :: !lines
          done
        with End_of_file -> close_in ic);
       let lines = List.rev !lines in
       Alcotest.(check int) "one line per event"
         (List.length r2.P.events) (List.length lines);
       List.iter2
         (fun line e ->
            match E.of_json line with
            | Some e' when e' = e -> ()
            | Some _ -> Alcotest.fail ("line decodes to different event: " ^ line)
            | None -> Alcotest.fail ("unparseable line: " ^ line))
         lines r2.P.events)

(* --- compatibility wrapper --------------------------------------------- *)

let test_driver_wrapper_matches_pipeline () =
  let d =
    Er_core.Driver.reconstruct ~config:spec.Bug.config
      ~base_prog:spec.Bug.program ~workload:spec.Bug.failing_workload ()
  in
  let p = d.Er_core.Driver.pipeline in
  Alcotest.(check int) "same occurrence count" p.P.occurrences
    d.Er_core.Driver.occurrences;
  Alcotest.(check int) "same iteration count"
    (List.length p.P.iterations)
    (List.length d.Er_core.Driver.iterations);
  List.iter2
    (fun (a : Er_core.Driver.iteration) (b : P.iteration) ->
       Alcotest.(check int) "solver calls agree" b.P.solver_calls
         a.Er_core.Driver.solver_calls;
       Alcotest.(check bool) "outcomes agree" true
         (a.Er_core.Driver.outcome = O.step_to_compat b.P.outcome))
    d.Er_core.Driver.iterations p.P.iterations;
  match d.Er_core.Driver.status, p.P.status with
  | Er_core.Driver.Reproduced _, P.Reproduced _ -> ()
  | Er_core.Driver.Gave_up a, P.Gave_up g ->
      Alcotest.(check string) "give-up reason renders identically" a
        (O.give_up_to_string g)
  | _ -> Alcotest.fail "wrapper status disagrees with pipeline status"

let suites =
  [
    ( "pipeline",
      [
        Alcotest.test_case "occurrences exclude skipped runs" `Slow
          test_occurrences_exclude_skipped_runs;
        Alcotest.test_case "budget escalates exactly at fixpoints" `Slow
          test_budget_escalates_at_fixpoint;
        Alcotest.test_case "every stage emits events per iteration" `Slow
          test_event_per_stage_per_iteration;
        Alcotest.test_case "iterations derive from the event stream" `Slow
          test_iterations_derived_from_events;
        Alcotest.test_case "per-stage accounting" `Slow test_stage_accounting;
        Alcotest.test_case "JSONL sink round-trips" `Slow
          test_jsonl_round_trip;
        Alcotest.test_case "driver wrapper matches pipeline" `Slow
          test_driver_wrapper_matches_pipeline;
      ] );
  ]
