(* Snapshot/revert bit-identity of the resumable engine (Vm_state).

   Pausing, snapshotting and reverting must commute with execution: after
   [snapshot; run-to-end; revert; run-to-end], the replayed suffix has to
   reproduce the first completion exactly — outcome, instruction count,
   outputs, encoder packet bytes, branch-outcome sequence and the VM
   metric counters — and both must equal an uninterrupted straight-line
   run.  Checked on the running example and on the random-program
   generator shared with the lowered-VM differential. *)

module Prog = Er_ir.Prog
module Interp = Er_vm.Interp
module Vs = Er_vm.Vm_state

type obs = {
  ob_outcome : string;
  ob_instrs : int;
  ob_outputs : int64 list;
  ob_trace : string;          (* finished encoder packet bytes *)
  ob_bits : bool list;        (* conditional-branch outcome sequence *)
  ob_metrics : int list;      (* the thirteen VM counters *)
}

let vm_metric_values () = List.map Er_metrics.counter_value Vs.vm_counters

let outcome_str = function
  | Vs.Finished None -> "finished"
  | Vs.Finished (Some v) -> Printf.sprintf "finished %Ld" v
  | Vs.Failed f -> "failed: " ^ Er_vm.Failure.to_string f

(* identical modulo the process-global metric counters (which only
   compare within one revert cycle, not across separate runs) *)
let same_core a b =
  String.equal a.ob_outcome b.ob_outcome
  && a.ob_instrs = b.ob_instrs
  && a.ob_outputs = b.ob_outputs
  && String.equal a.ob_trace b.ob_trace
  && a.ob_bits = b.ob_bits

let same_full a b = same_core a b && a.ob_metrics = b.ob_metrics

let check_same name a b =
  Alcotest.(check string) (name ^ ": outcome") a.ob_outcome b.ob_outcome;
  Alcotest.(check int) (name ^ ": instrs") a.ob_instrs b.ob_instrs;
  Alcotest.(check (list int64)) (name ^ ": outputs") a.ob_outputs b.ob_outputs;
  Alcotest.(check string) (name ^ ": packet bytes") a.ob_trace b.ob_trace;
  Alcotest.(check (list bool)) (name ^ ": branch bits") a.ob_bits b.ob_bits

(* fresh encoder + branch-bit recorder wired into a VM config *)
let tracing_config seed =
  let enc = Er_trace.Encoder.create () in
  Er_trace.Encoder.start enc;
  let bits = ref [] in
  let hooks =
    {
      Interp.no_hooks with
      Interp.on_branch =
        Some
          (fun b ->
             bits := b :: !bits;
             Er_trace.Encoder.branch enc b);
      on_switch =
        Some
          (fun ~tid ~clock -> Er_trace.Encoder.thread_switch enc ~tid ~clock);
      on_ptwrite = Some (fun v -> Er_trace.Encoder.ptwrite enc v);
      on_alloc = Some (fun v -> Er_trace.Encoder.ptwrite enc v);
    }
  in
  let config = { Interp.default_config with Interp.sched_seed = seed; hooks } in
  (config, enc, bits)

let obs_of enc bits (r : Vs.run_result) =
  {
    ob_outcome = outcome_str r.Vs.outcome;
    ob_instrs = r.Vs.instr_count;
    ob_outputs = r.Vs.outputs;
    ob_trace = Bytes.to_string (Er_trace.Encoder.finish enc);
    ob_bits = List.rev !bits;
    ob_metrics = vm_metric_values ();
  }

let run_straight program mk_inputs seed =
  let config, enc, bits = tracing_config seed in
  let r = Vs.run_program ~config (Prog.of_program program) (mk_inputs ()) in
  obs_of enc bits r

(* Pause at the first quantum boundary at clock >= k, snapshot the VM and
   the encoder, finish the run, then rewind both and replay the suffix.
   [None] when the program finished before ever pausing. *)
let run_with_revert program mk_inputs seed k =
  let config, enc, bits = tracing_config seed in
  let prog = Prog.of_program program in
  let vm =
    Vs.create ~config ~plan:(Vs.empty_plan (Prog.lowered prog)) prog
      (mk_inputs ())
  in
  match Vs.run ~pause_at:k vm with
  | Some _ -> None
  | None ->
      let vck = Vs.snapshot vm in
      let eck = Er_trace.Encoder.checkpoint enc in
      let bits_at = !bits in
      let first = obs_of enc bits (Vs.run_to_end vm) in
      Vs.revert ~restore_metrics:true vm vck;
      if not (Er_trace.Encoder.revert enc eck) then
        Alcotest.fail "encoder refused its own checkpoint";
      bits := bits_at;
      let second = obs_of enc bits (Vs.run_to_end vm) in
      Some (first, second)

(* metric rewinding only bites when the registry counts *)
let with_vm_metrics f =
  let reg = Er_metrics.default in
  let was = Er_metrics.enabled reg in
  Er_metrics.set_enabled reg true;
  Fun.protect ~finally:(fun () -> Er_metrics.set_enabled reg was) f

(* --- deterministic case: the running example --------------------------- *)

let test_fig3_revert_identical () =
  with_vm_metrics (fun () ->
      let spec = Er_corpus.Registry.running_example in
      let mk () =
        fst (spec.Er_corpus.Bug.failing_workload ~occurrence:1)
      in
      let _, seed = spec.Er_corpus.Bug.failing_workload ~occurrence:1 in
      let straight = run_straight spec.Er_corpus.Bug.program mk seed in
      List.iter
        (fun k ->
           match run_with_revert spec.Er_corpus.Bug.program mk seed k with
           | None -> ()
           | Some (first, second) ->
               let name = Printf.sprintf "fig3 k=%d" k in
               check_same (name ^ " replay") first second;
               Alcotest.(check bool) (name ^ " metrics rewound") true
                 (first.ob_metrics = second.ob_metrics);
               check_same (name ^ " vs straight") straight first)
        [ 1; 5; 20 ])

(* --- randomized property ------------------------------------------------ *)

let qcheck_snapshot_revert =
  QCheck2.Test.make
    ~name:"snapshot/revert replay is bit-identical on random programs"
    ~count:120 Test_lower.gen_prog_and_inputs
    (fun (program, input_vals, seed) ->
       with_vm_metrics (fun () ->
           let mk () = Er_vm.Inputs.make [ ("s", input_vals) ] in
           let straight = run_straight program mk seed in
           List.for_all
             (fun k ->
                match run_with_revert program mk seed k with
                | None -> true
                | Some (first, second) ->
                    same_full first second && same_core straight first)
             [ 1; 4; 15 ]))

let suites =
  [
    ( "vm-state",
      [
        Alcotest.test_case "fig3 snapshot/revert replay identical" `Quick
          test_fig3_revert_identical;
        QCheck_alcotest.to_alcotest qcheck_snapshot_revert;
      ] );
  ]
