(* Tests for the job-centric service stack: the wire protocol's strict
   codec, Job.Config JSON round-tripping, the scheduler's per-tenant
   fairness and bounded-queue backpressure, cooperative mid-iteration
   cancellation, and the serve-vs-batch determinism contract over a real
   socket. *)

module Job = Er_core.Job
module Scheduler = Er_core.Scheduler
module Server = Er_core.Server
module Loadgen = Er_core.Loadgen
module Wire = Er_core.Wire
module Pipeline = Er_core.Pipeline
module Fleet = Er_core.Fleet
module Json = Er_core.Json
module Bug = Er_corpus.Bug
module Registry = Er_corpus.Registry

(* --- wire protocol: encode/decode round-trip ------------------------ *)

let client_frames : Wire.client_frame list =
  [
    Wire.Submit { id = "t-1"; tenant = "alice"; bug = "pbzip2"; config = None };
    Wire.Submit
      {
        id = "t-2";
        tenant = "bob";
        bug = "php-74194";
        config = Some (Json.Obj [ ("solver_budget", Json.Int 5000) ]);
      };
    Wire.Status { id = "t-1" };
    Wire.Cancel { id = "t-2" };
    Wire.Metrics;
    Wire.Shutdown;
  ]

let server_frames : Wire.server_frame list =
  [
    Wire.Accepted { id = "t-1" };
    Wire.Rejected { id = "t-1"; code = 429; reason = "queue full" };
    Wire.Job_status { id = "t-1"; state = "running" };
    Wire.Job_result
      {
        id = "t-1";
        bug = "pbzip2";
        tenant = "alice";
        result = Json.Obj [ ("reproduced", Json.Bool true) ];
        wall = 1.25;
      };
    Wire.Job_failed { id = "t-2"; exn = "Failure(\"boom\")" };
    Wire.Job_cancelled { id = "t-3"; partial = None };
    Wire.Job_cancelled
      { id = "t-4"; partial = Some (Json.Obj [ ("occurrences", Json.Int 2) ]) };
    Wire.Metrics_dump { prometheus = "# HELP x\nx 1\n" };
    Wire.Error { id = Some "t-9"; reason = "unknown bug: nope" };
    Wire.Error { id = None; reason = "malformed frame" };
    Wire.Shutting_down;
  ]

let test_wire_roundtrip () =
  List.iter
    (fun f ->
       match Wire.client_of_line (Wire.client_to_line f) with
       | Some f' ->
           Alcotest.(check bool) "client frame round-trips" true (f = f')
       | None ->
           Alcotest.failf "client frame failed to decode: %s"
             (Wire.client_to_line f))
    client_frames;
  List.iter
    (fun f ->
       match Wire.server_of_line (Wire.server_to_line f) with
       | Some f' ->
           Alcotest.(check bool) "server frame round-trips" true (f = f')
       | None ->
           Alcotest.failf "server frame failed to decode: %s"
             (Wire.server_to_line f))
    server_frames

(* --- wire protocol: strict rejection of malformed frames ------------ *)

let test_wire_malformed () =
  let rejected l = Wire.client_of_line l = None in
  List.iter
    (fun (what, line) ->
       Alcotest.(check bool) ("rejects " ^ what) true (rejected line))
    [
      ("invalid JSON", "{not json");
      ("non-object", "[1,2,3]");
      ("missing type", {|{"id":"x"}|});
      ("unknown type", {|{"type":"gimme","id":"x"}|});
      ( "missing field",
        {|{"type":"submit","id":"x","tenant":"a"}|} (* no bug *) );
      ( "extra key",
        {|{"type":"status","id":"x","surprise":true}|} );
      ( "mistyped value",
        {|{"type":"submit","id":42,"tenant":"a","bug":"b"}|} );
    ];
  (* the server decoder is just as strict *)
  Alcotest.(check bool) "server rejects unknown type" true
    (Wire.server_of_line {|{"type":"accepted_v2","id":"x"}|} = None);
  Alcotest.(check bool) "server rejects extra key" true
    (Wire.server_of_line {|{"type":"shutting_down","why":"because"}|} = None);
  (* a partial buffer splits into complete lines plus the tail *)
  let lines, tail = Wire.split_lines "{\"a\":1}\n{\"b\":2}\n{\"c\"" in
  Alcotest.(check (list string)) "complete lines" [ "{\"a\":1}"; "{\"b\":2}" ]
    lines;
  Alcotest.(check string) "unterminated tail" "{\"c\"" tail

(* --- Job.Config: JSON round-trip and partial override --------------- *)

let config_gen : Job.Config.t QCheck.Gen.t =
  let open QCheck.Gen in
  let knob = int_range 1 1_000_000 in
  knob >>= fun max_occurrences ->
  knob >>= fun solver_budget ->
  knob >>= fun gate_budget ->
  knob >>= fun max_steps ->
  knob >>= fun progress_every ->
  knob >>= fun max_instrs ->
  knob >>= fun max_call_depth ->
  knob >>= fun quantum ->
  int_range 0 1_000 >>= fun quantum_jitter ->
  knob >>= fun ring_bytes ->
  bool >>= fun verify ->
  bool >>= fun incremental ->
  knob >>= fun checkpoint_interval ->
  int_range 0 8 >>= fun portfolio ->
  opt (string_size ~gen:(char_range 'a' 'z') (int_range 1 12))
  >>= fun cache_dir ->
  return
    {
      Job.Config.max_occurrences;
      solver_budget;
      gate_budget;
      max_steps;
      progress_every;
      max_instrs;
      max_call_depth;
      quantum;
      quantum_jitter;
      ring_bytes;
      verify;
      incremental;
      checkpoint_interval;
      portfolio;
      cache_dir;
    }

let config_arb =
  QCheck.make ~print:(fun c -> Job.Config.to_json c) config_gen

let test_config_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"Job.Config JSON round-trips exactly"
       config_arb (fun c -> Job.Config.of_json (Job.Config.to_json c) = Some c))

let test_config_override () =
  let base = Job.Config.default in
  (match
     Job.Config.of_json_value ~base
       (Json.Obj [ ("solver_budget", Json.Int 777) ])
   with
   | Some c ->
       Alcotest.(check int) "overridden field" 777 c.Job.Config.solver_budget;
       Alcotest.(check bool) "other fields keep base" true
         ({ c with Job.Config.solver_budget = base.Job.Config.solver_budget }
          = base)
   | None -> Alcotest.fail "partial override rejected");
  (* the empty override is the base config *)
  Alcotest.(check bool) "empty object = base" true
    (Job.Config.of_json_value ~base (Json.Obj []) = Some base);
  (* strictness: unknown keys and mistyped values reject the document *)
  Alcotest.(check bool) "unknown key rejects" true
    (Job.Config.of_json_value ~base (Json.Obj [ ("solver_fuel", Json.Int 1) ])
     = None);
  Alcotest.(check bool) "mistyped value rejects" true
    (Job.Config.of_json_value ~base
       (Json.Obj [ ("verify", Json.Int 1) ])
     = None);
  Alcotest.(check bool) "non-object rejects" true
    (Job.Config.of_json_value ~base (Json.List []) = None)

(* --- a cheap pipeline result to hand to thunk jobs ------------------ *)

let cheap_result : Pipeline.result Lazy.t =
  lazy
    (let s = Registry.running_example in
     Pipeline.run ~config:s.Bug.config ~base_prog:s.Bug.program
       ~workload:s.Bug.failing_workload ())

let thunk_job ~tenant ~name run =
  Job.create
    {
      Job.tenant;
      work = Job.Thunk { name; run };
      config = Job.Config.default;
    }

let spin_until ?(timeout = 10.) pred =
  let t0 = Unix.gettimeofday () in
  while (not (pred ())) && Unix.gettimeofday () -. t0 < timeout do
    Domain.cpu_relax ()
  done;
  pred ()

(* --- scheduler: per-tenant fair round-robin ------------------------- *)

(* One worker, one blocker occupying it while two tenants queue jobs at
   different depths; release, and the execution order must interleave
   the tenants one job per revolution instead of draining tenant [a]
   first. *)
let test_scheduler_fairness () =
  let r = Lazy.force cheap_result in
  let started = Atomic.make false in
  let release = Atomic.make false in
  let order = ref [] in
  let order_mutex = Mutex.create () in
  let record name =
    Mutex.lock order_mutex;
    order := name :: !order;
    Mutex.unlock order_mutex
  in
  let sched = Scheduler.create ~workers:1 () in
  let blocker =
    thunk_job ~tenant:"z" ~name:"blocker" (fun () ->
        Atomic.set started true;
        while not (Atomic.get release) do
          Domain.cpu_relax ()
        done;
        r)
  in
  let ok = function Ok () -> () | Error _ -> Alcotest.fail "submit refused" in
  ok (Scheduler.submit sched blocker);
  Alcotest.(check bool) "blocker started" true
    (spin_until (fun () -> Atomic.get started));
  let submit tenant name =
    let j = thunk_job ~tenant ~name (fun () -> record name; r) in
    ok (Scheduler.submit sched j);
    j
  in
  (* explicit sequencing: list-element evaluation order is unspecified,
     and the expected interleaving depends on submit order *)
  let a1 = submit "a" "a1" in
  let a2 = submit "a" "a2" in
  let a3 = submit "a" "a3" in
  let b1 = submit "b" "b1" in
  let b2 = submit "b" "b2" in
  let jobs = [ a1; a2; a3; b1; b2 ] in
  Atomic.set release true;
  List.iter (fun j -> ignore (Job.await j)) jobs;
  Scheduler.shutdown sched;
  Alcotest.(check (list string)) "one job per tenant per revolution"
    [ "a1"; "b1"; "a2"; "b2"; "a3" ]
    (List.rev !order)

(* --- scheduler: bounded-queue backpressure -------------------------- *)

let test_scheduler_backpressure () =
  let r = Lazy.force cheap_result in
  let started = Atomic.make false in
  let release = Atomic.make false in
  let sched = Scheduler.create ~workers:1 ~queue_limit:2 () in
  let blocker =
    thunk_job ~tenant:"z" ~name:"blocker" (fun () ->
        Atomic.set started true;
        while not (Atomic.get release) do
          Domain.cpu_relax ()
        done;
        r)
  in
  (match Scheduler.submit sched blocker with
   | Ok () -> ()
   | Error _ -> Alcotest.fail "blocker refused");
  Alcotest.(check bool) "blocker started" true
    (spin_until (fun () -> Atomic.get started));
  (* worker is busy and the queue holds up to 2: two fit, the third is
     refused — the daemon's 429 *)
  let fill n = thunk_job ~tenant:"t" ~name:(Printf.sprintf "fill%d" n) (fun () -> r) in
  let j1 = fill 1 and j2 = fill 2 and j3 = fill 3 in
  Alcotest.(check bool) "first fits" true (Scheduler.submit sched j1 = Ok ());
  Alcotest.(check bool) "second fits" true (Scheduler.submit sched j2 = Ok ());
  Alcotest.(check bool) "third refused" true
    (Scheduler.submit sched j3 = Error `Queue_full);
  Atomic.set release true;
  ignore (Job.await j1);
  ignore (Job.await j2);
  Scheduler.shutdown sched;
  (* the refused job was never owned by the scheduler *)
  Alcotest.(check bool) "refused job still queued state" true
    (Job.status j3 = `Queued)

(* --- job: cancel while queued and cancel mid-iteration -------------- *)

let test_cancel_queued () =
  let r = Lazy.force cheap_result in
  let j = thunk_job ~tenant:"t" ~name:"idle" (fun () -> r) in
  Alcotest.(check bool) "cancel accepted" true (Job.cancel j);
  (match Job.await j with
   | Job.Cancelled None -> ()
   | _ -> Alcotest.fail "queued cancel must yield Cancelled None");
  Alcotest.(check bool) "status is cancelled" true (Job.status j = `Cancelled);
  (* an executor skips it rather than running it *)
  Job.execute j;
  Alcotest.(check bool) "execute after cancel is a no-op" true
    (Job.status j = `Cancelled);
  (* cancelling a completed job reports false *)
  Alcotest.(check bool) "second cancel refused" false (Job.cancel j)

(* The paper's running example needs more than one failure occurrence
   (test_end_to_end pins that), so gating its workload gives a window
   where the job is mid-reconstruction: cancel must land at the next
   occurrence boundary as [Gave_up Cancelled] with a partial result. *)
let test_cancel_mid_iteration () =
  let s = Registry.running_example in
  let in_workload = Atomic.make false in
  let release = Atomic.make false in
  let gated_workload ~occurrence =
    Atomic.set in_workload true;
    while not (Atomic.get release) do
      Domain.cpu_relax ()
    done;
    s.Bug.failing_workload ~occurrence
  in
  let j =
    Job.create
      {
        Job.tenant = "t";
        work =
          Job.Reconstruct
            {
              Job.src_name = s.Bug.name;
              src_prog = s.Bug.program;
              src_workload = gated_workload;
            };
        config = Job.Config.of_pipeline s.Bug.config;
      }
  in
  let d = Domain.spawn (fun () -> Job.execute j) in
  Alcotest.(check bool) "job reached its first production run" true
    (spin_until (fun () -> Atomic.get in_workload));
  Alcotest.(check bool) "cancel accepted while running" true (Job.cancel j);
  Atomic.set release true;
  Domain.join d;
  (match Job.await j with
   | Job.Cancelled (Some r) -> (
       match r.Pipeline.status with
       | Pipeline.Gave_up Er_core.Outcome.Cancelled -> ()
       | Pipeline.Gave_up g ->
           Alcotest.failf "wrong give-up reason: %s"
             (Er_core.Outcome.give_up_to_string g)
       | Pipeline.Reproduced _ ->
           Alcotest.fail "cancelled job must not report Reproduced")
   | Job.Cancelled None ->
       Alcotest.fail "mid-run cancel must carry the partial result"
   | Job.Finished _ | Job.Crashed _ ->
       Alcotest.fail "cancelled job must resolve as Cancelled");
  Alcotest.(check bool) "status is cancelled" true (Job.status j = `Cancelled)

(* --- serve vs batch: the determinism contract over a real socket ---- *)

(* Four concurrent tenants replay the whole Table 1 corpus against an
   in-process daemon; every client must receive, for every bug, the
   byte-identical normalized payload a batch pipeline run produces —
   and the batch side's corpus-wide solver cost is pinned to the
   committed trajectory, so the pin transfers to the daemon. *)
let test_serve_matches_batch () =
  let resolver name =
    Option.map
      (fun (s : Bug.spec) ->
         ( {
             Job.src_name = s.Bug.name;
             src_prog = s.Bug.program;
             src_workload = s.Bug.failing_workload;
           },
           Job.Config.of_pipeline s.Bug.config ))
      (Registry.find name)
  in
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "er-test-serve-%d.sock" (Unix.getpid ()))
  in
  let config =
    { Server.default_config with socket_path = socket; workers = 4 }
  in
  let srv = Server.start ~config ~resolver () in
  let bugs = List.map (fun (s : Bug.spec) -> s.Bug.name) Registry.table1 in
  let r = Loadgen.run ~socket ~clients:4 ~bugs () in
  Server.stop srv;
  Server.wait srv;
  Alcotest.(check int) "every submit resolved" (4 * List.length bugs)
    r.Loadgen.lg_jobs;
  Alcotest.(check int) "no job failed" 0 r.Loadgen.lg_failed;
  Alcotest.(check int) "no protocol errors" 0 r.Loadgen.lg_errors;
  Alcotest.(check bool) "clients agree per bug" true (Loadgen.deterministic r);
  (* batch reference: the same reconstruction in-process, normalized the
     same way the daemon normalizes result frames *)
  let batch_payloads, batch_cost =
    List.fold_left
      (fun (acc, cost) (s : Bug.spec) ->
         let res =
           Er_smt.Expr.in_fresh_space (fun () ->
               Pipeline.run ~config:s.Bug.config ~base_prog:s.Bug.program
                 ~workload:s.Bug.failing_workload ())
         in
         let payload =
           Json.to_string
             (Fleet.normalize_json (Pipeline.result_to_json_value res))
         in
         let c =
           List.fold_left
             (fun a (it : Pipeline.iteration) -> a + it.Pipeline.solver_cost)
             0 res.Pipeline.iterations
         in
         ((s.Bug.name, payload) :: acc, cost + c))
      ([], 0) Registry.table1
  in
  (* the committed trajectory's corpus-wide solver cost (BENCH totals):
     since every serve payload is byte-identical to its batch payload,
     the pin covers the daemon too *)
  Alcotest.(check int) "corpus solver cost matches committed trajectory"
    204_036 batch_cost;
  List.iter
    (fun (bug, served) ->
       match List.assoc_opt bug batch_payloads with
       | None -> Alcotest.failf "daemon served unknown bug %s" bug
       | Some batch ->
           Alcotest.(check string) (bug ^ ": serve = batch, byte for byte")
             batch served)
    r.Loadgen.lg_results

let suites =
  [
    ( "serve.wire",
      [
        Alcotest.test_case "frames round-trip both directions" `Quick
          test_wire_roundtrip;
        Alcotest.test_case "malformed frames are rejected" `Quick
          test_wire_malformed;
      ] );
    ( "serve.config",
      [
        test_config_roundtrip;
        Alcotest.test_case "partial override and strictness" `Quick
          test_config_override;
      ] );
    ( "serve.scheduler",
      [
        Alcotest.test_case "per-tenant round-robin is fair" `Slow
          test_scheduler_fairness;
        Alcotest.test_case "bounded queue refuses past the limit" `Slow
          test_scheduler_backpressure;
      ] );
    ( "serve.job",
      [
        Alcotest.test_case "cancel while queued" `Slow test_cancel_queued;
        Alcotest.test_case "cancel mid-iteration yields partial result" `Slow
          test_cancel_mid_iteration;
      ] );
    ( "serve.daemon",
      [
        Alcotest.test_case
          "4 tenants over a socket match batch byte-for-byte" `Slow
          test_serve_matches_batch;
      ] );
  ]
