test/test_smt.ml: Alcotest Array Er_smt Expr Int64 List Model Option QCheck2 QCheck_alcotest Sat Solver
