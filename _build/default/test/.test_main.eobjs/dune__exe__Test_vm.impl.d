test/test_vm.ml: Alcotest Er_ir Er_smt Er_vm List
