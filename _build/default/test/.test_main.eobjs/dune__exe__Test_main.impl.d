test/test_main.ml: Alcotest Test_baselines Test_corpus Test_end_to_end Test_invariants Test_ir Test_select Test_smt Test_trace Test_vm
