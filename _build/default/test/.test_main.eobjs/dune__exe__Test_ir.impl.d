test/test_ir.ml: Alcotest Array Builder Er_corpus Er_ir List Parser Pretty Printf QCheck2 QCheck_alcotest String Validate
