test/test_select.ml: Alcotest Er_corpus Er_ir Er_select Er_smt Er_symex Er_vm List Option
