test/test_corpus.ml: Alcotest Bug Er_core Er_corpus Er_ir Er_vm List Printf Registry
