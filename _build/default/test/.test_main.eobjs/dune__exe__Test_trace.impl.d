test/test_trace.ml: Alcotest Array Bytes Char Decoder Encoder Er_trace Int64 List Packet Printf QCheck2 QCheck_alcotest Ring
