test/test_baselines.ml: Alcotest Er_baselines Er_core Er_corpus Er_ir Er_vm Printf
