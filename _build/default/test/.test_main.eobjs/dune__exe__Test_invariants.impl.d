test/test_invariants.ml: Alcotest Er_core Er_corpus Er_invariants Er_ir List
