test/test_end_to_end.ml: Alcotest Bug Er_core Er_corpus Er_ir Er_vm List Running_example
