(* Tests for the baselines: rr-style record/replay fidelity and REPT-style
   recovery accuracy degradation. *)

let test_rr_record_replay () =
  (* recording a failing run and replaying the log reproduces the outcome
     exactly *)
  let s = Er_corpus.Registry.running_example in
  let prog = Er_ir.Prog.of_program s.Er_corpus.Bug.program in
  let inputs, seed = s.Er_corpus.Bug.failing_workload ~occurrence:1 in
  let r1, log = Er_baselines.Rr.record ~sched_seed:seed prog inputs in
  let r2 = Er_baselines.Rr.replay ~sched_seed:seed prog log in
  (match r1.Er_vm.Interp.outcome, r2.Er_vm.Interp.outcome with
   | Er_vm.Interp.Failed f1, Er_vm.Interp.Failed f2 ->
       Alcotest.(check bool) "same failure" true
         (Er_vm.Failure.same_failure f1 f2)
   | _ -> Alcotest.fail "record/replay outcome mismatch");
  Alcotest.(check int) "same instruction count" r1.Er_vm.Interp.instr_count
    r2.Er_vm.Interp.instr_count

let test_rr_log_nonempty () =
  let s = Er_corpus.Registry.running_example in
  let prog = Er_ir.Prog.of_program s.Er_corpus.Bug.program in
  let inputs, seed = s.Er_corpus.Bug.failing_workload ~occurrence:1 in
  let _r, log = Er_baselines.Rr.record ~sched_seed:seed prog inputs in
  Alcotest.(check bool) "inputs logged" true (log.Er_baselines.Rr.inputs <> []);
  Alcotest.(check bool) "stores logged" true (log.Er_baselines.Rr.undo <> []);
  Alcotest.(check bool) "bytes accounted" true (log.Er_baselines.Rr.bytes > 0)

let test_rept_degrades_with_window () =
  (* the REPT accuracy claim: correctness does not improve as the window
     (trace length analysed) grows, and strictly degrades somewhere *)
  match Er_corpus.Registry.find "libpng-2004-0597" with
  | None -> Alcotest.fail "corpus entry missing"
  | Some s ->
      let prog = Er_ir.Prog.of_program s.Er_corpus.Bug.program in
      let inputs, seed = s.Er_corpus.Bug.failing_workload ~occurrence:1 in
      let _r, defs = Er_baselines.Rept.record ~sched_seed:seed prog inputs in
      let series =
        Er_baselines.Rept.accuracy_series ~prog ~defs
          ~windows:[ 50; 500; 5000 ]
      in
      let rate (_, (st : Er_baselines.Rept.stats)) =
        float_of_int st.Er_baselines.Rept.correct
        /. float_of_int (max 1 st.Er_baselines.Rept.total)
      in
      (match series with
       | [ a; _b; c ] ->
           Alcotest.(check bool) "accuracy does not improve with length" true
             (rate a >= rate c);
           Alcotest.(check bool) "long windows have incorrect values" true
             ((fun (_, st) -> st.Er_baselines.Rept.incorrect > 0) c)
       | _ -> Alcotest.fail "series length")

let test_rept_short_window_accurate () =
  (* near the crash REPT is mostly right — that is why it is useful for
     short traces (section 2.2) *)
  match Er_corpus.Registry.find "php-74194" with
  | None -> Alcotest.fail "corpus entry missing"
  | Some s ->
      let prog = Er_ir.Prog.of_program s.Er_corpus.Bug.program in
      let inputs, seed = s.Er_corpus.Bug.failing_workload ~occurrence:1 in
      let _r, defs = Er_baselines.Rept.record ~sched_seed:seed prog inputs in
      let r = Er_baselines.Rept.recover ~prog ~defs ~window:30 in
      let st = Er_baselines.Rept.score r in
      Alcotest.(check bool) "mostly correct near the crash" true
        (float_of_int st.Er_baselines.Rept.correct
         /. float_of_int (max 1 st.Er_baselines.Rept.total)
         > 0.6)

let test_random_selection_weaker () =
  (* random recording of the same volume must not beat ER's selection on
     the bug that needs the most data *)
  match Er_corpus.Registry.find "php-74194" with
  | None -> Alcotest.fail "corpus entry missing"
  | Some s ->
      let er =
        Er_core.Driver.reconstruct ~config:s.Er_corpus.Bug.config
          ~base_prog:s.Er_corpus.Bug.program
          ~workload:s.Er_corpus.Bug.failing_workload ()
      in
      let er_occ = er.Er_core.Driver.occurrences in
      let _ok, rand_occ, _pts =
        Er_baselines.Random_select.reconstruct ~config:s.Er_corpus.Bug.config
          ~seed:137 ~base_prog:s.Er_corpus.Bug.program
          ~workload:s.Er_corpus.Bug.failing_workload ()
      in
      Alcotest.(check bool)
        (Printf.sprintf "random (%d occ) not better than ER (%d occ)" rand_occ
           er_occ)
        true
        (rand_occ >= er_occ)

let suites =
  [
    ( "baselines",
      [
        Alcotest.test_case "rr record/replay fidelity" `Quick test_rr_record_replay;
        Alcotest.test_case "rr log contents" `Quick test_rr_log_nonempty;
        Alcotest.test_case "rept degrades with window" `Quick
          test_rept_degrades_with_window;
        Alcotest.test_case "rept accurate near crash" `Quick
          test_rept_short_window_accurate;
        Alcotest.test_case "random selection not better" `Slow
          test_random_selection_weaker;
      ] );
  ]
