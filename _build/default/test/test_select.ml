(* Tests for key data value selection: bottleneck identification on
   constructed constraint graphs, recording-set cost reduction (the
   paper's worked example), and instrumentation/mapping round trips. *)

open Er_ir.Types
module Expr = Er_smt.Expr
module Cgraph = Er_symex.Cgraph
module Symmem = Er_symex.Symmem

let pt i = { p_func = "foo"; p_block = "body"; p_index = i }

(* Rebuild the Fig. 4 constraint graph: V[x]=1; if(V[c]==0) V[c]=512;
   V[V[x]]=x with x = a + b. *)
let fig4 () =
  let g = Cgraph.create () in
  let mem = Symmem.create () in
  let v = Symmem.alloc mem ~elt_ty:I32 ~size:256 ~heap:true in
  let a = Expr.bv_var "fig4a" ~width:32 and b = Expr.bv_var "fig4b" ~width:32 in
  let c = Expr.bv_var "fig4c" ~width:32 in
  let x = Expr.add a b in
  Cgraph.define g (pt 0) a;       (* inputs are register defs too *)
  Cgraph.define g (pt 1) b;
  Cgraph.define g (pt 2) x;
  Cgraph.define g (pt 3) c;
  Symmem.write v x (Expr.const ~width:32 1L);
  Symmem.write v c (Expr.const ~width:32 512L);
  let vx = Symmem.read v x in
  Cgraph.define g (pt 4) vx;      (* V[x] loaded into a register *)
  Symmem.write v vx x;
  Cgraph.set_assertions g
    [ Expr.ult x (Expr.const ~width:32 256L);
      Expr.ult c (Expr.const ~width:32 256L) ];
  (g, mem, x, c, vx)

let test_bottleneck_fig4 () =
  let g, mem, x, c, vx = fig4 () in
  let b = Er_select.Bottleneck.compute g mem in
  Alcotest.(check int) "three symbolic writes" 3
    b.Er_select.Bottleneck.longest_chain;
  Alcotest.(check int) "largest object is V (1024 bytes)" 1024
    b.Er_select.Bottleneck.largest_object_bytes;
  (* the bottleneck set is {x, c, V[x]} as in section 3.3.2 *)
  let has e = List.exists (Expr.equal e) b.Er_select.Bottleneck.elements in
  Alcotest.(check bool) "x in bottleneck" true (has x);
  Alcotest.(check bool) "c in bottleneck" true (has c);
  Alcotest.(check bool) "V[x] in bottleneck" true (has vx)

let test_recording_reduction_fig4 () =
  (* the paper's reduction: record {x, c}; V[x] is deducible from them *)
  let g, mem, x, c, vx = fig4 () in
  let b = Er_select.Bottleneck.compute g mem in
  let plan = Er_select.Recording.reduce g b.Er_select.Bottleneck.elements in
  Alcotest.(check bool) "reduced cost <= bottleneck cost" true
    (plan.Er_select.Recording.reduced_cost
     <= plan.Er_select.Recording.bottleneck_cost);
  let recorded_points = Er_select.Recording.points plan in
  let point_of e =
    match Cgraph.provenance g e with
    | Some p -> p.Cgraph.pr_point
    | None -> Alcotest.fail "missing provenance"
  in
  let has e =
    List.exists (fun p -> point_compare p (point_of e) = 0) recorded_points
  in
  Alcotest.(check bool) "x recorded" true (has x);
  Alcotest.(check bool) "c recorded" true (has c);
  Alcotest.(check bool) "V[x] deduced, not recorded" false (has vx)

let test_cost_uses_refcount () =
  let g = Cgraph.create () in
  let e = Expr.bv_var "hot" ~width:32 in
  Cgraph.define g (pt 9) e;
  Cgraph.define g (pt 9) e;
  Cgraph.define g (pt 9) e;
  Alcotest.(check (option int)) "4 bytes x 3 executions" (Some 12)
    (Cgraph.cost_of g e)

let test_instrument_and_map () =
  let t = Er_ir.Builder.create () in
  Er_ir.Builder.func t ~name:"main" ~params:[] (fun fb ->
      let v = Er_ir.Builder.input fb I32 "s" in
      let w = Er_ir.Builder.add fb I32 v (Er_ir.Builder.i32 1) in
      Er_ir.Builder.output fb w;
      Er_ir.Builder.ret_void fb);
  let prog = Er_ir.Builder.program t ~main:"main" in
  let target = { p_func = "main"; p_block = "entry"; p_index = 0 } in
  let inst, mapper = Er_select.Instrument.apply prog [ target ] in
  Alcotest.(check int) "one ptwrite inserted" 1
    (Er_select.Instrument.ptwrite_count inst);
  (* instrumented index 1 is the ptwrite; index 2 maps back to base 1 *)
  Alcotest.(check (option string)) "ptwrite maps to None" None
    (Option.map point_to_string
       (mapper { p_func = "main"; p_block = "entry"; p_index = 1 }));
  Alcotest.(check (option string)) "shifted index maps back" (Some "main:entry:1")
    (Option.map point_to_string
       (mapper { p_func = "main"; p_block = "entry"; p_index = 2 }))

let test_instrumented_program_equivalent () =
  (* instrumentation must not change observable behaviour *)
  let s = Er_corpus.Registry.running_example in
  let prog = s.Er_corpus.Bug.program in
  let points =
    [ { p_func = "foo"; p_block = "entry"; p_index = 0 } ]
  in
  let inst, _ = Er_select.Instrument.apply prog points in
  let inputs, seed = s.Er_corpus.Bug.failing_workload ~occurrence:1 in
  let cfg = { Er_vm.Interp.default_config with sched_seed = seed } in
  let r1 = Er_vm.Interp.run ~config:cfg (Er_ir.Prog.of_program prog) inputs in
  let inputs2, _ = s.Er_corpus.Bug.failing_workload ~occurrence:1 in
  let r2 = Er_vm.Interp.run ~config:cfg (Er_ir.Prog.of_program inst) inputs2 in
  Alcotest.(check int) "same instruction count (ptwrite is clock-free)"
    r1.Er_vm.Interp.instr_count r2.Er_vm.Interp.instr_count;
  Alcotest.(check int) "same branch count" r1.Er_vm.Interp.branch_count
    r2.Er_vm.Interp.branch_count

let suites =
  [
    ( "select",
      [
        Alcotest.test_case "fig4 bottleneck set" `Quick test_bottleneck_fig4;
        Alcotest.test_case "fig4 recording reduction" `Quick
          test_recording_reduction_fig4;
        Alcotest.test_case "cost = size x refcount" `Quick test_cost_uses_refcount;
        Alcotest.test_case "instrument + coordinate mapping" `Quick
          test_instrument_and_map;
        Alcotest.test_case "instrumentation preserves behaviour" `Quick
          test_instrumented_program_equivalent;
      ] );
  ]
