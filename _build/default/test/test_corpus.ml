(* Corpus-wide properties: every Table 1 bug fails under its failing
   workload with the declared bug class, every performance workload runs
   to completion, and — the headline property — ER reconstructs every
   failure with a verified test case. *)

open Er_corpus

let kind_matches (s : Bug.spec) (k : Er_vm.Failure.kind) =
  match s.Bug.bug_type, k with
  | "integer overflow", Er_vm.Failure.Out_of_bounds _ -> true
  | "heap buffer overflow", Er_vm.Failure.Out_of_bounds _ -> true
  | "buffer overflow", Er_vm.Failure.Out_of_bounds _ -> true
  | "stack buffer overrun", Er_vm.Failure.Out_of_bounds _ -> true
  | "shared data corruption", Er_vm.Failure.Out_of_bounds _ -> true
  | "NULL pointer dereference", Er_vm.Failure.Null_deref -> true
  | "inconsistent data structure", Er_vm.Failure.Assert_failed _ -> true
  | "use-after-free", Er_vm.Failure.Use_after_free _ -> true
  (* a UAF race can also corrupt the structure's indices first and
     manifest as an out-of-bounds access under some interleavings *)
  | "use-after-free", Er_vm.Failure.Out_of_bounds _ -> true
  | _ -> false

let test_failing_workloads_fail () =
  List.iter
    (fun (s : Bug.spec) ->
       let prog = Er_ir.Prog.of_program s.Bug.program in
       let inputs, seed = s.Bug.failing_workload ~occurrence:1 in
       let config = { Er_vm.Interp.default_config with sched_seed = seed } in
       let r = Er_vm.Interp.run ~config prog inputs in
       match r.Er_vm.Interp.outcome with
       | Er_vm.Interp.Failed f ->
           if not (kind_matches s f.Er_vm.Failure.kind) then
             Alcotest.fail
               (Printf.sprintf "%s: declared %s but crashed with %s"
                  s.Bug.name s.Bug.bug_type
                  (Er_vm.Failure.kind_to_string f.Er_vm.Failure.kind))
       | Er_vm.Interp.Finished _ ->
           (* racy bugs may need another occurrence; require one within 8 *)
           let fired = ref false in
           for occ = 2 to 8 do
             if not !fired then begin
               let inputs, seed = s.Bug.failing_workload ~occurrence:occ in
               let config =
                 { Er_vm.Interp.default_config with sched_seed = seed }
               in
               match (Er_vm.Interp.run ~config prog inputs).Er_vm.Interp.outcome with
               | Er_vm.Interp.Failed _ -> fired := true
               | Er_vm.Interp.Finished _ -> ()
             end
           done;
           if not !fired then
             Alcotest.fail (s.Bug.name ^ ": failure never fired"))
    Registry.table1

let test_perf_workloads_finish () =
  List.iter
    (fun (s : Bug.spec) ->
       let prog = Er_ir.Prog.of_program s.Bug.program in
       let r = Er_vm.Interp.run prog (s.Bug.perf_inputs ()) in
       match r.Er_vm.Interp.outcome with
       | Er_vm.Interp.Finished _ -> ()
       | Er_vm.Interp.Failed f ->
           Alcotest.fail
             (Printf.sprintf "%s perf workload failed: %s" s.Bug.name
                (Er_vm.Failure.to_string f)))
    Registry.all

let test_reconstructs_all () =
  (* the Table 1 headline: every failure is reproduced and verifies *)
  List.iter
    (fun (s : Bug.spec) ->
       let r =
         Er_core.Driver.reconstruct ~config:s.Bug.config
           ~base_prog:s.Bug.program ~workload:s.Bug.failing_workload ()
       in
       match r.Er_core.Driver.status with
       | Er_core.Driver.Reproduced { verified = Some v; _ } ->
           if not v.Er_core.Verify.ok then
             Alcotest.fail
               (Printf.sprintf "%s: reproduced but not verified (%s)"
                  s.Bug.name v.Er_core.Verify.detail)
       | Er_core.Driver.Reproduced { verified = None; _ } -> ()
       | Er_core.Driver.Gave_up m ->
           Alcotest.fail (Printf.sprintf "%s: gave up (%s)" s.Bug.name m))
    (Registry.table1 @ Registry.case_studies)

let test_occurrence_distribution () =
  (* shape of Table 1: at least one bug needs only one occurrence, most
     need more, and php-74194 needs the most *)
  let occs =
    List.map
      (fun (s : Bug.spec) ->
         let r =
           Er_core.Driver.reconstruct ~config:s.Bug.config
             ~base_prog:s.Bug.program ~workload:s.Bug.failing_workload ()
         in
         (s.Bug.name, r.Er_core.Driver.occurrences))
      Registry.table1
  in
  let single = List.filter (fun (_, o) -> o = 1) occs in
  let multi = List.filter (fun (_, o) -> o > 1) occs in
  Alcotest.(check bool) "some need only one occurrence" true (single <> []);
  Alcotest.(check bool) "most need reoccurrences" true
    (List.length multi > List.length single);
  let php74194 = List.assoc "php-74194" occs in
  Alcotest.(check bool) "php-74194 needs the most occurrences" true
    (List.for_all (fun (_, o) -> o <= php74194) occs)

let suites =
  [
    ( "corpus",
      [
        Alcotest.test_case "failing workloads fail as declared" `Quick
          test_failing_workloads_fail;
        Alcotest.test_case "perf workloads finish" `Quick
          test_perf_workloads_finish;
        Alcotest.test_case "ER reconstructs all bugs (verified)" `Slow
          test_reconstructs_all;
        Alcotest.test_case "occurrence distribution shape" `Slow
          test_occurrence_distribution;
      ] );
  ]
