(* Tests for the EIR front end: builder well-formedness checks, validator
   diagnostics, pretty-printer/parser round trips (including a randomized
   program generator). *)

open Er_ir
open Er_ir.Types
module B = Builder

let small_prog () =
  let t = B.create () in
  B.global t ~name:"g" ~ty:I32 ~size:8 ~init:(Array.make 8 3L) ();
  B.func t ~name:"add3" ~params:[ ("x", I32) ] ~ret:I32 (fun fb ->
      let y = B.add fb I32 (B.reg "x") (B.i32 3) in
      B.ret fb (Some y));
  B.func t ~name:"main" ~params:[] (fun fb ->
      let v = B.input fb I32 "in" in
      let r = B.call fb "add3" [ v ] in
      B.output fb r;
      B.ret_void fb);
  B.program t ~main:"main"

let test_builder_validates () = ignore (small_prog ())

let test_builder_rejects_unterminated () =
  let t = B.create () in
  match
    B.func t ~name:"f" ~params:[] (fun fb -> ignore (B.add fb I32 (B.i32 1) (B.i32 2)))
  with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "unterminated function accepted"

let test_builder_rejects_unknown_callee () =
  let t = B.create () in
  B.func t ~name:"main" ~params:[] (fun fb ->
      B.call_void fb "missing" [];
      B.ret_void fb);
  match B.program t ~main:"main" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown callee accepted"

let test_validator_unknown_label () =
  let bad =
    {
      globals = [];
      funcs =
        [
          {
            fname = "main";
            params = [];
            ret_ty = None;
            blocks = [ { label = "entry"; instrs = [||]; term = Br "nowhere" } ];
          };
        ];
      main = "main";
    }
  in
  match Validate.check bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "branch to unknown label accepted"

let test_roundtrip_small () =
  let p = small_prog () in
  let text = Pretty.program_to_string p in
  match Parser.parse_string text with
  | Error e -> Alcotest.fail ("reparse failed: " ^ e)
  | Ok p' ->
      Alcotest.(check string) "round trip is stable" text
        (Pretty.program_to_string p')

let test_parse_error_reported () =
  match Parser.parse_string "func main() { entry: frobnicate }" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted"

let test_parse_corpus_programs () =
  (* every corpus program must survive a print/parse/print round trip *)
  List.iter
    (fun (s : Er_corpus.Bug.spec) ->
       let text = Pretty.program_to_string s.Er_corpus.Bug.program in
       match Parser.parse_string text with
       | Error e ->
           Alcotest.fail
             (Printf.sprintf "%s failed reparse: %s" s.Er_corpus.Bug.name e)
       | Ok p' ->
           Alcotest.(check string)
             (s.Er_corpus.Bug.name ^ " round trip")
             text (Pretty.program_to_string p'))
    Er_corpus.Registry.all

(* randomized straight-line programs: pretty -> parse -> pretty fixpoint *)
let qcheck_roundtrip_random =
  let gen_prog =
    let open QCheck2.Gen in
    let ty = oneofl [ I8; I16; I32; I64 ] in
    let instr idx =
      let dst = Printf.sprintf "%%r%d" idx in
      let operand = oneofl [ Reg "%seed"; Imm (5L, I32); Imm (250L, I32) ] in
      oneof
        [
          map2 (fun op (a, b) -> Bin { dst; op; ty = I32; a; b })
            (oneofl [ Add; Sub; Mul; And; Or; Xor ])
            (pair operand operand);
          map2 (fun op (a, b) -> Cmp { dst; op; ty = I32; a; b })
            (oneofl [ Eq; Ne; Ult; Sge ])
            (pair operand operand);
          map (fun t -> Input { dst; ty = t; stream = "s" }) ty;
          return (Output { v = Reg "%seed" });
        ]
    in
    let* n = int_range 1 12 in
    let* instrs =
      flatten_l (List.init n (fun i -> instr i))
    in
    let f =
      {
        fname = "main";
        params = [];
        ret_ty = None;
        blocks =
          [
            {
              label = "entry";
              instrs =
                Array.of_list
                  (Input { dst = "%seed"; ty = I32; stream = "s" } :: instrs);
              term = Ret None;
            };
          ];
      }
    in
    return { globals = []; funcs = [ f ]; main = "main" }
  in
  QCheck2.Test.make ~name:"pretty/parse round trip on random programs"
    ~count:80 gen_prog
    (fun p ->
       let text = Pretty.program_to_string p in
       match Parser.parse_string text with
       | Error _ -> false
       | Ok p' -> String.equal text (Pretty.program_to_string p'))

let suites =
  [
    ( "ir",
      [
        Alcotest.test_case "builder validates" `Quick test_builder_validates;
        Alcotest.test_case "builder rejects unterminated" `Quick
          test_builder_rejects_unterminated;
        Alcotest.test_case "builder rejects unknown callee" `Quick
          test_builder_rejects_unknown_callee;
        Alcotest.test_case "validator catches bad label" `Quick
          test_validator_unknown_label;
        Alcotest.test_case "round trip (small)" `Quick test_roundtrip_small;
        Alcotest.test_case "parse error reported" `Quick test_parse_error_reported;
        Alcotest.test_case "round trip (entire corpus)" `Quick
          test_parse_corpus_programs;
        QCheck_alcotest.to_alcotest qcheck_roundtrip_random;
      ] );
  ]
