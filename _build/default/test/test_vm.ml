(* Tests for the production runtime: arithmetic semantics against the SMT
   evaluator, memory-safety fault detection, threading/scheduling, and
   determinism. *)

open Er_ir.Types
module B = Er_ir.Builder
module I = Er_vm.Interp

let run_prog ?(config = I.default_config) p inputs =
  I.run ~config (Er_ir.Prog.of_program p) (Er_vm.Inputs.make inputs)

let expect_failure name p inputs pred =
  match (run_prog p inputs).I.outcome with
  | I.Failed f ->
      if not (pred f.Er_vm.Failure.kind) then
        Alcotest.fail
          (name ^ ": wrong failure " ^ Er_vm.Failure.to_string f)
  | I.Finished _ -> Alcotest.fail (name ^ ": expected failure")

let simple_main body =
  let t = B.create () in
  B.func t ~name:"main" ~params:[] body;
  B.program t ~main:"main"

let test_arith_matches_smt () =
  (* for a batch of (op, a, b): VM result = SMT eval result *)
  let cases =
    [ (Add, 250L, 10L); (Sub, 3L, 10L); (Mul, 77L, 99L); (Udiv, 200L, 7L);
      (Urem, 200L, 7L); (And, 0xF0L, 0x3CL); (Or, 1L, 0x80L);
      (Xor, 0xFFL, 0x0FL); (Shl, 1L, 6L); (Lshr, 0x80L, 3L); (Ashr, 0x80L, 3L) ]
  in
  List.iter
    (fun (op, a, b) ->
       let p =
         simple_main (fun fb ->
             let r = B.bin fb op I8 (B.imm64 a I8) (B.imm64 b I8) in
             B.output fb r;
             B.ret_void fb)
       in
       let r = run_prog p [] in
       let smt_op =
         match op with
         | Add -> Er_smt.Expr.Add | Sub -> Er_smt.Expr.Sub
         | Mul -> Er_smt.Expr.Mul | Udiv -> Er_smt.Expr.Udiv
         | Urem -> Er_smt.Expr.Urem | And -> Er_smt.Expr.And
         | Or -> Er_smt.Expr.Or | Xor -> Er_smt.Expr.Xor
         | Shl -> Er_smt.Expr.Shl | Lshr -> Er_smt.Expr.Lshr
         | Ashr -> Er_smt.Expr.Ashr
       in
       let want =
         Er_smt.Expr.eval_binop smt_op 8 (Er_smt.Ty.truncate 8 a)
           (Er_smt.Ty.truncate 8 b)
       in
       Alcotest.(check (list int64)) "vm = smt" [ want ] r.I.outputs)
    cases

let test_null_deref () =
  expect_failure "null"
    (simple_main (fun fb ->
         let v = B.load fb I32 B.null in
         B.output fb v;
         B.ret_void fb))
    []
    (function Er_vm.Failure.Null_deref -> true | _ -> false)

let test_out_of_bounds () =
  expect_failure "oob"
    (simple_main (fun fb ->
         let buf = B.alloc fb I32 (B.i32 4) in
         let p = B.gep fb buf (B.i32 4) in
         B.store fb I32 (B.i32 1) p;
         B.ret_void fb))
    []
    (function Er_vm.Failure.Out_of_bounds _ -> true | _ -> false)

let test_use_after_free () =
  expect_failure "uaf"
    (simple_main (fun fb ->
         let buf = B.alloc fb I32 (B.i32 4) in
         B.free fb buf;
         let v = B.load fb I32 buf in
         B.output fb v;
         B.ret_void fb))
    []
    (function Er_vm.Failure.Use_after_free _ -> true | _ -> false)

let test_double_free () =
  expect_failure "dfree"
    (simple_main (fun fb ->
         let buf = B.alloc fb I32 (B.i32 4) in
         B.free fb buf;
         B.free fb buf;
         B.ret_void fb))
    []
    (function Er_vm.Failure.Double_free _ -> true | _ -> false)

let test_div_by_zero () =
  expect_failure "div0"
    (simple_main (fun fb ->
         let z = B.input fb I32 "in" in
         let r = B.udiv fb I32 (B.i32 7) z in
         B.output fb r;
         B.ret_void fb))
    [ ("in", [ 0L ]) ]
    (function Er_vm.Failure.Div_by_zero -> true | _ -> false)

let test_stack_release () =
  (* alloca'd objects fault after the frame returns *)
  let t = B.create () in
  B.global t ~name:"leak" ~ty:I64 ~size:1 ();
  B.func t ~name:"f" ~params:[] (fun fb ->
      let buf = B.alloca fb I32 (B.i32 2) in
      let bi = B.cast fb Ptrtoint ~from_ty:Ptr ~to_ty:I64 buf in
      B.store fb I64 bi (B.gep fb (B.glob "leak") (B.i32 0));
      B.ret_void fb);
  B.func t ~name:"main" ~params:[] (fun fb ->
      B.call_void fb "f" [];
      let bi = B.load fb I64 (B.gep fb (B.glob "leak") (B.i32 0)) in
      let p = B.cast fb Inttoptr ~from_ty:I64 ~to_ty:Ptr bi in
      let v = B.load fb I32 p in
      B.output fb v;
      B.ret_void fb);
  expect_failure "dangling stack" (B.program t ~main:"main") []
    (function Er_vm.Failure.Use_after_free _ -> true | _ -> false)

let test_input_exhausted () =
  expect_failure "eof"
    (simple_main (fun fb ->
         let v = B.input fb I32 "in" in
         B.output fb v;
         let w = B.input fb I32 "in" in
         B.output fb w;
         B.ret_void fb))
    [ ("in", [ 1L ]) ]
    (function Er_vm.Failure.Input_exhausted _ -> true | _ -> false)

let counter_prog () =
  (* two threads increment a shared counter under a lock *)
  let t = B.create () in
  B.global t ~name:"ctr" ~ty:I64 ~size:1 ();
  B.global t ~name:"mtx" ~ty:I64 ~size:1 ();
  B.func t ~name:"worker" ~params:[ ("n", I32) ] (fun fb ->
      let i = B.alloca fb I32 (B.i32 1) in
      B.store fb I32 (B.i32 0) i;
      B.br fb "loop";
      B.block fb "loop";
      let iv = B.load fb I32 i in
      let more = B.ult fb I32 iv (B.reg "n") in
      B.condbr fb more "body" "done";
      B.block fb "body";
      B.lock fb (B.glob "mtx");
      let c = B.load fb I64 (B.gep fb (B.glob "ctr") (B.i32 0)) in
      B.store fb I64 (B.add fb I64 c (B.imm64 1L I64))
        (B.gep fb (B.glob "ctr") (B.i32 0));
      B.unlock fb (B.glob "mtx");
      B.store fb I32 (B.add fb I32 iv (B.i32 1)) i;
      B.br fb "loop";
      B.block fb "done";
      B.ret_void fb);
  B.func t ~name:"main" ~params:[] (fun fb ->
      B.spawn fb "worker" [ B.i32 200 ];
      B.call_void fb "worker" [ B.i32 200 ];
      B.join fb;
      let c = B.load fb I64 (B.gep fb (B.glob "ctr") (B.i32 0)) in
      B.output fb c;
      B.ret_void fb);
  B.program t ~main:"main"

let test_threads_locks () =
  (* under the lock the count is exact for every schedule seed *)
  List.iter
    (fun seed ->
       let config = { I.default_config with sched_seed = seed } in
       let r = run_prog ~config (counter_prog ()) [] in
       match r.I.outcome with
       | I.Finished _ ->
           Alcotest.(check (list int64)) "counter" [ 400L ] r.I.outputs
       | I.Failed f -> Alcotest.fail (Er_vm.Failure.to_string f))
    [ 0; 1; 2; 3 ]

let test_determinism () =
  (* same seed -> identical instruction count and branch count *)
  let p = counter_prog () in
  let config = { I.default_config with sched_seed = 7 } in
  let a = run_prog ~config p [] and b = run_prog ~config p [] in
  Alcotest.(check int) "instrs" a.I.instr_count b.I.instr_count;
  Alcotest.(check int) "branches" a.I.branch_count b.I.branch_count

let test_seed_changes_schedule () =
  (* remove the lock: different seeds can lose updates differently — here
     we only require that schedules (instr interleavings) vary, which we
     observe through switch counts *)
  let count_switches seed =
    let n = ref 0 in
    let hooks =
      { I.no_hooks with I.on_switch = Some (fun ~tid:_ ~clock:_ -> incr n) }
    in
    let config = { I.default_config with sched_seed = seed; hooks } in
    ignore (run_prog ~config (counter_prog ()) []);
    !n
  in
  Alcotest.(check bool) "some switches happen" true (count_switches 1 > 2)

let test_hang_detection () =
  let p =
    simple_main (fun fb ->
        B.br fb "loop";
        B.block fb "loop";
        B.br fb "loop")
  in
  let config = { I.default_config with max_instrs = 10_000 } in
  match (run_prog ~config p []).I.outcome with
  | I.Failed { Er_vm.Failure.kind = Er_vm.Failure.Hang; _ } -> ()
  | I.Failed f -> Alcotest.fail (Er_vm.Failure.to_string f)
  | I.Finished _ -> Alcotest.fail "expected hang"

let suites =
  [
    ( "vm",
      [
        Alcotest.test_case "arith matches smt semantics" `Quick test_arith_matches_smt;
        Alcotest.test_case "null deref" `Quick test_null_deref;
        Alcotest.test_case "out of bounds" `Quick test_out_of_bounds;
        Alcotest.test_case "use after free" `Quick test_use_after_free;
        Alcotest.test_case "double free" `Quick test_double_free;
        Alcotest.test_case "division by zero" `Quick test_div_by_zero;
        Alcotest.test_case "dangling stack object" `Quick test_stack_release;
        Alcotest.test_case "input exhausted" `Quick test_input_exhausted;
        Alcotest.test_case "threads + locks" `Quick test_threads_locks;
        Alcotest.test_case "determinism per seed" `Quick test_determinism;
        Alcotest.test_case "scheduler emits switches" `Quick test_seed_changes_schedule;
        Alcotest.test_case "hang detection" `Quick test_hang_detection;
      ] );
  ]
