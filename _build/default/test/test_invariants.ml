(* Tests for the Daikon-style invariant engine and MIMIC-style
   localization. *)

module D = Er_invariants.Daikon

let test_infer_constant () =
  match D.infer_slot [ 5L; 5L; 5L ] with
  | [ D.Constant 5L ] -> ()
  | _ -> Alcotest.fail "expected constant invariant"

let test_infer_range_and_nonzero () =
  let invs = D.infer_slot [ 2L; 9L; 4L; 7L; 3L ] in
  let has p = List.exists p invs in
  Alcotest.(check bool) "range" true
    (has (function D.Range { lo = 2L; hi = 9L } -> true | _ -> false));
  Alcotest.(check bool) "nonzero" true
    (has (function D.Non_zero -> true | _ -> false))

let test_infer_modulus () =
  let invs = D.infer_slot [ 4L; 8L; 12L; 16L; 20L ] in
  Alcotest.(check bool) "mod 2 = 0 found" true
    (List.exists
       (function D.Modulus { m = 2L; r = 0L } -> true | _ -> false)
       invs)

let test_infer_pairs () =
  let entries = [ [| 3L; 3L; 10L |]; [| 5L; 5L; 11L |]; [| 1L; 1L; 2L |] ] in
  let invs = D.infer_pairs entries in
  Alcotest.(check bool) "arg0 = arg1" true
    (List.exists
       (function D.Eq_slots (D.Arg 0, D.Arg 1) -> true | _ -> false)
       invs);
  Alcotest.(check bool) "arg0 <= arg2" true
    (List.exists
       (function D.Le_slots (D.Arg 0, D.Arg 2) -> true | _ -> false)
       invs)

let test_check_flags_violation () =
  let obs = D.observations () in
  List.iter (fun v -> D.record_enter obs ~func:"f" [ v ]) [ 1L; 2L; 3L ];
  let invs = D.infer obs in
  let bad = D.observations () in
  D.record_enter bad ~func:"f" [ 99L ];
  let vios = D.check invs bad in
  Alcotest.(check bool) "violation found" true (vios <> []);
  let clean = D.observations () in
  D.record_enter clean ~func:"f" [ 2L ];
  Alcotest.(check (list string)) "no violation on in-range value" []
    (List.map (fun v -> v.D.where) (D.check invs clean))

let test_od_localization_direct () =
  (* even without ER in the loop, the violated invariants implicate the
     buggy function *)
  let spec = Er_corpus.Coreutils_od.spec in
  let prog = Er_ir.Prog.of_program spec.Er_corpus.Bug.program in
  let passing = List.init 4 Er_corpus.Coreutils_od.passing_inputs in
  let failing, _ = spec.Er_corpus.Bug.failing_workload ~occurrence:1 in
  let report = Er_invariants.Localize.localize ~prog ~passing ~failing in
  match report.Er_invariants.Localize.ranked_functions with
  | (top, _) :: _ -> Alcotest.(check string) "root cause" "dump_block" top
  | [] -> Alcotest.fail "no candidates"

let test_er_and_direct_agree () =
  (* the section 5.4 claim: localization from the ER-reconstructed
     execution matches localization from the original failing input *)
  let spec = Er_corpus.Coreutils_od.spec in
  let prog = Er_ir.Prog.of_program spec.Er_corpus.Bug.program in
  let passing = List.init 4 Er_corpus.Coreutils_od.passing_inputs in
  let r =
    Er_core.Driver.reconstruct ~config:spec.Er_corpus.Bug.config
      ~base_prog:spec.Er_corpus.Bug.program
      ~workload:spec.Er_corpus.Bug.failing_workload ()
  in
  match r.Er_core.Driver.status with
  | Er_core.Driver.Gave_up m -> Alcotest.fail ("reconstruction gave up: " ^ m)
  | Er_core.Driver.Reproduced { testcase; _ } ->
      let failing_er = Er_core.Testcase.to_inputs testcase in
      let original, _ = spec.Er_corpus.Bug.failing_workload ~occurrence:1 in
      let top inputs =
        match
          (Er_invariants.Localize.localize ~prog ~passing ~failing:inputs)
            .Er_invariants.Localize.ranked_functions
        with
        | (f, _) :: _ -> f
        | [] -> "(none)"
      in
      Alcotest.(check string) "same top candidate" (top original)
        (top failing_er)

let suites =
  [
    ( "invariants",
      [
        Alcotest.test_case "constant" `Quick test_infer_constant;
        Alcotest.test_case "range + nonzero" `Quick test_infer_range_and_nonzero;
        Alcotest.test_case "modulus" `Quick test_infer_modulus;
        Alcotest.test_case "pairwise" `Quick test_infer_pairs;
        Alcotest.test_case "violation detection" `Quick test_check_flags_violation;
        Alcotest.test_case "od localization (direct)" `Quick
          test_od_localization_direct;
        Alcotest.test_case "ER and direct localization agree" `Slow
          test_er_and_direct_agree;
      ] );
  ]
