(* End-to-end pipeline tests: production run under tracing, trace decode,
   shepherded symbolic execution, key data value selection, iteration,
   test-case generation and verification — on the paper's running example. *)

open Er_corpus

let run_fig3 () =
  let spec = Running_example.spec in
  Er_core.Driver.reconstruct ~config:spec.Bug.config
    ~base_prog:spec.Bug.program ~workload:spec.Bug.failing_workload ()

let cached_result : Er_core.Driver.result option ref = ref None

let result () =
  match !cached_result with
  | Some r -> r
  | None ->
      let r = run_fig3 () in
      cached_result := Some r;
      r

let test_reproduces () =
  let r = result () in
  match r.Er_core.Driver.status with
  | Er_core.Driver.Reproduced { verified; _ } ->
      (match verified with
       | Some v ->
           Alcotest.(check bool) "same failure" true v.Er_core.Verify.same_failure;
           Alcotest.(check bool) "same control flow" true
             v.Er_core.Verify.same_control_flow
       | None -> Alcotest.fail "verification missing")
  | Er_core.Driver.Gave_up msg -> Alcotest.fail ("gave up: " ^ msg)

let test_iterates () =
  (* with the configured small budget, the first attempt must stall:
     control flow alone is not enough (section 5.2: 11/13 failures) *)
  let r = result () in
  Alcotest.(check bool) "needs more than one occurrence" true
    (r.Er_core.Driver.occurrences > 1);
  match r.Er_core.Driver.iterations with
  | first :: _ ->
      (match first.Er_core.Driver.outcome with
       | `Stalled _ -> ()
       | `Complete -> Alcotest.fail "first iteration should stall"
       | `Diverged m -> Alcotest.fail ("diverged: " ^ m))
  | [] -> Alcotest.fail "no iterations recorded"

let test_recording_set_is_small () =
  let r = result () in
  let n = List.length r.Er_core.Driver.recording_points in
  Alcotest.(check bool) "recorded a handful of values" true (n >= 1 && n <= 8)

let test_testcase_fails_same_way () =
  let r = result () in
  match r.Er_core.Driver.status with
  | Er_core.Driver.Reproduced { testcase; _ } ->
      let prog = Er_ir.Prog.of_program Running_example.program in
      let res = Er_vm.Interp.run prog (Er_core.Testcase.to_inputs testcase) in
      (match res.Er_vm.Interp.outcome with
       | Er_vm.Interp.Failed f ->
           (match f.Er_vm.Failure.kind with
            | Er_vm.Failure.Abort_called _ -> ()
            | k ->
                Alcotest.fail
                  ("wrong failure kind: " ^ Er_vm.Failure.kind_to_string k))
       | Er_vm.Interp.Finished _ -> Alcotest.fail "generated input did not crash")
  | Er_core.Driver.Gave_up msg -> Alcotest.fail ("gave up: " ^ msg)

let suites =
  [
    ( "end-to-end.fig3",
      [
        Alcotest.test_case "reproduces and verifies" `Slow test_reproduces;
        Alcotest.test_case "iterates via stalls" `Slow test_iterates;
        Alcotest.test_case "recording set small" `Slow test_recording_set_is_small;
        Alcotest.test_case "generated input crashes" `Slow test_testcase_fails_same_way;
      ] );
  ]
