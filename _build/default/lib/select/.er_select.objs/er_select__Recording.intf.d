lib/select/recording.mli: Er_ir Er_smt Er_symex Hashtbl
