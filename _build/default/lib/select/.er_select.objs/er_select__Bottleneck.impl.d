lib/select/bottleneck.ml: Er_smt Er_symex Hashtbl Int List Option
