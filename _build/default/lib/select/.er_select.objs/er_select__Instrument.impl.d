lib/select/instrument.ml: Array Er_ir Hashtbl List Option
