lib/select/recording.ml: Er_ir Er_smt Er_symex Hashtbl Int List Option
