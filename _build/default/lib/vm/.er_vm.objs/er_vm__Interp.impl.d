lib/vm/interp.ml: Array Er_ir Er_smt Failure Hashtbl Inputs Int64 List Memory Option Printf
