lib/vm/failure.ml: Er_ir Fmt List Printf String
