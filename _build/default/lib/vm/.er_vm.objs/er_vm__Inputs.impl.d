lib/vm/inputs.ml: Array Char Fmt Hashtbl Int64 List Option String
