lib/vm/memory.ml: Array Er_ir Failure Hashtbl Int64 Option Printf
