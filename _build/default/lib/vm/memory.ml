(* Concrete memory: a store of typed objects addressed by (object id,
   cell index), with pointers packed into int64 register values as
   [obj << 32 | index].  Object id 0 is the null object, so the null
   pointer is the integer 0.  Bounds, liveness and access-width checks
   implement the fail-stop crash detection of the runtime. *)

open Er_ir.Types

type obj = {
  o_id : int;
  o_elt_ty : ty;
  o_size : int;
  o_cells : int64 array;
  o_heap : bool;
  mutable o_freed : bool;
}

type t = {
  objects : (int, obj) Hashtbl.t;
  mutable next_id : int;
  mutable live_cells : int;
  mutable peak_cells : int;
}

let create () =
  { objects = Hashtbl.create 64; next_id = 1; live_cells = 0; peak_cells = 0 }

(* --- pointer packing -------------------------------------------------- *)

let ptr ~obj ~index =
  Int64.logor
    (Int64.shift_left (Int64.of_int obj) 32)
    (Int64.logand (Int64.of_int index) 0xFFFFFFFFL)

let ptr_obj (p : int64) = Int64.to_int (Int64.shift_right_logical p 32)

(* index is a signed 32-bit offset so that negative GEPs behave like C *)
let ptr_index (p : int64) = Int64.to_int (Int64.of_int32 (Int64.to_int32 p))

let null = 0L
let is_null p = Int64.equal p 0L

(* --- allocation ------------------------------------------------------- *)

let max_object_cells = 1 lsl 24

let alloc t ~elt_ty ~size ~heap =
  if size < 0 || size > max_object_cells then None
  else begin
    let id = t.next_id in
    t.next_id <- id + 1;
    let o =
      { o_id = id; o_elt_ty = elt_ty; o_size = size;
        o_cells = Array.make (max size 1) 0L; o_heap = heap; o_freed = false }
    in
    Hashtbl.replace t.objects id o;
    t.live_cells <- t.live_cells + size;
    if t.live_cells > t.peak_cells then t.peak_cells <- t.live_cells;
    Some (ptr ~obj:id ~index:0)
  end

let find t id = Hashtbl.find_opt t.objects id

let free t p : (unit, Failure.kind) result =
  if is_null p then Error Failure.Null_deref
  else
    match find t (ptr_obj p) with
    | None -> Error Failure.Invalid_pointer
    | Some o ->
        if o.o_freed then Error (Failure.Double_free { obj = o.o_id })
        else if not o.o_heap then Error Failure.Invalid_pointer
        else begin
          o.o_freed <- true;
          t.live_cells <- t.live_cells - o.o_size;
          Ok ()
        end

(* Free a stack object when its frame returns (dangling pointers to it
   then fault as use-after-free). *)
let release_stack t id =
  match find t id with
  | Some o when not o.o_freed ->
      o.o_freed <- true;
      t.live_cells <- t.live_cells - o.o_size
  | Some _ | None -> ()

(* --- access ------------------------------------------------------------ *)

let check_access t p ~ty : (obj * int, Failure.kind) result =
  if is_null p then Error Failure.Null_deref
  else
    match find t (ptr_obj p) with
    | None -> Error Failure.Invalid_pointer
    | Some o ->
        if o.o_freed then Error (Failure.Use_after_free { obj = o.o_id })
        else begin
          let index = ptr_index p in
          if index < 0 || index >= o.o_size then
            Error (Failure.Out_of_bounds { obj = o.o_id; index; size = o.o_size })
          else if o.o_elt_ty <> ty then
            Error
              (Failure.Access_type_error
                 (Printf.sprintf "object of %s accessed as %s"
                    (ty_name o.o_elt_ty) (ty_name ty)))
          else Ok (o, index)
        end

let load t p ~ty : (int64, Failure.kind) result =
  match check_access t p ~ty with
  | Error e -> Error e
  | Ok (o, index) -> Ok o.o_cells.(index)

let store t p ~ty v : (int * int * int64, Failure.kind) result =
  match check_access t p ~ty with
  | Error e -> Error e
  | Ok (o, index) ->
      let old = o.o_cells.(index) in
      o.o_cells.(index) <- v;
      Ok (o.o_id, index, old)

let size_of t id = Option.map (fun o -> o.o_size) (find t id)
let elt_ty_of t id = Option.map (fun o -> o.o_elt_ty) (find t id)
let peak_cells t = t.peak_cells
let object_count t = Hashtbl.length t.objects
