(* Failure detection and identity.

   ER detects fail-stop events (crashes) and programmatically-detected
   errors (assertion failures).  Two occurrences are "the same failure"
   when the failing program counter and call stack match — the criterion
   the paper's shepherded-symbolic-execution engine uses to recognize a
   reoccurrence. *)

type kind =
  | Null_deref
  | Out_of_bounds of { obj : int; index : int; size : int }
  | Use_after_free of { obj : int }
  | Double_free of { obj : int }
  | Invalid_pointer
  | Access_type_error of string
  | Div_by_zero
  | Assert_failed of string
  | Abort_called of string
  | Unreachable_reached
  | Input_exhausted of string
  | Stack_overflow
  | Deadlock
  | Lock_error of string
  | Hang                        (* instruction budget exhausted *)

type t = {
  kind : kind;
  point : Er_ir.Types.point;          (* the failing instruction *)
  stack : Er_ir.Types.point list;     (* call stack, innermost first *)
  thread : int;
}

let kind_to_string = function
  | Null_deref -> "NULL pointer dereference"
  | Out_of_bounds { obj; index; size } ->
      Printf.sprintf "out-of-bounds access (object %d, index %d, size %d)" obj
        index size
  | Use_after_free { obj } -> Printf.sprintf "use-after-free (object %d)" obj
  | Double_free { obj } -> Printf.sprintf "double free (object %d)" obj
  | Invalid_pointer -> "invalid pointer"
  | Access_type_error s -> "access type error: " ^ s
  | Div_by_zero -> "division by zero"
  | Assert_failed msg -> "assertion failed: " ^ msg
  | Abort_called msg -> "abort: " ^ msg
  | Unreachable_reached -> "unreachable executed"
  | Input_exhausted s -> "input exhausted on stream " ^ s
  | Stack_overflow -> "stack overflow"
  | Deadlock -> "deadlock"
  | Lock_error s -> "lock error: " ^ s
  | Hang -> "hang (instruction budget exhausted)"

(* Identity ignores concrete object ids and indices (they vary across
   occurrences) but keeps the bug class, the failing point, and the call
   stack. *)
let same_failure a b =
  let same_kind =
    match a.kind, b.kind with
    | Null_deref, Null_deref -> true
    | Out_of_bounds _, Out_of_bounds _ -> true
    | Use_after_free _, Use_after_free _ -> true
    | Double_free _, Double_free _ -> true
    | Invalid_pointer, Invalid_pointer -> true
    | Access_type_error _, Access_type_error _ -> true
    | Div_by_zero, Div_by_zero -> true
    | Assert_failed m1, Assert_failed m2 -> String.equal m1 m2
    | Abort_called m1, Abort_called m2 -> String.equal m1 m2
    | Unreachable_reached, Unreachable_reached -> true
    | Input_exhausted s1, Input_exhausted s2 -> String.equal s1 s2
    | Stack_overflow, Stack_overflow -> true
    | Deadlock, Deadlock -> true
    | Lock_error m1, Lock_error m2 -> String.equal m1 m2
    | Hang, Hang -> true
    | ( ( Null_deref | Out_of_bounds _ | Use_after_free _ | Double_free _
        | Invalid_pointer | Access_type_error _ | Div_by_zero
        | Assert_failed _ | Abort_called _ | Unreachable_reached
        | Input_exhausted _ | Stack_overflow | Deadlock | Lock_error _
        | Hang ),
        _ ) ->
        false
  in
  same_kind
  && Er_ir.Types.point_compare a.point b.point = 0
  && List.compare Er_ir.Types.point_compare a.stack b.stack = 0

let pp ppf t =
  Fmt.pf ppf "%s at %s (thread %d)@ stack: %a"
    (kind_to_string t.kind)
    (Er_ir.Types.point_to_string t.point)
    t.thread
    Fmt.(list ~sep:(any " <- ") (fun ppf p ->
        Fmt.string ppf (Er_ir.Types.point_to_string p)))
    t.stack

let to_string t = Fmt.str "%a" pp t
