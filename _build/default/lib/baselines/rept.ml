(* A REPT-style baseline: best-effort reverse recovery of data values from
   the control-flow trace plus the post-mortem core dump (section 2, 6).

   REPT walks the instruction trace backward from the crash, inverting
   operations where possible and reading anything it cannot derive from
   the final memory dump.  Its characteristic inaccuracy — values that
   were overwritten between their use and the crash come back wrong —
   is reproduced here: a backward pass recovers each register definition
   either by inversion from crash-state knowledge or by *guessing* from
   the dump, and every guess is scored against the interpreter's ground
   truth.  The experiment reports recovery quality as a function of
   distance from the failure, the paper's "15-60% of values incorrect
   beyond 100K instructions" claim. *)

open Er_ir.Types

type def_record = {
  d_point : point;
  d_reg : string;
  d_value : int64;      (* ground truth *)
}

type recovery = Correct | Incorrect | Unknown_value

type stats = {
  total : int;
  correct : int;
  incorrect : int;
  unknown : int;
}

(* Record a failing run, keeping the def log and the core dump. *)
let record ?(sched_seed = 0) prog inputs =
  let defs = ref [] in
  let hooks =
    {
      Er_vm.Interp.no_hooks with
      Er_vm.Interp.on_def =
        Some
          (fun p ~reg ~value ->
             defs := { d_point = p; d_reg = reg; d_value = value } :: !defs);
    }
  in
  let config = { Er_vm.Interp.default_config with sched_seed; hooks } in
  let r = Er_vm.Interp.run ~config prog inputs in
  (r, List.rev !defs)

(* Is the instruction at [p] invertible, i.e. can the overwritten value be
   derived backward from the new value?  REPT's reverse execution inverts
   additive and xor updates with constant operands and value-preserving
   extensions; everything else (loads, inputs, truncations, multiplies)
   breaks the chain. *)
let invertible prog (p : point) =
  match Er_ir.Prog.instr_at prog p with
  | Bin { op = Add | Sub | Xor; a; b; _ } -> (
      match a, b with
      | Imm _, _ | _, Imm _ -> true
      | _ -> false)
  | Cast { kind = Zext | Sext; _ } -> true
  | Bin _ | Cmp _ | Select _ | Cast _ | Load _ | Store _ | Alloc _ | Free _
  | Gep _ | Call _ | Input _ | Output _ | Ptwrite _ | Assert _ | Spawn _
  | Join | Lock _ | Unlock _ ->
      false
  | exception Invalid_argument _ -> false

(* Backward recovery over the def log.  [window] limits how far back REPT
   analyses (REPT reconstructs bounded fragments).  The newest write to a
   register slot is in the dump; earlier values are recovered through
   chains of invertible updates; when the chain breaks, REPT guesses from
   the dump-visible state, which is where incorrect values come from. *)
let recover ~(prog : Er_ir.Prog.t) ~(defs : def_record list) ~(window : int) :
  (def_record * recovery) list =
  let n = List.length defs in
  let arr = Array.of_list defs in
  let analyzed_from = max 0 (n - window) in
  (* final value per (func, reg): what the dump can tell us *)
  let final_value : (string * string, int64) Hashtbl.t = Hashtbl.create 256 in
  Array.iter
    (fun d -> Hashtbl.replace final_value (d.d_point.p_func, d.d_reg) d.d_value)
    arr;
  let out = ref [] in
  (* per slot, walking backward: is the value of the *next later* def
     recoverable, and through which instruction was it produced? *)
  let chain : (string * string, bool * point) Hashtbl.t = Hashtbl.create 256 in
  for i = n - 1 downto analyzed_from do
    let d = arr.(i) in
    let key = (d.d_point.p_func, d.d_reg) in
    let verdict, recovered =
      match Hashtbl.find_opt chain key with
      | None -> (Correct, true)     (* newest write: straight from the dump *)
      | Some (later_known, later_point) ->
          if later_known && invertible prog later_point then (Correct, true)
          else begin
            (* chain broken: guess the dump value *)
            match Hashtbl.find_opt final_value key with
            | Some g when Int64.equal g d.d_value -> (Correct, false)
            | Some _ -> (Incorrect, false)
            | None -> (Unknown_value, false)
          end
    in
    Hashtbl.replace chain key (recovered, d.d_point);
    out := (d, verdict) :: !out
  done;
  !out

let score recoveries =
  let total = List.length recoveries in
  let count p = List.length (List.filter (fun (_, v) -> v = p) recoveries) in
  {
    total;
    correct = count Correct;
    incorrect = count Incorrect;
    unknown = count Unknown_value;
  }

(* The headline series: recovery quality at increasing trace windows. *)
let accuracy_series ~prog ~defs ~windows =
  List.map
    (fun w ->
       let s = score (recover ~prog ~defs ~window:w) in
       (w, s))
    windows
