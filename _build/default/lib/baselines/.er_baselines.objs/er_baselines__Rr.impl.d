lib/baselines/rr.ml: Er_vm Hashtbl List String
