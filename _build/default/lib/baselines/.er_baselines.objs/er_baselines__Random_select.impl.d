lib/baselines/random_select.ml: Array Er_core Er_ir Er_select Er_smt Er_symex Er_trace Er_vm Hashtbl List
