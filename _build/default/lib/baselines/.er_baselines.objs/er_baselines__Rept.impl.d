lib/baselines/rept.ml: Array Er_ir Er_vm Hashtbl Int64 List
