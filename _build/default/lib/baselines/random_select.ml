(* The random data-recording ablation of section 5.2: record the same
   *amount* of data as key data value selection, but pick the recorded
   elements uniformly at random from all recordable elements of the
   constraint graph instead of from the bottleneck chains. *)

open Er_ir.Types
module Expr = Er_smt.Expr
module Cgraph = Er_symex.Cgraph

(* deterministic xorshift so the ablation is reproducible *)
let next_rand state =
  let x = !state in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  state := x land max_int;
  !state

(* All recordable program points in the constraint graph. *)
let recordable_points (graph : Cgraph.t) : point list =
  let seen = Hashtbl.create 64 in
  let acc = ref [] in
  List.iter
    (fun root ->
       Expr.iter_subterms
         (fun e ->
            match Cgraph.provenance graph e with
            | Some p ->
                let key = point_to_string p.Cgraph.pr_point in
                if not (Hashtbl.mem seen key) then begin
                  Hashtbl.add seen key ();
                  acc := p.Cgraph.pr_point :: !acc
                end
            | None -> ())
         [ root ])
    graph.Cgraph.assertions;
  List.sort point_compare !acc

(* Pick [count] random recordable points. *)
let pick ~seed (graph : Cgraph.t) ~count : point list =
  let pool = Array.of_list (recordable_points graph) in
  let n = Array.length pool in
  if n = 0 then []
  else begin
    let state = ref (max 1 seed) in
    let chosen = Hashtbl.create 8 in
    let out = ref [] in
    let attempts = ref 0 in
    while Hashtbl.length chosen < min count n && !attempts < 64 * count do
      incr attempts;
      let i = next_rand state mod n in
      if not (Hashtbl.mem chosen i) then begin
        Hashtbl.add chosen i ();
        out := pool.(i) :: !out
      end
    done;
    !out
  end

(* Driver variant: iterate like ER but with random selection of the same
   cardinality.  Returns (reproduced?, occurrences used). *)
let reconstruct ?(config = Er_core.Driver.default_config) ~seed
    ~(base_prog : program) ~(workload : Er_core.Driver.workload) () =
  let exec_config = config.Er_core.Driver.exec_config in
  let points : point list ref = ref [] in
  let reproduced = ref false in
  let occ = ref 0 in
  let analyzed = ref 0 in
  while (not !reproduced) && !occ < config.Er_core.Driver.max_occurrences do
    incr occ;
    let inst_prog, mapper = Er_select.Instrument.apply base_prog !points in
    let inst_indexed = Er_ir.Prog.of_program inst_prog in
    let inputs, sched_seed = workload ~occurrence:!occ in
    let enc = Er_trace.Encoder.create () in
    Er_trace.Encoder.start enc;
    let hooks =
      {
        Er_vm.Interp.no_hooks with
        Er_vm.Interp.on_branch = Some (fun b -> Er_trace.Encoder.branch enc b);
        on_switch =
          Some
            (fun ~tid ~clock -> Er_trace.Encoder.thread_switch enc ~tid ~clock);
        on_ptwrite = Some (fun v -> Er_trace.Encoder.ptwrite enc v);
        on_alloc = Some (fun v -> Er_trace.Encoder.ptwrite enc v);
      }
    in
    let vm_config =
      { Er_vm.Interp.default_config with sched_seed; hooks }
    in
    let vm_result = Er_vm.Interp.run ~config:vm_config inst_indexed inputs in
    match vm_result.Er_vm.Interp.outcome with
    | Er_vm.Interp.Finished _ -> ()
    | Er_vm.Interp.Failed failure -> (
        incr analyzed;
        match Er_trace.Decoder.decode (Er_trace.Encoder.finish enc) with
        | Error _ -> ()
        | Ok events ->
            let split = Er_trace.Decoder.split events in
            let sx =
              Er_symex.Exec.run ~config:exec_config inst_indexed ~trace:split
                ~failure ~failure_clock:vm_result.Er_vm.Interp.instr_count
            in
            (match sx.Er_symex.Exec.outcome with
             | Er_symex.Exec.Complete _ -> reproduced := true
             | Er_symex.Exec.Stalled stall ->
                 (* how much would ER record?  match that cardinality *)
                 let bset =
                   Er_select.Bottleneck.compute stall.Er_symex.Exec.graph
                     stall.Er_symex.Exec.memory
                 in
                 let plan =
                   Er_select.Recording.reduce stall.Er_symex.Exec.graph
                     bset.Er_select.Bottleneck.elements
                 in
                 let count =
                   max 1 (List.length (Er_select.Recording.points plan))
                 in
                 let random_points =
                   pick ~seed:(seed + !occ) stall.Er_symex.Exec.graph ~count
                 in
                 let mapped = List.filter_map mapper random_points in
                 let fresh =
                   List.filter
                     (fun p ->
                        not (List.exists (fun q -> point_compare p q = 0) !points))
                     mapped
                 in
                 points := !points @ fresh
             | Er_symex.Exec.Diverged _ -> ()))
  done;
  (!reproduced, !analyzed, List.length !points)
