(* A full record/replay baseline in the style of Mozilla rr.

   rr-class systems persist every program input and enough state to
   deterministically re-execute: our recorder copies every input value,
   every scheduling decision, and keeps an undo log of memory writes (the
   checkpointing work that dominates rr's overhead on write-heavy code).
   The recorder's cost is incurred inside the same interpreter hot loop
   that ER's PT encoder runs in, so the Fig. 6 comparison measures the
   two recording disciplines against identical baseline work. *)

type log = {
  mutable inputs : (string * int64) list;
  mutable schedule : (int * int) list;
  mutable undo : (int * int * int64) list;    (* obj, index, old value *)
  mutable events : int;
  mutable bytes : int;
}

let create () = { inputs = []; schedule = []; undo = []; events = 0; bytes = 0 }

let hooks log =
  {
    Er_vm.Interp.no_hooks with
    Er_vm.Interp.on_input =
      Some
        (fun ~stream ~value ->
           log.inputs <- (stream, value) :: log.inputs;
           log.events <- log.events + 1;
           log.bytes <- log.bytes + 8 + String.length stream);
    on_switch =
      Some
        (fun ~tid ~clock ->
           log.schedule <- (tid, clock) :: log.schedule;
           log.events <- log.events + 1;
           log.bytes <- log.bytes + 12);
    on_store =
      Some
        (fun ~obj ~index ~old_value ~new_value ->
           ignore new_value;
           log.undo <- (obj, index, old_value) :: log.undo;
           log.events <- log.events + 1;
           log.bytes <- log.bytes + 20);
  }

(* Record a run; returns the run result and the log. *)
let record ?(sched_seed = 0) prog inputs =
  let log = create () in
  let config =
    { Er_vm.Interp.default_config with sched_seed; hooks = hooks log }
  in
  let r = Er_vm.Interp.run ~config prog inputs in
  (r, log)

(* Replay: re-execute with the logged inputs and the same seed; rr-level
   fidelity means the outcome and instruction counts match exactly. *)
let replay ?(sched_seed = 0) prog (log : log) =
  let by_stream : (string, int64 list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (s, v) ->
       let l =
         match Hashtbl.find_opt by_stream s with
         | Some l -> l
         | None ->
             let l = ref [] in
             Hashtbl.add by_stream s l;
             l
       in
       l := v :: !l)
    log.inputs;
  let streams =
    Hashtbl.fold (fun s l acc -> (s, !l) :: acc) by_stream []
  in
  let inputs = Er_vm.Inputs.make streams in
  let config = { Er_vm.Interp.default_config with sched_seed } in
  Er_vm.Interp.run ~config prog inputs
