(* Models PHP-74194: heap buffer overflow when serializing an ArrayObject.
   The serializer dispatches per element type; every handler appends to a
   shared output buffer and advances the write cursor by a *data-dependent*
   amount (length digits, escape expansion, reference ids).  The buffer is
   sized for the common case (2 bytes per input byte); a pathological
   element mix advances the cursor faster and the store runs off the end.

   This is the corpus's worst case for shepherded symbolic execution, as
   in the paper (10 occurrences, longest symex time): the cursor is a
   growing sum of shifted symbolic inputs, every append is a symbolic-index
   write, and each stall only exposes the chain prefix reached so far, so
   key data value selection discovers the handlers' cursor registers
   progressively across occurrences. *)

open Er_ir.Types
module B = Er_ir.Builder

(* Each handler: (new_pos, out) <- handler(out, pos); returns new pos. *)
let program : program =
  let t = B.create () in
  (* serialize an integer-ish element: writes value then advances by the
     number of "digit" nibbles present (data-dependent, branch-free) *)
  B.func t ~name:"ser_int" ~params:[ ("out", Ptr); ("pos", I32) ] ~ret:I32
    (fun fb ->
       let v = B.input fb I8 "req" in
       let p = B.gep fb (B.reg "out") (B.reg "pos") in
       B.store fb I8 v p;
       let digits = B.lshr fb I8 v (B.i8 5) in        (* 0..7 *)
       let d32 = B.zext fb ~from_ty:I8 ~to_ty:I32 digits in
       let pos' = B.add fb I32 (B.reg "pos") (B.add fb I32 (B.i32 1) d32) in
       B.ret fb (Some pos'));
  (* serialize a string element: escape expansion — quote and backslash
     bytes cost one extra output byte *)
  B.func t ~name:"ser_str" ~params:[ ("out", Ptr); ("pos", I32) ] ~ret:I32
    (fun fb ->
       let v = B.input fb I8 "req" in
       let p = B.gep fb (B.reg "out") (B.reg "pos") in
       B.store fb I8 v p;
       (* extra = 1 if byte >= 0xC0 (multi-byte continuation), else 0;
          computed without branching, like a table lookup *)
       let hi = B.lshr fb I8 v (B.i8 6) in
       let extra = B.and_ fb I8 hi (B.i8 1) in
       let sec = B.lshr fb I8 hi (B.i8 1) in
       let extra2 = B.add fb I8 extra sec in
       let e32 = B.zext fb ~from_ty:I8 ~to_ty:I32 extra2 in
       let pe = B.gep fb (B.reg "out") (B.add fb I32 (B.reg "pos") e32) in
       B.store fb I8 (B.i8 92) pe;
       let pos' = B.add fb I32 (B.reg "pos") (B.add fb I32 (B.i32 1) e32) in
       B.ret fb (Some pos'));
  (* serialize a reference: writes a back-pointer tag whose width depends
     on the reference id *)
  B.func t ~name:"ser_ref" ~params:[ ("out", Ptr); ("pos", I32) ] ~ret:I32
    (fun fb ->
       let v = B.input fb I8 "req" in
       let id = B.and_ fb I8 v (B.i8 0x3F) in
       let p = B.gep fb (B.reg "out") (B.reg "pos") in
       B.store fb I8 id p;
       let wide = B.lshr fb I8 v (B.i8 4) in
       let w32 = B.zext fb ~from_ty:I8 ~to_ty:I32 wide in
       let p2 = B.gep fb (B.reg "out") (B.add fb I32 (B.reg "pos") w32) in
       B.store fb I8 (B.i8 82) p2;
       let pos' = B.add fb I32 (B.reg "pos") (B.add fb I32 (B.i32 1) w32) in
       B.ret fb (Some pos'));
  (* serialize a float-ish element: exponent digits advance the cursor *)
  B.func t ~name:"ser_float" ~params:[ ("out", Ptr); ("pos", I32) ] ~ret:I32
    (fun fb ->
       let v = B.input fb I8 "req" in
       let p = B.gep fb (B.reg "out") (B.reg "pos") in
       B.store fb I8 v p;
       let exp = B.and_ fb I8 (B.lshr fb I8 v (B.i8 3)) (B.i8 3) in
       let e32 = B.zext fb ~from_ty:I8 ~to_ty:I32 exp in
       let pm = B.gep fb (B.reg "out") (B.add fb I32 (B.reg "pos") e32) in
       B.store fb I8 (B.i8 46) pm;
       let pos' = B.add fb I32 (B.reg "pos") (B.add fb I32 (B.i32 1) e32) in
       B.ret fb (Some pos'));
  (* serialize a key: a mixing hash decides the emitted width *)
  B.func t ~name:"ser_key" ~params:[ ("out", Ptr); ("pos", I32) ] ~ret:I32
    (fun fb ->
       let v = B.input fb I8 "req" in
       let h1 = B.xor fb I8 v (B.lshr fb I8 v (B.i8 4)) in
       let h2 = B.and_ fb I8 (B.mul fb I8 h1 (B.i8 3)) (B.i8 3) in
       let p = B.gep fb (B.reg "out") (B.reg "pos") in
       B.store fb I8 h1 p;
       let w32 = B.zext fb ~from_ty:I8 ~to_ty:I32 h2 in
       let pos' = B.add fb I32 (B.reg "pos") (B.add fb I32 (B.i32 1) w32) in
       B.ret fb (Some pos'));
  B.func t ~name:"main" ~params:[] (fun fb ->
      let len = B.input fb I32 "req" in
      (* the undersized "safe" estimate: 2 bytes per element plus slack *)
      let cap = B.add fb I32 (B.mul fb I32 len (B.i32 2)) (B.i32 8) in
      let out = B.alloc fb I8 cap in
      let i = B.alloca fb I32 (B.i32 1) in
      let posc = B.alloca fb I32 (B.i32 1) in
      B.store fb I32 (B.i32 0) i;
      B.store fb I32 (B.i32 0) posc;
      B.br fb "loop";
      B.block fb "loop";
      let iv = B.load fb I32 i in
      let more = B.ult fb I32 iv len in
      B.condbr fb more "dispatch" "done";
      B.block fb "dispatch";
      let tag = B.input fb I8 "req" in
      let pos = B.load fb I32 posc in
      let t0 = B.eq fb I8 tag (B.i8 0) in
      B.condbr fb t0 "do_int" "not_int";
      B.block fb "not_int";
      let t1 = B.eq fb I8 tag (B.i8 1) in
      B.condbr fb t1 "do_str" "not_str";
      B.block fb "not_str";
      let t2 = B.eq fb I8 tag (B.i8 2) in
      B.condbr fb t2 "do_ref" "not_ref";
      B.block fb "not_ref";
      let t3 = B.eq fb I8 tag (B.i8 3) in
      B.condbr fb t3 "do_float" "do_key";
      B.block fb "do_float";
      let p4 = B.call fb "ser_float" [ out; pos ] in
      B.store fb I32 p4 posc;
      B.br fb "next";
      B.block fb "do_key";
      let p5 = B.call fb "ser_key" [ out; pos ] in
      B.store fb I32 p5 posc;
      B.br fb "next";
      B.block fb "do_int";
      let p1 = B.call fb "ser_int" [ out; pos ] in
      B.store fb I32 p1 posc;
      B.br fb "next";
      B.block fb "do_str";
      let p2 = B.call fb "ser_str" [ out; pos ] in
      B.store fb I32 p2 posc;
      B.br fb "next";
      B.block fb "do_ref";
      let p3 = B.call fb "ser_ref" [ out; pos ] in
      B.store fb I32 p3 posc;
      B.br fb "next";
      B.block fb "next";
      let iv' = B.load fb I32 i in
      B.store fb I32 (B.add fb I32 iv' (B.i32 1)) i;
      B.br fb "loop";
      B.block fb "done";
      B.ret_void fb);
  B.program t ~main:"main"

(* A failing request: elements whose data-dependent advances average well
   above 2 bytes each (ints with high nibbles, strings full of multibyte
   continuations, wide references), so the cursor escapes the buffer.
   Occurrences rotate the benign prefix. *)
let failing_workload ~occurrence =
  (* occurrences vary the don't-care low bits of each element so the
     inputs differ run to run while the cursor advances — and therefore
     the crash site — stay identical *)
  let element k =
    let low m = Int64.of_int ((k * 5 + occurrence) mod m) in
    match k mod 5 with
    | 0 -> [ 0L; Int64.logor 0x20L (low 32) ]   (* int, advance 1+1 *)
    | 1 -> [ 1L; Int64.logor 0xC0L (low 64) ]   (* str, advance 1+2 *)
    | 2 -> [ 2L; Int64.logor 0x30L (low 16) ]   (* ref, advance 1+3 *)
    | 3 -> [ 3L; Int64.logor 0x18L (low 8) ]    (* float, advance 1+3 *)
    | _ -> [ 4L; Int64.logor 0x55L (low 8) ]    (* key, advance 1+hash *)
  in
  let n = 30 in
  let body = List.concat_map element (List.init n Fun.id) in
  (Er_vm.Inputs.make [ ("req", Int64.of_int n :: body) ], occurrence * 13)

(* Performance workload: tame elements (advance <= 2). *)
let perf_inputs () =
  let n = 1500 in
  let body =
    List.concat_map
      (fun k -> [ Int64.of_int (k mod 5); Int64.of_int (k mod 24) ])
      (List.init n Fun.id)
  in
  Er_vm.Inputs.make [ ("req", Int64.of_int n :: body) ]

let spec : Bug.spec =
  {
    Bug.name = "php-74194";
    models = "PHP-74194";
    bug_type = "heap buffer overflow";
    multithreaded = false;
    program;
    failing_workload;
    perf_inputs;
    config = Bug.config_with ~solver_budget:1_000 ~gate_budget:380 ();
  }
