(* Models Memcached-2019-11596 (CVE-2019-11596): NULL pointer dereference
   when the LRU crawler reclaims an item between a worker's liveness check
   and its use of the item's data pointer.

   Two threads share an item slot: the worker validates the flags field,
   hashes the request key (the window), then dereferences the data
   pointer; the crawler nulls the pointer first and only then clears the
   flags.  The events are separated by hundreds of instructions, so the
   coarse chunk timestamps of section 3.4 order them reliably. *)

open Er_ir.Types
module B = Er_ir.Builder

let program : program =
  let t = B.create () in
  (* item: [0] = data ptr (packed), [1] = live flag *)
  B.global t ~name:"item" ~ty:I64 ~size:2 ();
  B.global t ~name:"hashtbl" ~ty:I32 ~size:64 ();
  B.global t ~name:"shutdown" ~ty:I64 ~size:1 ();
  (* the LRU crawler: waits its period, then reclaims the item the wrong
     way around — data pointer first, flag second *)
  B.func t ~name:"crawler" ~params:[ ("delay", I32) ] (fun fb ->
      let i = B.alloca fb I32 (B.i32 1) in
      B.store fb I32 (B.i32 0) i;
      B.br fb "spin";
      B.block fb "spin";
      let stop = B.load fb I64 (B.gep fb (B.glob "shutdown") (B.i32 0)) in
      let stopping = B.ne fb I64 stop (B.imm64 0L I64) in
      B.condbr fb stopping "out" "tick";
      B.block fb "out";
      B.ret_void fb;
      B.block fb "tick";
      let iv = B.load fb I32 i in
      let more = B.ult fb I32 iv (B.reg "delay") in
      B.condbr fb more "spin_body" "reclaim";
      B.block fb "spin_body";
      B.store fb I32 (B.add fb I32 iv (B.i32 1)) i;
      B.br fb "spin";
      B.block fb "reclaim";
      let dp = B.gep fb (B.glob "item") (B.i32 0) in
      B.store fb I64 (B.imm64 0L I64) dp;
      let fp = B.gep fb (B.glob "item") (B.i32 1) in
      B.store fb I64 (B.imm64 0L I64) fp;
      B.ret_void fb);
  (* worker request: check the item is live, hash the key, then touch the
     item's data *)
  B.func t ~name:"handle_get" ~params:[ ("klen", I32) ] ~ret:I32 (fun fb ->
      let fp = B.gep fb (B.glob "item") (B.i32 1) in
      let live = B.load fb I64 fp in
      let ok = B.ne fb I64 live (B.imm64 0L I64) in
      B.condbr fb ok "hash" "miss";
      B.block fb "miss";
      (* consume the key bytes even on a miss *)
      let j0 = B.alloca fb I32 (B.i32 1) in
      B.store fb I32 (B.i32 0) j0;
      B.br fb "drain";
      B.block fb "drain";
      let jv = B.load fb I32 j0 in
      let more0 = B.ult fb I32 jv (B.reg "klen") in
      B.condbr fb more0 "drain_body" "miss_done";
      B.block fb "drain_body";
      let _b = B.input fb I8 "net" in
      B.store fb I32 (B.add fb I32 jv (B.i32 1)) j0;
      B.br fb "drain";
      B.block fb "miss_done";
      B.ret fb (Some (B.i32 0));
      B.block fb "hash";
      (* the race window: hash the key into the probe table *)
      let j = B.alloca fb I32 (B.i32 1) in
      B.store fb I32 (B.i32 0) j;
      B.br fb "hash_loop";
      B.block fb "hash_loop";
      let jv = B.load fb I32 j in
      let more = B.ult fb I32 jv (B.reg "klen") in
      B.condbr fb more "hash_body" "use";
      B.block fb "hash_body";
      let byte = B.input fb I8 "net" in
      let b32 = B.zext fb ~from_ty:I8 ~to_ty:I32 byte in
      let slot = B.and_ fb I32 (B.mul fb I32 b32 (B.i32 17)) (B.i32 63) in
      let sp = B.gep fb (B.glob "hashtbl") slot in
      let old = B.load fb I32 sp in
      B.store fb I32 (B.add fb I32 old (B.i32 1)) sp;
      B.store fb I32 (B.add fb I32 jv (B.i32 1)) j;
      B.br fb "hash_loop";
      B.block fb "use";
      (* ... by now the crawler may have reclaimed the item *)
      let dp = B.gep fb (B.glob "item") (B.i32 0) in
      let di = B.load fb I64 dp in
      let data = B.cast fb Inttoptr ~from_ty:I64 ~to_ty:Ptr di in
      let v = B.load fb I64 data in          (* NULL deref on the race *)
      let v32 = B.trunc fb ~from_ty:I64 ~to_ty:I32 v in
      B.ret fb (Some v32));
  B.func t ~name:"main" ~params:[] (fun fb ->
      (* populate the item *)
      let data = B.alloc fb I64 (B.i32 4) in
      B.store fb I64 (B.imm64 99L I64) data;
      let di = B.cast fb Ptrtoint ~from_ty:Ptr ~to_ty:I64 data in
      B.store fb I64 di (B.gep fb (B.glob "item") (B.i32 0));
      B.store fb I64 (B.imm64 1L I64) (B.gep fb (B.glob "item") (B.i32 1));
      let delay = B.input fb I32 "net" in
      B.spawn fb "crawler" [ delay ];
      (* serve requests *)
      let nreq = B.input fb I32 "net" in
      let i = B.alloca fb I32 (B.i32 1) in
      B.store fb I32 (B.i32 0) i;
      B.br fb "loop";
      B.block fb "loop";
      let iv = B.load fb I32 i in
      let more = B.ult fb I32 iv nreq in
      B.condbr fb more "body" "done";
      B.block fb "body";
      let klen = B.input fb I32 "net" in
      B.call_void fb "handle_get" [ klen ];
      let iv' = B.load fb I32 i in
      B.store fb I32 (B.add fb I32 iv' (B.i32 1)) i;
      B.br fb "loop";
      B.block fb "done";
      B.store fb I64 (B.imm64 1L I64)
        (B.gep fb (B.glob "shutdown") (B.i32 0));
      B.join fb;
      B.ret_void fb);
  B.program t ~main:"main"

(* Requests with long keys keep the worker inside the race window while
   the crawler's delay expires. *)
let failing_workload ~occurrence =
  let key k = List.init 24 (fun i -> Int64.of_int ((i * 7 + k + occurrence) mod 120)) in
  let reqs = List.concat_map (fun k -> 24L :: key k) (List.init 6 Fun.id) in
  (Er_vm.Inputs.make [ ("net", (60L :: 6L :: reqs)) ], occurrence)

(* memtier-like benchmark: crawler period far beyond the run. *)
let perf_inputs () =
  let key k = List.init 16 (fun i -> Int64.of_int ((i * 5 + k) mod 120)) in
  let n = 150 in
  let reqs = List.concat_map (fun k -> 16L :: key k) (List.init n Fun.id) in
  Er_vm.Inputs.make [ ("net", (5_000_000L :: Int64.of_int n :: reqs)) ]

let spec : Bug.spec =
  {
    Bug.name = "memcached-2019-11596";
    models = "Memcached-2019-11596";
    bug_type = "NULL pointer dereference";
    multithreaded = true;
    program;
    failing_workload;
    perf_inputs;
    config = Bug.config_with ~solver_budget:7_000 ~gate_budget:2_800 ();
  }
