lib/corpus/running_example.ml: Bug Er_ir Er_vm Fun Int64 List
