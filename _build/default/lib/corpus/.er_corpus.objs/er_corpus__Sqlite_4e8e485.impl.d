lib/corpus/sqlite_4e8e485.ml: Bug Er_ir Er_vm Int64 List
