lib/corpus/bug.ml: Er_core Er_ir Er_symex Er_vm
