lib/corpus/coreutils_pr.ml: Bug Er_ir Er_vm Fun Int64 List
