lib/corpus/libpng_2004_0597.ml: Bug Er_ir Er_vm Fun Int64 List
