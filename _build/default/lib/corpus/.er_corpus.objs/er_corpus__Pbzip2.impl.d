lib/corpus/pbzip2.ml: Bug Er_ir Er_vm Int64 List
