lib/corpus/memcached_2019_11596.ml: Bug Er_ir Er_vm Fun Int64 List
