lib/corpus/php_2012_2386.ml: Bug Er_ir Er_vm Int64 List
