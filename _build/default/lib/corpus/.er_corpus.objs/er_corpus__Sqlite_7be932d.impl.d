lib/corpus/sqlite_7be932d.ml: Bug Er_ir Er_vm Fun Int64 List
