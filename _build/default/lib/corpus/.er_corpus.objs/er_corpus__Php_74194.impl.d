lib/corpus/php_74194.ml: Bug Er_ir Er_vm Fun Int64 List
