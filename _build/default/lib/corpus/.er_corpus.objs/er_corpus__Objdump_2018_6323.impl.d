lib/corpus/objdump_2018_6323.ml: Bug Er_ir Er_vm Fun Int64 List
