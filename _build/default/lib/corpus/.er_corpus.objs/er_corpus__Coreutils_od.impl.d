lib/corpus/coreutils_od.ml: Bug Er_ir Er_vm Int64 List
