lib/corpus/sqlite_787fa71.ml: Bug Er_ir Er_vm Fun Int64 List
