lib/corpus/python_2018_1000030.ml: Bug Er_ir Er_vm Int64 List
