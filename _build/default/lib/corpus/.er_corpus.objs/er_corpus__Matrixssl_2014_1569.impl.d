lib/corpus/matrixssl_2014_1569.ml: Bug Er_ir Er_vm Fun Int64 List
