lib/corpus/bash_108885.ml: Bug Char Er_ir Er_vm Int64 List String
