lib/corpus/nasm_2004_1287.ml: Bug Er_ir Er_vm Fun Int64 List
