(* Models the pbzip2-0.9.4 use-after-free from the concurrency-bugs suite:
   the main thread deletes the shared block FIFO as soon as it has queued
   the last block, while a consumer thread is still draining it.

   The producer (main) fills a heap FIFO and frees it after raising the
   done flag; the consumer walks the queue compressing blocks (the
   window).  Under racy schedules the consumer touches the freed FIFO —
   a use-after-free crash at a load. *)

open Er_ir.Types
module B = Er_ir.Builder

let fifo_cells = 34        (* [0]=head [1]=count, then 32 block slots *)

let program : program =
  let t = B.create () in
  B.global t ~name:"queue" ~ty:I64 ~size:1 ();      (* packed FIFO pointer *)
  B.global t ~name:"done_flag" ~ty:I64 ~size:1 ();
  B.global t ~name:"crc" ~ty:I32 ~size:64 ();
  B.func t ~name:"consumer" ~params:[] (fun fb ->
      B.br fb "poll";
      B.block fb "poll";
      let qi = B.load fb I64 (B.gep fb (B.glob "queue") (B.i32 0)) in
      let q = B.cast fb Inttoptr ~from_ty:I64 ~to_ty:Ptr qi in
      let cnt = B.load fb I64 (B.gep fb q (B.i32 1)) in   (* UAF here *)
      let have = B.ne fb I64 cnt (B.imm64 0L I64) in
      B.condbr fb have "compress" "check_done";
      B.block fb "check_done";
      let d = B.load fb I64 (B.gep fb (B.glob "done_flag") (B.i32 0)) in
      let stop = B.ne fb I64 d (B.imm64 0L I64) in
      B.condbr fb stop "out" "poll";
      B.block fb "out";
      B.ret_void fb;
      B.block fb "compress";
      let h = B.load fb I64 (B.gep fb q (B.i32 0)) in
      let h32 = B.trunc fb ~from_ty:I64 ~to_ty:I32 h in
      let slotp = B.gep fb q (B.add fb I32 (B.i32 2) h32) in
      let block = B.load fb I64 slotp in
      (* "compress" the block: fold it into the crc table *)
      let b32 = B.trunc fb ~from_ty:I64 ~to_ty:I32 block in
      let ci = B.and_ fb I32 (B.mul fb I32 b32 (B.i32 29)) (B.i32 63) in
      let cp = B.gep fb (B.glob "crc") ci in
      let old = B.load fb I32 cp in
      B.store fb I32 (B.add fb I32 old (B.i32 1)) cp;
      (* pop *)
      let h' = B.add fb I64 h (B.imm64 1L I64) in
      B.store fb I64 h' (B.gep fb q (B.i32 0));
      let cnt' = B.sub fb I64 cnt (B.imm64 1L I64) in
      B.store fb I64 cnt' (B.gep fb q (B.i32 1));
      B.br fb "poll");
  B.func t ~name:"main" ~params:[] (fun fb ->
      let fifo = B.alloc fb I64 (B.i32 fifo_cells) in
      let fi = B.cast fb Ptrtoint ~from_ty:Ptr ~to_ty:I64 fifo in
      B.store fb I64 fi (B.gep fb (B.glob "queue") (B.i32 0));
      B.spawn fb "consumer" [];
      (* produce the blocks *)
      let nblocks = B.input fb I32 "tar" in
      let i = B.alloca fb I32 (B.i32 1) in
      B.store fb I32 (B.i32 0) i;
      B.br fb "produce";
      B.block fb "produce";
      let iv = B.load fb I32 i in
      let more = B.ult fb I32 iv nblocks in
      B.condbr fb more "push" "finish";
      B.block fb "push";
      let blk = B.input fb I32 "tar" in
      let blk64 = B.zext fb ~from_ty:I32 ~to_ty:I64 blk in
      let tail = B.load fb I64 (B.gep fb fifo (B.i32 1)) in
      let hd = B.load fb I64 (B.gep fb fifo (B.i32 0)) in
      let pos = B.add fb I64 hd tail in
      let p32 = B.trunc fb ~from_ty:I64 ~to_ty:I32 pos in
      B.store fb I64 blk64 (B.gep fb fifo (B.add fb I32 (B.i32 2) p32));
      B.store fb I64 (B.add fb I64 tail (B.imm64 1L I64))
        (B.gep fb fifo (B.i32 1));
      let iv' = B.load fb I32 i in
      B.store fb I32 (B.add fb I32 iv' (B.i32 1)) i;
      B.br fb "produce";
      B.block fb "finish";
      B.store fb I64 (B.imm64 1L I64) (B.gep fb (B.glob "done_flag") (B.i32 0));
      (* teardown work (flushing the archive) before the delete; the bug
         is that nothing waits for the consumer *)
      let td = B.input fb I32 "tar" in
      let d = B.alloca fb I32 (B.i32 1) in
      B.store fb I32 (B.i32 0) d;
      B.br fb "flush";
      B.block fb "flush";
      let dv = B.load fb I32 d in
      let mored = B.ult fb I32 dv td in
      B.condbr fb mored "flush_body" "teardown";
      B.block fb "flush_body";
      B.store fb I32 (B.add fb I32 dv (B.i32 1)) d;
      B.br fb "flush";
      B.block fb "teardown";
      B.free fb fifo;
      B.join fb;
      B.ret_void fb);
  B.program t ~main:"main"

let failing_workload ~occurrence =
  let blocks = List.init 24 (fun i -> Int64.of_int ((i * 13 + occurrence) mod 4096)) in
  (Er_vm.Inputs.make [ ("tar", (Int64.of_int 24 :: blocks) @ [ 0L ]) ], occurrence)

(* compress a .tar: producer joins before freeing (the fixed pattern is
   simulated by a block count the consumer drains before the free) *)
let perf_inputs () =
  let blocks = List.init 8 (fun i -> Int64.of_int (i * 7)) in
  Er_vm.Inputs.make [ ("tar", (8L :: blocks) @ [ 4000L ]) ]

let spec : Bug.spec =
  {
    Bug.name = "pbzip2";
    models = "Pbzip2 (use-after-free)";
    bug_type = "use-after-free";
    multithreaded = true;
    program;
    failing_workload;
    perf_inputs;
    config = Bug.config_with ~solver_budget:8_000 ~gate_budget:3_200 ();
  }
